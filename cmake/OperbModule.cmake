# operb_add_module(<name> SOURCES <src...> [DEPS <operb::lib...>])
#
# Defines the static library `operb_<name>` with alias `operb::<name>`.
# DEPS are PUBLIC: a module's headers include its dependencies' headers
# (all includes are spelled relative to src/, e.g. "geo/point.h"), so the
# include directory and the link edge must propagate to dependents.
function(operb_add_module NAME)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
  if(NOT ARG_SOURCES)
    message(FATAL_ERROR "operb_add_module(${NAME}): SOURCES is required")
  endif()

  set(target operb_${NAME})
  add_library(${target} STATIC ${ARG_SOURCES})
  add_library(operb::${NAME} ALIAS ${target})
  target_include_directories(${target} PUBLIC ${PROJECT_SOURCE_DIR}/src)
  target_link_libraries(${target}
    PUBLIC ${ARG_DEPS}
    PRIVATE operb::build_flags)
endfunction()

# operb_link_all_modules(<target>)
#
# Links every module library into `target` (PRIVATE), for leaf executables
# (tests, benches, examples, tools) that may use any part of the library.
function(operb_link_all_modules TARGET)
  target_link_libraries(${TARGET} PRIVATE
    operb::pipeline
    operb::server
    operb::engine
    operb::api
    operb::store
    operb::baselines
    operb::codec
    operb::core
    operb::datagen
    operb::eval
    operb::traj
    operb::geo
    operb::obs
    operb::common
    operb::build_flags)
endfunction()
