# Negative-path smoke test for operb_cli, run via `cmake -P` from ctest.
# Expects -DOPERB_CLI=<path to binary>.
#
# Every malformed invocation must exit with the documented usage code (2),
# print a one-line diagnostic on stderr, and never reach a CHECK abort
# (which would exit 134/SIGABRT and print "OPERB_CHECK failed").

if(NOT OPERB_CLI)
  message(FATAL_ERROR "usage: cmake -DOPERB_CLI=... -P RunCliNegative.cmake")
endif()

# Each case: a label, then the space-separated argument list (no argument
# contains a space; ';' cannot be the separator because it would flatten
# the outer CMake list).
set(cases
  "unknown_algorithm|--algorithm NOPE"
  "negative_zeta|--zeta -3"
  "zero_zeta|--zeta 0"
  "malformed_zeta|--zeta abc"
  "locale_comma_spec|--spec OPERB:zeta=2,5"
  "unknown_spec_algorithm|--spec NOPE:zeta=5"
  "unknown_spec_option|--spec DP:gamma_m=1"
  "out_of_range_spec_option|--spec OPERB:step_length=7"
  "malformed_spec|--spec OPERB:zeta"
  "bad_fidelity|--fidelity fast"
  "zero_threads|--group-by-id --threads 0"
  "unknown_flag|--wibble"
  "bad_generate|--generate Nowhere:100"
  "query_without_shape|--query nowhere.store"
  "query_mixed_with_input|--query nowhere.store --object 1 --generate Taxi:100"
  "query_flags_without_query|--object 3"
  "query_bad_window|--query nowhere.store --window 1,2,3"
  "query_at_without_object|--query nowhere.store --at 5"
  "query_bad_object|--object -1 --query nowhere.store"
  "query_with_engine_flags|--query nowhere.store --object 1 --threads 2"
  "query_with_no_verify|--query nowhere.store --object 1 --no-verify"
  "query_at_outside_range|--query nowhere.store --object 1 --from 0 --to 10 --at 500"
)

foreach(case IN LISTS cases)
  string(FIND "${case}" "|" sep)
  string(SUBSTRING "${case}" 0 ${sep} label)
  math(EXPR arg_start "${sep} + 1")
  string(SUBSTRING "${case}" ${arg_start} -1 args)
  string(REPLACE " " ";" args "${args}")

  execute_process(
    COMMAND "${OPERB_CLI}" ${args}
    RESULT_VARIABLE result
    OUTPUT_VARIABLE stdout
    ERROR_VARIABLE stderr)

  if(NOT result EQUAL 2)
    message(FATAL_ERROR
      "${label}: expected usage exit code 2, got '${result}'\n"
      "stdout: ${stdout}\nstderr: ${stderr}")
  endif()
  if(stderr STREQUAL "")
    message(FATAL_ERROR "${label}: no diagnostic on stderr")
  endif()
  if(stderr MATCHES "OPERB_CHECK")
    message(FATAL_ERROR
      "${label}: bad input reached a CHECK abort\nstderr: ${stderr}")
  endif()
endforeach()

# Sanity: a *valid* spec still succeeds, so the harness above is not
# passing because everything fails.
execute_process(
  COMMAND "${OPERB_CLI}" --generate SerCar:300:2
          --spec operb-a:zeta=30,fidelity=guarded
  RESULT_VARIABLE result
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT result EQUAL 0)
  message(FATAL_ERROR
    "valid spec run failed (exit ${result})\n${stdout}\n${stderr}")
endif()

message(STATUS "operb_cli negative-path smoke passed")
