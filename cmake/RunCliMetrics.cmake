# Metrics snapshot smoke for operb_cli, run via `cmake -P` from ctest.
# Expects -DOPERB_CLI=<path> and -DWORK_DIR=<scratch dir>.
#
# Covers the --metrics-out / --metrics-every flag contract end to end:
# a group-by-id run writes a parseable operb-metrics-snapshot JSON with
# the engine/pipeline instruments populated, single-trajectory mode
# writes its final snapshot too, snapshot writing is observationally
# transparent (the instrumented run's output CSV is byte-identical to
# the plain run's), and the documented negatives keep their exit codes
# (unwritable path and misused --metrics-every are usage errors, 2).

if(NOT OPERB_CLI OR NOT WORK_DIR)
  message(FATAL_ERROR
    "usage: cmake -DOPERB_CLI=... -DWORK_DIR=... -P RunCliMetrics.cmake")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")

# Checks one snapshot file: parses as JSON, carries the schema header,
# and the named counter is present with a positive value. An
# OPERB_NO_METRICS build compiles recording out but still writes the
# snapshot — an entirely empty counters object is accepted as that
# case (a partially wired build would still carry other counters and
# fail the named lookup).
function(check_snapshot path want_counter)
  if(NOT EXISTS "${path}")
    message(FATAL_ERROR "metrics snapshot ${path} was not written")
  endif()
  file(READ "${path}" doc)
  string(JSON schema ERROR_VARIABLE err GET "${doc}" schema)
  if(err OR NOT schema STREQUAL "operb-metrics-snapshot")
    message(FATAL_ERROR
      "${path}: bad or missing schema ('${schema}', err: ${err})")
  endif()
  string(JSON version ERROR_VARIABLE err GET "${doc}" schema_version)
  if(err OR NOT version EQUAL 1)
    message(FATAL_ERROR
      "${path}: bad schema_version ('${version}', err: ${err})")
  endif()
  foreach(section counters gauges max_gauges histograms trace)
    string(JSON ignored ERROR_VARIABLE err GET "${doc}" ${section})
    if(err)
      message(FATAL_ERROR "${path}: missing section '${section}': ${err}")
    endif()
  endforeach()
  string(JSON counter_count ERROR_VARIABLE err LENGTH "${doc}" counters)
  if(err)
    message(FATAL_ERROR "${path}: counters is not an object: ${err}")
  endif()
  if(counter_count EQUAL 0)
    return()  # metrics compiled out (OPERB_NO_METRICS)
  endif()
  string(JSON value ERROR_VARIABLE err GET "${doc}" counters
         "${want_counter}")
  if(err)
    message(FATAL_ERROR
      "${path}: counter '${want_counter}' missing: ${err}")
  endif()
  if(NOT value GREATER 0)
    message(FATAL_ERROR
      "${path}: counter '${want_counter}' is ${value}, want > 0")
  endif()
endfunction()

# Shared input so the transparency check compares identical feeds. The
# reference run re-reads the saved CSV like the instrumented run does —
# generating in-process would feed unrounded doubles (see
# RunCliCheckpoint.cmake).
set(input_csv "${WORK_DIR}/input.csv")
set(plain_out "${WORK_DIR}/plain_out.csv")
execute_process(
  COMMAND "${OPERB_CLI}" --group-by-id
          --generate "SerCar:300:20170807" --objects 6
          --spec "OPERB:zeta=40" --no-verify
          --save-input "${input_csv}"
  RESULT_VARIABLE result
  ERROR_VARIABLE stderr)
if(NOT result EQUAL 0)
  message(FATAL_ERROR "input synthesis failed (exit ${result})\n${stderr}")
endif()
execute_process(
  COMMAND "${OPERB_CLI}" --group-by-id --input "${input_csv}"
          --spec "OPERB:zeta=40" --no-verify --output "${plain_out}"
  RESULT_VARIABLE result
  ERROR_VARIABLE stderr)
if(NOT result EQUAL 0)
  message(FATAL_ERROR "reference run failed (exit ${result})\n${stderr}")
endif()

# Group-by-id run with periodic snapshots: the engine path, the line the
# usage text promises, and the engine.* instruments in the final file.
set(group_snapshot "${WORK_DIR}/group_metrics.json")
set(metrics_out "${WORK_DIR}/metrics_out.csv")
execute_process(
  COMMAND "${OPERB_CLI}" --group-by-id --input "${input_csv}"
          --spec "OPERB:zeta=40" --no-verify
          --metrics-out "${group_snapshot}" --metrics-every 137
          --output "${metrics_out}"
  RESULT_VARIABLE result
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT result EQUAL 0 OR NOT stdout MATCHES "metrics:")
  message(FATAL_ERROR
    "group metrics run failed (exit ${result})\n${stdout}\n${stderr}")
endif()
check_snapshot("${group_snapshot}" "engine.points_routed")

# Snapshot writing must not perturb the output (same contract as
# periodic checkpoints).
file(READ "${plain_out}" want_bytes)
file(READ "${metrics_out}" got_bytes)
if(NOT got_bytes STREQUAL want_bytes)
  message(FATAL_ERROR
    "writing metrics snapshots perturbed the output\n"
    "reference: ${plain_out}\ninstrumented: ${metrics_out}")
endif()

# Single-trajectory mode writes its one final snapshot on the same flag.
set(single_snapshot "${WORK_DIR}/single_metrics.json")
execute_process(
  COMMAND "${OPERB_CLI}" --generate "SerCar:300:7" --no-verify
          --metrics-out "${single_snapshot}"
  RESULT_VARIABLE result
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT result EQUAL 0 OR NOT stdout MATCHES "metrics:")
  message(FATAL_ERROR
    "single-mode metrics run failed (exit ${result})\n${stdout}\n${stderr}")
endif()
check_snapshot("${single_snapshot}" "pipeline.points_in")

# Flag-contract negatives keep their documented exit codes.

# An unwritable --metrics-out path is caught up front (exit 2), before
# any work runs.
execute_process(
  COMMAND "${OPERB_CLI}" --generate "SerCar:300:7"
          --metrics-out "${WORK_DIR}/no_such_dir/metrics.json"
  RESULT_VARIABLE result
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT result EQUAL 2)
  message(FATAL_ERROR
    "unwritable --metrics-out: expected exit 2, got ${result}\n${stderr}")
endif()

# --metrics-every without --metrics-out is a usage error (exit 2).
execute_process(
  COMMAND "${OPERB_CLI}" --group-by-id --generate "SerCar:300:7"
          --metrics-every 100
  RESULT_VARIABLE result
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT result EQUAL 2)
  message(FATAL_ERROR
    "--metrics-every without --metrics-out: expected exit 2, got "
    "${result}\n${stderr}")
endif()

# Periodic cadence needs the engine loop: --metrics-every in
# single-trajectory mode is a usage error (exit 2).
execute_process(
  COMMAND "${OPERB_CLI}" --generate "SerCar:300:7"
          --metrics-out "${WORK_DIR}/single_periodic.json"
          --metrics-every 100
  RESULT_VARIABLE result
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT result EQUAL 2)
  message(FATAL_ERROR
    "--metrics-every without --group-by-id: expected exit 2, got "
    "${result}\n${stderr}")
endif()

message(STATUS
  "operb_cli metrics snapshot smoke passed (group + single snapshots "
  "parse, output transparency holds, 3 negatives)")
