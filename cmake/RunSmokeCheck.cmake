# Smoke-test wrapper, run via `cmake -P` from ctest. Unlike ctest's
# PASS_REGULAR_EXPRESSION (which ignores the exit code once the regex
# matches, masking crashes and sanitizer failures after the matched
# line), this enforces BOTH a zero exit code and, when SMOKE_PATTERN is
# given, a match in the combined stdout/stderr.
#
# Usage: cmake -DSMOKE_COMMAND="<binary> [args...]"
#              [-DSMOKE_PATTERN=<cmake regex>] -P RunSmokeCheck.cmake

if(NOT SMOKE_COMMAND)
  message(FATAL_ERROR "usage: cmake -DSMOKE_COMMAND=... [-DSMOKE_PATTERN=...] -P RunSmokeCheck.cmake")
endif()

separate_arguments(cmd UNIX_COMMAND "${SMOKE_COMMAND}")
execute_process(
  COMMAND ${cmd}
  RESULT_VARIABLE result
  OUTPUT_VARIABLE output
  ERROR_VARIABLE output)

if(NOT result EQUAL 0)
  message(FATAL_ERROR "'${SMOKE_COMMAND}' exited with ${result}\n${output}")
endif()
if(SMOKE_PATTERN AND NOT output MATCHES "${SMOKE_PATTERN}")
  message(FATAL_ERROR "'${SMOKE_COMMAND}' output does not match '${SMOKE_PATTERN}'\n${output}")
endif()
message(STATUS "smoke ok: ${SMOKE_COMMAND}")
