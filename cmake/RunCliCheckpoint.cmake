# Checkpoint/restore round-trip smoke for operb_cli, run via `cmake -P`
# from ctest. Expects -DOPERB_CLI=<path> and -DWORK_DIR=<scratch dir>.
#
# The exact-resume check exploits a universal invariant: no streaming
# simplifier can emit a segment from a single point. The interleaved
# feed is cut after its FIRST update, so the checkpointing prefix run
# emits nothing before the snapshot — which makes the resumed run's
# output CSV byte-identical to the uninterrupted run's, with no
# splicing needed. One cut, all ten algorithms.
#
# A periodic-checkpoint transparency check (snapshots must not perturb
# the output) and the flag-contract negatives ride along.

if(NOT OPERB_CLI OR NOT WORK_DIR)
  message(FATAL_ERROR
    "usage: cmake -DOPERB_CLI=... -DWORK_DIR=... -P RunCliCheckpoint.cmake")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")

# One canonical input CSV: both the reference and the split runs must
# re-read the same %.9g-rendered bytes (re-generating would round the
# doubles differently than the file round trip).
set(full_csv "${WORK_DIR}/full.csv")
execute_process(
  COMMAND "${OPERB_CLI}" --group-by-id
          --generate "SerCar:300:20170403" --objects 6
          --spec "OPERB:zeta=40" --no-verify
          --save-input "${full_csv}"
  RESULT_VARIABLE result
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT result EQUAL 0)
  message(FATAL_ERROR "input synthesis failed (exit ${result})\n${stderr}")
endif()

# Split after the first data line (line 1; line 0 is the # header).
file(STRINGS "${full_csv}" lines)
list(LENGTH lines line_count)
if(line_count LESS 3)
  message(FATAL_ERROR "synthesized input has only ${line_count} lines")
endif()
list(GET lines 0 header)
list(GET lines 1 first_update)
list(SUBLIST lines 2 -1 tail_lines)
file(WRITE "${WORK_DIR}/prefix.csv" "${header}\n${first_update}\n")
string(JOIN "\n" tail_body ${tail_lines})
file(WRITE "${WORK_DIR}/tail.csv" "${header}\n${tail_body}\n")

set(algorithms
  OPERB OPERB-A Raw-OPERB Raw-OPERB-A DP DP-SED OPW OPW-SED BQS FBQS)

foreach(algorithm IN LISTS algorithms)
  set(full_out "${WORK_DIR}/full_out.csv")
  set(resumed_out "${WORK_DIR}/resumed_out.csv")
  set(periodic_out "${WORK_DIR}/periodic_out.csv")
  set(ckpt "${WORK_DIR}/engine.ckpt")

  # Uninterrupted reference.
  execute_process(
    COMMAND "${OPERB_CLI}" --group-by-id --input "${full_csv}"
            --spec "${algorithm}:zeta=40" --no-verify
            --output "${full_out}"
    RESULT_VARIABLE result
    OUTPUT_VARIABLE stdout
    ERROR_VARIABLE stderr)
  if(NOT result EQUAL 0)
    message(FATAL_ERROR
      "${algorithm}: reference run failed (exit ${result})\n${stderr}")
  endif()

  # Prefix run: one update, then the snapshot (nothing emitted yet).
  execute_process(
    COMMAND "${OPERB_CLI}" --group-by-id --input "${WORK_DIR}/prefix.csv"
            --spec "${algorithm}:zeta=40" --no-verify
            --checkpoint-out "${ckpt}"
    RESULT_VARIABLE result
    OUTPUT_VARIABLE stdout
    ERROR_VARIABLE stderr)
  if(NOT result EQUAL 0 OR NOT stdout MATCHES "checkpoint:")
    message(FATAL_ERROR
      "${algorithm}: checkpoint run failed (exit ${result})\n"
      "${stdout}\n${stderr}")
  endif()

  # Resumed run over the stream's remainder.
  execute_process(
    COMMAND "${OPERB_CLI}" --group-by-id --input "${WORK_DIR}/tail.csv"
            --spec "${algorithm}:zeta=40" --resume "${ckpt}"
            --output "${resumed_out}"
    RESULT_VARIABLE result
    OUTPUT_VARIABLE stdout
    ERROR_VARIABLE stderr)
  if(NOT result EQUAL 0 OR NOT stdout MATCHES "resumed:")
    message(FATAL_ERROR
      "${algorithm}: resumed run failed (exit ${result})\n"
      "${stdout}\n${stderr}")
  endif()

  file(READ "${full_out}" want_bytes)
  file(READ "${resumed_out}" got_bytes)
  if(NOT got_bytes STREQUAL want_bytes)
    message(FATAL_ERROR
      "${algorithm}: resumed output is not byte-identical to the "
      "uninterrupted run\nreference: ${full_out}\nresumed:   ${resumed_out}")
  endif()

  # Periodic snapshots must be observationally transparent: the
  # checkpointing run's own output equals the plain run's.
  execute_process(
    COMMAND "${OPERB_CLI}" --group-by-id --input "${full_csv}"
            --spec "${algorithm}:zeta=40" --no-verify
            --checkpoint-out "${ckpt}" --checkpoint-every 137
            --output "${periodic_out}"
    RESULT_VARIABLE result
    OUTPUT_VARIABLE stdout
    ERROR_VARIABLE stderr)
  if(NOT result EQUAL 0 OR NOT stdout MATCHES "snapshot\\(s\\) written")
    message(FATAL_ERROR
      "${algorithm}: periodic checkpoint run failed (exit ${result})\n"
      "${stdout}\n${stderr}")
  endif()
  file(READ "${periodic_out}" periodic_bytes)
  if(NOT periodic_bytes STREQUAL want_bytes)
    message(FATAL_ERROR
      "${algorithm}: writing periodic checkpoints perturbed the output")
  endif()
endforeach()

# Flag-contract negatives keep their documented exit codes.

# A missing checkpoint is an I/O error (exit 3) — the caller can tell
# "no checkpoint yet" from "bad checkpoint".
execute_process(
  COMMAND "${OPERB_CLI}" --group-by-id --input "${WORK_DIR}/tail.csv"
          --spec "OPERB:zeta=40" --resume "${WORK_DIR}/does_not_exist.ckpt"
  RESULT_VARIABLE result
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT result EQUAL 3)
  message(FATAL_ERROR
    "missing checkpoint: expected exit 3, got ${result}\n${stderr}")
endif()

# Resuming with a different spec is refused, not approximated (exit 2).
execute_process(
  COMMAND "${OPERB_CLI}" --group-by-id --input "${WORK_DIR}/prefix.csv"
          --spec "OPERB:zeta=40" --no-verify
          --checkpoint-out "${WORK_DIR}/mismatch.ckpt"
  RESULT_VARIABLE result
  ERROR_VARIABLE stderr)
if(NOT result EQUAL 0)
  message(FATAL_ERROR "mismatch setup failed (exit ${result})\n${stderr}")
endif()
execute_process(
  COMMAND "${OPERB_CLI}" --group-by-id --input "${WORK_DIR}/tail.csv"
          --spec "DP:zeta=40" --resume "${WORK_DIR}/mismatch.ckpt"
  RESULT_VARIABLE result
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT result EQUAL 2)
  message(FATAL_ERROR
    "spec-mismatched resume: expected exit 2, got ${result}\n${stderr}")
endif()

# A damaged checkpoint is Corruption (exit 2), never a crash.
file(WRITE "${WORK_DIR}/garbage.ckpt" "not a checkpoint")
execute_process(
  COMMAND "${OPERB_CLI}" --group-by-id --input "${WORK_DIR}/tail.csv"
          --spec "OPERB:zeta=40" --resume "${WORK_DIR}/garbage.ckpt"
  RESULT_VARIABLE result
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT result EQUAL 2)
  message(FATAL_ERROR
    "corrupt checkpoint: expected exit 2, got ${result}\n${stderr}")
endif()

# The snapshot is of engine shard state: single-trajectory mode has no
# engine, so the flags are a usage error there (exit 2).
execute_process(
  COMMAND "${OPERB_CLI}" --generate SerCar:300:1
          --checkpoint-out "${WORK_DIR}/single.ckpt"
  RESULT_VARIABLE result
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT result EQUAL 2)
  message(FATAL_ERROR
    "--checkpoint-out without --group-by-id: expected exit 2, got "
    "${result}\n${stderr}")
endif()

message(STATUS
  "operb_cli checkpoint round-trip smoke passed (10 algorithms resumed "
  "byte-identically + periodic transparency + 4 negatives)")
