# Daemon round-trip smoke for operb_server + operb_cli --connect, run
# via `cmake -P` from ctest. Expects -DOPERB_SERVER=<daemon binary>,
# -DOPERB_CLI=<cli binary> and -DWORK_DIR=<scratch dir>. POSIX-only
# (backgrounds the daemon through `sh`), like the CI runners.
#
# The acceptance loop: for every golden synthetic profile, a fresh
# daemon on an ephemeral port ingests the golden feed and must answer
# the all-covering window query byte-identically to the offline
# single-process run — with NOTHING sealed (--seal-interval 0: the
# answer comes from the read-your-writes merge of overlay + in-flight
# engine tails), again after --server-seal, and once more offline from
# the daemon's own store after a graceful --shutdown. A SIGTERM
# kill-during-ingest pass (store must reopen) and the exit-code
# negatives ride along.

if(NOT OPERB_SERVER OR NOT OPERB_CLI OR NOT WORK_DIR)
  message(FATAL_ERROR
    "usage: cmake -DOPERB_SERVER=... -DOPERB_CLI=... -DWORK_DIR=... "
    "-P RunCliServer.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# Backgrounds the daemon via sh (execute_process itself always waits),
# polls the atomically-written port file, and returns the bound port.
function(start_server dir extra_args out_port)
  file(MAKE_DIRECTORY "${dir}")
  execute_process(
    COMMAND sh -c "exec '${OPERB_SERVER}' --store '${dir}/store' \
--port-file '${dir}/port' ${extra_args} > '${dir}/server.log' 2>&1 & \
echo $! > '${dir}/pid'"
    RESULT_VARIABLE result)
  if(NOT result EQUAL 0)
    message(FATAL_ERROR "cannot launch ${OPERB_SERVER} in ${dir}")
  endif()
  set(port "")
  foreach(attempt RANGE 100)
    if(EXISTS "${dir}/port")
      file(READ "${dir}/port" port)
      string(STRIP "${port}" port)
      if(NOT port STREQUAL "")
        break()
      endif()
    endif()
    execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
  endforeach()
  if(port STREQUAL "")
    file(READ "${dir}/server.log" log)
    message(FATAL_ERROR "daemon in ${dir} never wrote its port file\n${log}")
  endif()
  set(${out_port} "${port}" PARENT_SCOPE)
endfunction()

# Waits (<= ~10 s) for the daemon backgrounded in `dir` to exit.
function(wait_server dir)
  foreach(attempt RANGE 100)
    execute_process(
      COMMAND sh -c "kill -0 $(cat '${dir}/pid') 2>/dev/null"
      RESULT_VARIABLE alive)
    if(NOT alive EQUAL 0)
      return()
    endif()
    execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
  endforeach()
  file(READ "${dir}/server.log" log)
  message(FATAL_ERROR "daemon in ${dir} did not exit\n${log}")
endfunction()

function(check_same label a b)
  file(READ "${a}" a_bytes)
  file(READ "${b}" b_bytes)
  if(NOT a_bytes STREQUAL b_bytes)
    message(FATAL_ERROR
      "${label}: not byte-identical\nwant: ${a}\ngot:  ${b}")
  endif()
endfunction()

set(profiles Taxi Truck SerCar GeoLife)
set(window --window -1e9,-1e9,1e9,1e9)

foreach(profile IN LISTS profiles)
  set(dir "${WORK_DIR}/${profile}")
  set(feed --generate "${profile}:300:20170401" --objects 8)

  # Offline oracle: the same feed through the same engine in one
  # process, every object finished at end-of-stream.
  file(MAKE_DIRECTORY "${dir}")
  execute_process(
    COMMAND "${OPERB_CLI}" --group-by-id ${feed}
            --spec OPERB:zeta=30 --no-verify --output "${dir}/offline.csv"
    RESULT_VARIABLE result
    OUTPUT_VARIABLE stdout ERROR_VARIABLE stderr)
  if(NOT result EQUAL 0)
    message(FATAL_ERROR
      "${profile}: offline oracle failed (exit ${result})\n${stderr}")
  endif()

  # --seal-interval 0: nothing is sealed until we say so, so the live
  # query below is answered purely from the overlay + in-flight tails.
  start_server("${dir}" "--spec OPERB:zeta=30 --seal-interval 0" port)

  execute_process(
    COMMAND "${OPERB_CLI}" --connect "127.0.0.1:${port}" ${feed}
    RESULT_VARIABLE result
    OUTPUT_VARIABLE stdout ERROR_VARIABLE stderr)
  if(NOT result EQUAL 0)
    message(FATAL_ERROR
      "${profile}: connect ingest failed (exit ${result})\n${stderr}")
  endif()

  execute_process(
    COMMAND "${OPERB_CLI}" --connect "127.0.0.1:${port}" ${window}
            --output "${dir}/live.csv"
    RESULT_VARIABLE result
    OUTPUT_VARIABLE stdout ERROR_VARIABLE stderr)
  if(NOT result EQUAL 0)
    message(FATAL_ERROR
      "${profile}: live query failed (exit ${result})\n${stderr}")
  endif()
  check_same("${profile}: un-sealed live query vs offline"
             "${dir}/offline.csv" "${dir}/live.csv")

  execute_process(
    COMMAND "${OPERB_CLI}" --connect "127.0.0.1:${port}" --server-seal
    RESULT_VARIABLE result
    OUTPUT_VARIABLE stdout ERROR_VARIABLE stderr)
  if(NOT result EQUAL 0 OR NOT stdout MATCHES "sealed:")
    message(FATAL_ERROR
      "${profile}: --server-seal failed (exit ${result})\n${stderr}")
  endif()
  execute_process(
    COMMAND "${OPERB_CLI}" --connect "127.0.0.1:${port}" ${window}
            --output "${dir}/sealed.csv"
    RESULT_VARIABLE result
    OUTPUT_VARIABLE stdout ERROR_VARIABLE stderr)
  if(NOT result EQUAL 0)
    message(FATAL_ERROR
      "${profile}: post-seal query failed (exit ${result})\n${stderr}")
  endif()
  check_same("${profile}: post-seal query vs offline"
             "${dir}/offline.csv" "${dir}/sealed.csv")

  # NotFound exit-code negative (needs a live daemon with data): a
  # position query far outside every stored interval is exit 1.
  if(profile STREQUAL "SerCar")
    execute_process(
      COMMAND "${OPERB_CLI}" --connect "127.0.0.1:${port}"
              --object 0 --at 1e17
      RESULT_VARIABLE result
      OUTPUT_VARIABLE stdout ERROR_VARIABLE stderr)
    if(NOT result EQUAL 1)
      message(FATAL_ERROR
        "uncovered --at over --connect: expected exit 1, got "
        "${result}\n${stdout}\n${stderr}")
    endif()
  endif()

  execute_process(
    COMMAND "${OPERB_CLI}" --connect "127.0.0.1:${port}" --shutdown
    RESULT_VARIABLE result
    OUTPUT_VARIABLE stdout ERROR_VARIABLE stderr)
  if(NOT result EQUAL 0)
    message(FATAL_ERROR
      "${profile}: --shutdown failed (exit ${result})\n${stderr}")
  endif()
  wait_server("${dir}")

  # The daemon's own store, served offline, still answers identically.
  execute_process(
    COMMAND "${OPERB_CLI}" --query "${dir}/store" ${window}
            --output "${dir}/post.csv"
    RESULT_VARIABLE result
    OUTPUT_VARIABLE stdout ERROR_VARIABLE stderr)
  if(NOT result EQUAL 0)
    message(FATAL_ERROR
      "${profile}: post-shutdown store query failed (exit "
      "${result})\n${stderr}")
  endif()
  check_same("${profile}: post-shutdown store vs offline"
             "${dir}/offline.csv" "${dir}/post.csv")
endforeach()

# SIGTERM mid-ingest: a big feed is still streaming in when the daemon
# is told to die. The graceful path must drain, seal and leave a store
# that reopens (content is whatever made it in — not compared).
set(dir "${WORK_DIR}/sigterm")
start_server("${dir}" "--spec OPERB:zeta=30 --seal-interval 0.05" port)
execute_process(
  COMMAND sh -c "'${OPERB_CLI}' --connect 127.0.0.1:${port} \
--generate SerCar:2000:7 --objects 40 > '${dir}/ingest.log' 2>&1 &"
  RESULT_VARIABLE result)
if(NOT result EQUAL 0)
  message(FATAL_ERROR "sigterm: cannot launch background ingest")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.3)
execute_process(COMMAND sh -c "kill -TERM $(cat '${dir}/pid')")
wait_server("${dir}")
execute_process(
  COMMAND "${OPERB_CLI}" --query "${dir}/store" ${window}
  RESULT_VARIABLE result
  OUTPUT_VARIABLE stdout ERROR_VARIABLE stderr)
if(NOT result EQUAL 0)
  file(READ "${dir}/server.log" log)
  message(FATAL_ERROR
    "sigterm: store did not reopen after kill-during-ingest (exit "
    "${result})\n${stderr}\n${log}")
endif()

# Exit-code negatives without a daemon.
# Nothing listens: connect failure is the documented I/O exit 3.
execute_process(
  COMMAND "${OPERB_CLI}" --connect 127.0.0.1:1 --stats
  RESULT_VARIABLE result
  OUTPUT_VARIABLE stdout ERROR_VARIABLE stderr)
if(NOT result EQUAL 3)
  message(FATAL_ERROR
    "connect refused: expected exit 3, got ${result}\n${stderr}")
endif()
# --connect excludes every local-store/engine flag: usage exit 2.
execute_process(
  COMMAND "${OPERB_CLI}" --connect 127.0.0.1:1 --store-out x.store
  RESULT_VARIABLE result
  OUTPUT_VARIABLE stdout ERROR_VARIABLE stderr)
if(NOT result EQUAL 2)
  message(FATAL_ERROR
    "--connect + --store-out: expected exit 2, got ${result}\n${stderr}")
endif()
# Server-only flags require --connect: usage exit 2.
execute_process(
  COMMAND "${OPERB_CLI}" --server-seal
  RESULT_VARIABLE result
  OUTPUT_VARIABLE stdout ERROR_VARIABLE stderr)
if(NOT result EQUAL 2)
  message(FATAL_ERROR
    "--server-seal without --connect: expected exit 2, got "
    "${result}\n${stderr}")
endif()

message(STATUS
  "operb_server smoke passed (4 profiles x {live,sealed,post-shutdown} "
  "byte-identity + SIGTERM reopen + 3 exit-code negatives)")
