# End-to-end smoke test for operb_cli, run via `cmake -P` from ctest.
# Expects -DOPERB_CLI=<path to binary> and -DWORK_DIR=<scratch dir>.
#
# Step 1: synthesize a trajectory, simplify with OPERB-A, save the input
#         as CSV and verify the bound.
# Step 2: re-read that CSV, simplify with plain OPERB at a different zeta,
#         write the representation CSV and verify again.
# Both steps must exit 0 and print a "bound: verified" line.

if(NOT OPERB_CLI OR NOT WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DOPERB_CLI=... -DWORK_DIR=... -P RunCliSmoke.cmake")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(input_csv "${WORK_DIR}/smoke_input.csv")
set(repr_csv "${WORK_DIR}/smoke_repr.csv")

function(check_step LABEL RESULT OUTPUT)
  if(NOT RESULT EQUAL 0)
    message(FATAL_ERROR "${LABEL}: exit code ${RESULT}\n${OUTPUT}")
  endif()
  if(NOT OUTPUT MATCHES "bound:     verified")
    message(FATAL_ERROR "${LABEL}: no bound verification in output\n${OUTPUT}")
  endif()
endfunction()

execute_process(
  COMMAND "${OPERB_CLI}" --generate SerCar:800:7 --algorithm OPERB-A
          --zeta 30 --save-input "${input_csv}"
  RESULT_VARIABLE result
  OUTPUT_VARIABLE output
  ERROR_VARIABLE output)
check_step("step 1 (generate + OPERB-A)" "${result}" "${output}")

if(NOT EXISTS "${input_csv}")
  message(FATAL_ERROR "step 1 did not write ${input_csv}")
endif()

execute_process(
  COMMAND "${OPERB_CLI}" --input "${input_csv}" --algorithm OPERB
          --zeta 25 --output "${repr_csv}"
  RESULT_VARIABLE result
  OUTPUT_VARIABLE output
  ERROR_VARIABLE output)
check_step("step 2 (CSV round-trip + OPERB)" "${result}" "${output}")

if(NOT EXISTS "${repr_csv}")
  message(FATAL_ERROR "step 2 did not write ${repr_csv}")
endif()

message(STATUS "operb_cli smoke passed")
