# Store round-trip smoke for operb_cli, run via `cmake -P` from ctest.
# Expects -DOPERB_CLI=<path to binary> and -DWORK_DIR=<scratch dir>.
#
# The acceptance loop: for every registered algorithm x every synthetic
# profile, simplify the golden-parameter trajectory (600 points, seed
# 20170401, zeta 40), persist it with --store-out while writing the
# in-memory segments with --output, then --query the store back and
# require the two id-tagged segment CSVs to be byte-identical — the
# store round-trips exactly what the simplifier emitted.
#
# A window query and the I/O negative paths ride along.

if(NOT OPERB_CLI OR NOT WORK_DIR)
  message(FATAL_ERROR
    "usage: cmake -DOPERB_CLI=... -DWORK_DIR=... -P RunCliStore.cmake")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")

set(algorithms
  OPERB OPERB-A Raw-OPERB Raw-OPERB-A DP DP-SED OPW OPW-SED BQS FBQS)
set(profiles Taxi Truck SerCar GeoLife)

foreach(profile IN LISTS profiles)
  foreach(algorithm IN LISTS algorithms)
    set(label "${algorithm}/${profile}")
    set(store "${WORK_DIR}/rt.store")
    set(mem_csv "${WORK_DIR}/rt_mem.csv")
    set(query_csv "${WORK_DIR}/rt_query.csv")

    # Write side: --group-by-id with one object so both sides serialize
    # through the same id-tagged CSV writer. --no-verify: this smoke
    # pins round-trip identity, not the error bound (the bound has its
    # own oracle tests).
    execute_process(
      COMMAND "${OPERB_CLI}" --group-by-id
              --generate "${profile}:600:20170401" --objects 1
              --spec "${algorithm}:zeta=40" --no-verify
              --store-out "${store}" --output "${mem_csv}"
      RESULT_VARIABLE result
      OUTPUT_VARIABLE stdout
      ERROR_VARIABLE stderr)
    if(NOT result EQUAL 0)
      message(FATAL_ERROR
        "${label}: store write failed (exit ${result})\n${stdout}\n${stderr}")
    endif()

    execute_process(
      COMMAND "${OPERB_CLI}" --query "${store}" --object 0
              --output "${query_csv}"
      RESULT_VARIABLE result
      OUTPUT_VARIABLE stdout
      ERROR_VARIABLE stderr)
    if(NOT result EQUAL 0)
      message(FATAL_ERROR
        "${label}: store query failed (exit ${result})\n${stdout}\n${stderr}")
    endif()

    file(READ "${mem_csv}" mem_bytes)
    file(READ "${query_csv}" query_bytes)
    if(NOT mem_bytes STREQUAL query_bytes)
      message(FATAL_ERROR
        "${label}: store round trip is not byte-identical\n"
        "in-memory: ${mem_csv}\nqueried:   ${query_csv}")
    endif()
  endforeach()
endforeach()

# Sharded write/query/compact round trip: one 12-object feed persisted
# at 1, 2 and 8 shards must serve byte-identical per-object and window
# CSVs — before --compact, after it, and through both the R-tree and the
# flat footer scan (the acceptance sweep of the sharded-store PR).
set(shard_ref_csv "")
foreach(shards IN ITEMS 1 2 8)
  set(store "${WORK_DIR}/shard${shards}.store")
  set(mem_csv "${WORK_DIR}/shard${shards}_mem.csv")
  execute_process(
    COMMAND "${OPERB_CLI}" --group-by-id
            --generate "SerCar:400:20170402" --objects 12
            --spec "OPERB:zeta=40" --no-verify
            --store-out "${store}" --store-shards "${shards}"
            --output "${mem_csv}"
    RESULT_VARIABLE result
    OUTPUT_VARIABLE stdout
    ERROR_VARIABLE stderr)
  if(NOT result EQUAL 0)
    message(FATAL_ERROR
      "shards=${shards}: store write failed (exit ${result})\n${stderr}")
  endif()

  # The same store state is queried four ways: {uncompacted, compacted}
  # x {indexed, flat}. All four CSVs — and the in-memory write-side CSV
  # — must be byte-identical (the all-covering window matches every
  # segment, and the canonical result order is object id).
  file(READ "${mem_csv}" want_bytes)
  foreach(state uncompacted compacted)
    if(state STREQUAL "compacted")
      execute_process(
        COMMAND "${OPERB_CLI}" --compact "${store}"
        RESULT_VARIABLE result
        OUTPUT_VARIABLE stdout
        ERROR_VARIABLE stderr)
      if(NOT result EQUAL 0 OR NOT stdout MATCHES "compacted:")
        message(FATAL_ERROR
          "shards=${shards}: --compact failed (exit ${result})\n${stderr}")
      endif()
    endif()
    foreach(mode indexed flat)
      set(query_csv "${WORK_DIR}/shard${shards}_${state}_${mode}.csv")
      set(mode_flag "")
      if(mode STREQUAL "flat")
        set(mode_flag "--flat-scan")
      endif()
      execute_process(
        COMMAND "${OPERB_CLI}" --query "${store}"
                --window -1e9,-1e9,1e9,1e9 ${mode_flag}
                --output "${query_csv}"
        RESULT_VARIABLE result
        OUTPUT_VARIABLE stdout
        ERROR_VARIABLE stderr)
      if(NOT result EQUAL 0)
        message(FATAL_ERROR
          "shards=${shards} ${state} ${mode}: query failed "
          "(exit ${result})\n${stderr}")
      endif()
      file(READ "${query_csv}" got_bytes)
      if(NOT got_bytes STREQUAL want_bytes)
        message(FATAL_ERROR
          "shards=${shards} ${state} ${mode}: window query is not "
          "byte-identical to the write-side CSV")
      endif()
    endforeach()
  endforeach()

  # And across shard counts: every mem CSV equals the 1-shard one.
  if(shard_ref_csv STREQUAL "")
    set(shard_ref_csv "${want_bytes}")
  elseif(NOT want_bytes STREQUAL shard_ref_csv)
    message(FATAL_ERROR
      "shards=${shards}: output differs from the 1-shard store")
  endif()
endforeach()

# Compacting a store that does not exist keeps the documented exit 3.
execute_process(
  COMMAND "${OPERB_CLI}" --compact "${WORK_DIR}/does_not_exist.store"
  RESULT_VARIABLE result
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT result EQUAL 3)
  message(FATAL_ERROR
    "missing store --compact: expected exit 3, got ${result}\n${stderr}")
endif()

# A window query against the last store must succeed and report its
# skip-scan stats line.
execute_process(
  COMMAND "${OPERB_CLI}" --query "${WORK_DIR}/rt.store"
          --window -1e7,-1e7,1e7,1e7
  RESULT_VARIABLE result
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT result EQUAL 0 OR NOT stdout MATCHES "scan:")
  message(FATAL_ERROR
    "window query failed (exit ${result})\n${stdout}\n${stderr}")
endif()

# I/O negatives keep their documented exit code 3.
execute_process(
  COMMAND "${OPERB_CLI}" --query "${WORK_DIR}/does_not_exist.store"
          --object 0
  RESULT_VARIABLE result
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT result EQUAL 3)
  message(FATAL_ERROR
    "missing store: expected exit 3, got ${result}\n${stderr}")
endif()
execute_process(
  COMMAND "${OPERB_CLI}" --generate SerCar:300:2
          --store-out "${WORK_DIR}/no-such-dir/x.store"
  RESULT_VARIABLE result
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT result EQUAL 3)
  message(FATAL_ERROR
    "unwritable store: expected exit 3, got ${result}\n${stderr}")
endif()

message(STATUS
  "operb_cli store round-trip smoke passed (40 pairs + 1/2/8-shard "
  "compaction sweep)")
