#include <sys/stat.h>

#include <clocale>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <locale>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "traj/cleaner.h"
#include "traj/io.h"
#include "traj/multi_object.h"
#include "traj/piecewise.h"
#include "traj/trajectory.h"

namespace operb::traj {
namespace {

TEST(TrajectoryTest, AppendEnforcesMonotonicTime) {
  Trajectory t;
  EXPECT_TRUE(t.Append({0, 0, 1.0}).ok());
  EXPECT_TRUE(t.Append({1, 1, 2.0}).ok());
  const Status bad = t.Append({2, 2, 2.0});
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t.size(), 2u);
  const Status worse = t.Append({2, 2, 1.5});
  EXPECT_FALSE(worse.ok());
}

TEST(TrajectoryTest, ValidateDetectsUncheckedViolations) {
  Trajectory t;
  t.AppendUnchecked({0, 0, 5.0});
  t.AppendUnchecked({1, 0, 4.0});
  EXPECT_FALSE(t.Validate().ok());
  Trajectory good;
  good.AppendUnchecked({0, 0, 0.0});
  good.AppendUnchecked({1, 0, 1.0});
  EXPECT_TRUE(good.Validate().ok());
}

TEST(TrajectoryTest, SummaryStatistics) {
  Trajectory t;
  t.AppendUnchecked({0, 0, 0.0});
  t.AppendUnchecked({3, 4, 2.0});
  t.AppendUnchecked({3, 10, 4.0});
  EXPECT_DOUBLE_EQ(t.PathLength(), 5.0 + 6.0);
  EXPECT_DOUBLE_EQ(t.Duration(), 4.0);
  EXPECT_DOUBLE_EQ(t.MeanSamplingIntervalSeconds(), 2.0);
  Trajectory single;
  single.AppendUnchecked({0, 0, 0.0});
  EXPECT_DOUBLE_EQ(single.Duration(), 0.0);
  EXPECT_DOUBLE_EQ(single.MeanSamplingIntervalSeconds(), 0.0);
}

RepresentedSegment Seg(geo::Vec2 a, geo::Vec2 b, std::size_t f,
                       std::size_t l) {
  RepresentedSegment s;
  s.start = a;
  s.end = b;
  s.first_index = f;
  s.last_index = l;
  return s;
}

TEST(PiecewiseTest, PointCountConvention) {
  const auto s = Seg({0, 0}, {1, 0}, 3, 7);
  EXPECT_EQ(s.PointCount(), 5u);
}

TEST(PiecewiseTest, StoredPointCount) {
  PiecewiseRepresentation rep;
  EXPECT_EQ(rep.StoredPointCount(), 0u);
  rep.Append(Seg({0, 0}, {10, 0}, 0, 4));
  EXPECT_EQ(rep.StoredPointCount(), 2u);
  rep.Append(Seg({10, 0}, {10, 10}, 4, 9));
  EXPECT_EQ(rep.StoredPointCount(), 3u);
}

Trajectory FivePoints() {
  Trajectory t;
  t.AppendUnchecked({0, 0, 0});
  t.AppendUnchecked({10, 0, 1});
  t.AppendUnchecked({20, 0, 2});
  t.AppendUnchecked({20, 10, 3});
  t.AppendUnchecked({20, 20, 4});
  return t;
}

TEST(PiecewiseTest, ValidateAcceptsWellFormed) {
  const Trajectory t = FivePoints();
  PiecewiseRepresentation rep;
  rep.Append(Seg({0, 0}, {20, 0}, 0, 2));
  rep.Append(Seg({20, 0}, {20, 20}, 2, 4));
  EXPECT_TRUE(rep.ValidateAgainst(t).ok());
}

TEST(PiecewiseTest, ValidateRejectsGapsWithoutPatchFlags) {
  const Trajectory t = FivePoints();
  PiecewiseRepresentation rep;
  rep.Append(Seg({0, 0}, {20, 0}, 0, 2));
  rep.Append(Seg({20, 0}, {20, 20}, 3, 4));  // gap 2 -> 3, no flags
  EXPECT_FALSE(rep.ValidateAgainst(t).ok());
}

TEST(PiecewiseTest, ValidateAcceptsPatchedJunctionGap) {
  const Trajectory t = FivePoints();
  PiecewiseRepresentation rep;
  auto a = Seg({0, 0}, {25, 0}, 0, 2);
  a.end_is_patch = true;  // G = (25, 0)
  rep.Append(a);
  auto b = Seg({25, 0}, {20, 20}, 3, 4);
  b.start_is_patch = true;
  rep.Append(b);
  EXPECT_TRUE(rep.ValidateAgainst(t).ok());
}

TEST(PiecewiseTest, ValidateRejectsDiscontinuousGeometry) {
  const Trajectory t = FivePoints();
  PiecewiseRepresentation rep;
  rep.Append(Seg({0, 0}, {20, 0}, 0, 2));
  rep.Append(Seg({21, 0}, {20, 20}, 2, 4));  // start != previous end
  EXPECT_FALSE(rep.ValidateAgainst(t).ok());
}

TEST(PiecewiseTest, ValidateRejectsWrongEndpoints) {
  const Trajectory t = FivePoints();
  PiecewiseRepresentation rep;
  rep.Append(Seg({0, 0}, {19, 0}, 0, 2));  // end not at P2, unflagged
  rep.Append(Seg({19, 0}, {20, 20}, 2, 4));
  EXPECT_FALSE(rep.ValidateAgainst(t).ok());
}

TEST(PiecewiseTest, ValidateRejectsNotCoveringWholeTrajectory) {
  const Trajectory t = FivePoints();
  PiecewiseRepresentation rep;
  rep.Append(Seg({0, 0}, {20, 0}, 0, 2));
  EXPECT_FALSE(rep.ValidateAgainst(t).ok());
}

TEST(PiecewiseTest, TinyTrajectoriesRequireEmptyRepresentation) {
  Trajectory one;
  one.AppendUnchecked({0, 0, 0});
  PiecewiseRepresentation empty;
  EXPECT_TRUE(empty.ValidateAgainst(one).ok());
  PiecewiseRepresentation nonempty;
  nonempty.Append(Seg({0, 0}, {0, 0}, 0, 0));
  EXPECT_FALSE(nonempty.ValidateAgainst(one).ok());
}

TEST(CleanerTest, DropsDuplicates) {
  StreamCleaner cleaner;
  EXPECT_TRUE(cleaner.Push({0, 0, 1.0}).has_value());
  EXPECT_FALSE(cleaner.Push({0, 0, 1.0}).has_value());
  EXPECT_TRUE(cleaner.Push({1, 0, 2.0}).has_value());
  EXPECT_EQ(cleaner.stats().duplicates_dropped, 1u);
  EXPECT_EQ(cleaner.stats().accepted, 2u);
}

TEST(CleanerTest, DropsOutOfOrder) {
  StreamCleaner cleaner;
  cleaner.Push({0, 0, 10.0});
  EXPECT_FALSE(cleaner.Push({5, 5, 9.0}).has_value());
  EXPECT_EQ(cleaner.stats().out_of_order_dropped, 1u);
  // Same position, earlier time: out-of-order, not duplicate.
  EXPECT_FALSE(cleaner.Push({0, 0, 5.0}).has_value());
  EXPECT_EQ(cleaner.stats().out_of_order_dropped, 2u);
}

TEST(CleanerTest, SpeedGateDropsImpossibleJumps) {
  CleanerOptions opts;
  opts.max_speed_mps = 50.0;
  StreamCleaner cleaner(opts);
  cleaner.Push({0, 0, 0.0});
  // 1000 m in 1 s = 1000 m/s: impossible.
  EXPECT_FALSE(cleaner.Push({1000, 0, 1.0}).has_value());
  EXPECT_EQ(cleaner.stats().outliers_dropped, 1u);
  // 40 m in 1 s is fine.
  EXPECT_TRUE(cleaner.Push({40, 0, 1.0}).has_value());
}

TEST(CleanerTest, CleanAllProducesValidTrajectory) {
  std::vector<geo::Point> raw{{0, 0, 0.0}, {1, 0, 1.0}, {1, 0, 1.0},
                              {2, 0, 0.5}, {3, 0, 2.0}};
  StreamCleaner cleaner;
  const Trajectory t = cleaner.CleanAll(raw);
  EXPECT_TRUE(t.Validate().ok());
  EXPECT_EQ(t.size(), 3u);
}

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-case directory: gtest_discover_tests runs cases as separate
    // concurrent processes, so a shared fixed path would let one case's
    // TearDown remove_all another case's files mid-write.
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("operb_io_test_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(IoTest, CsvRoundTrip) {
  Trajectory t;
  t.AppendUnchecked({1.5, -2.25, 0.0});
  t.AppendUnchecked({3.125, 4.5, 60.0});
  ASSERT_TRUE(WriteCsv(t, Path("t.csv")).ok());
  auto r = ReadCsv(Path("t.csv"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 2u);
  EXPECT_DOUBLE_EQ((*r)[0].x, 1.5);
  EXPECT_DOUBLE_EQ((*r)[1].y, 4.5);
  EXPECT_DOUBLE_EQ((*r)[1].t, 60.0);
}

TEST_F(IoTest, ReadMissingFileIsIOError) {
  const auto r = ReadCsv(Path("nope.csv"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST_F(IoTest, ParseCsvRejectsMalformedRow) {
  const auto r = ParseCsv("1,2,3\nnot-a-row\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST_F(IoTest, ParseCsvRejectsNonMonotonicTime) {
  const auto r = ParseCsv("0,0,5\n1,1,4\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST_F(IoTest, ParseCsvSkipsCommentsAndBlanks) {
  const auto r = ParseCsv("# header\n\n0,0,0\n  \n1,1,1\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
}

TEST_F(IoTest, GeoLifePltParses) {
  const std::string plt =
      "Geolife trajectory\nWGS 84\nAltitude is in Feet\nReserved 3\n"
      "0,2,255,My Track,0,0,2,8421376\n0\n"
      "39.906631,116.385564,0,492,39744.245208,2008-10-23,05:53:06\n"
      "39.906554,116.385625,0,492,39744.245266,2008-10-23,05:53:11\n"
      "39.906409,116.385870,0,492,39744.245324,2008-10-23,05:53:16\n";
  const std::string path = Path("a.plt");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(plt.c_str(), f);
    std::fclose(f);
  }
  const auto r = ReadGeoLifePlt(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 3u);
  // First point is the projection reference -> origin, t = 0.
  EXPECT_NEAR((*r)[0].x, 0.0, 1e-9);
  EXPECT_NEAR((*r)[0].y, 0.0, 1e-9);
  EXPECT_NEAR((*r)[0].t, 0.0, 1e-9);
  // 5-second sampling.
  EXPECT_NEAR((*r)[1].t, 5.0, 0.1);
  // ~10 m of southward movement between the first two fixes.
  EXPECT_LT((*r)[1].y, 0.0);
  EXPECT_TRUE(r->Validate().ok());
}

TEST_F(IoTest, GeoLifePltRejectsTruncatedHeader) {
  const std::string path = Path("bad.plt");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("only\ntwo lines\n", f);
    std::fclose(f);
  }
  const auto r = ReadGeoLifePlt(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST_F(IoTest, GeoLifePltRejectsOutOfRangeCoordinates) {
  const std::string path = Path("oob.plt");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("h\nh\nh\nh\nh\nh\n200.0,116.0,0,0,39744.0,d,t\n", f);
    std::fclose(f);
  }
  const auto r = ReadGeoLifePlt(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

/// Restores both the C and the C++ global locale on scope exit, so a
/// failing assertion can't leak a comma-decimal locale into later tests.
class ScopedLocale {
 public:
  ScopedLocale() {
    const char* current = std::setlocale(LC_ALL, nullptr);
    saved_c_ = current != nullptr ? current : "C";
  }
  ~ScopedLocale() {
    std::locale::global(saved_cxx_);
    std::setlocale(LC_ALL, saved_c_.c_str());
  }

 private:
  std::string saved_c_;
  std::locale saved_cxx_;
};

/// A numpunct facet whose decimal separator is ',' — available on every
/// platform, unlike the OS's de_DE/fr_FR locale data.
class CommaDecimalNumpunct : public std::numpunct<char> {
 protected:
  char do_decimal_point() const override { return ','; }
  char do_thousands_sep() const override { return '.'; }
  std::string do_grouping() const override { return "\3"; }
};

/// Regression test for the sscanf-era locale fragility: "%lf" honors the
/// process locale's decimal separator, so under a ","-decimal locale
/// "1.5" parsed as 1 (stopping at the '.'). The from_chars scanner is
/// locale-independent by specification; pin that down under both a
/// comma-decimal C++ global locale and (where the OS ships one) a
/// comma-decimal C locale.
TEST_F(IoTest, ParsingIsLocaleIndependent) {
  ScopedLocale guard;
  std::locale::global(
      std::locale(std::locale::classic(), new CommaDecimalNumpunct));
  // Best effort for the C locale (what sscanf/strtod actually read):
  // containers often ship no comma-decimal locale data; the custom C++
  // facet above covers the stream half regardless.
  for (const char* name :
       {"de_DE.UTF-8", "de_DE", "fr_FR.UTF-8", "nl_NL.UTF-8"}) {
    if (std::setlocale(LC_ALL, name) != nullptr) break;
  }

  const auto csv = ParseCsv("1.5,-2.25,0.5\n3.125,4.5,1.5\n");
  ASSERT_TRUE(csv.ok()) << csv.status().ToString();
  ASSERT_EQ(csv->size(), 2u);
  EXPECT_EQ((*csv)[0].x, 1.5);
  EXPECT_EQ((*csv)[0].y, -2.25);
  EXPECT_EQ((*csv)[0].t, 0.5);
  EXPECT_EQ((*csv)[1].x, 3.125);
  EXPECT_EQ((*csv)[1].t, 1.5);

  const auto plt = ParseGeoLifePlt(
      "h\nh\nh\nh\nh\nh\n"
      "39.906631,116.385564,0,492,39744.245208,2008-10-23,05:53:06\n"
      "39.906554,116.385625,0,492,39744.245266,2008-10-23,05:53:11\n");
  ASSERT_TRUE(plt.ok()) << plt.status().ToString();
  ASSERT_EQ(plt->size(), 2u);
  EXPECT_NEAR((*plt)[1].t, 5.0, 0.1);  // fractional days survived parsing
}

TEST_F(IoTest, ParseCsvAcceptsPlusSignAndDosLineEndings) {
  // sscanf's %lf accepted an explicit '+' and "\r\n" rows; the from_chars
  // scanner must not regress either.
  const auto r = ParseCsv("+1.5,+2.5,+0.5\r\n2.5,3.5,1.5\r\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ((*r)[0].x, 1.5);
  EXPECT_EQ((*r)[0].t, 0.5);
}

TEST_F(IoTest, ParseCsvRejectsDoublySignedNumbers) {
  // "+-1.5" made strtod convert nothing; it must not parse as -1.5.
  const auto r = ParseCsv("+-1.5,2.5,0.5\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST_F(IoTest, ReadCsvFromNonSeekableSource) {
  // Pipes and process substitution have no file size; the reader must
  // fall back to chunked reads instead of failing the tellg fast path.
  const std::string fifo = Path("t.fifo");
  ASSERT_EQ(mkfifo(fifo.c_str(), 0600), 0);
  std::thread writer([&fifo] {
    std::ofstream out(fifo);  // blocks until the reader opens
    out << "0,0,0\n1,1,1\n";
  });
  const auto r = ReadCsv(fifo);
  writer.join();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 2u);
}

TEST_F(IoTest, WriteCsvStringRoundTrips) {
  Trajectory t;
  t.AppendUnchecked({1.5, -2.25, 0.0});
  t.AppendUnchecked({3.125, 4.5, 60.0});
  const auto r = ParseCsv(WriteCsvString(t));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ((*r)[1].x, 3.125);
}

TEST_F(IoTest, RepresentationCsvWrites) {
  PiecewiseRepresentation rep;
  rep.Append(Seg({0, 0}, {10, 0}, 0, 3));
  rep.Append(Seg({10, 0}, {10, 5}, 3, 5));
  ASSERT_TRUE(WriteRepresentationCsv(rep, Path("rep.csv")).ok());
  std::FILE* f = std::fopen(Path("rep.csv").c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[256];
  int rows = 0;
  while (std::fgets(buf, sizeof(buf), f) != nullptr) ++rows;
  std::fclose(f);
  EXPECT_EQ(rows, 1 + 2 + 1);  // header + segments + final endpoint
}

// ---------------------------------------------------------------------------
// Multi-object streams (id,t,x,y CSV + grouping).
// ---------------------------------------------------------------------------

TEST_F(IoTest, MultiObjectCsvParsesInterleavedRowsInFileOrder) {
  const auto r = ParseMultiObjectCsv(
      "# object_id,t_seconds,x_meters,y_meters\n"
      "7,0,1.5,2.5\n"
      "3,0.5,-1,0\n"
      "\n"
      "7,1,2.5,3.5\n"
      "# trailing comment\n"
      "3,1.5,-2,0\r\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 4u);
  EXPECT_EQ((*r)[0].object_id, 7u);
  EXPECT_DOUBLE_EQ((*r)[0].point.x, 1.5);
  EXPECT_DOUBLE_EQ((*r)[0].point.t, 0.0);
  EXPECT_EQ((*r)[1].object_id, 3u);
  EXPECT_EQ((*r)[2].object_id, 7u);
  EXPECT_EQ((*r)[3].object_id, 3u);  // DOS line ending stripped
  EXPECT_DOUBLE_EQ((*r)[3].point.x, -2.0);
}

TEST_F(IoTest, ParseCsvPointsAcceptsRawRowsTheValidatingParserRejects) {
  // Same row grammar as ParseCsv, but duplicates and time regressions
  // pass through (the cleaner-fronted ingest path).
  const std::string dirty = "0,0,0\n1,0,1\n1,0,1\n0.5,0,0.5\n2,0,2\n";
  ASSERT_FALSE(ParseCsv(dirty).ok());
  const auto raw = ParseCsvPoints(dirty);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  ASSERT_EQ(raw->size(), 5u);
  EXPECT_DOUBLE_EQ((*raw)[2].t, 1.0);   // duplicate kept
  EXPECT_DOUBLE_EQ((*raw)[3].t, 0.5);   // regression kept
  // Syntax errors are still Corruption.
  EXPECT_EQ(ParseCsvPoints("1,2\n").status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(ParseCsvPoints("a,b,c\n").status().code(),
            StatusCode::kCorruption);
}

TEST_F(IoTest, MultiObjectCsvRejectsMalformedRows) {
  const auto missing_field = ParseMultiObjectCsv("1,0,1\n");
  ASSERT_FALSE(missing_field.ok());
  EXPECT_EQ(missing_field.status().code(), StatusCode::kCorruption);
  const auto negative_id = ParseMultiObjectCsv("-4,0,1,1\n");
  ASSERT_FALSE(negative_id.ok());
  const auto junk = ParseMultiObjectCsv("7,zero,1,1\n");
  ASSERT_FALSE(junk.ok());
}

TEST_F(IoTest, MultiObjectCsvRoundTripsThroughFile) {
  std::vector<ObjectUpdate> updates = {
      {1, {10.5, -3.25, 0.0}},
      {2, {0.0, 0.0, 0.5}},
      {1, {11.5, -3.5, 1.0}},
  };
  ASSERT_TRUE(
      WriteMultiObjectCsv(updates, Path("fleet.csv")).ok());
  const auto r = ReadMultiObjectCsv(Path("fleet.csv"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 3u);
  EXPECT_EQ((*r)[0].object_id, 1u);
  EXPECT_DOUBLE_EQ((*r)[0].point.x, 10.5);
  EXPECT_EQ((*r)[1].object_id, 2u);
  EXPECT_DOUBLE_EQ((*r)[2].point.t, 1.0);
}

TEST_F(IoTest, TaggedSegmentsCsvWritesOneRowPerSegment) {
  std::vector<TaggedSegment> segments;
  TaggedSegment a;
  a.object_id = 12;
  a.segment = Seg({0, 0}, {10, 0}, 0, 3);
  segments.push_back(a);
  a.object_id = 9;
  a.segment = Seg({10, 0}, {10, 5}, 3, 5);
  a.segment.end_is_patch = true;
  segments.push_back(a);
  const std::string csv = WriteTaggedSegmentsCsvString(segments);
  EXPECT_NE(csv.find("12,0,3,0,0,"), std::string::npos);
  EXPECT_NE(csv.find("9,3,5,0,1,"), std::string::npos);
  ASSERT_TRUE(WriteTaggedSegmentsCsv(segments, Path("tagged.csv")).ok());
  std::FILE* f = std::fopen(Path("tagged.csv").c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[256];
  int rows = 0;
  while (std::fgets(buf, sizeof(buf), f) != nullptr) ++rows;
  std::fclose(f);
  EXPECT_EQ(rows, 1 + 2);  // header + one row per segment
}

TEST(MultiObjectTest, GroupUpdatesByObjectKeepsFirstAppearanceOrder) {
  const std::vector<ObjectUpdate> updates = {
      {5, {0, 0, 0}}, {2, {1, 1, 0}}, {5, {2, 2, 1}},
      {9, {3, 3, 0}}, {2, {4, 4, 1}}, {5, {5, 5, 2}},
  };
  const auto r = GroupUpdatesByObject(updates);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 3u);
  EXPECT_EQ((*r)[0].object_id, 5u);
  EXPECT_EQ((*r)[1].object_id, 2u);
  EXPECT_EQ((*r)[2].object_id, 9u);
  EXPECT_EQ((*r)[0].trajectory.size(), 3u);
  EXPECT_EQ((*r)[1].trajectory.size(), 2u);
  EXPECT_EQ((*r)[2].trajectory.size(), 1u);
  EXPECT_DOUBLE_EQ((*r)[0].trajectory[2].x, 5.0);
}

TEST(MultiObjectTest, GroupUpdatesRejectsPerObjectTimeRegression) {
  // Object 4's second point goes back in time; object 8's interleaved
  // points are fine and must not mask it.
  const std::vector<ObjectUpdate> updates = {
      {4, {0, 0, 10.0}}, {8, {0, 0, 0.0}}, {4, {1, 1, 9.0}},
  };
  const auto r = GroupUpdatesByObject(updates);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(MultiObjectTest, InterleaveRoundRobinAlternatesAndDrainsTails) {
  ObjectTrajectory a;
  a.object_id = 1;
  a.trajectory.AppendUnchecked({0, 0, 0});
  a.trajectory.AppendUnchecked({1, 0, 1});
  a.trajectory.AppendUnchecked({2, 0, 2});
  ObjectTrajectory b;
  b.object_id = 2;
  b.trajectory.AppendUnchecked({9, 9, 0});
  const std::vector<ObjectTrajectory> objects = {a, b};
  const std::vector<ObjectUpdate> updates = InterleaveRoundRobin(objects);
  ASSERT_EQ(updates.size(), 4u);
  EXPECT_EQ(updates[0].object_id, 1u);
  EXPECT_EQ(updates[1].object_id, 2u);
  EXPECT_EQ(updates[2].object_id, 1u);  // b exhausted, a's tail continues
  EXPECT_EQ(updates[3].object_id, 1u);
  // Grouping the interleave recovers the originals.
  const auto grouped = GroupUpdatesByObject(updates);
  ASSERT_TRUE(grouped.ok());
  ASSERT_EQ(grouped.value().size(), 2u);
  EXPECT_EQ(grouped.value()[0].trajectory.size(), 3u);
  EXPECT_EQ(grouped.value()[1].trajectory.size(), 1u);
}

}  // namespace
}  // namespace operb::traj
