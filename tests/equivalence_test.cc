// Golden equivalence suite for the hot-path optimizations.
//
// The fixtures under tests/golden/ were produced by the pre-optimization
// scalar implementation (trig per point, buffered emission, per-point
// Push). Every algorithm must keep emitting *bit-identical* segments
// through every execution path:
//   (a) the batch Simplify() entry point,
//   (b) the streaming sink path (SimplifyToSink),
//   (c) for the OPERB family: per-point Push + TakeEmitted polling,
//   (d) for the OPERB family: batch Push(span) + sink.
// Regenerate the fixtures with tools/make_golden only for an intentional
// output change, and re-review the diff.

#include <charconv>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/simplifier.h"
#include "core/operb.h"
#include "core/operb_a.h"
#include "datagen/profiles.h"
#include "datagen/rng.h"
#include "traj/piecewise.h"
#include "traj/trajectory.h"

namespace operb {
namespace {

// Must match tools/make_golden.cc.
constexpr std::uint64_t kGoldenSeed = 20170401;
constexpr std::size_t kGoldenPoints = 600;
constexpr double kGoldenZeta = 40.0;

std::vector<traj::RepresentedSegment> LoadGolden(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "missing golden file " << path
                            << " (regenerate with tools/make_golden)";
  std::vector<traj::RepresentedSegment> out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    traj::RepresentedSegment s;
    const char* p = line.c_str();
    const char* end = p + line.size();
    unsigned long long first = 0, last = 0;
    int sp = 0, ep = 0;
    auto field = [&](auto* value) {
      if (p < end && *p == ',') ++p;
      const auto r = std::from_chars(p, end, *value);
      ASSERT_EQ(r.ec, std::errc()) << "corrupt golden row: " << line;
      p = r.ptr;
    };
    field(&first);
    field(&last);
    field(&sp);
    field(&ep);
    field(&s.start.x);
    field(&s.start.y);
    field(&s.end.x);
    field(&s.end.y);
    s.first_index = first;
    s.last_index = last;
    s.start_is_patch = sp != 0;
    s.end_is_patch = ep != 0;
    out.push_back(s);
  }
  return out;
}

void ExpectSegmentsEqual(const std::vector<traj::RepresentedSegment>& actual,
                         const std::vector<traj::RepresentedSegment>& want,
                         const std::string& label) {
  ASSERT_EQ(actual.size(), want.size()) << label;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    SCOPED_TRACE(label + " segment " + std::to_string(i));
    EXPECT_EQ(actual[i].first_index, want[i].first_index);
    EXPECT_EQ(actual[i].last_index, want[i].last_index);
    EXPECT_EQ(actual[i].start_is_patch, want[i].start_is_patch);
    EXPECT_EQ(actual[i].end_is_patch, want[i].end_is_patch);
    EXPECT_EQ(actual[i].start.x, want[i].start.x);
    EXPECT_EQ(actual[i].start.y, want[i].start.y);
    EXPECT_EQ(actual[i].end.x, want[i].end.x);
    EXPECT_EQ(actual[i].end.y, want[i].end.y);
  }
}

std::vector<traj::RepresentedSegment> ToVector(
    const traj::PiecewiseRepresentation& rep) {
  return rep.segments();
}

traj::Trajectory GoldenTrajectory(datagen::DatasetKind kind) {
  datagen::Rng rng(kGoldenSeed);
  return datagen::GenerateTrajectory(datagen::DatasetProfile::For(kind),
                                     kGoldenPoints, &rng);
}

class EquivalenceTest
    : public testing::TestWithParam<
          std::tuple<baselines::Algorithm, datagen::DatasetKind>> {};

TEST_P(EquivalenceTest, AllPathsMatchGolden) {
  const auto [algo, kind] = GetParam();
  const traj::Trajectory t = GoldenTrajectory(kind);
  const std::string golden_path =
      std::string(OPERB_GOLDEN_DIR) + "/golden_" +
      std::string(baselines::AlgorithmName(algo)) + "_" +
      std::string(datagen::DatasetName(kind)) + ".csv";
  const std::vector<traj::RepresentedSegment> golden =
      LoadGolden(golden_path);
  if (HasFailure()) return;

  const auto simplifier = baselines::MakeSimplifier(algo, kGoldenZeta);

  // (a) Batch entry point.
  ExpectSegmentsEqual(ToVector(simplifier->Simplify(t)), golden, "Simplify");

  // (b) Streaming sink path.
  std::vector<traj::RepresentedSegment> via_sink;
  simplifier->SimplifyToSink(
      t, [&via_sink](const traj::RepresentedSegment& s) {
        via_sink.push_back(s);
      });
  ExpectSegmentsEqual(via_sink, golden, "SimplifyToSink");
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAllProfiles, EquivalenceTest,
    testing::Combine(testing::ValuesIn(baselines::AllAlgorithms()),
                     testing::ValuesIn(datagen::AllDatasetKinds())),
    [](const testing::TestParamInfo<EquivalenceTest::ParamType>& info) {
      std::string name =
          std::string(baselines::AlgorithmName(std::get<0>(info.param))) +
          "_" + std::string(datagen::DatasetName(std::get<1>(info.param)));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

/// The OPERB-family streams additionally expose raw Push/TakeEmitted and
/// batch Push(span): both must match the golden output exactly.
class OperbStreamPathsTest
    : public testing::TestWithParam<datagen::DatasetKind> {};

TEST_P(OperbStreamPathsTest, OperbPollingAndBatchPathsMatchGolden) {
  const datagen::DatasetKind kind = GetParam();
  const traj::Trajectory t = GoldenTrajectory(kind);
  const std::vector<traj::RepresentedSegment> golden =
      LoadGolden(std::string(OPERB_GOLDEN_DIR) + "/golden_OPERB_" +
                 std::string(datagen::DatasetName(kind)) + ".csv");
  if (HasFailure()) return;
  const core::OperbOptions opts = core::OperbOptions::Optimized(kGoldenZeta);

  // (c) Per-point Push with TakeEmitted polling (capacity-reusing drain).
  core::OperbStream polling(opts);
  std::vector<traj::RepresentedSegment> collected;
  std::vector<traj::RepresentedSegment> batch;
  for (const geo::Point& p : t) {
    polling.Push(p);
    polling.TakeEmitted(&batch);
    collected.insert(collected.end(), batch.begin(), batch.end());
  }
  polling.Finish();
  polling.TakeEmitted(&batch);
  collected.insert(collected.end(), batch.begin(), batch.end());
  ExpectSegmentsEqual(collected, golden, "polling");

  // (d) Batch Push(span) + sink.
  core::OperbStream spans(opts);
  std::vector<traj::RepresentedSegment> via_sink;
  spans.SetSink([&via_sink](const traj::RepresentedSegment& s) {
    via_sink.push_back(s);
  });
  const std::span<const geo::Point> all(t.points());
  spans.Push(all.subspan(0, t.size() / 2));
  spans.Push(all.subspan(t.size() / 2));
  spans.Finish();
  ExpectSegmentsEqual(via_sink, golden, "span+sink");
}

TEST_P(OperbStreamPathsTest, OperbAPollingAndBatchPathsMatchGolden) {
  const datagen::DatasetKind kind = GetParam();
  const traj::Trajectory t = GoldenTrajectory(kind);
  const std::vector<traj::RepresentedSegment> golden =
      LoadGolden(std::string(OPERB_GOLDEN_DIR) + "/golden_OPERB-A_" +
                 std::string(datagen::DatasetName(kind)) + ".csv");
  if (HasFailure()) return;
  const core::OperbAOptions opts =
      core::OperbAOptions::Optimized(kGoldenZeta);

  core::OperbAStream polling(opts);
  std::vector<traj::RepresentedSegment> collected;
  std::vector<traj::RepresentedSegment> batch;
  for (const geo::Point& p : t) {
    polling.Push(p);
    polling.TakeEmitted(&batch);
    collected.insert(collected.end(), batch.begin(), batch.end());
  }
  polling.Finish();
  polling.TakeEmitted(&batch);
  collected.insert(collected.end(), batch.begin(), batch.end());
  ExpectSegmentsEqual(collected, golden, "polling");

  core::OperbAStream spans(opts);
  std::vector<traj::RepresentedSegment> via_sink;
  spans.SetSink([&via_sink](const traj::RepresentedSegment& s) {
    via_sink.push_back(s);
  });
  spans.Push(std::span<const geo::Point>(t.points()));
  spans.Finish();
  ExpectSegmentsEqual(via_sink, golden, "span+sink");
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, OperbStreamPathsTest,
    testing::ValuesIn(datagen::AllDatasetKinds()),
    [](const testing::TestParamInfo<datagen::DatasetKind>& info) {
      return std::string(datagen::DatasetName(info.param));
    });

}  // namespace
}  // namespace operb
