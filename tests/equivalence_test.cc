// Golden equivalence suite for the hot-path optimizations.
//
// The fixtures under tests/golden/ were produced by the pre-optimization
// scalar implementation (trig per point, buffered emission, per-point
// Push). Every algorithm must keep emitting *bit-identical* segments
// through every execution path:
//   (a) the batch Simplify() entry point,
//   (b) the streaming sink path (SimplifyToSink),
//   (c) for the OPERB family: per-point Push + TakeEmitted polling,
//   (d) for the OPERB family: batch Push(span) + sink.
// Regenerate the fixtures with tools/make_golden only for an intentional
// output change, and re-review the diff.

#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/simplifier.h"
#include "core/operb.h"
#include "core/operb_a.h"
#include "datagen/profiles.h"
#include "geo/simd.h"
#include "test_util.h"
#include "traj/piecewise.h"
#include "traj/trajectory.h"

namespace operb {
namespace {

using testutil::ExpectSegmentsEqual;
using testutil::GoldenTrajectory;
using testutil::kGoldenZeta;
using testutil::LoadGolden;

std::vector<traj::RepresentedSegment> ToVector(
    const traj::PiecewiseRepresentation& rep) {
  return rep.segments();
}

class EquivalenceTest
    : public testing::TestWithParam<
          std::tuple<baselines::Algorithm, datagen::DatasetKind>> {};

TEST_P(EquivalenceTest, AllPathsMatchGolden) {
  const auto [algo, kind] = GetParam();
  const traj::Trajectory t = GoldenTrajectory(kind);
  const std::string golden_path =
      std::string(OPERB_GOLDEN_DIR) + "/golden_" +
      std::string(baselines::AlgorithmName(algo)) + "_" +
      std::string(datagen::DatasetName(kind)) + ".csv";
  const std::vector<traj::RepresentedSegment> golden =
      LoadGolden(golden_path);
  if (HasFailure()) return;

  const auto simplifier = baselines::MakeSimplifier(algo, kGoldenZeta);

  // (a) Batch entry point.
  ExpectSegmentsEqual(ToVector(simplifier->Simplify(t)), golden, "Simplify");

  // (b) Streaming sink path.
  std::vector<traj::RepresentedSegment> via_sink;
  simplifier->SimplifyToSink(
      t, [&via_sink](const traj::RepresentedSegment& s) {
        via_sink.push_back(s);
      });
  ExpectSegmentsEqual(via_sink, golden, "SimplifyToSink");
}

/// Forced-scalar vs forced-SIMD: every algorithm, on every golden
/// profile, must emit byte-identical segments at every dispatch level
/// the host supports. This is the end-to-end counterpart of the
/// per-kernel differential suite in simd_kernel_test.cc — it catches a
/// kernel that is bitwise right in isolation but wired into the batch
/// staging loop wrongly (mis-sliced windows, stale refresh_params).
TEST_P(EquivalenceTest, DispatchLevelsAreByteIdentical) {
  const auto [algo, kind] = GetParam();
  const traj::Trajectory t = GoldenTrajectory(kind);
  const auto simplifier = baselines::MakeSimplifier(algo, kGoldenZeta);

  geo::simd::ForceLevel(geo::simd::Level::kScalar);
  std::vector<traj::RepresentedSegment> scalar_out;
  simplifier->SimplifyToSink(
      t, [&scalar_out](const traj::RepresentedSegment& s) {
        scalar_out.push_back(s);
      });

  for (geo::simd::Level level :
       {geo::simd::Level::kSse2, geo::simd::Level::kAvx2,
        geo::simd::Level::kNeon}) {
    if (!geo::simd::Supported(level)) continue;
    geo::simd::ForceLevel(level);
    std::vector<traj::RepresentedSegment> simd_out;
    simplifier->SimplifyToSink(
        t, [&simd_out](const traj::RepresentedSegment& s) {
          simd_out.push_back(s);
        });
    ExpectSegmentsEqual(simd_out, scalar_out,
                        std::string(geo::simd::LevelName(level)));
  }
  geo::simd::ClearForcedLevel();
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAllProfiles, EquivalenceTest,
    testing::Combine(testing::ValuesIn(baselines::AllAlgorithms()),
                     testing::ValuesIn(datagen::AllDatasetKinds())),
    [](const testing::TestParamInfo<EquivalenceTest::ParamType>& info) {
      std::string name =
          std::string(baselines::AlgorithmName(std::get<0>(info.param))) +
          "_" + std::string(datagen::DatasetName(std::get<1>(info.param)));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

/// The OPERB-family streams additionally expose raw Push/TakeEmitted and
/// batch Push(span): both must match the golden output exactly.
class OperbStreamPathsTest
    : public testing::TestWithParam<datagen::DatasetKind> {};

TEST_P(OperbStreamPathsTest, OperbPollingAndBatchPathsMatchGolden) {
  const datagen::DatasetKind kind = GetParam();
  const traj::Trajectory t = GoldenTrajectory(kind);
  const std::vector<traj::RepresentedSegment> golden =
      LoadGolden(std::string(OPERB_GOLDEN_DIR) + "/golden_OPERB_" +
                 std::string(datagen::DatasetName(kind)) + ".csv");
  if (HasFailure()) return;
  const core::OperbOptions opts = core::OperbOptions::Optimized(kGoldenZeta);

  // (c) Per-point Push with TakeEmitted polling (capacity-reusing drain).
  core::OperbStream polling(opts);
  std::vector<traj::RepresentedSegment> collected;
  std::vector<traj::RepresentedSegment> batch;
  for (const geo::Point& p : t) {
    polling.Push(p);
    polling.TakeEmitted(&batch);
    collected.insert(collected.end(), batch.begin(), batch.end());
  }
  polling.Finish();
  polling.TakeEmitted(&batch);
  collected.insert(collected.end(), batch.begin(), batch.end());
  ExpectSegmentsEqual(collected, golden, "polling");

  // (d) Batch Push(span) + sink.
  core::OperbStream spans(opts);
  std::vector<traj::RepresentedSegment> via_sink;
  spans.SetSink([&via_sink](const traj::RepresentedSegment& s) {
    via_sink.push_back(s);
  });
  const std::span<const geo::Point> all(t.points());
  spans.Push(all.subspan(0, t.size() / 2));
  spans.Push(all.subspan(t.size() / 2));
  spans.Finish();
  ExpectSegmentsEqual(via_sink, golden, "span+sink");

  // (e) Pooled reuse: Reset() must restore the constructor-fresh state.
  spans.Reset();
  via_sink.clear();
  spans.Push(all);
  spans.Finish();
  ExpectSegmentsEqual(via_sink, golden, "reset+reuse");
}

TEST_P(OperbStreamPathsTest, OperbAPollingAndBatchPathsMatchGolden) {
  const datagen::DatasetKind kind = GetParam();
  const traj::Trajectory t = GoldenTrajectory(kind);
  const std::vector<traj::RepresentedSegment> golden =
      LoadGolden(std::string(OPERB_GOLDEN_DIR) + "/golden_OPERB-A_" +
                 std::string(datagen::DatasetName(kind)) + ".csv");
  if (HasFailure()) return;
  const core::OperbAOptions opts =
      core::OperbAOptions::Optimized(kGoldenZeta);

  core::OperbAStream polling(opts);
  std::vector<traj::RepresentedSegment> collected;
  std::vector<traj::RepresentedSegment> batch;
  for (const geo::Point& p : t) {
    polling.Push(p);
    polling.TakeEmitted(&batch);
    collected.insert(collected.end(), batch.begin(), batch.end());
  }
  polling.Finish();
  polling.TakeEmitted(&batch);
  collected.insert(collected.end(), batch.begin(), batch.end());
  ExpectSegmentsEqual(collected, golden, "polling");

  core::OperbAStream spans(opts);
  std::vector<traj::RepresentedSegment> via_sink;
  spans.SetSink([&via_sink](const traj::RepresentedSegment& s) {
    via_sink.push_back(s);
  });
  spans.Push(std::span<const geo::Point>(t.points()));
  spans.Finish();
  ExpectSegmentsEqual(via_sink, golden, "span+sink");

  // Pooled reuse: Reset() must restore the constructor-fresh state.
  spans.Reset();
  via_sink.clear();
  spans.Push(std::span<const geo::Point>(t.points()));
  spans.Finish();
  ExpectSegmentsEqual(via_sink, golden, "reset+reuse");
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, OperbStreamPathsTest,
    testing::ValuesIn(datagen::AllDatasetKinds()),
    [](const testing::TestParamInfo<datagen::DatasetKind>& info) {
      return std::string(datagen::DatasetName(info.param));
    });

}  // namespace
}  // namespace operb
