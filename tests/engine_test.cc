// StreamEngine determinism and lifecycle suite.
//
// The engine's core contract: per-object output is bit-identical to the
// single-stream sink path, regardless of shard count, thread count,
// interleaving or scheduling. The determinism tests shuffle-interleave
// the 4 golden dataset profiles (as 4 concurrent objects) and require
// every object's emitted segments to match the committed tests/golden/
// fixtures for all 10 algorithms across several shard/thread
// configurations.

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "api/registry.h"
#include "api/spec.h"
#include "baselines/simplifier.h"
#include "baselines/streaming.h"
#include "common/serial.h"
#include "core/operb.h"
#include "datagen/profiles.h"
#include "datagen/rng.h"
#include "engine/spsc_ring.h"
#include "engine/stream_engine.h"
#include "store/env.h"
#include "test_util.h"
#include "traj/multi_object.h"
#include "traj/piecewise.h"
#include "traj/trajectory.h"

namespace operb {
namespace {

using testutil::ExpectSegmentsEqual;
using testutil::GoldenTrajectory;
using testutil::kGoldenZeta;
using testutil::LoadGolden;

/// Interleaves the objects' points in a seeded pseudo-random order that
/// preserves each object's internal point order (the only ordering the
/// engine requires from its producer).
std::vector<traj::ObjectUpdate> ShuffleInterleave(
    const std::vector<traj::ObjectTrajectory>& objects, std::uint64_t seed) {
  std::vector<std::size_t> next(objects.size(), 0);
  std::size_t remaining = 0;
  for (const traj::ObjectTrajectory& o : objects) {
    remaining += o.trajectory.size();
  }
  std::vector<traj::ObjectUpdate> out;
  out.reserve(remaining);
  datagen::Rng rng(seed);
  while (remaining > 0) {
    const std::size_t pick =
        static_cast<std::size_t>(rng.NextBelow(objects.size()));
    if (next[pick] >= objects[pick].trajectory.size()) continue;
    out.push_back({objects[pick].object_id,
                   objects[pick].trajectory[next[pick]]});
    ++next[pick];
    --remaining;
  }
  return out;
}

/// Thread-safe per-object collector for engine output.
class Collector {
 public:
  engine::TaggedSegmentSink Sink() {
    return [this](traj::ObjectId id, const traj::RepresentedSegment& seg) {
      const std::lock_guard<std::mutex> lock(mu_);
      by_object_[id].push_back(seg);
    };
  }

  const std::vector<traj::RepresentedSegment>& ForObject(
      traj::ObjectId id) const {
    static const std::vector<traj::RepresentedSegment> kEmpty;
    const auto it = by_object_.find(id);
    return it == by_object_.end() ? kEmpty : it->second;
  }

  /// Locked copy — for reading while worker threads are still alive
  /// (e.g. right after a Checkpoint() drain barrier, before Close()).
  std::vector<traj::RepresentedSegment> Snapshot(traj::ObjectId id) {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = by_object_.find(id);
    return it == by_object_.end() ? std::vector<traj::RepresentedSegment>{}
                                  : it->second;
  }

  std::size_t objects() const { return by_object_.size(); }

 private:
  std::mutex mu_;
  std::map<traj::ObjectId, std::vector<traj::RepresentedSegment>> by_object_;
};

/// Reference output: the single-stream sink path for one trajectory.
std::vector<traj::RepresentedSegment> SingleStream(
    baselines::Algorithm algo, const traj::Trajectory& t, double zeta) {
  std::vector<traj::RepresentedSegment> out;
  baselines::MakeSimplifier(algo, zeta)->SimplifyToSink(
      t, [&out](const traj::RepresentedSegment& s) { out.push_back(s); });
  return out;
}

struct EngineConfig {
  std::size_t shards;
  std::size_t threads;
  std::size_t ring_capacity;
  std::size_t producer_batch;
};

// 1/2/8 shards; the last config uses a deliberately tiny ring and batch
// so the backpressure and hand-off paths run under the golden check too.
const EngineConfig kConfigs[] = {
    {1, 1, 8192, 64},
    {2, 2, 8192, 64},
    {8, 3, 64, 16},
};

class EngineGoldenTest
    : public testing::TestWithParam<std::tuple<baselines::Algorithm, int>> {};

TEST_P(EngineGoldenTest, ShuffledInterleaveMatchesGoldenPerObject) {
  const auto [algo, config_index] = GetParam();
  const EngineConfig& config = kConfigs[config_index];

  const std::vector<datagen::DatasetKind> kinds = datagen::AllDatasetKinds();
  std::vector<traj::ObjectTrajectory> objects;
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    // Ids far apart so the shard mix actually spreads them.
    objects.push_back({i * 7919 + 3, GoldenTrajectory(kinds[i])});
  }
  const std::vector<traj::ObjectUpdate> updates =
      ShuffleInterleave(objects, /*seed=*/42 + config_index);

  engine::StreamEngineOptions opts;
  // The engine is configured through the declarative spec — resolved via
  // api::AlgorithmRegistry — and must stay bit-identical to the enum-era
  // engine goldens (the spec is the exact equivalent of the old
  // (Algorithm, zeta, fidelity) triple).
  opts.spec = api::SpecFor(algo, kGoldenZeta);
  opts.num_shards = config.shards;
  opts.num_threads = config.threads;
  opts.ring_capacity = config.ring_capacity;
  opts.producer_batch = config.producer_batch;

  Collector collector;
  engine::StreamEngine eng(opts, collector.Sink());
  eng.Push(std::span<const traj::ObjectUpdate>(updates));
  eng.Close();

  ASSERT_EQ(collector.objects(), objects.size());
  for (std::size_t i = 0; i < objects.size(); ++i) {
    const std::string golden_path =
        std::string(OPERB_GOLDEN_DIR) + "/golden_" +
        std::string(baselines::AlgorithmName(algo)) + "_" +
        std::string(datagen::DatasetName(kinds[i])) + ".csv";
    const std::vector<traj::RepresentedSegment> golden =
        LoadGolden(golden_path);
    if (HasFailure()) return;
    ExpectSegmentsEqual(collector.ForObject(objects[i].object_id), golden,
                        std::string(datagen::DatasetName(kinds[i])) +
                            " shards=" + std::to_string(config.shards) +
                            " threads=" + std::to_string(config.threads));
  }

  const engine::StreamEngineStats& stats = eng.stats();
  EXPECT_EQ(stats.points, updates.size());
  EXPECT_EQ(stats.objects_opened, objects.size());
  EXPECT_EQ(stats.objects_finished, objects.size());  // Close() flushes
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAllConfigs, EngineGoldenTest,
    testing::Combine(testing::ValuesIn(baselines::AllAlgorithms()),
                     testing::Values(0, 1, 2)),
    [](const testing::TestParamInfo<EngineGoldenTest::ParamType>& info) {
      const EngineConfig& c = kConfigs[std::get<1>(info.param)];
      std::string name =
          std::string(baselines::AlgorithmName(std::get<0>(info.param))) +
          "_shards" + std::to_string(c.shards) + "_threads" +
          std::to_string(c.threads);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(EngineTest, ExplicitFinishFlushesOneObjectAndAllowsReuse) {
  const traj::Trajectory t =
      testutil::Generated(datagen::DatasetKind::kSerCar, 400, 7);
  const traj::Trajectory t2 =
      testutil::Generated(datagen::DatasetKind::kTaxi, 300, 8);

  engine::StreamEngineOptions opts;
  opts.num_shards = 1;  // both uses of id 5 must share one pooled state
  opts.num_threads = 1;
  Collector collector;
  engine::StreamEngine eng(opts, collector.Sink());
  for (const geo::Point& p : t) eng.Push(5, p);
  eng.FinishObject(5);
  // Same id again: a fresh trajectory must get a fresh (Reset) state.
  for (const geo::Point& p : t2) eng.Push(5, p);
  eng.Close();

  std::vector<traj::RepresentedSegment> want =
      SingleStream(baselines::Algorithm::kOPERB, t, opts.spec.zeta);
  const std::vector<traj::RepresentedSegment> second =
      SingleStream(baselines::Algorithm::kOPERB, t2, opts.spec.zeta);
  want.insert(want.end(), second.begin(), second.end());
  ExpectSegmentsEqual(collector.ForObject(5), want, "finish+reuse");

  const engine::StreamEngineStats& stats = eng.stats();
  EXPECT_EQ(stats.objects_opened, 2u);
  EXPECT_EQ(stats.objects_finished, 2u);
  EXPECT_EQ(stats.states_allocated, 1u);  // second run reused the pool
}

TEST(EngineTest, TickEvictsIdleObjectsAtTheWatermark) {
  const traj::Trajectory early =
      testutil::Generated(datagen::DatasetKind::kSerCar, 200, 11);
  // A second object whose points carry much later timestamps.
  traj::Trajectory late;
  for (const geo::Point& p : testutil::Generated(
           datagen::DatasetKind::kSerCar, 200, 12)) {
    late.AppendUnchecked({p.x, p.y, p.t + 1e6});
  }

  engine::StreamEngineOptions opts;
  opts.num_shards = 4;
  opts.num_threads = 2;
  opts.idle_timeout_seconds = 60.0;
  Collector collector;
  engine::StreamEngine eng(opts, collector.Sink());
  for (const geo::Point& p : early) eng.Push(1, p);
  for (const geo::Point& p : late) eng.Push(2, p);
  // Watermark far past `early`'s last sample but within `late`'s window:
  // only object 1 is idle-flushed.
  eng.Tick(1e6 + late.Duration());
  eng.Close();

  ExpectSegmentsEqual(collector.ForObject(1),
                      SingleStream(baselines::Algorithm::kOPERB, early,
                                   opts.spec.zeta),
                      "early object");
  ExpectSegmentsEqual(collector.ForObject(2),
                      SingleStream(baselines::Algorithm::kOPERB, late,
                                   opts.spec.zeta),
                      "late object");
  const engine::StreamEngineStats& stats = eng.stats();
  EXPECT_EQ(stats.idle_evictions, 1u);
  EXPECT_EQ(stats.objects_finished, 2u);  // 1 idle + 1 at Close
}

TEST(EngineTest, TickWithoutTimeoutIsANoOp) {
  const traj::Trajectory t =
      testutil::Generated(datagen::DatasetKind::kSerCar, 100, 3);
  engine::StreamEngineOptions opts;  // idle_timeout_seconds = 0
  Collector collector;
  engine::StreamEngine eng(opts, collector.Sink());
  for (const geo::Point& p : t) eng.Push(9, p);
  eng.Tick(1e12);
  eng.Close();
  EXPECT_EQ(eng.stats().idle_evictions, 0u);
  ExpectSegmentsEqual(
      collector.ForObject(9),
      SingleStream(baselines::Algorithm::kOPERB, t, opts.spec.zeta), "no-op tick");
}

TEST(EngineTest, TinyRingBackpressureKeepsOutputIdentical) {
  const traj::Trajectory t =
      testutil::Generated(datagen::DatasetKind::kGeoLife, 20000, 21);
  engine::StreamEngineOptions opts;
  opts.num_shards = 1;
  opts.num_threads = 1;
  opts.ring_capacity = 4;
  opts.producer_batch = 4;
  Collector collector;
  engine::StreamEngine eng(opts, collector.Sink());
  for (const geo::Point& p : t) eng.Push(77, p);
  eng.Close();
  ExpectSegmentsEqual(
      collector.ForObject(77),
      SingleStream(baselines::Algorithm::kOPERB, t, opts.spec.zeta),
      "tiny ring");
  // With 20k points through a 4-slot ring the producer must have stalled.
  EXPECT_GT(eng.stats().ring_full_stalls, 0u);
}

TEST(EngineTest, PoolBoundsStatesByPeakLiveObjects) {
  // 300 sequential objects, each finished before the next starts: one
  // shard must end up with a pool of size 1 (not 300), and the churn of
  // 300 distinct ids through the 64-slot initial table exercises the
  // tombstone-driven same-size rehash several times over.
  const traj::Trajectory t =
      testutil::Generated(datagen::DatasetKind::kSerCar, 120, 5);
  engine::StreamEngineOptions opts;
  opts.num_shards = 1;
  opts.num_threads = 1;
  Collector collector;
  engine::StreamEngine eng(opts, collector.Sink());
  for (traj::ObjectId id = 0; id < 300; ++id) {
    for (const geo::Point& p : t) eng.Push(id, p);
    eng.FinishObject(id);
  }
  eng.Close();
  const engine::StreamEngineStats& stats = eng.stats();
  EXPECT_EQ(stats.objects_opened, 300u);
  EXPECT_EQ(stats.objects_finished, 300u);
  EXPECT_EQ(stats.peak_live_objects, 1u);
  EXPECT_EQ(stats.states_allocated, 1u);
  EXPECT_EQ(collector.objects(), 300u);
}

TEST(EngineTest, ManyObjectsGrowTheTablePastItsInitialSize) {
  // > 64-slot initial table per shard: forces open-addressing growth and
  // tombstone rehash under churn.
  engine::StreamEngineOptions opts;
  opts.num_shards = 2;
  opts.num_threads = 2;
  Collector collector;
  engine::StreamEngine eng(opts, collector.Sink());
  const traj::Trajectory t =
      testutil::Generated(datagen::DatasetKind::kTaxi, 40, 9);
  constexpr traj::ObjectId kObjects = 500;
  for (const geo::Point& p : t) {
    for (traj::ObjectId id = 0; id < kObjects; ++id) eng.Push(id, p);
  }
  eng.Close();
  EXPECT_EQ(collector.objects(), kObjects);
  const std::vector<traj::RepresentedSegment> want =
      SingleStream(baselines::Algorithm::kOPERB, t, opts.spec.zeta);
  ExpectSegmentsEqual(collector.ForObject(0), want, "object 0");
  ExpectSegmentsEqual(collector.ForObject(kObjects - 1), want, "object N-1");
  EXPECT_EQ(eng.stats().peak_live_objects, kObjects);
}

TEST(EngineTest, EmptySinkOnlyCounts) {
  const traj::Trajectory t =
      testutil::Generated(datagen::DatasetKind::kSerCar, 500, 2);
  engine::StreamEngineOptions opts;
  engine::StreamEngine eng(opts, engine::TaggedSegmentSink{});
  for (const geo::Point& p : t) eng.Push(1, p);
  eng.Close();
  EXPECT_GT(eng.stats().segments, 0u);
}

TEST(EngineTest, SpecStringConstructionMatchesSingleStream) {
  // A spec parsed from a one-line string is a first-class way to stand
  // up the engine; output must match the single-stream path of the same
  // spec bit-for-bit.
  const traj::Trajectory t =
      testutil::Generated(datagen::DatasetKind::kSerCar, 500, 13);
  engine::StreamEngineOptions opts;
  const Result<api::SimplifierSpec> spec =
      api::SimplifierSpec::Parse("operb-a:zeta=25,fidelity=paper");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  opts.spec = *spec;
  Collector collector;
  Result<std::unique_ptr<engine::StreamEngine>> eng =
      engine::StreamEngine::Create(opts, collector.Sink());
  ASSERT_TRUE(eng.ok()) << eng.status().ToString();
  for (const geo::Point& p : t) (*eng)->Push(3, p);
  (*eng)->Close();

  std::vector<traj::RepresentedSegment> want;
  baselines::MakeSimplifier(baselines::Algorithm::kOPERBA, 25.0,
                            baselines::OperbFidelity::kPaperFaithful)
      ->SimplifyToSink(t, [&want](const traj::RepresentedSegment& s) {
        want.push_back(s);
      });
  ExpectSegmentsEqual(collector.ForObject(3), want, "spec-string engine");
}

TEST(EngineTest, CreateRejectsInvalidOptionsWithStatus) {
  // The boundary factory returns Status for every user-reachable
  // misconfiguration — no CHECK abort.
  engine::StreamEngineOptions unknown;
  unknown.spec.algorithm = "NOPE";
  const auto r1 =
      engine::StreamEngine::Create(unknown, engine::TaggedSegmentSink{});
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kNotFound);

  engine::StreamEngineOptions bad_zeta;
  bad_zeta.spec.zeta = -1.0;
  EXPECT_FALSE(
      engine::StreamEngine::Create(bad_zeta, engine::TaggedSegmentSink{})
          .ok());

  engine::StreamEngineOptions no_shards;
  no_shards.num_shards = 0;
  EXPECT_FALSE(
      engine::StreamEngine::Create(no_shards, engine::TaggedSegmentSink{})
          .ok());
}

TEST(SpscRingTest, PushPopRoundTripsAcrossWrapAround) {
  engine::SpscRing<int> ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  int out[8];
  int next_in = 0, next_out = 0;
  // Repeatedly fill and drain with co-prime batch sizes so the indices
  // wrap several times.
  for (int round = 0; round < 100; ++round) {
    int in[3];
    for (int& v : in) v = next_in++;
    std::size_t pushed = ring.TryPush(in, 3);
    next_in -= static_cast<int>(3 - pushed);  // unpushed items retry later
    const std::size_t got = ring.Pop(out, 5);
    for (std::size_t i = 0; i < got; ++i) EXPECT_EQ(out[i], next_out++);
  }
  // Drain the tail.
  std::size_t got;
  while ((got = ring.Pop(out, 8)) > 0) {
    for (std::size_t i = 0; i < got; ++i) EXPECT_EQ(out[i], next_out++);
  }
  EXPECT_EQ(next_out, next_in);
}

TEST(SpscRingTest, TryPushReportsPartialAcceptanceWhenFull) {
  engine::SpscRing<int> ring(4);
  const int in[6] = {0, 1, 2, 3, 4, 5};
  EXPECT_EQ(ring.TryPush(in, 6), 4u);   // ring holds 4
  EXPECT_EQ(ring.TryPush(in, 1), 0u);   // full
  int out[6];
  EXPECT_EQ(ring.Pop(out, 6), 4u);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[3], 3);
}

// ---------------------------------------------------------------------
// Checkpoint / restore (ISSUE 7 tentpole; see DESIGN.md §9)
// ---------------------------------------------------------------------

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<std::uint8_t> ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void WriteAllBytes(const std::string& path,
                   const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Global index of the update whose Push emits the first mid-stream
/// segment anywhere in the interleave — cutting just before it
/// checkpoints the richest possible pending state. Falls back to a
/// one-third cut for the batch adapters that only emit on Finish.
std::size_t FirstEmitCut(baselines::Algorithm algo,
                         const std::vector<traj::ObjectUpdate>& updates) {
  std::map<traj::ObjectId, std::unique_ptr<baselines::StreamingSimplifier>>
      sims;
  bool emitted = false;
  for (std::size_t i = 0; i < updates.size(); ++i) {
    std::unique_ptr<baselines::StreamingSimplifier>& sim =
        sims[updates[i].object_id];
    if (sim == nullptr) {
      sim = baselines::MakeStreamingSimplifier(algo, kGoldenZeta);
      sim->SetSink(
          [&emitted](const traj::RepresentedSegment&) { emitted = true; });
    }
    sim->Push(updates[i].point);
    if (emitted) return i;
  }
  return updates.size() / 3;
}

class EngineCheckpointTest
    : public testing::TestWithParam<baselines::Algorithm> {};

TEST_P(EngineCheckpointTest, RestoreResumesBitIdenticallyAtEveryCut) {
  const baselines::Algorithm algo = GetParam();
  const std::vector<datagen::DatasetKind> kinds = datagen::AllDatasetKinds();
  std::vector<traj::ObjectTrajectory> objects;
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    objects.push_back({i * 7919 + 3, GoldenTrajectory(kinds[i])});
  }
  const std::vector<traj::ObjectUpdate> updates =
      ShuffleInterleave(objects, /*seed=*/77);

  engine::StreamEngineOptions opts;
  opts.spec = api::SpecFor(algo, kGoldenZeta);
  opts.num_shards = 2;
  opts.num_threads = 2;

  // Uninterrupted reference run (itself golden-anchored below).
  Collector uninterrupted;
  engine::StreamEngineStats full_stats;
  {
    engine::StreamEngine eng(opts, uninterrupted.Sink());
    eng.Push(std::span<const traj::ObjectUpdate>(updates));
    eng.Close();
    full_stats = eng.stats();
  }

  // Cut at the very start (empty state), mid-stream, and right before
  // the first emission-triggering update (maximal pending state).
  const std::size_t cuts[] = {0, updates.size() / 2,
                              FirstEmitCut(algo, updates)};
  for (const std::size_t cut : cuts) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    // Unique per test instance: the suite's cases run concurrently
    // under `ctest -j` and must not overwrite each other's snapshots.
    const std::string path =
        TempPath("engine_checkpoint_" +
                 std::string(baselines::AlgorithmName(algo)) + ".ckpt");

    Collector prefix;
    auto eng = engine::StreamEngine::Create(opts, prefix.Sink());
    ASSERT_TRUE(eng.ok()) << eng.status().ToString();
    eng.value()->Push(std::span<const traj::ObjectUpdate>(updates).first(cut));
    const Status written = eng.value()->Checkpoint(path);
    ASSERT_TRUE(written.ok()) << written.ToString();
    // Snapshot before Close(): Close flushes tails that the resumed
    // engine — not this one — must produce.
    std::map<traj::ObjectId, std::vector<traj::RepresentedSegment>> combined;
    for (const traj::ObjectTrajectory& o : objects) {
      combined[o.object_id] = prefix.Snapshot(o.object_id);
    }
    eng.value()->Close();

    // Worker/ring/batch knobs may differ freely across the restore —
    // only spec and shard count are identity (determinism contract).
    engine::StreamEngineOptions resume_opts = opts;
    resume_opts.num_threads = 1;
    resume_opts.ring_capacity = 64;
    resume_opts.producer_batch = 8;
    Collector tail;
    auto restored = engine::StreamEngine::CreateFromCheckpoint(
        path, resume_opts, tail.Sink());
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    restored.value()->Push(
        std::span<const traj::ObjectUpdate>(updates).subspan(cut));
    restored.value()->Close();

    // Counters continue across the cut as if nothing happened: the
    // restored engine's totals equal the uninterrupted run's.
    EXPECT_EQ(restored.value()->stats().points, updates.size());
    EXPECT_EQ(restored.value()->stats().segments, full_stats.segments);
    EXPECT_EQ(restored.value()->stats().objects_finished,
              full_stats.objects_finished);

    for (std::size_t i = 0; i < objects.size(); ++i) {
      std::vector<traj::RepresentedSegment>& c =
          combined[objects[i].object_id];
      const std::vector<traj::RepresentedSegment> rest =
          tail.Snapshot(objects[i].object_id);
      c.insert(c.end(), rest.begin(), rest.end());
      // Bit-identical to the uninterrupted engine run…
      ExpectSegmentsEqual(
          c, uninterrupted.ForObject(objects[i].object_id),
          std::string(datagen::DatasetName(kinds[i])) + " across cut " +
              std::to_string(cut));
      // …and to the committed golden fixture.
      const std::string golden_path =
          std::string(OPERB_GOLDEN_DIR) + "/golden_" +
          std::string(baselines::AlgorithmName(algo)) + "_" +
          std::string(datagen::DatasetName(kinds[i])) + ".csv";
      ExpectSegmentsEqual(c, LoadGolden(golden_path),
                          std::string(datagen::DatasetName(kinds[i])) +
                              " golden across cut " + std::to_string(cut));
      if (HasFailure()) return;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, EngineCheckpointTest,
    testing::ValuesIn(baselines::AllAlgorithms()),
    [](const testing::TestParamInfo<baselines::Algorithm>& info) {
      std::string name = std::string(baselines::AlgorithmName(info.param));
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(EngineTest, CheckpointStatusContract) {
  const traj::Trajectory t =
      testutil::Generated(datagen::DatasetKind::kSerCar, 200, 5);
  engine::StreamEngineOptions opts;
  opts.spec = api::SpecFor(baselines::Algorithm::kOPERB, kGoldenZeta);
  opts.num_shards = 4;

  const std::string path = TempPath("engine_ckpt_contract.ckpt");
  {
    engine::StreamEngine eng(opts, nullptr);
    for (std::size_t i = 0; i < t.size(); ++i) eng.Push(11, t[i]);
    for (std::size_t i = 0; i < t.size(); ++i) eng.Push(12, t[i]);
    ASSERT_TRUE(eng.Checkpoint(path).ok());
    eng.Close();
    // A closed engine has nothing consistent left to snapshot.
    EXPECT_EQ(eng.Checkpoint(path).code(), StatusCode::kInvalidArgument);
  }
  const std::vector<std::uint8_t> good = ReadAllBytes(path);
  ASSERT_GT(good.size(), 16u);

  const auto restore = [&](const std::vector<std::uint8_t>& bytes) {
    WriteAllBytes(path, bytes);
    return engine::StreamEngine::CreateFromCheckpoint(path, opts, nullptr)
        .status();
  };

  // A missing file is an I/O condition, not corruption.
  EXPECT_EQ(engine::StreamEngine::CreateFromCheckpoint(
                TempPath("no_such.ckpt"), opts, nullptr)
                .status()
                .code(),
            StatusCode::kIOError);

  // Foreign magic / flipped payload byte / truncation / trailing
  // garbage: all Corruption — the checksum and framing catch them.
  std::vector<std::uint8_t> bad = good;
  bad[0] ^= 0xFF;
  EXPECT_EQ(restore(bad).code(), StatusCode::kCorruption);
  bad = good;
  bad[good.size() / 2] ^= 0x01;
  EXPECT_EQ(restore(bad).code(), StatusCode::kCorruption);
  bad.assign(good.begin(), good.end() - 9);
  EXPECT_EQ(restore(bad).code(), StatusCode::kCorruption);
  bad = good;
  bad.insert(bad.end(), {1, 2, 3, 4});
  EXPECT_EQ(restore(bad).code(), StatusCode::kCorruption);
  for (std::size_t len = 0; len < 16u && len < good.size(); ++len) {
    bad.assign(good.begin(), good.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_EQ(restore(bad).code(), StatusCode::kCorruption) << len;
  }

  // An unsupported *version* with an intact checksum: InvalidArgument —
  // the file is honest about being from a future writer, not damaged.
  bad = good;
  bad[8] += 1;
  std::uint64_t sum = serial::Fnv1a64(
      std::span<const std::uint8_t>(bad.data(), bad.size() - 8));
  for (std::size_t i = 0; i < 8; ++i) {
    bad[bad.size() - 8 + i] = static_cast<std::uint8_t>(sum >> (8 * i));
  }
  EXPECT_EQ(restore(bad).code(), StatusCode::kInvalidArgument);

  // Configuration mismatches: the checkpoint pins spec and shard count.
  WriteAllBytes(path, good);
  engine::StreamEngineOptions wrong_spec = opts;
  wrong_spec.spec = api::SpecFor(baselines::Algorithm::kDP, kGoldenZeta);
  EXPECT_EQ(engine::StreamEngine::CreateFromCheckpoint(path, wrong_spec,
                                                       nullptr)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  engine::StreamEngineOptions wrong_zeta = opts;
  wrong_zeta.spec = api::SpecFor(baselines::Algorithm::kOPERB, 2 * kGoldenZeta);
  EXPECT_EQ(engine::StreamEngine::CreateFromCheckpoint(path, wrong_zeta,
                                                       nullptr)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  engine::StreamEngineOptions wrong_shards = opts;
  wrong_shards.num_shards = 8;
  EXPECT_EQ(engine::StreamEngine::CreateFromCheckpoint(path, wrong_shards,
                                                       nullptr)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // The intact file still restores after all that.
  auto ok = engine::StreamEngine::CreateFromCheckpoint(path, opts, nullptr);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  ok.value()->Close();
  EXPECT_EQ(ok.value()->stats().points, 2 * t.size());
}

TEST(EngineTest, CheckpointWriteFaultsLeaveNoPartialCheckpoint) {
  const traj::Trajectory t =
      testutil::Generated(datagen::DatasetKind::kTaxi, 150, 9);
  engine::StreamEngineOptions opts;
  opts.spec = api::SpecFor(baselines::Algorithm::kOPERB, kGoldenZeta);
  opts.num_shards = 2;
  engine::StreamEngine eng(opts, nullptr);
  for (std::size_t i = 0; i < t.size(); ++i) eng.Push(3, t[i]);

  // Counting pass: how many durable operations one checkpoint performs.
  const std::string path = TempPath("engine_ckpt_faults.ckpt");
  store::FaultInjectingEnv env;
  ASSERT_TRUE(eng.Checkpoint(path, &env).ok());
  const std::uint64_t ops = env.op_count();
  ASSERT_GE(ops, 4u);  // create, append, flush, rename at minimum
  std::filesystem::remove(path);

  // Every crash point, every fault kind: the failure surfaces as
  // IOError and `path` never holds a partial checkpoint — at most a
  // stale .tmp the next attempt truncates.
  using FaultKind = store::FaultInjectingEnv::FaultKind;
  for (const FaultKind kind : {FaultKind::kError, FaultKind::kShortWrite,
                               FaultKind::kTornWriteCrash}) {
    for (std::uint64_t k = 0; k < ops; ++k) {
      SCOPED_TRACE("fault kind " + std::to_string(static_cast<int>(kind)) +
                   " at op " + std::to_string(k));
      env.ArmFault(kind, k);
      EXPECT_EQ(eng.Checkpoint(path, &env).code(), StatusCode::kIOError);
      EXPECT_TRUE(env.fault_fired());
      EXPECT_FALSE(std::filesystem::exists(path));
    }
  }

  // A failed checkpoint is not fatal: the engine keeps streaming, the
  // next attempt succeeds, and the file restores.
  env.Disarm();
  for (std::size_t i = 0; i < t.size(); ++i) eng.Push(4, t[i]);
  ASSERT_TRUE(eng.Checkpoint(path, &env).ok());
  auto restored =
      engine::StreamEngine::CreateFromCheckpoint(path, opts, nullptr);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  restored.value()->Close();
  EXPECT_EQ(restored.value()->stats().points, 2 * t.size());
  eng.Close();
}

TEST(EngineTest, PeriodicCheckpointsDuringConcurrentIngest) {
  // The TSan target for the checkpoint path: a multi-threaded engine
  // ingesting while the producer periodically checkpoints — the drain
  // barrier must fully synchronize against every worker, and the
  // resumed tail must complete the prefix output bit-identically.
  const std::vector<datagen::DatasetKind> kinds = datagen::AllDatasetKinds();
  std::vector<traj::ObjectTrajectory> objects;
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    objects.push_back({i * 131 + 1, GoldenTrajectory(kinds[i])});
  }
  const std::vector<traj::ObjectUpdate> updates =
      ShuffleInterleave(objects, /*seed=*/5);

  engine::StreamEngineOptions opts;
  opts.spec = api::SpecFor(baselines::Algorithm::kOPERBA, kGoldenZeta);
  opts.num_shards = 8;
  opts.num_threads = 4;
  opts.ring_capacity = 256;

  const std::string path = TempPath("engine_ckpt_concurrent.ckpt");
  Collector collector;
  engine::StreamEngine eng(opts, collector.Sink());
  const std::span<const traj::ObjectUpdate> all(updates);
  const std::size_t kChunk = 400;
  std::size_t checkpoints = 0;
  for (std::size_t offset = 0; offset < all.size(); offset += kChunk) {
    eng.Push(all.subspan(offset, std::min(kChunk, all.size() - offset)));
    const Status written = eng.Checkpoint(path);
    ASSERT_TRUE(written.ok()) << written.ToString();
    ++checkpoints;
  }
  ASSERT_GT(checkpoints, 2u);

  // Prefix output as of the last checkpoint (pre-Close flush).
  std::map<traj::ObjectId, std::vector<traj::RepresentedSegment>> combined;
  for (const traj::ObjectTrajectory& o : objects) {
    combined[o.object_id] = collector.Snapshot(o.object_id);
  }
  eng.Close();  // flushes tails; the full reference output

  // The resumed engine has nothing left to ingest — its Close() must
  // emit exactly the tails the original Close() emitted.
  Collector tails;
  auto restored =
      engine::StreamEngine::CreateFromCheckpoint(path, opts, tails.Sink());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  restored.value()->Close();
  EXPECT_EQ(restored.value()->stats().points, updates.size());

  for (std::size_t i = 0; i < objects.size(); ++i) {
    std::vector<traj::RepresentedSegment>& c = combined[objects[i].object_id];
    const std::vector<traj::RepresentedSegment> rest =
        tails.Snapshot(objects[i].object_id);
    c.insert(c.end(), rest.begin(), rest.end());
    ExpectSegmentsEqual(c, collector.ForObject(objects[i].object_id),
                        std::string(datagen::DatasetName(kinds[i])) +
                            " resumed tail");
  }
}

/// Timed-sink collector keyed by object (the tracking-engine analogue
/// of Collector above).
class TimedCollector {
 public:
  engine::TimedSegmentSink Sink() {
    return [this](const traj::TimedSegment& s) {
      const std::lock_guard<std::mutex> lock(mu_);
      by_object_[s.object_id].push_back(s);
    };
  }

  std::vector<traj::TimedSegment> Snapshot(traj::ObjectId id) {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = by_object_.find(id);
    return it == by_object_.end() ? std::vector<traj::TimedSegment>{}
                                  : it->second;
  }

 private:
  std::mutex mu_;
  std::map<traj::ObjectId, std::vector<traj::TimedSegment>> by_object_;
};

void ExpectTimedEqual(const std::vector<traj::TimedSegment>& got,
                      const std::vector<traj::TimedSegment>& want,
                      const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    SCOPED_TRACE(label + " segment " + std::to_string(i));
    EXPECT_EQ(got[i].object_id, want[i].object_id);
    EXPECT_EQ(got[i].segment.first_index, want[i].segment.first_index);
    EXPECT_EQ(got[i].segment.last_index, want[i].segment.last_index);
    EXPECT_EQ(got[i].segment.start.x, want[i].segment.start.x);
    EXPECT_EQ(got[i].segment.start.y, want[i].segment.start.y);
    EXPECT_EQ(got[i].segment.end.x, want[i].segment.end.x);
    EXPECT_EQ(got[i].segment.end.y, want[i].segment.end.y);
    EXPECT_EQ(got[i].t_start, want[i].t_start);
    EXPECT_EQ(got[i].t_end, want[i].t_end);
  }
}

engine::StreamEngineOptions TrackingOptions(std::size_t shards) {
  engine::StreamEngineOptions opts;
  opts.spec = api::SpecFor(baselines::Algorithm::kOPERBA, kGoldenZeta);
  opts.num_shards = shards;
  opts.track_segment_times = true;
  return opts;
}

TEST(EngineTailSnapshotTest, ObjectTailMatchesFinishBitExactly) {
  const traj::Trajectory t =
      testutil::Generated(datagen::DatasetKind::kTaxi, 300, 21);
  engine::StreamEngine eng(TrackingOptions(4), nullptr);
  TimedCollector sink;
  eng.SetTimedSink(sink.Sink());
  for (std::size_t i = 0; i < t.size(); ++i) eng.Push(42, t[i]);

  std::vector<traj::TimedSegment> tail;
  std::size_t visits = 0;
  ASSERT_TRUE(eng.SnapshotObjectTail(
                     42,
                     [&](traj::ObjectId id,
                         std::span<const traj::TimedSegment> s) {
                       EXPECT_EQ(id, 42u);
                       tail.assign(s.begin(), s.end());
                       ++visits;
                     })
                  .ok());
  EXPECT_EQ(visits, 1u);

  // No points were pushed after the snapshot, so finishing the object
  // must emit exactly the visited tail — the snapshot is "what
  // FinishObject would emit right now", bit for bit.
  const std::vector<traj::TimedSegment> before = sink.Snapshot(42);
  eng.FinishObject(42);
  eng.Close();
  const std::vector<traj::TimedSegment> after = sink.Snapshot(42);
  ASSERT_GE(after.size(), before.size());
  const std::vector<traj::TimedSegment> finish_tail(
      after.begin() + static_cast<std::ptrdiff_t>(before.size()),
      after.end());
  ExpectTimedEqual(tail, finish_tail, "snapshot vs finish");
  EXPECT_FALSE(tail.empty());

  // An unknown object is visited zero times, successfully.
  engine::StreamEngine empty(TrackingOptions(2), nullptr);
  std::size_t ghost_visits = 0;
  EXPECT_TRUE(empty
                  .SnapshotObjectTail(
                      7, [&](traj::ObjectId,
                             std::span<const traj::TimedSegment>) {
                        ++ghost_visits;
                      })
                  .ok());
  EXPECT_EQ(ghost_visits, 0u);
  empty.Close();
}

TEST(EngineTailSnapshotTest, ShardTailsVisitAscendingIdsAndMatchFinish) {
  // One shard so every object lands in the same snapshot.
  engine::StreamEngine eng(TrackingOptions(1), nullptr);
  TimedCollector sink;
  eng.SetTimedSink(sink.Sink());
  const std::vector<traj::ObjectId> ids = {9, 2, 300, 41};
  for (const traj::ObjectId id : ids) {
    const traj::Trajectory t =
        testutil::Generated(datagen::DatasetKind::kSerCar, 120, id);
    for (std::size_t i = 0; i < t.size(); ++i) eng.Push(id, t[i]);
  }

  std::vector<traj::ObjectId> visited;
  std::map<traj::ObjectId, std::vector<traj::TimedSegment>> tails;
  ASSERT_TRUE(eng.SnapshotShardTails(
                     0,
                     [&](traj::ObjectId id,
                         std::span<const traj::TimedSegment> s) {
                       visited.push_back(id);
                       tails[id].assign(s.begin(), s.end());
                     })
                  .ok());
  ASSERT_EQ(visited.size(), ids.size());
  EXPECT_TRUE(std::is_sorted(visited.begin(), visited.end()))
      << "visitor order is not ascending object id";

  std::map<traj::ObjectId, std::vector<traj::TimedSegment>> before;
  for (const traj::ObjectId id : ids) before[id] = sink.Snapshot(id);
  eng.Close();  // finishes every live object
  for (const traj::ObjectId id : ids) {
    const std::vector<traj::TimedSegment> after = sink.Snapshot(id);
    const std::vector<traj::TimedSegment> finish_tail(
        after.begin() + static_cast<std::ptrdiff_t>(before[id].size()),
        after.end());
    ExpectTimedEqual(tails[id], finish_tail,
                     "object " + std::to_string(id));
  }
}

TEST(EngineTailSnapshotTest, SnapshotStatusContract) {
  const auto visitor = [](traj::ObjectId,
                          std::span<const traj::TimedSegment>) {};

  // Tracking off: the tail clocks the snapshot needs do not exist.
  engine::StreamEngineOptions untracked;
  untracked.spec = api::SpecFor(baselines::Algorithm::kOPERB, kGoldenZeta);
  engine::StreamEngine plain(untracked, nullptr);
  EXPECT_EQ(plain.SnapshotShardTails(0, visitor).code(),
            StatusCode::kInvalidArgument);
  plain.Close();

  engine::StreamEngine eng(TrackingOptions(2), nullptr);
  EXPECT_EQ(eng.SnapshotShardTails(2, visitor).code(),
            StatusCode::kInvalidArgument);  // shard out of range
  EXPECT_EQ(eng.SnapshotShardTails(0, nullptr).code(),
            StatusCode::kInvalidArgument);  // empty visitor
  EXPECT_TRUE(eng.SnapshotShardTails(0, visitor).ok());
  eng.Close();
  EXPECT_EQ(eng.SnapshotShardTails(0, visitor).code(),
            StatusCode::kInvalidArgument);  // closed engine
}

TEST(EngineTest, LiveObjectCountAndRingAccessorsTrackTheCensus) {
  engine::StreamEngineOptions opts;
  opts.spec = api::SpecFor(baselines::Algorithm::kOPERB, kGoldenZeta);
  opts.num_shards = 4;
  opts.ring_capacity = 100;  // rounds up to 128
  engine::StreamEngine eng(opts, nullptr);

  EXPECT_EQ(eng.LiveObjectCount(), 0u);
  EXPECT_EQ(eng.RingCapacity(), 128u);
  const std::size_t cap = eng.RingCapacity();
  EXPECT_EQ(cap & (cap - 1), 0u) << "capacity not a power of two";

  const traj::Trajectory t =
      testutil::Generated(datagen::DatasetKind::kTruck, 50, 1);
  for (traj::ObjectId id = 0; id < 3; ++id) {
    for (std::size_t i = 0; i < t.size(); ++i) eng.Push(id, t[i]);
  }
  // Checkpoint is a drain barrier: afterwards the census is exact and
  // every ring has been consumed down to empty.
  const std::string path = TempPath("engine_census.ckpt");
  ASSERT_TRUE(eng.Checkpoint(path).ok());
  EXPECT_EQ(eng.LiveObjectCount(), 3u);
  for (std::size_t s = 0; s < opts.num_shards; ++s) {
    EXPECT_EQ(eng.RingOccupancy(s), 0u) << "shard " << s;
  }

  eng.FinishObject(1);
  ASSERT_TRUE(eng.Checkpoint(path).ok());
  EXPECT_EQ(eng.LiveObjectCount(), 2u);

  eng.Close();
  EXPECT_EQ(eng.LiveObjectCount(), 0u);
}

TEST(EngineTest, CheckpointVersionsSeparateTrackingModes) {
  const traj::Trajectory t =
      testutil::Generated(datagen::DatasetKind::kGeoLife, 400, 13);
  const std::size_t cut = 250;

  // A tracking engine checkpoints as format v2; restoring it into a
  // non-tracking engine (and vice versa) is a version mismatch, not
  // corruption — the tail clocks are state, present or absent.
  const std::string v2_path = TempPath("engine_v2.ckpt");
  engine::StreamEngineOptions tracked = TrackingOptions(4);
  TimedCollector full_sink;
  engine::StreamEngine full(tracked, nullptr);
  full.SetTimedSink(full_sink.Sink());
  for (std::size_t i = 0; i < cut; ++i) full.Push(5, t[i]);
  ASSERT_TRUE(full.Checkpoint(v2_path).ok());
  // The checkpoint's drain barrier makes this exactly the prefix output.
  const std::vector<traj::TimedSegment> at_cut = full_sink.Snapshot(5);

  engine::StreamEngineOptions untracked = tracked;
  untracked.track_segment_times = false;
  EXPECT_EQ(engine::StreamEngine::CreateFromCheckpoint(v2_path, untracked,
                                                       nullptr)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  const std::string v1_path = TempPath("engine_v1.ckpt");
  {
    engine::StreamEngine plain(untracked, nullptr);
    for (std::size_t i = 0; i < cut; ++i) plain.Push(5, t[i]);
    ASSERT_TRUE(plain.Checkpoint(v1_path).ok());
    plain.Close();
  }
  EXPECT_EQ(engine::StreamEngine::CreateFromCheckpoint(v1_path, tracked,
                                                       nullptr)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // The v2 round trip restores the tail clocks: the resumed engine's
  // remaining timed output is bit-identical to the uninterrupted run —
  // t_start/t_end included, which only works if the clock survived.
  auto resumed = engine::StreamEngine::CreateFromCheckpoint(
      v2_path, tracked, nullptr);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  TimedCollector resumed_sink;
  resumed.value()->SetTimedSink(resumed_sink.Sink());
  for (std::size_t i = cut; i < t.size(); ++i) {
    full.Push(5, t[i]);
    resumed.value()->Push(5, t[i]);
  }
  full.Close();
  resumed.value()->Close();
  const std::vector<traj::TimedSegment> want = full_sink.Snapshot(5);
  const std::vector<traj::TimedSegment> rest = resumed_sink.Snapshot(5);
  std::vector<traj::TimedSegment> got = at_cut;
  got.insert(got.end(), rest.begin(), rest.end());
  ExpectTimedEqual(got, want, "v2 resumed timed output");
  EXPECT_FALSE(rest.empty());
}

}  // namespace
}  // namespace operb
