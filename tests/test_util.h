#ifndef OPERB_TESTS_TEST_UTIL_H_
#define OPERB_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <vector>

#include "datagen/profiles.h"
#include "datagen/rng.h"
#include "geo/point.h"
#include "traj/trajectory.h"

namespace operb::testutil {

/// A trajectory from inline (x, y) pairs with unit time steps.
inline traj::Trajectory MakeTrajectory(
    const std::vector<std::pair<double, double>>& xy) {
  traj::Trajectory t;
  double time = 0.0;
  for (const auto& [x, y] : xy) {
    t.AppendUnchecked({x, y, time});
    time += 1.0;
  }
  return t;
}

/// A straight line along +x with `n` points spaced `step` meters.
inline traj::Trajectory StraightLine(std::size_t n, double step = 10.0) {
  traj::Trajectory t;
  for (std::size_t i = 0; i < n; ++i) {
    t.AppendUnchecked(
        {static_cast<double>(i) * step, 0.0, static_cast<double>(i)});
  }
  return t;
}

/// A zig-zag: alternating diagonal legs, producing many sharp turns.
inline traj::Trajectory ZigZag(std::size_t n, double step = 20.0,
                               double amplitude = 30.0) {
  traj::Trajectory t;
  for (std::size_t i = 0; i < n; ++i) {
    const double y = (i % 2 == 0) ? 0.0 : amplitude;
    t.AppendUnchecked(
        {static_cast<double>(i) * step, y, static_cast<double>(i)});
  }
  return t;
}

/// Uniform random walk in a box (adversarial for all simplifiers).
inline traj::Trajectory RandomWalk(std::size_t n, std::uint64_t seed,
                                   double step = 15.0) {
  datagen::Rng rng(seed);
  traj::Trajectory t;
  geo::Vec2 pos{0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) {
    t.AppendUnchecked({pos.x, pos.y, static_cast<double>(i)});
    pos.x += rng.Uniform(-step, step);
    pos.y += rng.Uniform(-step, step);
  }
  return t;
}

/// A small generated dataset trajectory for property tests.
inline traj::Trajectory Generated(datagen::DatasetKind kind, std::size_t n,
                                  std::uint64_t seed) {
  datagen::Rng rng(seed);
  return datagen::GenerateTrajectory(datagen::DatasetProfile::For(kind), n,
                                     &rng);
}

}  // namespace operb::testutil

#endif  // OPERB_TESTS_TEST_UTIL_H_
