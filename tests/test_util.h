#ifndef OPERB_TESTS_TEST_UTIL_H_
#define OPERB_TESTS_TEST_UTIL_H_

#include <charconv>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/profiles.h"
#include "datagen/rng.h"
#include "geo/point.h"
#include "traj/piecewise.h"
#include "traj/trajectory.h"

namespace operb::testutil {

/// Parameters the golden fixtures under tests/golden/ were produced with
/// (must match tools/make_golden.cc).
inline constexpr std::uint64_t kGoldenSeed = 20170401;
inline constexpr std::size_t kGoldenPoints = 600;
inline constexpr double kGoldenZeta = 40.0;

/// The exact trajectory a golden fixture was generated from.
inline traj::Trajectory GoldenTrajectory(datagen::DatasetKind kind) {
  datagen::Rng rng(kGoldenSeed);
  return datagen::GenerateTrajectory(datagen::DatasetProfile::For(kind),
                                     kGoldenPoints, &rng);
}

/// Loads a tests/golden/ fixture
/// (`first,last,start_patch,end_patch,x0,y0,x1,y1` rows).
inline std::vector<traj::RepresentedSegment> LoadGolden(
    const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "missing golden file " << path
                            << " (regenerate with tools/make_golden)";
  std::vector<traj::RepresentedSegment> out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    traj::RepresentedSegment s;
    const char* p = line.c_str();
    const char* end = p + line.size();
    unsigned long long first = 0, last = 0;
    int sp = 0, ep = 0;
    auto field = [&](auto* value) {
      if (p < end && *p == ',') ++p;
      const auto r = std::from_chars(p, end, *value);
      ASSERT_EQ(r.ec, std::errc()) << "corrupt golden row: " << line;
      p = r.ptr;
    };
    field(&first);
    field(&last);
    field(&sp);
    field(&ep);
    field(&s.start.x);
    field(&s.start.y);
    field(&s.end.x);
    field(&s.end.y);
    s.first_index = first;
    s.last_index = last;
    s.start_is_patch = sp != 0;
    s.end_is_patch = ep != 0;
    out.push_back(s);
  }
  return out;
}

/// Field-by-field bit-exact segment comparison.
inline void ExpectSegmentsEqual(
    const std::vector<traj::RepresentedSegment>& actual,
    const std::vector<traj::RepresentedSegment>& want,
    const std::string& label) {
  ASSERT_EQ(actual.size(), want.size()) << label;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    SCOPED_TRACE(label + " segment " + std::to_string(i));
    EXPECT_EQ(actual[i].first_index, want[i].first_index);
    EXPECT_EQ(actual[i].last_index, want[i].last_index);
    EXPECT_EQ(actual[i].start_is_patch, want[i].start_is_patch);
    EXPECT_EQ(actual[i].end_is_patch, want[i].end_is_patch);
    EXPECT_EQ(actual[i].start.x, want[i].start.x);
    EXPECT_EQ(actual[i].start.y, want[i].start.y);
    EXPECT_EQ(actual[i].end.x, want[i].end.x);
    EXPECT_EQ(actual[i].end.y, want[i].end.y);
  }
}

/// A trajectory from inline (x, y) pairs with unit time steps.
inline traj::Trajectory MakeTrajectory(
    const std::vector<std::pair<double, double>>& xy) {
  traj::Trajectory t;
  double time = 0.0;
  for (const auto& [x, y] : xy) {
    t.AppendUnchecked({x, y, time});
    time += 1.0;
  }
  return t;
}

/// A straight line along +x with `n` points spaced `step` meters.
inline traj::Trajectory StraightLine(std::size_t n, double step = 10.0) {
  traj::Trajectory t;
  for (std::size_t i = 0; i < n; ++i) {
    t.AppendUnchecked(
        {static_cast<double>(i) * step, 0.0, static_cast<double>(i)});
  }
  return t;
}

/// A zig-zag: alternating diagonal legs, producing many sharp turns.
inline traj::Trajectory ZigZag(std::size_t n, double step = 20.0,
                               double amplitude = 30.0) {
  traj::Trajectory t;
  for (std::size_t i = 0; i < n; ++i) {
    const double y = (i % 2 == 0) ? 0.0 : amplitude;
    t.AppendUnchecked(
        {static_cast<double>(i) * step, y, static_cast<double>(i)});
  }
  return t;
}

/// Uniform random walk in a box (adversarial for all simplifiers).
inline traj::Trajectory RandomWalk(std::size_t n, std::uint64_t seed,
                                   double step = 15.0) {
  datagen::Rng rng(seed);
  traj::Trajectory t;
  geo::Vec2 pos{0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) {
    t.AppendUnchecked({pos.x, pos.y, static_cast<double>(i)});
    pos.x += rng.Uniform(-step, step);
    pos.y += rng.Uniform(-step, step);
  }
  return t;
}

/// A small generated dataset trajectory for property tests.
inline traj::Trajectory Generated(datagen::DatasetKind kind, std::size_t n,
                                  std::uint64_t seed) {
  datagen::Rng rng(seed);
  return datagen::GenerateTrajectory(datagen::DatasetProfile::For(kind), n,
                                     &rng);
}

}  // namespace operb::testutil

#endif  // OPERB_TESTS_TEST_UTIL_H_
