#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "datagen/free_walker.h"
#include "datagen/profiles.h"
#include "datagen/rng.h"
#include "datagen/road_network.h"
#include "datagen/vehicle_sim.h"
#include "geo/angle.h"

namespace operb::datagen {
namespace {

TEST(RngTest, DeterministicSequences) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t va = a.NextU64();
    EXPECT_EQ(va, b.NextU64());
    (void)c.NextU64();
  }
  Rng d(42), e(43);
  EXPECT_NE(d.NextU64(), e.NextU64());
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-2.5, 7.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(RngTest, NormalMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.03);
}

TEST(RngTest, ForkDecorrelates) {
  Rng root(99);
  Rng child1 = root.Fork();
  Rng child2 = root.Fork();
  EXPECT_NE(child1.NextU64(), child2.NextU64());
}

TEST(RoadNetworkTest, GridTopology) {
  RoadNetwork::Params params;
  params.rows = 5;
  params.cols = 7;
  Rng rng(1);
  const auto net = RoadNetwork::Build(params, &rng);
  EXPECT_EQ(net.node_count(), 35u);
  // Corner nodes have 2 neighbours, edge nodes 3, interior 4.
  std::size_t total_degree = 0;
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    const auto& nbrs = net.neighbors(i);
    EXPECT_GE(nbrs.size(), 2u);
    EXPECT_LE(nbrs.size(), 4u);
    total_degree += nbrs.size();
  }
  // 2 * edges = 2 * (rows*(cols-1) + cols*(rows-1)) = 2 * (30 + 28).
  EXPECT_EQ(total_degree, 2u * (5 * 6 + 7 * 4));
}

TEST(RoadNetworkTest, JitterStaysWithinFraction) {
  RoadNetwork::Params params;
  params.rows = 4;
  params.cols = 4;
  params.block_meters = 100.0;
  params.jitter_fraction = 0.1;
  Rng rng(2);
  const auto net = RoadNetwork::Build(params, &rng);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      const geo::Vec2 p = net.node(r * 4 + c);
      EXPECT_NEAR(p.x, c * 100.0, 10.0 + 1e-9);
      EXPECT_NEAR(p.y, r * 100.0, 10.0 + 1e-9);
    }
  }
}

TEST(RoadNetworkTest, RandomWalkIsConnectedPath) {
  RoadNetwork::Params params;
  Rng rng(3);
  const auto net = RoadNetwork::Build(params, &rng);
  const auto walk = net.RandomWalk(200, &rng);
  ASSERT_EQ(walk.size(), 201u);
  for (std::size_t i = 1; i < walk.size(); ++i) {
    const auto& nbrs = net.neighbors(walk[i - 1]);
    EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), walk[i]), nbrs.end())
        << "hop " << i << " is not an edge";
  }
}

TEST(VehicleSimTest, ProducesMonotonicTimestamps) {
  Rng rng(5);
  const std::vector<geo::Vec2> waypoints{{0, 0}, {1000, 0}, {1000, 1000}};
  VehicleSimParams params;
  const auto t = SimulateVehicle(waypoints, params, &rng);
  ASSERT_GT(t.size(), 10u);
  EXPECT_TRUE(t.Validate().ok());
}

TEST(VehicleSimTest, StaysNearThePolyline) {
  Rng rng(6);
  const std::vector<geo::Vec2> waypoints{{0, 0}, {2000, 0}};
  VehicleSimParams params;
  params.gps_noise_m = 2.0;
  const auto t = SimulateVehicle(waypoints, params, &rng);
  for (const geo::Point& p : t) {
    EXPECT_NEAR(p.y, 0.0, 2.0 * 6.0);  // 6 sigma
    EXPECT_GE(p.x, -12.0);
    EXPECT_LE(p.x, 2012.0);
  }
}

TEST(VehicleSimTest, SamplingIntervalRespected) {
  Rng rng(7);
  const std::vector<geo::Vec2> waypoints{{0, 0}, {5000, 0}};
  VehicleSimParams params;
  params.sampling_interval_s = 10.0;
  params.sampling_jitter_fraction = 0.0;
  params.dropout_probability = 0.0;
  const auto t = SimulateVehicle(waypoints, params, &rng);
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_NEAR(t[i].t - t[i - 1].t, 10.0, 1e-9);
  }
}

TEST(VehicleSimTest, DropoutsReducePointCount) {
  const std::vector<geo::Vec2> waypoints{{0, 0}, {20000, 0}};
  VehicleSimParams with, without;
  with.dropout_probability = 0.3;
  without.dropout_probability = 0.0;
  Rng rng1(8), rng2(8);
  const auto t_with = SimulateVehicle(waypoints, with, &rng1);
  const auto t_without = SimulateVehicle(waypoints, without, &rng2);
  EXPECT_LT(t_with.size(), t_without.size());
}

TEST(FreeWalkerTest, ExactPointCountAndValidTime) {
  Rng rng(9);
  FreeWalkerParams params;
  const auto t = SimulateFreeWalk(500, params, &rng);
  EXPECT_EQ(t.size(), 500u);
  EXPECT_TRUE(t.Validate().ok());
}

TEST(FreeWalkerTest, SpeedConsistentWithParams) {
  Rng rng(10);
  FreeWalkerParams params;
  params.speed_mps = 2.0;
  params.gps_noise_m = 0.0;
  params.dropout_probability = 0.0;
  const auto t = SimulateFreeWalk(2000, params, &rng);
  const double avg_speed = t.PathLength() / t.Duration();
  EXPECT_NEAR(avg_speed, 2.0, 0.6);
}

TEST(FreeWalkerTest, HeadingIsSmooth) {
  // Consecutive heading changes should be small (no grid-like corners).
  Rng rng(11);
  FreeWalkerParams params;
  params.gps_noise_m = 0.0;
  const auto t = SimulateFreeWalk(500, params, &rng);
  int sharp_turns = 0;
  for (std::size_t i = 2; i < t.size(); ++i) {
    const double h1 =
        (t[i - 1].pos() - t[i - 2].pos()).Angle();
    const double h2 = (t[i].pos() - t[i - 1].pos()).Angle();
    if (geo::AbsoluteTurnAngle(h1, h2) > geo::kPi / 2) ++sharp_turns;
  }
  EXPECT_LT(sharp_turns, 10);
}

TEST(ProfilesTest, GenerateTrajectoryHitsExactPointCount) {
  for (auto kind : AllDatasetKinds()) {
    Rng rng(12);
    const auto t =
        GenerateTrajectory(DatasetProfile::For(kind), 1234, &rng);
    EXPECT_EQ(t.size(), 1234u) << DatasetName(kind);
    EXPECT_TRUE(t.Validate().ok()) << DatasetName(kind);
  }
}

TEST(ProfilesTest, DatasetIsDeterministicInSeed) {
  DatasetSpec spec;
  spec.kind = DatasetKind::kSerCar;
  spec.num_trajectories = 3;
  spec.points_per_trajectory = 500;
  spec.seed = 77;
  const auto a = GenerateDataset(spec);
  const auto b = GenerateDataset(spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size());
    for (std::size_t j = 0; j < a[i].size(); ++j) {
      EXPECT_EQ(a[i][j], b[i][j]);
    }
  }
  spec.seed = 78;
  const auto c = GenerateDataset(spec);
  EXPECT_NE(a[0][10], c[0][10]);
}

TEST(ProfilesTest, SamplingRatesMatchTable1) {
  // Taxi ~60 s; SerCar within [3, 5] s; GeoLife within [1, 5] s.
  Rng rng(13);
  const auto taxi =
      GenerateTrajectory(DatasetProfile::For(DatasetKind::kTaxi), 500, &rng);
  EXPECT_NEAR(taxi.MeanSamplingIntervalSeconds(), 60.0, 6.0);
  Rng rng2(14);
  const auto sercar = GenerateTrajectory(
      DatasetProfile::For(DatasetKind::kSerCar), 500, &rng2);
  EXPECT_GE(sercar.MeanSamplingIntervalSeconds(), 2.5);
  EXPECT_LE(sercar.MeanSamplingIntervalSeconds(), 5.6);
  Rng rng3(15);
  const auto geolife = GenerateTrajectory(
      DatasetProfile::For(DatasetKind::kGeoLife), 500, &rng3);
  EXPECT_GE(geolife.MeanSamplingIntervalSeconds(), 0.9);
  EXPECT_LE(geolife.MeanSamplingIntervalSeconds(), 5.6);
}

TEST(ProfilesTest, RoadKindsTurnAtCrossroads) {
  // Vehicle datasets must contain sharp heading changes (the crossroads
  // that motivate OPERB-A), pedestrians far fewer relative to length.
  auto sharp_turn_fraction = [](const traj::Trajectory& t) {
    int sharp = 0;
    int total = 0;
    for (std::size_t i = 2; i < t.size(); ++i) {
      const geo::Vec2 d1 = t[i - 1].pos() - t[i - 2].pos();
      const geo::Vec2 d2 = t[i].pos() - t[i - 1].pos();
      if (d1.Norm() < 1.0 || d2.Norm() < 1.0) continue;
      ++total;
      if (geo::AbsoluteTurnAngle(d1.Angle(), d2.Angle()) > geo::kPi / 3) {
        ++sharp;
      }
    }
    return total == 0 ? 0.0 : static_cast<double>(sharp) / total;
  };
  Rng rng(16);
  const auto taxi =
      GenerateTrajectory(DatasetProfile::For(DatasetKind::kTaxi), 2000, &rng);
  Rng rng2(17);
  const auto geolife = GenerateTrajectory(
      DatasetProfile::For(DatasetKind::kGeoLife), 2000, &rng2);
  EXPECT_GT(sharp_turn_fraction(taxi), 0.01);
}

}  // namespace
}  // namespace operb::datagen
