#include <cmath>

#include <gtest/gtest.h>

#include "core/operb.h"
#include "core/operb_a.h"
#include "core/patch.h"
#include "eval/metrics.h"
#include "eval/verifier.h"
#include "test_util.h"

namespace operb::core {
namespace {

using testutil::Generated;
using testutil::MakeTrajectory;
using testutil::RandomWalk;

traj::RepresentedSegment Seg(geo::Vec2 a, geo::Vec2 b, std::size_t f,
                             std::size_t l) {
  traj::RepresentedSegment s;
  s.start = a;
  s.end = b;
  s.first_index = f;
  s.last_index = l;
  return s;
}

// ---------------------------------------------------------------------------
// ComputePatchPoint: the three conditions of Section 5.1.
// ---------------------------------------------------------------------------

TEST(PatchPointTest, RightAngleCrossroadPatches) {
  // Horizontal segment then vertical segment, as at a crossroad; the
  // patch point is the corner where the two lines meet.
  const auto prev = Seg({0, 0}, {100, 0}, 0, 10);
  const auto next = Seg({110, 10}, {110, 100}, 12, 20);
  OperbAOptions opts = OperbAOptions::Optimized(40.0);
  const auto g = ComputePatchPoint(prev, next, opts);
  ASSERT_TRUE(g.has_value());
  EXPECT_NEAR(g->x, 110.0, 1e-9);
  EXPECT_NEAR(g->y, 0.0, 1e-9);
}

TEST(PatchPointTest, UTurnRejectedByGammaM) {
  // Turn of ~170 degrees: |included angle| > pi - gamma_m for
  // gamma_m = pi/3, so condition (3) rejects.
  const auto prev = Seg({0, 0}, {100, 0}, 0, 10);
  const auto next = Seg({105, 5}, {5, 22}, 12, 20);
  OperbAOptions opts = OperbAOptions::Optimized(40.0);
  EXPECT_FALSE(ComputePatchPoint(prev, next, opts).has_value());
  // With gamma_m = 0 any non-parallel turn is admissible.
  opts.gamma_m = 0.0;
  EXPECT_TRUE(ComputePatchPoint(prev, next, opts).has_value());
}

TEST(PatchPointTest, GammaMBoundaryIsSharp) {
  // A turn of exactly 120 degrees with gamma_m = pi/3 sits on the
  // boundary |delta| <= pi - gamma_m = 120deg: admissible. Slightly more
  // is not.
  OperbAOptions opts = OperbAOptions::Optimized(10.0);
  const auto prev = Seg({0, 0}, {100, 0}, 0, 10);
  const double just_ok = geo::DegToRad(119.5);
  const double too_much = geo::DegToRad(121.0);
  for (double angle : {just_ok, too_much}) {
    const geo::Vec2 dir = geo::Vec2::FromAngle(angle);
    const geo::Vec2 s0 = geo::Vec2{104.0, 3.0};
    const auto next = Seg(s0, s0 + dir * 80.0, 12, 20);
    const auto g = ComputePatchPoint(prev, next, opts);
    EXPECT_EQ(g.has_value(), angle <= geo::DegToRad(120.0)) << angle;
  }
}

TEST(PatchPointTest, RetractionBeyondHalfZetaRejected) {
  // The intersection lies 30 m *behind* prev's end; with zeta = 40 the
  // allowance is 20 m, so condition (2) rejects; with zeta = 80 it passes.
  const auto prev = Seg({0, 0}, {100, 0}, 0, 10);
  const auto next = Seg({70, 10}, {70, 100}, 12, 20);
  EXPECT_FALSE(
      ComputePatchPoint(prev, next, OperbAOptions::Optimized(40.0)));
  EXPECT_TRUE(
      ComputePatchPoint(prev, next, OperbAOptions::Optimized(80.0)));
}

TEST(PatchPointTest, IntersectionAheadOfNextStartRejected) {
  // The lines intersect beyond next's start (t > 0): G would reverse
  // next's direction, violating condition (1).
  const auto prev = Seg({0, 0}, {100, 0}, 0, 10);
  const auto next = Seg({110, -10}, {110, -100}, 12, 20);
  // Intersection at (110, 0) is *behind* next.start along next's
  // direction? next goes downward from (110,-10); (110,0) has t < 0 ...
  // choose a configuration where G is ahead instead:
  const auto next_ahead = Seg({110, 10}, {110, -100}, 12, 20);
  // G = (110, 0) lies after next_ahead.start (110, 10) along its downward
  // direction (t > 0): rejected.
  EXPECT_FALSE(ComputePatchPoint(prev, next_ahead,
                                 OperbAOptions::Optimized(40.0)));
  (void)next;
}

TEST(PatchPointTest, ParallelLinesRejected) {
  const auto prev = Seg({0, 0}, {100, 0}, 0, 10);
  const auto next = Seg({110, 5}, {210, 5}, 12, 20);
  EXPECT_FALSE(
      ComputePatchPoint(prev, next, OperbAOptions::Optimized(40.0)));
}

TEST(PatchPointTest, DegenerateSegmentsRejected) {
  const auto prev = Seg({0, 0}, {0, 0}, 0, 10);
  const auto next = Seg({10, 10}, {10, 100}, 12, 20);
  EXPECT_FALSE(
      ComputePatchPoint(prev, next, OperbAOptions::Optimized(40.0)));
}

TEST(PatchPointTest, MaxExtensionGuardRejectsFarPatches) {
  // A 10-degree turn puts the intersection far ahead of prev's end.
  const auto prev = Seg({0, 0}, {100, 0}, 0, 10);
  const geo::Vec2 dir = geo::Vec2::FromAngle(geo::DegToRad(10.0));
  const geo::Vec2 s0{150.0, 2.0};
  const auto next = Seg(s0, s0 + dir * 100.0, 12, 20);
  OperbAOptions opts = OperbAOptions::Optimized(10.0);
  const auto unguarded = ComputePatchPoint(prev, next, opts);
  ASSERT_TRUE(unguarded.has_value());
  EXPECT_GT(unguarded->x, 120.0);
  opts.max_patch_extension_zeta = 1.0;  // allow at most 10 m of extension
  EXPECT_FALSE(ComputePatchPoint(prev, next, opts).has_value());
}

// ---------------------------------------------------------------------------
// LazyPatcher policy.
// ---------------------------------------------------------------------------

TEST(LazyPatcherTest, PassesThroughNonAnomalousSegments) {
  LazyPatcher patcher(OperbAOptions::Optimized(40.0));
  patcher.Accept(Seg({0, 0}, {50, 0}, 0, 5));
  EXPECT_TRUE(patcher.emitted().empty());  // buffered as candidate X
  patcher.Accept(Seg({50, 0}, {100, 0}, 5, 10));
  EXPECT_EQ(patcher.emitted().size(), 1u);
  patcher.Finish();
  EXPECT_EQ(patcher.emitted().size(), 2u);
  EXPECT_EQ(patcher.anomalous_segments(), 0u);
  EXPECT_EQ(patcher.patches_applied(), 0u);
}

TEST(LazyPatcherTest, PatchesCrossroadAnomaly) {
  // X covers 0..10 along +x; anomalous Y jumps to the start of the
  // vertical street; S covers the vertical street.
  LazyPatcher patcher(OperbAOptions::Optimized(40.0));
  patcher.Accept(Seg({0, 0}, {100, 0}, 0, 10));
  patcher.Accept(Seg({100, 0}, {110, 10}, 10, 11));  // anomalous (2 pts)
  patcher.Accept(Seg({110, 10}, {110, 100}, 11, 20));
  patcher.Finish();
  ASSERT_EQ(patcher.anomalous_segments(), 1u);
  ASSERT_EQ(patcher.patches_applied(), 1u);
  const auto& out = patcher.emitted();
  ASSERT_EQ(out.size(), 2u);
  // X extended to G = (110, 0) on its own line.
  EXPECT_NEAR(out[0].end.x, 110.0, 1e-9);
  EXPECT_NEAR(out[0].end.y, 0.0, 1e-9);
  EXPECT_TRUE(out[0].end_is_patch);
  EXPECT_EQ(out[0].last_index, 10u);
  // Successor starts from G; its index range is untouched.
  EXPECT_TRUE(out[1].start_is_patch);
  EXPECT_EQ(out[1].first_index, 11u);
  EXPECT_NEAR(out[1].start.x, 110.0, 1e-9);
}

TEST(LazyPatcherTest, UnpatchableAnomalyEmittedInOrder) {
  LazyPatcher patcher(OperbAOptions::Optimized(40.0));
  patcher.Accept(Seg({0, 0}, {100, 0}, 0, 10));
  // U-turn: angle condition rejects the patch.
  patcher.Accept(Seg({100, 0}, {105, 5}, 10, 11));
  patcher.Accept(Seg({105, 5}, {5, 20}, 11, 20));
  patcher.Finish();
  EXPECT_EQ(patcher.anomalous_segments(), 1u);
  EXPECT_EQ(patcher.patches_applied(), 0u);
  const auto& out = patcher.emitted();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].last_index, 10u);
  EXPECT_EQ(out[1].first_index, 10u);
  EXPECT_EQ(out[1].last_index, 11u);
  EXPECT_EQ(out[2].first_index, 11u);
}

TEST(LazyPatcherTest, TrailingAnomalyFlushedOnFinish) {
  LazyPatcher patcher(OperbAOptions::Optimized(40.0));
  patcher.Accept(Seg({0, 0}, {100, 0}, 0, 10));
  patcher.Accept(Seg({100, 0}, {110, 10}, 10, 11));
  patcher.Finish();
  EXPECT_EQ(patcher.emitted().size(), 2u);
  EXPECT_EQ(patcher.anomalous_segments(), 1u);
  EXPECT_EQ(patcher.patches_applied(), 0u);
}

TEST(LazyPatcherTest, PatchingDisabledCountsButNeverPatches) {
  OperbAOptions opts = OperbAOptions::Optimized(40.0);
  opts.enable_patching = false;
  LazyPatcher patcher(opts);
  patcher.Accept(Seg({0, 0}, {100, 0}, 0, 10));
  patcher.Accept(Seg({100, 0}, {110, 10}, 10, 11));
  patcher.Accept(Seg({110, 10}, {110, 100}, 11, 20));
  patcher.Finish();
  EXPECT_EQ(patcher.anomalous_segments(), 1u);
  EXPECT_EQ(patcher.patches_applied(), 0u);
  EXPECT_EQ(patcher.emitted().size(), 3u);
}

TEST(LazyPatcherTest, ChainedPatchesAcrossConsecutiveAnomalies) {
  // Staircase: every turn produces an anomalous connector; the patched
  // pending segment must remain eligible as the next predecessor.
  LazyPatcher patcher(OperbAOptions::Optimized(40.0));
  patcher.Accept(Seg({0, 0}, {100, 0}, 0, 10));
  patcher.Accept(Seg({100, 0}, {110, 10}, 10, 11));    // anomalous
  patcher.Accept(Seg({110, 10}, {110, 100}, 11, 20));  // vertical street
  patcher.Accept(Seg({110, 100}, {120, 110}, 20, 21));  // anomalous
  patcher.Accept(Seg({120, 110}, {220, 110}, 21, 30));  // horizontal
  patcher.Finish();
  EXPECT_EQ(patcher.anomalous_segments(), 2u);
  EXPECT_EQ(patcher.patches_applied(), 2u);
  EXPECT_EQ(patcher.emitted().size(), 3u);
}

// ---------------------------------------------------------------------------
// Whole-algorithm behaviour.
// ---------------------------------------------------------------------------

TEST(OperbATest, EquivalentToOperbWhenNoAnomalies) {
  const auto t = testutil::StraightLine(100);
  const auto a = SimplifyOperbA(t, OperbAOptions::Optimized(10.0));
  const auto b = SimplifyOperb(t, OperbOptions::Optimized(10.0));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_EQ(a[i].end, b[i].end);
  }
}

TEST(OperbATest, ReducesAnomalousSegmentsOnRoadData) {
  const auto t = Generated(datagen::DatasetKind::kSerCar, 6000, 17);
  const double zeta = 40.0;
  const auto plain = SimplifyOperb(t, OperbOptions::Optimized(zeta));
  OperbAStats stats;
  const auto patched =
      SimplifyOperbA(t, OperbAOptions::Optimized(zeta), &stats);
  EXPECT_GT(stats.anomalous_segments, 0u);
  EXPECT_GT(stats.patches_applied, 0u);
  EXPECT_LT(eval::CountAnomalousSegments(patched),
            eval::CountAnomalousSegments(plain));
  EXPECT_LE(patched.StoredPointCount(), plain.StoredPointCount());
}

TEST(OperbATest, CompressionNeverWorseThanOperb) {
  for (auto kind : datagen::AllDatasetKinds()) {
    const auto t = Generated(kind, 4000, 77);
    for (double zeta : {10.0, 40.0}) {
      const auto plain = SimplifyOperb(t, OperbOptions::Optimized(zeta));
      const auto patched = SimplifyOperbA(t, OperbAOptions::Optimized(zeta));
      EXPECT_LE(patched.StoredPointCount(), plain.StoredPointCount())
          << datagen::DatasetName(kind) << " zeta=" << zeta;
    }
  }
}

TEST(OperbATest, IntroducesNoExtraError) {
  // Exp-3's observation: OPERB-A has the same average error as OPERB —
  // patching moves segment endpoints along their own lines only.
  const auto t = Generated(datagen::DatasetKind::kTaxi, 4000, 13);
  const auto plain = SimplifyOperb(t, OperbOptions::Raw(40.0));
  const auto patched = SimplifyOperbA(t, OperbAOptions::Raw(40.0));
  const auto e_plain = eval::MeasureError(t, plain);
  const auto e_patched = eval::MeasureError(t, patched);
  EXPECT_NEAR(e_patched.average, e_plain.average, 0.3);
  EXPECT_LE(e_patched.max, 40.0 * (1.0 + 1e-9));
}

TEST(OperbATest, GammaMZeroPatchesMoreThanGammaMPi) {
  const auto t = Generated(datagen::DatasetKind::kSerCar, 6000, 29);
  OperbAOptions loose = OperbAOptions::Optimized(40.0);
  loose.gamma_m = 0.0;
  OperbAOptions tight = OperbAOptions::Optimized(40.0);
  tight.gamma_m = geo::kPi;
  OperbAStats s_loose, s_tight;
  SimplifyOperbA(t, loose, &s_loose);
  SimplifyOperbA(t, tight, &s_tight);
  EXPECT_GT(s_loose.patches_applied, s_tight.patches_applied);
  // gamma_m = pi admits only |delta| <= 0 turns: essentially no patches.
  EXPECT_EQ(s_tight.patches_applied, 0u);
}

TEST(OperbATest, StreamingMatchesBatch) {
  const auto t = Generated(datagen::DatasetKind::kSerCar, 3000, 41);
  const OperbAOptions opts = OperbAOptions::Optimized(30.0);
  const auto batch = SimplifyOperbA(t, opts);
  OperbAStream stream(opts);
  traj::PiecewiseRepresentation incremental;
  for (const geo::Point& p : t) {
    stream.Push(p);
    for (auto& s : stream.TakeEmitted()) incremental.Append(s);
  }
  stream.Finish();
  for (auto& s : stream.TakeEmitted()) incremental.Append(s);
  ASSERT_EQ(batch.size(), incremental.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].start, incremental[i].start);
    EXPECT_EQ(batch[i].end, incremental[i].end);
  }
}

struct AParam {
  datagen::DatasetKind kind;
  double zeta;
  std::uint64_t seed;
};

class OperbAPropertyTest : public ::testing::TestWithParam<AParam> {};

TEST_P(OperbAPropertyTest, ValidAndErrorBounded) {
  const AParam p = GetParam();
  const auto t = Generated(p.kind, 2500, p.seed);
  for (const OperbAOptions& opts : {OperbAOptions::Raw(p.zeta),
                                    OperbAOptions::Optimized(p.zeta)}) {
    const auto rep = SimplifyOperbA(t, opts);
    ASSERT_TRUE(rep.ValidateAgainst(t).ok());
    const auto verdict = eval::VerifyErrorBound(t, rep, p.zeta);
    EXPECT_TRUE(verdict.bounded) << verdict.ToString();
  }
}

std::string AParamName(const ::testing::TestParamInfo<AParam>& info) {
  std::string name(datagen::DatasetName(info.param.kind));
  name += "_z" + std::to_string(static_cast<int>(info.param.zeta));
  name += "_s" + std::to_string(info.param.seed);
  return name;
}

std::vector<AParam> MakeAParams() {
  std::vector<AParam> out;
  for (auto kind : datagen::AllDatasetKinds()) {
    for (double zeta : {10.0, 40.0, 100.0}) {
      out.push_back({kind, zeta, 8ULL});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, OperbAPropertyTest,
                         ::testing::ValuesIn(MakeAParams()), AParamName);

TEST(OperbATest, AdversarialRandomWalkStaysBounded) {
  for (std::uint64_t seed = 200; seed < 206; ++seed) {
    const auto t = RandomWalk(1200, seed);
    for (double zeta : {5.0, 25.0}) {
      const auto rep = SimplifyOperbA(t, OperbAOptions::Optimized(zeta));
      ASSERT_TRUE(rep.ValidateAgainst(t).ok());
      EXPECT_TRUE(eval::VerifyErrorBound(t, rep, zeta).bounded)
          << "seed=" << seed << " zeta=" << zeta;
    }
  }
}

TEST(OperbATest, TinyInputs) {
  const OperbAOptions opts = OperbAOptions::Optimized(10.0);
  traj::Trajectory empty;
  EXPECT_TRUE(SimplifyOperbA(empty, opts).empty());
  const auto two = MakeTrajectory({{0, 0}, {5, 5}});
  const auto rep = SimplifyOperbA(two, opts);
  ASSERT_EQ(rep.size(), 1u);
  EXPECT_TRUE(rep.ValidateAgainst(two).ok());
}

}  // namespace
}  // namespace operb::core
