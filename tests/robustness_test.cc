// Numeric robustness and model-level statistics: extreme coordinates and
// bounds, the Gauss-Markov GPS error model, and stream-lifecycle edges.

#include <cmath>

#include <gtest/gtest.h>

#include "common/stopwatch.h"
#include "core/operb.h"
#include "core/operb_a.h"
#include "datagen/noise.h"
#include "datagen/rng.h"
#include "eval/verifier.h"
#include "test_util.h"

namespace operb {
namespace {

using testutil::Generated;

TEST(NoiseModelTest, StationaryVarianceMatchesSigma) {
  datagen::Rng rng(5);
  datagen::GaussMarkovNoise noise(3.0, 90.0);
  // Warm up past several correlation times, then measure.
  for (int i = 0; i < 200; ++i) noise.Sample(30.0, &rng);
  double sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const geo::Vec2 e = noise.Sample(30.0, &rng);
    sum2 += e.x * e.x + e.y * e.y;
  }
  const double per_axis_var = sum2 / (2.0 * n);
  EXPECT_NEAR(std::sqrt(per_axis_var), 3.0, 0.25);
}

TEST(NoiseModelTest, DenseSamplesShareTheirError) {
  // Consecutive fixes 1 s apart with tau = 90 s must be highly
  // correlated: their difference is much smaller than sigma.
  datagen::Rng rng(6);
  datagen::GaussMarkovNoise noise(3.0, 90.0);
  geo::Vec2 prev = noise.Sample(1.0, &rng);
  double diff2 = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const geo::Vec2 cur = noise.Sample(1.0, &rng);
    diff2 += geo::SquaredDistance(cur, prev);
    prev = cur;
  }
  const double rms_step = std::sqrt(diff2 / n);
  EXPECT_LT(rms_step, 1.0);  // << sigma * sqrt(2) = 4.24
}

TEST(NoiseModelTest, ZeroTauDegradesToWhiteNoise) {
  datagen::Rng rng(7);
  datagen::GaussMarkovNoise noise(3.0, 0.0);
  geo::Vec2 prev = noise.Sample(1.0, &rng);
  double dot_sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const geo::Vec2 cur = noise.Sample(1.0, &rng);
    dot_sum += cur.Dot(prev);
    prev = cur;
  }
  // Lag-1 autocorrelation ~ 0 for white noise.
  EXPECT_NEAR(dot_sum / n / 9.0, 0.0, 0.1);
}

TEST(NoiseModelTest, ZeroSigmaIsExactlyZero) {
  datagen::Rng rng(8);
  datagen::GaussMarkovNoise noise(0.0, 90.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(noise.Sample(5.0, &rng), geo::Vec2(0.0, 0.0));
  }
}

TEST(RobustnessTest, FarFromOriginCoordinatesStayBounded) {
  // A trajectory 10,000 km from the projection origin (poorly chosen
  // reference) must still satisfy the bound: the algorithms use relative
  // geometry only.
  auto t = Generated(datagen::DatasetKind::kSerCar, 2000, 3);
  for (geo::Point& p : t.mutable_points()) {
    p.x += 1e7;
    p.y -= 1e7;
  }
  const auto rep = core::SimplifyOperb(t, core::OperbOptions::Optimized(20.0));
  ASSERT_TRUE(rep.ValidateAgainst(t).ok());
  // Absolute-coordinate cross products lose ~9 digits here; allow a
  // micrometer-scale slack.
  EXPECT_TRUE(eval::VerifyErrorBound(t, rep, 20.0, 1e-6).bounded);
}

TEST(RobustnessTest, ExtremeZetas) {
  const auto t = Generated(datagen::DatasetKind::kGeoLife, 500, 4);
  // Microscopic bound: nothing compresses, everything valid.
  const auto tiny = core::SimplifyOperb(t, core::OperbOptions::Optimized(1e-6));
  ASSERT_TRUE(tiny.ValidateAgainst(t).ok());
  EXPECT_TRUE(eval::VerifyErrorBound(t, tiny, 1e-6).bounded);
  EXPECT_GT(tiny.size(), t.size() / 3);
  // Planet-sized bound: one segment (plus possible closing segment).
  const auto huge = core::SimplifyOperb(t, core::OperbOptions::Optimized(1e7));
  ASSERT_TRUE(huge.ValidateAgainst(t).ok());
  EXPECT_LE(huge.size(), 2u);
}

TEST(RobustnessTest, FinishIsIdempotentAndTerminal) {
  core::OperbStream stream(core::OperbOptions::Optimized(10.0));
  stream.Push({0, 0, 0});
  stream.Push({100, 0, 1});
  stream.Finish();
  const auto first = stream.TakeEmitted();
  EXPECT_EQ(first.size(), 1u);
  stream.Finish();  // second Finish is a no-op
  EXPECT_TRUE(stream.TakeEmitted().empty());
}

TEST(RobustnessTest, OperbAHandlesDegenerateClusters) {
  // Bursts of nearly identical fixes between long hops (a parked
  // vehicle with its engine on) — exercises zero-length candidate
  // segments in the patcher.
  traj::Trajectory t;
  double time = 0.0;
  for (int hop = 0; hop < 10; ++hop) {
    const double x = hop * 500.0;
    const double y = (hop % 2) * 400.0;
    for (int j = 0; j < 20; ++j) {
      t.AppendUnchecked({x + j * 0.01, y, time});
      time += 1.0;
    }
  }
  const auto rep = core::SimplifyOperbA(t, core::OperbAOptions::Optimized(30.0));
  ASSERT_TRUE(rep.ValidateAgainst(t).ok());
  EXPECT_TRUE(eval::VerifyErrorBound(t, rep, 30.0).bounded);
}

TEST(RobustnessTest, VeryLongSingleSegmentHitsCapNotOverflow) {
  // Raw options: with the absorb optimization on, a single cap break
  // suffices (absorption checks against a fixed chord and needs no cap).
  core::OperbOptions o = core::OperbOptions::Raw(50.0);
  o.max_points_per_segment = 1000;
  traj::Trajectory t;
  for (int i = 0; i < 5000; ++i) {
    t.AppendUnchecked({i * 2.0, 0.0, static_cast<double>(i)});
  }
  core::OperbStats stats;
  const auto rep = core::SimplifyOperb(t, o, &stats);
  EXPECT_GE(stats.cap_breaks, 4u);
  ASSERT_TRUE(rep.ValidateAgainst(t).ok());
  EXPECT_TRUE(eval::VerifyErrorBound(t, rep, 50.0).bounded);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch w;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(double(i));
  EXPECT_GT(w.ElapsedNanos(), 0);
  EXPECT_GE(w.ElapsedSeconds(), 0.0);
  const double before = w.ElapsedMillis();
  w.Restart();
  EXPECT_LE(w.ElapsedMillis(), before + 1000.0);
}

}  // namespace
}  // namespace operb
