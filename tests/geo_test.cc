#include <cmath>

#include <gtest/gtest.h>

#include "geo/angle.h"
#include "geo/bbox.h"
#include "geo/distance.h"
#include "geo/line.h"
#include "geo/point.h"
#include "geo/polygon_clip.h"
#include "geo/projection.h"
#include "geo/segment.h"

namespace operb::geo {
namespace {

constexpr double kTol = 1e-9;

TEST(Vec2Test, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, Vec2(4.0, 1.0));
  EXPECT_EQ(a - b, Vec2(-2.0, 3.0));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
  EXPECT_EQ(2.0 * a, Vec2(2.0, 4.0));
  EXPECT_EQ(-a, Vec2(-1.0, -2.0));
  EXPECT_DOUBLE_EQ(a.Dot(b), 1.0);
  EXPECT_DOUBLE_EQ(a.Cross(b), -7.0);
}

TEST(Vec2Test, NormAndAngle) {
  EXPECT_DOUBLE_EQ(Vec2(3.0, 4.0).Norm(), 5.0);
  EXPECT_DOUBLE_EQ(Vec2(3.0, 4.0).SquaredNorm(), 25.0);
  EXPECT_NEAR(Vec2(1.0, 1.0).Angle(), kPi / 4.0, kTol);
  EXPECT_NEAR(Vec2(-1.0, 0.0).Angle(), kPi, kTol);
  EXPECT_DOUBLE_EQ(Vec2(0.0, 0.0).Angle(), 0.0);
}

TEST(Vec2Test, FromAngleRoundTrip) {
  for (double theta : {0.0, 0.3, kPi / 2, 2.0, kPi, 4.5}) {
    const Vec2 v = Vec2::FromAngle(theta);
    EXPECT_NEAR(v.Norm(), 1.0, kTol);
    EXPECT_NEAR(NormalizeAngle2Pi(v.Angle()), NormalizeAngle2Pi(theta), 1e-9);
  }
}

TEST(AngleTest, Normalize2Pi) {
  EXPECT_NEAR(NormalizeAngle2Pi(0.0), 0.0, kTol);
  EXPECT_NEAR(NormalizeAngle2Pi(kTwoPi), 0.0, kTol);
  EXPECT_NEAR(NormalizeAngle2Pi(-kPi / 2), 1.5 * kPi, kTol);
  EXPECT_NEAR(NormalizeAngle2Pi(5.0 * kPi), kPi, kTol);
  for (double theta = -20.0; theta < 20.0; theta += 0.37) {
    const double n = NormalizeAngle2Pi(theta);
    EXPECT_GE(n, 0.0);
    EXPECT_LT(n, kTwoPi);
    EXPECT_NEAR(std::sin(n), std::sin(theta), 1e-9);
  }
}

TEST(AngleTest, NormalizePi) {
  EXPECT_NEAR(NormalizeAnglePi(kPi), kPi, kTol);
  EXPECT_NEAR(NormalizeAnglePi(-kPi), kPi, kTol);
  EXPECT_NEAR(NormalizeAnglePi(1.5 * kPi), -0.5 * kPi, kTol);
  for (double theta = -20.0; theta < 20.0; theta += 0.41) {
    const double n = NormalizeAnglePi(theta);
    EXPECT_GT(n, -kPi - kTol);
    EXPECT_LE(n, kPi + kTol);
    EXPECT_NEAR(std::cos(n), std::cos(theta), 1e-9);
  }
}

TEST(AngleTest, IncludedAngleMatchesPaperExample) {
  // Figure 2(2): included angle 3*pi/4.
  const DirectedSegment l1{{0.0, 0.0}, {1.0, 0.0}};
  const DirectedSegment l2{{0.0, 0.0}, {-1.0, 1.0}};
  EXPECT_NEAR(IncludedAngle(l1.Theta(), l2.Theta()), 0.75 * kPi, kTol);
}

TEST(AngleTest, AbsoluteTurnAngle) {
  EXPECT_NEAR(AbsoluteTurnAngle(0.0, kPi / 2), kPi / 2, kTol);
  EXPECT_NEAR(AbsoluteTurnAngle(0.1, kTwoPi - 0.1), 0.2, kTol);
  EXPECT_NEAR(AbsoluteTurnAngle(0.0, kPi), kPi, kTol);
}

TEST(SegmentTest, ThetaAndLength) {
  const DirectedSegment s{{1.0, 1.0}, {1.0, 3.0}};
  EXPECT_NEAR(s.Theta(), kPi / 2, kTol);
  EXPECT_DOUBLE_EQ(s.Length(), 2.0);
  EXPECT_FALSE(s.IsDegenerate());
  const DirectedSegment d{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_TRUE(d.IsDegenerate());
  EXPECT_DOUBLE_EQ(d.Theta(), 0.0);
}

TEST(SegmentTest, AnchoredLineEndpoint) {
  const AnchoredLine l{{2.0, 0.0}, 5.0, kPi / 2};
  const Vec2 e = l.Endpoint();
  EXPECT_NEAR(e.x, 2.0, kTol);
  EXPECT_NEAR(e.y, 5.0, kTol);
}

TEST(DistanceTest, PointToLine) {
  EXPECT_NEAR(PointToLineDistance({0.0, 1.0}, {0.0, 0.0}, {1.0, 0.0}), 1.0,
              kTol);
  // Beyond the segment ends the *line* distance stays perpendicular.
  EXPECT_NEAR(PointToLineDistance({10.0, 2.0}, {0.0, 0.0}, {1.0, 0.0}), 2.0,
              kTol);
  // Degenerate line falls back to point distance.
  EXPECT_NEAR(PointToLineDistance({3.0, 4.0}, {0.0, 0.0}, {0.0, 0.0}), 5.0,
              kTol);
}

TEST(DistanceTest, PointToAnchoredLine) {
  const AnchoredLine l{{0.0, 0.0}, 0.0, kPi / 4};
  EXPECT_NEAR(PointToLineDistance({1.0, 0.0}, l), std::sqrt(0.5), kTol);
}

TEST(SegmentTest, AnchoredLineCachesUnitDirection) {
  const AnchoredLine l{{2.0, -1.0}, 5.0, 0.73};
  // Invariant: dir is exactly FromAngle(theta), bit for bit — the
  // trig-free kernels must reproduce the scalar path's arithmetic.
  const Vec2 expected = Vec2::FromAngle(0.73);
  EXPECT_EQ(l.dir.x, expected.x);
  EXPECT_EQ(l.dir.y, expected.y);
  // Default construction points along +x (theta 0).
  const AnchoredLine d;
  EXPECT_EQ(d.dir.x, 1.0);
  EXPECT_EQ(d.dir.y, 0.0);
}

TEST(DistanceTest, DirKernelsMatchScalarDefinitions) {
  const Vec2 anchor{3.0, -2.0};
  const double theta = 1.234;
  const Vec2 dir = Vec2::FromAngle(theta);
  const AnchoredLine line{anchor, 7.0, theta};
  for (double x = -5.0; x <= 5.0; x += 1.7) {
    const Vec2 p{x, 0.5 * x - 3.0};
    // The direction-vector kernels must agree bitwise with the
    // AnchoredLine overloads (both run the same cross product)...
    EXPECT_EQ(PointToLineDistanceDir(p, anchor, dir),
              PointToLineDistance(p, line));
    EXPECT_EQ(SignedPointToLineOffsetDir(p, anchor, dir),
              SignedPointToLineOffset(p, line));
    // ...and to numerical tolerance with the two-point formulation.
    EXPECT_NEAR(PointToLineDistanceDir(p, anchor, dir),
                PointToLineDistance(p, anchor, anchor + dir * 10.0), 1e-9);
  }
}

TEST(DistanceTest, PointToSegmentClamps) {
  EXPECT_NEAR(PointToSegmentDistance({2.0, 1.0}, {0.0, 0.0}, {1.0, 0.0}),
              std::sqrt(2.0), kTol);
  EXPECT_NEAR(PointToSegmentDistance({0.5, 1.0}, {0.0, 0.0}, {1.0, 0.0}), 1.0,
              kTol);
  EXPECT_NEAR(PointToSegmentDistance({-1.0, 0.0}, {0.0, 0.0}, {1.0, 0.0}),
              1.0, kTol);
}

TEST(DistanceTest, SignedOffsetSides) {
  EXPECT_GT(SignedPointToLineOffset({0.5, 1.0}, {0.0, 0.0}, {1.0, 0.0}), 0.0);
  EXPECT_LT(SignedPointToLineOffset({0.5, -1.0}, {0.0, 0.0}, {1.0, 0.0}),
            0.0);
  EXPECT_NEAR(SignedPointToLineOffset({0.5, 0.0}, {0.0, 0.0}, {1.0, 0.0}),
              0.0, kTol);
}

TEST(DistanceTest, ProjectionParameter) {
  EXPECT_NEAR(ProjectionParameter({0.25, 5.0}, {0.0, 0.0}, {1.0, 0.0}), 0.25,
              kTol);
  EXPECT_NEAR(ProjectionParameter({2.0, 0.0}, {0.0, 0.0}, {1.0, 0.0}), 2.0,
              kTol);
  EXPECT_DOUBLE_EQ(ProjectionParameter({1.0, 1.0}, {0.0, 0.0}, {0.0, 0.0}),
                   0.0);
}

TEST(DistanceTest, SynchronousEuclidean) {
  const Point a{0.0, 0.0, 0.0};
  const Point b{10.0, 0.0, 10.0};
  // At t=5 the reference position is (5, 0).
  EXPECT_NEAR(SynchronousEuclideanDistance({5.0, 3.0, 5.0}, a, b), 3.0, kTol);
  // A point on time and on line has zero SED.
  EXPECT_NEAR(SynchronousEuclideanDistance({2.0, 0.0, 2.0}, a, b), 0.0, kTol);
  // Lagging in time but at the position of t=8: SED sees displacement.
  EXPECT_NEAR(SynchronousEuclideanDistance({8.0, 0.0, 2.0}, a, b), 6.0, kTol);
}

TEST(LineTest, BasicIntersection) {
  const auto i = IntersectLines({0.0, 0.0}, {1.0, 0.0}, {2.0, -1.0},
                                {0.0, 1.0});
  ASSERT_TRUE(i.has_value());
  EXPECT_NEAR(i->point.x, 2.0, kTol);
  EXPECT_NEAR(i->point.y, 0.0, kTol);
  EXPECT_NEAR(i->s, 2.0, kTol);
  EXPECT_NEAR(i->t, 1.0, kTol);
}

TEST(LineTest, ParallelReturnsNullopt) {
  EXPECT_FALSE(
      IntersectLines({0.0, 0.0}, {1.0, 1.0}, {5.0, 0.0}, {2.0, 2.0}));
  EXPECT_FALSE(
      IntersectLines({0.0, 0.0}, {0.0, 0.0}, {5.0, 0.0}, {1.0, 0.0}));
}

TEST(BBoxTest, ExtendAndContains) {
  BoundingBox box;
  EXPECT_TRUE(box.IsEmpty());
  box.Extend(Vec2{1.0, 2.0});
  box.Extend(Vec2{-1.0, 5.0});
  EXPECT_FALSE(box.IsEmpty());
  EXPECT_TRUE(box.Contains({0.0, 3.0}));
  EXPECT_FALSE(box.Contains({2.0, 3.0}));
  EXPECT_DOUBLE_EQ(box.Width(), 2.0);
  EXPECT_DOUBLE_EQ(box.Height(), 3.0);
  const auto corners = box.Corners();
  EXPECT_EQ(corners[0], Vec2(-1.0, 2.0));
  EXPECT_EQ(corners[2], Vec2(1.0, 5.0));
}

TEST(PolygonClipTest, HalfPlaneSides) {
  const HalfPlane left = HalfPlane::LeftOf({0.0, 0.0}, {1.0, 0.0});
  EXPECT_TRUE(left.Contains({0.5, 1.0}));
  EXPECT_FALSE(left.Contains({0.5, -1.0}));
  const HalfPlane right = HalfPlane::RightOf({0.0, 0.0}, {1.0, 0.0});
  EXPECT_TRUE(right.Contains({0.5, -1.0}));
  EXPECT_FALSE(right.Contains({0.5, 1.0}));
}

TEST(PolygonClipTest, ClipSquareByDiagonal) {
  const std::vector<Vec2> square{{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  // Keep the half-plane left of the diagonal (0,0)->(2,2): upper triangle.
  const auto tri = ClipPolygon(square, HalfPlane::LeftOf({0, 0}, {2, 2}));
  // Vertices on the clip boundary may be duplicated (harmless for the
  // bound computations); assert the geometric content instead.
  ASSERT_GE(tri.size(), 3u);
  for (const Vec2& v : tri) {
    EXPECT_TRUE(HalfPlane::LeftOf({0, 0}, {2, 2}).Contains(v));
  }
  double area = 0.0;
  for (std::size_t i = 0; i < tri.size(); ++i) {
    const Vec2 a = tri[i];
    const Vec2 b = tri[(i + 1) % tri.size()];
    area += a.Cross(b);
  }
  EXPECT_NEAR(std::fabs(area) / 2.0, 2.0, 1e-6);
}

TEST(PolygonClipTest, ClipAwayEverything) {
  const std::vector<Vec2> square{{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  const auto gone =
      ClipPolygon(square, HalfPlane::LeftOf({0.0, 5.0}, {1.0, 5.0}));
  EXPECT_TRUE(gone.empty());
}

TEST(PolygonClipTest, SequentialClipsCommute) {
  const std::vector<Vec2> square{{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  const std::vector<HalfPlane> hps{HalfPlane::LeftOf({2, 0}, {2, 4}),
                                   HalfPlane::RightOf({0, 2}, {4, 2})};
  const auto region = ClipPolygon(square, hps);
  // Left of x=2 going up means x <= 2; right of y=2 going +x means y <= 2.
  for (const Vec2& v : region) {
    EXPECT_LE(v.x, 2.0 + 1e-9);
    EXPECT_LE(v.y, 2.0 + 1e-9);
  }
  EXPECT_EQ(region.size(), 4u);
}

TEST(ProjectionTest, RoundTripNearReference) {
  const LocalProjector proj({39.9, 116.4});  // Beijing
  const LatLon c{39.95, 116.45};
  const Vec2 xy = proj.Project(c);
  const LatLon back = proj.Unproject(xy);
  EXPECT_NEAR(back.lat, c.lat, 1e-12);
  EXPECT_NEAR(back.lon, c.lon, 1e-12);
}

TEST(ProjectionTest, MatchesHaversineAtCityScale) {
  const LocalProjector proj({39.9, 116.4});
  const LatLon a{39.90, 116.40};
  const LatLon b{39.93, 116.44};
  const double planar = Distance(proj.Project(a), proj.Project(b));
  const double sphere = HaversineMeters(a, b);
  EXPECT_NEAR(planar, sphere, sphere * 1e-3);  // <0.1% at ~5 km
}

TEST(ProjectionTest, HaversineKnownDistance) {
  // One degree of latitude is ~111.2 km.
  EXPECT_NEAR(HaversineMeters({0.0, 0.0}, {1.0, 0.0}), 111195.0, 150.0);
  EXPECT_DOUBLE_EQ(HaversineMeters({10.0, 20.0}, {10.0, 20.0}), 0.0);
}

}  // namespace
}  // namespace operb::geo
