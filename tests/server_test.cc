// TrajectoryServer suite: the read-your-writes merge against the
// offline oracle, the loopback client round trip, BUSY flow control,
// the seal-failure fault matrix, and the multi-threaded hammer the TSan
// CI job runs (DESIGN.md §11).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/rng.h"
#include "engine/stream_engine.h"
#include "geo/bbox.h"
#include "geo/point.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "store/env.h"
#include "store/reader.h"
#include "test_util.h"
#include "traj/multi_object.h"

namespace operb {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test.
std::string ScratchDir(const std::string& name) {
  const fs::path dir =
      fs::temp_directory_path() / ("operb_server_test_" + name);
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir);
  return dir.string();
}

/// The all-covering window every merge comparison queries with.
geo::BoundingBox EverythingBox() {
  geo::BoundingBox box;
  box.Extend(geo::Vec2{-1e12, -1e12});
  box.Extend(geo::Vec2{1e12, 1e12});
  return box;
}

constexpr double kAllTime = 1e18;
constexpr std::size_t kFullOverlay = std::numeric_limits<std::size_t>::max();

/// A seeded interleaved feed: `objects` random walks of `points` points
/// each, round-robin.
std::vector<traj::ObjectUpdate> MakeFeed(std::size_t objects,
                                         std::size_t points,
                                         std::uint64_t seed) {
  std::vector<traj::ObjectTrajectory> trajs(objects);
  for (std::size_t o = 0; o < objects; ++o) {
    trajs[o].object_id = o;
    trajs[o].trajectory = testutil::RandomWalk(points, seed + o);
  }
  return traj::InterleaveRoundRobin(trajs);
}

/// Offline oracle: the same feed through a bare tracking engine, every
/// object finished at end-of-stream, timed segments in canonical store
/// order (ascending object id, emission order within an object).
std::vector<traj::TimedSegment> OfflineOracle(
    const engine::StreamEngineOptions& base,
    std::span<const traj::ObjectUpdate> updates) {
  engine::StreamEngineOptions options = base;
  options.track_segment_times = true;
  std::mutex mu;
  std::vector<traj::TimedSegment> out;
  auto engine = engine::StreamEngine::Create(options, nullptr);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  (*engine)->SetTimedSink([&](const traj::TimedSegment& s) {
    const std::lock_guard<std::mutex> lock(mu);
    out.push_back(s);
  });
  (*engine)->Push(updates);
  (*engine)->Close();
  std::stable_sort(out.begin(), out.end(),
                   [](const traj::TimedSegment& a,
                      const traj::TimedSegment& b) {
                     return a.object_id < b.object_id;
                   });
  return out;
}

void ExpectTimedSegmentsEqual(const std::vector<traj::TimedSegment>& got,
                              const std::vector<traj::TimedSegment>& want,
                              const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    SCOPED_TRACE(label + " segment " + std::to_string(i));
    EXPECT_EQ(got[i].object_id, want[i].object_id);
    EXPECT_EQ(got[i].segment.first_index, want[i].segment.first_index);
    EXPECT_EQ(got[i].segment.last_index, want[i].segment.last_index);
    EXPECT_EQ(got[i].segment.start.x, want[i].segment.start.x);
    EXPECT_EQ(got[i].segment.start.y, want[i].segment.start.y);
    EXPECT_EQ(got[i].segment.end.x, want[i].segment.end.x);
    EXPECT_EQ(got[i].segment.end.y, want[i].segment.end.y);
    EXPECT_EQ(got[i].t_start, want[i].t_start);
    EXPECT_EQ(got[i].t_end, want[i].t_end);
  }
}

server::ServerOptions BaseOptions(const std::string& store) {
  server::ServerOptions options;
  options.engine.spec.zeta = 30.0;
  options.engine.num_threads = 2;
  options.engine.num_shards = 4;
  options.store_path = store;
  options.seal_interval_seconds = 0.0;  // seals only when a test says so
  return options;
}

// ---------------------------------------------------------------------------
// Read-your-writes merge vs the offline oracle
// ---------------------------------------------------------------------------

TEST(ServerMergeTest, UnsealedQueryMatchesOfflineOracleBitExactly) {
  const std::string dir = ScratchDir("merge_unsealed");
  const auto feed = MakeFeed(12, 80, 20170401);
  server::ServerOptions options = BaseOptions(dir + "/store");
  const auto want = OfflineOracle(options.engine, feed);

  auto server = server::TrajectoryServer::Start(options, 0);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto ingested = (*server)->Ingest(feed);
  ASSERT_TRUE(ingested.ok()) << ingested.status().ToString();
  ASSERT_TRUE(*ingested);

  // Nothing sealed, nothing finished: the whole answer comes from the
  // overlay + in-flight engine tails, and must already be the offline
  // answer.
  auto got = (*server)->QueryWindow(EverythingBox(), -kAllTime, kAllTime,
                                    /*flat_scan=*/false);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectTimedSegmentsEqual(*got, want, "unsealed window");

  // Per-object and position queries agree with the window answer.
  for (traj::ObjectId id = 0; id < 12; ++id) {
    auto per_object = (*server)->QueryObject(id, -kAllTime, kAllTime);
    ASSERT_TRUE(per_object.ok()) << per_object.status().ToString();
    std::vector<traj::TimedSegment> want_object;
    for (const traj::TimedSegment& s : want) {
      if (s.object_id == id) want_object.push_back(s);
    }
    ExpectTimedSegmentsEqual(*per_object, want_object,
                             "object " + std::to_string(id));
  }
  EXPECT_TRUE((*server)->Stop().ok());
}

TEST(ServerMergeTest, AnswerIsInvariantAcrossSealAndFinish) {
  const std::string dir = ScratchDir("merge_seal");
  const auto feed = MakeFeed(10, 60, 7);
  server::ServerOptions options = BaseOptions(dir + "/store");
  const auto want = OfflineOracle(options.engine, feed);

  auto server = server::TrajectoryServer::Start(options, 0);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  // Two ingest halves with a seal between them: the first half's
  // segments reach the sealed store while the second half is still
  // in-flight, so a query crosses all three layers at once.
  const std::size_t half = feed.size() / 2;
  ASSERT_TRUE((*server)->Ingest({feed.data(), half}).ok());
  auto sealed = (*server)->Seal();
  ASSERT_TRUE(sealed.ok()) << sealed.status().ToString();
  ASSERT_TRUE(
      (*server)->Ingest({feed.data() + half, feed.size() - half}).ok());

  auto mixed = (*server)->QueryWindow(EverythingBox(), -kAllTime, kAllTime,
                                      false);
  ASSERT_TRUE(mixed.ok()) << mixed.status().ToString();
  ExpectTimedSegmentsEqual(*mixed, want, "store+overlay+tail window");

  // Finishing every object moves the tails into the overlay; sealing
  // again moves everything into the store. The answer never changes.
  for (traj::ObjectId id = 0; id < 10; ++id) {
    ASSERT_TRUE((*server)->FinishObject(id).ok());
  }
  ASSERT_TRUE((*server)->Seal().ok());
  auto stored = (*server)->QueryWindow(EverythingBox(), -kAllTime, kAllTime,
                                       false);
  ASSERT_TRUE(stored.ok()) << stored.status().ToString();
  ExpectTimedSegmentsEqual(*stored, want, "all-sealed window");

  // Position queries hit the documented NotFound contract outside the
  // covered interval.
  EXPECT_TRUE((*server)->PositionAt(0, 10.0).ok());
  EXPECT_EQ((*server)->PositionAt(0, 1e17).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ((*server)->PositionAt(9999, 10.0).status().code(),
            StatusCode::kNotFound);
  EXPECT_TRUE((*server)->Stop().ok());
}

TEST(ServerMergeTest, TimeAndSpaceFiltersApplyAcrossAllLayers) {
  const std::string dir = ScratchDir("merge_filter");
  const auto feed = MakeFeed(6, 50, 99);
  server::ServerOptions options = BaseOptions(dir + "/store");
  const auto all = OfflineOracle(options.engine, feed);

  auto server = server::TrajectoryServer::Start(options, 0);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  ASSERT_TRUE((*server)->Ingest({feed.data(), feed.size() / 2}).ok());
  ASSERT_TRUE((*server)->Seal().ok());
  ASSERT_TRUE(
      (*server)
          ->Ingest({feed.data() + feed.size() / 2, feed.size() / 2})
          .ok());

  // A time slice must keep exactly the oracle's overlapping segments.
  const double t_min = 10.0, t_max = 30.0;
  std::vector<traj::TimedSegment> want;
  for (const traj::TimedSegment& s : all) {
    if (s.t_end >= t_min && s.t_start <= t_max) want.push_back(s);
  }
  auto got = (*server)->QueryObject(3, t_min, t_max);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  std::vector<traj::TimedSegment> want_object;
  for (const traj::TimedSegment& s : want) {
    if (s.object_id == 3) want_object.push_back(s);
  }
  ExpectTimedSegmentsEqual(*got, want_object, "time-sliced object");
  EXPECT_TRUE((*server)->Stop().ok());
}

// ---------------------------------------------------------------------------
// Loopback client round trip
// ---------------------------------------------------------------------------

TEST(ServerClientTest, LoopbackRoundTripMatchesInProcessCalls) {
  const std::string dir = ScratchDir("client");
  const auto feed = MakeFeed(8, 40, 3);
  server::ServerOptions options = BaseOptions(dir + "/store");
  auto server = server::TrajectoryServer::Start(options, 0);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  auto client = server::Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(client->Ingest(feed).ok());

  auto via_wire =
      client->QueryWindow(EverythingBox(), -kAllTime, kAllTime);
  ASSERT_TRUE(via_wire.ok()) << via_wire.status().ToString();
  auto direct = (*server)->QueryWindow(EverythingBox(), -kAllTime, kAllTime,
                                       false);
  ASSERT_TRUE(direct.ok());
  ExpectTimedSegmentsEqual(*via_wire, *direct, "wire vs in-process");

  auto pos_wire = client->PositionAt(0, 5.0);
  auto pos_direct = (*server)->PositionAt(0, 5.0);
  ASSERT_TRUE(pos_wire.ok());
  ASSERT_TRUE(pos_direct.ok());
  EXPECT_EQ(pos_wire->x, pos_direct->x);
  EXPECT_EQ(pos_wire->y, pos_direct->y);

  // Errors keep their Status class across the wire (the CLI exit-code
  // contract rides on this).
  EXPECT_EQ(client->PositionAt(0, 1e17).status().code(),
            StatusCode::kNotFound);

  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->ingest_points, feed.size());
  EXPECT_EQ(stats->live_objects, 8u);
  EXPECT_EQ(stats->connections, 1u);

  // Server-side artifacts written through the wire.
  ASSERT_TRUE(client->Checkpoint(dir + "/ckpt.bin").ok());
  ASSERT_TRUE(client->MetricsSnapshot(dir + "/metrics.json").ok());
  EXPECT_TRUE(fs::exists(dir + "/ckpt.bin"));
  EXPECT_TRUE(fs::exists(dir + "/metrics.json"));

  auto sealed = client->Seal();
  ASSERT_TRUE(sealed.ok());
  EXPECT_GT(*sealed, 0u);

  EXPECT_FALSE((*server)->ShutdownRequested());
  ASSERT_TRUE(client->Shutdown().ok());
  EXPECT_TRUE((*server)->ShutdownRequested());
  EXPECT_TRUE((*server)->Stop().ok());

  // The daemon's store reopens offline with everything sealed.
  auto reader = store::StoreReader::Open(dir + "/store");
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
}

TEST(ServerClientTest, ConnectToDeadPortFailsWithIOError) {
  auto client = server::Client::Connect("127.0.0.1", 1);
  EXPECT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kIOError);
}

// ---------------------------------------------------------------------------
// BUSY flow control
// ---------------------------------------------------------------------------

TEST(ServerBackpressureTest, SaturatedRingsReportBusyAndNeverDrop) {
  const std::string dir = ScratchDir("busy");
  server::ServerOptions options = BaseOptions(dir + "/store");
  // Point-to-point segments (every push emits) + a brake in the sink +
  // a tiny ring: the consumer cannot keep up, so admission must trip.
  options.engine.spec.zeta = 1e-9;
  options.engine.num_shards = 1;
  options.engine.num_threads = 1;
  options.engine.ring_capacity = 8;
  options.engine.producer_batch = 1;
  options.busy_fraction = 0.25;
  options.busy_retry_ms = 1;
  options.sink_hook_for_test = [](const traj::TimedSegment&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  };

  auto server = server::TrajectoryServer::Start(options, 0);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  const auto feed = MakeFeed(1, 400, 11);
  std::size_t accepted = 0;
  std::uint64_t rejects = 0;
  for (const traj::ObjectUpdate& u : feed) {
    // Bounded retry loop: BUSY is flow control, not loss — every point
    // must eventually get in, and the loop must terminate (no
    // deadlock: the consumer keeps draining while we sleep).
    for (int attempt = 0;; ++attempt) {
      ASSERT_LT(attempt, 100000) << "BUSY never cleared";
      auto ok = (*server)->Ingest({&u, 1});
      ASSERT_TRUE(ok.ok()) << ok.status().ToString();
      if (*ok) {
        ++accepted;
        break;
      }
      ++rejects;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(accepted, feed.size());
  EXPECT_GT(rejects, 0u) << "admission control never tripped";

  auto stats = (*server)->Stats();
  EXPECT_EQ(stats.ingest_points, feed.size());
  EXPECT_EQ(stats.backpressure_rejects, rejects);

  // Nothing was lost or duplicated: with zeta ~ 0 every consecutive
  // point pair is one segment.
  auto got = (*server)->QueryObject(0, -kAllTime, kAllTime);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), feed.size() - 1);
  EXPECT_TRUE((*server)->Stop().ok());
}

// ---------------------------------------------------------------------------
// Seal fault matrix
// ---------------------------------------------------------------------------

TEST(ServerFaultTest, FailedSealsKeepServingAndLeaveAReopenableStore) {
  const auto feed = MakeFeed(6, 40, 5);
  server::ServerOptions base = BaseOptions("");
  const auto want = OfflineOracle(base.engine, feed);

  // Enumerate the first 12 crash points of the seal path (writer
  // session create/append/flush/rename ops). After every one: queries
  // still answer the oracle bit-exactly from the overlay, Stop()
  // surfaces the error, and the store directory still opens.
  for (std::uint64_t fail_at = 0; fail_at < 12; ++fail_at) {
    SCOPED_TRACE("fail_at_op=" + std::to_string(fail_at));
    const std::string dir =
        ScratchDir("fault_" + std::to_string(fail_at));
    store::FaultInjectingEnv env;
    server::ServerOptions options = BaseOptions(dir + "/store");
    options.env = &env;

    auto server = server::TrajectoryServer::Start(options, 0);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    ASSERT_TRUE((*server)->Ingest(feed).ok());

    env.ArmFault(store::FaultInjectingEnv::FaultKind::kError, fail_at);
    auto sealed = (*server)->Seal();
    env.Disarm();
    if (!env.fault_fired()) {
      // The seal finished in fewer ops; nothing to assert for this k.
      EXPECT_TRUE(sealed.ok());
      EXPECT_TRUE((*server)->Stop().ok());
      continue;
    }
    EXPECT_FALSE(sealed.ok());

    auto got =
        (*server)->QueryWindow(EverythingBox(), -kAllTime, kAllTime, false);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectTimedSegmentsEqual(*got, want,
                             "post-fault query, k=" +
                                 std::to_string(fail_at));

    // A poisoned seal path refuses further seals with the original
    // error instead of risking duplicated segments.
    EXPECT_FALSE((*server)->Seal().ok());

    const Status stopped = (*server)->Stop();
    EXPECT_FALSE(stopped.ok()) << "Stop() swallowed the seal failure";

    auto reader = store::StoreReader::Open(dir + "/store");
    EXPECT_TRUE(reader.ok())
        << "store unreopenable after fault: " << reader.status().ToString();
  }
}

// ---------------------------------------------------------------------------
// Concurrency hammer (the TSan job's main course)
// ---------------------------------------------------------------------------

TEST(ServerHammerTest, ConcurrentIngestAndQueryKeepMonotoneChainedReads) {
  const std::string dir = ScratchDir("hammer");
  server::ServerOptions options = BaseOptions(dir + "/store");
  // zeta ~ 0: every consecutive point pair becomes one segment, so a
  // reader can verify chaining (seg[i].end == seg[i+1].start) exactly.
  options.engine.spec.zeta = 1e-9;
  options.engine.num_threads = 2;
  options.engine.num_shards = 4;
  options.seal_interval_seconds = 0.01;  // background sealer races reads

  auto started = server::TrajectoryServer::Start(options, 0);
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  server::TrajectoryServer& server = **started;

  constexpr std::size_t kWriters = 4;
  constexpr std::size_t kObjectsPerWriter = 8;
  constexpr std::size_t kPointsPerObject = 120;
  std::atomic<bool> failed{false};

  // Writers own disjoint id ranges and publish, per object, how many
  // points have been acked so far (release after a successful Ingest).
  std::vector<std::atomic<std::size_t>> acked(kWriters * kObjectsPerWriter);
  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      datagen::Rng rng(1000 + w);
      std::vector<geo::Vec2> pos(kObjectsPerWriter, {0.0, 0.0});
      for (std::size_t i = 0; i < kPointsPerObject; ++i) {
        for (std::size_t o = 0; o < kObjectsPerWriter; ++o) {
          const traj::ObjectId id = w * kObjectsPerWriter + o;
          pos[o].x += rng.Uniform(-15.0, 15.0);
          pos[o].y += rng.Uniform(-15.0, 15.0);
          const traj::ObjectUpdate u{
              id, {pos[o].x, pos[o].y, static_cast<double>(i)}};
          for (int attempt = 0;; ++attempt) {
            if (attempt >= 100000) {
              failed.store(true);
              return;
            }
            auto ok = server.Ingest({&u, 1});
            if (!ok.ok()) {
              failed.store(true);
              return;
            }
            if (*ok) break;
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          }
          acked[id].store(i + 1, std::memory_order_release);
        }
      }
    });
  }

  // Readers: per-object segment lists must chain point-to-point, never
  // shrink (monotone read-your-writes), and cover at least the points
  // acked before the query was issued.
  std::atomic<bool> stop_readers{false};
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      std::vector<std::size_t> last_seen(kWriters * kObjectsPerWriter, 0);
      datagen::Rng rng(77 + r);
      while (!stop_readers.load(std::memory_order_relaxed)) {
        const traj::ObjectId id =
            rng.NextBelow(kWriters * kObjectsPerWriter);
        const std::size_t floor_points =
            acked[id].load(std::memory_order_acquire);
        auto got = server.QueryObject(id, -kAllTime, kAllTime);
        if (!got.ok()) {
          failed.store(true);
          return;
        }
        // floor_points points acked before the query => at least
        // floor_points - 1 segments visible (read-your-writes).
        if (floor_points > 0 && got->size() + 1 < floor_points) {
          failed.store(true);
          return;
        }
        if (got->size() < last_seen[id]) {  // monotone reads
          failed.store(true);
          return;
        }
        last_seen[id] = got->size();
        for (std::size_t i = 0; i + 1 < got->size(); ++i) {  // no tears
          const auto& a = (*got)[i];
          const auto& b = (*got)[i + 1];
          // Consecutive segments share their boundary point.
          if (a.segment.end.x != b.segment.start.x ||
              a.segment.end.y != b.segment.start.y ||
              a.segment.last_index != b.segment.first_index ||
              a.t_end > b.t_start) {
            failed.store(true);
            return;
          }
        }
      }
    });
  }

  for (std::thread& t : writers) t.join();
  stop_readers.store(true);
  for (std::thread& t : readers) t.join();
  ASSERT_FALSE(failed.load()) << "hammer invariant violated";

  // Quiesced: every object must now show its full chain.
  for (traj::ObjectId id = 0; id < kWriters * kObjectsPerWriter; ++id) {
    auto got = server.QueryObject(id, -kAllTime, kAllTime);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->size(), kPointsPerObject - 1)
        << "object " << id << " lost points";
  }
  const server::StatsBody stats = server.Stats();
  EXPECT_EQ(stats.ingest_points,
            kWriters * kObjectsPerWriter * kPointsPerObject);
  EXPECT_TRUE(server.Stop().ok());

  auto reader = store::StoreReader::Open(dir + "/store");
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
}

// ---------------------------------------------------------------------------
// Options and lifecycle edges
// ---------------------------------------------------------------------------

TEST(ServerOptionsTest, ValidateRejectsBadConfiguration) {
  server::ServerOptions options = BaseOptions("");
  EXPECT_FALSE(options.Validate().ok()) << "empty store_path accepted";
  options.store_path = "/tmp/x";
  EXPECT_TRUE(options.Validate().ok());
  options.busy_fraction = 0.0;
  EXPECT_FALSE(options.Validate().ok());
  options.busy_fraction = 1.5;
  EXPECT_FALSE(options.Validate().ok());
  options.busy_fraction = 0.75;
  options.store_shards = 0;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(ServerLifecycleTest, StopIsIdempotentAndWritesFinalArtifacts) {
  const std::string dir = ScratchDir("lifecycle");
  server::ServerOptions options = BaseOptions(dir + "/store");
  options.final_checkpoint_path = dir + "/final_ckpt.bin";
  options.final_metrics_path = dir + "/final_metrics.json";
  auto server = server::TrajectoryServer::Start(options, 0);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const auto feed = MakeFeed(4, 30, 2);
  ASSERT_TRUE((*server)->Ingest(feed).ok());

  EXPECT_TRUE((*server)->Stop().ok());
  EXPECT_TRUE((*server)->Stop().ok()) << "second Stop() not idempotent";
  EXPECT_TRUE(fs::exists(options.final_checkpoint_path));
  EXPECT_TRUE(fs::exists(options.final_metrics_path));

  // Everything — including the never-finished in-flight tails — was
  // sealed on the way down.
  auto reader = store::StoreReader::Open(dir + "/store");
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  const auto want = OfflineOracle(options.engine, feed);
  auto got = (*reader)->QueryWindow(EverythingBox(), -kAllTime, kAllTime);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectTimedSegmentsEqual(*got, want, "post-stop store contents");
}

}  // namespace
}  // namespace operb
