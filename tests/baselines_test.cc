#include <algorithm>
#include <cmath>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/bqs.h"
#include "baselines/dp.h"
#include "baselines/opw.h"
#include "baselines/simplifier.h"
#include "baselines/streaming.h"
#include "eval/metrics.h"
#include "eval/verifier.h"
#include "geo/distance.h"
#include "test_util.h"

namespace operb::baselines {
namespace {

using testutil::Generated;
using testutil::MakeTrajectory;
using testutil::RandomWalk;
using testutil::StraightLine;
using testutil::ZigZag;

// ---------------------------------------------------------------------------
// Douglas-Peucker.
// ---------------------------------------------------------------------------

TEST(DpTest, StraightLineIsOneSegment) {
  const auto t = StraightLine(200);
  const auto rep = SimplifyDp(t, 1.0);
  ASSERT_EQ(rep.size(), 1u);
  EXPECT_TRUE(rep.ValidateAgainst(t).ok());
}

TEST(DpTest, SplitsAtFarthestPoint) {
  // A triangle wave with a single apex far off the baseline.
  const auto t = MakeTrajectory({{0, 0}, {50, 40}, {100, 0}});
  const auto rep = SimplifyDp(t, 10.0);
  ASSERT_EQ(rep.size(), 2u);
  EXPECT_EQ(rep[0].last_index, 1u);  // split exactly at the apex
}

TEST(DpTest, LargeZetaCollapsesEverything) {
  const auto t = ZigZag(101, 20.0, 30.0);
  const auto rep = SimplifyDp(t, 1000.0);
  ASSERT_EQ(rep.size(), 1u);
}

TEST(DpTest, IterativeMatchesRecursiveReference) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const auto t = RandomWalk(400, seed);
    for (double zeta : {5.0, 20.0, 60.0}) {
      const auto a = SimplifyDp(t, zeta);
      const auto b = SimplifyDpRecursive(t, zeta);
      ASSERT_EQ(a.size(), b.size()) << "seed=" << seed << " zeta=" << zeta;
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].first_index, b[i].first_index);
        EXPECT_EQ(a[i].last_index, b[i].last_index);
      }
    }
  }
}

TEST(DpTest, ErrorNeverExceedsZeta) {
  const auto t = Generated(datagen::DatasetKind::kGeoLife, 3000, 9);
  for (double zeta : {5.0, 40.0}) {
    const auto rep = SimplifyDp(t, zeta);
    const auto err = eval::MeasureError(t, rep);
    EXPECT_LE(err.max, zeta + 1e-9);
    EXPECT_TRUE(rep.ValidateAgainst(t).ok());
  }
}

TEST(DpTest, DeepRecursionSafeOnPathologicalInput) {
  // A convex arc forces DP to peel one point per split — the explicit
  // stack version must not overflow where the recursive one might.
  traj::Trajectory t;
  const std::size_t n = 20000;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = static_cast<double>(i) / n * 1.5;
    t.AppendUnchecked(
        {1e5 * std::sin(a), -1e5 * std::cos(a), static_cast<double>(i)});
  }
  const auto rep = SimplifyDp(t, 0.0001);
  EXPECT_GT(rep.size(), n / 2);
  EXPECT_TRUE(rep.ValidateAgainst(t).ok());
}

// ---------------------------------------------------------------------------
// OPW.
// ---------------------------------------------------------------------------

TEST(OpwTest, WindowExtendsOverStraightRuns) {
  const auto t = StraightLine(300);
  const auto rep = SimplifyOpw(t, 5.0);
  ASSERT_EQ(rep.size(), 1u);
}

TEST(OpwTest, BreaksAtTurns) {
  traj::Trajectory t;
  for (int i = 0; i <= 10; ++i) t.AppendUnchecked({i * 20.0, 0.0, double(i)});
  for (int i = 1; i <= 10; ++i)
    t.AppendUnchecked({200.0, i * 20.0, 10.0 + i});
  const auto rep = SimplifyOpw(t, 10.0);
  EXPECT_EQ(rep.size(), 2u);
  EXPECT_TRUE(rep.ValidateAgainst(t).ok());
}

TEST(OpwTest, EveryEmittedWindowRespectsZeta) {
  const auto t = RandomWalk(500, 5);
  for (double zeta : {8.0, 30.0}) {
    const auto rep = SimplifyOpw(t, zeta);
    EXPECT_TRUE(rep.ValidateAgainst(t).ok());
    // OPW guarantees the bound for the emitted window's own points.
    const auto err = eval::MeasureError(t, rep);
    EXPECT_LE(err.max, zeta + 1e-9);
  }
}

TEST(OpwTest, SedVariantBoundsTimeSynchronizedError) {
  // A point that is spatially on the line but temporally displaced: the
  // Euclidean variant compresses it away, the SED variant does not.
  traj::Trajectory t;
  t.AppendUnchecked({0, 0, 0.0});
  t.AppendUnchecked({10, 0, 1.0});
  t.AppendUnchecked({80, 0, 2.0});  // way ahead of schedule
  t.AppendUnchecked({90, 0, 9.0});
  const auto euclid = SimplifyOpw(t, 5.0, OpwDistance::kEuclidean);
  const auto sed = SimplifyOpw(t, 5.0, OpwDistance::kSynchronous);
  EXPECT_EQ(euclid.size(), 1u);
  EXPECT_GT(sed.size(), 1u);
}

// ---------------------------------------------------------------------------
// BQS / FBQS.
// ---------------------------------------------------------------------------

TEST(BqsWindowTest, UpperBoundDominatesAllSummarizedPoints) {
  datagen::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    BqsWindow window({0.0, 0.0});
    std::vector<geo::Vec2> pts;
    for (int i = 0; i < 40; ++i) {
      const geo::Vec2 p{rng.Uniform(-100, 100), rng.Uniform(-100, 100)};
      pts.push_back(p);
      window.Add(p);
    }
    const geo::Vec2 end{rng.Uniform(-120, 120), rng.Uniform(-120, 120)};
    const auto bounds = window.BoundsForLine(end);
    double actual = 0.0;
    for (const geo::Vec2& p : pts) {
      actual = std::max(actual, geo::PointToLineDistance(p, {0, 0}, end));
    }
    EXPECT_GE(bounds.upper + 1e-6, actual) << "trial " << trial;
    EXPECT_LE(bounds.lower, actual + 1e-6) << "trial " << trial;
  }
}

TEST(BqsWindowTest, SinglePointBoundsAreExact) {
  BqsWindow window({0.0, 0.0});
  window.Add({10.0, 5.0});
  const auto bounds = window.BoundsForLine({20.0, 0.0});
  EXPECT_NEAR(bounds.upper, 5.0, 1e-9);
  EXPECT_NEAR(bounds.lower, 5.0, 1e-9);
}

TEST(BqsTest, MatchesOpwOutputs) {
  // BQS is OPW with a smarter (exact, thanks to the fallback) check, so
  // their outputs must be identical.
  for (std::uint64_t seed : {11ULL, 12ULL}) {
    const auto t = RandomWalk(600, seed);
    for (double zeta : {10.0, 30.0}) {
      const auto bqs = SimplifyBqs(t, zeta);
      const auto opw = SimplifyOpw(t, zeta);
      ASSERT_EQ(bqs.size(), opw.size()) << "seed=" << seed;
      for (std::size_t i = 0; i < bqs.size(); ++i) {
        EXPECT_EQ(bqs[i].first_index, opw[i].first_index);
        EXPECT_EQ(bqs[i].last_index, opw[i].last_index);
      }
    }
  }
}

TEST(FbqsTest, NeverBeatsBqsOnCompression) {
  // FBQS closes windows early on ambiguity, so it can only produce at
  // least as many segments as BQS.
  for (auto kind : {datagen::DatasetKind::kSerCar,
                    datagen::DatasetKind::kGeoLife}) {
    const auto t = Generated(kind, 3000, 23);
    const auto fbqs = SimplifyFbqs(t, 40.0);
    const auto bqs = SimplifyBqs(t, 40.0);
    EXPECT_GE(fbqs.size(), bqs.size());
    EXPECT_TRUE(fbqs.ValidateAgainst(t).ok());
    EXPECT_TRUE(bqs.ValidateAgainst(t).ok());
  }
}

TEST(FbqsTest, ErrorBoundedOnAllProfiles) {
  for (auto kind : datagen::AllDatasetKinds()) {
    const auto t = Generated(kind, 2500, 37);
    for (double zeta : {10.0, 40.0}) {
      const auto rep = SimplifyFbqs(t, zeta);
      const auto err = eval::MeasureError(t, rep);
      EXPECT_LE(err.max, zeta + 1e-6)
          << datagen::DatasetName(kind) << " zeta=" << zeta;
    }
  }
}

TEST(BqsTest, TinyInputs) {
  traj::Trajectory empty;
  EXPECT_TRUE(SimplifyBqs(empty, 10.0).empty());
  const auto two = MakeTrajectory({{0, 0}, {5, 5}});
  EXPECT_EQ(SimplifyBqs(two, 10.0).size(), 1u);
  const auto three = MakeTrajectory({{0, 0}, {5, 50}, {10, 0}});
  const auto rep = SimplifyBqs(three, 10.0);
  EXPECT_TRUE(rep.ValidateAgainst(three).ok());
}

// ---------------------------------------------------------------------------
// Registry / interface.
// ---------------------------------------------------------------------------

TEST(RegistryTest, AllAlgorithmsConstructAndName) {
  for (Algorithm algo : AllAlgorithms()) {
    const auto s = MakeSimplifier(algo, 25.0);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->name(), AlgorithmName(algo));
    EXPECT_FALSE(s->name().empty());
  }
}

TEST(RegistryTest, EveryAlgorithmIsErrorBoundedOnEveryProfile) {
  // The integration property at the heart of the paper: *all* nine
  // algorithms are error bounded by zeta.
  for (auto kind : datagen::AllDatasetKinds()) {
    const auto t = Generated(kind, 2000, 51);
    for (Algorithm algo : AllAlgorithms()) {
      const auto rep = MakeSimplifier(algo, 30.0)->Simplify(t);
      ASSERT_TRUE(rep.ValidateAgainst(t).ok())
          << AlgorithmName(algo) << " on " << datagen::DatasetName(kind);
      const auto verdict = eval::VerifyErrorBound(t, rep, 30.0);
      EXPECT_TRUE(verdict.bounded)
          << AlgorithmName(algo) << " on " << datagen::DatasetName(kind)
          << ": " << verdict.ToString();
    }
  }
}

TEST(RegistryTest, OnePassAlgorithmsAreDeterministic) {
  const auto t = Generated(datagen::DatasetKind::kTruck, 2000, 61);
  for (Algorithm algo : AllAlgorithms()) {
    const auto s = MakeSimplifier(algo, 20.0);
    const auto a = s->Simplify(t);
    const auto b = s->Simplify(t);
    ASSERT_EQ(a.size(), b.size()) << AlgorithmName(algo);
  }
}

// ---------------------------------------------------------------------------
// StreamingSimplifier (the engine's pooled per-object state).
// ---------------------------------------------------------------------------

TEST(StreamingSimplifierTest, MatchesBatchSimplifyForEveryAlgorithm) {
  const auto t = Generated(datagen::DatasetKind::kSerCar, 800, 77);
  const auto t2 = Generated(datagen::DatasetKind::kGeoLife, 500, 78);
  for (Algorithm algo : AllAlgorithms()) {
    SCOPED_TRACE(std::string(AlgorithmName(algo)));
    const auto batch = MakeSimplifier(algo, 25.0);
    const auto stream = MakeStreamingSimplifier(algo, 25.0);
    EXPECT_EQ(stream->name(), batch->name());

    std::vector<traj::RepresentedSegment> out;
    stream->SetSink(
        [&out](const traj::RepresentedSegment& s) { out.push_back(s); });
    for (const geo::Point& p : t) stream->Push(p);
    stream->Finish();
    testutil::ExpectSegmentsEqual(out, batch->Simplify(t).segments(),
                                  "first run");

    // Reset() must make the pooled state as good as new.
    stream->Reset();
    out.clear();
    stream->Push(std::span<const geo::Point>(t2.points()));
    stream->Finish();
    testutil::ExpectSegmentsEqual(out, batch->Simplify(t2).segments(),
                                  "after Reset");
  }
}

TEST(StreamingSimplifierTest, TinyTrajectoriesEmitNothing) {
  for (Algorithm algo : AllAlgorithms()) {
    SCOPED_TRACE(std::string(AlgorithmName(algo)));
    const auto stream = MakeStreamingSimplifier(algo, 25.0);
    std::size_t segments = 0;
    stream->SetSink(
        [&segments](const traj::RepresentedSegment&) { ++segments; });
    stream->Finish();  // zero points
    EXPECT_EQ(segments, 0u);
    stream->Reset();
    stream->Push(geo::Point{1.0, 2.0, 0.0});  // one point
    stream->Finish();
    EXPECT_EQ(segments, 0u);
  }
}

TEST(StreamingSimplifierTest, OnePassFlagMarksTheOperbFamily) {
  EXPECT_TRUE(MakeStreamingSimplifier(Algorithm::kOPERB, 10.0)->one_pass());
  EXPECT_TRUE(MakeStreamingSimplifier(Algorithm::kOPERBA, 10.0)->one_pass());
  EXPECT_FALSE(MakeStreamingSimplifier(Algorithm::kDP, 10.0)->one_pass());
  EXPECT_FALSE(MakeStreamingSimplifier(Algorithm::kFBQS, 10.0)->one_pass());
}

}  // namespace
}  // namespace operb::baselines
