#include <cmath>

#include <gtest/gtest.h>

#include "core/fitting.h"
#include "geo/angle.h"

namespace operb::core {
namespace {

OperbOptions RawOpts(double zeta) { return OperbOptions::Raw(zeta); }

TEST(ZoneIndexTest, MatchesPaperZoneBoundaries) {
  // Zones (Figure 5): Z0 = (-zeta/4, zeta/4], Z1 = (zeta/4, 3zeta/4],
  // Z2 = (3zeta/4, 5zeta/4], Z3 = (5zeta/4, 7zeta/4] for zeta = 4.
  FittingFunction f({0, 0}, RawOpts(4.0));
  EXPECT_EQ(f.ZoneIndex(0.0), 0);
  EXPECT_EQ(f.ZoneIndex(1.0), 0);     // boundary zeta/4 -> Z0
  EXPECT_EQ(f.ZoneIndex(1.0001), 1);  // just above -> Z1
  EXPECT_EQ(f.ZoneIndex(3.0), 1);     // 3*zeta/4 boundary -> Z1
  EXPECT_EQ(f.ZoneIndex(3.0001), 2);
  EXPECT_EQ(f.ZoneIndex(5.0), 2);
  EXPECT_EQ(f.ZoneIndex(7.0), 3);
  EXPECT_EQ(f.ZoneIndex(100.0), 50);
}

TEST(ZoneIndexTest, ZoneRadiusIsWithinQuarterZetaOfIndex) {
  FittingFunction f({0, 0}, RawOpts(10.0));
  for (double r = 0.1; r < 200.0; r += 0.37) {
    const auto j = f.ZoneIndex(r);
    EXPECT_LE(std::fabs(static_cast<double>(j) * 5.0 - r), 2.5 + 1e-9)
        << "r=" << r;
  }
}

TEST(SignFunctionTest, PaperIntervals) {
  const double pi = geo::kPi;
  // f = +1 intervals: (-2pi,-3pi/2], [-pi,-pi/2], [0,pi/2], [pi,3pi/2).
  EXPECT_EQ(FittingFunction::SignFunction(0.0), 1);
  EXPECT_EQ(FittingFunction::SignFunction(0.25 * pi), 1);
  EXPECT_EQ(FittingFunction::SignFunction(0.5 * pi), 1);
  EXPECT_EQ(FittingFunction::SignFunction(1.2 * pi), 1);
  EXPECT_EQ(FittingFunction::SignFunction(-0.75 * pi), 1);
  EXPECT_EQ(FittingFunction::SignFunction(-1.8 * pi), 1);
  // f = -1 elsewhere.
  EXPECT_EQ(FittingFunction::SignFunction(0.75 * pi), -1);
  EXPECT_EQ(FittingFunction::SignFunction(1.8 * pi), -1);
  EXPECT_EQ(FittingFunction::SignFunction(-0.25 * pi), -1);
  EXPECT_EQ(FittingFunction::SignFunction(-1.2 * pi), -1);
}

TEST(SignFunctionTest, RotationMovesLineTowardActivePoint) {
  // Whatever the quadrant of the active point, applying case (3) must not
  // increase its distance to L (the paper: d(P, Li) <= d(P, Li-1)).
  const double zeta = 2.0;
  for (double angle = -3.0; angle < 3.0; angle += 0.17) {
    OperbOptions opts = RawOpts(zeta);
    FittingFunction f({0, 0}, opts);
    // First activation along +x at radius 1 (zone 1).
    f.Activate({1.0, 0.0});
    ASSERT_FALSE(f.IsUndirected());
    // Second point in zone 2 at `angle` but close enough to the line.
    const geo::Vec2 p = geo::Vec2::FromAngle(angle) * 2.0;
    if (!f.IsActive(2.0)) continue;
    const double before = f.DistanceToLine(p);
    if (before > zeta / 2.0) continue;  // would be rejected by OPERB
    f.Activate(p);
    const double after = f.DistanceToLine(p);
    EXPECT_LE(after, before + 1e-9) << "angle=" << angle;
  }
}

TEST(FittingCaseTest, Case1KeepsLine) {
  FittingFunction f({0, 0}, RawOpts(4.0));
  f.Activate({2.0, 0.0});  // zone 1, |L| = 2, theta = 0
  EXPECT_DOUBLE_EQ(f.length(), 2.0);
  EXPECT_DOUBLE_EQ(f.theta(), 0.0);
  // A point whose radius gain is <= zeta/4 is inactive -> caller keeps L.
  EXPECT_FALSE(f.IsActive(2.5));
  EXPECT_TRUE(f.IsActive(3.5));
}

TEST(FittingCaseTest, Case2SetsAngleFromR) {
  FittingFunction f({1.0, 1.0}, RawOpts(4.0));
  EXPECT_TRUE(f.IsUndirected());
  f.Activate({1.0, 3.5});  // radius 2.5 -> zone 1, hmm zone of 2.5 = 1
  EXPECT_FALSE(f.IsUndirected());
  EXPECT_NEAR(f.theta(), geo::kPi / 2.0, 1e-12);
  // |L| = j * zeta/2 with j = ZoneIndex(2.5) = 1 for zeta=4.
  EXPECT_DOUBLE_EQ(f.length(), 2.0);
  EXPECT_EQ(f.last_active_zone(), 1);
}

TEST(FittingCaseTest, Case3RotationFormula) {
  const double zeta = 2.0;
  FittingFunction f({0, 0}, RawOpts(zeta));
  f.Activate({1.0, 0.0});  // zone 1, theta = 0
  // Active point in zone 2 at (2, 0.3): d = 0.3, j = 2.
  const geo::Vec2 p{2.0, 0.3};
  ASSERT_TRUE(f.IsActive(p.Norm()));
  const double d = f.DistanceToLine(p);
  ASSERT_NEAR(d, 0.3, 1e-12);
  f.Activate(p);
  const double expected = std::asin(0.3 / 2.0) / 2.0;  // arcsin(d/(j*z/2))/j
  EXPECT_NEAR(f.theta(), expected, 1e-12);
  EXPECT_DOUBLE_EQ(f.length(), 2.0);
  EXPECT_EQ(f.last_active_zone(), 2);
}

TEST(FittingCaseTest, Case3NegativeSideRotatesClockwise) {
  const double zeta = 2.0;
  FittingFunction f({0, 0}, RawOpts(zeta));
  f.Activate({1.0, 0.0});
  const geo::Vec2 p{2.0, -0.3};
  f.Activate(p);
  const double expected =
      geo::kTwoPi - std::asin(0.3 / 2.0) / 2.0;  // clockwise, wrapped
  EXPECT_NEAR(f.theta(), expected, 1e-12);
}

TEST(FittingCaseTest, LengthNeverDecreases) {
  FittingFunction f({0, 0}, RawOpts(2.0));
  double prev = 0.0;
  for (double r = 0.6; r < 50.0; r += 1.1) {
    if (!f.IsActive(r)) continue;
    f.Activate(geo::Vec2::FromAngle(0.01 * r) * r);
    EXPECT_GE(f.length(), prev);
    prev = f.length();
  }
}

TEST(Lemma3Test, TotalRotationBoundedOnStepwiseTrajectory) {
  // Lemma 3: with d(P_{s+i}, L_{i-1}) <= zeta/2 at every step, the total
  // angle change of L is below 0.8123 rad even for adversarial inputs.
  const double zeta = 2.0;
  FittingFunction f({0, 0}, RawOpts(zeta));
  f.Activate({1.0, 0.0});
  const double theta0 = f.theta();
  double accumulated = 0.0;
  // Always push the worst admissible offset (d = zeta/2) on the same side.
  for (int i = 2; i <= 4000; ++i) {
    const double radius = static_cast<double>(i) * zeta / 2.0;
    // Place the point on the current line at `radius`, displaced by
    // zeta/2 to the left.
    const geo::Vec2 on_line =
        geo::Vec2::FromAngle(f.theta()) * radius;
    const geo::Vec2 normal = geo::Vec2::FromAngle(f.theta() + geo::kPi / 2);
    const geo::Vec2 p = on_line + normal * (zeta / 2.0);
    if (!f.IsActive(p.Norm())) continue;
    ASSERT_LE(f.DistanceToLine(p), zeta / 2.0 + 1e-9);
    f.Activate(p);
  }
  accumulated = std::fabs(geo::NormalizeAnglePi(f.theta() - theta0));
  EXPECT_LT(accumulated, 0.8123);
}

TEST(SideMaximaTest, ObserveOffsetTracksBothSides) {
  FittingFunction f({0, 0}, RawOpts(4.0));
  f.ObserveOffset(0.5);
  f.ObserveOffset(-1.25);
  f.ObserveOffset(0.75);
  f.ObserveOffset(-0.5);
  EXPECT_DOUBLE_EQ(f.d_plus_max(), 0.75);
  EXPECT_DOUBLE_EQ(f.d_minus_max(), 1.25);
  EXPECT_DOUBLE_EQ(f.SideMaxSum(), 2.0);
}

TEST(OptimizationTest, CloserLineRotatesAtLeastAsMuch) {
  // With optimization (3) the line should end up at least as close to the
  // active point as the raw update leaves it.
  const double zeta = 2.0;
  OperbOptions raw = OperbOptions::Raw(zeta);
  OperbOptions opt = raw;
  opt.opt_closer_line = true;

  FittingFunction f_raw({0, 0}, raw);
  FittingFunction f_opt({0, 0}, opt);
  for (FittingFunction* f : {&f_raw, &f_opt}) {
    f->Activate({1.0, 0.0});
    f->ObserveOffset(0.9);  // a large historical offset on the + side
  }
  const geo::Vec2 p{3.0, 0.4};
  f_raw.ObserveOffset(f_raw.SignedOffset(p));
  f_opt.ObserveOffset(f_opt.SignedOffset(p));
  f_raw.Activate(p);
  f_opt.Activate(p);
  EXPECT_LE(f_opt.DistanceToLine(p), f_raw.DistanceToLine(p) + 1e-12);
}

TEST(OptimizationTest, MissingActiveCompensationRotatesFurther) {
  const double zeta = 2.0;
  OperbOptions raw = OperbOptions::Raw(zeta);
  OperbOptions opt = raw;
  opt.opt_missing_active = true;

  FittingFunction f_raw({0, 0}, raw);
  FittingFunction f_opt({0, 0}, opt);
  for (FittingFunction* f : {&f_raw, &f_opt}) f->Activate({1.0, 0.0});
  // Jump from zone 1 to zone 5 (delta_j = 4).
  const geo::Vec2 p{5.0, 0.6};
  f_raw.Activate(p);
  f_opt.Activate(p);
  EXPECT_LT(f_opt.DistanceToLine(p), f_raw.DistanceToLine(p));
}

TEST(OptimizationTest, RotationNeverOvershootsAlignment) {
  // Even with both rotation optimizations the line must not rotate past
  // the direction of the active point.
  const double zeta = 2.0;
  OperbOptions opt = OperbOptions::Optimized(zeta);
  FittingFunction f({0, 0}, opt);
  f.Activate({1.0, 0.0});
  f.ObserveOffset(0.99);  // large + side history
  const geo::Vec2 p{10.0, 0.05};  // nearly on the line, far zone
  const double before_sign = f.SignedOffset(p);
  f.Activate(p);
  const double after_sign = f.SignedOffset(p);
  // If the rotation overshot, the point would flip to the other side by
  // more than it was off before.
  EXPECT_LE(std::fabs(after_sign), std::fabs(before_sign) + 1e-9);
}

}  // namespace
}  // namespace operb::core
