// Public-API suite: SimplifierSpec parsing, AlgorithmRegistry
// resolution, and the Pipeline facade.
//
// The load-bearing half is the registry round-trip: for every registered
// algorithm name, a simplifier constructed from a *spec string* — batch
// and streaming — must reproduce the committed tests/golden/ fixtures
// bit-identically on every synthetic profile. That pins the registry
// path to the legacy enum path (which the equivalence suite pins to the
// pre-optimization implementation), so all three construction surfaces
// emit the same segments.

#include <fstream>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "api/pipeline.h"
#include "api/registry.h"
#include "api/spec.h"
#include "obs/snapshot.h"
#include "store/env.h"
#include "baselines/simplifier.h"
#include "baselines/streaming.h"
#include "datagen/profiles.h"
#include "engine/stream_engine.h"
#include "test_util.h"
#include "traj/io.h"
#include "traj/multi_object.h"
#include "traj/piecewise.h"
#include "traj/trajectory.h"

namespace operb {
namespace {

using testutil::ExpectSegmentsEqual;
using testutil::GoldenTrajectory;
using testutil::kGoldenZeta;
using testutil::LoadGolden;

// ---------------------------------------------------------------------
// SimplifierSpec::Parse — positive and canonicalization cases.
// ---------------------------------------------------------------------

TEST(SimplifierSpecTest, ParsesBareAlgorithmWithDefaults) {
  const Result<api::SimplifierSpec> spec = api::SimplifierSpec::Parse("OPERB");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->algorithm, "OPERB");
  EXPECT_EQ(spec->zeta, 40.0);
  EXPECT_EQ(spec->fidelity, baselines::OperbFidelity::kGuarded);
  EXPECT_TRUE(spec->options.empty());
}

TEST(SimplifierSpecTest, ParsesFullSpec) {
  const Result<api::SimplifierSpec> spec = api::SimplifierSpec::Parse(
      "operb-a:zeta=12.5,fidelity=paper,gamma_m=0.5");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->zeta, 12.5);
  EXPECT_EQ(spec->fidelity, baselines::OperbFidelity::kPaperFaithful);
  EXPECT_TRUE(spec->HasOption("gamma_m"));
  EXPECT_EQ(spec->Option("gamma_m", -1.0), 0.5);
  EXPECT_TRUE(spec->Validate().ok());
}

TEST(SimplifierSpecTest, NameMatchingFoldsCaseAndSeparators) {
  for (const char* name : {"operb-a", "OPERB_A", "Operb-A", "OPERB-A"}) {
    const Result<api::SimplifierSpec> spec = api::SimplifierSpec::Parse(name);
    ASSERT_TRUE(spec.ok());
    EXPECT_TRUE(spec->Validate().ok()) << name;
    // Canonicalization: ToString always uses the registered spelling.
    EXPECT_EQ(spec->ToString(), "OPERB-A:zeta=40") << name;
  }
}

TEST(SimplifierSpecTest, ToStringRoundTripsThroughParse) {
  const Result<api::SimplifierSpec> spec = api::SimplifierSpec::Parse(
      "raw_operb:zeta=7.25,step_length=0.4");
  ASSERT_TRUE(spec.ok());
  const std::string canonical = spec->ToString();
  const Result<api::SimplifierSpec> reparsed =
      api::SimplifierSpec::Parse(canonical);
  ASSERT_TRUE(reparsed.ok()) << canonical;
  EXPECT_EQ(reparsed->ToString(), canonical);
  EXPECT_EQ(reparsed->zeta, spec->zeta);
  EXPECT_EQ(reparsed->options, spec->options);
}

TEST(SimplifierSpecTest, SpecForMatchesEveryEnumValue) {
  for (baselines::Algorithm algo : baselines::AllAlgorithms()) {
    const api::SimplifierSpec spec = api::SpecFor(algo, 17.0);
    EXPECT_TRUE(spec.Validate().ok())
        << std::string(baselines::AlgorithmName(algo));
    EXPECT_EQ(spec.algorithm, std::string(baselines::AlgorithmName(algo)));
  }
}

// ---------------------------------------------------------------------
// SimplifierSpec::Parse / Validate — negative and edge cases.
// ---------------------------------------------------------------------

TEST(SimplifierSpecTest, RejectsMalformedSpecs) {
  const char* malformed[] = {
      "",                      // empty
      "   ",                   // whitespace only
      ":zeta=5",               // missing name
      "OPERB:",                // dangling colon
      "OPERB:zeta",            // no '='
      "OPERB:zeta=",           // empty value
      "OPERB:=5",              // empty key
      "OPERB:zeta=abc",        // non-numeric
      "OPERB:zeta=5,zeta=6",   // duplicate universal key
      "OPERB:a=1,a=2",         // duplicate custom key
  };
  for (const char* text : malformed) {
    EXPECT_FALSE(api::SimplifierSpec::Parse(text).ok())
        << "'" << text << "' should not parse";
  }
}

TEST(SimplifierSpecTest, LocaleStyleCommaDecimalGetsAHint) {
  // "zeta=2,5" splits at the option separator: the stray "5" must fail
  // loudly (with a decimal-separator hint), never truncate to zeta=2.
  const Result<api::SimplifierSpec> spec =
      api::SimplifierSpec::Parse("OPERB:zeta=2,5");
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("decimal separator"),
            std::string::npos)
      << spec.status().ToString();
}

TEST(SimplifierSpecTest, ValidateRejectsSemanticErrors) {
  // Unknown algorithm: parses, fails validation with NotFound.
  Result<api::SimplifierSpec> unknown = api::SimplifierSpec::Parse("NOPE");
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown->Validate().code(), StatusCode::kNotFound);

  // Non-positive / non-finite zeta.
  for (const char* text :
       {"OPERB:zeta=0", "OPERB:zeta=-3", "OPERB:zeta=inf", "OPERB:zeta=nan"}) {
    const Result<api::SimplifierSpec> spec = api::SimplifierSpec::Parse(text);
    if (!spec.ok()) continue;  // "inf"/"nan" may already fail the parse
    EXPECT_FALSE(spec->Validate().ok()) << text;
  }

  // Option key not accepted by the algorithm.
  Result<api::SimplifierSpec> wrong_algo =
      api::SimplifierSpec::Parse("DP:step_length=0.5");
  ASSERT_TRUE(wrong_algo.ok());
  EXPECT_EQ(wrong_algo->Validate().code(), StatusCode::kInvalidArgument);

  // Known key, out-of-range value (core validation).
  Result<api::SimplifierSpec> bad_range =
      api::SimplifierSpec::Parse("OPERB:step_length=2.0");
  ASSERT_TRUE(bad_range.ok());
  EXPECT_FALSE(bad_range->Validate().ok());

  // Bad fidelity value fails at parse time.
  EXPECT_FALSE(api::SimplifierSpec::Parse("OPERB:fidelity=fast").ok());
}

// ---------------------------------------------------------------------
// AlgorithmRegistry.
// ---------------------------------------------------------------------

TEST(AlgorithmRegistryTest, GlobalListsAllTenBuiltinsInPaperOrder) {
  const std::vector<std::string> names =
      api::AlgorithmRegistry::Global().Names();
  std::vector<std::string> want;
  for (baselines::Algorithm algo : baselines::AllAlgorithms()) {
    want.emplace_back(baselines::AlgorithmName(algo));
  }
  EXPECT_EQ(names, want);
}

TEST(AlgorithmRegistryTest, EntriesExposeOnePassAndSummaries) {
  const api::AlgorithmRegistry& registry = api::AlgorithmRegistry::Global();
  EXPECT_TRUE(registry.Find("OPERB")->one_pass);
  EXPECT_TRUE(registry.Find("Raw-OPERB-A")->one_pass);
  EXPECT_FALSE(registry.Find("DP")->one_pass);
  EXPECT_FALSE(registry.Find("FBQS")->one_pass);
  for (const std::string& name : registry.Names()) {
    EXPECT_FALSE(registry.Find(name)->summary.empty()) << name;
  }
  EXPECT_EQ(registry.Find("no-such-algorithm"), nullptr);
}

TEST(AlgorithmRegistryTest, RejectsDuplicateAndIncompleteRegistrations) {
  api::AlgorithmRegistry registry;  // private instance
  api::RegisterBuiltinAlgorithms(registry);

  api::AlgorithmRegistry::Entry dup;
  dup.name = "operb_a";  // folds onto the builtin OPERB-A
  dup.batch = [](const api::SimplifierSpec&) {
    return std::unique_ptr<baselines::Simplifier>();
  };
  dup.streaming = [](const api::SimplifierSpec&) {
    return std::unique_ptr<baselines::StreamingSimplifier>();
  };
  EXPECT_FALSE(registry.Register(std::move(dup)).ok());

  api::AlgorithmRegistry::Entry incomplete;
  incomplete.name = "half-registered";
  incomplete.batch = [](const api::SimplifierSpec&) {
    return std::unique_ptr<baselines::Simplifier>();
  };
  EXPECT_FALSE(registry.Register(std::move(incomplete)).ok());
}

TEST(AlgorithmRegistryTest, MakeFromStringPropagatesParseAndLookupErrors) {
  const api::AlgorithmRegistry& registry = api::AlgorithmRegistry::Global();
  EXPECT_FALSE(registry.MakeBatch("").ok());
  EXPECT_FALSE(registry.MakeBatch("OPERB:zeta=2,5").ok());
  EXPECT_FALSE(registry.MakeStreaming("NOPE:zeta=5").ok());
  EXPECT_FALSE(registry.MakeStreaming("OPERB:zeta=-1").ok());
}

/// The tentpole acceptance check: every registered name, constructed
/// through a spec string, reproduces the golden fixtures on both the
/// batch and the streaming path, for all 4 profiles.
class RegistryGoldenTest
    : public testing::TestWithParam<
          std::tuple<baselines::Algorithm, datagen::DatasetKind>> {};

TEST_P(RegistryGoldenTest, SpecStringConstructionMatchesGolden) {
  const auto [algo, kind] = GetParam();
  const std::string name(baselines::AlgorithmName(algo));
  const traj::Trajectory t = GoldenTrajectory(kind);
  const std::string golden_path =
      std::string(OPERB_GOLDEN_DIR) + "/golden_" + name + "_" +
      std::string(datagen::DatasetName(kind)) + ".csv";
  const std::vector<traj::RepresentedSegment> golden =
      LoadGolden(golden_path);
  if (HasFailure()) return;

  const std::string spec_string = name + ":zeta=40";
  const api::AlgorithmRegistry& registry = api::AlgorithmRegistry::Global();

  auto batch = registry.MakeBatch(spec_string);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ExpectSegmentsEqual((*batch)->Simplify(t).segments(), golden,
                      "registry batch " + spec_string);

  auto streaming = registry.MakeStreaming(spec_string);
  ASSERT_TRUE(streaming.ok()) << streaming.status().ToString();
  std::vector<traj::RepresentedSegment> via_stream;
  (*streaming)->SetSink([&via_stream](const traj::RepresentedSegment& s) {
    via_stream.push_back(s);
  });
  (*streaming)->Push(std::span<const geo::Point>(t.points()));
  (*streaming)->Finish();
  ExpectSegmentsEqual(via_stream, golden, "registry streaming " + spec_string);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAllProfiles, RegistryGoldenTest,
    testing::Combine(testing::ValuesIn(baselines::AllAlgorithms()),
                     testing::ValuesIn(datagen::AllDatasetKinds())),
    [](const testing::TestParamInfo<RegistryGoldenTest::ParamType>& info) {
      std::string name =
          std::string(baselines::AlgorithmName(std::get<0>(info.param))) +
          "_" + std::string(datagen::DatasetName(std::get<1>(info.param)));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------
// Pipeline facade.
// ---------------------------------------------------------------------

TEST(PipelineTest, SinglePathMatchesGoldenAndReportsStages) {
  const traj::Trajectory t = GoldenTrajectory(datagen::DatasetKind::kSerCar);
  const std::vector<traj::RepresentedSegment> golden = LoadGolden(
      std::string(OPERB_GOLDEN_DIR) + "/golden_OPERB_SerCar.csv");

  Result<api::Pipeline> pipeline = api::Pipeline::Builder()
                                       .FromTrajectory(t)
                                       .Simplify("OPERB:zeta=40")
                                       .Verify()
                                       .DeltaEncode()
                                       .Build();
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  Result<api::PipelineReport> run = pipeline->Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const api::PipelineReport& report = *run;

  EXPECT_EQ(report.spec, "OPERB:zeta=40");
  EXPECT_EQ(report.points_in, t.size());
  EXPECT_EQ(report.points_kept, t.size());
  EXPECT_EQ(report.objects, 1u);
  EXPECT_FALSE(report.used_engine);
  EXPECT_TRUE(report.verify_ran);
  EXPECT_TRUE(report.verified);
  EXPECT_GT(report.delta_bytes, 0u);
  EXPECT_GT(report.delta_ratio, 0.0);
  EXPECT_LT(report.delta_ratio, 1.0);

  std::vector<traj::RepresentedSegment> segments;
  for (const traj::TaggedSegment& s : report.segments_out) {
    EXPECT_EQ(s.object_id, 0u);
    segments.push_back(s.segment);
  }
  ExpectSegmentsEqual(segments, golden, "pipeline single path");
  EXPECT_EQ(report.segments, golden.size());
}

TEST(PipelineTest, CsvContentIngestMatchesDirectSimplification) {
  // CSV serialization is %.9g, so the reparsed trajectory — not the
  // original — is the reference the pipeline must match bit-for-bit.
  const traj::Trajectory t = GoldenTrajectory(datagen::DatasetKind::kTaxi);
  const std::string csv = traj::WriteCsvString(t);
  Result<api::Pipeline> pipeline = api::Pipeline::Builder()
                                       .FromCsv(csv)
                                       .Simplify("fbqs:zeta=40")
                                       .Build();
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  Result<api::PipelineReport> run = pipeline->Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  const Result<traj::Trajectory> reparsed = traj::ParseCsv(csv);
  ASSERT_TRUE(reparsed.ok());
  const std::vector<traj::RepresentedSegment> want =
      baselines::MakeSimplifier(baselines::Algorithm::kFBQS, 40.0)
          ->Simplify(*reparsed)
          .segments();
  std::vector<traj::RepresentedSegment> segments;
  for (const traj::TaggedSegment& s : run->segments_out) {
    segments.push_back(s.segment);
  }
  ExpectSegmentsEqual(segments, want, "pipeline csv ingest");
}

TEST(PipelineTest, EnginePathMatchesGoldenPerObject) {
  // Two golden profiles as two interleaved objects through the engine
  // path: per-object output must match the same fixtures the
  // single-stream path is held to.
  const std::vector<traj::ObjectTrajectory> objects = {
      {11, GoldenTrajectory(datagen::DatasetKind::kSerCar)},
      {22, GoldenTrajectory(datagen::DatasetKind::kGeoLife)},
  };
  std::vector<traj::ObjectUpdate> updates = traj::InterleaveRoundRobin(
      std::span<const traj::ObjectTrajectory>(objects));

  engine::StreamEngineOptions eopts;
  eopts.num_shards = 4;
  eopts.num_threads = 2;
  Result<api::Pipeline> pipeline = api::Pipeline::Builder()
                                       .FromUpdates(std::move(updates))
                                       .Simplify("OPERB-A:zeta=40")
                                       .Engine(eopts)
                                       .Verify()
                                       .Build();
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  Result<api::PipelineReport> run = pipeline->Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const api::PipelineReport& report = *run;

  EXPECT_TRUE(report.used_engine);
  EXPECT_EQ(report.objects, 2u);
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.engine_stats.objects_finished, 2u);

  // segments_out is grouped by object id (stable sort): split the runs.
  std::vector<traj::RepresentedSegment> first, second;
  for (const traj::TaggedSegment& s : report.segments_out) {
    (s.object_id == 11 ? first : second).push_back(s.segment);
  }
  ExpectSegmentsEqual(first,
                      LoadGolden(std::string(OPERB_GOLDEN_DIR) +
                                 "/golden_OPERB-A_SerCar.csv"),
                      "engine path object 11");
  ExpectSegmentsEqual(second,
                      LoadGolden(std::string(OPERB_GOLDEN_DIR) +
                                 "/golden_OPERB-A_GeoLife.csv"),
                      "engine path object 22");
}

TEST(PipelineTest, CleanStageRepairsRawStreams) {
  // A raw stream with duplicates and an out-of-order sample: without
  // Clean() the pipeline reports InvalidArgument; with it, the repaired
  // stream simplifies and verifies.
  traj::Trajectory raw;
  raw.AppendUnchecked({0.0, 0.0, 0.0});
  raw.AppendUnchecked({10.0, 0.0, 1.0});
  raw.AppendUnchecked({10.0, 0.0, 1.0});  // duplicate
  raw.AppendUnchecked({5.0, 0.0, 0.5});   // out of order
  raw.AppendUnchecked({20.0, 0.0, 2.0});
  raw.AppendUnchecked({30.0, 0.0, 3.0});

  Result<api::Pipeline> dirty = api::Pipeline::Builder()
                                    .FromTrajectory(raw)
                                    .Simplify("OPERB:zeta=10")
                                    .Build();
  ASSERT_TRUE(dirty.ok());
  const Result<api::PipelineReport> dirty_run = dirty->Run();
  ASSERT_FALSE(dirty_run.ok());
  EXPECT_EQ(dirty_run.status().code(), StatusCode::kInvalidArgument);

  Result<api::Pipeline> cleaned = api::Pipeline::Builder()
                                      .FromTrajectory(raw)
                                      .Clean()
                                      .Simplify("OPERB:zeta=10")
                                      .Verify()
                                      .Build();
  ASSERT_TRUE(cleaned.ok());
  const Result<api::PipelineReport> run = cleaned->Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->points_in, 6u);
  EXPECT_EQ(run->points_kept, 4u);
  EXPECT_EQ(run->cleaner.duplicates_dropped, 1u);
  EXPECT_EQ(run->cleaner.out_of_order_dropped, 1u);
  EXPECT_TRUE(run->verified);
}

TEST(PipelineTest, CleanStageRepairsDirtyCsvContent) {
  // A dirty CSV export (duplicate + out-of-order rows) must be
  // ingestable when — and only when — the Clean stage is on: without it
  // the validating parser reports Corruption at Run().
  const std::string dirty =
      "0,0,0\n10,0,1\n10,0,1\n5,0,0.5\n20,0,2\n30,0,3\n40,0,4\n";

  Result<api::Pipeline> strict = api::Pipeline::Builder()
                                     .FromCsv(dirty)
                                     .Simplify("OPERB:zeta=5")
                                     .Build();
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ(strict->Run().status().code(), StatusCode::kCorruption);

  Result<api::Pipeline> repaired = api::Pipeline::Builder()
                                       .FromCsv(dirty)
                                       .Clean()
                                       .Simplify("OPERB:zeta=5")
                                       .Verify()
                                       .Build();
  ASSERT_TRUE(repaired.ok());
  const Result<api::PipelineReport> run = repaired->Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->points_in, 7u);
  EXPECT_EQ(run->points_kept, 5u);
  EXPECT_EQ(run->cleaner.duplicates_dropped, 1u);
  EXPECT_EQ(run->cleaner.out_of_order_dropped, 1u);
  EXPECT_TRUE(run->verified);
}

TEST(PipelineTest, SinkReceivesSegmentsInsteadOfReport) {
  const traj::Trajectory t = GoldenTrajectory(datagen::DatasetKind::kTruck);
  std::vector<traj::RepresentedSegment> sunk;
  Result<api::Pipeline> pipeline =
      api::Pipeline::Builder()
          .FromTrajectory(t)
          .Simplify("OPERB:zeta=40")
          .Verify()
          .ToSink([&sunk](traj::ObjectId id,
                          const traj::RepresentedSegment& s) {
            EXPECT_EQ(id, 0u);
            sunk.push_back(s);
          })
          .Build();
  ASSERT_TRUE(pipeline.ok());
  Result<api::PipelineReport> run = pipeline->Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->segments_out.empty());
  EXPECT_TRUE(run->verified);  // verification works alongside a sink
  ExpectSegmentsEqual(sunk,
                      LoadGolden(std::string(OPERB_GOLDEN_DIR) +
                                 "/golden_OPERB_Truck.csv"),
                      "pipeline sink");
}

TEST(PipelineTest, BuildRejectsBadConfigurations) {
  // No source.
  EXPECT_FALSE(api::Pipeline::Builder().Simplify("OPERB").Build().ok());
  // No Simplify stage.
  EXPECT_FALSE(api::Pipeline::Builder()
                   .FromTrajectory(testutil::StraightLine(10))
                   .Build()
                   .ok());
  // Two sources.
  EXPECT_FALSE(api::Pipeline::Builder()
                   .FromTrajectory(testutil::StraightLine(10))
                   .FromCsv("0,0,0\n1,1,1\n")
                   .Simplify("OPERB")
                   .Build()
                   .ok());
  // Malformed and unknown specs.
  EXPECT_FALSE(api::Pipeline::Builder()
                   .FromTrajectory(testutil::StraightLine(10))
                   .Simplify("OPERB:zeta=2,5")
                   .Build()
                   .ok());
  // An empty spec string is an error, not a silent fallback to the
  // default — even when a valid spec was set earlier.
  EXPECT_FALSE(api::Pipeline::Builder()
                   .FromTrajectory(testutil::StraightLine(10))
                   .Simplify("")
                   .Build()
                   .ok());
  EXPECT_FALSE(api::Pipeline::Builder()
                   .FromTrajectory(testutil::StraightLine(10))
                   .Simplify(api::SimplifierSpec{})
                   .Simplify("")
                   .Build()
                   .ok());
  EXPECT_FALSE(api::Pipeline::Builder()
                   .FromTrajectory(testutil::StraightLine(10))
                   .Simplify("NOPE")
                   .Build()
                   .ok());
  // Bad engine knobs.
  engine::StreamEngineOptions eopts;
  eopts.num_shards = 0;
  EXPECT_FALSE(api::Pipeline::Builder()
                   .FromTrajectory(testutil::StraightLine(10))
                   .Simplify("OPERB")
                   .Engine(eopts)
                   .Build()
                   .ok());
}

TEST(PipelineTest, RunReportsIoErrorsAndRejectsSecondRun) {
  Result<api::Pipeline> missing = api::Pipeline::Builder()
                                      .FromCsvFile("/nonexistent/input.csv")
                                      .Simplify("OPERB")
                                      .Build();
  ASSERT_TRUE(missing.ok());  // configuration is fine, the file isn't
  EXPECT_FALSE(missing->Run().ok());

  Result<api::Pipeline> pipeline =
      api::Pipeline::Builder()
          .FromTrajectory(testutil::StraightLine(50))
          .Simplify("OPERB")
          .Build();
  ASSERT_TRUE(pipeline.ok());
  EXPECT_TRUE(pipeline->Run().ok());
  EXPECT_FALSE(pipeline->Run().ok());  // input was consumed
}

// ---------------------------------------------------------------------
// MetricsSnapshots stage (DESIGN.md §10).
// ---------------------------------------------------------------------

std::vector<traj::ObjectUpdate> MetricsTestUpdates() {
  const std::vector<traj::ObjectTrajectory> objects = {
      {1, GoldenTrajectory(datagen::DatasetKind::kSerCar)},
      {2, GoldenTrajectory(datagen::DatasetKind::kTaxi)},
  };
  return traj::InterleaveRoundRobin(
      std::span<const traj::ObjectTrajectory>(objects));
}

/// One engine-path run over MetricsTestUpdates with an optional
/// MetricsSnapshots stage.
Result<api::PipelineReport> RunWithMetricsStage(const std::string& path,
                                                std::size_t every,
                                                store::Env* env,
                                                bool metrics_on) {
  engine::StreamEngineOptions eopts;
  eopts.num_shards = 4;
  eopts.num_threads = 1;
  api::Pipeline::Builder builder;
  builder.FromUpdates(MetricsTestUpdates())
      .Simplify("OPERB:zeta=40")
      .Engine(eopts);
  if (metrics_on) builder.MetricsSnapshots(path, every, env);
  OPERB_ASSIGN_OR_RETURN(api::Pipeline pipeline, builder.Build());
  return pipeline.Run();
}

void ExpectSameTaggedSegments(const std::vector<traj::TaggedSegment>& a,
                              const std::vector<traj::TaggedSegment>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].object_id, b[i].object_id) << "segment " << i;
    EXPECT_EQ(a[i].segment.start.x, b[i].segment.start.x) << "segment " << i;
    EXPECT_EQ(a[i].segment.start.y, b[i].segment.start.y) << "segment " << i;
    EXPECT_EQ(a[i].segment.end.x, b[i].segment.end.x) << "segment " << i;
    EXPECT_EQ(a[i].segment.end.y, b[i].segment.end.y) << "segment " << i;
    EXPECT_EQ(a[i].segment.first_index, b[i].segment.first_index)
        << "segment " << i;
    EXPECT_EQ(a[i].segment.last_index, b[i].segment.last_index)
        << "segment " << i;
  }
}

TEST(PipelineTest, MetricsSnapshotsWritePeriodicallyAndParseBack) {
  const std::string path = testing::TempDir() + "/pipeline_metrics.json";
  Result<api::PipelineReport> plain =
      RunWithMetricsStage(path, 0, nullptr, /*metrics_on=*/false);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();

  Result<api::PipelineReport> run =
      RunWithMetricsStage(path, 500, nullptr, /*metrics_on=*/true);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->metrics_ran);
  EXPECT_EQ(run->metrics_path, path);
  // points_in / 500 periodic snapshots plus the final one.
  EXPECT_EQ(run->snapshots_written, run->points_in / 500 + 1);
  EXPECT_EQ(run->snapshot_failures, 0u);
  // Instrumentation must not perturb the output (bit-identical contract).
  ExpectSameTaggedSegments(run->segments_out, plain->segments_out);

  // The exported document parses and carries the pipeline counters.
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto parsed = obs::ParseSnapshotJson(buffer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->schema_version, obs::kSnapshotSchemaVersion);
  // An OPERB_NO_METRICS build still writes (empty) snapshots; the
  // instrument values exist only when recording is compiled in.
  if (obs::kMetricsEnabled) {
    EXPECT_GE(parsed->counters.at("pipeline.points_in"), run->points_in);
    EXPECT_GE(parsed->counters.at("engine.points_routed"), run->points_in);
    EXPECT_GE(parsed->counters.at("pipeline.snapshots_written"), 1u);
  }
}

TEST(PipelineTest, MetricsSnapshotFaultsNeverAbortIngest) {
  // The fault matrix of satellite concern: every snapshot write is 4
  // counted Env operations (create, append, flush, rename). Failing
  // each of the first 8 — covering two full periodic writes at every
  // crash point — must leave the run OK and the output bit-identical;
  // only the failure counters may move.
  const std::string path = testing::TempDir() + "/pipeline_metrics_fault.json";
  Result<api::PipelineReport> plain =
      RunWithMetricsStage(path, 0, nullptr, /*metrics_on=*/false);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();

  for (std::uint64_t k = 0; k < 8; ++k) {
    store::FaultInjectingEnv env;
    env.ArmFault(store::FaultInjectingEnv::FaultKind::kError, k);
    Result<api::PipelineReport> run =
        RunWithMetricsStage(path, 500, &env, /*metrics_on=*/true);
    ASSERT_TRUE(run.ok()) << "k=" << k << ": " << run.status().ToString();
    EXPECT_TRUE(env.fault_fired()) << "k=" << k;
    EXPECT_EQ(run->snapshot_failures, 1u) << "k=" << k;
    EXPECT_EQ(run->snapshots_written, run->points_in / 500) << "k=" << k;
    ExpectSameTaggedSegments(run->segments_out, plain->segments_out);
  }

  // A crash-style fault (every operation fails from op k on) loses
  // every snapshot — and still not the run.
  store::FaultInjectingEnv env;
  env.ArmFault(store::FaultInjectingEnv::FaultKind::kTornWriteCrash, 0);
  Result<api::PipelineReport> run =
      RunWithMetricsStage(path, 500, &env, /*metrics_on=*/true);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->snapshots_written, 0u);
  EXPECT_EQ(run->snapshot_failures, run->points_in / 500 + 1);
  ExpectSameTaggedSegments(run->segments_out, plain->segments_out);
}

}  // namespace
}  // namespace operb
