#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"
#include "eval/metrics.h"
#include "eval/verifier.h"
#include "geo/distance.h"
#include "test_util.h"

namespace operb::eval {
namespace {

using testutil::MakeTrajectory;

traj::RepresentedSegment Seg(geo::Vec2 a, geo::Vec2 b, std::size_t f,
                             std::size_t l) {
  traj::RepresentedSegment s;
  s.start = a;
  s.end = b;
  s.first_index = f;
  s.last_index = l;
  return s;
}

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  const Status s = Status::InvalidArgument("bad zeta");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad zeta");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> ok = 7;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);
  Result<int> bad = Status::NotFound("nope");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::IOError("io");
    return 5;
  };
  auto outer = [&](bool fail) -> Result<int> {
    OPERB_ASSIGN_OR_RETURN(int v, inner(fail));
    return v * 2;
  };
  EXPECT_EQ(*outer(false), 10);
  EXPECT_EQ(outer(true).status().code(), StatusCode::kIOError);
}

TEST(MetricsTest, CompressionRatioDefinition) {
  const auto t = MakeTrajectory(
      {{0, 0}, {10, 0}, {20, 0}, {30, 0}, {40, 0}, {50, 0}, {60, 0},
       {70, 0}, {80, 0}, {90, 0}});
  traj::PiecewiseRepresentation rep;
  rep.Append(Seg({0, 0}, {90, 0}, 0, 9));
  // 2 stored points / 10 original = 20%.
  EXPECT_DOUBLE_EQ(CompressionRatio(t, rep), 0.2);
}

TEST(MetricsTest, AggregateRatioWeighsBySize) {
  const auto t1 = MakeTrajectory({{0, 0}, {1, 0}, {2, 0}, {3, 0}});
  const auto t2 = MakeTrajectory({{0, 0}, {5, 5}});
  traj::PiecewiseRepresentation r1, r2;
  r1.Append(Seg({0, 0}, {3, 0}, 0, 3));
  r2.Append(Seg({0, 0}, {5, 5}, 0, 1));
  const double ratio = AggregateCompressionRatio({t1, t2}, {r1, r2});
  EXPECT_DOUBLE_EQ(ratio, 4.0 / 6.0);
}

TEST(MetricsTest, ErrorAgainstCoveringLine) {
  const auto t =
      MakeTrajectory({{0, 0}, {10, 3}, {20, -3}, {30, 0}});
  traj::PiecewiseRepresentation rep;
  rep.Append(Seg({0, 0}, {30, 0}, 0, 3));
  const auto err = MeasureError(t, rep);
  EXPECT_DOUBLE_EQ(err.max, 3.0);
  // Points counted once each beyond the first shared boundary rule:
  // indices 0..3 -> 4 points.
  EXPECT_EQ(err.points, 4u);
  EXPECT_NEAR(err.average, (0 + 3 + 3 + 0) / 4.0, 1e-12);
}

TEST(MetricsTest, SharedBoundaryCountedOnce) {
  const auto t = MakeTrajectory({{0, 0}, {10, 0}, {20, 0}});
  traj::PiecewiseRepresentation rep;
  rep.Append(Seg({0, 0}, {10, 0}, 0, 1));
  rep.Append(Seg({10, 0}, {20, 0}, 1, 2));
  const auto err = MeasureError(t, rep);
  EXPECT_EQ(err.points, 3u);
}

TEST(MetricsTest, PatchedJunctionGapAttributesBothPoints) {
  const auto t = MakeTrajectory({{0, 0}, {10, 0}, {11, 1}, {11, 10}});
  traj::PiecewiseRepresentation rep;
  auto a = Seg({0, 0}, {11, 0}, 0, 1);
  a.end_is_patch = true;
  auto b = Seg({11, 0}, {11, 10}, 2, 3);
  b.start_is_patch = true;
  rep.Append(a);
  rep.Append(b);
  const auto err = MeasureError(t, rep);
  EXPECT_EQ(err.points, 4u);
  EXPECT_LE(err.max, 1.0 + 1e-12);
}

TEST(MetricsTest, SegmentSizeDistribution) {
  traj::PiecewiseRepresentation r1, r2;
  r1.Append(Seg({0, 0}, {1, 0}, 0, 4));   // 5 points
  r1.Append(Seg({1, 0}, {2, 0}, 4, 5));   // 2 points (anomalous)
  r2.Append(Seg({0, 0}, {1, 0}, 0, 1));   // 2 points
  const auto z = SegmentSizeDistribution({r1, r2});
  EXPECT_EQ(z.at(5), 1u);
  EXPECT_EQ(z.at(2), 2u);
  EXPECT_EQ(z.size(), 2u);
}

TEST(MetricsTest, CountAnomalous) {
  traj::PiecewiseRepresentation rep;
  rep.Append(Seg({0, 0}, {1, 0}, 0, 1));
  rep.Append(Seg({1, 0}, {2, 0}, 1, 5));
  rep.Append(Seg({2, 0}, {3, 0}, 5, 6));
  EXPECT_EQ(CountAnomalousSegments(rep), 2u);
}

TEST(VerifierTest, AcceptsBoundedRepresentation) {
  const auto t = MakeTrajectory({{0, 0}, {10, 2}, {20, 0}});
  traj::PiecewiseRepresentation rep;
  rep.Append(Seg({0, 0}, {20, 0}, 0, 2));
  const auto v = VerifyErrorBound(t, rep, 2.5);
  EXPECT_TRUE(v.bounded);
  EXPECT_NEAR(v.worst_distance, 2.0, 1e-12);
}

TEST(VerifierTest, FlagsViolations) {
  const auto t = MakeTrajectory({{0, 0}, {10, 5}, {20, 0}});
  traj::PiecewiseRepresentation rep;
  rep.Append(Seg({0, 0}, {20, 0}, 0, 2));
  const auto v = VerifyErrorBound(t, rep, 2.0);
  EXPECT_FALSE(v.bounded);
  EXPECT_EQ(v.violations, 1u);
  EXPECT_EQ(v.worst_index, 1u);
}

TEST(VerifierTest, AdjacentSegmentLineSatisfiesExistentialDefinition) {
  // Point 2 is far from its covering segment's line but on the previous
  // segment's line: the paper's error definition is existential, so this
  // representation is bounded.
  const auto t = MakeTrajectory({{0, 0}, {10, 0}, {20, 0}, {20, 10}});
  traj::PiecewiseRepresentation rep;
  auto a = Seg({0, 0}, {10, 0}, 0, 1);
  auto b = Seg({10, 0}, {20, 10}, 1, 3);  // covers (20,0) badly
  rep.Append(a);
  rep.Append(b);
  const auto strict_cover_distance =
      geo::PointToLineDistance({20, 0}, {10, 0}, {20, 10});
  ASSERT_GT(strict_cover_distance, 5.0);
  const auto v = VerifyErrorBound(t, rep, 5.0);
  EXPECT_TRUE(v.bounded);
}

TEST(VerifierTest, SlackForgivesFloatNoise) {
  const auto t = MakeTrajectory({{0, 0}, {10, 2.0000001}, {20, 0}});
  traj::PiecewiseRepresentation rep;
  rep.Append(Seg({0, 0}, {20, 0}, 0, 2));
  EXPECT_TRUE(VerifyErrorBound(t, rep, 2.0, 1e-6).bounded);
}

}  // namespace
}  // namespace operb::eval
