// Differential tests for the geo::simd batch kernels: every dispatch
// target the host can run (sse2 / avx2 / neon) is compared against the
// scalar oracle table bit-for-bit, across a seeded fuzz sweep of batch
// lengths 0 .. 4*lane_width+3 (every vector-body/tail split shape) and an
// adversarial-geometry corpus (collinear runs, duplicate points,
// near-zero anchor directions, denormals, +-huge coordinates, NaN/Inf).
//
// "Bit-for-bit" is literal: outputs are compared as the raw 64-bit
// payloads, so +0.0 vs -0.0 and differing NaN bit patterns fail. On
// failure the assertion message is a self-contained repro: the seed, the
// batch length, and every input as a hex double (%a plus raw bits).

#include <array>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "geo/simd.h"

namespace operb::geo::simd {
namespace {

// Largest lane width across targets is 4 (avx2), so n in [0, 19] covers
// every full-vector count and every tail length for every target.
constexpr std::size_t kMaxBatch = 4 * 4 + 3;

std::uint64_t Bits(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof u);
  return u;
}

double FromBits(std::uint64_t u) {
  double d;
  std::memcpy(&d, &u, sizeof d);
  return d;
}

std::string Hex(double d) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a (0x%016llx)", d,
                static_cast<unsigned long long>(Bits(d)));
  return buf;
}

// Deterministic fuzz source; fully specified, unlike the standard
// library's distributions, so a printed seed reproduces exactly.
struct SplitMix64 {
  std::uint64_t state;

  std::uint64_t Next() {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  double Uniform(double lo, double hi) {
    const double u = static_cast<double>(Next() >> 11) * 0x1.0p-53;
    return lo + (hi - lo) * u;
  }

  bool Chance(double p) { return Uniform(0.0, 1.0) < p; }
};

/// One kernel input batch plus the line parameters every kernel shares.
struct Batch {
  std::size_t n = 0;
  std::array<double, kMaxBatch> xs{};
  std::array<double, kMaxBatch> ys{};
  Vec2 anchor{0.0, 0.0};
  Vec2 unit_dir{1.0, 0.0};
  Vec2 ra_unit{0.0, 1.0};
  double bound = 20.0;
};

std::string Describe(const Batch& b, std::uint64_t seed) {
  std::ostringstream os;
  os << "seed=" << seed << " n=" << b.n << "\n";
  os << "  anchor=(" << Hex(b.anchor.x) << ", " << Hex(b.anchor.y) << ")\n";
  os << "  unit_dir=(" << Hex(b.unit_dir.x) << ", " << Hex(b.unit_dir.y)
     << ")\n";
  os << "  ra_unit=(" << Hex(b.ra_unit.x) << ", " << Hex(b.ra_unit.y)
     << ")\n";
  os << "  bound=" << Hex(b.bound) << "\n";
  for (std::size_t i = 0; i < b.n; ++i) {
    os << "  p[" << i << "]=(" << Hex(b.xs[i]) << ", " << Hex(b.ys[i])
       << ")\n";
  }
  return os.str();
}

std::vector<Level> NonScalarTargets() {
  std::vector<Level> out;
  for (Level level : {Level::kSse2, Level::kAvx2, Level::kNeon}) {
    if (Supported(level)) out.push_back(level);
  }
  return out;
}

/// Scoped ForceLevel so a failing ASSERT cannot leak a pinned level into
/// another test sharing the process.
struct ScopedLevel {
  explicit ScopedLevel(Level level) { ForceLevel(level); }
  ~ScopedLevel() { ClearForcedLevel(); }
};

constexpr std::uint64_t kPoison = 0x7ff8dead7ff8deadull;  // a quiet NaN

void FillPoison(double* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) p[i] = FromBits(kPoison);
}

/// Runs all four value/count point kernels at `level` and compares each
/// output element (and each count) bitwise against the scalar oracle.
void ExpectPointKernelsMatch(const Batch& b, std::uint64_t seed) {
  std::array<double, kMaxBatch> ref_off, ref_r, ref_dot;
  std::array<double, kMaxBatch> ref_sr, ref_soff, ref_sra, ref_sdot;
  std::size_t ref_within;
  {
    ScopedLevel pin(Level::kScalar);
    SignedOffsets(b.xs.data(), b.ys.data(), b.n, b.anchor, b.unit_dir,
                  ref_off.data());
    Radii(b.xs.data(), b.ys.data(), b.n, b.anchor, ref_r.data());
    Dots(b.xs.data(), b.ys.data(), b.n, b.anchor, b.unit_dir,
         ref_dot.data());
    StageExtend(b.xs.data(), b.ys.data(), b.n, b.anchor, b.unit_dir,
                b.ra_unit, /*want_dot=*/true, ref_sr.data(),
                ref_soff.data(), ref_sra.data(), ref_sdot.data());
    ref_within = CountWithin(b.xs.data(), b.ys.data(), b.n, b.anchor,
                             b.unit_dir, b.bound);
  }

  for (Level level : NonScalarTargets()) {
    SCOPED_TRACE(std::string("level=") + std::string(LevelName(level)) +
                 "\n" + Describe(b, seed));
    ScopedLevel pin(level);

    std::array<double, kMaxBatch> out;
    FillPoison(out.data(), b.n);
    SignedOffsets(b.xs.data(), b.ys.data(), b.n, b.anchor, b.unit_dir,
                  out.data());
    for (std::size_t i = 0; i < b.n; ++i) {
      ASSERT_EQ(Bits(ref_off[i]), Bits(out[i]))
          << "SignedOffsets[" << i << "]: scalar=" << Hex(ref_off[i])
          << " vector=" << Hex(out[i]);
    }

    FillPoison(out.data(), b.n);
    Radii(b.xs.data(), b.ys.data(), b.n, b.anchor, out.data());
    for (std::size_t i = 0; i < b.n; ++i) {
      ASSERT_EQ(Bits(ref_r[i]), Bits(out[i]))
          << "Radii[" << i << "]: scalar=" << Hex(ref_r[i])
          << " vector=" << Hex(out[i]);
    }

    FillPoison(out.data(), b.n);
    Dots(b.xs.data(), b.ys.data(), b.n, b.anchor, b.unit_dir, out.data());
    for (std::size_t i = 0; i < b.n; ++i) {
      ASSERT_EQ(Bits(ref_dot[i]), Bits(out[i]))
          << "Dots[" << i << "]: scalar=" << Hex(ref_dot[i])
          << " vector=" << Hex(out[i]);
    }

    for (bool want_dot : {false, true}) {
      std::array<double, kMaxBatch> sr, soff, sra, sdot;
      FillPoison(sr.data(), b.n);
      FillPoison(soff.data(), b.n);
      FillPoison(sra.data(), b.n);
      FillPoison(sdot.data(), b.n);
      StageExtend(b.xs.data(), b.ys.data(), b.n, b.anchor, b.unit_dir,
                  b.ra_unit, want_dot, sr.data(), soff.data(), sra.data(),
                  sdot.data());
      for (std::size_t i = 0; i < b.n; ++i) {
        ASSERT_EQ(Bits(ref_sr[i]), Bits(sr[i]))
            << "StageExtend r[" << i << "] want_dot=" << want_dot
            << ": scalar=" << Hex(ref_sr[i]) << " vector=" << Hex(sr[i]);
        ASSERT_EQ(Bits(ref_soff[i]), Bits(soff[i]))
            << "StageExtend off[" << i << "] want_dot=" << want_dot
            << ": scalar=" << Hex(ref_soff[i])
            << " vector=" << Hex(soff[i]);
        ASSERT_EQ(Bits(ref_sra[i]), Bits(sra[i]))
            << "StageExtend ra[" << i << "] want_dot=" << want_dot
            << ": scalar=" << Hex(ref_sra[i]) << " vector=" << Hex(sra[i]);
        if (want_dot) {
          ASSERT_EQ(Bits(ref_sdot[i]), Bits(sdot[i]))
              << "StageExtend dot[" << i << "]: scalar=" << Hex(ref_sdot[i])
              << " vector=" << Hex(sdot[i]);
        } else {
          ASSERT_EQ(kPoison, Bits(sdot[i]))
              << "StageExtend wrote dot[" << i << "] with want_dot=false";
        }
      }
    }

    const std::size_t within = CountWithin(b.xs.data(), b.ys.data(), b.n,
                                           b.anchor, b.unit_dir, b.bound);
    ASSERT_EQ(ref_within, within) << "CountWithin: scalar=" << ref_within
                                  << " vector=" << within;
  }
}

std::string Describe(const ExtendAcceptParams& p) {
  std::ostringstream os;
  os << "  params: length=" << Hex(p.length) << " slack=" << Hex(p.slack)
     << "\n    d_plus_max=" << Hex(p.d_plus_max)
     << " d_minus_max=" << Hex(p.d_minus_max) << " zeta=" << Hex(p.zeta)
     << "\n    drift_plus=" << Hex(p.drift_plus)
     << " drift_minus=" << Hex(p.drift_minus)
     << " drift_back=" << Hex(p.drift_back) << "\n    guard=" << p.guard
     << " sum_ok=" << p.sum_ok << "\n";
  return os.str();
}

/// Compares CountExtendAccept at every target against the scalar oracle
/// for one precomputed (r, off, ra, dot) batch.
void ExpectExtendAcceptMatches(const double* r, const double* off,
                               const double* ra, const double* dot,
                               std::size_t n, const ExtendAcceptParams& p,
                               std::uint64_t seed) {
  std::size_t ref;
  {
    ScopedLevel pin(Level::kScalar);
    ref = CountExtendAccept(r, off, ra, dot, n, p);
  }
  for (Level level : NonScalarTargets()) {
    ScopedLevel pin(level);
    const std::size_t got = CountExtendAccept(r, off, ra, dot, n, p);
    if (got == ref) continue;
    std::ostringstream os;
    os << "CountExtendAccept mismatch at level=" << LevelName(level)
       << ": scalar=" << ref << " vector=" << got << " seed=" << seed
       << " n=" << n << "\n" << Describe(p);
    for (std::size_t i = 0; i < n; ++i) {
      os << "  [" << i << "] r=" << Hex(r[i]) << " off=" << Hex(off[i])
         << " ra=" << Hex(ra[i]) << " dot=" << Hex(dot[i]) << "\n";
    }
    FAIL() << os.str();
  }
}

Batch RandomBatch(SplitMix64* rng, std::size_t n) {
  Batch b;
  b.n = n;
  const double theta = rng->Uniform(0.0, 6.283185307179586);
  b.unit_dir = {std::cos(theta), std::sin(theta)};
  const double phi = rng->Uniform(0.0, 6.283185307179586);
  b.ra_unit = {std::cos(phi), std::sin(phi)};
  b.anchor = {rng->Uniform(-1e5, 1e5), rng->Uniform(-1e5, 1e5)};
  b.bound = rng->Uniform(0.0, 100.0);
  for (std::size_t i = 0; i < n; ++i) {
    // Mostly near the line (so count kernels see long accept prefixes),
    // with occasional far outliers and exact-anchor duplicates.
    if (rng->Chance(0.05)) {
      b.xs[i] = b.anchor.x;
      b.ys[i] = b.anchor.y;
    } else {
      const double along = rng->Uniform(-1e3, 1e3);
      const double across = rng->Chance(0.15)
                                ? rng->Uniform(-1e4, 1e4)
                                : rng->Uniform(-b.bound, b.bound);
      b.xs[i] = b.anchor.x + along * b.unit_dir.x - across * b.unit_dir.y;
      b.ys[i] = b.anchor.y + along * b.unit_dir.y + across * b.unit_dir.x;
    }
  }
  return b;
}

TEST(SimdKernelDifferentialTest, FuzzSweepAllBatchLengthsAllTargets) {
  if (NonScalarTargets().empty()) {
    GTEST_SKIP() << "host supports only the scalar target";
  }
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    SplitMix64 rng{seed * 0x9e3779b97f4a7c15ull};
    for (std::size_t n = 0; n <= kMaxBatch; ++n) {
      ExpectPointKernelsMatch(RandomBatch(&rng, n), seed);
      if (HasFatalFailure()) return;
    }
  }
}

TEST(SimdKernelDifferentialTest, FuzzExtendAcceptAllBatchLengths) {
  if (NonScalarTargets().empty()) {
    GTEST_SKIP() << "host supports only the scalar target";
  }
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    SplitMix64 rng{seed * 0xbf58476d1ce4e5b9ull};
    for (std::size_t n = 0; n <= kMaxBatch; ++n) {
      ExtendAcceptParams p;
      p.length = rng.Uniform(0.0, 500.0);
      p.slack = rng.Uniform(0.0, 50.0);
      p.d_plus_max = rng.Uniform(0.0, 20.0);
      p.d_minus_max = rng.Uniform(0.0, 20.0);
      p.zeta = rng.Uniform(1.0, 40.0);
      p.drift_plus = rng.Uniform(0.0, 30.0);
      p.drift_minus = rng.Uniform(0.0, 30.0);
      p.drift_back = rng.Uniform(0.0, 500.0);
      p.guard = rng.Chance(0.5);
      p.sum_ok = !rng.Chance(0.1);
      std::array<double, kMaxBatch> r, off, ra, dot;
      for (std::size_t i = 0; i < n; ++i) {
        r[i] = p.length + rng.Uniform(-10.0, p.slack * 1.5);
        // Exact-threshold values with some probability: <= boundaries
        // are where a lane-predicate bug would hide.
        off[i] = rng.Chance(0.1)
                     ? (rng.Chance(0.5) ? p.d_plus_max : -p.d_minus_max)
                     : rng.Uniform(-1.5 * p.d_minus_max,
                                    1.5 * p.d_plus_max);
        ra[i] = rng.Chance(0.1) ? -p.zeta
                                 : rng.Uniform(-1.2 * p.zeta,
                                                1.2 * p.zeta);
        dot[i] = rng.Uniform(-100.0, 1000.0);
      }
      ExpectExtendAcceptMatches(r.data(), off.data(), ra.data(),
                                dot.data(), n, p, seed);
      if (HasFatalFailure() || HasFailure()) return;
    }
  }
}

// ---------------------------------------------------------------------
// Adversarial geometry corpus. Each case runs through every kernel at
// every target; several also pin down exact expected behavior (signed
// zeros, NaN rejection index parity).

TEST(SimdKernelAdversarialTest, CollinearRunProducesIdenticalSignedZeros) {
  Batch b;
  b.n = kMaxBatch;
  b.anchor = {0.0, 0.0};
  b.unit_dir = {1.0, 0.0};
  b.ra_unit = {0.0, 1.0};
  b.bound = 1.0;
  for (std::size_t i = 0; i < b.n; ++i) {
    b.xs[i] = static_cast<double>(i) * 7.5;
    b.ys[i] = 0.0;
  }
  ExpectPointKernelsMatch(b, /*seed=*/0);
}

TEST(SimdKernelAdversarialTest, DuplicatePointsAtTheAnchor) {
  Batch b;
  b.n = kMaxBatch;
  b.anchor = {123.456, -789.012};
  b.unit_dir = {0.6, 0.8};
  b.ra_unit = {-0.8, 0.6};
  b.bound = 0.0;  // exact-zero distances must still pass <= 0
  for (std::size_t i = 0; i < b.n; ++i) {
    b.xs[i] = b.anchor.x;
    b.ys[i] = b.anchor.y;
  }
  ExpectPointKernelsMatch(b, /*seed=*/0);
}

TEST(SimdKernelAdversarialTest, NegativeZeroCoordinates) {
  Batch b;
  b.n = 8;
  b.anchor = {0.0, -0.0};
  b.unit_dir = {-0.0, 1.0};
  b.ra_unit = {1.0, -0.0};
  b.bound = 10.0;
  for (std::size_t i = 0; i < b.n; ++i) {
    b.xs[i] = (i % 2 == 0) ? -0.0 : 0.0;
    b.ys[i] = (i % 3 == 0) ? -0.0 : 0.0;
  }
  ExpectPointKernelsMatch(b, /*seed=*/0);
}

TEST(SimdKernelAdversarialTest, NearZeroAnchorDirection) {
  Batch b;
  b.n = kMaxBatch;
  b.anchor = {1.0, 1.0};
  // A degenerate "unit" direction, as produced by an almost-zero-length
  // chord before normalization guards kick in.
  b.unit_dir = {1e-308, -1e-308};
  b.ra_unit = {-1e-308, 1e-308};
  b.bound = 1e-300;
  SplitMix64 rng{42};
  for (std::size_t i = 0; i < b.n; ++i) {
    b.xs[i] = rng.Uniform(-10.0, 10.0);
    b.ys[i] = rng.Uniform(-10.0, 10.0);
  }
  ExpectPointKernelsMatch(b, /*seed=*/42);
}

TEST(SimdKernelAdversarialTest, DenormalCoordinates) {
  constexpr double kMinDenorm = 4.9406564584124654e-324;
  constexpr double kMaxDenorm = 2.2250738585072009e-308;
  Batch b;
  b.n = 12;
  b.anchor = {kMinDenorm, -kMinDenorm};
  b.unit_dir = {0.8, -0.6};
  b.ra_unit = {0.6, 0.8};
  b.bound = kMaxDenorm;
  const double vals[] = {kMinDenorm,      -kMinDenorm, kMaxDenorm,
                         -kMaxDenorm,     1e-310,      -1e-315,
                         0.0,             -0.0,        1e-320,
                         -1e-320,         2e-308,      -2e-308};
  for (std::size_t i = 0; i < b.n; ++i) {
    b.xs[i] = vals[i];
    b.ys[i] = vals[(i + 5) % b.n];
  }
  ExpectPointKernelsMatch(b, /*seed=*/0);
}

TEST(SimdKernelAdversarialTest, HugeCoordinatesOverflowingToInf) {
  constexpr double kMax = std::numeric_limits<double>::max();
  Batch b;
  b.n = 10;
  b.anchor = {-1e300, 1e300};
  b.unit_dir = {0.6, 0.8};
  b.ra_unit = {-0.8, 0.6};
  b.bound = 1e305;
  const double vals[] = {1e300, -1e300, kMax, -kMax, 1e308,
                         -1e308, 5e307, -5e307, 1e150, -1e150};
  for (std::size_t i = 0; i < b.n; ++i) {
    b.xs[i] = vals[i];
    b.ys[i] = vals[(i + 3) % b.n];
  }
  ExpectPointKernelsMatch(b, /*seed=*/0);
}

TEST(SimdKernelAdversarialTest, NanAndInfRejectionParity) {
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // A NaN planted at every position: the count kernels must stop at the
  // same index at every level (NaN fails every ordered compare), and the
  // value kernels must produce bitwise-identical NaN payloads.
  for (std::size_t bad = 0; bad < 8; ++bad) {
    for (double poison : {kNan, kInf, -kInf}) {
      Batch b;
      b.n = 8;
      b.anchor = {10.0, 20.0};
      b.unit_dir = {1.0, 0.0};
      b.ra_unit = {0.0, 1.0};
      b.bound = 5.0;
      for (std::size_t i = 0; i < b.n; ++i) {
        b.xs[i] = b.anchor.x + static_cast<double>(i);
        b.ys[i] = b.anchor.y + 1.0;
      }
      b.ys[bad] = poison;
      SCOPED_TRACE("bad index " + std::to_string(bad) + " poison " +
                   Hex(poison));
      ExpectPointKernelsMatch(b, /*seed=*/0);

      // Count parity, pinned: a non-finite offset must reject at `bad`
      // (infinite offsets exceed any bound; NaN fails the compare).
      std::size_t counts[2];
      int k = 0;
      for (Level level : {Level::kScalar, Detect()}) {
        ScopedLevel pin(level);
        counts[k++] = CountWithin(b.xs.data(), b.ys.data(), b.n, b.anchor,
                                  b.unit_dir, b.bound);
      }
      EXPECT_EQ(counts[0], counts[1]);
      EXPECT_LE(counts[0], bad);
    }
  }
}

TEST(SimdKernelAdversarialTest, ExtendAcceptNanLanesAndSignedZeroOffsets) {
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  ExtendAcceptParams p;
  p.length = 100.0;
  p.slack = 5.0;
  p.d_plus_max = 3.0;
  p.d_minus_max = 2.0;
  p.zeta = 40.0;
  p.drift_plus = 10.0;
  p.drift_minus = 10.0;
  p.drift_back = 120.0;
  p.sum_ok = true;
  for (bool guard : {false, true}) {
    p.guard = guard;
    for (std::size_t bad = 0; bad < 6; ++bad) {
      double r[6], off[6], ra[6], dot[6];
      for (std::size_t i = 0; i < 6; ++i) {
        r[i] = 101.0;
        // Signed zeros exercise the o >= 0.0 branch split exactly.
        off[i] = (i % 2 == 0) ? 0.0 : -0.0;
        ra[i] = (i % 2 == 0) ? -0.0 : 0.0;
        dot[i] = (i % 3 == 0) ? 0.0 : -0.0;
      }
      r[bad] = kNan;  // NaN radius: `r - length <= slack` is false
      ExpectExtendAcceptMatches(r, off, ra, dot, 6, p, /*seed=*/bad);
      {
        ScopedLevel pin(Level::kScalar);
        EXPECT_EQ(bad, CountExtendAccept(r, off, ra, dot, 6, p));
      }
    }
  }
}

TEST(SimdKernelAdversarialTest, ExtendAcceptSumNotOkShortCircuits) {
  ExtendAcceptParams p;
  p.length = 0.0;
  p.slack = 1e9;
  p.d_plus_max = 1e9;
  p.d_minus_max = 1e9;
  p.zeta = 1e9;
  p.guard = false;
  p.sum_ok = false;  // adjusted-distance sum already over budget
  double r[4] = {1.0, 1.0, 1.0, 1.0};
  double zero[4] = {0.0, 0.0, 0.0, 0.0};
  for (Level level : NonScalarTargets()) {
    ScopedLevel pin(level);
    EXPECT_EQ(0u, CountExtendAccept(r, zero, zero, zero, 4, p))
        << LevelName(level);
  }
  ScopedLevel pin(Level::kScalar);
  EXPECT_EQ(0u, CountExtendAccept(r, zero, zero, zero, 4, p));
}

// The dispatch plumbing itself: every supported level reports a sane
// lane width and ParseLevel round-trips through LevelName.
TEST(SimdDispatchTest, LevelNamesRoundTripAndLaneWidthsAreSane) {
  for (Level level :
       {Level::kScalar, Level::kSse2, Level::kAvx2, Level::kNeon}) {
    Level parsed;
    ASSERT_TRUE(ParseLevel(LevelName(level), &parsed));
    EXPECT_EQ(level, parsed);
    EXPECT_GE(LaneWidth(level), 1u);
    EXPECT_LE(LaneWidth(level), 4u);
  }
  Level native;
  ASSERT_TRUE(ParseLevel("native", &native));
  EXPECT_EQ(Detect(), native);
  EXPECT_FALSE(ParseLevel("avx512", &native));
  EXPECT_TRUE(Supported(Level::kScalar));
}

}  // namespace
}  // namespace operb::geo::simd
