// Proves the sink path's zero-allocation claim: with a sink installed,
// steady-state Push performs no heap allocation per point, for OPERB and
// OPERB-A alike. The whole binary's global operator new/delete are
// replaced by counting forwarders; counting is switched on only around
// the measured Push loop, so test-framework allocations don't pollute the
// numbers.

#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/streaming.h"
#include "core/operb.h"
#include "core/operb_a.h"
#include "datagen/profiles.h"
#include "datagen/rng.h"
#include "geo/simd.h"
#include "obs/metrics.h"
#include "traj/trajectory.h"

namespace {

// Single-threaded test binary; plain counters are sufficient.
bool g_counting = false;
std::size_t g_allocations = 0;

struct CountingScope {
  CountingScope() {
    g_allocations = 0;
    g_counting = true;
  }
  ~CountingScope() { g_counting = false; }
  std::size_t count() const { return g_allocations; }
};

}  // namespace

void* operator new(std::size_t size) {
  if (g_counting) ++g_allocations;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace operb {
namespace {

traj::Trajectory TestTrajectory(std::size_t n) {
  datagen::Rng rng(20170401);
  return datagen::GenerateTrajectory(
      datagen::DatasetProfile::For(datagen::DatasetKind::kSerCar), n, &rng);
}

TEST(AllocationTest, OperbSinkPathIsAllocationFreePerPoint) {
  const traj::Trajectory t = TestTrajectory(20000);
  core::OperbStream stream(core::OperbOptions::Optimized(40.0));
  std::size_t segments = 0;
  // SetSink may allocate (std::function setup) — that's one-time, not
  // per-point, and happens before counting starts.
  stream.SetSink(
      [&segments](const traj::RepresentedSegment&) { ++segments; });

  std::size_t allocations = 0;
  {
    CountingScope scope;
    for (const geo::Point& p : t) stream.Push(p);
    stream.Finish();
    allocations = scope.count();
  }
  EXPECT_EQ(allocations, 0u);
  EXPECT_GT(segments, 10u);  // the stream actually compressed something
}

TEST(AllocationTest, OperbBatchPushSinkPathIsAllocationFree) {
  const traj::Trajectory t = TestTrajectory(20000);
  core::OperbStream stream(core::OperbOptions::Optimized(40.0));
  std::size_t segments = 0;
  stream.SetSink(
      [&segments](const traj::RepresentedSegment&) { ++segments; });

  std::size_t allocations = 0;
  {
    CountingScope scope;
    stream.Push(std::span<const geo::Point>(t.points()));
    stream.Finish();
    allocations = scope.count();
  }
  EXPECT_EQ(allocations, 0u);
  EXPECT_GT(segments, 10u);
}

/// The batched SIMD staging path specifically: at every dispatch level
/// the host supports, a warm stream's span Push must stay allocation-free
/// (the SoA staging buffers are fixed-size thread_locals, not heap).
TEST(AllocationTest, OperbBatchPushIsAllocationFreeAtEveryDispatchLevel) {
  const traj::Trajectory t = TestTrajectory(20000);
  for (geo::simd::Level level :
       {geo::simd::Level::kScalar, geo::simd::Level::kSse2,
        geo::simd::Level::kAvx2, geo::simd::Level::kNeon}) {
    if (!geo::simd::Supported(level)) continue;
    geo::simd::ForceLevel(level);
    core::OperbStream stream(core::OperbOptions::Optimized(40.0));
    std::size_t segments = 0;
    stream.SetSink(
        [&segments](const traj::RepresentedSegment&) { ++segments; });
    // Warm-up pass: first contact may fault in the TLS staging area.
    stream.Push(std::span<const geo::Point>(t.points()));
    stream.Finish();
    stream.Reset();

    std::size_t allocations = 0;
    {
      CountingScope scope;
      stream.Push(std::span<const geo::Point>(t.points()));
      stream.Finish();
      allocations = scope.count();
    }
    EXPECT_EQ(allocations, 0u) << geo::simd::LevelName(level);
    EXPECT_GT(segments, 10u) << geo::simd::LevelName(level);
  }
  geo::simd::ClearForcedLevel();
}

TEST(AllocationTest, OperbASinkPathIsAllocationFreePerPoint) {
  const traj::Trajectory t = TestTrajectory(20000);
  core::OperbAStream stream(core::OperbAOptions::Optimized(40.0));
  std::size_t segments = 0;
  stream.SetSink(
      [&segments](const traj::RepresentedSegment&) { ++segments; });

  std::size_t allocations = 0;
  {
    CountingScope scope;
    stream.Push(std::span<const geo::Point>(t.points()));
    stream.Finish();
    allocations = scope.count();
  }
  EXPECT_EQ(allocations, 0u);
  EXPECT_GT(segments, 10u);
}

/// Pooled reuse (the engine's state-recycling path): after a warm-up run,
/// Reset() + a second full pass must perform no heap allocation at all —
/// not even the constructor-time setup the first pass was allowed.
TEST(AllocationTest, OperbResetReuseIsAllocationFree) {
  const traj::Trajectory t = TestTrajectory(20000);
  core::OperbStream stream(core::OperbOptions::Optimized(40.0));
  std::size_t segments = 0;
  stream.SetSink(
      [&segments](const traj::RepresentedSegment&) { ++segments; });
  stream.Push(std::span<const geo::Point>(t.points()));  // warm-up
  stream.Finish();

  std::size_t allocations = 0;
  {
    CountingScope scope;
    stream.Reset();
    stream.Push(std::span<const geo::Point>(t.points()));
    stream.Finish();
    allocations = scope.count();
  }
  EXPECT_EQ(allocations, 0u);
  EXPECT_GT(segments, 20u);
}

TEST(AllocationTest, OperbAResetReuseIsAllocationFree) {
  const traj::Trajectory t = TestTrajectory(20000);
  core::OperbAStream stream(core::OperbAOptions::Optimized(40.0));
  std::size_t segments = 0;
  stream.SetSink(
      [&segments](const traj::RepresentedSegment&) { ++segments; });
  stream.Push(std::span<const geo::Point>(t.points()));  // warm-up
  stream.Finish();

  std::size_t allocations = 0;
  {
    CountingScope scope;
    stream.Reset();
    stream.Push(std::span<const geo::Point>(t.points()));
    stream.Finish();
    allocations = scope.count();
  }
  EXPECT_EQ(allocations, 0u);
  EXPECT_GT(segments, 20u);
}

/// Same through the type-erased StreamingSimplifier the engine pools.
TEST(AllocationTest, StreamingSimplifierResetReuseIsAllocationFree) {
  const traj::Trajectory t = TestTrajectory(20000);
  for (const baselines::Algorithm algo :
       {baselines::Algorithm::kOPERB, baselines::Algorithm::kOPERBA,
        baselines::Algorithm::kRawOPERB}) {
    SCOPED_TRACE(std::string(baselines::AlgorithmName(algo)));
    const auto stream = baselines::MakeStreamingSimplifier(algo, 40.0);
    std::size_t segments = 0;
    stream->SetSink(
        [&segments](const traj::RepresentedSegment&) { ++segments; });
    stream->Push(std::span<const geo::Point>(t.points()));  // warm-up
    stream->Finish();

    std::size_t allocations = 0;
    {
      CountingScope scope;
      stream->Reset();
      stream->Push(std::span<const geo::Point>(t.points()));
      stream->Finish();
      allocations = scope.count();
    }
    EXPECT_EQ(allocations, 0u);
    EXPECT_GT(segments, 20u);
  }
}

/// The buffered batch adapters cannot promise allocation-free Finish()
/// (their batch algorithms allocate internally), but reused Push() must
/// stop allocating once the point buffer's capacity is warm.
TEST(AllocationTest, BufferedStreamingReusePushIsAllocationFree) {
  const traj::Trajectory t = TestTrajectory(20000);
  const auto stream =
      baselines::MakeStreamingSimplifier(baselines::Algorithm::kFBQS, 40.0);
  std::size_t segments = 0;
  stream->SetSink(
      [&segments](const traj::RepresentedSegment&) { ++segments; });
  stream->Push(std::span<const geo::Point>(t.points()));  // warm-up
  stream->Finish();
  EXPECT_GT(segments, 20u);

  std::size_t allocations = 0;
  {
    CountingScope scope;
    stream->Reset();
    stream->Push(std::span<const geo::Point>(t.points()));
    allocations = scope.count();
  }
  EXPECT_EQ(allocations, 0u);
  stream->Finish();
}

/// The obs record path's no-allocation contract (DESIGN.md §10): once a
/// call site holds its instrument pointers (acquired once, at startup),
/// counter adds, gauge moves, histogram records and scoped timers touch
/// only pre-sized atomics — zero heap traffic per point.
TEST(AllocationTest, MetricsRecordPathIsAllocationFree) {
  obs::MetricsRegistry registry;  // local: keeps the global dump clean
  obs::Counter* points = registry.GetCounter("test.points");
  obs::Gauge* level = registry.GetGauge("test.level");
  obs::MaxGauge* hwm = registry.GetMaxGauge("test.hwm");
  obs::LatencyHistogram* lat = registry.GetHistogram("test.lat_ns");

  std::size_t allocations = 0;
  {
    CountingScope scope;
    for (int i = 0; i < 20000; ++i) {
      points->Increment();
      level->Add(2);
      level->Sub(1);
      hwm->Observe(i);
      lat->Record(static_cast<std::uint64_t>(i));
      obs::ScopedTimer timer(lat);
    }
    allocations = scope.count();
  }
  EXPECT_EQ(allocations, 0u);
  EXPECT_EQ(points->Value(), 20000u);
  EXPECT_EQ(lat->Count(), 2 * 20000u);
}

/// The instrumented sink path: the zero-allocation Push contract holds
/// with live metrics updates interleaved the way the engine batches
/// them (per ~64-point stride, against the process-global registry).
TEST(AllocationTest, InstrumentedSinkPathIsAllocationFreePerPoint) {
  const traj::Trajectory t = TestTrajectory(20000);
  core::OperbStream stream(core::OperbOptions::Optimized(40.0));
  obs::Counter* segments_ctr =
      obs::MetricsRegistry::Global().GetCounter("test.sink.segments");
  obs::Counter* points_ctr =
      obs::MetricsRegistry::Global().GetCounter("test.sink.points");
  obs::MaxGauge* occupancy =
      obs::MetricsRegistry::Global().GetMaxGauge("test.sink.occupancy");
  stream.SetSink([segments_ctr](const traj::RepresentedSegment&) {
    segments_ctr->Increment();
  });

  std::size_t allocations = 0;
  {
    CountingScope scope;
    std::size_t since_batch = 0;
    for (const geo::Point& p : t) {
      stream.Push(p);
      if (++since_batch == 64) {  // the engine's amortization stride
        points_ctr->Add(since_batch);
        occupancy->Observe(static_cast<std::int64_t>(since_batch));
        since_batch = 0;
      }
    }
    points_ctr->Add(since_batch);
    stream.Finish();
    allocations = scope.count();
  }
  EXPECT_EQ(allocations, 0u);
  EXPECT_EQ(points_ctr->Value(), t.size());
  EXPECT_GT(segments_ctr->Value(), 10u);
}

/// Contrast check: the buffered path must still work (and will allocate),
/// confirming the counter actually observes the stream's allocations.
TEST(AllocationTest, BufferedPathAllocatesAndCounterSeesIt) {
  const traj::Trajectory t = TestTrajectory(20000);
  core::OperbStream stream(core::OperbOptions::Optimized(40.0));
  std::size_t allocations = 0;
  std::size_t segments = 0;
  {
    CountingScope scope;
    for (const geo::Point& p : t) stream.Push(p);
    stream.Finish();
    allocations = scope.count();
    segments = stream.emitted().size();
  }
  EXPECT_GT(allocations, 0u);
  EXPECT_GT(segments, 10u);
}

}  // namespace
}  // namespace operb
