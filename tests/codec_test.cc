#include <gtest/gtest.h>

#include "codec/delta.h"
#include "test_util.h"

namespace operb::codec {
namespace {

using testutil::Generated;

TEST(DeltaCodecTest, EmptyTrajectoryRoundTrips) {
  traj::Trajectory empty;
  const auto data = DeltaEncode(empty);
  const auto decoded = DeltaDecode(data);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(DeltaCodecTest, RoundTripIsLosslessOnQuantizedGrid) {
  traj::Trajectory t;
  t.AppendUnchecked({12.34, -56.78, 0.001});
  t.AppendUnchecked({12.35, -56.80, 5.5});
  t.AppendUnchecked({-1000.99, 2000.01, 6.25});
  const auto data = DeltaEncode(t);
  const auto decoded = DeltaDecode(data);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_NEAR((*decoded)[i].x, t[i].x, 0.005 + 1e-12);
    EXPECT_NEAR((*decoded)[i].y, t[i].y, 0.005 + 1e-12);
    EXPECT_NEAR((*decoded)[i].t, t[i].t, 0.0005 + 1e-12);
  }
  // Re-encoding the decoded (already quantized) data is bit-stable.
  const auto data2 = DeltaEncode(*decoded);
  EXPECT_EQ(data, data2);
}

TEST(DeltaCodecTest, NegativeDeltasSurvive) {
  traj::Trajectory t;
  for (int i = 0; i < 50; ++i) {
    const double x = (i % 2 == 0) ? 100.0 : -100.0;
    t.AppendUnchecked({x, -x, static_cast<double>(i)});
  }
  const auto decoded = DeltaDecode(DeltaEncode(t));
  ASSERT_TRUE(decoded.ok());
  EXPECT_NEAR((*decoded)[49].x, t[49].x, 0.01);
}

TEST(DeltaCodecTest, CompressesSmoothTrajectories) {
  const auto t = Generated(datagen::DatasetKind::kSerCar, 5000, 3);
  const double ratio = DeltaCompressionRatio(t);
  // The paper's related work: lossless delta compression achieves only a
  // modest ratio — but it must beat raw doubles on GPS data.
  EXPECT_LT(ratio, 0.6);
  EXPECT_GT(ratio, 0.05);
}

TEST(DeltaCodecTest, CustomResolutionsApply) {
  traj::Trajectory t;
  t.AppendUnchecked({1.2345, 0.0, 0.0});
  t.AppendUnchecked({2.2345, 0.0, 1.0});
  DeltaCodecOptions coarse;
  coarse.position_resolution_m = 1.0;
  const auto decoded = DeltaDecode(DeltaEncode(t, coarse), coarse);
  ASSERT_TRUE(decoded.ok());
  EXPECT_NEAR((*decoded)[0].x, 1.0, 1e-12);
  EXPECT_NEAR((*decoded)[1].x, 2.0, 1e-12);
}

TEST(DeltaCodecTest, TruncatedStreamIsCorruption) {
  const auto t = Generated(datagen::DatasetKind::kTaxi, 100, 5);
  auto data = DeltaEncode(t);
  data.resize(data.size() / 2);
  const auto decoded = DeltaDecode(data);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(DeltaCodecTest, TrailingGarbageIsCorruption) {
  traj::Trajectory t;
  t.AppendUnchecked({0, 0, 0});
  auto data = DeltaEncode(t);
  data.push_back(0x01);
  const auto decoded = DeltaDecode(data);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(DeltaCodecTest, ImplausibleCountIsCorruption) {
  // A varint claiming 2^40 points in a 3-byte buffer.
  std::vector<std::uint8_t> data{0x80, 0x80, 0x80, 0x80, 0x80, 0x40};
  const auto decoded = DeltaDecode(data);
  EXPECT_FALSE(decoded.ok());
}

TEST(DeltaCodecTest, EmptyBufferIsCorruption) {
  const auto decoded = DeltaDecode({});
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace operb::codec
