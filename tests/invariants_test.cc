// Cross-cutting invariants: one-pass behaviour, O(1) state, option
// validation, guard semantics, monotonicity in zeta, and the paper-mode /
// guarded-mode contrast — the properties that tie the whole library
// together rather than any single module.

#include <gtest/gtest.h>

#include "baselines/dp.h"
#include "baselines/simplifier.h"
#include "core/operb.h"
#include "core/operb_a.h"
#include "eval/metrics.h"
#include "eval/verifier.h"
#include "test_util.h"

namespace operb {
namespace {

using testutil::Generated;
using testutil::RandomWalk;

TEST(OptionsValidationTest, RejectsBadParameters) {
  core::OperbOptions o = core::OperbOptions::Optimized(0.0);
  EXPECT_FALSE(o.Validate().ok());
  o = core::OperbOptions::Optimized(-5.0);
  EXPECT_FALSE(o.Validate().ok());
  o = core::OperbOptions::Optimized(10.0);
  o.max_points_per_segment = 1;
  EXPECT_FALSE(o.Validate().ok());

  o = core::OperbOptions::Optimized(10.0);
  o.step_length_factor = 0.0;
  EXPECT_FALSE(o.Validate().ok());
  o.step_length_factor = 1.5;
  EXPECT_FALSE(o.Validate().ok());
  o.step_length_factor = 0.75;
  EXPECT_TRUE(o.Validate().ok());
  // Non-paper fitting parameters demand the guard.
  o.strict_bound_guard = false;
  EXPECT_FALSE(o.Validate().ok());

  core::OperbAOptions a = core::OperbAOptions::Optimized(10.0);
  a.gamma_m = -0.1;
  EXPECT_FALSE(a.Validate().ok());
  a.gamma_m = 4.0;
  EXPECT_FALSE(a.Validate().ok());
  a = core::OperbAOptions::Optimized(10.0);
  a.max_patch_extension_zeta = -1.0;
  EXPECT_FALSE(a.Validate().ok());
}

TEST(OnePassTest, EveryPointProcessedExactlyOnce) {
  // The defining property of Theorem 5: stats count one processing per
  // pushed point regardless of data shape or options.
  for (auto kind : datagen::AllDatasetKinds()) {
    const auto t = Generated(kind, 2000, 3);
    for (const core::OperbOptions& o :
         {core::OperbOptions::Raw(25.0), core::OperbOptions::Optimized(25.0)}) {
      core::OperbStats stats;
      core::SimplifyOperb(t, o, &stats);
      EXPECT_EQ(stats.points_processed, t.size());
    }
  }
}

TEST(OnePassTest, SegmentsEmittedIncrementallyNotOnlyAtFinish) {
  // A one-pass *online* algorithm must not hold its whole output until
  // the end: most segments appear during Push.
  const auto t = Generated(datagen::DatasetKind::kSerCar, 4000, 9);
  core::OperbStream stream(core::OperbOptions::Optimized(20.0));
  std::size_t during_push = 0;
  for (const geo::Point& p : t) {
    stream.Push(p);
    during_push += stream.TakeEmitted().size();
  }
  stream.Finish();
  const std::size_t at_finish = stream.TakeEmitted().size();
  EXPECT_GT(during_push, 10u);
  EXPECT_LE(at_finish, 2u);
}

TEST(OnePassTest, LazyPolicyDelaysByAtMostTwoSegments) {
  const auto t = Generated(datagen::DatasetKind::kSerCar, 4000, 9);
  core::OperbStream plain(core::OperbOptions::Optimized(20.0));
  core::OperbAStream lazy(core::OperbAOptions::Optimized(20.0));
  std::size_t plain_total = 0;
  std::size_t lazy_total = 0;
  for (const geo::Point& p : t) {
    plain.Push(p);
    lazy.Push(p);
    plain_total += plain.TakeEmitted().size();
    lazy_total += lazy.TakeEmitted().size();
    // The lazy buffer holds at most two determined segments; each applied
    // patch merges one determined segment away.
    EXPECT_LE(plain_total,
              lazy_total + 2 + lazy.stats().patches_applied);
  }
}

TEST(StateSizeTest, StreamObjectIsSmall) {
  // O(1) space in a checkable form: the stream object carries no
  // per-point storage (the emitted buffer is drained by the caller).
  EXPECT_LT(sizeof(core::OperbStream), 600u);
  EXPECT_LT(sizeof(core::OperbAStream), 1200u);
  core::OperbStream stream(core::OperbOptions::Optimized(10.0));
  const auto t = RandomWalk(50000, 1);
  for (const geo::Point& p : t) {
    stream.Push(p);
    // Draining keeps the only growable member bounded.
    EXPECT_LE(stream.emitted().size(), 1u);
    stream.TakeEmitted();
  }
}

TEST(GuardTest, PaperModeCanViolateGuardedModeCannot) {
  // The reason strict_bound_guard exists: on adversarial random walks the
  // paper's heuristics exceed zeta for some seed; the guard never does.
  const double zeta = 5.0;
  double paper_worst = 0.0;
  double guarded_worst = 0.0;
  for (std::uint64_t seed = 100; seed < 130; ++seed) {
    const auto t = RandomWalk(1500, seed);
    core::OperbOptions paper = core::OperbOptions::Optimized(zeta);
    paper.strict_bound_guard = false;
    core::OperbOptions guarded = core::OperbOptions::Optimized(zeta);
    const auto rep_paper = core::SimplifyOperb(t, paper);
    const auto rep_guarded = core::SimplifyOperb(t, guarded);
    paper_worst = std::max(
        paper_worst,
        eval::VerifyErrorBound(t, rep_paper, zeta).worst_distance);
    guarded_worst = std::max(
        guarded_worst,
        eval::VerifyErrorBound(t, rep_guarded, zeta).worst_distance);
  }
  EXPECT_GT(paper_worst, zeta);          // heuristics do break somewhere
  EXPECT_LE(guarded_worst, zeta * (1.0 + 1e-9));  // guard never does
}

TEST(GuardTest, GuardCostsLittleCompressionOnRealisticData) {
  const auto t = Generated(datagen::DatasetKind::kSerCar, 6000, 77);
  core::OperbOptions paper = core::OperbOptions::Optimized(40.0);
  paper.strict_bound_guard = false;
  const auto rep_paper = core::SimplifyOperb(t, paper);
  const auto rep_guarded =
      core::SimplifyOperb(t, core::OperbOptions::Optimized(40.0));
  const double r_paper = eval::CompressionRatio(t, rep_paper);
  const double r_guarded = eval::CompressionRatio(t, rep_guarded);
  EXPECT_GE(r_guarded, r_paper);            // guard only ever breaks more
  EXPECT_LT(r_guarded, r_paper + 0.02);     // ... but by at most ~2 pp here
}

TEST(FittingParamsTest, AlternativeParameterizationsStayBounded) {
  // Paper future work: alternative fitting functions. Any (step, slack)
  // must stay error bounded thanks to the guard.
  const auto t = Generated(datagen::DatasetKind::kGeoLife, 2000, 5);
  for (double step : {0.25, 0.5, 1.0}) {
    for (double slack : {0.1, 0.25, 0.5}) {
      core::OperbOptions o = core::OperbOptions::Optimized(20.0);
      o.step_length_factor = step;
      o.activation_slack_factor = slack;
      ASSERT_TRUE(o.Validate().ok());
      const auto rep = core::SimplifyOperb(t, o);
      ASSERT_TRUE(rep.ValidateAgainst(t).ok())
          << "step=" << step << " slack=" << slack;
      EXPECT_TRUE(eval::VerifyErrorBound(t, rep, 20.0).bounded)
          << "step=" << step << " slack=" << slack;
    }
  }
}

TEST(MonotonicityTest, RatioDecreasesWithZeta) {
  // Exp-2.1's first observation, as a property over all algorithms.
  for (auto kind : {datagen::DatasetKind::kSerCar,
                    datagen::DatasetKind::kGeoLife}) {
    const auto t = Generated(kind, 3000, 13);
    for (baselines::Algorithm algo :
         {baselines::Algorithm::kDP, baselines::Algorithm::kFBQS,
          baselines::Algorithm::kOPERB, baselines::Algorithm::kOPERBA}) {
      double prev = 2.0;
      for (double zeta : {5.0, 15.0, 45.0, 135.0}) {
        const auto rep =
            baselines::MakeSimplifier(algo, zeta)->Simplify(t);
        const double ratio = eval::CompressionRatio(t, rep);
        // Allow small non-monotonic wiggle (greedy algorithms).
        EXPECT_LE(ratio, prev * 1.05)
            << baselines::AlgorithmName(algo) << " zeta=" << zeta;
        prev = ratio;
      }
    }
  }
}

TEST(MonotonicityTest, AverageErrorGrowsWithZeta) {
  const auto t = Generated(datagen::DatasetKind::kTruck, 3000, 21);
  double prev = -1.0;
  for (double zeta : {5.0, 20.0, 80.0}) {
    const auto rep =
        baselines::MakeSimplifier(baselines::Algorithm::kOPERBA, zeta)
            ->Simplify(t);
    const double avg = eval::MeasureError(t, rep).average;
    EXPECT_GT(avg, prev);
    prev = avg;
  }
}

TEST(DpSedTest, BoundsSynchronousDistanceAndSplitsSpeedChanges) {
  // A runner sprinting then resting along one straight line: plain DP
  // emits a single segment (zero perpendicular error); DP-SED keeps the
  // knee because the position-vs-time profile deviates.
  traj::Trajectory t;
  for (int i = 0; i <= 10; ++i) {
    t.AppendUnchecked({i * 50.0, 0.0, static_cast<double>(i)});  // fast
  }
  for (int i = 1; i <= 10; ++i) {
    t.AppendUnchecked({500.0 + i * 2.0, 0.0, 10.0 + i});  // slow
  }
  const auto plain = baselines::SimplifyDp(t, 10.0);
  const auto sed = baselines::SimplifyDpSed(t, 10.0);
  EXPECT_EQ(plain.size(), 1u);
  EXPECT_GE(sed.size(), 2u);
  // And the SED bound holds pointwise.
  for (const auto& s : sed.segments()) {
    for (std::size_t i = s.first_index; i <= s.last_index; ++i) {
      EXPECT_LE(geo::SynchronousEuclideanDistance(
                    t[i], t[s.first_index], t[s.last_index]),
                10.0 + 1e-9);
    }
  }
}

TEST(CrossAlgorithmTest, OperbANeverHasMoreAnomaliesThanOperb) {
  for (auto kind : datagen::AllDatasetKinds()) {
    const auto t = Generated(kind, 3000, 31);
    const auto plain = core::SimplifyOperb(
        t, core::OperbOptions::Optimized(40.0));
    const auto patched = core::SimplifyOperbA(
        t, core::OperbAOptions::Optimized(40.0));
    EXPECT_LE(eval::CountAnomalousSegments(patched),
              eval::CountAnomalousSegments(plain))
        << datagen::DatasetName(kind);
  }
}

TEST(CrossAlgorithmTest, BatchAndStreamingAgreeForAllOperbConfigs) {
  const auto t = Generated(datagen::DatasetKind::kTruck, 2500, 41);
  for (bool opt : {false, true}) {
    const core::OperbOptions o = opt ? core::OperbOptions::Optimized(30.0)
                                     : core::OperbOptions::Raw(30.0);
    const auto batch = core::SimplifyOperb(t, o);
    core::OperbStream stream(o);
    std::size_t n = 0;
    for (const geo::Point& p : t) {
      stream.Push(p);
      n += stream.TakeEmitted().size();
    }
    stream.Finish();
    n += stream.TakeEmitted().size();
    EXPECT_EQ(n, batch.size());
  }
}

}  // namespace
}  // namespace operb
