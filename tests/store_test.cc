// Tests for the queryable compressed trajectory store (src/store) and
// its block codec (codec/segment_codec.h): exact round-trips against the
// in-memory sink output and the tests/golden fixtures, footer-metadata
// block skipping (the ISSUE's "provably skips >= 1 block" assertion),
// crash-recovery (truncated tails, corrupted payloads), and the
// position-at-time error certificate.

#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/pipeline.h"
#include "api/store_query.h"
#include "baselines/simplifier.h"
#include "baselines/streaming.h"
#include "codec/segment_codec.h"
#include "codec/varint.h"
#include "eval/verifier.h"
#include "geo/bbox.h"
#include "store/format.h"
#include "store/reader.h"
#include "store/writer.h"
#include "test_util.h"
#include "traj/multi_object.h"
#include "traj/piecewise.h"

namespace operb {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

/// Simplifies `t` through the streaming sink path and annotates every
/// segment with the covered points' timestamps — exactly what the
/// pipeline's WriteStore stage feeds the writer.
std::vector<traj::TimedSegment> SimplifyTimed(const traj::Trajectory& t,
                                              baselines::Algorithm algorithm,
                                              traj::ObjectId id) {
  const auto simplifier =
      baselines::MakeStreamingSimplifier(algorithm, testutil::kGoldenZeta);
  std::vector<traj::TimedSegment> out;
  simplifier->SetSink([&](const traj::RepresentedSegment& s) {
    out.push_back({id, s, t[s.first_index].t, t[s.last_index].t});
  });
  simplifier->Push(std::span<const geo::Point>(t.points()));
  simplifier->Finish();
  return out;
}

std::vector<traj::RepresentedSegment> Untimed(
    const std::vector<traj::TimedSegment>& timed) {
  std::vector<traj::RepresentedSegment> out;
  out.reserve(timed.size());
  for (const traj::TimedSegment& s : timed) out.push_back(s.segment);
  return out;
}

/// Writes `segments` to a fresh store at `path` and returns the reader.
std::unique_ptr<store::StoreReader> WriteAndOpen(
    const std::string& path, std::span<const traj::TimedSegment> segments,
    std::size_t block_budget = 64 * 1024,
    double zeta = testutil::kGoldenZeta) {
  store::StoreWriterOptions options;
  options.zeta = zeta;
  options.block_budget_bytes = block_budget;
  auto writer = store::StoreWriter::Create(path, options);
  EXPECT_TRUE(writer.ok()) << writer.status().ToString();
  for (const traj::TimedSegment& s : segments) {
    EXPECT_TRUE(writer.value()->Append(s).ok());
  }
  EXPECT_TRUE(writer.value()->Close().ok());
  auto reader = store::StoreReader::Open(path);
  EXPECT_TRUE(reader.ok()) << reader.status().ToString();
  return std::move(reader).value();
}

void ExpectTimedEqual(const std::vector<traj::TimedSegment>& actual,
                      const std::vector<traj::TimedSegment>& want,
                      const std::string& label) {
  testutil::ExpectSegmentsEqual(Untimed(actual), Untimed(want), label);
  ASSERT_EQ(actual.size(), want.size()) << label;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].object_id, want[i].object_id) << label << " " << i;
    EXPECT_EQ(actual[i].t_start, want[i].t_start) << label << " " << i;
    EXPECT_EQ(actual[i].t_end, want[i].t_end) << label << " " << i;
  }
}

// ---------------------------------------------------------------------
// Block codec
// ---------------------------------------------------------------------

TEST(SegmentCodecTest, RoundTripsExactlyIncludingPatchFlags) {
  const traj::Trajectory t = testutil::GoldenTrajectory(
      datagen::DatasetKind::kSerCar);
  // OPERB-A produces patch endpoints; two objects make two runs.
  std::vector<traj::TimedSegment> input =
      SimplifyTimed(t, baselines::Algorithm::kOPERBA, 7);
  const std::vector<traj::TimedSegment> second =
      SimplifyTimed(t, baselines::Algorithm::kOPERB, 40000000001ULL);
  input.insert(input.end(), second.begin(), second.end());

  std::vector<std::uint8_t> encoded;
  codec::EncodeSegmentBlock(input, &encoded);
  const auto decoded = codec::DecodeSegmentBlock(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectTimedEqual(*decoded, input, "codec round trip");
}

TEST(SegmentCodecTest, EmptyBlockAndCorruptionAreHandled) {
  std::vector<std::uint8_t> encoded;
  codec::EncodeSegmentBlock({}, &encoded);
  const auto decoded = codec::DecodeSegmentBlock(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());

  EXPECT_EQ(codec::DecodeSegmentBlock(std::span<const std::uint8_t>())
                .status()
                .code(),
            StatusCode::kCorruption);
  // Truncate a real block mid-stream.
  const traj::Trajectory t = testutil::StraightLine(20);
  codec::EncodeSegmentBlock(SimplifyTimed(t, baselines::Algorithm::kOPERB, 1),
                            &encoded);
  const std::span<const std::uint8_t> half(encoded.data(),
                                           encoded.size() / 2);
  EXPECT_EQ(codec::DecodeSegmentBlock(half).status().code(),
            StatusCode::kCorruption);
}

TEST(SegmentCodecTest, VarintRejectsOverlongEncodings) {
  // 9 continuation bytes then 0x7F: the 10th byte's upper bits would
  // shift past bit 63 — must fail, not silently truncate.
  const std::vector<std::uint8_t> overlong = {0x80, 0x80, 0x80, 0x80, 0x80,
                                              0x80, 0x80, 0x80, 0x80, 0x7F};
  std::size_t pos = 0;
  std::uint64_t v = 0;
  EXPECT_FALSE(codec::GetVarint(overlong, &pos, &v));
  // The canonical 10-byte encoding of UINT64_MAX still decodes.
  std::vector<std::uint8_t> max_bytes;
  codec::PutVarint(std::numeric_limits<std::uint64_t>::max(), &max_bytes);
  ASSERT_EQ(max_bytes.size(), 10u);
  pos = 0;
  EXPECT_TRUE(codec::GetVarint(max_bytes, &pos, &v));
  EXPECT_EQ(v, std::numeric_limits<std::uint64_t>::max());
}

// ---------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------

/// The acceptance matrix: every algorithm x every golden profile must
/// round-trip through the store bit-identically to the in-memory sink
/// output, and therefore to tests/golden.
class StoreGoldenTest
    : public testing::TestWithParam<datagen::DatasetKind> {};

TEST_P(StoreGoldenTest, AllAlgorithmsRoundTripBitIdentically) {
  const datagen::DatasetKind kind = GetParam();
  const traj::Trajectory t = testutil::GoldenTrajectory(kind);
  const std::string path =
      TempPath("store_golden_" + std::string(datagen::DatasetName(kind)) +
               ".store");

  // One store per profile; object id = algorithm index.
  std::vector<std::vector<traj::TimedSegment>> expected;
  {
    store::StoreWriterOptions options;
    options.zeta = testutil::kGoldenZeta;
    auto writer = store::StoreWriter::Create(path, options);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    traj::ObjectId id = 0;
    for (const baselines::Algorithm algorithm : baselines::AllAlgorithms()) {
      expected.push_back(SimplifyTimed(t, algorithm, id));
      for (const traj::TimedSegment& s : expected.back()) {
        ASSERT_TRUE(writer.value()->Append(s).ok());
      }
      ++id;
    }
    ASSERT_TRUE(writer.value()->Close().ok());
  }

  const auto reader = store::StoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader.value()->zeta(), testutil::kGoldenZeta);
  EXPECT_FALSE(reader.value()->open_info().tail_dropped);

  traj::ObjectId id = 0;
  for (const baselines::Algorithm algorithm : baselines::AllAlgorithms()) {
    const std::string label =
        std::string(baselines::AlgorithmName(algorithm)) + " on " +
        std::string(datagen::DatasetName(kind));
    const auto got = reader.value()->ReconstructObject(id);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectTimedEqual(*got, expected[id], label);

    // And directly against the committed fixtures: the store is the
    // third pinned path (batch, sink, store) to the same bytes.
    const std::vector<traj::RepresentedSegment> golden = testutil::LoadGolden(
        std::string(OPERB_GOLDEN_DIR) + "/golden_" +
        std::string(baselines::AlgorithmName(algorithm)) + "_" +
        std::string(datagen::DatasetName(kind)) + ".csv");
    if (!HasFailure()) {
      testutil::ExpectSegmentsEqual(Untimed(*got), golden,
                                    label + " vs golden fixture");
    }
    ++id;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, StoreGoldenTest,
    testing::ValuesIn(datagen::AllDatasetKinds()),
    [](const testing::TestParamInfo<datagen::DatasetKind>& info) {
      return std::string(datagen::DatasetName(info.param));
    });

// ---------------------------------------------------------------------
// Edge cases
// ---------------------------------------------------------------------

TEST(StoreTest, EmptyStoreServesEmptyAnswers) {
  const std::string path = TempPath("store_empty.store");
  {
    auto writer = store::StoreWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->Close().ok());
    EXPECT_EQ(writer.value()->stats().blocks, 0u);
    EXPECT_EQ(writer.value()->stats().segments, 0u);
  }
  const auto reader = store::StoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader.value()->block_count(), 0u);
  EXPECT_EQ(reader.value()->segment_count(), 0u);

  const auto rec = reader.value()->ReconstructObject(0);
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec->empty());

  geo::BoundingBox window;
  window.Extend(geo::Vec2{-1e9, -1e9});
  window.Extend(geo::Vec2{1e9, 1e9});
  const auto win = reader.value()->QueryWindow(window);
  ASSERT_TRUE(win.ok());
  EXPECT_TRUE(win->empty());

  EXPECT_EQ(reader.value()->PositionAt(0, 0.0).status().code(),
            StatusCode::kNotFound);
}

TEST(StoreTest, SingleSegmentObjectRoundTrips) {
  const std::string path = TempPath("store_single.store");
  const traj::Trajectory t = testutil::StraightLine(2);
  const std::vector<traj::TimedSegment> segments =
      SimplifyTimed(t, baselines::Algorithm::kOPERB, 42);
  ASSERT_EQ(segments.size(), 1u);
  const auto reader = WriteAndOpen(path, segments);
  const auto got = reader->ReconstructObject(42);
  ASSERT_TRUE(got.ok());
  ExpectTimedEqual(*got, segments, "single segment");
  // The unknown object answers empty, not an error.
  const auto other = reader->ReconstructObject(41);
  ASSERT_TRUE(other.ok());
  EXPECT_TRUE(other->empty());
}

TEST(StoreTest, TimeRangeStraddlingBlockBoundaries) {
  const std::string path = TempPath("store_straddle.store");
  const traj::Trajectory t =
      testutil::Generated(datagen::DatasetKind::kSerCar, 3000, 17);
  const std::vector<traj::TimedSegment> all =
      SimplifyTimed(t, baselines::Algorithm::kOPERB, 5);
  // Minimum budget => many small blocks of one object.
  const auto reader = WriteAndOpen(path, all, /*block_budget=*/1024);
  ASSERT_GE(reader->block_count(), 3u)
      << "fixture too small to form multiple blocks";

  // Full reconstruction equals the in-memory sequence despite blocking.
  const auto full = reader->ReconstructObject(5);
  ASSERT_TRUE(full.ok());
  ExpectTimedEqual(*full, all, "multi-block full reconstruction");

  // A range centered on a block boundary: expected = the time-overlap
  // filter of the in-memory sequence.
  const double boundary = reader->segment_count() > 0
                              ? all[all.size() / 2].t_start
                              : 0.0;
  const double t0 = boundary - 40.0;
  const double t1 = boundary + 40.0;
  std::vector<traj::TimedSegment> expected;
  for (const traj::TimedSegment& s : all) {
    if (s.t_start <= t1 && t0 <= s.t_end) expected.push_back(s);
  }
  store::StoreQueryStats stats;
  const auto ranged = reader->ReconstructObject(5, t0, t1, &stats);
  ASSERT_TRUE(ranged.ok());
  ExpectTimedEqual(*ranged, expected, "straddling range");
  EXPECT_FALSE(expected.empty());
  // The range prunes: some block outside [t0, t1] was skipped unread.
  EXPECT_GE(stats.blocks_skipped, 1u);
}

TEST(StoreTest, WindowQuerySkipsBlocksOnFooterMetadata) {
  const std::string path = TempPath("store_window.store");
  // Two spatially disjoint objects, far beyond any zeta inflation.
  const traj::Trajectory near_origin = testutil::ZigZag(120);
  traj::Trajectory far_away;
  for (const geo::Point& p : testutil::ZigZag(120)) {
    far_away.AppendUnchecked({p.x + 1e6, p.y + 1e6, p.t});
  }
  std::vector<traj::TimedSegment> all =
      SimplifyTimed(near_origin, baselines::Algorithm::kOPERB, 1);
  const std::vector<traj::TimedSegment> far =
      SimplifyTimed(far_away, baselines::Algorithm::kOPERB, 2);
  const std::size_t near_count = all.size();
  all.insert(all.end(), far.begin(), far.end());

  // One object per block: budget below one object's encoding.
  const auto reader = WriteAndOpen(path, all, /*block_budget=*/1024);
  ASSERT_GE(reader->block_count(), 2u);

  geo::BoundingBox window;
  window.Extend(geo::Vec2{-100.0, -100.0});
  window.Extend(geo::Vec2{3000.0, 100.0});

  // The acceptance assertion: the far blocks are skipped on footer
  // metadata alone.
  store::StoreQueryStats stats;
  const auto got = reader->QueryWindow(window, -kInf, kInf, &stats);
  ASSERT_TRUE(got.ok());
  EXPECT_GE(stats.blocks_skipped, 1u);
  EXPECT_EQ(stats.blocks_skipped + stats.blocks_scanned,
            stats.blocks_total);
  EXPECT_FALSE(got->empty());
  EXPECT_LE(got->size(), near_count);
  for (const traj::TimedSegment& s : *got) {
    EXPECT_EQ(s.object_id, 1u) << "far object leaked into the window";
  }

  // A window touching nothing: every block is skipped, none decoded.
  geo::BoundingBox nowhere;
  nowhere.Extend(geo::Vec2{5e7, 5e7});
  nowhere.Extend(geo::Vec2{5e7 + 10, 5e7 + 10});
  store::StoreQueryStats none_stats;
  const auto none = reader->QueryWindow(nowhere, -kInf, kInf, &none_stats);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
  EXPECT_EQ(none_stats.blocks_scanned, 0u);
  EXPECT_EQ(none_stats.blocks_skipped, none_stats.blocks_total);
}

TEST(StoreTest, ReopenAfterTruncationDropsOnlyTheTail) {
  const std::string path = TempPath("store_truncate.store");
  const traj::Trajectory t =
      testutil::GoldenTrajectory(datagen::DatasetKind::kSerCar);
  const std::vector<traj::TimedSegment> all =
      SimplifyTimed(t, baselines::Algorithm::kOPERB, 9);
  std::size_t blocks_before = 0;
  {
    const auto reader = WriteAndOpen(path, all, /*block_budget=*/1024);
    blocks_before = reader->block_count();
    ASSERT_GE(blocks_before, 2u);
  }
  // Chop into the last block's footer: a crash mid-append.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() - 17));
  }
  const auto reopened = store::StoreReader::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(reopened.value()->open_info().tail_dropped);
  EXPECT_GT(reopened.value()->open_info().dropped_bytes, 0u);
  EXPECT_EQ(reopened.value()->block_count(), blocks_before - 1);

  // The surviving prefix still answers, and answers correctly: it is a
  // prefix of the emission order.
  const auto got = reopened.value()->ReconstructObject(9);
  ASSERT_TRUE(got.ok());
  ASSERT_LT(got->size(), all.size());
  ExpectTimedEqual(
      *got,
      std::vector<traj::TimedSegment>(all.begin(),
                                      all.begin() + got->size()),
      "post-truncation prefix");
}

TEST(StoreTest, CorruptPayloadSurfacesAsCorruptionOnRead) {
  const std::string path = TempPath("store_corrupt.store");
  const traj::Trajectory t = testutil::ZigZag(60);
  const std::vector<traj::TimedSegment> all =
      SimplifyTimed(t, baselines::Algorithm::kOPERB, 3);
  { WriteAndOpen(path, all); }
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  // Flip one payload byte (after the 24-byte header + 4-byte length).
  bytes[store::kFileHeaderBytes + 4 + 5] ^= 0x40;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const auto reader = store::StoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();  // lazy checksum
  EXPECT_EQ(reader.value()->ReconstructObject(3).status().code(),
            StatusCode::kCorruption);
}

TEST(StoreTest, OpenRejectsForeignAndTruncatedHeaders) {
  const std::string path = TempPath("store_badheader.store");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "definitely not a store";
  }
  EXPECT_EQ(store::StoreReader::Open(path).status().code(),
            StatusCode::kCorruption);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "xy";
  }
  EXPECT_EQ(store::StoreReader::Open(path).status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(store::StoreReader::Open(TempPath("no_such.store"))
                .status()
                .code(),
            StatusCode::kIOError);
}

TEST(StoreTest, WriterRejectsBadOptionsAndLateAppends) {
  store::StoreWriterOptions bad_zeta;
  bad_zeta.zeta = 0.0;
  EXPECT_EQ(store::StoreWriter::Create(TempPath("x.store"), bad_zeta)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  store::StoreWriterOptions bad_budget;
  bad_budget.block_budget_bytes = 16;
  EXPECT_EQ(store::StoreWriter::Create(TempPath("x.store"), bad_budget)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // A budget above the u32 frame headroom is rejected up front (a
  // payload overshooting 4 GiB would wrap the length prefix).
  store::StoreWriterOptions huge_budget;
  huge_budget.block_budget_bytes = std::size_t{5} << 30;
  EXPECT_EQ(store::StoreWriter::Create(TempPath("x.store"), huge_budget)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store::StoreWriter::Create("/nonexistent-dir/x.store")
                .status()
                .code(),
            StatusCode::kIOError);

  auto writer = store::StoreWriter::Create(TempPath("store_closed.store"));
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->Close().ok());
  EXPECT_EQ(writer.value()->Append({}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(writer.value()->Close().ok());  // idempotent
}

// ---------------------------------------------------------------------
// Position-at-time and the zeta certificate
// ---------------------------------------------------------------------

TEST(StoreTest, PositionAtInterpolatesWithinTheStoredZetaBound) {
  const std::string path = TempPath("store_position.store");
  const traj::Trajectory t =
      testutil::GoldenTrajectory(datagen::DatasetKind::kGeoLife);
  const std::vector<traj::TimedSegment> all =
      SimplifyTimed(t, baselines::Algorithm::kOPERB, 1);
  const auto reader = WriteAndOpen(path, all, /*block_budget=*/1024);

  // The reconstruction carries the simplifier's guarantee: every
  // original sample lies within zeta of a reconstructed segment's line
  // (the DESIGN.md §8 certificate; quantization-free storage keeps it
  // exact).
  const auto rec = reader->ReconstructObject(1);
  ASSERT_TRUE(rec.ok());
  traj::PiecewiseRepresentation rep;
  for (const traj::TimedSegment& s : *rec) rep.Append(s.segment);
  EXPECT_TRUE(
      eval::VerifyErrorBound(t, rep, testutil::kGoldenZeta, 1e-9).bounded);

  // PositionAt returns a point on the covering stored segment for any
  // covered timestamp, including exact sample times and midpoints.
  for (std::size_t i = 0; i + 1 < t.size(); i += 7) {
    for (const double when : {t[i].t, (t[i].t + t[i + 1].t) / 2.0}) {
      const auto pos = reader->PositionAt(1, when);
      ASSERT_TRUE(pos.ok()) << pos.status().ToString() << " t=" << when;
      bool on_some_segment = false;
      for (const traj::TimedSegment& s : all) {
        if (s.t_start <= when && when <= s.t_end) {
          const geo::DirectedSegment seg = s.segment.AsSegment();
          const geo::Vec2 p = pos->pos();
          // Collinear within the segment's span (parameterized form).
          const geo::Vec2 d = seg.Displacement();
          const double cross = d.Cross(p - seg.start);
          if (std::abs(cross) <= 1e-6 * (1.0 + d.Norm())) {
            on_some_segment = true;
            break;
          }
        }
      }
      EXPECT_TRUE(on_some_segment) << "t=" << when;
    }
  }
  // Outside the stored time span: NotFound, not an invented answer.
  EXPECT_EQ(reader->PositionAt(1, t.back().t + 1e6).status().code(),
            StatusCode::kNotFound);
}

// ---------------------------------------------------------------------
// api::RunStoreQuery (the facade the CLI --query mode drives)
// ---------------------------------------------------------------------

TEST(StoreQueryApiTest, ValidatesShapeAndServesQueries) {
  const std::string path = TempPath("store_api.store");
  const traj::Trajectory t = testutil::ZigZag(80);
  const std::vector<traj::TimedSegment> all =
      SimplifyTimed(t, baselines::Algorithm::kOPERB, 6);
  { WriteAndOpen(path, all); }

  api::StoreQuery query;
  EXPECT_EQ(api::RunStoreQuery(query).status().code(),
            StatusCode::kInvalidArgument);  // no path
  query.store_path = path;
  EXPECT_EQ(api::RunStoreQuery(query).status().code(),
            StatusCode::kInvalidArgument);  // no shape
  query.has_object = true;
  query.object_id = 6;
  query.has_window = true;
  query.window.Extend(geo::Vec2{0, 0});
  query.window.Extend(geo::Vec2{1, 1});
  EXPECT_EQ(api::RunStoreQuery(query).status().code(),
            StatusCode::kInvalidArgument);  // both shapes
  query.has_window = false;

  const auto rec = api::RunStoreQuery(query);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->zeta, testutil::kGoldenZeta);
  ExpectTimedEqual(rec->segments, all, "api reconstruction");

  query.has_at = true;
  query.at_time = t[3].t;
  const auto pos = api::RunStoreQuery(query);
  ASSERT_TRUE(pos.ok()) << pos.status().ToString();
  EXPECT_TRUE(pos->has_position);

  // An --at outside an explicit [t_min, t_max] is a contradiction, not
  // a silently unconstrained lookup.
  query.t_min = 0.0;
  query.t_max = 1.0;
  query.at_time = 500.0;
  EXPECT_EQ(api::RunStoreQuery(query).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(StoreQueryApiTest, PipelineWriteStoreOnEnginePathRoundTrips) {
  const std::string path = TempPath("store_pipeline.store");
  // An interleaved 3-object feed through the StreamEngine with a
  // WriteStore stage: the store must end up holding exactly what the
  // report collected, per object, with times from the originals.
  std::vector<traj::ObjectTrajectory> objects;
  for (traj::ObjectId id = 0; id < 3; ++id) {
    objects.push_back(
        {id, testutil::Generated(datagen::DatasetKind::kSerCar, 300,
                                 100 + id)});
  }
  auto built = api::Pipeline::Builder()
                   .FromUpdates(traj::InterleaveRoundRobin(objects))
                   .Simplify("operb:zeta=40")
                   .WriteStore(path)
                   .Build();
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const auto report = built->Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->store_ran);
  EXPECT_TRUE(report->used_engine);
  EXPECT_EQ(report->store_stats.segments, report->segments);

  const auto reader = store::StoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader.value()->zeta(), 40.0);
  for (const traj::ObjectTrajectory& obj : objects) {
    const auto got = reader.value()->ReconstructObject(obj.object_id);
    ASSERT_TRUE(got.ok());
    // segments_out is sorted by id with per-object emission order kept.
    std::vector<traj::RepresentedSegment> expected;
    for (const traj::TaggedSegment& s : report->segments_out) {
      if (s.object_id == obj.object_id) expected.push_back(s.segment);
    }
    testutil::ExpectSegmentsEqual(
        Untimed(*got), expected,
        "pipeline store object " + std::to_string(obj.object_id));
    for (const traj::TimedSegment& s : *got) {
      EXPECT_EQ(s.t_start, obj.trajectory[s.segment.first_index].t);
      EXPECT_EQ(s.t_end, obj.trajectory[s.segment.last_index].t);
    }
  }
}

}  // namespace
}  // namespace operb
