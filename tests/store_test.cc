// Tests for the queryable compressed trajectory store (src/store) and
// its block codec (codec/segment_codec.h): exact round-trips against the
// in-memory sink output and the tests/golden fixtures, footer-metadata
// block skipping (the ISSUE's "provably skips >= 1 block" assertion),
// crash-recovery (truncated tails, corrupted payloads, the footer
// corruption matrix), shard-count and compaction-state equivalence, the
// R-tree-vs-flat-scan oracle, and the position-at-time error
// certificate.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/pipeline.h"
#include "api/store_query.h"
#include "baselines/simplifier.h"
#include "baselines/streaming.h"
#include "codec/segment_codec.h"
#include "codec/varint.h"
#include "eval/verifier.h"
#include "geo/bbox.h"
#include "store/compactor.h"
#include "store/env.h"
#include "store/format.h"
#include "store/manifest.h"
#include "store/reader.h"
#include "store/writer.h"
#include "test_util.h"
#include "traj/multi_object.h"
#include "traj/piecewise.h"

namespace operb {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

/// Sorted paths of the segment files inside a store directory.
std::vector<std::string> SegmentFilesIn(const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.substr(name.size() - 4) == ".seg") {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// The single segment file of a freshly written one-shard store.
std::string OnlySegmentFile(const std::string& dir) {
  const std::vector<std::string> files = SegmentFilesIn(dir);
  EXPECT_EQ(files.size(), 1u) << "expected exactly one segment file in "
                              << dir;
  return files.empty() ? std::string() : files.front();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Simplifies `t` through the streaming sink path and annotates every
/// segment with the covered points' timestamps — exactly what the
/// pipeline's WriteStore stage feeds the writer.
std::vector<traj::TimedSegment> SimplifyTimed(const traj::Trajectory& t,
                                              baselines::Algorithm algorithm,
                                              traj::ObjectId id) {
  const auto simplifier =
      baselines::MakeStreamingSimplifier(algorithm, testutil::kGoldenZeta);
  std::vector<traj::TimedSegment> out;
  simplifier->SetSink([&](const traj::RepresentedSegment& s) {
    out.push_back({id, s, t[s.first_index].t, t[s.last_index].t});
  });
  simplifier->Push(std::span<const geo::Point>(t.points()));
  simplifier->Finish();
  return out;
}

std::vector<traj::RepresentedSegment> Untimed(
    const std::vector<traj::TimedSegment>& timed) {
  std::vector<traj::RepresentedSegment> out;
  out.reserve(timed.size());
  for (const traj::TimedSegment& s : timed) out.push_back(s.segment);
  return out;
}

/// Writes `segments` to a fresh store at `path` and returns the reader.
std::unique_ptr<store::StoreReader> WriteAndOpen(
    const std::string& path, std::span<const traj::TimedSegment> segments,
    std::size_t block_budget = 64 * 1024,
    double zeta = testutil::kGoldenZeta) {
  store::StoreWriterOptions options;
  options.zeta = zeta;
  options.block_budget_bytes = block_budget;
  auto writer = store::StoreWriter::Create(path, options);
  EXPECT_TRUE(writer.ok()) << writer.status().ToString();
  for (const traj::TimedSegment& s : segments) {
    EXPECT_TRUE(writer.value()->Append(s).ok());
  }
  EXPECT_TRUE(writer.value()->Close().ok());
  auto reader = store::StoreReader::Open(path);
  EXPECT_TRUE(reader.ok()) << reader.status().ToString();
  return std::move(reader).value();
}

void ExpectTimedEqual(const std::vector<traj::TimedSegment>& actual,
                      const std::vector<traj::TimedSegment>& want,
                      const std::string& label) {
  testutil::ExpectSegmentsEqual(Untimed(actual), Untimed(want), label);
  ASSERT_EQ(actual.size(), want.size()) << label;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].object_id, want[i].object_id) << label << " " << i;
    EXPECT_EQ(actual[i].t_start, want[i].t_start) << label << " " << i;
    EXPECT_EQ(actual[i].t_end, want[i].t_end) << label << " " << i;
  }
}

// ---------------------------------------------------------------------
// Block codec
// ---------------------------------------------------------------------

TEST(SegmentCodecTest, RoundTripsExactlyIncludingPatchFlags) {
  const traj::Trajectory t = testutil::GoldenTrajectory(
      datagen::DatasetKind::kSerCar);
  // OPERB-A produces patch endpoints; two objects make two runs.
  std::vector<traj::TimedSegment> input =
      SimplifyTimed(t, baselines::Algorithm::kOPERBA, 7);
  const std::vector<traj::TimedSegment> second =
      SimplifyTimed(t, baselines::Algorithm::kOPERB, 40000000001ULL);
  input.insert(input.end(), second.begin(), second.end());

  std::vector<std::uint8_t> encoded;
  codec::EncodeSegmentBlock(input, &encoded);
  const auto decoded = codec::DecodeSegmentBlock(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectTimedEqual(*decoded, input, "codec round trip");
}

TEST(SegmentCodecTest, EmptyBlockAndCorruptionAreHandled) {
  std::vector<std::uint8_t> encoded;
  codec::EncodeSegmentBlock({}, &encoded);
  const auto decoded = codec::DecodeSegmentBlock(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());

  EXPECT_EQ(codec::DecodeSegmentBlock(std::span<const std::uint8_t>())
                .status()
                .code(),
            StatusCode::kCorruption);
  // Truncate a real block mid-stream.
  const traj::Trajectory t = testutil::StraightLine(20);
  codec::EncodeSegmentBlock(SimplifyTimed(t, baselines::Algorithm::kOPERB, 1),
                            &encoded);
  const std::span<const std::uint8_t> half(encoded.data(),
                                           encoded.size() / 2);
  EXPECT_EQ(codec::DecodeSegmentBlock(half).status().code(),
            StatusCode::kCorruption);
}

TEST(SegmentCodecTest, VarintRejectsOverlongEncodings) {
  // 9 continuation bytes then 0x7F: the 10th byte's upper bits would
  // shift past bit 63 — must fail, not silently truncate.
  const std::vector<std::uint8_t> overlong = {0x80, 0x80, 0x80, 0x80, 0x80,
                                              0x80, 0x80, 0x80, 0x80, 0x7F};
  std::size_t pos = 0;
  std::uint64_t v = 0;
  EXPECT_FALSE(codec::GetVarint(overlong, &pos, &v));
  // The canonical 10-byte encoding of UINT64_MAX still decodes.
  std::vector<std::uint8_t> max_bytes;
  codec::PutVarint(std::numeric_limits<std::uint64_t>::max(), &max_bytes);
  ASSERT_EQ(max_bytes.size(), 10u);
  pos = 0;
  EXPECT_TRUE(codec::GetVarint(max_bytes, &pos, &v));
  EXPECT_EQ(v, std::numeric_limits<std::uint64_t>::max());
}

// ---------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------

/// The acceptance matrix: every algorithm x every golden profile must
/// round-trip through the store bit-identically to the in-memory sink
/// output, and therefore to tests/golden.
class StoreGoldenTest
    : public testing::TestWithParam<datagen::DatasetKind> {};

TEST_P(StoreGoldenTest, AllAlgorithmsRoundTripBitIdentically) {
  const datagen::DatasetKind kind = GetParam();
  const traj::Trajectory t = testutil::GoldenTrajectory(kind);
  const std::string path =
      TempPath("store_golden_" + std::string(datagen::DatasetName(kind)) +
               ".store");

  // One store per profile; object id = algorithm index.
  std::vector<std::vector<traj::TimedSegment>> expected;
  {
    store::StoreWriterOptions options;
    options.zeta = testutil::kGoldenZeta;
    auto writer = store::StoreWriter::Create(path, options);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    traj::ObjectId id = 0;
    for (const baselines::Algorithm algorithm : baselines::AllAlgorithms()) {
      expected.push_back(SimplifyTimed(t, algorithm, id));
      for (const traj::TimedSegment& s : expected.back()) {
        ASSERT_TRUE(writer.value()->Append(s).ok());
      }
      ++id;
    }
    ASSERT_TRUE(writer.value()->Close().ok());
  }

  const auto reader = store::StoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader.value()->zeta(), testutil::kGoldenZeta);
  EXPECT_FALSE(reader.value()->open_info().tail_dropped);

  traj::ObjectId id = 0;
  for (const baselines::Algorithm algorithm : baselines::AllAlgorithms()) {
    const std::string label =
        std::string(baselines::AlgorithmName(algorithm)) + " on " +
        std::string(datagen::DatasetName(kind));
    const auto got = reader.value()->ReconstructObject(id);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectTimedEqual(*got, expected[id], label);

    // And directly against the committed fixtures: the store is the
    // third pinned path (batch, sink, store) to the same bytes.
    const std::vector<traj::RepresentedSegment> golden = testutil::LoadGolden(
        std::string(OPERB_GOLDEN_DIR) + "/golden_" +
        std::string(baselines::AlgorithmName(algorithm)) + "_" +
        std::string(datagen::DatasetName(kind)) + ".csv");
    if (!HasFailure()) {
      testutil::ExpectSegmentsEqual(Untimed(*got), golden,
                                    label + " vs golden fixture");
    }
    ++id;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, StoreGoldenTest,
    testing::ValuesIn(datagen::AllDatasetKinds()),
    [](const testing::TestParamInfo<datagen::DatasetKind>& info) {
      return std::string(datagen::DatasetName(info.param));
    });

// ---------------------------------------------------------------------
// Edge cases
// ---------------------------------------------------------------------

TEST(StoreTest, EmptyStoreServesEmptyAnswers) {
  const std::string path = TempPath("store_empty.store");
  {
    auto writer = store::StoreWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->Close().ok());
    EXPECT_EQ(writer.value()->stats().blocks, 0u);
    EXPECT_EQ(writer.value()->stats().segments, 0u);
  }
  const auto reader = store::StoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader.value()->block_count(), 0u);
  EXPECT_EQ(reader.value()->segment_count(), 0u);

  const auto rec = reader.value()->ReconstructObject(0);
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec->empty());

  geo::BoundingBox window;
  window.Extend(geo::Vec2{-1e9, -1e9});
  window.Extend(geo::Vec2{1e9, 1e9});
  const auto win = reader.value()->QueryWindow(window);
  ASSERT_TRUE(win.ok());
  EXPECT_TRUE(win->empty());

  EXPECT_EQ(reader.value()->PositionAt(0, 0.0).status().code(),
            StatusCode::kNotFound);
}

TEST(StoreTest, SingleSegmentObjectRoundTrips) {
  const std::string path = TempPath("store_single.store");
  const traj::Trajectory t = testutil::StraightLine(2);
  const std::vector<traj::TimedSegment> segments =
      SimplifyTimed(t, baselines::Algorithm::kOPERB, 42);
  ASSERT_EQ(segments.size(), 1u);
  const auto reader = WriteAndOpen(path, segments);
  const auto got = reader->ReconstructObject(42);
  ASSERT_TRUE(got.ok());
  ExpectTimedEqual(*got, segments, "single segment");
  // The unknown object answers empty, not an error.
  const auto other = reader->ReconstructObject(41);
  ASSERT_TRUE(other.ok());
  EXPECT_TRUE(other->empty());
}

TEST(StoreTest, TimeRangeStraddlingBlockBoundaries) {
  const std::string path = TempPath("store_straddle.store");
  const traj::Trajectory t =
      testutil::Generated(datagen::DatasetKind::kSerCar, 3000, 17);
  const std::vector<traj::TimedSegment> all =
      SimplifyTimed(t, baselines::Algorithm::kOPERB, 5);
  // Minimum budget => many small blocks of one object.
  const auto reader = WriteAndOpen(path, all, /*block_budget=*/1024);
  ASSERT_GE(reader->block_count(), 3u)
      << "fixture too small to form multiple blocks";

  // Full reconstruction equals the in-memory sequence despite blocking.
  const auto full = reader->ReconstructObject(5);
  ASSERT_TRUE(full.ok());
  ExpectTimedEqual(*full, all, "multi-block full reconstruction");

  // A range centered on a block boundary: expected = the time-overlap
  // filter of the in-memory sequence.
  const double boundary = reader->segment_count() > 0
                              ? all[all.size() / 2].t_start
                              : 0.0;
  const double t0 = boundary - 40.0;
  const double t1 = boundary + 40.0;
  std::vector<traj::TimedSegment> expected;
  for (const traj::TimedSegment& s : all) {
    if (s.t_start <= t1 && t0 <= s.t_end) expected.push_back(s);
  }
  store::StoreQueryStats stats;
  const auto ranged = reader->ReconstructObject(5, t0, t1, &stats);
  ASSERT_TRUE(ranged.ok());
  ExpectTimedEqual(*ranged, expected, "straddling range");
  EXPECT_FALSE(expected.empty());
  // The range prunes: some block outside [t0, t1] was skipped unread.
  EXPECT_GE(stats.blocks_skipped, 1u);
}

TEST(StoreTest, WindowQuerySkipsBlocksOnFooterMetadata) {
  const std::string path = TempPath("store_window.store");
  // Two spatially disjoint objects, far beyond any zeta inflation.
  const traj::Trajectory near_origin = testutil::ZigZag(120);
  traj::Trajectory far_away;
  for (const geo::Point& p : testutil::ZigZag(120)) {
    far_away.AppendUnchecked({p.x + 1e6, p.y + 1e6, p.t});
  }
  std::vector<traj::TimedSegment> all =
      SimplifyTimed(near_origin, baselines::Algorithm::kOPERB, 1);
  const std::vector<traj::TimedSegment> far =
      SimplifyTimed(far_away, baselines::Algorithm::kOPERB, 2);
  const std::size_t near_count = all.size();
  all.insert(all.end(), far.begin(), far.end());

  // One object per block: budget below one object's encoding.
  const auto reader = WriteAndOpen(path, all, /*block_budget=*/1024);
  ASSERT_GE(reader->block_count(), 2u);

  geo::BoundingBox window;
  window.Extend(geo::Vec2{-100.0, -100.0});
  window.Extend(geo::Vec2{3000.0, 100.0});

  // The acceptance assertion: the far blocks are skipped on footer
  // metadata alone.
  store::StoreQueryStats stats;
  const auto got = reader->QueryWindow(window, -kInf, kInf, &stats);
  ASSERT_TRUE(got.ok());
  EXPECT_GE(stats.blocks_skipped, 1u);
  EXPECT_EQ(stats.blocks_skipped + stats.blocks_scanned,
            stats.blocks_total);
  EXPECT_FALSE(got->empty());
  EXPECT_LE(got->size(), near_count);
  for (const traj::TimedSegment& s : *got) {
    EXPECT_EQ(s.object_id, 1u) << "far object leaked into the window";
  }

  // A window touching nothing: every block is skipped, none decoded.
  geo::BoundingBox nowhere;
  nowhere.Extend(geo::Vec2{5e7, 5e7});
  nowhere.Extend(geo::Vec2{5e7 + 10, 5e7 + 10});
  store::StoreQueryStats none_stats;
  const auto none = reader->QueryWindow(nowhere, -kInf, kInf, &none_stats);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
  EXPECT_EQ(none_stats.blocks_scanned, 0u);
  EXPECT_EQ(none_stats.blocks_skipped, none_stats.blocks_total);
}

TEST(StoreTest, ReopenAfterTruncationDropsOnlyTheTail) {
  const std::string path = TempPath("store_truncate.store");
  const traj::Trajectory t =
      testutil::GoldenTrajectory(datagen::DatasetKind::kSerCar);
  const std::vector<traj::TimedSegment> all =
      SimplifyTimed(t, baselines::Algorithm::kOPERB, 9);
  std::size_t blocks_before = 0;
  {
    const auto reader = WriteAndOpen(path, all, /*block_budget=*/1024);
    blocks_before = reader->block_count();
    ASSERT_GE(blocks_before, 2u);
  }
  // Chop into the last block's footer inside the shard's segment file: a
  // crash mid-append (the manifest still names the file).
  const std::string segment = OnlySegmentFile(path);
  const std::string bytes = ReadFileBytes(segment);
  WriteFileBytes(segment, bytes.substr(0, bytes.size() - 17));
  const auto reopened = store::StoreReader::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(reopened.value()->open_info().tail_dropped);
  EXPECT_GT(reopened.value()->open_info().dropped_bytes, 0u);
  EXPECT_EQ(reopened.value()->block_count(), blocks_before - 1);

  // The surviving prefix still answers, and answers correctly: it is a
  // prefix of the emission order.
  const auto got = reopened.value()->ReconstructObject(9);
  ASSERT_TRUE(got.ok());
  ASSERT_LT(got->size(), all.size());
  ExpectTimedEqual(
      *got,
      std::vector<traj::TimedSegment>(all.begin(),
                                      all.begin() + got->size()),
      "post-truncation prefix");
}

TEST(StoreTest, CorruptPayloadSurfacesAsCorruptionOnRead) {
  const std::string path = TempPath("store_corrupt.store");
  const traj::Trajectory t = testutil::ZigZag(60);
  const std::vector<traj::TimedSegment> all =
      SimplifyTimed(t, baselines::Algorithm::kOPERB, 3);
  { WriteAndOpen(path, all); }
  const std::string segment = OnlySegmentFile(path);
  std::string bytes = ReadFileBytes(segment);
  // Flip one payload byte (after the 24-byte header + 4-byte length).
  bytes[store::kFileHeaderBytes + 4 + 5] ^= 0x40;
  WriteFileBytes(segment, bytes);
  // Footers are intact, so the open scan passes: payload corruption is
  // caught lazily — and through both candidate-selection paths.
  const auto reader = store::StoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();  // lazy checksum
  EXPECT_EQ(reader.value()->ReconstructObject(3).status().code(),
            StatusCode::kCorruption);
  geo::BoundingBox everywhere;
  everywhere.Extend(geo::Vec2{-1e9, -1e9});
  everywhere.Extend(geo::Vec2{1e9, 1e9});
  EXPECT_EQ(reader.value()
                ->QueryWindow(everywhere, -kInf, kInf, nullptr,
                              store::ScanMode::kIndexed)
                .status()
                .code(),
            StatusCode::kCorruption);
  EXPECT_EQ(reader.value()
                ->QueryWindow(everywhere, -kInf, kInf, nullptr,
                              store::ScanMode::kFlatScan)
                .status()
                .code(),
            StatusCode::kCorruption);
}

TEST(StoreTest, InvertedFooterRangesFailOpenWithStatus) {
  // A hand-crafted block whose checksums are internally consistent but
  // whose id range is inverted: the open scan must answer Corruption
  // with a field-naming message — never a CHECK abort or a silent
  // acceptance (satellite: ValidateFooterRanges through Status).
  const std::string path = TempPath("store_inverted.store");
  const traj::Trajectory t = testutil::ZigZag(40);
  const std::vector<traj::TimedSegment> all =
      SimplifyTimed(t, baselines::Algorithm::kOPERB, 3);
  { WriteAndOpen(path, all); }
  const std::string segment = OnlySegmentFile(path);
  const std::string original = ReadFileBytes(segment);
  ASSERT_GT(original.size(), store::kBlockFooterBytes);

  // The file ends with the last block's footer; rewrite it with an
  // inverted id range and recomputed checksums.
  const std::size_t footer_at = original.size() - store::kBlockFooterBytes;
  const std::span<const std::uint8_t> footer_bytes(
      reinterpret_cast<const std::uint8_t*>(original.data()) + footer_at,
      store::kBlockFooterBytes);
  auto footer = store::DecodeFooter(footer_bytes, store::kFormatVersion);
  ASSERT_TRUE(footer.ok()) << footer.status().ToString();
  footer->object_min = footer->object_max + 1;  // inverted
  const std::span<const std::uint8_t> payload(
      reinterpret_cast<const std::uint8_t*>(original.data()) + footer_at -
          footer->payload_bytes,
      footer->payload_bytes);
  footer->checksum = store::BlockChecksum(payload, *footer);
  footer->footer_checksum = store::FooterChecksum(*footer);
  std::vector<std::uint8_t> encoded;
  store::EncodeFooter(*footer, &encoded);
  ASSERT_EQ(encoded.size(), store::kBlockFooterBytes);
  std::string patched = original;
  std::copy(encoded.begin(), encoded.end(),
            reinterpret_cast<std::uint8_t*>(patched.data()) + footer_at);
  WriteFileBytes(segment, patched);

  const auto reopened = store::StoreReader::Open(path);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
  EXPECT_NE(reopened.status().ToString().find("inverted object id range"),
            std::string::npos)
      << reopened.status().ToString();

  // The same treatment for the time interval and the bounding box.
  auto patch_and_open = [&](auto mutate) {
    auto f = store::DecodeFooter(footer_bytes, store::kFormatVersion);
    EXPECT_TRUE(f.ok());
    mutate(&*f);
    f->checksum = store::BlockChecksum(payload, *f);
    f->footer_checksum = store::FooterChecksum(*f);
    std::vector<std::uint8_t> bytes;
    store::EncodeFooter(*f, &bytes);
    std::string next = original;
    std::copy(bytes.begin(), bytes.end(),
              reinterpret_cast<std::uint8_t*>(next.data()) + footer_at);
    WriteFileBytes(segment, next);
    return store::StoreReader::Open(path).status();
  };
  const Status bad_time = patch_and_open([](store::BlockFooter* f) {
    f->t_min = f->t_max + 1.0;
  });
  EXPECT_EQ(bad_time.code(), StatusCode::kCorruption);
  EXPECT_NE(bad_time.ToString().find("inverted time interval"),
            std::string::npos);
  const Status bad_box = patch_and_open([](store::BlockFooter* f) {
    f->min_x = f->max_x + 1.0;
  });
  EXPECT_EQ(bad_box.code(), StatusCode::kCorruption);
  EXPECT_NE(bad_box.ToString().find("inverted bounding box"),
            std::string::npos);
}

TEST(StoreTest, FooterCorruptionMatrixAlwaysSurfacesAsCorruption) {
  // The corruption matrix (satellite): flip one byte at *every* offset of
  // a sealed block's footer; every flip must surface as Corruption at
  // open — caught footer-only by the v2 footer checksum (or the footer
  // magic / range validation), never a crash or a silently wrong answer.
  const std::string path = TempPath("store_matrix.store");
  const traj::Trajectory t = testutil::ZigZag(40);
  const std::vector<traj::TimedSegment> all =
      SimplifyTimed(t, baselines::Algorithm::kOPERB, 3);
  { WriteAndOpen(path, all); }
  const std::string segment = OnlySegmentFile(path);
  const std::string original = ReadFileBytes(segment);
  ASSERT_GT(original.size(), store::kBlockFooterBytes);
  const std::size_t footer_at = original.size() - store::kBlockFooterBytes;

  for (std::size_t offset = 0; offset < store::kBlockFooterBytes; ++offset) {
    std::string corrupted = original;
    corrupted[footer_at + offset] =
        static_cast<char>(corrupted[footer_at + offset] ^ 0x01);
    WriteFileBytes(segment, corrupted);
    const auto reopened = store::StoreReader::Open(path);
    ASSERT_FALSE(reopened.ok())
        << "flipped footer byte " << offset << " went undetected";
    EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption)
        << "footer byte " << offset << ": "
        << reopened.status().ToString();
  }
  // Restore: the pristine file opens again (the matrix itself did not
  // wear anything out).
  WriteFileBytes(segment, original);
  EXPECT_TRUE(store::StoreReader::Open(path).ok());
}

TEST(StoreTest, OpenRejectsForeignAndTruncatedHeaders) {
  const std::string path = TempPath("store_badheader.store");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "definitely not a store";
  }
  EXPECT_EQ(store::StoreReader::Open(path).status().code(),
            StatusCode::kCorruption);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "xy";
  }
  EXPECT_EQ(store::StoreReader::Open(path).status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(store::StoreReader::Open(TempPath("no_such.store"))
                .status()
                .code(),
            StatusCode::kIOError);
}

TEST(StoreTest, WriterRejectsBadOptionsAndLateAppends) {
  store::StoreWriterOptions bad_zeta;
  bad_zeta.zeta = 0.0;
  EXPECT_EQ(store::StoreWriter::Create(TempPath("x.store"), bad_zeta)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  store::StoreWriterOptions bad_budget;
  bad_budget.block_budget_bytes = 16;
  EXPECT_EQ(store::StoreWriter::Create(TempPath("x.store"), bad_budget)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // A budget above the u32 frame headroom is rejected up front (a
  // payload overshooting 4 GiB would wrap the length prefix).
  store::StoreWriterOptions huge_budget;
  huge_budget.block_budget_bytes = std::size_t{5} << 30;
  EXPECT_EQ(store::StoreWriter::Create(TempPath("x.store"), huge_budget)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store::StoreWriter::Create("/nonexistent-dir/x.store")
                .status()
                .code(),
            StatusCode::kIOError);

  auto writer = store::StoreWriter::Create(TempPath("store_closed.store"));
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->Close().ok());
  EXPECT_EQ(writer.value()->Append({}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(writer.value()->Close().ok());  // idempotent
}

// ---------------------------------------------------------------------
// Sharding and compaction equivalence
// ---------------------------------------------------------------------

/// One fixture feed: 12 objects over three profiles, simplified with
/// OPERB at the golden zeta.
std::vector<std::vector<traj::TimedSegment>> MultiObjectFeed() {
  std::vector<std::vector<traj::TimedSegment>> per_object;
  for (traj::ObjectId id = 0; id < 12; ++id) {
    const traj::Trajectory t = testutil::Generated(
        datagen::DatasetKind::kTaxi, 200, 50 + id);
    per_object.push_back(SimplifyTimed(t, baselines::Algorithm::kOPERB, id));
  }
  return per_object;
}

/// Everything a query equivalence check compares: per-object
/// reconstructions plus a window answered by both scan modes.
struct QuerySnapshot {
  std::vector<std::vector<traj::TimedSegment>> reconstructions;
  std::vector<traj::TimedSegment> window_indexed;
  std::vector<traj::TimedSegment> window_flat;
  store::StoreQueryStats indexed_stats;
  store::StoreQueryStats flat_stats;
};

QuerySnapshot Snapshot(const std::string& path, std::size_t objects,
                       const geo::BoundingBox& window) {
  QuerySnapshot snap;
  const auto reader = store::StoreReader::Open(path);
  EXPECT_TRUE(reader.ok()) << reader.status().ToString();
  if (!reader.ok()) return snap;
  for (traj::ObjectId id = 0; id < objects; ++id) {
    auto rec = reader.value()->ReconstructObject(id);
    EXPECT_TRUE(rec.ok()) << rec.status().ToString();
    snap.reconstructions.push_back(rec.ok() ? *std::move(rec)
                                            : std::vector<traj::TimedSegment>());
  }
  auto indexed = reader.value()->QueryWindow(window, -kInf, kInf,
                                             &snap.indexed_stats,
                                             store::ScanMode::kIndexed);
  EXPECT_TRUE(indexed.ok()) << indexed.status().ToString();
  if (indexed.ok()) snap.window_indexed = *std::move(indexed);
  auto flat = reader.value()->QueryWindow(window, -kInf, kInf,
                                          &snap.flat_stats,
                                          store::ScanMode::kFlatScan);
  EXPECT_TRUE(flat.ok()) << flat.status().ToString();
  if (flat.ok()) snap.window_flat = *std::move(flat);
  return snap;
}

void ExpectSnapshotsEqual(const QuerySnapshot& actual,
                          const QuerySnapshot& want,
                          const std::string& label) {
  ASSERT_EQ(actual.reconstructions.size(), want.reconstructions.size());
  for (std::size_t i = 0; i < actual.reconstructions.size(); ++i) {
    ExpectTimedEqual(actual.reconstructions[i], want.reconstructions[i],
                     label + " object " + std::to_string(i));
  }
  ExpectTimedEqual(actual.window_indexed, want.window_indexed,
                   label + " window (indexed)");
  ExpectTimedEqual(actual.window_flat, want.window_flat,
                   label + " window (flat)");
}

TEST(StoreShardingTest, QueriesAreByteIdenticalAcrossShardCounts) {
  const std::vector<std::vector<traj::TimedSegment>> per_object =
      MultiObjectFeed();
  geo::BoundingBox window;
  window.Extend(geo::Vec2{-500.0, -500.0});
  window.Extend(geo::Vec2{1500.0, 1500.0});

  QuerySnapshot reference;
  bool have_reference = false;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{8}}) {
    const std::string path =
        TempPath("store_shards_" + std::to_string(shards) + ".store");
    store::StoreWriterOptions options;
    options.zeta = testutil::kGoldenZeta;
    options.block_budget_bytes = 2048;
    options.num_shards = shards;
    auto writer = store::StoreWriter::Create(path, options);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (const auto& object : per_object) {
      for (const traj::TimedSegment& s : object) {
        ASSERT_TRUE(writer.value()->Append(s).ok());
      }
    }
    ASSERT_TRUE(writer.value()->Close().ok());

    const auto reader = store::StoreReader::Open(path);
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    EXPECT_EQ(reader.value()->num_shards(), shards);
    EXPECT_EQ(reader.value()->file_count(), shards);

    QuerySnapshot snap = Snapshot(path, per_object.size(), window);
    ASSERT_FALSE(HasFatalFailure());
    // Reconstructions equal the in-memory emission at every shard count.
    for (std::size_t id = 0; id < per_object.size(); ++id) {
      ExpectTimedEqual(snap.reconstructions[id], per_object[id],
                       "shards=" + std::to_string(shards) + " object " +
                           std::to_string(id));
    }
    // Indexed and flat scans agree on results *and* on the candidate
    // set (the index's entry predicates are the flat scan's predicates).
    ExpectTimedEqual(snap.window_indexed, snap.window_flat,
                     "indexed vs flat, shards=" + std::to_string(shards));
    EXPECT_EQ(snap.indexed_stats.blocks_scanned,
              snap.flat_stats.blocks_scanned);
    EXPECT_EQ(snap.indexed_stats.blocks_skipped,
              snap.flat_stats.blocks_skipped);
    EXPECT_LE(snap.indexed_stats.index_nodes_visited,
              reader.value()->index_node_count());
    EXPECT_EQ(snap.flat_stats.index_nodes_visited, 0u);
    if (have_reference) {
      ExpectSnapshotsEqual(snap, reference,
                           "shards=" + std::to_string(shards) +
                               " vs shards=1");
    } else {
      reference = std::move(snap);
      have_reference = true;
    }
  }
}

TEST(StoreCompactionTest, QueriesAreByteIdenticalAcrossCompactionStates) {
  // Three append sessions x 4 shards: every shard holds three level-0
  // files — the LSM shape compaction exists for. Queries must answer
  // byte-identically uncompacted, at every mid-compaction manifest
  // generation, and fully compacted (satellite 3).
  const std::string path = TempPath("store_compact_eq.store");
  const std::vector<std::vector<traj::TimedSegment>> per_object =
      MultiObjectFeed();
  store::StoreWriterOptions options;
  options.zeta = testutil::kGoldenZeta;
  options.block_budget_bytes = 1024;  // many small frames to merge
  options.num_shards = 4;
  for (int session = 0; session < 3; ++session) {
    options.append = session > 0;
    auto writer = store::StoreWriter::Create(path, options);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (std::size_t id = static_cast<std::size_t>(session) * 4;
         id < static_cast<std::size_t>(session + 1) * 4; ++id) {
      for (const traj::TimedSegment& s : per_object[id]) {
        ASSERT_TRUE(writer.value()->Append(s).ok());
      }
    }
    ASSERT_TRUE(writer.value()->Close().ok());
  }
  ASSERT_EQ(SegmentFilesIn(path).size(), 12u) << "3 sessions x 4 shards";

  geo::BoundingBox window;
  window.Extend(geo::Vec2{-500.0, -500.0});
  window.Extend(geo::Vec2{1500.0, 1500.0});
  const QuerySnapshot uncompacted =
      Snapshot(path, per_object.size(), window);
  ASSERT_FALSE(HasFatalFailure());

  // Mid-compaction: compact two of the four shards, one generation
  // each. The manifest now mixes merged and unmerged shards.
  store::Compactor compactor(path);
  for (const std::uint32_t shard : {0u, 2u}) {
    const auto mid = compactor.CompactShard(shard);
    ASSERT_TRUE(mid.ok()) << mid.status().ToString();
    EXPECT_EQ(mid->generations_committed, 1u);
    const QuerySnapshot snap = Snapshot(path, per_object.size(), window);
    ASSERT_FALSE(HasFatalFailure());
    ExpectSnapshotsEqual(snap, uncompacted,
                         "mid-compaction after shard " +
                             std::to_string(shard));
  }

  // Full pass: every remaining shard merges; files drop to one per
  // shard.
  const auto full = compactor.Run();
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_GE(full->shards_compacted, 2u);
  EXPECT_GT(full->write_amplification, 0.0);
  EXPECT_EQ(SegmentFilesIn(path).size(), 4u);
  const QuerySnapshot compacted = Snapshot(path, per_object.size(), window);
  ASSERT_FALSE(HasFatalFailure());
  ExpectSnapshotsEqual(compacted, uncompacted, "fully compacted");

  // Idempotence: a second pass finds nothing to do.
  const auto again = compactor.Run();
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->shards_compacted, 0u);
  EXPECT_EQ(again->generations_committed, 0u);

  // Out-of-range shard: InvalidArgument, not a crash.
  EXPECT_EQ(compactor.CompactShard(99).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(StoreCompactionTest, CompactionDuringLiveSessionKeepsEmissionOrder) {
  // An object's data spans a sealed first session and a still-active
  // second one, and a compaction commits in between. The merged (older)
  // file must slot into the manifest at the sealed inputs' position —
  // ahead of the active session's file — or the reader replays the
  // object's newer segments before its older ones, and the next
  // compaction bakes that order in permanently.
  const std::string path = TempPath("store_compact_live.store");
  const std::vector<std::vector<traj::TimedSegment>> per_object =
      MultiObjectFeed();
  const std::vector<traj::TimedSegment>& all = per_object[0];
  ASSERT_GE(all.size(), 4u);
  const std::size_t half = all.size() / 2;

  store::StoreWriterOptions options;
  options.zeta = testutil::kGoldenZeta;
  options.block_budget_bytes = 1024;
  options.num_shards = 2;
  {
    auto first = store::StoreWriter::Create(path, options);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    for (std::size_t i = 0; i < half; ++i) {
      ASSERT_TRUE(first.value()->Append(all[i]).ok());
    }
    ASSERT_TRUE(first.value()->Close().ok());
  }

  store::StoreWriterOptions session = options;
  session.append = true;
  auto second = store::StoreWriter::Create(path, session);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  for (std::size_t i = half; i < all.size(); ++i) {
    ASSERT_TRUE(second.value()->Append(all[i]).ok());
  }

  // The compaction commits while the second session is live: it merges
  // only the first session's sealed file of the object's shard.
  store::Compactor compactor(path);
  const std::uint32_t shard = static_cast<std::uint32_t>(
      traj::ShardOfObject(all[0].object_id, options.num_shards));
  const auto mid = compactor.CompactShard(shard);
  ASSERT_TRUE(mid.ok()) << mid.status().ToString();
  EXPECT_EQ(mid->generations_committed, 1u);

  ASSERT_TRUE(second.value()->Close().ok());

  const auto reader = store::StoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  const auto rec = reader.value()->ReconstructObject(all[0].object_id);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ExpectTimedEqual(*rec, all, "object spanning sealed file + live session");

  // And the order survives the next full pass merging both halves.
  ASSERT_TRUE(compactor.Run().ok());
  const auto compacted = store::StoreReader::Open(path);
  ASSERT_TRUE(compacted.ok()) << compacted.status().ToString();
  const auto rec2 = compacted.value()->ReconstructObject(all[0].object_id);
  ASSERT_TRUE(rec2.ok()) << rec2.status().ToString();
  ExpectTimedEqual(*rec2, all, "after full compaction");
}

TEST(StoreCompactionTest, AppendSessionValidatesManifestAgreement) {
  const std::string path = TempPath("store_append_validate.store");
  store::StoreWriterOptions options;
  options.zeta = testutil::kGoldenZeta;
  options.num_shards = 2;
  {
    auto writer = store::StoreWriter::Create(path, options);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    ASSERT_TRUE(writer.value()->Close().ok());
  }
  // An append session must agree with the manifest on the partition and
  // the error bound — both are properties of the *store*, not of a
  // session.
  store::StoreWriterOptions wrong_shards = options;
  wrong_shards.append = true;
  wrong_shards.num_shards = 4;
  EXPECT_EQ(store::StoreWriter::Create(path, wrong_shards).status().code(),
            StatusCode::kInvalidArgument);
  store::StoreWriterOptions wrong_zeta = options;
  wrong_zeta.append = true;
  wrong_zeta.zeta = options.zeta * 2;
  EXPECT_EQ(store::StoreWriter::Create(path, wrong_zeta).status().code(),
            StatusCode::kInvalidArgument);
  // Append into a store that does not exist yet: IOError, not a silent
  // fresh create.
  const std::string missing = TempPath("store_no_append.store");
  std::filesystem::remove_all(missing);
  store::StoreWriterOptions fresh_append = options;
  fresh_append.append = true;
  EXPECT_EQ(store::StoreWriter::Create(missing, fresh_append)
                .status()
                .code(),
            StatusCode::kIOError);
}

TEST(StoreCompactionTest, ConcurrentAppendQueryAndBackgroundCompaction) {
  // The TSan target: an appending writer, polling readers and the
  // BackgroundCompactor all live on one store directory at once. The
  // invariants: no data race (TSan), readers only ever see committed
  // manifest generations (never Corruption), and the final state holds
  // every session's data.
  const std::string path = TempPath("store_concurrent.store");
  const std::vector<std::vector<traj::TimedSegment>> per_object =
      MultiObjectFeed();
  store::StoreWriterOptions options;
  options.zeta = testutil::kGoldenZeta;
  options.block_budget_bytes = 1024;
  options.num_shards = 2;
  {
    auto writer = store::StoreWriter::Create(path, options);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (const traj::TimedSegment& s : per_object[0]) {
      ASSERT_TRUE(writer.value()->Append(s).ok());
    }
    ASSERT_TRUE(writer.value()->Close().ok());
  }

  store::BackgroundCompactor background(path, {},
                                        std::chrono::milliseconds(1));
  background.Start();

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> successful_reads{0};
  std::thread poller([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto reader = store::StoreReader::Open(path);
      if (!reader.ok()) {
        // A commit can race the open; the retry loop absorbs most of
        // it, and what remains must be IOError, never Corruption.
        EXPECT_EQ(reader.status().code(), StatusCode::kIOError)
            << reader.status().ToString();
        continue;
      }
      const auto rec = reader.value()->ReconstructObject(0);
      if (rec.ok() && !rec->empty()) {
        successful_reads.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  for (std::size_t id = 1; id < per_object.size(); ++id) {
    store::StoreWriterOptions session = options;
    session.append = true;
    auto writer = store::StoreWriter::Create(path, session);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (const traj::TimedSegment& s : per_object[id]) {
      ASSERT_TRUE(writer.value()->Append(s).ok());
    }
    ASSERT_TRUE(writer.value()->Close().ok());
  }

  stop.store(true);
  poller.join();
  // Racing Stop() calls: exactly one joins, neither crashes (the
  // destructor adds a third, sequential, call).
  std::thread stopper([&] { background.Stop(); });
  background.Stop();
  stopper.join();
  EXPECT_TRUE(background.last_status().ok())
      << background.last_status().ToString();
  EXPECT_GE(successful_reads.load(), 1u);

  // Quiescent verification: one final pass, then every object answers
  // exactly its emission.
  store::Compactor compactor(path);
  ASSERT_TRUE(compactor.Run().ok());
  const auto reader = store::StoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  for (std::size_t id = 0; id < per_object.size(); ++id) {
    const auto rec = reader.value()->ReconstructObject(id);
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    ExpectTimedEqual(*rec, per_object[id],
                     "post-churn object " + std::to_string(id));
  }
}

// ---------------------------------------------------------------------
// Position-at-time and the zeta certificate
// ---------------------------------------------------------------------

TEST(StoreTest, PositionAtInterpolatesWithinTheStoredZetaBound) {
  const std::string path = TempPath("store_position.store");
  const traj::Trajectory t =
      testutil::GoldenTrajectory(datagen::DatasetKind::kGeoLife);
  const std::vector<traj::TimedSegment> all =
      SimplifyTimed(t, baselines::Algorithm::kOPERB, 1);
  const auto reader = WriteAndOpen(path, all, /*block_budget=*/1024);

  // The reconstruction carries the simplifier's guarantee: every
  // original sample lies within zeta of a reconstructed segment's line
  // (the DESIGN.md §8 certificate; quantization-free storage keeps it
  // exact).
  const auto rec = reader->ReconstructObject(1);
  ASSERT_TRUE(rec.ok());
  traj::PiecewiseRepresentation rep;
  for (const traj::TimedSegment& s : *rec) rep.Append(s.segment);
  EXPECT_TRUE(
      eval::VerifyErrorBound(t, rep, testutil::kGoldenZeta, 1e-9).bounded);

  // PositionAt returns a point on the covering stored segment for any
  // covered timestamp, including exact sample times and midpoints.
  for (std::size_t i = 0; i + 1 < t.size(); i += 7) {
    for (const double when : {t[i].t, (t[i].t + t[i + 1].t) / 2.0}) {
      const auto pos = reader->PositionAt(1, when);
      ASSERT_TRUE(pos.ok()) << pos.status().ToString() << " t=" << when;
      bool on_some_segment = false;
      for (const traj::TimedSegment& s : all) {
        if (s.t_start <= when && when <= s.t_end) {
          const geo::DirectedSegment seg = s.segment.AsSegment();
          const geo::Vec2 p = pos->pos();
          // Collinear within the segment's span (parameterized form).
          const geo::Vec2 d = seg.Displacement();
          const double cross = d.Cross(p - seg.start);
          if (std::abs(cross) <= 1e-6 * (1.0 + d.Norm())) {
            on_some_segment = true;
            break;
          }
        }
      }
      EXPECT_TRUE(on_some_segment) << "t=" << when;
    }
  }
  // Outside the stored time span: NotFound, not an invented answer.
  EXPECT_EQ(reader->PositionAt(1, t.back().t + 1e6).status().code(),
            StatusCode::kNotFound);
}

// ---------------------------------------------------------------------
// api::RunStoreQuery (the facade the CLI --query mode drives)
// ---------------------------------------------------------------------

TEST(StoreQueryApiTest, ValidatesShapeAndServesQueries) {
  const std::string path = TempPath("store_api.store");
  const traj::Trajectory t = testutil::ZigZag(80);
  const std::vector<traj::TimedSegment> all =
      SimplifyTimed(t, baselines::Algorithm::kOPERB, 6);
  { WriteAndOpen(path, all); }

  api::StoreQuery query;
  EXPECT_EQ(api::RunStoreQuery(query).status().code(),
            StatusCode::kInvalidArgument);  // no path
  query.store_path = path;
  EXPECT_EQ(api::RunStoreQuery(query).status().code(),
            StatusCode::kInvalidArgument);  // no shape
  query.has_object = true;
  query.object_id = 6;
  query.has_window = true;
  query.window.Extend(geo::Vec2{0, 0});
  query.window.Extend(geo::Vec2{1, 1});
  EXPECT_EQ(api::RunStoreQuery(query).status().code(),
            StatusCode::kInvalidArgument);  // both shapes
  query.has_window = false;

  const auto rec = api::RunStoreQuery(query);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->zeta, testutil::kGoldenZeta);
  ExpectTimedEqual(rec->segments, all, "api reconstruction");

  query.has_at = true;
  query.at_time = t[3].t;
  const auto pos = api::RunStoreQuery(query);
  ASSERT_TRUE(pos.ok()) << pos.status().ToString();
  EXPECT_TRUE(pos->has_position);

  // An --at outside an explicit [t_min, t_max] is a contradiction, not
  // a silently unconstrained lookup.
  query.t_min = 0.0;
  query.t_max = 1.0;
  query.at_time = 500.0;
  EXPECT_EQ(api::RunStoreQuery(query).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(StoreQueryApiTest, PipelineWriteStoreOnEnginePathRoundTrips) {
  const std::string path = TempPath("store_pipeline.store");
  // An interleaved 3-object feed through the StreamEngine with a
  // WriteStore stage: the store must end up holding exactly what the
  // report collected, per object, with times from the originals.
  std::vector<traj::ObjectTrajectory> objects;
  for (traj::ObjectId id = 0; id < 3; ++id) {
    objects.push_back(
        {id, testutil::Generated(datagen::DatasetKind::kSerCar, 300,
                                 100 + id)});
  }
  auto built = api::Pipeline::Builder()
                   .FromUpdates(traj::InterleaveRoundRobin(objects))
                   .Simplify("operb:zeta=40")
                   .WriteStore(path)
                   .Build();
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const auto report = built->Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->store_ran);
  EXPECT_TRUE(report->used_engine);
  EXPECT_EQ(report->store_stats.segments, report->segments);

  const auto reader = store::StoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader.value()->zeta(), 40.0);
  for (const traj::ObjectTrajectory& obj : objects) {
    const auto got = reader.value()->ReconstructObject(obj.object_id);
    ASSERT_TRUE(got.ok());
    // segments_out is sorted by id with per-object emission order kept.
    std::vector<traj::RepresentedSegment> expected;
    for (const traj::TaggedSegment& s : report->segments_out) {
      if (s.object_id == obj.object_id) expected.push_back(s.segment);
    }
    testutil::ExpectSegmentsEqual(
        Untimed(*got), expected,
        "pipeline store object " + std::to_string(obj.object_id));
    for (const traj::TimedSegment& s : *got) {
      EXPECT_EQ(s.t_start, obj.trajectory[s.segment.first_index].t);
      EXPECT_EQ(s.t_end, obj.trajectory[s.segment.last_index].t);
    }
  }
}

// ---------------------------------------------------------------------
// Env seam: deterministic fault injection and crash-point recovery
// (the ISSUE 7 robustness suite; see DESIGN.md §9)
// ---------------------------------------------------------------------

TEST(StoreEnvTest, FaultInjectingEnvCountsAndInjectsDeterministically) {
  const std::string path = TempPath("env_unit.bin");
  store::FaultInjectingEnv env;

  // Disarmed: pure pass-through, counting create/append/flush/rename/
  // remove — and not Close, which models no durable transition of its
  // own (the flush before it does).
  {
    auto file = env.NewWritableFile(path);  // op 0
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    const std::vector<std::uint8_t> payload(8, 0xAB);
    ASSERT_TRUE(file.value()->Append(payload).ok());  // op 1
    ASSERT_TRUE(file.value()->Flush().ok());          // op 2
    ASSERT_TRUE(file.value()->Close().ok());          // uncounted
    ASSERT_TRUE(env.Rename(path, path + ".renamed").ok());  // op 3
    ASSERT_TRUE(env.Remove(path + ".renamed").ok());        // op 4
    EXPECT_EQ(env.op_count(), 5u);
    EXPECT_FALSE(env.fault_fired());
  }
  // Base-env semantics shine through where no fault is armed.
  EXPECT_EQ(env.Remove(path).code(), StatusCode::kNotFound);

  // kError: exactly the armed operation fails, earlier and later ones
  // succeed, and ArmFault resets the counter.
  env.ArmFault(store::FaultInjectingEnv::FaultKind::kError, 1);
  {
    auto file = env.NewWritableFile(path);  // op 0 succeeds
    ASSERT_TRUE(file.ok());
    const std::vector<std::uint8_t> payload(8, 0xCD);
    EXPECT_EQ(file.value()->Append(payload).code(), StatusCode::kIOError);
    EXPECT_TRUE(env.fault_fired());
    EXPECT_TRUE(file.value()->Append(payload).ok());  // op 2 succeeds again
    EXPECT_TRUE(file.value()->Flush().ok());
    EXPECT_TRUE(file.value()->Close().ok());
  }
  EXPECT_EQ(ReadFileBytes(path).size(), 8u);

  // kShortWrite: the armed append persists exactly half its bytes (a
  // torn write) and reports failure; the process keeps running and
  // later operations succeed.
  env.ArmFault(store::FaultInjectingEnv::FaultKind::kShortWrite, 1);
  {
    auto file = env.NewWritableFile(path);
    ASSERT_TRUE(file.ok());
    const std::vector<std::uint8_t> payload(8, 0xEF);
    EXPECT_EQ(file.value()->Append(payload).code(), StatusCode::kIOError);
    EXPECT_TRUE(file.value()->Close().ok());
    EXPECT_TRUE(env.Rename(path, path + ".renamed").ok());
    EXPECT_TRUE(env.Rename(path + ".renamed", path).ok());
  }
  EXPECT_EQ(ReadFileBytes(path).size(), 4u);

  // kTornWriteCrash: the torn write is the process's last successful
  // act — every later operation fails, like a machine that went down.
  env.ArmFault(store::FaultInjectingEnv::FaultKind::kTornWriteCrash, 1);
  {
    auto file = env.NewWritableFile(path);
    ASSERT_TRUE(file.ok());
    const std::vector<std::uint8_t> payload(8, 0x99);
    EXPECT_EQ(file.value()->Append(payload).code(), StatusCode::kIOError);
    EXPECT_EQ(file.value()->Flush().code(), StatusCode::kIOError);
  }
  EXPECT_EQ(env.Rename(path, path + ".renamed").code(), StatusCode::kIOError);
  EXPECT_EQ(env.Remove(path).code(), StatusCode::kIOError);
  EXPECT_EQ(ReadFileBytes(path).size(), 4u);

  env.Disarm();
  EXPECT_EQ(env.op_count(), 0u);
  EXPECT_TRUE(env.Remove(path).ok());  // the "crash" ends with the env
}

/// A small deterministic 3-object feed for the crash matrix — enough
/// segments per shard to seal multiple blocks at the 1 KiB budget, small
/// enough that the full op matrix stays a few hundred pipeline runs.
std::vector<std::vector<traj::TimedSegment>> CrashFeed() {
  std::vector<std::vector<traj::TimedSegment>> feed;
  for (traj::ObjectId id = 0; id < 3; ++id) {
    const traj::Trajectory t = testutil::Generated(
        datagen::DatasetKind::kTaxi, 120, 90 + static_cast<int>(id));
    feed.push_back(SimplifyTimed(t, baselines::Algorithm::kOPERB, id));
  }
  return feed;
}

/// The store's full durable-write pipeline under a pluggable Env: a
/// creating session (object 0), an appending session (objects 1..), then
/// a compaction pass. Stops at the first error — a crashed process does
/// not keep going. The optional watermarks report the op counter after
/// each completed phase, which the counting run uses to classify crash
/// points.
Status RunCrashPipeline(
    const std::string& dir, store::FaultInjectingEnv* env,
    const std::vector<std::vector<traj::TimedSegment>>& feed,
    std::uint64_t* after_session1 = nullptr,
    std::uint64_t* after_session2 = nullptr) {
  store::StoreWriterOptions options;
  options.zeta = testutil::kGoldenZeta;
  options.block_budget_bytes = 1024;
  options.num_shards = 2;
  options.env = env;
  {
    auto writer = store::StoreWriter::Create(dir, options);
    if (!writer.ok()) return writer.status();
    for (const traj::TimedSegment& s : feed[0]) {
      const Status appended = writer.value()->Append(s);
      if (!appended.ok()) return appended;
    }
    const Status closed = writer.value()->Close();
    if (!closed.ok()) return closed;
  }
  if (after_session1 != nullptr) *after_session1 = env->op_count();
  {
    store::StoreWriterOptions session = options;
    session.append = true;
    auto writer = store::StoreWriter::Create(dir, session);
    if (!writer.ok()) return writer.status();
    for (std::size_t id = 1; id < feed.size(); ++id) {
      for (const traj::TimedSegment& s : feed[id]) {
        const Status appended = writer.value()->Append(s);
        if (!appended.ok()) return appended;
      }
    }
    const Status closed = writer.value()->Close();
    if (!closed.ok()) return closed;
  }
  if (after_session2 != nullptr) *after_session2 = env->op_count();
  store::CompactionOptions compaction;
  compaction.env = env;
  store::Compactor compactor(dir, compaction);
  return compactor.Run().status();
}

TEST(StoreTest, CrashPointMatrixRecoversAtEveryFault) {
  const std::vector<std::vector<traj::TimedSegment>> feed = CrashFeed();

  // Counting run: how many durable operations the pipeline performs,
  // where each phase ends, and what the intact store answers.
  const std::string golden_dir = TempPath("crash_golden.store");
  std::filesystem::remove_all(golden_dir);
  store::FaultInjectingEnv counting;
  std::uint64_t after_session1 = 0;
  std::uint64_t after_session2 = 0;
  const Status golden_run = RunCrashPipeline(golden_dir, &counting, feed,
                                             &after_session1, &after_session2);
  ASSERT_TRUE(golden_run.ok()) << golden_run.ToString();
  const std::uint64_t total_ops = counting.op_count();
  ASSERT_GT(after_session1, 0u);
  ASSERT_GT(after_session2, after_session1);
  ASSERT_GT(total_ops, after_session2);

  // Every operation index × every fault kind: run the pipeline into the
  // injected failure, then reopen with the real filesystem and demand a
  // sane store — never Corruption, and nothing lost that an earlier
  // phase had already made durable.
  using FaultKind = store::FaultInjectingEnv::FaultKind;
  for (const FaultKind kind : {FaultKind::kError, FaultKind::kShortWrite,
                               FaultKind::kTornWriteCrash}) {
    for (std::uint64_t k = 0; k < total_ops; ++k) {
      SCOPED_TRACE("fault kind " + std::to_string(static_cast<int>(kind)) +
                   " at op " + std::to_string(k) + "/" +
                   std::to_string(total_ops));
      const std::string dir = TempPath("crash_matrix.store");
      std::filesystem::remove_all(dir);
      store::FaultInjectingEnv env;
      env.ArmFault(kind, k);
      // The run's status is deliberately ignored: some faults surface
      // (a failed manifest commit), some are absorbed (a failed orphan
      // unlink). Recovery below is the contract.
      (void)RunCrashPipeline(dir, &env, feed);
      EXPECT_TRUE(env.fault_fired());

      const auto reopened = store::StoreReader::Open(dir);
      if (!reopened.ok()) {
        // Acceptable only when the store never became visible — a crash
        // before the first manifest commit. An absent store, never a
        // corrupt one.
        EXPECT_NE(reopened.status().code(), StatusCode::kCorruption)
            << reopened.status().ToString();
        EXPECT_LT(k, after_session1);
        continue;
      }
      for (std::size_t id = 0; id < feed.size(); ++id) {
        const auto rec = reopened.value()->ReconstructObject(
            static_cast<traj::ObjectId>(id));
        ASSERT_TRUE(rec.ok()) << rec.status().ToString();
        const std::vector<traj::TimedSegment>& expected = feed[id];
        // Whatever survived is a prefix of the emission order — blocks
        // become durable in order, and readers drop torn tails.
        ASSERT_LE(rec->size(), expected.size());
        for (std::size_t i = 0; i < rec->size(); ++i) {
          EXPECT_EQ((*rec)[i].object_id, expected[i].object_id);
          EXPECT_EQ((*rec)[i].t_start, expected[i].t_start);
          EXPECT_EQ((*rec)[i].t_end, expected[i].t_end);
        }
        testutil::ExpectSegmentsEqual(
            Untimed(*rec),
            Untimed(std::vector<traj::TimedSegment>(
                expected.begin(),
                expected.begin() + static_cast<std::ptrdiff_t>(rec->size()))),
            "crash prefix, object " + std::to_string(id));
        // Completed phases are durable: object 0's session closed before
        // op after_session1; everything closed before compaction began.
        if ((id == 0 && k >= after_session1) || k >= after_session2) {
          EXPECT_EQ(rec->size(), expected.size())
              << "a crash at op " << k
              << " lost data an earlier phase had sealed and flushed";
        }
      }
    }
  }
}

TEST(StoreTest, OpenRetriesManifestSwapRaceWithCappedBackoff) {
  const std::string path = TempPath("store_backoff.store");
  std::filesystem::remove_all(path);
  const traj::Trajectory t = testutil::ZigZag(60);
  const std::vector<traj::TimedSegment> all =
      SimplifyTimed(t, baselines::Algorithm::kOPERB, 3);
  { WriteAndOpen(path, all); }

  // Hide the manifest-named segment file: Open now fails exactly the
  // way it does when a compaction commit swaps files underneath it.
  const std::string seg = OnlySegmentFile(path);
  const std::string hidden = seg + ".hidden";
  std::filesystem::rename(seg, hidden);

  // The injected sleep observes the schedule and "loses the race" twice
  // before the store heals — the third attempt succeeds.
  std::vector<std::chrono::microseconds> sleeps;
  store::StoreReader::SetRetrySleepHookForTest(
      [&](std::chrono::microseconds d) {
        sleeps.push_back(d);
        if (sleeps.size() == 2) std::filesystem::rename(hidden, seg);
      });

  const auto reader = store::StoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader.value()->open_info().open_retries, 2u);
  ASSERT_EQ(sleeps.size(), 2u);
  EXPECT_EQ(sleeps[0], std::chrono::microseconds(100));
  EXPECT_EQ(sleeps[1], std::chrono::microseconds(200));

  // The count rides along on every query's stats, so callers can see
  // contention without instrumenting Open themselves.
  store::StoreQueryStats stats;
  const auto rec = reader.value()->ReconstructObject(3, -kInf, kInf, &stats);
  ASSERT_TRUE(rec.ok());
  ExpectTimedEqual(*rec, all, "after retried open");
  EXPECT_EQ(stats.open_retries, 2u);

  // A race that never resolves: the schedule doubles from 100us and the
  // reader gives up after the attempt cap with the underlying IOError —
  // bounded patience, no spin and no hang.
  sleeps.clear();
  store::StoreReader::SetRetrySleepHookForTest(
      [&](std::chrono::microseconds d) { sleeps.push_back(d); });
  std::filesystem::rename(seg, hidden);
  const auto failed = store::StoreReader::Open(path);
  EXPECT_EQ(failed.status().code(), StatusCode::kIOError);
  ASSERT_EQ(sleeps.size(), 5u);
  const std::chrono::microseconds want[] = {
      std::chrono::microseconds(100), std::chrono::microseconds(200),
      std::chrono::microseconds(400), std::chrono::microseconds(800),
      std::chrono::microseconds(1600)};
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(sleeps[i], want[i]);

  std::filesystem::rename(hidden, seg);
  store::StoreReader::SetRetrySleepHookForTest(nullptr);
}

TEST(StoreCompactionTest, PauseGuardQuiescesTheBackgroundLoop) {
  const std::string path = TempPath("store_pause.store");
  std::filesystem::remove_all(path);
  const std::vector<std::vector<traj::TimedSegment>> feed = CrashFeed();
  store::StoreWriterOptions options;
  options.zeta = testutil::kGoldenZeta;
  options.block_budget_bytes = 1024;
  options.num_shards = 2;
  {
    auto writer = store::StoreWriter::Create(path, options);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (const traj::TimedSegment& s : feed[0]) {
      ASSERT_TRUE(writer.value()->Append(s).ok());
    }
    ASSERT_TRUE(writer.value()->Close().ok());
  }

  store::BackgroundCompactor background(path, {},
                                        std::chrono::milliseconds(1));
  background.Start();
  for (int i = 0; i < 5000 && background.total_stats().shards_examined == 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(background.total_stats().shards_examined, 0u);

  std::uint64_t frozen = 0;
  {
    store::BackgroundCompactor::PauseGuard guard(background);
    // Pauses nest (an engine checkpoint inside a paused CLI section).
    { store::BackgroundCompactor::PauseGuard nested(background); }
    frozen = background.total_stats().shards_examined;
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    // No pass ran while paused — the store was exclusively ours.
    EXPECT_EQ(background.total_stats().shards_examined, frozen);
    // So a foreground session can run without racing the compactor.
    store::StoreWriterOptions session = options;
    session.append = true;
    auto writer = store::StoreWriter::Create(path, session);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (std::size_t id = 1; id < feed.size(); ++id) {
      for (const traj::TimedSegment& s : feed[id]) {
        ASSERT_TRUE(writer.value()->Append(s).ok());
      }
    }
    ASSERT_TRUE(writer.value()->Close().ok());
  }

  // Resumed: the loop picks the new session up on its own.
  for (int i = 0;
       i < 5000 && background.total_stats().shards_examined == frozen; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(background.total_stats().shards_examined, frozen);
  background.Stop();
  EXPECT_TRUE(background.last_status().ok())
      << background.last_status().ToString();

  const auto reader = store::StoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  for (std::size_t id = 0; id < feed.size(); ++id) {
    const auto rec =
        reader.value()->ReconstructObject(static_cast<traj::ObjectId>(id));
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    ExpectTimedEqual(*rec, feed[id],
                     "post-pause object " + std::to_string(id));
  }
}

TEST(StoreCompactionTest, PauseResumeRacingStopIsSafe) {
  // TSan target: PauseGuard sections racing Stop() in every interleaving
  // — pause before stop, stop mid-pause, pause after the loop is gone.
  // The invariants are no deadlock, no double-join, no race.
  const std::string path = TempPath("store_pause_race.store");
  std::filesystem::remove_all(path);
  const traj::Trajectory t = testutil::ZigZag(40);
  const std::vector<traj::TimedSegment> all =
      SimplifyTimed(t, baselines::Algorithm::kOPERB, 1);
  {
    store::StoreWriterOptions options;
    options.zeta = testutil::kGoldenZeta;
    auto writer = store::StoreWriter::Create(path, options);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (const traj::TimedSegment& s : all) {
      ASSERT_TRUE(writer.value()->Append(s).ok());
    }
    ASSERT_TRUE(writer.value()->Close().ok());
  }

  for (int round = 0; round < 3; ++round) {
    store::BackgroundCompactor background(path, {},
                                          std::chrono::milliseconds(1));
    background.Start();
    std::atomic<bool> go{false};
    std::thread pauser([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < 50; ++i) {
        store::BackgroundCompactor::PauseGuard guard(background);
        std::this_thread::yield();
      }
    });
    std::thread stopper([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      background.Stop();
    });
    go.store(true, std::memory_order_release);
    pauser.join();
    stopper.join();
    background.Stop();  // idempotent after the race resolved
  }
}

}  // namespace
}  // namespace operb
