#include <cstddef>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "core/operb.h"
#include "eval/metrics.h"
#include "eval/verifier.h"
#include "test_util.h"

namespace operb::core {
namespace {

using testutil::Generated;
using testutil::MakeTrajectory;
using testutil::RandomWalk;
using testutil::StraightLine;
using testutil::ZigZag;

TEST(OperbTest, EmptyAndSinglePointYieldEmptyRepresentation) {
  const OperbOptions opts = OperbOptions::Optimized(10.0);
  traj::Trajectory empty;
  EXPECT_TRUE(SimplifyOperb(empty, opts).empty());
  traj::Trajectory one;
  one.AppendUnchecked({1.0, 2.0, 0.0});
  EXPECT_TRUE(SimplifyOperb(one, opts).empty());
}

TEST(OperbTest, TwoPointsYieldOneSegment) {
  const auto t = MakeTrajectory({{0, 0}, {100, 0}});
  const auto rep = SimplifyOperb(t, OperbOptions::Optimized(10.0));
  ASSERT_EQ(rep.size(), 1u);
  EXPECT_EQ(rep[0].first_index, 0u);
  EXPECT_EQ(rep[0].last_index, 1u);
  EXPECT_EQ(rep[0].start, geo::Vec2(0, 0));
  EXPECT_EQ(rep[0].end, geo::Vec2(100, 0));
  EXPECT_TRUE(rep.ValidateAgainst(t).ok());
}

TEST(OperbTest, StraightLineCompressesToOneSegment) {
  const auto t = StraightLine(500);
  for (const OperbOptions& opts :
       {OperbOptions::Raw(10.0), OperbOptions::Optimized(10.0)}) {
    const auto rep = SimplifyOperb(t, opts);
    ASSERT_EQ(rep.size(), 1u) << opts.ToString();
    EXPECT_EQ(rep[0].first_index, 0u);
    EXPECT_EQ(rep[0].last_index, 499u);
    EXPECT_TRUE(rep.ValidateAgainst(t).ok());
  }
}

TEST(OperbTest, NearStraightLineStaysBoundedAndOptimizationsHelp) {
  // Small offsets off the axis. Raw OPERB may still split (the first
  // active point can fix a misaligned initial angle — the motivation for
  // optimization (1)), but the bound must hold and the optimized variant
  // must compress at least as well.
  traj::Trajectory t;
  datagen::Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    t.AppendUnchecked({i * 10.0, rng.Uniform(-4.9, 4.9), double(i)});
  }
  const auto raw = SimplifyOperb(t, OperbOptions::Raw(20.0));
  const auto opt = SimplifyOperb(t, OperbOptions::Optimized(20.0));
  EXPECT_TRUE(raw.ValidateAgainst(t).ok());
  EXPECT_TRUE(opt.ValidateAgainst(t).ok());
  EXPECT_TRUE(eval::VerifyErrorBound(t, raw, 20.0).bounded);
  EXPECT_TRUE(eval::VerifyErrorBound(t, opt, 20.0).bounded);
  EXPECT_LE(opt.size(), raw.size());
  EXPECT_LE(opt.size(), 6u);  // near-straight data compresses hard
}

TEST(OperbTest, SharpTurnBreaksSegment) {
  // An L-shaped path cannot be one segment once the leg exceeds zeta.
  traj::Trajectory t;
  for (int i = 0; i <= 20; ++i) t.AppendUnchecked({i * 10.0, 0.0, double(i)});
  for (int i = 1; i <= 20; ++i)
    t.AppendUnchecked({200.0, i * 10.0, 20.0 + i});
  const auto rep = SimplifyOperb(t, OperbOptions::Optimized(15.0));
  EXPECT_GE(rep.size(), 2u);
  EXPECT_TRUE(rep.ValidateAgainst(t).ok());
  EXPECT_TRUE(eval::VerifyErrorBound(t, rep, 15.0).bounded);
}

TEST(OperbTest, RepresentationIsContinuousAndChains) {
  const auto t = ZigZag(101);
  const auto rep = SimplifyOperb(t, OperbOptions::Optimized(12.0));
  ASSERT_FALSE(rep.empty());
  EXPECT_TRUE(rep.ValidateAgainst(t).ok());
  for (std::size_t i = 1; i < rep.size(); ++i) {
    EXPECT_EQ(rep[i].start, rep[i - 1].end);
    EXPECT_EQ(rep[i].first_index, rep[i - 1].last_index);
  }
}

TEST(OperbTest, StreamingMatchesBatch) {
  const auto t = Generated(datagen::DatasetKind::kSerCar, 4000, 99);
  const OperbOptions opts = OperbOptions::Optimized(25.0);
  const auto batch = SimplifyOperb(t, opts);

  OperbStream stream(opts);
  traj::PiecewiseRepresentation incremental;
  for (const geo::Point& p : t) {
    stream.Push(p);
    for (auto& s : stream.TakeEmitted()) incremental.Append(s);
  }
  stream.Finish();
  for (auto& s : stream.TakeEmitted()) incremental.Append(s);

  ASSERT_EQ(batch.size(), incremental.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].first_index, incremental[i].first_index);
    EXPECT_EQ(batch[i].last_index, incremental[i].last_index);
    EXPECT_EQ(batch[i].start, incremental[i].start);
    EXPECT_EQ(batch[i].end, incremental[i].end);
  }
}

TEST(OperbTest, StatsCountEveryPointOnce) {
  const auto t = Generated(datagen::DatasetKind::kTaxi, 3000, 5);
  OperbStats stats;
  SimplifyOperb(t, OperbOptions::Optimized(40.0), &stats);
  EXPECT_EQ(stats.points_processed, t.size());
}

TEST(OperbTest, DeterministicAcrossRuns) {
  const auto t = Generated(datagen::DatasetKind::kGeoLife, 3000, 11);
  const OperbOptions opts = OperbOptions::Optimized(15.0);
  const auto a = SimplifyOperb(t, opts);
  const auto b = SimplifyOperb(t, opts);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_EQ(a[i].end, b[i].end);
  }
}

TEST(OperbTest, OptimizationsImproveCompressionOnDenseData) {
  // The headline claim of Section 4.4 / Figure 16: optimized OPERB has a
  // (much) lower compression ratio than Raw-OPERB on dense datasets.
  const auto t = Generated(datagen::DatasetKind::kSerCar, 8000, 21);
  const auto raw = SimplifyOperb(t, OperbOptions::Raw(40.0));
  const auto opt = SimplifyOperb(t, OperbOptions::Optimized(40.0));
  EXPECT_LT(eval::CompressionRatio(t, opt), eval::CompressionRatio(t, raw));
}

TEST(OperbTest, PaperVerbatimModeEndsAtLastActivePoint) {
  // With the closing segment disabled, trailing inactive points leave the
  // representation ending before the final sample (the pseudocode's
  // behaviour); with it enabled the last endpoint is always P_n.
  traj::Trajectory t;
  for (int i = 0; i <= 10; ++i) t.AppendUnchecked({i * 20.0, 0.0, double(i)});
  // Trailing cluster of inactive points near the end.
  for (int i = 1; i <= 5; ++i)
    t.AppendUnchecked({200.0 + 0.1 * i, 0.0, 10.0 + i});
  OperbOptions closing = OperbOptions::Raw(40.0);
  const auto rep = SimplifyOperb(t, closing);
  EXPECT_EQ(rep[rep.size() - 1].last_index, t.size() - 1);

  OperbOptions verbatim = closing;
  verbatim.emit_closing_segment = false;
  const auto rep2 = SimplifyOperb(t, verbatim);
  ASSERT_FALSE(rep2.empty());
  // Coverage still reaches the end even though the endpoint may not.
  EXPECT_EQ(rep2[rep2.size() - 1].last_index, t.size() - 1);
}

TEST(OperbTest, CapForcesSegmentBreak) {
  OperbOptions opts = OperbOptions::Raw(1000.0);
  opts.max_points_per_segment = 100;
  const auto t = StraightLine(1000, 1.0);
  OperbStats stats;
  const auto rep = SimplifyOperb(t, opts, &stats);
  EXPECT_GT(stats.cap_breaks, 0u);
  EXPECT_GE(rep.size(), 9u);
  EXPECT_TRUE(rep.ValidateAgainst(t).ok());
  EXPECT_TRUE(eval::VerifyErrorBound(t, rep, 1000.0).bounded);
}

TEST(OperbTest, AbsorbOptimizationConsumesPointsAfterBreak) {
  // A path that turns, then returns close to the first segment's line:
  // absorption should extend the first segment's coverage.
  OperbOptions with_absorb = OperbOptions::Optimized(20.0);
  OperbOptions without_absorb = with_absorb;
  without_absorb.opt_absorb = false;

  const auto t = Generated(datagen::DatasetKind::kTaxi, 5000, 31);
  OperbStats s_with, s_without;
  const auto rep_with = SimplifyOperb(t, with_absorb, &s_with);
  const auto rep_without = SimplifyOperb(t, without_absorb, &s_without);
  EXPECT_GT(s_with.points_absorbed, 0u);
  EXPECT_EQ(s_without.points_absorbed, 0u);
  EXPECT_TRUE(rep_with.ValidateAgainst(t).ok());
  EXPECT_TRUE(eval::VerifyErrorBound(t, rep_with, 20.0).bounded);
}

// ---------------------------------------------------------------------------
// Property sweep: for every dataset kind, zeta and optimization setting the
// output must be a valid, continuous, error-bounded representation.
// ---------------------------------------------------------------------------

struct SweepParam {
  datagen::DatasetKind kind;
  double zeta;
  bool optimized;
  std::uint64_t seed;
};

class OperbPropertyTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(OperbPropertyTest, ErrorBoundedValidContinuous) {
  const SweepParam p = GetParam();
  const auto t = Generated(p.kind, 2500, p.seed);
  const OperbOptions opts = p.optimized ? OperbOptions::Optimized(p.zeta)
                                        : OperbOptions::Raw(p.zeta);
  const auto rep = SimplifyOperb(t, opts);
  ASSERT_TRUE(rep.ValidateAgainst(t).ok());
  const auto verdict = eval::VerifyErrorBound(t, rep, p.zeta);
  EXPECT_TRUE(verdict.bounded) << verdict.ToString();
  // Compression must never exceed 1 (plus the closing segment's +1).
  EXPECT_LE(rep.StoredPointCount(), t.size() + 1);
}

std::string SweepName(const ::testing::TestParamInfo<SweepParam>& info) {
  std::string name(datagen::DatasetName(info.param.kind));
  name += "_z" + std::to_string(static_cast<int>(info.param.zeta));
  name += info.param.optimized ? "_opt" : "_raw";
  name += "_s" + std::to_string(info.param.seed);
  return name;
}

std::vector<SweepParam> MakeSweep() {
  std::vector<SweepParam> out;
  for (auto kind : datagen::AllDatasetKinds()) {
    for (double zeta : {5.0, 20.0, 40.0, 100.0}) {
      for (bool optimized : {false, true}) {
        for (std::uint64_t seed : {1ULL, 2ULL}) {
          out.push_back({kind, zeta, optimized, seed});
        }
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, OperbPropertyTest,
                         ::testing::ValuesIn(MakeSweep()), SweepName);

// Adversarial inputs: random walks and degenerate shapes.
class OperbAdversarialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OperbAdversarialTest, RandomWalkStaysBounded) {
  const auto t = RandomWalk(1500, GetParam());
  for (double zeta : {5.0, 25.0}) {
    for (const OperbOptions& opts :
         {OperbOptions::Raw(zeta), OperbOptions::Optimized(zeta)}) {
      const auto rep = SimplifyOperb(t, opts);
      ASSERT_TRUE(rep.ValidateAgainst(t).ok()) << opts.ToString();
      const auto verdict = eval::VerifyErrorBound(t, rep, zeta);
      EXPECT_TRUE(verdict.bounded)
          << opts.ToString() << " " << verdict.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OperbAdversarialTest,
                         ::testing::Range<std::uint64_t>(100, 110));

TEST(OperbEdgeTest, AllPointsIdenticalPosition) {
  traj::Trajectory t;
  for (int i = 0; i < 50; ++i) t.AppendUnchecked({5.0, 5.0, double(i)});
  const auto rep = SimplifyOperb(t, OperbOptions::Optimized(10.0));
  ASSERT_EQ(rep.size(), 1u);
  EXPECT_EQ(rep[0].last_index, 49u);
  EXPECT_TRUE(rep.ValidateAgainst(t).ok());
}

TEST(OperbEdgeTest, BackAndForthOnALine) {
  // Object oscillates along one axis; all points are collinear so one
  // segment suffices no matter how it moves in time.
  traj::Trajectory t;
  for (int i = 0; i < 200; ++i) {
    const double x = (i % 3 == 0) ? i * 2.0 : i * 2.0 - 30.0;
    t.AppendUnchecked({x, 0.0, double(i)});
  }
  const auto rep = SimplifyOperb(t, OperbOptions::Optimized(10.0));
  EXPECT_TRUE(rep.ValidateAgainst(t).ok());
  EXPECT_TRUE(eval::VerifyErrorBound(t, rep, 10.0).bounded);
}

TEST(OperbEdgeTest, TinyZetaProducesManySegmentsButStaysBounded) {
  const auto t = Generated(datagen::DatasetKind::kGeoLife, 1000, 3);
  const auto rep = SimplifyOperb(t, OperbOptions::Optimized(0.5));
  EXPECT_TRUE(rep.ValidateAgainst(t).ok());
  EXPECT_TRUE(eval::VerifyErrorBound(t, rep, 0.5).bounded);
}

}  // namespace
}  // namespace operb::core
