// The obs subsystem's own contract tests: striped counters and log2
// histograms stay exact under concurrent hammering (run under TSan in
// CI), bucket boundaries are bit-exact powers of two, trace rings
// overwrite oldest-first with a drop count, and a JSON snapshot
// round-trips through the hand-written parser value-for-value.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "obs/trace.h"

namespace operb::obs {
namespace {

TEST(ObsCounterTest, SingleThreadedAddAndIncrement) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(ObsCounterTest, ConcurrentHammeringLosesNothing) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 200'000;
  Counter c;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&c] {
      for (std::uint64_t j = 0; j < kPerThread; ++j) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(ObsGaugeTest, ConcurrentAddSubBalancesOut) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 100'000;
  Gauge g;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&g] {
      for (int j = 0; j < kRounds; ++j) {
        g.Add(3);
        g.Sub(2);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(g.Value(), static_cast<std::int64_t>(kThreads) * kRounds);
}

TEST(ObsMaxGaugeTest, ConcurrentObserveKeepsTheMaximum) {
  constexpr int kThreads = 8;
  MaxGauge m;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&m, i] {
      for (int j = 0; j < 50'000; ++j) m.Observe(i * 50'000 + j);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(m.Value(), 8 * 50'000 - 1);
}

TEST(ObsHistogramTest, BucketBoundariesAreExactPowersOfTwo) {
  // Bucket 0 holds only the value 0; bucket b > 0 covers [2^(b-1), 2^b).
  EXPECT_EQ(HistogramSnapshot::BucketIndex(0), 0u);
  EXPECT_EQ(HistogramSnapshot::BucketIndex(1), 1u);
  for (std::size_t b = 1; b <= 63; ++b) {
    const std::uint64_t lo = std::uint64_t{1} << (b - 1);
    const std::uint64_t hi = (std::uint64_t{1} << b) - 1;
    EXPECT_EQ(HistogramSnapshot::BucketIndex(lo), b) << "b=" << b;
    EXPECT_EQ(HistogramSnapshot::BucketIndex(hi), b) << "b=" << b;
    EXPECT_EQ(HistogramSnapshot::BucketLowerBound(b), lo) << "b=" << b;
  }
  // The top bucket takes everything from 2^63 up to UINT64_MAX.
  EXPECT_EQ(HistogramSnapshot::BucketIndex(std::uint64_t{1} << 63), 64u);
  EXPECT_EQ(HistogramSnapshot::BucketIndex(~std::uint64_t{0}), 64u);
}

TEST(ObsHistogramTest, RecordPlacesValuesAndTracksCountSum) {
  LatencyHistogram h;
  h.Record(0);
  h.Record(1);
  h.Record(2);
  h.Record(3);
  h.Record(1024);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.sum, 0u + 1 + 2 + 3 + 1024);
  EXPECT_EQ(s.buckets[0], 1u);   // 0
  EXPECT_EQ(s.buckets[1], 1u);   // 1
  EXPECT_EQ(s.buckets[2], 2u);   // 2, 3
  EXPECT_EQ(s.buckets[11], 1u);  // 1024 = 2^10 -> bit_width 11
}

TEST(ObsHistogramTest, ConcurrentRecordLosesNothing) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100'000;
  LatencyHistogram h;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&h] {
      for (std::uint64_t j = 0; j < kPerThread; ++j) h.Record(j & 1023);
    });
  }
  for (std::thread& t : threads) t.join();
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, s.count);
}

TEST(ObsHistogramTest, ApproxPercentileReturnsBucketUpperEdge) {
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.Record(3);   // bucket 2: [2, 4)
  h.Record(1'000'000);                        // bucket 20
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.ApproxPercentile(0.5), 3.0);    // upper edge of bucket 2
  EXPECT_EQ(s.ApproxPercentile(1.0), (1 << 20) - 1);
  // Merging doubles every bucket but moves no percentile.
  HistogramSnapshot merged = s;
  merged.MergeFrom(s);
  EXPECT_EQ(merged.count, 2 * s.count);
  EXPECT_EQ(merged.ApproxPercentile(0.5), 3.0);
}

TEST(ObsScopedTimerTest, RecordsOneSampleAndToleratesNull) {
  LatencyHistogram h;
  { ScopedTimer t(&h); }
  EXPECT_EQ(h.Count(), 1u);
  { ScopedTimer t(nullptr); }  // must be a harmless no-op
  EXPECT_EQ(h.Count(), 1u);
}

TEST(ObsRegistryTest, SameNameSameInstrumentAcrossKinds) {
  MetricsRegistry r;
  Counter* a = r.GetCounter("x");
  Counter* b = r.GetCounter("x");
  EXPECT_EQ(a, b);
  // Kinds are separate namespaces: a histogram "x" is a new instrument.
  EXPECT_NE(static_cast<void*>(a), static_cast<void*>(r.GetHistogram("x")));
  a->Add(7);
  const auto values = r.CounterValues();
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0].first, "x");
  EXPECT_EQ(values[0].second, 7u);
}

TEST(ObsRegistryTest, ValueDumpsAreSortedByName) {
  MetricsRegistry r;
  r.GetCounter("zeta")->Add(1);
  r.GetCounter("alpha")->Add(2);
  r.GetCounter("mid")->Add(3);
  const auto values = r.CounterValues();
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0].first, "alpha");
  EXPECT_EQ(values[1].first, "mid");
  EXPECT_EQ(values[2].first, "zeta");
}

TEST(ObsRegistryTest, ConcurrentGetOrCreateReturnsOnePointerPerName) {
  MetricsRegistry r;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&r, &seen, i] {
      Counter* c = r.GetCounter("contended");
      c->Increment();
      seen[static_cast<std::size_t>(i)] = c;
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 1; i < kThreads; ++i) EXPECT_EQ(seen[0], seen[i]);
  EXPECT_EQ(seen[0]->Value(), static_cast<std::uint64_t>(kThreads));
}

TEST(ObsTraceTest, RingOverwritesOldestAndCountsDrops) {
  TraceRecorder recorder(/*ring_capacity=*/4);
  static const char* const kNames[] = {"e0", "e1", "e2", "e3", "e4", "e5"};
  for (int i = 0; i < 6; ++i) {
    recorder.Record({kNames[i], i, i + 10});
  }
  EXPECT_EQ(recorder.recorded(), 6u);
  EXPECT_EQ(recorder.dropped(), 2u);
  const std::vector<TraceEvent> events = recorder.Drain();
  ASSERT_EQ(events.size(), 4u);  // e0/e1 were overwritten
  EXPECT_STREQ(events[0].name, "e2");
  EXPECT_STREQ(events[1].name, "e3");
  EXPECT_STREQ(events[2].name, "e4");
  EXPECT_STREQ(events[3].name, "e5");
  EXPECT_EQ(events[3].start_ns, 5);
  EXPECT_EQ(events[3].end_ns, 15);
  // Drain clears the rings but keeps the cumulative totals.
  EXPECT_TRUE(recorder.Drain().empty());
  EXPECT_EQ(recorder.recorded(), 6u);
  EXPECT_EQ(recorder.dropped(), 2u);
}

TEST(ObsTraceTest, DrainSeesEveryThreadsRingAfterWorkersExit) {
  TraceRecorder recorder(/*ring_capacity=*/64);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 16;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&recorder] {
      for (int j = 0; j < kPerThread; ++j) {
        TraceSpan span("worker.op", &recorder);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::vector<TraceEvent> events = recorder.Drain();
  EXPECT_EQ(events.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(recorder.dropped(), 0u);
  for (const TraceEvent& e : events) {
    EXPECT_STREQ(e.name, "worker.op");
    EXPECT_GE(e.end_ns, e.start_ns);
  }
}

TEST(ObsSnapshotTest, JsonRoundTripsValueForValue) {
  MetricsRegistry r;
  TraceRecorder recorder(/*ring_capacity=*/2);
  r.GetCounter("a.count")->Add(123);
  r.GetCounter("b.count")->Add(0);
  r.GetGauge("lvl")->Add(-5);
  r.GetMaxGauge("hwm")->Observe(77);
  LatencyHistogram* h = r.GetHistogram("lat_ns");
  h->Record(0);
  h->Record(9);
  h->Record(1 << 20);
  recorder.Record({"s1", 1, 2});
  recorder.Record({"s2", 3, 4});
  recorder.Record({"s3", 5, 6});  // overwrites s1

  const SnapshotOptions options{&r, &recorder};
  const std::string json = RenderSnapshotJson(options);
  const auto parsed = ParseSnapshotJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->schema, kSnapshotSchemaName);
  EXPECT_EQ(parsed->schema_version, kSnapshotSchemaVersion);
  EXPECT_EQ(parsed->counters.at("a.count"), 123u);
  EXPECT_EQ(parsed->counters.at("b.count"), 0u);
  EXPECT_EQ(parsed->gauges.at("lvl"), -5);
  EXPECT_EQ(parsed->max_gauges.at("hwm"), 77);
  const ParsedSnapshot::Histogram& ph = parsed->histograms.at("lat_ns");
  EXPECT_EQ(ph.count, 3u);
  EXPECT_EQ(ph.sum, 0u + 9 + (1 << 20));
  ASSERT_EQ(ph.buckets.size(), HistogramSnapshot::kBuckets);
  EXPECT_EQ(ph.buckets[0], 1u);   // 0
  EXPECT_EQ(ph.buckets[4], 1u);   // 9 -> bit_width 4
  EXPECT_EQ(ph.buckets[21], 1u);  // 2^20 -> bit_width 21
  EXPECT_EQ(parsed->trace_recorded, 3u);
  EXPECT_EQ(parsed->trace_dropped, 1u);

  // The text rendering carries the same instruments (spot check).
  const std::string text = RenderSnapshotText(options);
  EXPECT_NE(text.find("a.count"), std::string::npos);
  EXPECT_NE(text.find("lat_ns"), std::string::npos);
}

TEST(ObsSnapshotTest, EmptyRegistryRoundTrips) {
  MetricsRegistry r;
  TraceRecorder recorder;
  const auto parsed = ParseSnapshotJson(RenderSnapshotJson({&r, &recorder}));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->counters.empty());
  EXPECT_TRUE(parsed->histograms.empty());
}

TEST(ObsSnapshotTest, ParserRejectsMalformedDocuments) {
  MetricsRegistry r;
  r.GetCounter("c")->Add(1);
  TraceRecorder recorder;
  const std::string good = RenderSnapshotJson({&r, &recorder});

  // Truncation, trailing garbage, a wrong schema name and an unknown
  // top-level key must all surface as Corruption, never a crash.
  EXPECT_FALSE(ParseSnapshotJson(good.substr(0, good.size() / 2)).ok());
  EXPECT_FALSE(ParseSnapshotJson(good + "x").ok());
  std::string wrong_schema = good;
  wrong_schema.replace(wrong_schema.find("operb-metrics-snapshot"),
                       std::string("operb-metrics-snapshot").size(),
                       "some-other-schema-name\"..");
  EXPECT_FALSE(ParseSnapshotJson(wrong_schema).ok());
  EXPECT_FALSE(ParseSnapshotJson("{\"schema\": \"operb-metrics-snapshot\", "
                                 "\"unknown_key\": 1}")
                   .ok());
  EXPECT_FALSE(ParseSnapshotJson("").ok());
}

TEST(ObsSnapshotTest, WriteSnapshotJsonUsesInjectedWriter) {
  MetricsRegistry r;
  r.GetCounter("c")->Add(9);
  TraceRecorder recorder;

  // Success path: the injected writer observes the rendered document.
  std::string written_path;
  std::string written_content;
  const Status ok = WriteSnapshotJson(
      "snapshot.json", {&r, &recorder},
      [&](const std::string& path, std::string_view content) {
        written_path = path;
        written_content = std::string(content);
        return Status::OK();
      });
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(written_path, "snapshot.json");
  const auto parsed = ParseSnapshotJson(written_content);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->counters.at("c"), 9u);

  // Failure path: the writer's status comes back verbatim.
  const Status failed = WriteSnapshotJson(
      "snapshot.json", {&r, &recorder},
      [](const std::string&, std::string_view) {
        return Status::IOError("disk on fire");
      });
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kIOError);
}

TEST(ObsSnapshotTest, AtomicWriteFileRejectsUnwritablePath) {
  MetricsRegistry r;
  TraceRecorder recorder;
  const Status s = WriteSnapshotJson(
      "/nonexistent-operb-dir/snapshot.json", {&r, &recorder});
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace operb::obs
