// Streaming device scenario — the deployment the paper's introduction
// motivates: a vehicle-mounted sensor compresses its GPS stream on the fly
// with O(1) memory and ships finished line segments to the "cloud" as soon
// as they are determined.
//
// The raw sensor stream is deliberately dirty (duplicates, out-of-order
// fixes, outliers); a StreamCleaner sanitizes it in the same pass, and an
// OperbAStream compresses the clean stream. The example reports per-stage
// counters and the bandwidth saved.

#include <cstdio>
#include <vector>

#include "core/operb_a.h"
#include "datagen/profiles.h"
#include "datagen/rng.h"
#include "traj/cleaner.h"

namespace {

/// Corrupts a clean trajectory the way lossy transports do: occasional
/// duplicates, swapped neighbours and wild outliers.
std::vector<operb::geo::Point> MakeDirtyStream(
    const operb::traj::Trajectory& clean, operb::datagen::Rng* rng) {
  std::vector<operb::geo::Point> out;
  out.reserve(clean.size() + clean.size() / 10);
  for (std::size_t i = 0; i < clean.size(); ++i) {
    operb::geo::Point p = clean[i];
    if (rng->Bernoulli(0.01)) {
      // GPS glitch: a fix several km off.
      p.x += rng->Uniform(2000.0, 5000.0);
      out.push_back(p);
      continue;
    }
    out.push_back(p);
    if (rng->Bernoulli(0.02)) out.push_back(p);  // duplicate
    if (i > 0 && rng->Bernoulli(0.02)) {
      std::swap(out[out.size() - 1], out[out.size() - 2]);  // reorder
    }
  }
  return out;
}

}  // namespace

int main() {
  using namespace operb;  // NOLINT: example brevity

  datagen::Rng rng(2024);
  // A densely sampled (3-5 s) connected-car stream: the regime where
  // on-device simplification pays the most.
  const traj::Trajectory drive = datagen::GenerateTrajectory(
      datagen::DatasetProfile::For(datagen::DatasetKind::kSerCar), 2000,
      &rng);
  const std::vector<geo::Point> sensor_stream = MakeDirtyStream(drive, &rng);

  traj::CleanerOptions cleaner_options;
  cleaner_options.max_speed_mps = 70.0;  // nothing street-legal goes faster
  traj::StreamCleaner cleaner(cleaner_options);

  core::OperbAStream compressor(core::OperbAOptions::Optimized(40.0));

  std::size_t transmitted_segments = 0;
  for (const geo::Point& raw_fix : sensor_stream) {
    const auto clean_fix = cleaner.Push(raw_fix);
    if (!clean_fix.has_value()) continue;  // dropped by the cleaner
    compressor.Push(*clean_fix);
    for (const traj::RepresentedSegment& segment : compressor.TakeEmitted()) {
      // In a real device this is the network send; a segment costs one
      // point (its start — the previous segment supplied the shared end).
      ++transmitted_segments;
      (void)segment;
    }
  }
  compressor.Finish();
  for (const traj::RepresentedSegment& segment : compressor.TakeEmitted()) {
    ++transmitted_segments;
    (void)segment;
  }

  const traj::CleanerStats& cs = cleaner.stats();
  const core::OperbAStats stats = compressor.stats();
  std::printf("sensor stream:   %zu raw fixes\n", sensor_stream.size());
  std::printf("cleaner:         %zu accepted, %zu duplicates, %zu "
              "out-of-order, %zu outliers dropped\n",
              cs.accepted, cs.duplicates_dropped, cs.out_of_order_dropped,
              cs.outliers_dropped);
  std::printf("compressor:      %zu points in, %zu segments out "
              "(%zu absorbed, %zu/%zu anomalies patched)\n",
              stats.base.points_processed, transmitted_segments,
              stats.base.points_absorbed, stats.patches_applied,
              stats.anomalous_segments);
  const double sent = static_cast<double>(transmitted_segments + 1);
  std::printf("bandwidth:       %.1f%% of the cleaned stream "
              "(%.0fx reduction)\n",
              100.0 * sent / cs.accepted, cs.accepted / sent);
  return 0;
}
