// Compares every simplification algorithm in the library on one synthetic
// dataset: wall-clock time, compression ratio, average/max error, and the
// error-bound verdict. A compact version of the paper's whole evaluation.
//
// Usage: compare_algorithms [dataset] [zeta_m] [trajectories] [points]
//   dataset: Taxi | Truck | SerCar | GeoLife  (default SerCar)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "baselines/simplifier.h"
#include "common/stopwatch.h"
#include "datagen/profiles.h"
#include "eval/metrics.h"
#include "eval/verifier.h"

namespace {

operb::datagen::DatasetKind ParseKind(const std::string& name) {
  for (auto kind : operb::datagen::AllDatasetKinds()) {
    if (name == operb::datagen::DatasetName(kind)) return kind;
  }
  std::fprintf(stderr, "unknown dataset '%s', using SerCar\n", name.c_str());
  return operb::datagen::DatasetKind::kSerCar;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace operb;  // NOLINT: example brevity

  datagen::DatasetSpec spec;
  spec.kind = argc > 1 ? ParseKind(argv[1]) : datagen::DatasetKind::kSerCar;
  const double zeta = argc > 2 ? std::atof(argv[2]) : 40.0;
  spec.num_trajectories = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 8;
  spec.points_per_trajectory =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 5000;
  spec.seed = 20170401;

  std::printf("dataset=%s zeta=%.0fm trajectories=%zu points/traj=%zu\n\n",
              std::string(datagen::DatasetName(spec.kind)).c_str(), zeta,
              spec.num_trajectories, spec.points_per_trajectory);
  const std::vector<traj::Trajectory> dataset =
      datagen::GenerateDataset(spec);

  std::printf("%-12s %10s %10s %10s %10s %8s\n", "algorithm", "time_ms",
              "ratio_%", "avg_err_m", "max_err_m", "bounded");
  for (baselines::Algorithm algo : baselines::AllAlgorithms()) {
    const auto simplifier = baselines::MakeSimplifier(algo, zeta);
    std::vector<traj::PiecewiseRepresentation> reps;
    reps.reserve(dataset.size());
    Stopwatch watch;
    for (const traj::Trajectory& t : dataset) {
      reps.push_back(simplifier->Simplify(t));
    }
    const double ms = watch.ElapsedMillis();
    const double ratio = eval::AggregateCompressionRatio(dataset, reps);
    const eval::ErrorStats err = eval::AggregateError(dataset, reps);
    bool bounded = true;
    for (std::size_t i = 0; i < dataset.size(); ++i) {
      bounded = bounded &&
                eval::VerifyErrorBound(dataset[i], reps[i], zeta).bounded;
    }
    std::printf("%-12s %10.1f %10.2f %10.2f %10.2f %8s\n",
                std::string(simplifier->name()).c_str(), ms, ratio * 100.0,
                err.average, err.max, bounded ? "yes" : "NO");
  }
  return 0;
}
