// File pipeline scenario on the public api:: facade: read a
// GeoLife-format PLT file (or a CSV), pick an error bound, and run the
// composed dataflow — ingest → clean → simplify(spec) → verify →
// delta-encode — for several spec strings, then write the last
// representation back to CSV: the end-to-end offline workflow of a
// trajectory archive, in one builder chain per configuration.
//
// Usage: io_pipeline [input.(plt|csv)] [zeta_m] [output.csv]
// With no arguments a demo PLT file is synthesized in a temp directory.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "api/pipeline.h"
#include "datagen/profiles.h"
#include "datagen/rng.h"
#include "geo/projection.h"
#include "traj/io.h"
#include "traj/piecewise.h"

namespace {

/// Synthesizes a small PLT file around Beijing so the example runs
/// self-contained.
std::string WriteDemoPlt() {
  using namespace operb;  // NOLINT
  const auto dir = std::filesystem::temp_directory_path() / "operb_example";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "demo.plt").string();

  datagen::Rng rng(7);
  const traj::Trajectory walk = datagen::GenerateTrajectory(
      datagen::DatasetProfile::For(datagen::DatasetKind::kGeoLife), 1500,
      &rng);
  const geo::LocalProjector projector({39.9, 116.4});
  std::ofstream out(path);
  out << "Geolife trajectory\nWGS 84\nAltitude is in Feet\nReserved 3\n"
         "0,2,255,My Track,0,0,2,8421376\n0\n";
  char buf[160];
  for (const geo::Point& p : walk) {
    const geo::LatLon c = projector.Unproject(p.pos());
    const double days = 39744.0 + p.t / 86400.0;
    std::snprintf(buf, sizeof(buf), "%.6f,%.6f,0,160,%.9f,d,t\n", c.lat,
                  c.lon, days);
    out << buf;
  }
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace operb;  // NOLINT

  const std::string input = argc > 1 ? argv[1] : WriteDemoPlt();
  const double zeta = argc > 2 ? std::atof(argv[2]) : 25.0;
  const std::string output =
      argc > 3 ? argv[3]
               : (std::filesystem::temp_directory_path() / "operb_example" /
                  "compressed.csv")
                     .string();
  const bool is_plt =
      input.size() > 4 && input.substr(input.size() - 4) == ".plt";

  // One spec string per configuration — the whole OPERB family sweep is
  // data, not code.
  char zeta_opt[48];
  std::snprintf(zeta_opt, sizeof(zeta_opt), ":zeta=%g", zeta);
  const std::vector<std::string> specs = {
      std::string("raw-operb") + zeta_opt,
      std::string("operb") + zeta_opt,
      std::string("operb-a") + zeta_opt,
  };

  std::printf("input: %s  (zeta %.1f m)\n\n", input.c_str(), zeta);
  std::printf("%-24s %10s %10s %10s %8s\n", "spec", "segments", "ratio_%",
              "delta_%", "bounded");

  traj::PiecewiseRepresentation last_representation;
  for (const std::string& spec : specs) {
    api::Pipeline::Builder builder;
    if (is_plt) {
      builder.FromPltFile(input);
    } else {
      builder.FromCsvFile(input);
    }
    // Clean() makes the pipeline robust to raw exports (duplicate or
    // out-of-order rows); on already-valid files it is a no-op.
    Result<api::Pipeline> pipeline = builder.Clean()
                                         .Simplify(spec)
                                         .Verify()
                                         .DeltaEncode()
                                         .Build();
    if (!pipeline.ok()) {
      std::fprintf(stderr, "bad configuration '%s': %s\n", spec.c_str(),
                   pipeline.status().ToString().c_str());
      return 1;
    }
    Result<api::PipelineReport> run = pipeline->Run();
    if (!run.ok()) {
      std::fprintf(stderr, "pipeline '%s' failed: %s\n", spec.c_str(),
                   run.status().ToString().c_str());
      return 1;
    }
    const api::PipelineReport& report = *run;
    // Stored points per input point, the paper's compression metric
    // (segments + 1 endpoints for a continuous representation).
    const double ratio =
        report.points_kept > 0
            ? 100.0 * static_cast<double>(report.segments + 1) /
                  static_cast<double>(report.points_kept)
            : 0.0;
    std::printf("%-24s %10zu %10.2f %10.2f %8s\n", report.spec.c_str(),
                report.segments, ratio, 100.0 * report.delta_ratio,
                report.verified ? "yes" : "NO");
    if (&spec == &specs.back()) {
      for (const traj::TaggedSegment& s : report.segments_out) {
        last_representation.Append(s.segment);
      }
    }
  }

  const Status st = traj::WriteRepresentationCsv(last_representation, output);
  if (!st.ok()) {
    std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote %s representation to %s\n", specs.back().c_str(),
              output.c_str());
  return 0;
}
