// File pipeline scenario: read a GeoLife-format PLT file (or a CSV), pick
// an error bound, compress with every OPERB-family configuration, write
// the representation back to CSV, and contrast with the lossless delta
// codec — the end-to-end offline workflow of a trajectory archive.
//
// Usage: io_pipeline [input.(plt|csv)] [zeta_m] [output.csv]
// With no arguments a demo PLT file is synthesized in a temp directory.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "codec/delta.h"
#include "core/operb.h"
#include "core/operb_a.h"
#include "datagen/profiles.h"
#include "datagen/rng.h"
#include "eval/metrics.h"
#include "eval/verifier.h"
#include "geo/projection.h"
#include "traj/io.h"

namespace {

/// Synthesizes a small PLT file around Beijing so the example runs
/// self-contained.
std::string WriteDemoPlt() {
  using namespace operb;  // NOLINT
  const auto dir = std::filesystem::temp_directory_path() / "operb_example";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "demo.plt").string();

  datagen::Rng rng(7);
  const traj::Trajectory walk = datagen::GenerateTrajectory(
      datagen::DatasetProfile::For(datagen::DatasetKind::kGeoLife), 1500,
      &rng);
  const geo::LocalProjector projector({39.9, 116.4});
  std::ofstream out(path);
  out << "Geolife trajectory\nWGS 84\nAltitude is in Feet\nReserved 3\n"
         "0,2,255,My Track,0,0,2,8421376\n0\n";
  char buf[160];
  for (const geo::Point& p : walk) {
    const geo::LatLon c = projector.Unproject(p.pos());
    const double days = 39744.0 + p.t / 86400.0;
    std::snprintf(buf, sizeof(buf), "%.6f,%.6f,0,160,%.9f,d,t\n", c.lat,
                  c.lon, days);
    out << buf;
  }
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace operb;  // NOLINT

  const std::string input = argc > 1 ? argv[1] : WriteDemoPlt();
  const double zeta = argc > 2 ? std::atof(argv[2]) : 25.0;
  const std::string output =
      argc > 3 ? argv[3]
               : (std::filesystem::temp_directory_path() / "operb_example" /
                  "compressed.csv")
                     .string();

  Result<traj::Trajectory> loaded =
      input.size() > 4 && input.substr(input.size() - 4) == ".plt"
          ? traj::ReadGeoLifePlt(input)
          : traj::ReadCsv(input);
  if (!loaded.ok()) {
    std::fprintf(stderr, "failed to read %s: %s\n", input.c_str(),
                 loaded.status().ToString().c_str());
    return 1;
  }
  const traj::Trajectory& t = *loaded;
  std::printf("loaded %s: %s\n", input.c_str(), t.ToString().c_str());

  struct Row {
    const char* name;
    traj::PiecewiseRepresentation rep;
  };
  std::vector<Row> rows;
  rows.push_back({"Raw-OPERB", core::SimplifyOperb(
                                   t, core::OperbOptions::Raw(zeta))});
  rows.push_back({"OPERB", core::SimplifyOperb(
                               t, core::OperbOptions::Optimized(zeta))});
  rows.push_back({"OPERB-A", core::SimplifyOperbA(
                                 t, core::OperbAOptions::Optimized(zeta))});

  std::printf("\n%-10s %10s %10s %10s %8s\n", "algorithm", "segments",
              "ratio_%", "avg_err_m", "bounded");
  for (const Row& row : rows) {
    const auto err = eval::MeasureError(t, row.rep);
    const bool ok = eval::VerifyErrorBound(t, row.rep, zeta).bounded;
    std::printf("%-10s %10zu %10.2f %10.2f %8s\n", row.name, row.rep.size(),
                100.0 * eval::CompressionRatio(t, row.rep), err.average,
                ok ? "yes" : "NO");
  }

  // Lossless comparison point (related work [19]): delta codec.
  const double delta_ratio = codec::DeltaCompressionRatio(t);
  std::printf("%-10s %10s %10.2f %10.2f %8s   (lossless baseline)\n",
              "delta", "-", 100.0 * delta_ratio, 0.0, "yes");

  const Status st = traj::WriteRepresentationCsv(rows.back().rep, output);
  if (!st.ok()) {
    std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote OPERB-A representation to %s\n", output.c_str());
  return 0;
}
