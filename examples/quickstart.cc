// Quickstart: compress one GPS trajectory with OPERB-A in ~20 lines.
//
// Build & run:   ./quickstart

#include <cstdio>

#include "core/operb_a.h"
#include "datagen/profiles.h"
#include "datagen/rng.h"
#include "eval/metrics.h"

int main() {
  using namespace operb;  // NOLINT: example brevity

  // A realistic drive: ~33 minutes of urban driving sampled every 3-5 s.
  datagen::Rng rng(1);
  const traj::Trajectory drive = datagen::GenerateTrajectory(
      datagen::DatasetProfile::For(datagen::DatasetKind::kSerCar),
      /*num_points=*/500, &rng);

  // Compress with an error bound of 30 meters.
  const core::OperbAOptions options = core::OperbAOptions::Optimized(30.0);
  core::OperbAStats stats;
  const traj::PiecewiseRepresentation compressed =
      core::SimplifyOperbA(drive, options, &stats);

  const auto error = eval::MeasureError(drive, compressed);
  std::printf("input:  %zu points (%.1f km, %.0f s)\n", drive.size(),
              drive.PathLength() / 1000.0, drive.Duration());
  std::printf("output: %zu line segments (%zu stored points, ratio %.1f%%)\n",
              compressed.size(), compressed.StoredPointCount(),
              100.0 * eval::CompressionRatio(drive, compressed));
  std::printf("error:  avg %.2f m, max %.2f m (bound 30 m)\n", error.average,
              error.max);
  std::printf("patches: %zu of %zu anomalous segments eliminated\n",
              stats.patches_applied, stats.anomalous_segments);

  // The representation is a sequence of continuous directed segments.
  for (std::size_t i = 0; i < std::min<std::size_t>(compressed.size(), 5);
       ++i) {
    std::printf("  L%zu: %s\n", i, compressed[i].ToString().c_str());
  }
  if (compressed.size() > 5) std::printf("  ...\n");
  return 0;
}
