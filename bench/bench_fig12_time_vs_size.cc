// Figure 12 (Exp-1.1): compression time vs trajectory size, zeta = 40 m.
// Paper shape: OPERB/OPERB-A linear and fastest (3.8-8.4x over FBQS,
// 8.4-17.6x over DP); DP super-linear.

#include <cstdio>
#include <string>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace operb;  // NOLINT
  if (!bench::ParseBenchArgs(argc, argv)) return 2;
  bench::Banner(
      "Figure 12: time vs |T| (zeta = 40 m)",
      "OPERB & OPERB-A fastest, linear; 3.8-8.4x faster than FBQS and "
      "8.4-17.6x than DP across datasets");

  const double zeta = 40.0;
  const std::vector<baselines::Algorithm> algos{
      baselines::Algorithm::kDP, baselines::Algorithm::kFBQS,
      baselines::Algorithm::kOPERB, baselines::Algorithm::kOPERBA};

  for (auto kind : datagen::AllDatasetKinds()) {
    std::printf("\n[%s] time per point (ns), 8 trajectories per size\n",
                std::string(datagen::DatasetName(kind)).c_str());
    std::printf("%8s", "|T|");
    for (auto algo : algos) {
      std::printf(" %11s", std::string(baselines::AlgorithmName(algo)).c_str());
    }
    std::printf(" %11s %11s\n", "DP/OPERB", "FBQS/OPERB");

    for (std::size_t size : {2000u, 4000u, 6000u, 8000u, 10000u}) {
      const auto dataset = bench::MakeDataset(kind, 8, size);
      const double total = static_cast<double>(bench::TotalPoints(dataset));
      std::printf("%8zu", size);
      double t_dp = 0.0, t_fbqs = 0.0, t_operb = 0.0;
      for (auto algo : algos) {
        const auto s = bench::MakePaperSimplifier(algo, zeta);
        const auto run = bench::TimeSimplifier(*s, dataset);
        const double ns_per_point = run.seconds * 1e9 / total;
        std::printf(" %11.1f", ns_per_point);
        if (algo == baselines::Algorithm::kDP) t_dp = ns_per_point;
        if (algo == baselines::Algorithm::kFBQS) t_fbqs = ns_per_point;
        if (algo == baselines::Algorithm::kOPERB) t_operb = ns_per_point;
      }
      std::printf(" %10.1fx %10.1fx\n", t_dp / t_operb, t_fbqs / t_operb);
    }
  }
  return 0;
}
