#ifndef OPERB_BENCH_BENCH_UTIL_H_
#define OPERB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/simplifier.h"
#include "common/stopwatch.h"
#include "datagen/profiles.h"
#include "traj/piecewise.h"
#include "traj/trajectory.h"

namespace operb::bench {

/// Shared fixed seed so every figure sees the same datasets.
inline constexpr std::uint64_t kBenchSeed = 20170401;

/// Generates the scaled-down stand-in for one of the paper's datasets.
inline std::vector<traj::Trajectory> MakeDataset(
    datagen::DatasetKind kind, std::size_t trajectories, std::size_t points,
    std::uint64_t seed = kBenchSeed) {
  datagen::DatasetSpec spec;
  spec.kind = kind;
  spec.num_trajectories = trajectories;
  spec.points_per_trajectory = points;
  spec.seed = seed;
  return datagen::GenerateDataset(spec);
}

/// Runs `simplifier` over the dataset, returning {seconds per full pass,
/// representations of the last pass}. Repeats the pass until at least
/// `min_millis` of work has been timed so fast algorithms get stable
/// numbers on fast machines.
struct TimedRun {
  double seconds = 0.0;
  std::vector<traj::PiecewiseRepresentation> representations;
};

inline TimedRun TimeSimplifier(const baselines::Simplifier& simplifier,
                               const std::vector<traj::Trajectory>& dataset,
                               double min_millis = 80.0) {
  TimedRun run;
  int passes = 0;
  Stopwatch watch;
  do {
    run.representations.clear();
    run.representations.reserve(dataset.size());
    for (const traj::Trajectory& t : dataset) {
      run.representations.push_back(simplifier.Simplify(t));
    }
    ++passes;
  } while (watch.ElapsedMillis() < min_millis);
  run.seconds = watch.ElapsedSeconds() / passes;
  return run;
}

/// Figure benches reproduce the paper's configuration: OPERB/OPERB-A with
/// the heuristics verbatim (no strict-bound guard). The ablation bench
/// quantifies the guarded default separately.
inline std::unique_ptr<baselines::Simplifier> MakePaperSimplifier(
    baselines::Algorithm algorithm, double zeta) {
  return baselines::MakeSimplifier(algorithm, zeta,
                                   baselines::OperbFidelity::kPaperFaithful);
}

/// Total number of points across a dataset.
inline std::size_t TotalPoints(const std::vector<traj::Trajectory>& dataset) {
  std::size_t n = 0;
  for (const auto& t : dataset) n += t.size();
  return n;
}

/// Prints the standard bench banner.
inline void Banner(const char* experiment, const char* paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper reference: %s\n", paper_claim);
  std::printf("==============================================================\n");
}

}  // namespace operb::bench

#endif  // OPERB_BENCH_BENCH_UTIL_H_
