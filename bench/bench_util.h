#ifndef OPERB_BENCH_BENCH_UTIL_H_
#define OPERB_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/simplifier.h"
#include "common/stopwatch.h"
#include "datagen/profiles.h"
#include "traj/piecewise.h"
#include "traj/trajectory.h"

namespace operb::bench {

/// Shared fixed seed so every figure sees the same datasets.
inline constexpr std::uint64_t kBenchSeed = 20170401;

/// Process-wide smoke mode, set by ParseBenchArgs from `--smoke`: clamps
/// every generated dataset and collapses the timing windows so a figure
/// harness finishes in well under a second. ctest registers each bench
/// with `--smoke` to catch bit-rot without paying benchmark cost.
inline bool& SmokeMode() {
  static bool smoke = false;
  return smoke;
}

/// Parses a figure-bench command line; only `--smoke` is recognized.
/// Returns false (after printing a diagnostic) on anything else.
inline bool ParseBenchArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") {
      SmokeMode() = true;
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s' (only --smoke)\n",
                   argv[0], argv[i]);
      return false;
    }
  }
  return true;
}

/// Generates the scaled-down stand-in for one of the paper's datasets.
/// In smoke mode the sizes are clamped further (2 trajectories of <= 400
/// points) — enough to execute every code path, useless for timing.
inline std::vector<traj::Trajectory> MakeDataset(
    datagen::DatasetKind kind, std::size_t trajectories, std::size_t points,
    std::uint64_t seed = kBenchSeed) {
  datagen::DatasetSpec spec;
  spec.kind = kind;
  spec.num_trajectories =
      SmokeMode() ? std::min<std::size_t>(trajectories, 2) : trajectories;
  spec.points_per_trajectory =
      SmokeMode() ? std::min<std::size_t>(points, 400) : points;
  spec.seed = seed;
  return datagen::GenerateDataset(spec);
}

/// Runs `simplifier` over the dataset, returning {seconds per full pass,
/// representations of the last pass}. Repeats the pass until at least
/// `min_millis` of work has been timed so fast algorithms get stable
/// numbers on fast machines. Pass a negative `min_millis` (the default)
/// for the standard window: 80 ms, or a single pass in smoke mode.
struct TimedRun {
  double seconds = 0.0;
  std::vector<traj::PiecewiseRepresentation> representations;
};

inline TimedRun TimeSimplifier(const baselines::Simplifier& simplifier,
                               const std::vector<traj::Trajectory>& dataset,
                               double min_millis = -1.0) {
  if (min_millis < 0.0) min_millis = SmokeMode() ? 0.0 : 80.0;
  TimedRun run;
  int passes = 0;
  Stopwatch watch;
  do {
    run.representations.clear();
    run.representations.reserve(dataset.size());
    for (const traj::Trajectory& t : dataset) {
      run.representations.push_back(simplifier.Simplify(t));
    }
    ++passes;
  } while (watch.ElapsedMillis() < min_millis);
  run.seconds = watch.ElapsedSeconds() / passes;
  return run;
}

/// Figure benches reproduce the paper's configuration: OPERB/OPERB-A with
/// the heuristics verbatim (no strict-bound guard). The ablation bench
/// quantifies the guarded default separately.
inline std::unique_ptr<baselines::Simplifier> MakePaperSimplifier(
    baselines::Algorithm algorithm, double zeta) {
  return baselines::MakeSimplifier(algorithm, zeta,
                                   baselines::OperbFidelity::kPaperFaithful);
}

/// Total number of points across a dataset.
inline std::size_t TotalPoints(const std::vector<traj::Trajectory>& dataset) {
  std::size_t n = 0;
  for (const auto& t : dataset) n += t.size();
  return n;
}

/// Prints the standard bench banner.
inline void Banner(const char* experiment, const char* paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper reference: %s\n", paper_claim);
  std::printf("==============================================================\n");
}

}  // namespace operb::bench

#endif  // OPERB_BENCH_BENCH_UTIL_H_
