// Figure 17 (Exp-2.3): distribution of line segments — Z(k) = number of
// output segments representing exactly k data points, zeta = 40 m.
// Paper shape: DP and OPERB-A produce more heavy segments than FBQS and
// OPERB; OPERB has the most 1-2 point segments, largely removed by
// OPERB-A.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "eval/metrics.h"

int main(int argc, char** argv) {
  using namespace operb;  // NOLINT
  if (!bench::ParseBenchArgs(argc, argv)) return 2;
  bench::Banner(
      "Figure 17: segment-size distribution Z(k), zeta = 40 m",
      "DP & OPERB-A produce more heavy segments; OPERB has the most "
      "1-point segments, mostly eliminated by OPERB-A");

  const double zeta = 40.0;
  const std::vector<baselines::Algorithm> algos{
      baselines::Algorithm::kDP, baselines::Algorithm::kFBQS,
      baselines::Algorithm::kOPERB, baselines::Algorithm::kOPERBA};

  // Buckets of k as the paper plots them (log-ish).
  const std::vector<std::pair<std::size_t, std::size_t>> buckets{
      {1, 1}, {2, 2}, {3, 4}, {5, 8}, {9, 16}, {17, 32}, {33, 64},
      {65, 1u << 30}};

  for (auto kind : datagen::AllDatasetKinds()) {
    const auto dataset = bench::MakeDataset(kind, 8, 8000);
    std::printf("\n[%s] Z(k): segments whose point count falls in bucket\n",
                std::string(datagen::DatasetName(kind)).c_str());
    std::printf("%12s", "k");
    for (const auto& [lo, hi] : buckets) {
      char label[32];
      if (lo == hi) {
        std::snprintf(label, sizeof(label), "%zu", lo);
      } else if (hi > (1u << 20)) {
        std::snprintf(label, sizeof(label), ">=%zu", lo);
      } else {
        std::snprintf(label, sizeof(label), "%zu-%zu", lo, hi);
      }
      std::printf(" %9s", label);
    }
    std::printf("\n");
    for (auto algo : algos) {
      const auto s = bench::MakePaperSimplifier(algo, zeta);
      std::vector<traj::PiecewiseRepresentation> reps;
      for (const auto& t : dataset) reps.push_back(s->Simplify(t));
      const auto z = eval::SegmentSizeDistribution(reps);
      std::printf("%12s", std::string(s->name()).c_str());
      for (const auto& [lo, hi] : buckets) {
        std::size_t count = 0;
        for (const auto& [k, n] : z) {
          if (k >= lo && k <= hi) count += n;
        }
        std::printf(" %9zu", count);
      }
      std::printf("\n");
    }
  }
  return 0;
}
