// Figure 13 (Exp-1.2): compression time vs error bound zeta.
// Paper shape: all algorithms mildly faster as zeta grows; OPERB on
// average (13.9, 17.4, 14.7, 20.6)x faster than DP and (4.1, 4.1, 5.4,
// 5.2)x faster than FBQS on (Taxi, Truck, SerCar, GeoLife); OPERB-A ~= OPERB.

#include <cstdio>
#include <string>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace operb;  // NOLINT
  if (!bench::ParseBenchArgs(argc, argv)) return 2;
  bench::Banner(
      "Figure 13: time vs zeta",
      "mild decrease with zeta; OPERB ~4-5x faster than FBQS, ~14-21x "
      "than DP; OPERB-A ~= OPERB");

  const std::vector<baselines::Algorithm> algos{
      baselines::Algorithm::kDP, baselines::Algorithm::kFBQS,
      baselines::Algorithm::kOPERB, baselines::Algorithm::kOPERBA};

  for (auto kind : datagen::AllDatasetKinds()) {
    const auto dataset = bench::MakeDataset(kind, 8, 8000);
    const double total = static_cast<double>(bench::TotalPoints(dataset));
    std::printf("\n[%s] time per point (ns)\n",
                std::string(datagen::DatasetName(kind)).c_str());
    std::printf("%8s", "zeta_m");
    for (auto algo : algos) {
      std::printf(" %11s", std::string(baselines::AlgorithmName(algo)).c_str());
    }
    std::printf(" %11s %11s\n", "DP/OPERB", "FBQS/OPERB");

    double sum_dp_ratio = 0.0, sum_fbqs_ratio = 0.0;
    int rows = 0;
    for (double zeta : {10.0, 20.0, 40.0, 60.0, 80.0, 100.0}) {
      std::printf("%8.0f", zeta);
      double t_dp = 0.0, t_fbqs = 0.0, t_operb = 0.0;
      for (auto algo : algos) {
        const auto s = bench::MakePaperSimplifier(algo, zeta);
        const auto run = bench::TimeSimplifier(*s, dataset);
        const double ns_per_point = run.seconds * 1e9 / total;
        std::printf(" %11.1f", ns_per_point);
        if (algo == baselines::Algorithm::kDP) t_dp = ns_per_point;
        if (algo == baselines::Algorithm::kFBQS) t_fbqs = ns_per_point;
        if (algo == baselines::Algorithm::kOPERB) t_operb = ns_per_point;
      }
      std::printf(" %10.1fx %10.1fx\n", t_dp / t_operb, t_fbqs / t_operb);
      sum_dp_ratio += t_dp / t_operb;
      sum_fbqs_ratio += t_fbqs / t_operb;
      ++rows;
    }
    std::printf("  average speedup of OPERB: %.1fx over DP, %.1fx over FBQS\n",
                sum_dp_ratio / rows, sum_fbqs_ratio / rows);
  }
  return 0;
}
