// Figure 16 (Exp-2.2): compression-ratio impact of the optimization
// techniques. Paper shape: OPERB reaches (87.9, 71.8, 61.8, 58.0)% of
// Raw-OPERB's ratio on (Taxi, Truck, SerCar, GeoLife) — bigger wins on
// densely sampled data — and the impact grows with zeta.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "eval/metrics.h"

int main(int argc, char** argv) {
  using namespace operb;  // NOLINT
  if (!bench::ParseBenchArgs(argc, argv)) return 2;
  bench::Banner(
      "Figure 16: optimization techniques, compression ratio (%)",
      "OPERB = 58-88% of Raw-OPERB (more on dense data, growing with "
      "zeta); OPERB-A = 77-93% of Raw-OPERB-A");

  const std::vector<baselines::Algorithm> algos{
      baselines::Algorithm::kRawOPERB, baselines::Algorithm::kOPERB,
      baselines::Algorithm::kRawOPERBA, baselines::Algorithm::kOPERBA};

  for (auto kind : datagen::AllDatasetKinds()) {
    const auto dataset = bench::MakeDataset(kind, 8, 8000);
    std::printf("\n[%s] compression ratio %%\n%8s",
                std::string(datagen::DatasetName(kind)).c_str(), "zeta_m");
    for (auto algo : algos) {
      std::printf(" %12s",
                  std::string(baselines::AlgorithmName(algo)).c_str());
    }
    std::printf(" %10s %10s\n", "opt/raw", "optA/rawA");

    double sum_plain = 0.0, sum_aggr = 0.0;
    int rows = 0;
    for (double zeta : {5.0, 10.0, 20.0, 40.0, 60.0, 80.0, 100.0}) {
      std::printf("%8.0f", zeta);
      double r[4] = {0, 0, 0, 0};
      for (std::size_t i = 0; i < algos.size(); ++i) {
        const auto s = bench::MakePaperSimplifier(algos[i], zeta);
        std::vector<traj::PiecewiseRepresentation> reps;
        for (const auto& t : dataset) reps.push_back(s->Simplify(t));
        r[i] = eval::AggregateCompressionRatio(dataset, reps) * 100.0;
        std::printf(" %12.2f", r[i]);
      }
      std::printf(" %9.1f%% %9.1f%%\n", 100.0 * r[1] / r[0],
                  100.0 * r[3] / r[2]);
      sum_plain += r[1] / r[0];
      sum_aggr += r[3] / r[2];
      ++rows;
    }
    std::printf("  average: OPERB %.1f%% of Raw-OPERB; OPERB-A %.1f%% of "
                "Raw-OPERB-A\n",
                100.0 * sum_plain / rows, 100.0 * sum_aggr / rows);
  }
  std::printf(
      "\npaper averages: OPERB/Raw = (87.9, 71.8, 61.8, 58.0)%%; "
      "OPERB-A/Raw-A = (93.1, 88.5, 77.1, 78.5)%%\n");
  return 0;
}
