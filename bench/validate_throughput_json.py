#!/usr/bin/env python3
"""Validates BENCH_throughput.json against the operb-bench-throughput
schema (version 9). Stdlib-only so CI needs no extra packages.

Beyond shape checks, the store section carries semantic gates: the
R-tree index must never skip fewer blocks than the flat footer scan, the
two scan modes must match the same segments, the index may touch at most
25% of the nodes the flat scan visits (footers), and compaction must not
change the window query's answer. The checkpoint section (v6) gates on
output_match == 1: a checkpoint/restore cycle must reproduce the
uninterrupted run's output exactly. The metrics_overhead section (new in
v7) gates live obs instrumentation to at most 3% over the plain sink
loop in full mode (smoke passes are microsecond-scale, so the benchmark
binary applies a looser smoke tolerance before the JSON is written; the
validator re-checks the full-mode bound only when smoke is false). The
server section (new in v8) gates the live daemon: a full-mode run must
hold at least 100k live objects, sweep at least 2 client-thread counts,
and report positive qps with p50 <= p99 query latency. The
simd_vs_scalar section (new in v9) carries the batched-SIMD kernel
evidence: every row's output hash pair must match (bit-identity is
non-negotiable in smoke and full mode alike), and in full mode on a
vector-capable host each kernel micro must run at >= 1.5x scalar and
the dense steady-state row must show the >= 2x pointwise->batched
speedup the refactor claims.

Usage: validate_throughput_json.py PATH
Exit codes: 0 valid, 1 invalid, 2 usage/IO error.
"""

import json
import sys

NUMBER = (int, float)

TOP_LEVEL = {
    "schema": str,
    "schema_version": int,
    "smoke": bool,
    "unix_time": int,
    "zeta": NUMBER,
    "seed": int,
    "ingest": list,
    "steady_state": list,
    "simd_vs_scalar": list,
    "end_to_end": list,
    "concurrent_streams": list,
    "facade_overhead": list,
    "metrics_overhead": list,
    "store": list,
    "checkpoint": list,
    "server": list,
}

SECTION_FIELDS = {
    "ingest": {
        "format": str,
        "profile": str,
        "points": int,
        "bytes": int,
        "passes": int,
        "seconds_per_pass": NUMBER,
        "points_per_sec": NUMBER,
        "mb_per_sec": NUMBER,
    },
    "steady_state": {
        "algorithm": str,
        "spec": str,
        "profile": str,
        "points": int,
        "segments": int,
        "passes": int,
        "seconds_per_pass": NUMBER,
        "points_per_sec": NUMBER,
    },
    "simd_vs_scalar": {
        "kind": str,
        "name": str,
        "level": str,
        "points": int,
        "rounds": int,
        "base_points_per_sec": NUMBER,
        "simd_points_per_sec": NUMBER,
        "speedup": NUMBER,
        "hash_base": str,
        "hash_simd": str,
        "hash_match": int,
    },
    "end_to_end": {
        "pipeline": str,
        "algorithm": str,
        "spec": str,
        "profile": str,
        "points": int,
        "passes": int,
        "seconds_per_pass": NUMBER,
        "points_per_sec": NUMBER,
    },
    "concurrent_streams": {
        "algorithm": str,
        "spec": str,
        "live_objects": int,
        "threads": int,
        "shards": int,
        "points": int,
        "segments": int,
        "passes": int,
        "seconds_per_pass": NUMBER,
        "points_per_sec": NUMBER,
    },
    "facade_overhead": {
        "algorithm": str,
        "spec": str,
        "profile": str,
        "points": int,
        "direct_points_per_sec": NUMBER,
        "facade_points_per_sec": NUMBER,
        "overhead_pct": NUMBER,
    },
    "metrics_overhead": {
        "algorithm": str,
        "spec": str,
        "profile": str,
        "points": int,
        "metrics_compiled_in": int,
        "plain_points_per_sec": NUMBER,
        "instrumented_points_per_sec": NUMBER,
        "overhead_pct": NUMBER,
    },
    "store": {
        "algorithm": str,
        "spec": str,
        "objects": int,
        "points": int,
        "segments": int,
        "blocks": int,
        "file_bytes": int,
        "shards": int,
        "index_nodes": int,
        "write_amplification": NUMBER,
        "write_passes": int,
        "write_seconds_per_pass": NUMBER,
        "write_segments_per_sec": NUMBER,
        "open_seconds_per_pass": NUMBER,
        "window_query_seconds": NUMBER,
        "window_blocks_skipped": int,
        "window_blocks_scanned": int,
        "window_index_nodes_visited": int,
        "window_segments_matched": int,
        "flat_window_query_seconds": NUMBER,
        "flat_window_blocks_skipped": int,
        "flat_window_blocks_scanned": int,
        "flat_window_segments_matched": int,
        "reconstruct_seconds": NUMBER,
        "reconstruct_segments": int,
        "compact_seconds": NUMBER,
        "compact_shards_compacted": int,
        "compact_write_amplification": NUMBER,
        "compact_blocks_before": int,
        "compact_blocks_after": int,
        "compact_files_before": int,
        "compact_files_after": int,
        "post_compact_open_seconds": NUMBER,
        "post_compact_window_segments_matched": int,
    },
    "checkpoint": {
        "algorithm": str,
        "spec": str,
        "objects": int,
        "points": int,
        "prefix_points": int,
        "live_states": int,
        "threads": int,
        "shards": int,
        "checkpoint_bytes": int,
        "checkpoint_bytes_per_state": NUMBER,
        "checkpoint_write_passes": int,
        "checkpoint_write_seconds_per_pass": NUMBER,
        "restore_seconds": NUMBER,
        "segments": int,
        "output_match": int,
    },
    "server": {
        "algorithm": str,
        "spec": str,
        "live_objects": int,
        "ingest_points": int,
        "ingest_seconds": NUMBER,
        "ingest_points_per_sec": NUMBER,
        "client_threads": int,
        "queries": int,
        "query_qps": NUMBER,
        "query_p50_ms": NUMBER,
        "query_p99_ms": NUMBER,
        "seals": int,
        "backpressure_rejects": int,
    },
}


def fail(msg):
    print(f"validate_throughput_json: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    try:
        with open(sys.argv[1], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {sys.argv[1]}: {e}")

    if not isinstance(doc, dict):
        fail("top level is not an object")
    for key, typ in TOP_LEVEL.items():
        if key not in doc:
            fail(f"missing top-level key '{key}'")
        if not isinstance(doc[key], typ) or (
            typ is int and isinstance(doc[key], bool)
        ):
            fail(f"top-level key '{key}' has wrong type")
    if doc["schema"] != "operb-bench-throughput":
        fail(f"unexpected schema '{doc['schema']}'")
    if doc["schema_version"] != 9:
        fail(f"unexpected schema_version {doc['schema_version']}")

    for section, fields in SECTION_FIELDS.items():
        entries = doc[section]
        if not entries:
            fail(f"section '{section}' is empty")
        for i, entry in enumerate(entries):
            if not isinstance(entry, dict):
                fail(f"{section}[{i}] is not an object")
            for key, typ in fields.items():
                if key not in entry:
                    fail(f"{section}[{i}] missing key '{key}'")
                if not isinstance(entry[key], typ) or isinstance(
                    entry[key], bool
                ):
                    fail(f"{section}[{i}].{key} has wrong type")
            if section == "simd_vs_scalar":
                # Semantic gates (schema v9). Bit-identity first: the
                # scalar and SIMD output hashes must agree in every
                # mode — a diverging hash means the vector kernels
                # changed the algorithm's output, which no speedup
                # excuses.
                if entry["kind"] not in ("kernel", "steady_state"):
                    fail(f"{section}[{i}].kind '{entry['kind']}' unknown")
                if (entry["points"] <= 0 or entry["rounds"] <= 0
                        or entry["base_points_per_sec"] <= 0
                        or entry["simd_points_per_sec"] <= 0
                        or entry["speedup"] <= 0):
                    fail(f"{section}[{i}] has non-positive numbers")
                if entry["hash_match"] != 1:
                    fail(f"{section}[{i}] ({entry['kind']} "
                         f"{entry['name']}) scalar and SIMD output "
                         "hashes diverge")
                if entry["hash_base"] != entry["hash_simd"]:
                    fail(f"{section}[{i}] hash_match claims equality "
                         "but the hashes differ")
                # Timing gates are full-mode only (smoke passes are
                # microseconds) and need a vector unit to compare
                # against.
                if (not doc["smoke"] and entry["kind"] == "kernel"
                        and entry["level"] != "scalar"
                        and entry["speedup"] < 1.5):
                    fail(f"{section}[{i}] kernel {entry['name']} ran at "
                         f"only {entry['speedup']:.2f}x scalar "
                         "(need >= 1.5x)")
                continue
            if section == "facade_overhead":
                if (entry["points"] <= 0
                        or entry["direct_points_per_sec"] <= 0
                        or entry["facade_points_per_sec"] <= 0):
                    fail(f"{section}[{i}] has non-positive throughput")
                continue
            if section == "metrics_overhead":
                # Semantic gate (schema v7): live metrics may cost the
                # steady-state sink loop at most 3%. Smoke passes are
                # too short for the bound to be meaningful.
                if (entry["points"] <= 0
                        or entry["plain_points_per_sec"] <= 0
                        or entry["instrumented_points_per_sec"] <= 0):
                    fail(f"{section}[{i}] has non-positive throughput")
                if entry["metrics_compiled_in"] not in (0, 1):
                    fail(f"{section}[{i}].metrics_compiled_in must be 0/1")
                if not doc["smoke"] and entry["overhead_pct"] > 3.0:
                    fail(f"{section}[{i}] metrics overhead "
                         f"{entry['overhead_pct']:.1f}% exceeds the 3% "
                         "gate")
                continue
            if section == "store":
                if (entry["blocks"] <= 0 or entry["file_bytes"] <= 0
                        or entry["segments"] <= 0
                        or entry["shards"] <= 0
                        or entry["index_nodes"] <= 0
                        or entry["write_amplification"] <= 0
                        or entry["write_passes"] <= 0
                        or entry["write_seconds_per_pass"] <= 0
                        or entry["open_seconds_per_pass"] <= 0
                        or entry["window_query_seconds"] <= 0
                        or entry["flat_window_query_seconds"] <= 0
                        or entry["reconstruct_seconds"] <= 0
                        or entry["compact_seconds"] <= 0
                        or entry["compact_write_amplification"] <= 0
                        or entry["post_compact_open_seconds"] <= 0):
                    fail(f"{section}[{i}] has non-positive store numbers")
                if entry["window_blocks_skipped"] < 1:
                    fail(f"{section}[{i}] window query skipped no blocks "
                         "(footer pruning broken)")
                if (entry["window_blocks_skipped"]
                        + entry["window_blocks_scanned"]
                        != entry["blocks"]):
                    fail(f"{section}[{i}] skip/scan counts do not cover "
                         "the block count")
                # Index soundness and pruning gates (schema v5): the
                # R-tree must skip at least as many blocks as the flat
                # footer scan, agree with it on the matched segments,
                # and visit at most 25% as many index nodes as the flat
                # scan visits footers.
                if (entry["window_blocks_skipped"]
                        < entry["flat_window_blocks_skipped"]):
                    fail(f"{section}[{i}] R-tree skipped fewer blocks "
                         "than the flat footer scan")
                if (entry["window_segments_matched"]
                        != entry["flat_window_segments_matched"]):
                    fail(f"{section}[{i}] R-tree and flat scan matched "
                         "different segment counts")
                flat_footers = (entry["flat_window_blocks_skipped"]
                                + entry["flat_window_blocks_scanned"])
                if entry["window_index_nodes_visited"] * 4 > flat_footers:
                    fail(f"{section}[{i}] R-tree visited "
                         f"{entry['window_index_nodes_visited']} nodes "
                         f"against {flat_footers} flat-scanned footers "
                         "(over the 25% gate)")
                if (entry["post_compact_window_segments_matched"]
                        != entry["window_segments_matched"]):
                    fail(f"{section}[{i}] compaction changed the window "
                         "query's answer")
                if entry["compact_files_after"] > entry["compact_files_before"]:
                    fail(f"{section}[{i}] compaction grew the file count")
                continue
            if section == "server":
                # Semantic gates (schema v8): the daemon must have held
                # a real live fleet (>= 100k objects in full mode),
                # served every query, and reported ordered latency
                # percentiles. backpressure_rejects may be any
                # non-negative count — BUSY is flow control, not
                # failure.
                if (entry["live_objects"] <= 0
                        or entry["ingest_points"] <= 0
                        or entry["ingest_seconds"] <= 0
                        or entry["ingest_points_per_sec"] <= 0
                        or entry["client_threads"] <= 0
                        or entry["queries"] <= 0
                        or entry["query_qps"] <= 0
                        or entry["query_p50_ms"] <= 0
                        or entry["query_p99_ms"] <= 0):
                    fail(f"{section}[{i}] has non-positive server numbers")
                if entry["query_p50_ms"] > entry["query_p99_ms"]:
                    fail(f"{section}[{i}] p50 exceeds p99")
                if entry["seals"] < 0 or entry["backpressure_rejects"] < 0:
                    fail(f"{section}[{i}] has negative counters")
                if not doc["smoke"] and entry["live_objects"] < 100000:
                    fail(f"{section}[{i}] full-mode run held only "
                         f"{entry['live_objects']} live objects "
                         "(need >= 100000)")
                continue
            if section == "checkpoint":
                # Semantic gates (schema v6): the snapshot must exist and
                # cost something, every live state must fit in it, the
                # restore must be timed, and — the acceptance gate — the
                # resumed run must have reproduced the uninterrupted
                # run's output exactly.
                if (entry["points"] <= 0
                        or entry["prefix_points"] <= 0
                        or entry["prefix_points"] >= entry["points"]
                        or entry["live_states"] <= 0
                        or entry["checkpoint_bytes"] <= 0
                        or entry["checkpoint_bytes_per_state"] <= 0
                        or entry["checkpoint_write_passes"] <= 0
                        or entry["checkpoint_write_seconds_per_pass"] <= 0
                        or entry["restore_seconds"] <= 0
                        or entry["segments"] <= 0):
                    fail(f"{section}[{i}] has non-positive checkpoint "
                         "numbers")
                if entry["checkpoint_bytes"] < entry["live_states"]:
                    fail(f"{section}[{i}] checkpoint smaller than one "
                         "byte per live state")
                if entry["output_match"] != 1:
                    fail(f"{section}[{i}] resumed output did not match "
                         "the uninterrupted run")
                continue
            if entry["points"] <= 0 or entry["points_per_sec"] <= 0:
                fail(f"{section}[{i}] has non-positive throughput")
            if entry["passes"] <= 0 or entry["seconds_per_pass"] <= 0:
                fail(f"{section}[{i}] has non-positive timing")

    simd_kernels = [e for e in doc["simd_vs_scalar"]
                    if e["kind"] == "kernel"]
    if len(simd_kernels) < 6:
        fail(f"simd_vs_scalar covers only {len(simd_kernels)} kernels "
             "(need all 6)")
    simd_steady = [e for e in doc["simd_vs_scalar"]
                   if e["kind"] == "steady_state"]
    if len(simd_steady) < 5:
        fail(f"simd_vs_scalar has only {len(simd_steady)} steady-state "
             "rows (need the 4 stock profiles plus the dense variant)")
    dense = [e for e in simd_steady if "dense" in e["name"]]
    if not dense:
        fail("simd_vs_scalar is missing the dense-profile row")
    if (not doc["smoke"] and dense[0]["level"] != "scalar"
            and dense[0]["speedup"] < 2.0):
        fail(f"dense steady-state pointwise->batched speedup "
             f"{dense[0]['speedup']:.2f}x is below the 2x gate")

    algos = {e["algorithm"] for e in doc["steady_state"]}
    if len(algos) < 10:
        fail(f"steady_state covers only {len(algos)} algorithms (need 10)")
    for i, entry in enumerate(doc["concurrent_streams"]):
        if entry["threads"] <= 0 or entry["shards"] <= 0:
            fail(f"concurrent_streams[{i}] has non-positive threads/shards")
        if entry["live_objects"] <= 0:
            fail(f"concurrent_streams[{i}] has non-positive live_objects")
    thread_counts = {e["threads"] for e in doc["concurrent_streams"]}
    if len(thread_counts) < 2:
        fail("concurrent_streams must sweep at least 2 thread counts")
    server_threads = {e["client_threads"] for e in doc["server"]}
    if len(server_threads) < 2:
        fail("server must sweep at least 2 client-thread counts")
    # Spec strings must resolve to the algorithm they annotate.
    for section in ("steady_state", "end_to_end", "concurrent_streams",
                    "facade_overhead", "metrics_overhead", "store",
                    "checkpoint", "server"):
        for i, entry in enumerate(doc[section]):
            if not entry["spec"].startswith(entry["algorithm"] + ":"):
                fail(f"{section}[{i}].spec '{entry['spec']}' does not "
                     f"resolve to algorithm '{entry['algorithm']}'")
    print(f"{sys.argv[1]}: valid operb-bench-throughput v9 "
          f"({len(doc['steady_state'])} steady-state entries, "
          f"{len(doc['simd_vs_scalar'])} simd-vs-scalar entries, "
          f"{len(doc['concurrent_streams'])} concurrent-stream entries, "
          f"{len(doc['store'])} store entries, "
          f"{len(doc['checkpoint'])} checkpoint entries, "
          f"{len(doc['server'])} server entries)")


if __name__ == "__main__":
    main()
