// Table 1: real-life trajectory datasets — reproduced as scaled synthetic
// stand-ins (see DESIGN.md §3). Prints the same columns the paper reports
// plus the paper's original values for comparison.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace operb;  // NOLINT
  if (!bench::ParseBenchArgs(argc, argv)) return 2;
  bench::Banner(
      "Table 1: trajectory datasets (synthetic stand-ins, scaled down)",
      "Taxi: 60s sampling; Truck: 1-60s; SerCar: 3-5s; GeoLife: 1-5s; "
      "paper sizes 498M/746M/1.31G/24.2M points");

  std::printf("%-8s %13s %15s %18s %13s\n", "dataset", "trajectories",
              "sampling_s", "points/traj", "total_pts");
  for (auto kind : datagen::AllDatasetKinds()) {
    const std::size_t trajectories = 6;
    const std::size_t points = 8000;
    const auto dataset = bench::MakeDataset(kind, trajectories, points);
    double dt_min = 1e300, dt_max = 0.0;
    for (const auto& t : dataset) {
      const double dt = t.MeanSamplingIntervalSeconds();
      if (dt < dt_min) dt_min = dt;
      if (dt > dt_max) dt_max = dt;
    }
    std::printf("%-8s %13zu %9.1f-%-5.1f %18zu %13zu\n",
                std::string(datagen::DatasetName(kind)).c_str(), trajectories,
                dt_min, dt_max, points, bench::TotalPoints(dataset));
  }
  std::printf(
      "\npaper:   Taxi 12,727 traj @60s ~39.1K pts; Truck 10,368 @1-60s "
      "~71.9K;\n         SerCar 11,000 @3-5s ~119.1K; GeoLife 182 @1-5s "
      "~132.8K\n");
  return 0;
}
