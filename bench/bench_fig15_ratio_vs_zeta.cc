// Figure 15 (Exp-2.1): compression ratio vs zeta (lower is better).
// Paper shape: ratios fall as zeta grows; GeoLife lowest, Taxi highest;
// OPERB comparable with DP/FBQS; OPERB-A best everywhere (84.2%, 86.4%,
// 97.1%, 94.7% of DP on Taxi/Truck/SerCar/GeoLife).

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "eval/metrics.h"

int main(int argc, char** argv) {
  using namespace operb;  // NOLINT
  if (!bench::ParseBenchArgs(argc, argv)) return 2;
  bench::Banner(
      "Figure 15: compression ratio (%) vs zeta",
      "ratios fall with zeta; GeoLife lowest / Taxi highest; OPERB ~ DP ~ "
      "FBQS; OPERB-A best on all datasets");

  const std::vector<baselines::Algorithm> algos{
      baselines::Algorithm::kDP, baselines::Algorithm::kFBQS,
      baselines::Algorithm::kOPERB, baselines::Algorithm::kOPERBA};

  for (auto kind : datagen::AllDatasetKinds()) {
    const auto dataset = bench::MakeDataset(kind, 8, 8000);
    std::printf("\n[%s] compression ratio %%\n%8s",
                std::string(datagen::DatasetName(kind)).c_str(), "zeta_m");
    for (auto algo : algos) {
      std::printf(" %11s",
                  std::string(baselines::AlgorithmName(algo)).c_str());
    }
    std::printf(" %12s %12s\n", "OPERB/FBQS", "OPERB-A/DP");

    double sum_vs_fbqs = 0.0, sum_vs_dp = 0.0;
    int rows = 0;
    for (double zeta : {5.0, 10.0, 20.0, 40.0, 60.0, 80.0, 100.0}) {
      std::printf("%8.0f", zeta);
      double r_dp = 0, r_fbqs = 0, r_operb = 0, r_operba = 0;
      for (auto algo : algos) {
        const auto s = bench::MakePaperSimplifier(algo, zeta);
        std::vector<traj::PiecewiseRepresentation> reps;
        for (const auto& t : dataset) reps.push_back(s->Simplify(t));
        const double ratio =
            eval::AggregateCompressionRatio(dataset, reps) * 100.0;
        std::printf(" %11.2f", ratio);
        if (algo == baselines::Algorithm::kDP) r_dp = ratio;
        if (algo == baselines::Algorithm::kFBQS) r_fbqs = ratio;
        if (algo == baselines::Algorithm::kOPERB) r_operb = ratio;
        if (algo == baselines::Algorithm::kOPERBA) r_operba = ratio;
      }
      std::printf(" %11.1f%% %11.1f%%\n", 100.0 * r_operb / r_fbqs,
                  100.0 * r_operba / r_dp);
      sum_vs_fbqs += r_operb / r_fbqs;
      sum_vs_dp += r_operba / r_dp;
      ++rows;
    }
    std::printf("  average: OPERB %.1f%% of FBQS; OPERB-A %.1f%% of DP\n",
                100.0 * sum_vs_fbqs / rows, 100.0 * sum_vs_dp / rows);
  }
  std::printf(
      "\npaper averages: OPERB/FBQS = (107.2, 98.3, 92.9, 85.1)%%;\n"
      "                OPERB-A/DP = (84.2, 86.4, 97.1, 94.7)%% on "
      "(Taxi, Truck, SerCar, GeoLife)\n");
  return 0;
}
