// Figure 18 (Exp-3): average error vs zeta.
// Paper shape: average error grows with zeta and stays well below zeta;
// DP has lower error than FBQS; OPERB ~= OPERB-A (interpolation adds no
// error).

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "eval/metrics.h"

int main(int argc, char** argv) {
  using namespace operb;  // NOLINT
  if (!bench::ParseBenchArgs(argc, argv)) return 2;
  bench::Banner(
      "Figure 18: average error (m) vs zeta",
      "errors grow with zeta, all <= zeta; DP below FBQS; OPERB ~= "
      "OPERB-A");

  const std::vector<baselines::Algorithm> algos{
      baselines::Algorithm::kDP, baselines::Algorithm::kFBQS,
      baselines::Algorithm::kOPERB, baselines::Algorithm::kOPERBA};

  for (auto kind : datagen::AllDatasetKinds()) {
    const auto dataset = bench::MakeDataset(kind, 8, 8000);
    std::printf("\n[%s] average error (m); 'max' column is the worst "
                "per-point distance over all four algorithms\n%8s",
                std::string(datagen::DatasetName(kind)).c_str(), "zeta_m");
    for (auto algo : algos) {
      std::printf(" %11s",
                  std::string(baselines::AlgorithmName(algo)).c_str());
    }
    std::printf(" %9s\n", "max");

    for (double zeta : {5.0, 10.0, 20.0, 40.0, 60.0, 80.0, 100.0}) {
      std::printf("%8.0f", zeta);
      double worst = 0.0;
      for (auto algo : algos) {
        const auto s = bench::MakePaperSimplifier(algo, zeta);
        std::vector<traj::PiecewiseRepresentation> reps;
        for (const auto& t : dataset) reps.push_back(s->Simplify(t));
        const auto err = eval::AggregateError(dataset, reps);
        std::printf(" %11.2f", err.average);
        if (err.max > worst) worst = err.max;
      }
      std::printf(" %9.2f\n", worst);
    }
  }
  return 0;
}
