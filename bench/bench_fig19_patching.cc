// Figure 19 (Exp-4): trajectory interpolation.
//  (1) patching ratio Np/Na vs zeta, gamma_m = pi/3. Paper: averages
//      (50.5, 60.3, 63.2, 51.5)% on (Taxi, Truck, SerCar, GeoLife),
//      decreasing from zeta ~ 30-40 m.
//  (2) patching ratio vs gamma_m at zeta = 40 m. Paper: decreases with
//      gamma_m — slowly to ~75 deg, fast in (75, 145), fastest beyond.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/operb_a.h"
#include "geo/angle.h"

namespace {

operb::core::OperbAStats RunOnDataset(
    const std::vector<operb::traj::Trajectory>& dataset,
    operb::core::OperbAOptions options) {
  // Paper-faithful configuration (see bench_util.h).
  options.base.strict_bound_guard = false;
  operb::core::OperbAStats total;
  for (const auto& t : dataset) {
    operb::core::OperbAStats s;
    operb::core::SimplifyOperbA(t, options, &s);
    total.anomalous_segments += s.anomalous_segments;
    total.patches_applied += s.patches_applied;
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace operb;  // NOLINT
  if (!bench::ParseBenchArgs(argc, argv)) return 2;
  bench::Banner(
      "Figure 19-(1): patching ratio vs zeta (gamma_m = 60 deg)",
      "averages (50.5, 60.3, 63.2, 51.5)% on (Taxi, Truck, SerCar, "
      "GeoLife); decreasing for larger zeta");

  std::printf("%8s", "zeta_m");
  for (auto kind : datagen::AllDatasetKinds()) {
    std::printf(" %10s", std::string(datagen::DatasetName(kind)).c_str());
  }
  std::printf("\n");
  std::vector<std::vector<traj::Trajectory>> datasets;
  for (auto kind : datagen::AllDatasetKinds()) {
    datasets.push_back(bench::MakeDataset(kind, 8, 8000));
  }
  std::vector<double> sums(datasets.size(), 0.0);
  int rows = 0;
  for (double zeta : {10.0, 20.0, 30.0, 40.0, 60.0, 80.0, 100.0}) {
    std::printf("%8.0f", zeta);
    for (std::size_t d = 0; d < datasets.size(); ++d) {
      const auto stats =
          RunOnDataset(datasets[d], core::OperbAOptions::Optimized(zeta));
      const double pct = stats.PatchingRatio() * 100.0;
      sums[d] += pct;
      std::printf(" %9.1f%%", pct);
    }
    std::printf("\n");
    ++rows;
  }
  std::printf("%8s", "avg");
  for (double s : sums) std::printf(" %9.1f%%", s / rows);
  std::printf("\n");

  bench::Banner(
      "Figure 19-(2): patching ratio vs gamma_m (zeta = 40 m)",
      "monotonically decreasing; slow to ~75 deg, fast in (75,145), "
      "fastest beyond 145 deg");
  std::printf("%10s", "gamma_deg");
  for (auto kind : datagen::AllDatasetKinds()) {
    std::printf(" %10s", std::string(datagen::DatasetName(kind)).c_str());
  }
  std::printf("\n");
  for (double deg : {0.0, 15.0, 30.0, 45.0, 60.0, 75.0, 90.0, 105.0, 120.0,
                     135.0, 150.0, 165.0, 180.0}) {
    std::printf("%10.0f", deg);
    for (const auto& dataset : datasets) {
      core::OperbAOptions opts = core::OperbAOptions::Optimized(40.0);
      opts.gamma_m = geo::DegToRad(deg);
      const auto stats = RunOnDataset(dataset, opts);
      std::printf(" %9.1f%%", stats.PatchingRatio() * 100.0);
    }
    std::printf("\n");
  }
  return 0;
}
