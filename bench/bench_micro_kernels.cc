// Micro-benchmarks (google-benchmark) of the hot kernels: distance
// primitives, the fitting function, and per-point throughput of every
// simplifier. These back the complexity claims (O(1) fitting step, O(n)
// one-pass algorithms) with hardware numbers.

#include <benchmark/benchmark.h>

#include <span>

#include "baselines/simplifier.h"
#include "core/fitting.h"
#include "core/operb.h"
#include "core/operb_a.h"
#include "datagen/profiles.h"
#include "datagen/rng.h"
#include "geo/distance.h"

namespace {

using namespace operb;  // NOLINT

traj::Trajectory BenchTrajectory(std::size_t n) {
  datagen::Rng rng(7);
  return datagen::GenerateTrajectory(
      datagen::DatasetProfile::For(datagen::DatasetKind::kSerCar), n, &rng);
}

void BM_PointToLineDistance(benchmark::State& state) {
  const geo::Vec2 a{0, 0}, b{100, 37};
  double x = 0.0;
  for (auto _ : state) {
    x += geo::PointToLineDistance({x - 50.0, 20.0}, a, b);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_PointToLineDistance);

/// The pre-optimization AnchoredLine kernel: re-derive the unit vector
/// from theta with sin/cos on every call. Kept here (not in the library)
/// so the trig-free rewrite's win stays directly measurable.
double PointToAnchoredLineDistanceTrig(geo::Vec2 p,
                                       const geo::AnchoredLine& line) {
  const geo::Vec2 dir = geo::Vec2::FromAngle(line.theta);
  return std::fabs(dir.Cross(p - line.anchor));
}

void BM_AnchoredLineDistanceTrig(benchmark::State& state) {
  const geo::AnchoredLine line{{0, 0}, 100.0, 0.354};
  double x = 0.0;
  for (auto _ : state) {
    x += PointToAnchoredLineDistanceTrig({x - 50.0, 20.0}, line);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_AnchoredLineDistanceTrig);

/// The shipping kernel: cached unit direction, one cross product.
void BM_AnchoredLineDistanceDir(benchmark::State& state) {
  const geo::AnchoredLine line{{0, 0}, 100.0, 0.354};
  double x = 0.0;
  for (auto _ : state) {
    x += geo::PointToLineDistance({x - 50.0, 20.0}, line);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_AnchoredLineDistanceDir);

void BM_SynchronousEuclideanDistance(benchmark::State& state) {
  const geo::Point a{0, 0, 0}, b{100, 37, 60};
  double x = 0.0;
  for (auto _ : state) {
    x += geo::SynchronousEuclideanDistance({x - 50.0, 20.0, 30.0}, a, b);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_SynchronousEuclideanDistance);

void BM_FittingActivate(benchmark::State& state) {
  const core::OperbOptions opts = core::OperbOptions::Optimized(10.0);
  datagen::Rng rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    core::FittingFunction f({0, 0}, opts);
    f.Activate({6.0, 0.0});
    state.ResumeTiming();
    // 64 activations per iteration.
    for (int i = 2; i < 66; ++i) {
      const double r = i * 5.0 + 1.0;
      const geo::Vec2 p =
          geo::Vec2::FromAngle(0.002 * i) * r;
      if (f.IsActive(r)) f.Activate(p);
    }
    benchmark::DoNotOptimize(f.theta());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_FittingActivate);

void BM_OperbStreamPush(benchmark::State& state) {
  const auto t = BenchTrajectory(20000);
  for (auto _ : state) {
    core::OperbStream stream(core::OperbOptions::Optimized(40.0));
    for (const geo::Point& p : t) stream.Push(p);
    stream.Finish();
    benchmark::DoNotOptimize(stream.emitted().size());
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_OperbStreamPush);

/// Zero-allocation emission: segments go straight to a counting sink.
void BM_OperbStreamPushSink(benchmark::State& state) {
  const auto t = BenchTrajectory(20000);
  for (auto _ : state) {
    core::OperbStream stream(core::OperbOptions::Optimized(40.0));
    std::size_t segments = 0;
    stream.SetSink(
        [&segments](const traj::RepresentedSegment&) { ++segments; });
    stream.Push(std::span<const geo::Point>(t.points()));
    stream.Finish();
    benchmark::DoNotOptimize(segments);
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_OperbStreamPushSink);

void BM_OperbAStreamPush(benchmark::State& state) {
  const auto t = BenchTrajectory(20000);
  for (auto _ : state) {
    core::OperbAStream stream(core::OperbAOptions::Optimized(40.0));
    for (const geo::Point& p : t) stream.Push(p);
    stream.Finish();
    benchmark::DoNotOptimize(stream.stats().patches_applied);
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_OperbAStreamPush);

void BM_Simplifier(benchmark::State& state) {
  const auto algo = static_cast<baselines::Algorithm>(state.range(0));
  const auto t = BenchTrajectory(20000);
  const auto s = baselines::MakeSimplifier(algo, 40.0);
  state.SetLabel(std::string(s->name()));
  for (auto _ : state) {
    const auto rep = s->Simplify(t);
    benchmark::DoNotOptimize(rep.size());
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_Simplifier)
    ->DenseRange(0, static_cast<int>(baselines::Algorithm::kOPERBA), 1);

}  // namespace

BENCHMARK_MAIN();
