// Micro-benchmarks (google-benchmark) of the hot kernels: distance
// primitives, the fitting function, and per-point throughput of every
// simplifier. These back the complexity claims (O(1) fitting step, O(n)
// one-pass algorithms) with hardware numbers.

#include <benchmark/benchmark.h>

#include <span>

#include "baselines/simplifier.h"
#include "core/fitting.h"
#include "core/operb.h"
#include "core/operb_a.h"
#include "datagen/profiles.h"
#include "datagen/rng.h"
#include "geo/distance.h"
#include "geo/simd.h"

namespace {

using namespace operb;  // NOLINT

traj::Trajectory BenchTrajectory(std::size_t n) {
  datagen::Rng rng(7);
  return datagen::GenerateTrajectory(
      datagen::DatasetProfile::For(datagen::DatasetKind::kSerCar), n, &rng);
}

void BM_PointToLineDistance(benchmark::State& state) {
  const geo::Vec2 a{0, 0}, b{100, 37};
  double x = 0.0;
  for (auto _ : state) {
    x += geo::PointToLineDistance({x - 50.0, 20.0}, a, b);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_PointToLineDistance);

/// The pre-optimization AnchoredLine kernel: re-derive the unit vector
/// from theta with sin/cos on every call. Kept here (not in the library)
/// so the trig-free rewrite's win stays directly measurable.
double PointToAnchoredLineDistanceTrig(geo::Vec2 p,
                                       const geo::AnchoredLine& line) {
  const geo::Vec2 dir = geo::Vec2::FromAngle(line.theta);
  return std::fabs(dir.Cross(p - line.anchor));
}

void BM_AnchoredLineDistanceTrig(benchmark::State& state) {
  const geo::AnchoredLine line{{0, 0}, 100.0, 0.354};
  double x = 0.0;
  for (auto _ : state) {
    x += PointToAnchoredLineDistanceTrig({x - 50.0, 20.0}, line);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_AnchoredLineDistanceTrig);

/// The shipping kernel: cached unit direction, one cross product.
void BM_AnchoredLineDistanceDir(benchmark::State& state) {
  const geo::AnchoredLine line{{0, 0}, 100.0, 0.354};
  double x = 0.0;
  for (auto _ : state) {
    x += geo::PointToLineDistance({x - 50.0, 20.0}, line);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_AnchoredLineDistanceDir);

void BM_SynchronousEuclideanDistance(benchmark::State& state) {
  const geo::Point a{0, 0, 0}, b{100, 37, 60};
  double x = 0.0;
  for (auto _ : state) {
    x += geo::SynchronousEuclideanDistance({x - 50.0, 20.0, 30.0}, a, b);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_SynchronousEuclideanDistance);

// --------------------------------------------------------------------
// geo::simd batch kernels, one benchmark per kernel swept over every
// dispatch level the host supports (arg 0 = Level). Batch of 64 doubles
// (the OperbStream staging window), points near the line so the
// early-exit count kernels scan the whole batch. Compare the /scalar
// row against the vector rows for the per-kernel speedup; the
// simd_vs_scalar section of bench_throughput records the same ratio
// interleaved (robust to frequency drift on shared machines).
// --------------------------------------------------------------------

constexpr std::size_t kSimdBatch = 64;

struct SimdBenchInputs {
  double xs[kSimdBatch], ys[kSimdBatch];
  geo::Vec2 anchor{500.0, -250.0};
  geo::Vec2 dir{0.8, 0.6};
  geo::Vec2 ra_unit{-0.6, 0.8};

  SimdBenchInputs() {
    datagen::Rng rng(7);
    for (std::size_t i = 0; i < kSimdBatch; ++i) {
      const double along = static_cast<double>(i) * 12.0;
      const double across = (rng.NextDouble() - 0.5) * 16.0;
      xs[i] = anchor.x + along * dir.x - across * dir.y;
      ys[i] = anchor.y + along * dir.y + across * dir.x;
    }
  }
};

const SimdBenchInputs& SimdInputs() {
  static const SimdBenchInputs inputs;
  return inputs;
}

void SupportedSimdLevels(benchmark::internal::Benchmark* b) {
  for (geo::simd::Level level :
       {geo::simd::Level::kScalar, geo::simd::Level::kSse2,
        geo::simd::Level::kAvx2, geo::simd::Level::kNeon}) {
    if (geo::simd::Supported(level)) b->Arg(static_cast<int>(level));
  }
}

struct ScopedSimdLevel {
  explicit ScopedSimdLevel(benchmark::State& state) {
    const auto level = static_cast<geo::simd::Level>(state.range(0));
    geo::simd::ForceLevel(level);
    state.SetLabel(std::string(geo::simd::LevelName(level)));
  }
  ~ScopedSimdLevel() { geo::simd::ClearForcedLevel(); }
};

void BM_SimdSignedOffsets(benchmark::State& state) {
  const ScopedSimdLevel pin(state);
  const SimdBenchInputs& in = SimdInputs();
  double out[kSimdBatch];
  for (auto _ : state) {
    geo::simd::SignedOffsets(in.xs, in.ys, kSimdBatch, in.anchor, in.dir,
                             out);
    benchmark::DoNotOptimize(out[kSimdBatch - 1]);
  }
  state.SetItemsProcessed(state.iterations() * kSimdBatch);
}
BENCHMARK(BM_SimdSignedOffsets)->Apply(SupportedSimdLevels);

void BM_SimdRadii(benchmark::State& state) {
  const ScopedSimdLevel pin(state);
  const SimdBenchInputs& in = SimdInputs();
  double out[kSimdBatch];
  for (auto _ : state) {
    geo::simd::Radii(in.xs, in.ys, kSimdBatch, in.anchor, out);
    benchmark::DoNotOptimize(out[kSimdBatch - 1]);
  }
  state.SetItemsProcessed(state.iterations() * kSimdBatch);
}
BENCHMARK(BM_SimdRadii)->Apply(SupportedSimdLevels);

void BM_SimdDots(benchmark::State& state) {
  const ScopedSimdLevel pin(state);
  const SimdBenchInputs& in = SimdInputs();
  double out[kSimdBatch];
  for (auto _ : state) {
    geo::simd::Dots(in.xs, in.ys, kSimdBatch, in.anchor, in.dir, out);
    benchmark::DoNotOptimize(out[kSimdBatch - 1]);
  }
  state.SetItemsProcessed(state.iterations() * kSimdBatch);
}
BENCHMARK(BM_SimdDots)->Apply(SupportedSimdLevels);

void BM_SimdStageExtend(benchmark::State& state) {
  const ScopedSimdLevel pin(state);
  const SimdBenchInputs& in = SimdInputs();
  double r[kSimdBatch], off[kSimdBatch], ra[kSimdBatch], dot[kSimdBatch];
  for (auto _ : state) {
    geo::simd::StageExtend(in.xs, in.ys, kSimdBatch, in.anchor, in.dir,
                           in.ra_unit, /*want_dot=*/true, r, off, ra, dot);
    benchmark::DoNotOptimize(r[kSimdBatch - 1]);
    benchmark::DoNotOptimize(ra[kSimdBatch - 1]);
  }
  state.SetItemsProcessed(state.iterations() * kSimdBatch);
}
BENCHMARK(BM_SimdStageExtend)->Apply(SupportedSimdLevels);

void BM_SimdCountWithin(benchmark::State& state) {
  const ScopedSimdLevel pin(state);
  const SimdBenchInputs& in = SimdInputs();
  std::size_t total = 0;
  for (auto _ : state) {
    total += geo::simd::CountWithin(in.xs, in.ys, kSimdBatch, in.anchor,
                                    in.dir, 1e9);
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * kSimdBatch);
}
BENCHMARK(BM_SimdCountWithin)->Apply(SupportedSimdLevels);

void BM_SimdCountExtendAccept(benchmark::State& state) {
  const ScopedSimdLevel pin(state);
  const SimdBenchInputs& in = SimdInputs();
  double r[kSimdBatch], off[kSimdBatch], ra[kSimdBatch], dot[kSimdBatch];
  geo::simd::StageExtend(in.xs, in.ys, kSimdBatch, in.anchor, in.dir,
                         in.ra_unit, /*want_dot=*/true, r, off, ra, dot);
  geo::simd::ExtendAcceptParams p;
  p.length = 0.0;
  p.slack = 1e9;
  p.d_plus_max = 1e9;
  p.d_minus_max = 1e9;
  p.zeta = 1e9;
  p.guard = true;
  p.drift_plus = 1e9;
  p.drift_minus = 1e9;
  p.drift_back = 1e9;
  p.sum_ok = true;
  std::size_t total = 0;
  for (auto _ : state) {
    total += geo::simd::CountExtendAccept(r, off, ra, dot, kSimdBatch, p);
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * kSimdBatch);
}
BENCHMARK(BM_SimdCountExtendAccept)->Apply(SupportedSimdLevels);

void BM_FittingActivate(benchmark::State& state) {
  const core::OperbOptions opts = core::OperbOptions::Optimized(10.0);
  datagen::Rng rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    core::FittingFunction f({0, 0}, opts);
    f.Activate({6.0, 0.0});
    state.ResumeTiming();
    // 64 activations per iteration.
    for (int i = 2; i < 66; ++i) {
      const double r = i * 5.0 + 1.0;
      const geo::Vec2 p =
          geo::Vec2::FromAngle(0.002 * i) * r;
      if (f.IsActive(r)) f.Activate(p);
    }
    benchmark::DoNotOptimize(f.theta());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_FittingActivate);

void BM_OperbStreamPush(benchmark::State& state) {
  const auto t = BenchTrajectory(20000);
  for (auto _ : state) {
    core::OperbStream stream(core::OperbOptions::Optimized(40.0));
    for (const geo::Point& p : t) stream.Push(p);
    stream.Finish();
    benchmark::DoNotOptimize(stream.emitted().size());
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_OperbStreamPush);

/// Zero-allocation emission: segments go straight to a counting sink.
void BM_OperbStreamPushSink(benchmark::State& state) {
  const auto t = BenchTrajectory(20000);
  for (auto _ : state) {
    core::OperbStream stream(core::OperbOptions::Optimized(40.0));
    std::size_t segments = 0;
    stream.SetSink(
        [&segments](const traj::RepresentedSegment&) { ++segments; });
    stream.Push(std::span<const geo::Point>(t.points()));
    stream.Finish();
    benchmark::DoNotOptimize(segments);
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_OperbStreamPushSink);

void BM_OperbAStreamPush(benchmark::State& state) {
  const auto t = BenchTrajectory(20000);
  for (auto _ : state) {
    core::OperbAStream stream(core::OperbAOptions::Optimized(40.0));
    for (const geo::Point& p : t) stream.Push(p);
    stream.Finish();
    benchmark::DoNotOptimize(stream.stats().patches_applied);
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_OperbAStreamPush);

void BM_Simplifier(benchmark::State& state) {
  const auto algo = static_cast<baselines::Algorithm>(state.range(0));
  const auto t = BenchTrajectory(20000);
  const auto s = baselines::MakeSimplifier(algo, 40.0);
  state.SetLabel(std::string(s->name()));
  for (auto _ : state) {
    const auto rep = s->Simplify(t);
    benchmark::DoNotOptimize(rep.size());
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_Simplifier)
    ->DenseRange(0, static_cast<int>(baselines::Algorithm::kOPERBA), 1);

}  // namespace

BENCHMARK_MAIN();
