// Ablation (library addition, DESIGN.md §4): each of the five Section 4.4
// optimizations toggled individually, plus the strict error-bound guard,
// measured by compression ratio and worst observed error. Quantifies which
// optimization buys what, and what the hard-guarantee guard costs.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/operb.h"
#include "eval/metrics.h"
#include "eval/verifier.h"

namespace {

struct Config {
  const char* name;
  operb::core::OperbOptions options;
};

void Run(const std::vector<operb::traj::Trajectory>& dataset,
         const Config& config, double zeta) {
  using namespace operb;  // NOLINT
  std::vector<traj::PiecewiseRepresentation> reps;
  double worst = 0.0;
  for (const auto& t : dataset) {
    reps.push_back(core::SimplifyOperb(t, config.options));
    const auto v = eval::VerifyErrorBound(t, reps.back(), zeta);
    if (v.worst_distance > worst) worst = v.worst_distance;
  }
  const double ratio =
      eval::AggregateCompressionRatio(dataset, reps) * 100.0;
  std::printf("  %-22s ratio %6.2f%%  worst_err %6.2f m (%5.1f%% of zeta)\n",
              config.name, ratio, worst, 100.0 * worst / zeta);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace operb;  // NOLINT
  if (!bench::ParseBenchArgs(argc, argv)) return 2;
  bench::Banner(
      "Ablation: OPERB optimizations (1)-(5) and the error-bound guard",
      "paper asserts each optimization improves the ratio; the guard is a "
      "library addition restoring a provable bound");

  for (auto kind : datagen::AllDatasetKinds()) {
    const auto dataset = bench::MakeDataset(kind, 6, 8000);
    for (double zeta : {20.0, 40.0}) {
      std::printf("\n[%s, zeta=%.0f m]\n",
                  std::string(datagen::DatasetName(kind)).c_str(), zeta);
      std::vector<Config> configs;
      configs.push_back({"raw (all off)", core::OperbOptions::Raw(zeta)});
      {
        auto o = core::OperbOptions::Raw(zeta);
        o.opt_first_active = true;
        configs.push_back({"+1 first-active", o});
      }
      {
        auto o = core::OperbOptions::Raw(zeta);
        o.opt_adjusted_distance = true;
        configs.push_back({"+2 adjusted-distance", o});
      }
      {
        auto o = core::OperbOptions::Raw(zeta);
        o.opt_closer_line = true;
        configs.push_back({"+3 closer-line", o});
      }
      {
        auto o = core::OperbOptions::Raw(zeta);
        o.opt_missing_active = true;
        configs.push_back({"+4 missing-active", o});
      }
      {
        auto o = core::OperbOptions::Raw(zeta);
        o.opt_absorb = true;
        configs.push_back({"+5 absorb", o});
      }
      configs.push_back(
          {"all five (guarded)", core::OperbOptions::Optimized(zeta)});
      {
        auto o = core::OperbOptions::Optimized(zeta);
        o.strict_bound_guard = false;
        configs.push_back({"all five (paper mode)", o});
      }
      for (const Config& c : configs) Run(dataset, c, zeta);
    }
  }
  return 0;
}
