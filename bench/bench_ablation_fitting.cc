// Ablation (paper Section 7 future work): alternative fitting functions.
// Sweeps the fitting function's step length (zone width) and activation
// slack around the paper's (zeta/2, zeta/4), with the drift guard keeping
// every configuration provably error bounded. Answers: is the paper's
// parameterization actually a good spot?

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/operb.h"
#include "eval/metrics.h"
#include "eval/verifier.h"

int main(int argc, char** argv) {
  using namespace operb;  // NOLINT
  if (!bench::ParseBenchArgs(argc, argv)) return 2;
  bench::Banner(
      "Ablation: fitting-function step length and activation slack",
      "the paper fixes step=0.5*zeta, slack=0.25*zeta and leaves "
      "alternative fitting functions as future work");

  const double zeta = 40.0;
  for (auto kind : {datagen::DatasetKind::kSerCar,
                    datagen::DatasetKind::kGeoLife}) {
    const auto dataset = bench::MakeDataset(kind, 6, 8000);
    std::printf("\n[%s, zeta=%.0f m] compression ratio %% (guarded; all "
                "configurations error bounded)\n",
                std::string(datagen::DatasetName(kind)).c_str(), zeta);
    std::printf("%12s", "step\\slack");
    for (double slack : {0.10, 0.25, 0.40, 0.60}) {
      std::printf(" %9.2f", slack);
    }
    std::printf("\n");
    for (double step : {0.25, 0.40, 0.50, 0.75, 1.00}) {
      std::printf("%12.2f", step);
      for (double slack : {0.10, 0.25, 0.40, 0.60}) {
        core::OperbOptions o = core::OperbOptions::Optimized(zeta);
        o.step_length_factor = step;
        o.activation_slack_factor = slack;
        std::vector<traj::PiecewiseRepresentation> reps;
        bool bounded = true;
        for (const auto& t : dataset) {
          reps.push_back(core::SimplifyOperb(t, o));
          bounded = bounded &&
                    eval::VerifyErrorBound(t, reps.back(), zeta).bounded;
        }
        const double ratio =
            eval::AggregateCompressionRatio(dataset, reps) * 100.0;
        std::printf(" %8.2f%s", ratio, bounded ? " " : "!");
      }
      std::printf("\n");
    }
    std::printf("  ('!' would flag an error-bound violation; none expected "
                "— the guard enforces the bound for every cell)\n");
  }
  return 0;
}
