// Figure 14 (Exp-1.3): efficiency impact of the Section 4.4 optimization
// techniques. Paper shape: Raw-OPERB runs at 79.6-100.4% of OPERB's time
// (i.e. the optimizations cost little), similarly Raw-OPERB-A vs OPERB-A.

#include <cstdio>
#include <string>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace operb;  // NOLINT
  if (!bench::ParseBenchArgs(argc, argv)) return 2;
  bench::Banner(
      "Figure 14: optimization techniques, efficiency (time per point, ns)",
      "Raw-OPERB ~80-100% of OPERB's time; Raw-OPERB-A ~90-102% of "
      "OPERB-A's — optimizations have limited efficiency impact");

  const std::vector<baselines::Algorithm> algos{
      baselines::Algorithm::kRawOPERB, baselines::Algorithm::kOPERB,
      baselines::Algorithm::kRawOPERBA, baselines::Algorithm::kOPERBA};

  for (auto kind : datagen::AllDatasetKinds()) {
    const auto dataset = bench::MakeDataset(kind, 8, 8000);
    const double total = static_cast<double>(bench::TotalPoints(dataset));
    std::printf("\n[%s]\n%8s", std::string(datagen::DatasetName(kind)).c_str(),
                "zeta_m");
    for (auto algo : algos) {
      std::printf(" %12s",
                  std::string(baselines::AlgorithmName(algo)).c_str());
    }
    std::printf(" %10s %10s\n", "raw/opt", "rawA/optA");

    double sum_plain = 0.0, sum_aggr = 0.0;
    int rows = 0;
    for (double zeta : {10.0, 20.0, 40.0, 60.0, 80.0, 100.0}) {
      std::printf("%8.0f", zeta);
      double t[4] = {0, 0, 0, 0};
      for (std::size_t i = 0; i < algos.size(); ++i) {
        const auto s = bench::MakePaperSimplifier(algos[i], zeta);
        const auto run = bench::TimeSimplifier(*s, dataset);
        t[i] = run.seconds * 1e9 / total;
        std::printf(" %12.1f", t[i]);
      }
      std::printf(" %9.1f%% %9.1f%%\n", 100.0 * t[0] / t[1],
                  100.0 * t[2] / t[3]);
      sum_plain += t[0] / t[1];
      sum_aggr += t[2] / t[3];
      ++rows;
    }
    std::printf("  average: Raw-OPERB %.1f%% of OPERB, Raw-OPERB-A %.1f%% "
                "of OPERB-A\n",
                100.0 * sum_plain / rows, 100.0 * sum_aggr / rows);
  }
  return 0;
}
