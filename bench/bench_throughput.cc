// bench_throughput: the repo's recorded perf trajectory (points/sec).
//
// Measures three layers of the pipeline on the synthetic dataset profiles
// and emits machine-readable BENCH_throughput.json (schema documented in
// README.md "Performance"; validated by validate_throughput_json.py):
//
//   ingest             — ParseCsv / ParseGeoLifePlt on in-memory content
//   steady_state       — each algorithm's sink-path compression throughput
//                        (segments stream to a counting sink; no buffer)
//   end_to_end         — the CLI flow: parse CSV -> validate -> simplify
//                        (sink) -> independent bound verification
//   concurrent_streams — the sharded StreamEngine on a round-robin
//                        interleaved fleet feed: points/sec vs worker
//                        thread count at 10k and 100k live objects
//
// `--smoke` shrinks every dataset to a single fast pass (for CI), `--out
// PATH` overrides the default ./BENCH_throughput.json. Later PRs
// (sharding, parallel ingest, ...) are benchmarked against the committed
// JSON at the repo root.
//
// Exit codes: 0 success, 1 write failure, 2 usage error.

#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include <span>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "engine/stream_engine.h"
#include "eval/verifier.h"
#include "traj/io.h"
#include "traj/multi_object.h"

namespace {

using namespace operb;  // NOLINT

constexpr double kZeta = 40.0;

struct Timing {
  double seconds_per_pass = 0.0;
  int passes = 0;
};

/// Repeats `fn` until enough wall time accumulated for a stable number
/// (single pass in smoke mode).
template <typename Fn>
Timing TimeLoop(Fn&& fn) {
  const double min_millis = bench::SmokeMode() ? 0.0 : 150.0;
  Timing t;
  Stopwatch watch;
  do {
    fn();
    ++t.passes;
  } while (watch.ElapsedMillis() < min_millis);
  t.seconds_per_pass = watch.ElapsedSeconds() / t.passes;
  return t;
}

/// One emitted JSON record (flat string->value object).
struct JsonRecord {
  std::string text;

  void Str(const char* key, const std::string& v) {
    Key(key);
    text += '"';
    text += v;
    text += '"';
  }
  void Num(const char* key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    Key(key);
    text += buf;
  }
  void Int(const char* key, long long v) {
    Key(key);
    text += std::to_string(v);
  }

 private:
  void Key(const char* key) {
    if (!text.empty()) text += ", ";
    text += '"';
    text += key;
    text += "\": ";
  }
};

std::string JoinRecords(const std::vector<JsonRecord>& records) {
  std::string out = "[";
  for (std::size_t i = 0; i < records.size(); ++i) {
    out += (i == 0 ? "\n    {" : ",\n    {");
    out += records[i].text;
    out += '}';
  }
  out += "\n  ]";
  return out;
}


/// Synthesizes GeoLife-style PLT content: 6 header lines, then
/// lat,lon,0,alt,days,date,time rows walking away from a Beijing-ish
/// reference at ~5 s sampling.
std::string MakePltString(std::size_t rows) {
  std::string out =
      "Geolife trajectory\nWGS 84\nAltitude is in Feet\nReserved 3\n"
      "0,2,255,My Track,0,0,2,255\n0\n";
  out.reserve(out.size() + rows * 64);
  char buf[160];
  for (std::size_t i = 0; i < rows; ++i) {
    const double lat = 39.9 + 1e-5 * static_cast<double>(i % 997);
    const double lon = 116.3 + 1e-5 * static_cast<double>(i % 1009);
    const double days =
        39744.0 + static_cast<double>(i) * (5.0 / 86400.0);
    const int n = std::snprintf(
        buf, sizeof(buf), "%.6f,%.6f,0,196,%.9f,2008-10-23,02:53:04\n", lat,
        lon, days);
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

/// Batch (quadratic-ish or O(n log n)) algorithms get smaller full-mode
/// inputs than the one-pass streamers so the harness stays minutes-free.
bool IsOnePass(baselines::Algorithm a) {
  switch (a) {
    case baselines::Algorithm::kOPW:
    case baselines::Algorithm::kOPWSED:
    case baselines::Algorithm::kBQS:
    case baselines::Algorithm::kFBQS:
    case baselines::Algorithm::kRawOPERB:
    case baselines::Algorithm::kOPERB:
    case baselines::Algorithm::kRawOPERBA:
    case baselines::Algorithm::kOPERBA:
      return true;
    case baselines::Algorithm::kDP:
    case baselines::Algorithm::kDPSED:
      return false;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_throughput.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--smoke") {
      bench::SmokeMode() = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s' (--smoke, --out PATH)\n",
                   argv[0], std::string(arg).c_str());
      return 2;
    }
  }
  const bool smoke = bench::SmokeMode();
  bench::Banner("Throughput baseline: ingest / steady state / end-to-end",
                "Theorem 5: one-pass O(n) time, O(1) state; constants are "
                "this harness's subject");

  // ------------------------------------------------------------------
  // Ingest: locale-proof from_chars parsers on in-memory content.
  // ------------------------------------------------------------------
  std::vector<JsonRecord> ingest;
  const std::size_t ingest_points = smoke ? 2000 : 200000;
  const auto measure_ingest = [&ingest](const char* format,
                                        const char* profile,
                                        const std::string& content,
                                        auto&& parse) {
    std::size_t parsed = 0;
    const Timing tm = TimeLoop([&] {
      auto r = parse(content);
      parsed = r.ok() ? r.value().size() : 0;
    });
    JsonRecord rec;
    rec.Str("format", format);
    rec.Str("profile", profile);
    rec.Int("points", static_cast<long long>(parsed));
    rec.Int("bytes", static_cast<long long>(content.size()));
    rec.Int("passes", tm.passes);
    rec.Num("seconds_per_pass", tm.seconds_per_pass);
    rec.Num("points_per_sec",
            static_cast<double>(parsed) / tm.seconds_per_pass);
    rec.Num("mb_per_sec",
            static_cast<double>(content.size()) / 1e6 / tm.seconds_per_pass);
    ingest.push_back(rec);
    std::printf("ingest %s: %zu points, %.2f M points/s\n", format, parsed,
                static_cast<double>(parsed) / tm.seconds_per_pass / 1e6);
  };
  {
    datagen::Rng rng(bench::kBenchSeed);
    const traj::Trajectory t = datagen::GenerateTrajectory(
        datagen::DatasetProfile::For(datagen::DatasetKind::kSerCar),
        ingest_points, &rng);
    measure_ingest("csv", "SerCar", traj::WriteCsvString(t),
                   [](const std::string& c) { return traj::ParseCsv(c); });
  }
  measure_ingest("plt", "GeoLife", MakePltString(ingest_points),
                 [](const std::string& c) { return traj::ParseGeoLifePlt(c); });

  // ------------------------------------------------------------------
  // Steady state: sink-path compression, segments only counted.
  // ------------------------------------------------------------------
  std::vector<JsonRecord> steady;
  for (datagen::DatasetKind kind : datagen::AllDatasetKinds()) {
    for (baselines::Algorithm algo : baselines::AllAlgorithms()) {
      const std::size_t per_traj =
          smoke ? 400 : (IsOnePass(algo) ? 100000 : 10000);
      const auto dataset = bench::MakeDataset(kind, 2, per_traj);
      const std::size_t total = bench::TotalPoints(dataset);
      const auto simplifier = bench::MakePaperSimplifier(algo, kZeta);
      std::size_t segments = 0;
      const Timing tm = TimeLoop([&] {
        segments = 0;
        for (const traj::Trajectory& t : dataset) {
          simplifier->SimplifyToSink(
              t, [&segments](const traj::RepresentedSegment&) {
                ++segments;
              });
        }
      });
      JsonRecord rec;
      rec.Str("algorithm", std::string(baselines::AlgorithmName(algo)));
      rec.Str("profile", std::string(datagen::DatasetName(kind)));
      rec.Int("points", static_cast<long long>(total));
      rec.Int("segments", static_cast<long long>(segments));
      rec.Int("passes", tm.passes);
      rec.Num("seconds_per_pass", tm.seconds_per_pass);
      rec.Num("points_per_sec",
              static_cast<double>(total) / tm.seconds_per_pass);
      steady.push_back(rec);
      std::printf("steady %-11s %-7s %8zu pts  %7.2f M points/s\n",
                  std::string(baselines::AlgorithmName(algo)).c_str(),
                  std::string(datagen::DatasetName(kind)).c_str(), total,
                  static_cast<double>(total) / tm.seconds_per_pass / 1e6);
    }
  }

  // ------------------------------------------------------------------
  // End-to-end CLI flow: parse -> validate -> simplify -> verify bound.
  // ------------------------------------------------------------------
  std::vector<JsonRecord> end_to_end;
  for (datagen::DatasetKind kind : datagen::AllDatasetKinds()) {
    const std::size_t n = smoke ? 400 : 100000;
    datagen::Rng rng(bench::kBenchSeed);
    const traj::Trajectory t = datagen::GenerateTrajectory(
        datagen::DatasetProfile::For(kind), n, &rng);
    const std::string csv = traj::WriteCsvString(t);
    // Library-default guarded fidelity — what operb_cli runs and the only
    // mode whose bound verification is guaranteed to pass on every input
    // (the paper-faithful heuristics can exceed zeta; see DESIGN.md).
    const auto simplifier =
        baselines::MakeSimplifier(baselines::Algorithm::kOPERB, kZeta);
    bool bounded = true;
    const Timing tm = TimeLoop([&] {
      auto parsed = traj::ParseCsv(csv);
      if (!parsed.ok() || !parsed.value().Validate().ok()) {
        bounded = false;
        return;
      }
      traj::PiecewiseRepresentation rep;
      simplifier->SimplifyToSink(
          parsed.value(),
          [&rep](const traj::RepresentedSegment& s) { rep.Append(s); });
      bounded = eval::VerifyErrorBound(parsed.value(), rep, kZeta, 1e-9)
                    .bounded;
    });
    if (!bounded) {
      std::fprintf(stderr, "end-to-end flow failed on %s\n",
                   std::string(datagen::DatasetName(kind)).c_str());
      return 1;
    }
    JsonRecord rec;
    rec.Str("pipeline", "parse+validate+simplify+verify");
    rec.Str("algorithm", "OPERB");
    rec.Str("profile", std::string(datagen::DatasetName(kind)));
    rec.Int("points", static_cast<long long>(n));
    rec.Int("passes", tm.passes);
    rec.Num("seconds_per_pass", tm.seconds_per_pass);
    rec.Num("points_per_sec", static_cast<double>(n) / tm.seconds_per_pass);
    end_to_end.push_back(rec);
    std::printf("end-to-end OPERB %-7s %8zu pts  %7.2f M points/s\n",
                std::string(datagen::DatasetName(kind)).c_str(), n,
                static_cast<double>(n) / tm.seconds_per_pass / 1e6);
  }

  // ------------------------------------------------------------------
  // Concurrent streams: the sharded StreamEngine on an interleaved
  // multi-object feed, swept over worker-thread counts and live-object
  // populations. The single-thread rows are directly comparable to the
  // steady-state OPERB rows above (same algorithm, same zeta).
  // ------------------------------------------------------------------
  std::vector<JsonRecord> concurrent;
  const std::vector<std::size_t> live_objects_sweep =
      smoke ? std::vector<std::size_t>{64}
            : std::vector<std::size_t>{10000, 100000};
  const std::vector<std::size_t> threads_sweep =
      smoke ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4, 8};
  // ~2M points full mode / ~1.3k smoke, split across the population.
  const std::size_t concurrent_total_points = smoke ? 1280 : 2000000;
  for (const std::size_t live : live_objects_sweep) {
    const std::size_t per_object =
        std::max<std::size_t>(4, concurrent_total_points / live);
    std::vector<traj::ObjectUpdate> updates;
    {
      std::vector<traj::ObjectTrajectory> objects;
      objects.reserve(live);
      for (std::size_t k = 0; k < live; ++k) {
        datagen::Rng rng(bench::kBenchSeed + k);
        objects.push_back(
            {k, datagen::GenerateTrajectory(
                    datagen::DatasetProfile::For(datagen::DatasetKind::kSerCar),
                    per_object, &rng)});
      }
      updates = traj::InterleaveRoundRobin(objects);
    }
    for (const std::size_t threads : threads_sweep) {
      engine::StreamEngineOptions eopts;
      eopts.algorithm = baselines::Algorithm::kOPERB;
      eopts.zeta = kZeta;
      eopts.num_threads = threads;
      eopts.num_shards = 4 * threads;
      std::uint64_t segments = 0;
      const Timing tm = TimeLoop([&] {
        engine::StreamEngine eng(eopts, engine::TaggedSegmentSink{});
        eng.Push(std::span<const traj::ObjectUpdate>(updates));
        eng.Close();
        segments = eng.stats().segments;
      });
      JsonRecord rec;
      rec.Str("algorithm", "OPERB");
      rec.Int("live_objects", static_cast<long long>(live));
      rec.Int("threads", static_cast<long long>(threads));
      rec.Int("shards", static_cast<long long>(eopts.num_shards));
      rec.Int("points", static_cast<long long>(updates.size()));
      rec.Int("segments", static_cast<long long>(segments));
      rec.Int("passes", tm.passes);
      rec.Num("seconds_per_pass", tm.seconds_per_pass);
      rec.Num("points_per_sec",
              static_cast<double>(updates.size()) / tm.seconds_per_pass);
      concurrent.push_back(rec);
      std::printf(
          "concurrent OPERB %7zu objects %2zu threads %8zu pts  "
          "%7.2f M points/s\n",
          live, threads, updates.size(),
          static_cast<double>(updates.size()) / tm.seconds_per_pass / 1e6);
    }
  }

  // ------------------------------------------------------------------
  // Emit JSON.
  // ------------------------------------------------------------------
  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_throughput: cannot open %s\n",
                 out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"schema\": \"operb-bench-throughput\",\n"
               "  \"schema_version\": 2,\n"
               "  \"smoke\": %s,\n"
               "  \"unix_time\": %lld,\n"
               "  \"zeta\": %g,\n"
               "  \"seed\": %llu,\n",
               smoke ? "true" : "false",
               static_cast<long long>(std::time(nullptr)), kZeta,
               static_cast<unsigned long long>(bench::kBenchSeed));
  std::fprintf(f, "  \"ingest\": %s,\n", JoinRecords(ingest).c_str());
  std::fprintf(f, "  \"steady_state\": %s,\n", JoinRecords(steady).c_str());
  std::fprintf(f, "  \"end_to_end\": %s,\n", JoinRecords(end_to_end).c_str());
  std::fprintf(f, "  \"concurrent_streams\": %s\n}\n",
               JoinRecords(concurrent).c_str());
  if (std::fclose(f) != 0) {
    std::fprintf(stderr, "bench_throughput: write failure on %s\n",
                 out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
