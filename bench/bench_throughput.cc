// bench_throughput: the repo's recorded perf trajectory (points/sec).
//
// Measures three layers of the pipeline on the synthetic dataset profiles
// and emits machine-readable BENCH_throughput.json (schema documented in
// README.md "Performance"; validated by validate_throughput_json.py):
//
//   ingest             — ParseCsv / ParseGeoLifePlt on in-memory content
//   steady_state       — each algorithm's sink-path compression throughput
//                        (segments stream to a counting sink; no buffer)
//   end_to_end         — the CLI flow: parse CSV -> validate -> simplify
//                        (sink) -> independent bound verification
//   concurrent_streams — the sharded StreamEngine on a round-robin
//                        interleaved fleet feed: points/sec vs worker
//                        thread count at 10k and 100k live objects
//   facade_overhead    — the same steady-state sink loop with the
//                        simplifier constructed via the enum compat
//                        factory vs via an api::AlgorithmRegistry spec
//                        string; the run FAILS if the facade path is
//                        measurably slower (construction happens once,
//                        outside the loop — the products are identical
//                        objects, so any steady-state gap is a bug)
//   metrics_overhead   — the same steady-state sink loop plain vs
//                        instrumented the way the engine batches its
//                        obs updates (per ~64-point Counter::Add +
//                        MaxGauge::Observe, one histogram Record per
//                        pass); the run FAILS if live metrics cost the
//                        hot loop more than 3% over the plain loop
//                        (which is what an OPERB_NO_METRICS build
//                        compiles the instrumentation down to)
//   store              — the sharded trajectory store (src/store): write
//                        a spatially spread fleet's segments into a
//                        manifest-driven shard directory (write
//                        amplification, file bytes), measure open
//                        latency (footer scan + R-tree build), serve a
//                        window query through both the R-tree index and
//                        the flat footer scan (index-vs-scan skip
//                        evidence; the run FAILS if the index visits
//                        more than 25% of the nodes the flat scan
//                        would), a per-object reconstruction, then one
//                        compaction pass (its write amplification and
//                        block densification) and the same query after
//                        it (must match byte-for-byte counts)
//   checkpoint         — StreamEngine::Checkpoint on a live engine
//                        halfway through a fleet feed: snapshot write
//                        latency and file size (bytes per live state),
//                        CreateFromCheckpoint restore latency, and an
//                        output-match gate — the run FAILS unless
//                        prefix + resumed-tail output equals the
//                        uninterrupted run's (DESIGN.md §9)
//
// Every simplifier-bearing record carries the resolved canonical spec
// string of what ran (schema version 9).
//
// `--smoke` shrinks every dataset to a single fast pass (for CI), `--out
// PATH` overrides the default ./BENCH_throughput.json. Later PRs
// (sharding, parallel ingest, ...) are benchmarked against the committed
// JSON at the repo root.
//
// Exit codes: 0 success, 1 write failure, 2 usage error.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include <span>

#include <limits>
#include <functional>
#include <algorithm>

#include "api/registry.h"
#include "api/spec.h"
#include "bench_util.h"
#include "common/serial.h"
#include "common/stopwatch.h"
#include "engine/stream_engine.h"
#include "core/operb.h"
#include "eval/verifier.h"
#include "geo/bbox.h"
#include "geo/simd.h"
#include <filesystem>

#include "obs/metrics.h"

#include <chrono>
#include <thread>

#include "server/client.h"
#include "server/server.h"
#include "store/compactor.h"
#include "store/reader.h"
#include "store/writer.h"
#include "traj/io.h"
#include "traj/multi_object.h"

namespace {

using namespace operb;  // NOLINT

constexpr double kZeta = 40.0;

struct Timing {
  double seconds_per_pass = 0.0;
  int passes = 0;
};

/// Repeats `fn` until enough wall time accumulated for a stable number
/// (single pass in smoke mode).
template <typename Fn>
Timing TimeLoop(Fn&& fn) {
  const double min_millis = bench::SmokeMode() ? 0.0 : 150.0;
  Timing t;
  Stopwatch watch;
  do {
    fn();
    ++t.passes;
  } while (watch.ElapsedMillis() < min_millis);
  t.seconds_per_pass = watch.ElapsedSeconds() / t.passes;
  return t;
}

/// One emitted JSON record (flat string->value object).
struct JsonRecord {
  std::string text;

  void Str(const char* key, const std::string& v) {
    Key(key);
    text += '"';
    text += v;
    text += '"';
  }
  void Num(const char* key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    Key(key);
    text += buf;
  }
  void Int(const char* key, long long v) {
    Key(key);
    text += std::to_string(v);
  }

 private:
  void Key(const char* key) {
    if (!text.empty()) text += ", ";
    text += '"';
    text += key;
    text += "\": ";
  }
};

std::string JoinRecords(const std::vector<JsonRecord>& records) {
  std::string out = "[";
  for (std::size_t i = 0; i < records.size(); ++i) {
    out += (i == 0 ? "\n    {" : ",\n    {");
    out += records[i].text;
    out += '}';
  }
  out += "\n  ]";
  return out;
}


/// Synthesizes GeoLife-style PLT content: 6 header lines, then
/// lat,lon,0,alt,days,date,time rows walking away from a Beijing-ish
/// reference at ~5 s sampling.
std::string MakePltString(std::size_t rows) {
  std::string out =
      "Geolife trajectory\nWGS 84\nAltitude is in Feet\nReserved 3\n"
      "0,2,255,My Track,0,0,2,255\n0\n";
  out.reserve(out.size() + rows * 64);
  char buf[160];
  for (std::size_t i = 0; i < rows; ++i) {
    const double lat = 39.9 + 1e-5 * static_cast<double>(i % 997);
    const double lon = 116.3 + 1e-5 * static_cast<double>(i % 1009);
    const double days =
        39744.0 + static_cast<double>(i) * (5.0 / 86400.0);
    const int n = std::snprintf(
        buf, sizeof(buf), "%.6f,%.6f,0,196,%.9f,2008-10-23,02:53:04\n", lat,
        lon, days);
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

/// The quadratic-ish batch algorithms get smaller full-mode inputs than
/// the streaming ones so the harness stays minutes-free. "Streaming" here
/// is by cost model (window-bounded work per point), broader than the
/// registry's strict O(1)-state one_pass flag.
bool StreamingCost(std::string_view name) {
  return name != "DP" && name != "DP-SED";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_throughput.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--smoke") {
      bench::SmokeMode() = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s' (--smoke, --out PATH)\n",
                   argv[0], std::string(arg).c_str());
      return 2;
    }
  }
  const bool smoke = bench::SmokeMode();
  bench::Banner("Throughput baseline: ingest / steady state / end-to-end",
                "Theorem 5: one-pass O(n) time, O(1) state; constants are "
                "this harness's subject");

  // ------------------------------------------------------------------
  // Ingest: locale-proof from_chars parsers on in-memory content.
  // ------------------------------------------------------------------
  std::vector<JsonRecord> ingest;
  const std::size_t ingest_points = smoke ? 2000 : 200000;
  const auto measure_ingest = [&ingest](const char* format,
                                        const char* profile,
                                        const std::string& content,
                                        auto&& parse) {
    std::size_t parsed = 0;
    const Timing tm = TimeLoop([&] {
      auto r = parse(content);
      parsed = r.ok() ? r.value().size() : 0;
    });
    JsonRecord rec;
    rec.Str("format", format);
    rec.Str("profile", profile);
    rec.Int("points", static_cast<long long>(parsed));
    rec.Int("bytes", static_cast<long long>(content.size()));
    rec.Int("passes", tm.passes);
    rec.Num("seconds_per_pass", tm.seconds_per_pass);
    rec.Num("points_per_sec",
            static_cast<double>(parsed) / tm.seconds_per_pass);
    rec.Num("mb_per_sec",
            static_cast<double>(content.size()) / 1e6 / tm.seconds_per_pass);
    ingest.push_back(rec);
    std::printf("ingest %s: %zu points, %.2f M points/s\n", format, parsed,
                static_cast<double>(parsed) / tm.seconds_per_pass / 1e6);
  };
  {
    datagen::Rng rng(bench::kBenchSeed);
    const traj::Trajectory t = datagen::GenerateTrajectory(
        datagen::DatasetProfile::For(datagen::DatasetKind::kSerCar),
        ingest_points, &rng);
    measure_ingest("csv", "SerCar", traj::WriteCsvString(t),
                   [](const std::string& c) { return traj::ParseCsv(c); });
  }
  measure_ingest("plt", "GeoLife", MakePltString(ingest_points),
                 [](const std::string& c) { return traj::ParseGeoLifePlt(c); });

  // ------------------------------------------------------------------
  // Steady state: sink-path compression, segments only counted.
  // ------------------------------------------------------------------
  std::vector<JsonRecord> steady;
  // Constructed through the registry from spec strings — the facade path
  // the Pipeline, engine and CLI all take. The paper-faithful fidelity
  // matches what the figure harnesses measure.
  const std::vector<std::string> algorithm_names =
      api::AlgorithmRegistry::Global().Names();
  for (datagen::DatasetKind kind : datagen::AllDatasetKinds()) {
    for (const std::string& name : algorithm_names) {
      const std::size_t per_traj =
          smoke ? 400 : (StreamingCost(name) ? 100000 : 10000);
      const auto dataset = bench::MakeDataset(kind, 2, per_traj);
      const std::size_t total = bench::TotalPoints(dataset);
      api::SimplifierSpec spec;
      spec.algorithm = name;
      spec.zeta = kZeta;
      spec.fidelity = baselines::OperbFidelity::kPaperFaithful;
      auto made = api::AlgorithmRegistry::Global().MakeBatch(spec);
      if (!made.ok()) {
        std::fprintf(stderr, "bench_throughput: %s\n",
                     made.status().ToString().c_str());
        return 1;
      }
      const auto simplifier = std::move(made).value();
      std::size_t segments = 0;
      const Timing tm = TimeLoop([&] {
        segments = 0;
        for (const traj::Trajectory& t : dataset) {
          simplifier->SimplifyToSink(
              t, [&segments](const traj::RepresentedSegment&) {
                ++segments;
              });
        }
      });
      JsonRecord rec;
      rec.Str("algorithm", name);
      rec.Str("spec", spec.ToString());
      rec.Str("profile", std::string(datagen::DatasetName(kind)));
      rec.Int("points", static_cast<long long>(total));
      rec.Int("segments", static_cast<long long>(segments));
      rec.Int("passes", tm.passes);
      rec.Num("seconds_per_pass", tm.seconds_per_pass);
      rec.Num("points_per_sec",
              static_cast<double>(total) / tm.seconds_per_pass);
      steady.push_back(rec);
      std::printf("steady %-11s %-7s %8zu pts  %7.2f M points/s\n",
                  name.c_str(),
                  std::string(datagen::DatasetName(kind)).c_str(), total,
                  static_cast<double>(total) / tm.seconds_per_pass / 1e6);
    }
  }

  // ------------------------------------------------------------------
  // SIMD vs scalar (schema v9): the batched fitting kernels' evidence.
  //
  // kind=="kernel" rows time one geo::simd batch kernel at the host's
  // best vector level against the scalar oracle on identical inputs,
  // interleaved min-of-N — on throttling machines the interleaved ratio
  // stays stable even when absolute numbers wobble. The hash covers
  // every output element's bit pattern; equality is the differential
  // contract restated on the bench inputs.
  //
  // kind=="steady_state" rows are this refactor's before/after: OPERB
  // point-wise Push pinned to scalar dispatch (the pre-batching hot
  // loop) vs span Push at the detected level, on each stock profile
  // plus a dense high-rate GeoLife variant (~0.3 s sampling, ~300
  // points/segment) whose long extend runs are the batched path's
  // target workload. The hash covers the emitted segment bytes; the
  // two paths must produce identical streams (bit-identity gate).
  // ------------------------------------------------------------------
  std::vector<JsonRecord> simd_rows;
  {
    const geo::simd::Level best = geo::simd::Detect();
    const std::string best_name{geo::simd::LevelName(best)};
    const int rounds = smoke ? 3 : 25;

    // Interleaved min-of-N: alternate the two sides every round, keep
    // each side's best sample.
    const auto min_of = [&](auto&& base_fn, auto&& simd_fn) {
      double best_base = std::numeric_limits<double>::infinity();
      double best_simd = std::numeric_limits<double>::infinity();
      for (int r = 0; r < rounds; ++r) {
        {
          Stopwatch w;
          base_fn();
          best_base = std::min(best_base, w.ElapsedSeconds());
        }
        {
          Stopwatch w;
          simd_fn();
          best_simd = std::min(best_simd, w.ElapsedSeconds());
        }
      }
      return std::pair<double, double>{best_base, best_simd};
    };

    const auto hash_doubles = [](const double* p, std::size_t n,
                                 std::uint64_t seed) {
      return serial::Fnv1a64(
          std::span<const std::uint8_t>(
              reinterpret_cast<const std::uint8_t*>(p), n * sizeof(double)),
          seed);
    };
    char hex[32];
    const auto hex_str = [&hex](std::uint64_t h) {
      std::snprintf(hex, sizeof(hex), "%016llx",
                    static_cast<unsigned long long>(h));
      return std::string(hex);
    };

    // Kernel micro rows: batch of 64 (the staging window), points near
    // the line so the early-exit kernels scan the full batch.
    constexpr std::size_t kN = 64;
    double xs[kN], ys[kN], o1[kN], o2[kN], o3[kN], o4[kN];
    datagen::Rng krng(bench::kBenchSeed);
    const geo::Vec2 anchor{500.0, -250.0};
    const geo::Vec2 dir{0.8, 0.6};
    const geo::Vec2 ra_unit{-0.6, 0.8};
    for (std::size_t i = 0; i < kN; ++i) {
      const double along = static_cast<double>(i) * 12.0;
      const double across = (krng.NextDouble() - 0.5) * 2.0 * kZeta * 0.4;
      xs[i] = anchor.x + along * dir.x - across * dir.y;
      ys[i] = anchor.y + along * dir.y + across * dir.x;
    }
    geo::simd::ExtendAcceptParams accept_all;
    accept_all.length = 0.0;
    accept_all.slack = 1e9;
    accept_all.d_plus_max = 1e9;
    accept_all.d_minus_max = 1e9;
    accept_all.zeta = 1e9;
    accept_all.guard = true;
    accept_all.drift_plus = 1e9;
    accept_all.drift_minus = 1e9;
    accept_all.drift_back = 1e9;
    accept_all.sum_ok = true;
    std::size_t count_sink = 0;
    const int kernel_iters = smoke ? 200 : 20000;

    struct KernelCase {
      const char* name;
      std::function<void()> run;       // one batch at the active level
      std::function<std::uint64_t()> hash;  // outputs of one batch
    };
    const std::vector<KernelCase> kernels = {
        {"signed_offsets",
         [&] { geo::simd::SignedOffsets(xs, ys, kN, anchor, dir, o1); },
         [&] { return hash_doubles(o1, kN, serial::kFnv1a64OffsetBasis); }},
        {"radii", [&] { geo::simd::Radii(xs, ys, kN, anchor, o1); },
         [&] { return hash_doubles(o1, kN, serial::kFnv1a64OffsetBasis); }},
        {"dots", [&] { geo::simd::Dots(xs, ys, kN, anchor, dir, o1); },
         [&] { return hash_doubles(o1, kN, serial::kFnv1a64OffsetBasis); }},
        {"stage_extend",
         [&] {
           geo::simd::StageExtend(xs, ys, kN, anchor, dir, ra_unit,
                                  /*want_dot=*/true, o1, o2, o3, o4);
         },
         [&] {
           std::uint64_t h = hash_doubles(o1, kN, serial::kFnv1a64OffsetBasis);
           h = hash_doubles(o2, kN, h);
           h = hash_doubles(o3, kN, h);
           return hash_doubles(o4, kN, h);
         }},
        {"count_within",
         [&] {
           count_sink +=
               geo::simd::CountWithin(xs, ys, kN, anchor, dir, 1e9);
         },
         [&] {
           return geo::simd::CountWithin(xs, ys, kN, anchor, dir, 1e9);
         }},
        {"count_extend_accept",
         [&] {
           geo::simd::StageExtend(xs, ys, kN, anchor, dir, ra_unit, true,
                                  o1, o2, o3, o4);
           count_sink += geo::simd::CountExtendAccept(o1, o2, o3, o4, kN,
                                                      accept_all);
         },
         [&] {
           geo::simd::StageExtend(xs, ys, kN, anchor, dir, ra_unit, true,
                                  o1, o2, o3, o4);
           return geo::simd::CountExtendAccept(o1, o2, o3, o4, kN,
                                               accept_all);
         }}};

    for (const KernelCase& k : kernels) {
      geo::simd::ForceLevel(geo::simd::Level::kScalar);
      const std::uint64_t hash_base = k.hash();
      geo::simd::ForceLevel(best);
      const std::uint64_t hash_simd = k.hash();
      const auto [base_s, simd_s] = min_of(
          [&] {
            geo::simd::ForceLevel(geo::simd::Level::kScalar);
            for (int i = 0; i < kernel_iters; ++i) k.run();
          },
          [&] {
            geo::simd::ForceLevel(best);
            for (int i = 0; i < kernel_iters; ++i) k.run();
          });
      geo::simd::ClearForcedLevel();
      const double total =
          static_cast<double>(kN) * static_cast<double>(kernel_iters);
      JsonRecord rec;
      rec.Str("kind", "kernel");
      rec.Str("name", k.name);
      rec.Str("level", best_name);
      rec.Int("points", static_cast<long long>(kN));
      rec.Int("rounds", rounds);
      rec.Num("base_points_per_sec", total / base_s);
      rec.Num("simd_points_per_sec", total / simd_s);
      rec.Num("speedup", base_s / simd_s);
      rec.Str("hash_base", hex_str(hash_base));
      rec.Str("hash_simd", hex_str(hash_simd));
      rec.Int("hash_match", hash_base == hash_simd ? 1 : 0);
      simd_rows.push_back(rec);
      std::printf("simd kernel %-19s %s/scalar  %5.2fx  hashes %s\n",
                  k.name, best_name.c_str(), base_s / simd_s,
                  hash_base == hash_simd ? "match" : "DIVERGE");
    }
    if (count_sink == 0) std::printf("# unreachable\n");

    // Steady-state before/after rows: OPERB paper-faithful, pointwise
    // scalar vs batched at the detected level.
    struct SteadyCase {
      std::string name;
      datagen::DatasetProfile profile;
    };
    std::vector<SteadyCase> cases;
    for (datagen::DatasetKind kind : datagen::AllDatasetKinds()) {
      cases.push_back({std::string(datagen::DatasetName(kind)),
                       datagen::DatasetProfile::For(kind)});
    }
    {
      // High-rate variant: GeoLife road walk at ~0.3 s sampling, the
      // regime (hundreds of points per fitted segment) where the
      // batched extend loop has real windows to vectorize.
      datagen::DatasetProfile dense =
          datagen::DatasetProfile::For(datagen::DatasetKind::kGeoLife);
      dense.sampling_min_s = 0.2;
      dense.sampling_max_s = 0.4;
      cases.push_back({"GeoLife_dense", dense});
    }

    core::OperbOptions oopts = core::OperbOptions::Optimized(kZeta);
    oopts.strict_bound_guard = false;  // paper-faithful, as steady_state
    for (const SteadyCase& c : cases) {
      const std::size_t per_traj = smoke ? 400 : 100000;
      std::vector<traj::Trajectory> dataset;
      datagen::Rng rng(bench::kBenchSeed);
      dataset.push_back(datagen::GenerateTrajectory(c.profile, per_traj, &rng));
      dataset.push_back(datagen::GenerateTrajectory(c.profile, per_traj, &rng));
      const std::size_t total = bench::TotalPoints(dataset);

      core::OperbStream stream(oopts);
      std::uint64_t hash = serial::kFnv1a64OffsetBasis;
      std::size_t segments = 0;
      std::vector<std::uint8_t> seg_bytes;
      stream.SetSink([&](const traj::RepresentedSegment& s) {
        ++segments;
        seg_bytes.clear();
        traj::SerializeSegment(s, &seg_bytes);
        hash = serial::Fnv1a64(seg_bytes, hash);
      });
      const auto run_pointwise = [&] {
        for (const traj::Trajectory& t : dataset) {
          stream.Reset();
          for (const geo::Point& p : t) stream.Push(p);
          stream.Finish();
        }
      };
      const auto run_batched = [&] {
        for (const traj::Trajectory& t : dataset) {
          stream.Reset();
          stream.Push(std::span<const geo::Point>(t.points()));
          stream.Finish();
        }
      };

      geo::simd::ForceLevel(geo::simd::Level::kScalar);
      hash = serial::kFnv1a64OffsetBasis;
      segments = 0;
      run_pointwise();
      const std::uint64_t hash_base = hash;
      const std::size_t segments_base = segments;
      geo::simd::ForceLevel(best);
      hash = serial::kFnv1a64OffsetBasis;
      segments = 0;
      run_batched();
      const std::uint64_t hash_simd = hash;

      const auto [base_s, simd_s] = min_of(
          [&] {
            geo::simd::ForceLevel(geo::simd::Level::kScalar);
            run_pointwise();
          },
          [&] {
            geo::simd::ForceLevel(best);
            run_batched();
          });
      geo::simd::ClearForcedLevel();

      JsonRecord rec;
      rec.Str("kind", "steady_state");
      rec.Str("name", c.name);
      rec.Str("level", best_name);
      rec.Int("points", static_cast<long long>(total));
      rec.Int("rounds", rounds);
      rec.Num("base_points_per_sec", static_cast<double>(total) / base_s);
      rec.Num("simd_points_per_sec", static_cast<double>(total) / simd_s);
      rec.Num("speedup", base_s / simd_s);
      rec.Str("hash_base", hex_str(hash_base));
      rec.Str("hash_simd", hex_str(hash_simd));
      rec.Int("hash_match", hash_base == hash_simd ? 1 : 0);
      simd_rows.push_back(rec);
      std::printf(
          "simd steady %-13s pointwise %7.2fM -> batched(%s) %7.2fM "
          "pts/s  %4.2fx  %zu segs  hashes %s\n",
          c.name.c_str(), static_cast<double>(total) / base_s / 1e6,
          best_name.c_str(), static_cast<double>(total) / simd_s / 1e6,
          base_s / simd_s, segments_base,
          hash_base == hash_simd ? "match" : "DIVERGE");
    }
  }

  // ------------------------------------------------------------------
  // End-to-end CLI flow: parse -> validate -> simplify -> verify bound.
  // ------------------------------------------------------------------
  std::vector<JsonRecord> end_to_end;
  for (datagen::DatasetKind kind : datagen::AllDatasetKinds()) {
    const std::size_t n = smoke ? 400 : 100000;
    datagen::Rng rng(bench::kBenchSeed);
    const traj::Trajectory t = datagen::GenerateTrajectory(
        datagen::DatasetProfile::For(kind), n, &rng);
    const std::string csv = traj::WriteCsvString(t);
    // Library-default guarded fidelity — what operb_cli runs and the only
    // mode whose bound verification is guaranteed to pass on every input
    // (the paper-faithful heuristics can exceed zeta; see DESIGN.md).
    api::SimplifierSpec e2e_spec;
    e2e_spec.zeta = kZeta;
    auto e2e_made = api::AlgorithmRegistry::Global().MakeBatch(e2e_spec);
    if (!e2e_made.ok()) {
      std::fprintf(stderr, "bench_throughput: %s\n",
                   e2e_made.status().ToString().c_str());
      return 1;
    }
    const auto simplifier = std::move(e2e_made).value();
    bool bounded = true;
    const Timing tm = TimeLoop([&] {
      auto parsed = traj::ParseCsv(csv);
      if (!parsed.ok() || !parsed.value().Validate().ok()) {
        bounded = false;
        return;
      }
      traj::PiecewiseRepresentation rep;
      simplifier->SimplifyToSink(
          parsed.value(),
          [&rep](const traj::RepresentedSegment& s) { rep.Append(s); });
      bounded = eval::VerifyErrorBound(parsed.value(), rep, kZeta, 1e-9)
                    .bounded;
    });
    if (!bounded) {
      std::fprintf(stderr, "end-to-end flow failed on %s\n",
                   std::string(datagen::DatasetName(kind)).c_str());
      return 1;
    }
    JsonRecord rec;
    rec.Str("pipeline", "parse+validate+simplify+verify");
    rec.Str("algorithm", "OPERB");
    rec.Str("spec", e2e_spec.ToString());
    rec.Str("profile", std::string(datagen::DatasetName(kind)));
    rec.Int("points", static_cast<long long>(n));
    rec.Int("passes", tm.passes);
    rec.Num("seconds_per_pass", tm.seconds_per_pass);
    rec.Num("points_per_sec", static_cast<double>(n) / tm.seconds_per_pass);
    end_to_end.push_back(rec);
    std::printf("end-to-end OPERB %-7s %8zu pts  %7.2f M points/s\n",
                std::string(datagen::DatasetName(kind)).c_str(), n,
                static_cast<double>(n) / tm.seconds_per_pass / 1e6);
  }

  // ------------------------------------------------------------------
  // Concurrent streams: the sharded StreamEngine on an interleaved
  // multi-object feed, swept over worker-thread counts and live-object
  // populations. The single-thread rows are directly comparable to the
  // steady-state OPERB rows above (same algorithm, same zeta).
  // ------------------------------------------------------------------
  std::vector<JsonRecord> concurrent;
  const std::vector<std::size_t> live_objects_sweep =
      smoke ? std::vector<std::size_t>{64}
            : std::vector<std::size_t>{10000, 100000};
  const std::vector<std::size_t> threads_sweep =
      smoke ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4, 8};
  // ~2M points full mode / ~1.3k smoke, split across the population.
  const std::size_t concurrent_total_points = smoke ? 1280 : 2000000;
  for (const std::size_t live : live_objects_sweep) {
    const std::size_t per_object =
        std::max<std::size_t>(4, concurrent_total_points / live);
    std::vector<traj::ObjectUpdate> updates;
    {
      std::vector<traj::ObjectTrajectory> objects;
      objects.reserve(live);
      for (std::size_t k = 0; k < live; ++k) {
        datagen::Rng rng(bench::kBenchSeed + k);
        objects.push_back(
            {k, datagen::GenerateTrajectory(
                    datagen::DatasetProfile::For(datagen::DatasetKind::kSerCar),
                    per_object, &rng)});
      }
      updates = traj::InterleaveRoundRobin(objects);
    }
    for (const std::size_t threads : threads_sweep) {
      engine::StreamEngineOptions eopts;
      eopts.spec.zeta = kZeta;  // default algorithm: OPERB, guarded
      eopts.num_threads = threads;
      eopts.num_shards = 4 * threads;
      std::uint64_t segments = 0;
      const Timing tm = TimeLoop([&] {
        engine::StreamEngine eng(eopts, engine::TaggedSegmentSink{});
        eng.Push(std::span<const traj::ObjectUpdate>(updates));
        eng.Close();
        segments = eng.stats().segments;
      });
      JsonRecord rec;
      rec.Str("algorithm", "OPERB");
      rec.Str("spec", eopts.spec.ToString());
      rec.Int("live_objects", static_cast<long long>(live));
      rec.Int("threads", static_cast<long long>(threads));
      rec.Int("shards", static_cast<long long>(eopts.num_shards));
      rec.Int("points", static_cast<long long>(updates.size()));
      rec.Int("segments", static_cast<long long>(segments));
      rec.Int("passes", tm.passes);
      rec.Num("seconds_per_pass", tm.seconds_per_pass);
      rec.Num("points_per_sec",
              static_cast<double>(updates.size()) / tm.seconds_per_pass);
      concurrent.push_back(rec);
      std::printf(
          "concurrent OPERB %7zu objects %2zu threads %8zu pts  "
          "%7.2f M points/s\n",
          live, threads, updates.size(),
          static_cast<double>(updates.size()) / tm.seconds_per_pass / 1e6);
    }
  }

  // ------------------------------------------------------------------
  // Facade overhead: the registry/spec construction path must add zero
  // steady-state cost over the legacy enum factory. Both factories hand
  // out the same concrete object, so the two timed loops run identical
  // code; the tolerance below only absorbs scheduling noise. A real
  // regression here means the facade leaked into the per-point path.
  // ------------------------------------------------------------------
  std::vector<JsonRecord> facade;
  {
    const auto dataset = bench::MakeDataset(datagen::DatasetKind::kSerCar, 2,
                                            smoke ? 400 : 100000);
    const std::size_t total = bench::TotalPoints(dataset);
    const auto direct = bench::MakePaperSimplifier(
        baselines::Algorithm::kOPERB, kZeta);
    auto via_registry = api::AlgorithmRegistry::Global().MakeBatch(
        "OPERB:zeta=40,fidelity=paper");
    if (!via_registry.ok()) {
      std::fprintf(stderr, "bench_throughput: %s\n",
                   via_registry.status().ToString().c_str());
      return 1;
    }
    const auto run_sink_loop = [&dataset](const baselines::Simplifier& s) {
      return TimeLoop([&] {
        std::size_t segments = 0;
        for (const traj::Trajectory& t : dataset) {
          s.SimplifyToSink(t,
                           [&segments](const traj::RepresentedSegment&) {
                             ++segments;
                           });
        }
      });
    };
    // Best of 3 per path, interleaved, so one scheduler hiccup cannot
    // fake a regression.
    double direct_s = 1e99;
    double facade_s = 1e99;
    for (int round = 0; round < 3; ++round) {
      direct_s = std::min(direct_s, run_sink_loop(*direct).seconds_per_pass);
      facade_s =
          std::min(facade_s, run_sink_loop(**via_registry).seconds_per_pass);
    }
    const double overhead_pct = 100.0 * (facade_s / direct_s - 1.0);
    JsonRecord rec;
    rec.Str("algorithm", "OPERB");
    rec.Str("spec", "OPERB:zeta=40,fidelity=paper");
    rec.Str("profile", "SerCar");
    rec.Int("points", static_cast<long long>(total));
    rec.Num("direct_points_per_sec", static_cast<double>(total) / direct_s);
    rec.Num("facade_points_per_sec", static_cast<double>(total) / facade_s);
    rec.Num("overhead_pct", overhead_pct);
    facade.push_back(rec);
    std::printf("facade overhead: direct %.2f M pts/s, registry %.2f M "
                "pts/s (%+.1f%%)\n",
                static_cast<double>(total) / direct_s / 1e6,
                static_cast<double>(total) / facade_s / 1e6, overhead_pct);
    // Smoke datasets run microsecond-scale passes where timer noise
    // dominates; the full-mode gate is the meaningful one.
    const double tolerance_pct = smoke ? 50.0 : 10.0;
    if (overhead_pct > tolerance_pct) {
      std::fprintf(stderr,
                   "bench_throughput: facade overhead %.1f%% exceeds the "
                   "%.0f%% gate\n",
                   overhead_pct, tolerance_pct);
      return 1;
    }
  }

  // ------------------------------------------------------------------
  // Metrics overhead: the obs instruments are amortized in the engine
  // (one batched Counter::Add + MaxGauge::Observe per ~64-point stride,
  // one LatencyHistogram::Record per flush) — so live metrics must cost
  // the steady-state sink loop at most 3%. An OPERB_NO_METRICS build
  // compiles the instrumented loop down to the plain one; this gate
  // keeps the metrics-on default honest against it.
  // ------------------------------------------------------------------
  std::vector<JsonRecord> metrics_records;
  {
    const auto dataset = bench::MakeDataset(datagen::DatasetKind::kSerCar, 2,
                                            smoke ? 400 : 100000);
    const std::size_t total = bench::TotalPoints(dataset);
    const auto simplifier = bench::MakePaperSimplifier(
        baselines::Algorithm::kOPERB, kZeta);
    const auto run_plain = [&] {
      return TimeLoop([&] {
        std::size_t segments = 0;
        for (const traj::Trajectory& t : dataset) {
          simplifier->SimplifyToSink(
              t, [&segments](const traj::RepresentedSegment&) {
                ++segments;
              });
        }
      });
    };
    auto& registry = obs::MetricsRegistry::Global();
    obs::Counter* points_ctr = registry.GetCounter("bench.metrics.points");
    obs::Counter* segments_ctr =
        registry.GetCounter("bench.metrics.segments");
    obs::MaxGauge* occupancy =
        registry.GetMaxGauge("bench.metrics.occupancy");
    obs::LatencyHistogram* pass_ns =
        registry.GetHistogram("bench.metrics.pass_ns");
    constexpr std::size_t kStride = 64;  // the engine's amortization stride
    const auto run_instrumented = [&] {
      return TimeLoop([&] {
        const std::int64_t start_ns = NowNanos();
        std::size_t segments = 0;
        for (const traj::Trajectory& t : dataset) {
          std::size_t since_batch = 0;
          for (std::size_t i = 0; i < t.size(); i += kStride) {
            const std::size_t take = std::min(kStride, t.size() - i);
            // SimplifyToSink is whole-trajectory; feed the instruments
            // at the same stride the engine's FlushShard batches them.
            since_batch += take;
            points_ctr->Add(take);
            occupancy->Observe(static_cast<std::int64_t>(since_batch));
          }
          simplifier->SimplifyToSink(
              t, [&segments](const traj::RepresentedSegment&) {
                ++segments;
              });
        }
        segments_ctr->Add(segments);
        pass_ns->Record(static_cast<std::uint64_t>(NowNanos() - start_ns));
      });
    };
    // Best of 3 per path, interleaved, like the facade gate.
    double plain_s = 1e99;
    double instrumented_s = 1e99;
    for (int round = 0; round < 3; ++round) {
      plain_s = std::min(plain_s, run_plain().seconds_per_pass);
      instrumented_s =
          std::min(instrumented_s, run_instrumented().seconds_per_pass);
    }
    const double overhead_pct = 100.0 * (instrumented_s / plain_s - 1.0);
    JsonRecord rec;
    rec.Str("algorithm", "OPERB");
    rec.Str("spec", "OPERB:zeta=40,fidelity=paper");
    rec.Str("profile", "SerCar");
    rec.Int("points", static_cast<long long>(total));
    rec.Int("metrics_compiled_in", obs::kMetricsEnabled ? 1 : 0);
    rec.Num("plain_points_per_sec", static_cast<double>(total) / plain_s);
    rec.Num("instrumented_points_per_sec",
            static_cast<double>(total) / instrumented_s);
    rec.Num("overhead_pct", overhead_pct);
    metrics_records.push_back(rec);
    std::printf("metrics overhead: plain %.2f M pts/s, instrumented "
                "%.2f M pts/s (%+.1f%%)\n",
                static_cast<double>(total) / plain_s / 1e6,
                static_cast<double>(total) / instrumented_s / 1e6,
                overhead_pct);
    // Smoke datasets run microsecond-scale passes where timer noise
    // dominates; the full-mode 3% gate is the meaningful one.
    const double tolerance_pct = smoke ? 50.0 : 3.0;
    if (overhead_pct > tolerance_pct) {
      std::fprintf(stderr,
                   "bench_throughput: metrics overhead %.1f%% exceeds the "
                   "%.0f%% gate\n",
                   overhead_pct, tolerance_pct);
      return 1;
    }
  }

  // ------------------------------------------------------------------
  // Store: persist a spatially spread fleet's simplified segments, then
  // serve a window query (skip-scan) and a per-object reconstruction.
  // Objects are laid out along a line 50 km apart and appended
  // object-major, so block footers carve the fleet spatially and a
  // window over the first object's area must skip blocks — the recorded
  // numbers are the store's pruning evidence, not just its speed.
  // ------------------------------------------------------------------
  std::vector<JsonRecord> store_records;
  {
    const std::size_t store_objects = smoke ? 16 : 200;
    const std::size_t store_per_object = smoke ? 200 : 5000;
    api::SimplifierSpec store_spec;
    store_spec.zeta = kZeta;  // default algorithm: OPERB, guarded
    auto streaming_made =
        api::AlgorithmRegistry::Global().MakeStreaming(store_spec);
    if (!streaming_made.ok()) {
      std::fprintf(stderr, "bench_throughput: %s\n",
                   streaming_made.status().ToString().c_str());
      return 1;
    }
    const auto streaming = std::move(streaming_made).value();
    std::vector<traj::TimedSegment> segments;
    std::size_t store_points = 0;
    geo::BoundingBox first_region;
    std::vector<traj::TimedSegment>* out = &segments;
    traj::ObjectId current_id = 0;
    const traj::Trajectory* current = nullptr;
    streaming->SetSink([&](const traj::RepresentedSegment& s) {
      out->push_back({current_id, s, (*current)[s.first_index].t,
                      (*current)[s.last_index].t});
    });
    for (std::size_t k = 0; k < store_objects; ++k) {
      datagen::Rng rng(bench::kBenchSeed + k);
      traj::Trajectory t = datagen::GenerateTrajectory(
          datagen::DatasetProfile::For(datagen::DatasetKind::kSerCar),
          store_per_object, &rng);
      for (geo::Point& p : t.mutable_points()) {
        p.x += static_cast<double>(k) * 50000.0;  // spatial spread
      }
      store_points += t.size();
      if (k == 0) {
        for (const geo::Point& p : t) first_region.Extend(p.pos());
      }
      current_id = k;
      current = &t;
      streaming->Push(std::span<const geo::Point>(t.points()));
      streaming->Finish();
      streaming->Reset();
    }

    const std::string store_path = "bench_store.tmp";
    store::StoreWriterOptions wopts;
    wopts.zeta = kZeta;
    wopts.block_budget_bytes = smoke ? 4096 : 64 * 1024;
    wopts.num_shards = smoke ? 2 : 4;
    store::StoreWriterStats wstats;
    bool write_ok = true;
    const Timing wt = TimeLoop([&] {
      auto writer = store::StoreWriter::Create(store_path, wopts);
      if (!writer.ok()) {
        write_ok = false;
        return;
      }
      for (const traj::TimedSegment& s : segments) {
        writer.value()->Append(s);
      }
      write_ok = write_ok && writer.value()->Close().ok();
      wstats = writer.value()->stats();
    });
    // Open latency: manifest read + per-file footer scan + R-tree bulk
    // load — the cost the hierarchical index adds at open time.
    bool open_ok = true;
    const Timing ot = TimeLoop([&] {
      open_ok = open_ok && store::StoreReader::Open(store_path).ok();
    });
    auto reader = store::StoreReader::Open(store_path);
    if (!write_ok || !open_ok || !reader.ok()) {
      std::fprintf(stderr, "bench_throughput: store write/open failed\n");
      return 1;
    }
    const std::size_t index_nodes = reader.value()->index_node_count();

    constexpr double kInf = std::numeric_limits<double>::infinity();
    store::StoreQueryStats window_stats;
    std::size_t window_matched = 0;
    bool query_ok = true;
    const Timing qt = TimeLoop([&] {
      auto r = reader.value()->QueryWindow(first_region, -kInf, kInf,
                                           &window_stats,
                                           store::ScanMode::kIndexed);
      query_ok = query_ok && r.ok();
      window_matched = r.ok() ? r->size() : 0;
    });
    // The same window through the flat footer scan — the index's verify
    // oracle and the baseline its pruning is judged against.
    store::StoreQueryStats flat_stats;
    std::size_t flat_matched = 0;
    const Timing ft = TimeLoop([&] {
      auto r = reader.value()->QueryWindow(first_region, -kInf, kInf,
                                           &flat_stats,
                                           store::ScanMode::kFlatScan);
      query_ok = query_ok && r.ok();
      flat_matched = r.ok() ? r->size() : 0;
    });
    std::size_t reconstructed = 0;
    const Timing rt = TimeLoop([&] {
      auto r = reader.value()->ReconstructObject(store_objects / 2);
      query_ok = query_ok && r.ok();
      reconstructed = r.ok() ? r->size() : 0;
    });
    if (!query_ok) {
      std::fprintf(stderr, "bench_throughput: store query failed\n");
      return 1;
    }
    if (window_stats.blocks_skipped == 0) {
      std::fprintf(stderr,
                   "bench_throughput: window query skipped no blocks — "
                   "footer pruning is broken\n");
      return 1;
    }
    if (window_matched != flat_matched ||
        window_stats.blocks_scanned != flat_stats.blocks_scanned) {
      std::fprintf(stderr,
                   "bench_throughput: R-tree and flat scan disagree — "
                   "index pruning is unsound\n");
      return 1;
    }
    // The acceptance gate: the flat scan visits every footer
    // (blocks_total); the R-tree must touch at most 25% as many index
    // nodes to answer the same window.
    if (window_stats.index_nodes_visited * 4 > window_stats.blocks_total) {
      std::fprintf(stderr,
                   "bench_throughput: R-tree visited %llu nodes for %llu "
                   "footers — pruning under the 25%% gate failed\n",
                   static_cast<unsigned long long>(
                       window_stats.index_nodes_visited),
                   static_cast<unsigned long long>(
                       window_stats.blocks_total));
      return 1;
    }

    // One compaction pass: every shard's single level-0 file rewrites
    // into dense id-ordered blocks one level up. Queries must answer
    // identically after it.
    const std::size_t blocks_before_compaction = reader.value()->block_count();
    store::CompactionStats cstats;
    double compact_seconds = 0.0;
    {
      Stopwatch watch;
      store::Compactor compactor(store_path);
      auto compacted = compactor.Run();
      compact_seconds = watch.ElapsedSeconds();
      if (!compacted.ok()) {
        std::fprintf(stderr, "bench_throughput: compaction failed: %s\n",
                     compacted.status().ToString().c_str());
        return 1;
      }
      cstats = *compacted;
    }
    bool post_ok = true;
    const Timing pot = TimeLoop([&] {
      post_ok = post_ok && store::StoreReader::Open(store_path).ok();
    });
    auto post_reader = store::StoreReader::Open(store_path);
    if (!post_ok || !post_reader.ok()) {
      std::fprintf(stderr, "bench_throughput: post-compaction open failed\n");
      return 1;
    }
    store::StoreQueryStats post_stats;
    auto post_window = post_reader.value()->QueryWindow(
        first_region, -kInf, kInf, &post_stats, store::ScanMode::kIndexed);
    std::filesystem::remove_all(store_path);
    if (!post_window.ok() || post_window->size() != window_matched) {
      std::fprintf(stderr,
                   "bench_throughput: compaction changed the window "
                   "query's answer\n");
      return 1;
    }

    JsonRecord rec;
    rec.Str("algorithm", "OPERB");
    rec.Str("spec", store_spec.ToString());
    rec.Int("objects", static_cast<long long>(store_objects));
    rec.Int("points", static_cast<long long>(store_points));
    rec.Int("segments", static_cast<long long>(wstats.segments));
    rec.Int("blocks", static_cast<long long>(wstats.blocks));
    rec.Int("file_bytes", static_cast<long long>(wstats.file_bytes));
    rec.Int("shards", static_cast<long long>(wopts.num_shards));
    rec.Int("index_nodes", static_cast<long long>(index_nodes));
    rec.Num("write_amplification", wstats.write_amplification);
    rec.Int("write_passes", wt.passes);
    rec.Num("write_seconds_per_pass", wt.seconds_per_pass);
    rec.Num("write_segments_per_sec",
            static_cast<double>(wstats.segments) / wt.seconds_per_pass);
    rec.Num("open_seconds_per_pass", ot.seconds_per_pass);
    rec.Num("window_query_seconds", qt.seconds_per_pass);
    rec.Int("window_blocks_skipped",
            static_cast<long long>(window_stats.blocks_skipped));
    rec.Int("window_blocks_scanned",
            static_cast<long long>(window_stats.blocks_scanned));
    rec.Int("window_index_nodes_visited",
            static_cast<long long>(window_stats.index_nodes_visited));
    rec.Int("window_segments_matched",
            static_cast<long long>(window_matched));
    rec.Num("flat_window_query_seconds", ft.seconds_per_pass);
    rec.Int("flat_window_blocks_skipped",
            static_cast<long long>(flat_stats.blocks_skipped));
    rec.Int("flat_window_blocks_scanned",
            static_cast<long long>(flat_stats.blocks_scanned));
    rec.Int("flat_window_segments_matched",
            static_cast<long long>(flat_matched));
    rec.Num("reconstruct_seconds", rt.seconds_per_pass);
    rec.Int("reconstruct_segments", static_cast<long long>(reconstructed));
    rec.Num("compact_seconds", compact_seconds);
    rec.Int("compact_shards_compacted",
            static_cast<long long>(cstats.shards_compacted));
    rec.Num("compact_write_amplification", cstats.write_amplification);
    rec.Int("compact_blocks_before",
            static_cast<long long>(blocks_before_compaction));
    rec.Int("compact_blocks_after",
            static_cast<long long>(post_reader.value()->block_count()));
    rec.Int("compact_files_before",
            static_cast<long long>(cstats.files_before));
    rec.Int("compact_files_after",
            static_cast<long long>(cstats.files_after));
    rec.Num("post_compact_open_seconds", pot.seconds_per_pass);
    rec.Int("post_compact_window_segments_matched",
            static_cast<long long>(post_window->size()));
    store_records.push_back(rec);
    std::printf(
        "store: %zu objects, %llu segments -> %llu blocks in %zu shards "
        "(%llu bytes, write amp %.3f); open %.3f ms; window skipped "
        "%llu/%llu blocks via %llu/%zu index nodes in %.3f ms (flat "
        "%.3f ms), reconstruct %.3f ms; compaction %llu shards, write "
        "amp %.3f, open after %.3f ms\n",
        store_objects, static_cast<unsigned long long>(wstats.segments),
        static_cast<unsigned long long>(wstats.blocks), wopts.num_shards,
        static_cast<unsigned long long>(wstats.file_bytes),
        wstats.write_amplification, ot.seconds_per_pass * 1e3,
        static_cast<unsigned long long>(window_stats.blocks_skipped),
        static_cast<unsigned long long>(window_stats.blocks_total),
        static_cast<unsigned long long>(window_stats.index_nodes_visited),
        index_nodes, qt.seconds_per_pass * 1e3, ft.seconds_per_pass * 1e3,
        rt.seconds_per_pass * 1e3,
        static_cast<unsigned long long>(cstats.shards_compacted),
        cstats.write_amplification, pot.seconds_per_pass * 1e3);
  }

  // ------------------------------------------------------------------
  // Checkpoint: engine snapshot write latency/size and restore latency
  // (DESIGN.md §9). A fleet feed is pushed halfway, the live engine is
  // checkpointed repeatedly (Checkpoint is a drain barrier, not a
  // close — the engine keeps running, so the loop measures the
  // steady-state snapshot cost an operator would pay with
  // --checkpoint-every), the file is restored once under a stopwatch,
  // and the restored engine replays the remainder. The run FAILS
  // unless prefix + tail output matches the uninterrupted run exactly
  // — a checkpoint/restore cycle must be semantically invisible.
  // ------------------------------------------------------------------
  std::vector<JsonRecord> checkpoint_records;
  {
    const std::size_t ckpt_objects = smoke ? 32 : 2000;
    const std::size_t ckpt_per_object = smoke ? 40 : 500;
    std::vector<traj::ObjectUpdate> updates;
    {
      std::vector<traj::ObjectTrajectory> objects;
      objects.reserve(ckpt_objects);
      for (std::size_t k = 0; k < ckpt_objects; ++k) {
        datagen::Rng rng(bench::kBenchSeed + 7919 * (k + 1));
        objects.push_back(
            {k, datagen::GenerateTrajectory(
                    datagen::DatasetProfile::For(datagen::DatasetKind::kSerCar),
                    ckpt_per_object, &rng)});
      }
      updates = traj::InterleaveRoundRobin(objects);
    }
    engine::StreamEngineOptions eopts;
    eopts.spec.zeta = kZeta;  // default algorithm: OPERB, guarded
    eopts.num_threads = smoke ? 2 : 4;
    eopts.num_shards = 4 * eopts.num_threads;

    // Order-insensitive output fingerprint: the engine's per-object
    // emission order is deterministic but worker threads interleave
    // objects freely, so two runs are compared as multisets — a
    // wrapping sum of per-segment FNV hashes (sum, not xor: xor would
    // cancel duplicated segments pairwise).
    const auto segment_hash = [](traj::ObjectId id,
                                 const traj::RepresentedSegment& s) {
      std::uint8_t buf[3 * sizeof(std::uint64_t) + 4 * sizeof(double) + 2];
      std::uint8_t* p = buf;
      const std::uint64_t id64 = id;
      std::memcpy(p, &id64, sizeof id64), p += sizeof id64;
      std::memcpy(p, &s.start.x, sizeof(double)), p += sizeof(double);
      std::memcpy(p, &s.start.y, sizeof(double)), p += sizeof(double);
      std::memcpy(p, &s.end.x, sizeof(double)), p += sizeof(double);
      std::memcpy(p, &s.end.y, sizeof(double)), p += sizeof(double);
      const std::uint64_t first = s.first_index;
      const std::uint64_t last = s.last_index;
      std::memcpy(p, &first, sizeof first), p += sizeof first;
      std::memcpy(p, &last, sizeof last), p += sizeof last;
      *p++ = s.start_is_patch ? 1 : 0;
      *p++ = s.end_is_patch ? 1 : 0;
      return serial::Fnv1a64(std::span<const std::uint8_t>(buf, sizeof buf));
    };
    const auto hashing_sink = [&segment_hash](
                                  std::atomic<std::uint64_t>* sum,
                                  std::atomic<std::uint64_t>* count) {
      return [&segment_hash, sum, count](
                 traj::ObjectId id, const traj::RepresentedSegment& s) {
        sum->fetch_add(segment_hash(id, s), std::memory_order_relaxed);
        count->fetch_add(1, std::memory_order_relaxed);
      };
    };

    // The uninterrupted reference run.
    std::atomic<std::uint64_t> ref_hash{0};
    std::atomic<std::uint64_t> ref_count{0};
    {
      engine::StreamEngine eng(eopts, hashing_sink(&ref_hash, &ref_count));
      eng.Push(std::span<const traj::ObjectUpdate>(updates));
      eng.Close();
    }

    // Prefix run: push half the feed, then checkpoint the live engine.
    const std::size_t cut = updates.size() / 2;
    const std::string ckpt_path = "bench_engine_checkpoint.tmp";
    std::atomic<std::uint64_t> prefix_hash{0};
    std::atomic<std::uint64_t> prefix_count{0};
    engine::StreamEngine prefix_eng(eopts,
                                    hashing_sink(&prefix_hash, &prefix_count));
    prefix_eng.Push(std::span<const traj::ObjectUpdate>(updates).first(cut));
    bool ckpt_ok = true;
    const Timing ckt = TimeLoop(
        [&] { ckpt_ok = ckpt_ok && prefix_eng.Checkpoint(ckpt_path).ok(); });
    if (!ckpt_ok) {
      std::fprintf(stderr, "bench_throughput: engine checkpoint failed\n");
      return 1;
    }
    std::error_code ckpt_ec;
    const std::uint64_t ckpt_bytes =
        std::filesystem::file_size(ckpt_path, ckpt_ec);
    if (ckpt_ec || ckpt_bytes == 0) {
      std::fprintf(stderr, "bench_throughput: checkpoint file missing\n");
      return 1;
    }
    // Checkpoint() is a drain barrier, so these snapshots are exactly
    // the prefix's output; Close() afterwards flushes tails the
    // restored engine must re-emit, so it must not touch the hashes we
    // compare — hence the copies first.
    const std::uint64_t prefix_h = prefix_hash.load();
    const std::uint64_t prefix_c = prefix_count.load();
    prefix_eng.Close();

    // Restore once under a stopwatch (the construct path: read +
    // checksum + rebuild every state + start workers), then replay the
    // remainder through the restored engine.
    std::atomic<std::uint64_t> tail_hash{0};
    std::atomic<std::uint64_t> tail_count{0};
    double restore_seconds = 0.0;
    std::unique_ptr<engine::StreamEngine> restored;
    {
      Stopwatch watch;
      auto r = engine::StreamEngine::CreateFromCheckpoint(
          ckpt_path, eopts, hashing_sink(&tail_hash, &tail_count));
      restore_seconds = watch.ElapsedSeconds();
      if (!r.ok()) {
        std::fprintf(stderr, "bench_throughput: checkpoint restore failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
      restored = std::move(r).value();
    }
    restored->Push(std::span<const traj::ObjectUpdate>(updates).subspan(cut));
    restored->Close();
    std::filesystem::remove(ckpt_path, ckpt_ec);
    const bool output_match =
        prefix_c + tail_count.load() == ref_count.load() &&
        prefix_h + tail_hash.load() == ref_hash.load();
    if (!output_match) {
      std::fprintf(stderr,
                   "bench_throughput: resumed output does not match the "
                   "uninterrupted run — checkpoint/restore is unsound\n");
      return 1;
    }

    JsonRecord rec;
    rec.Str("algorithm", "OPERB");
    rec.Str("spec", eopts.spec.ToString());
    rec.Int("objects", static_cast<long long>(ckpt_objects));
    rec.Int("points", static_cast<long long>(updates.size()));
    rec.Int("prefix_points", static_cast<long long>(cut));
    // Every object is still live at the cut (no FinishObject, no idle
    // timeout), so the snapshot holds one state per object.
    rec.Int("live_states", static_cast<long long>(ckpt_objects));
    rec.Int("threads", static_cast<long long>(eopts.num_threads));
    rec.Int("shards", static_cast<long long>(eopts.num_shards));
    rec.Int("checkpoint_bytes", static_cast<long long>(ckpt_bytes));
    rec.Num("checkpoint_bytes_per_state",
            static_cast<double>(ckpt_bytes) /
                static_cast<double>(ckpt_objects));
    rec.Int("checkpoint_write_passes", ckt.passes);
    rec.Num("checkpoint_write_seconds_per_pass", ckt.seconds_per_pass);
    rec.Num("restore_seconds", restore_seconds);
    rec.Int("segments", static_cast<long long>(ref_count.load()));
    rec.Int("output_match", output_match ? 1 : 0);
    checkpoint_records.push_back(rec);
    std::printf(
        "checkpoint: %zu live states -> %llu bytes (%.1f B/state) in "
        "%.3f ms; restore %.3f ms; resumed output matches\n",
        ckpt_objects, static_cast<unsigned long long>(ckpt_bytes),
        static_cast<double>(ckpt_bytes) / static_cast<double>(ckpt_objects),
        ckt.seconds_per_pass * 1e3, restore_seconds * 1e3);
  }

  // ------------------------------------------------------------------
  // Server: the live daemon surface (src/server). An in-process
  // TrajectoryServer holds a 100k-object fleet in flight (nothing
  // finished — every query crosses the read-your-writes merge of the
  // sealed store, the overlay and the engine tails), and loopback
  // Client connections sweep PositionAt queries at 1/4/8 client
  // threads while one more connection keeps ingesting. qps is
  // wall-clock; p50/p99 come from the server's own
  // obs server.query_ns histogram.
  // ------------------------------------------------------------------
  std::vector<JsonRecord> server_records;
  {
    const std::size_t server_objects = smoke ? 2000 : 100000;
    const std::size_t server_per_object = 4;
    const std::size_t queries_per_thread = smoke ? 200 : 2000;
    std::vector<traj::ObjectUpdate> updates;
    {
      std::vector<traj::ObjectTrajectory> objects;
      objects.reserve(server_objects);
      for (std::size_t k = 0; k < server_objects; ++k) {
        datagen::Rng rng(bench::kBenchSeed + 31 * (k + 1));
        objects.push_back(
            {k, datagen::GenerateTrajectory(
                    datagen::DatasetProfile::For(datagen::DatasetKind::kSerCar),
                    server_per_object, &rng)});
      }
      updates = traj::InterleaveRoundRobin(objects);
    }

    const std::string server_store = "bench_server_store.tmp";
    std::filesystem::remove_all(server_store);
    server::ServerOptions sopts;
    sopts.engine.spec.zeta = kZeta;  // default algorithm: OPERB, guarded
    sopts.engine.num_threads = smoke ? 2 : 4;
    sopts.engine.num_shards = 4 * sopts.engine.num_threads;
    sopts.store_path = server_store;
    sopts.seal_interval_seconds = 0.25;  // background sealer runs live
    auto started = server::TrajectoryServer::Start(sopts, 0);
    if (!started.ok()) {
      std::fprintf(stderr, "bench_throughput: server start failed: %s\n",
                   started.status().ToString().c_str());
      return 1;
    }
    server::TrajectoryServer& srv = **started;

    // Ingest the whole fleet over one loopback connection, in the
    // CLI's batch size, under a stopwatch — the daemon-path ingest
    // rate including framing, admission and the engine hand-off.
    double ingest_seconds = 0.0;
    {
      auto c = server::Client::Connect("127.0.0.1", srv.port());
      if (!c.ok()) {
        std::fprintf(stderr, "bench_throughput: client connect failed\n");
        return 1;
      }
      Stopwatch watch;
      const std::span<const traj::ObjectUpdate> all(updates);
      for (std::size_t off = 0; off < all.size(); off += 512) {
        const Status s =
            c->Ingest(all.subspan(off, std::min<std::size_t>(512, all.size() - off)));
        if (!s.ok()) {
          std::fprintf(stderr, "bench_throughput: server ingest failed: %s\n",
                       s.ToString().c_str());
          return 1;
        }
      }
      ingest_seconds = watch.ElapsedSeconds();
    }
    // One all-covering window query barriers every shard (staging flush
    // + ring FIFO), so the census below is exact, not a mid-flight
    // snapshot.
    {
      geo::BoundingBox everything;
      everything.Extend(geo::Vec2{-1e12, -1e12});
      everything.Extend(geo::Vec2{1e12, 1e12});
      auto warm = srv.QueryWindow(everything, -1e18, 1e18, false);
      if (!warm.ok()) {
        std::fprintf(stderr, "bench_throughput: server warm query failed\n");
        return 1;
      }
    }
    const std::uint64_t live_objects = srv.Stats().live_objects;

    // Query sweep: each client thread owns its own connection (the
    // client is single-request-in-flight by design) and fires
    // PositionAt over random live objects; one extra connection keeps
    // ingesting fresh points so the merge path never degenerates to a
    // static store read.
    struct SweepRow {
      std::size_t threads;
      double qps;
      double p50_ms;
      double p99_ms;
      std::uint64_t queries;
    };
    std::vector<SweepRow> sweep;
    // Live-ingest timestamps stay monotone per object across sweeps:
    // one shared counter, bumped only by the (single) active ingester.
    double ingest_t = 1e6;  // far past every generated timestamp
    for (const std::size_t threads : {1u, 4u, 8u}) {
      std::atomic<bool> stop_ingest{false};
      std::atomic<bool> sweep_failed{false};
      std::thread ingester([&] {
        auto c = server::Client::Connect("127.0.0.1", srv.port());
        if (!c.ok()) return;
        datagen::Rng rng(bench::kBenchSeed + 999 * threads);
        while (!stop_ingest.load(std::memory_order_relaxed)) {
          std::vector<traj::ObjectUpdate> batch;
          batch.reserve(64);
          for (std::size_t i = 0; i < 64; ++i) {
            const traj::ObjectId id = rng.NextBelow(server_objects);
            batch.push_back({id,
                             {rng.Uniform(-1e4, 1e4), rng.Uniform(-1e4, 1e4),
                              ingest_t}});
            ingest_t += 1.0;
          }
          if (!c->Ingest(batch).ok()) return;
          // Steady background load (~30k pts/s), not ring saturation:
          // an unthrottled loop keeps every ring near the busy mark and
          // the sweep measures barrier waits instead of query cost.
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      });

      std::atomic<std::uint64_t> completed{0};
      Stopwatch watch;
      std::vector<std::thread> workers;
      for (std::size_t w = 0; w < threads; ++w) {
        workers.emplace_back([&, w] {
          auto c = server::Client::Connect("127.0.0.1", srv.port());
          if (!c.ok()) {
            sweep_failed.store(true);
            return;
          }
          datagen::Rng rng(bench::kBenchSeed + 17 * (w + 1));
          for (std::size_t q = 0; q < queries_per_thread; ++q) {
            const traj::ObjectId id = rng.NextBelow(server_objects);
            // Mid-trajectory timestamp: SerCar samples ~1 Hz from 0.
            auto r = c->PositionAt(id, 1.0);
            if (!r.ok() &&
                r.status().code() != StatusCode::kNotFound) {
              sweep_failed.store(true);
              return;
            }
            completed.fetch_add(1, std::memory_order_relaxed);
          }
        });
      }
      for (std::thread& t : workers) t.join();
      const double sweep_seconds = watch.ElapsedSeconds();
      stop_ingest.store(true);
      ingester.join();
      if (sweep_failed.load() ||
          completed.load() != threads * queries_per_thread) {
        std::fprintf(stderr,
                     "bench_throughput: server query sweep failed at %zu "
                     "threads\n",
                     threads);
        return 1;
      }
      const auto snapshot = obs::MetricsRegistry::Global()
                                .GetHistogram("server.query_ns")
                                ->Snapshot();
      // The histogram is cumulative across sweeps, so the recorded
      // p50/p99 cover all queries so far — still the ordering-stable
      // signal the validator gates (p50 <= p99, both positive).
      SweepRow row;
      row.threads = threads;
      row.queries = completed.load();
      row.qps = static_cast<double>(completed.load()) / sweep_seconds;
      row.p50_ms = snapshot.ApproxPercentile(0.5) / 1e6;
      row.p99_ms = snapshot.ApproxPercentile(0.99) / 1e6;
      sweep.push_back(row);
      std::printf(
          "server: %zu client thread(s)  %7.0f qps  p50 %.3f ms  p99 "
          "%.3f ms  (%llu live objects)\n",
          threads, row.qps, row.p50_ms, row.p99_ms,
          static_cast<unsigned long long>(live_objects));
    }

    const server::StatsBody final_stats = srv.Stats();
    const Status stopped = srv.Stop();
    std::filesystem::remove_all(server_store);
    if (!stopped.ok()) {
      std::fprintf(stderr, "bench_throughput: server stop failed: %s\n",
                   stopped.ToString().c_str());
      return 1;
    }

    for (const SweepRow& row : sweep) {
      JsonRecord rec;
      rec.Str("algorithm", "OPERB");
      rec.Str("spec", sopts.engine.spec.ToString());
      rec.Int("live_objects", static_cast<long long>(live_objects));
      rec.Int("ingest_points", static_cast<long long>(updates.size()));
      rec.Num("ingest_seconds", ingest_seconds);
      rec.Num("ingest_points_per_sec",
              static_cast<double>(updates.size()) / ingest_seconds);
      rec.Int("client_threads", static_cast<long long>(row.threads));
      rec.Int("queries", static_cast<long long>(row.queries));
      rec.Num("query_qps", row.qps);
      rec.Num("query_p50_ms", row.p50_ms);
      rec.Num("query_p99_ms", row.p99_ms);
      rec.Int("seals", static_cast<long long>(final_stats.seals));
      rec.Int("backpressure_rejects",
              static_cast<long long>(final_stats.backpressure_rejects));
      server_records.push_back(rec);
    }
  }

  // ------------------------------------------------------------------
  // Emit JSON.
  // ------------------------------------------------------------------
  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_throughput: cannot open %s\n",
                 out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"schema\": \"operb-bench-throughput\",\n"
               "  \"schema_version\": 9,\n"
               "  \"smoke\": %s,\n"
               "  \"unix_time\": %lld,\n"
               "  \"zeta\": %g,\n"
               "  \"seed\": %llu,\n",
               smoke ? "true" : "false",
               static_cast<long long>(std::time(nullptr)), kZeta,
               static_cast<unsigned long long>(bench::kBenchSeed));
  std::fprintf(f, "  \"ingest\": %s,\n", JoinRecords(ingest).c_str());
  std::fprintf(f, "  \"steady_state\": %s,\n", JoinRecords(steady).c_str());
  std::fprintf(f, "  \"simd_vs_scalar\": %s,\n",
               JoinRecords(simd_rows).c_str());
  std::fprintf(f, "  \"end_to_end\": %s,\n", JoinRecords(end_to_end).c_str());
  std::fprintf(f, "  \"concurrent_streams\": %s,\n",
               JoinRecords(concurrent).c_str());
  std::fprintf(f, "  \"facade_overhead\": %s,\n",
               JoinRecords(facade).c_str());
  std::fprintf(f, "  \"metrics_overhead\": %s,\n",
               JoinRecords(metrics_records).c_str());
  std::fprintf(f, "  \"store\": %s,\n",
               JoinRecords(store_records).c_str());
  std::fprintf(f, "  \"checkpoint\": %s,\n",
               JoinRecords(checkpoint_records).c_str());
  std::fprintf(f, "  \"server\": %s\n}\n",
               JoinRecords(server_records).c_str());
  if (std::fclose(f) != 0) {
    std::fprintf(stderr, "bench_throughput: write failure on %s\n",
                 out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
