#!/usr/bin/env python3
"""Link and anchor checker for the repository's markdown docs.

Checks every markdown link in the given files:
  - relative file targets must exist (relative to the linking file);
  - `#anchor` fragments — both same-file and cross-file — must match a
    heading in the target file, using GitHub's slugification rules
    (lowercase, spaces to dashes, punctuation stripped);
  - bare directory targets are accepted when the directory exists.
http(s)/mailto targets are not fetched (CI must not depend on the
network); they are only checked for empty targets.

Stdlib-only so the CI docs job and the local ctest entry need no extra
packages.

Usage: check_docs_links.py FILE.md [FILE.md ...]
Exit codes: 0 all links valid, 1 broken links, 2 usage/IO error.
"""

import os
import re
import sys

# [text](target) — excluding images' alt text is unnecessary: the target
# rules are identical for images. Nested parens inside code spans are not
# used by our docs.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading):
    """GitHub's anchor slug for a heading text."""
    # Strip markdown emphasis/code markers and links.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = text.replace("`", "").replace("*", "").replace("_", " ")
    text = text.strip().lower()
    # Keep word characters, spaces and dashes; drop the rest.
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def headings_of(path):
    """All heading slugs of a markdown file, with GitHub's -1/-2 dedup."""
    slugs = set()
    counts = {}
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if not m:
                continue
            slug = github_slug(m.group(1))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_file(path, errors):
    base = os.path.dirname(os.path.abspath(path))
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in LINK_RE.finditer(line):
                target = m.group(1)
                where = f"{path}:{lineno}"
                if not target:
                    errors.append(f"{where}: empty link target")
                    continue
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                file_part, _, anchor = target.partition("#")
                if file_part:
                    resolved = os.path.normpath(
                        os.path.join(base, file_part))
                    if not os.path.exists(resolved):
                        errors.append(
                            f"{where}: broken link '{target}' "
                            f"({resolved} does not exist)")
                        continue
                    anchor_file = resolved
                else:
                    anchor_file = os.path.abspath(path)
                if anchor:
                    if os.path.isdir(anchor_file) or not (
                            anchor_file.endswith(".md")):
                        errors.append(
                            f"{where}: anchor '#{anchor}' on a "
                            f"non-markdown target '{target}'")
                        continue
                    if anchor not in headings_of(anchor_file):
                        errors.append(
                            f"{where}: anchor '#{anchor}' not found in "
                            f"{anchor_file}")


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    errors = []
    for path in sys.argv[1:]:
        if not os.path.exists(path):
            print(f"check_docs_links: no such file {path}", file=sys.stderr)
            return 2
        check_file(path, errors)
    for e in errors:
        print(f"check_docs_links: {e}", file=sys.stderr)
    if errors:
        return 1
    print(f"check_docs_links: {len(sys.argv) - 1} file(s), all links and "
          "anchors valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
