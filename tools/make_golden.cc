// make_golden: regenerates the golden equivalence fixtures under
// tests/golden/.
//
// For every algorithm in the library and every synthetic dataset profile
// it runs the batch Simplify() path on a fixed trajectory (600 points,
// seed 20170401, zeta = 40 m, library-default guarded fidelity) and dumps
// the resulting segments with full double precision (%.17g round-trips
// bit-exactly). tests/equivalence_test.cc asserts that every execution
// path — batch, per-point streaming, sink, batch Push — reproduces these
// files bit-identically.
//
// The checked-in fixtures were produced by the pre-optimization scalar
// implementation; regenerate (and re-review the diff!) only when an
// *intentional* output change lands:
//
//   make_golden <repo>/tests/golden
//
// Exit codes: 0 success, 1 write failure, 2 usage error.

#include <cstdio>
#include <string>

#include "baselines/simplifier.h"
#include "datagen/profiles.h"
#include "datagen/rng.h"
#include "traj/piecewise.h"
#include "traj/trajectory.h"

namespace {

using namespace operb;  // NOLINT: single-file tool

constexpr std::uint64_t kGoldenSeed = 20170401;
constexpr std::size_t kGoldenPoints = 600;
constexpr double kGoldenZeta = 40.0;

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: make_golden OUTPUT_DIR\n");
    return 2;
  }
  const std::string out_dir = argv[1];

  for (datagen::DatasetKind kind : datagen::AllDatasetKinds()) {
    datagen::Rng rng(kGoldenSeed);
    const traj::Trajectory trajectory = datagen::GenerateTrajectory(
        datagen::DatasetProfile::For(kind), kGoldenPoints, &rng);
    for (baselines::Algorithm algo : baselines::AllAlgorithms()) {
      const auto simplifier =
          baselines::MakeSimplifier(algo, kGoldenZeta);
      const traj::PiecewiseRepresentation rep =
          simplifier->Simplify(trajectory);

      const std::string path = out_dir + "/golden_" +
                               std::string(baselines::AlgorithmName(algo)) +
                               "_" + std::string(datagen::DatasetName(kind)) +
                               ".csv";
      std::FILE* f = std::fopen(path.c_str(), "wb");
      if (f == nullptr) {
        std::fprintf(stderr, "make_golden: cannot open %s\n", path.c_str());
        return 1;
      }
      std::fprintf(f,
                   "# golden segments: %s on %s, n=%zu seed=%llu zeta=%g\n"
                   "# first,last,start_patch,end_patch,sx,sy,ex,ey\n",
                   std::string(baselines::AlgorithmName(algo)).c_str(),
                   std::string(datagen::DatasetName(kind)).c_str(),
                   kGoldenPoints,
                   static_cast<unsigned long long>(kGoldenSeed), kGoldenZeta);
      for (const traj::RepresentedSegment& s : rep) {
        std::fprintf(f, "%zu,%zu,%d,%d,%.17g,%.17g,%.17g,%.17g\n",
                     s.first_index, s.last_index, s.start_is_patch ? 1 : 0,
                     s.end_is_patch ? 1 : 0, s.start.x, s.start.y, s.end.x,
                     s.end.y);
      }
      if (std::fclose(f) != 0) {
        std::fprintf(stderr, "make_golden: write failure on %s\n",
                     path.c_str());
        return 1;
      }
      std::printf("wrote %s (%zu segments)\n", path.c_str(), rep.size());
    }
  }
  return 0;
}
