// operb_server: long-running trajectory daemon (DESIGN.md §11).
//
// Owns a live StreamEngine (any registered algorithm spec) and a sealed
// trajectory store, accepts concurrent client connections over the
// length-prefixed TCP protocol (loopback only), ingests interleaved
// (id,t,x,y) streams, seals finished segments to the store in the
// background, and answers window / per-object / position-at-time
// queries with a read-your-writes merge of the sealed store and the
// in-flight per-object tails. `operb_cli --connect HOST:PORT` is the
// matching client.
//
// The daemon runs until SIGINT/SIGTERM or a client's --shutdown, then
// drains connections, checkpoints the engine (--checkpoint-out), seals
// everything to the store and writes a final metrics snapshot
// (--metrics-out).
//
// Exit codes: 0 clean shutdown, 2 usage error, 3 startup or shutdown
// I/O failure.

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "api/spec.h"
#include "server/server.h"

namespace {

using namespace operb;  // NOLINT: single-file tool

constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;
constexpr int kExitIo = 3;

volatile std::sig_atomic_t g_signal = 0;

void OnSignal(int sig) { g_signal = sig; }

void PrintUsage(std::FILE* out) {
  std::fprintf(
      out,
      "operb_server — concurrent ingest+query trajectory daemon "
      "(loopback TCP)\n"
      "\n"
      "Required:\n"
      "  --store PATH          store directory the daemon owns (created "
      "fresh)\n"
      "\n"
      "Optional:\n"
      "  --port N              TCP port on 127.0.0.1 (default 0 = "
      "ephemeral)\n"
      "  --port-file PATH      write the bound port to PATH (atomic "
      "temp+rename;\n"
      "                        how scripts find an ephemeral port)\n"
      "  --spec SPEC           simplifier spec, ALGORITHM[:key=value,...] "
      "(default\n"
      "                        OPERB:zeta=40; the spec's zeta is the "
      "store's zeta)\n"
      "  --threads N           engine worker threads (default 2)\n"
      "  --shards N            engine state-table shards (default 4 * "
      "threads)\n"
      "  --store-shards N      store shard count (default 4)\n"
      "  --ring-capacity N     per-shard ring capacity (default 8192); "
      "the BUSY\n"
      "                        flow-control threshold is 75%% of it\n"
      "  --seal-interval SEC   background seal period (default 0.5; 0 "
      "seals only\n"
      "                        on demand and at shutdown)\n"
      "  --checkpoint-out PATH write a final engine checkpoint at "
      "shutdown\n"
      "  --metrics-out PATH    write a final metrics snapshot at "
      "shutdown\n"
      "  --help                this text\n");
}

bool ParseU64Flag(const char* value, std::uint64_t max, std::uint64_t* out) {
  if (value == nullptr || *value == '\0' ||
      std::string(value).find_first_not_of("0123456789") !=
          std::string::npos) {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  *out = std::strtoull(value, &end, 10);
  return errno == 0 && end != nullptr && *end == '\0' && *out <= max;
}

/// Atomic write of the bound port — readers either see nothing or a
/// complete port line, never a torn file (the smoke script polls it).
bool WritePortFile(const std::string& path, std::uint16_t port) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fprintf(f, "%u\n", static_cast<unsigned>(port)) > 0;
  if (std::fclose(f) != 0 || !ok) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  server::ServerOptions options;
  options.engine.num_threads = 2;
  options.engine.num_shards = 0;  // 0 = auto (4 * threads), resolved below
  std::uint64_t port = 0;
  std::string port_file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "operb_server: %s requires a value\n",
                     arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return kExitOk;
    } else if (arg == "--store") {
      const char* v = value();
      if (v == nullptr) return kExitUsage;
      options.store_path = v;
    } else if (arg == "--port") {
      const char* v = value();
      if (v == nullptr || !ParseU64Flag(v, 65535, &port)) {
        std::fprintf(stderr, "operb_server: --port must be 0..65535\n");
        return kExitUsage;
      }
    } else if (arg == "--port-file") {
      const char* v = value();
      if (v == nullptr) return kExitUsage;
      port_file = v;
    } else if (arg == "--spec") {
      const char* v = value();
      if (v == nullptr) return kExitUsage;
      Result<api::SimplifierSpec> spec = api::SimplifierSpec::Parse(v);
      if (!spec.ok()) {
        std::fprintf(stderr, "operb_server: %s\n",
                     spec.status().ToString().c_str());
        return kExitUsage;
      }
      options.engine.spec = std::move(spec).value();
    } else if (arg == "--threads" || arg == "--shards" ||
               arg == "--store-shards" || arg == "--ring-capacity") {
      const char* v = value();
      std::uint64_t n = 0;
      const std::uint64_t max = arg == "--threads"        ? 1024
                                : arg == "--shards"       ? 65536
                                : arg == "--store-shards" ? 65536
                                                          : (1u << 24);
      const bool zero_ok = arg == "--shards";  // 0 = auto
      if (v == nullptr || !ParseU64Flag(v, max, &n) || (!zero_ok && n == 0)) {
        std::fprintf(stderr,
                     "operb_server: %s must be an integer in %c..%llu\n",
                     arg.c_str(), zero_ok ? '0' : '1',
                     static_cast<unsigned long long>(max));
        return kExitUsage;
      }
      if (arg == "--threads") {
        options.engine.num_threads = n;
      } else if (arg == "--shards") {
        options.engine.num_shards = n;
      } else if (arg == "--store-shards") {
        options.store_shards = n;
      } else {
        options.engine.ring_capacity = n;
      }
    } else if (arg == "--seal-interval") {
      const char* v = value();
      char* end = nullptr;
      options.seal_interval_seconds =
          v == nullptr ? -1.0 : std::strtod(v, &end);
      if (v == nullptr || end == v || *end != '\0' ||
          options.seal_interval_seconds < 0.0) {
        std::fprintf(stderr,
                     "operb_server: --seal-interval must be a "
                     "non-negative number of seconds\n");
        return kExitUsage;
      }
    } else if (arg == "--checkpoint-out") {
      const char* v = value();
      if (v == nullptr) return kExitUsage;
      options.final_checkpoint_path = v;
    } else if (arg == "--metrics-out") {
      const char* v = value();
      if (v == nullptr) return kExitUsage;
      options.final_metrics_path = v;
    } else {
      std::fprintf(stderr, "operb_server: unknown argument '%s'\n",
                   arg.c_str());
      std::fprintf(stderr, "Run 'operb_server --help' for usage.\n");
      return kExitUsage;
    }
  }
  if (options.store_path.empty()) {
    std::fprintf(stderr, "operb_server: --store PATH is required\n");
    return kExitUsage;
  }
  if (options.engine.num_shards == 0) {
    options.engine.num_shards = 4 * options.engine.num_threads;
  }

  Result<std::unique_ptr<server::TrajectoryServer>> started =
      server::TrajectoryServer::Start(options,
                                      static_cast<std::uint16_t>(port));
  if (!started.ok()) {
    std::fprintf(stderr, "operb_server: %s\n",
                 started.status().ToString().c_str());
    return started.status().code() == StatusCode::kInvalidArgument
               ? kExitUsage
               : kExitIo;
  }
  server::TrajectoryServer& daemon = **started;

  if (!port_file.empty() && !WritePortFile(port_file, daemon.port())) {
    std::fprintf(stderr, "operb_server: cannot write --port-file %s\n",
                 port_file.c_str());
    return kExitIo;
  }

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = OnSignal;
  (void)sigaction(SIGINT, &sa, nullptr);
  (void)sigaction(SIGTERM, &sa, nullptr);

  std::printf("operb_server: listening on 127.0.0.1:%u  (store %s, spec "
              "%s, %llu thread(s), %llu shard(s))\n",
              static_cast<unsigned>(daemon.port()),
              options.store_path.c_str(),
              options.engine.spec.ToString().c_str(),
              static_cast<unsigned long long>(options.engine.num_threads),
              static_cast<unsigned long long>(options.engine.num_shards));
  std::fflush(stdout);

  // Wait for either a client's --shutdown verb or a signal. The sleep
  // keeps signal latency at ~50 ms without busy-waiting.
  while (g_signal == 0 && !daemon.ShutdownRequested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const char* why = g_signal == SIGINT    ? "SIGINT"
                    : g_signal == SIGTERM ? "SIGTERM"
                                          : "client shutdown";
  std::printf("operb_server: %s — draining and sealing\n", why);
  std::fflush(stdout);

  const Status stopped = daemon.Stop();
  if (!stopped.ok()) {
    std::fprintf(stderr, "operb_server: shutdown error: %s\n",
                 stopped.ToString().c_str());
    return kExitIo;
  }
  std::printf("operb_server: stopped cleanly\n");
  return kExitOk;
}
