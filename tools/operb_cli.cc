// operb_cli: end-to-end command-line driver for the library.
//
// Reads a trajectory (plain x,y,t CSV, a GeoLife .plt file, or a synthetic
// dataset profile), simplifies it with any algorithm in the library at a
// chosen error bound, independently verifies the bound with eval::, and
// prints compression-ratio / timing / error statistics. The simplified
// representation can be written back out as CSV for plotting.
//
// With --group-by-id the input is a multi-object stream (`id,t,x,y` CSV
// rows, freely interleaved): every object is simplified independently by
// the sharded StreamEngine across --threads worker threads, output
// segments are tagged with their object id, and the bound is verified
// per object.
//
// Examples:
//   operb_cli --input drive.csv --algorithm OPERB-A --zeta 30 --output out.csv
//   operb_cli --plt geolife/000/Trajectory/20081023025304.plt --zeta 10
//   operb_cli --generate SerCar:5000 --algorithm FBQS --zeta 40
//   operb_cli --group-by-id --input fleet.csv --threads 4 --output tagged.csv
//   operb_cli --group-by-id --generate Taxi:500 --objects 1000 --threads 8
//
// Exit codes: 0 success (bound verified or --no-verify), 1 bound violation,
// 2 usage error, 3 I/O error.

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "baselines/simplifier.h"
#include "common/stopwatch.h"
#include "datagen/profiles.h"
#include "datagen/rng.h"
#include "engine/stream_engine.h"
#include "eval/metrics.h"
#include "eval/verifier.h"
#include "traj/io.h"
#include "traj/multi_object.h"
#include "traj/trajectory.h"

namespace {

using namespace operb;  // NOLINT: single-file tool

constexpr int kExitOk = 0;
constexpr int kExitBoundViolation = 1;
constexpr int kExitUsage = 2;
constexpr int kExitIo = 3;

struct CliOptions {
  // Input: exactly one of csv_path / plt_path / generate.
  std::string csv_path;
  std::string plt_path;
  std::string generate_spec;  ///< KIND[:POINTS[:SEED]]

  baselines::Algorithm algorithm = baselines::Algorithm::kOPERB;
  double zeta = 40.0;
  baselines::OperbFidelity fidelity = baselines::OperbFidelity::kGuarded;

  // Multi-object engine mode (--group-by-id).
  bool group_by_id = false;
  std::uint64_t threads = 1;
  std::uint64_t shards = 0;   ///< 0 = auto (4 * threads)
  std::uint64_t objects = 8;  ///< synthetic object count for --generate

  std::string output_path;      ///< representation CSV (optional)
  std::string save_input_path;  ///< write the input trajectory as CSV
  bool verify = true;
  double verify_slack = 1e-9;
};

void PrintUsage(std::FILE* out) {
  std::fprintf(out,
               "operb_cli — one-pass error-bounded trajectory simplification "
               "(OPERB, PVLDB 2017)\n"
               "\n"
               "Input (choose one; default --generate SerCar:2000:1):\n"
               "  --input PATH          plain CSV trajectory: x,y,t rows in "
               "projected meters\n"
               "  --plt PATH            GeoLife .plt trajectory "
               "(lat/lon, projected to local meters)\n"
               "  --generate SPEC       synthetic profile KIND[:POINTS[:SEED]]"
               ", KIND one of\n"
               "                        Taxi | Truck | SerCar | GeoLife\n"
               "\n"
               "Simplification:\n"
               "  --algorithm NAME      DP | DP-SED | OPW | OPW-SED | BQS | "
               "FBQS |\n"
               "                        Raw-OPERB | OPERB | Raw-OPERB-A | "
               "OPERB-A  (default OPERB)\n"
               "  --zeta METERS         error bound, > 0 (default 40)\n"
               "  --fidelity MODE       guarded | paper — how OPERB-family "
               "algorithms treat the\n"
               "                        heuristic optimizations' bound "
               "(default guarded; see DESIGN.md)\n"
               "\n"
               "Multi-object engine mode:\n"
               "  --group-by-id         treat the input as an interleaved "
               "id,t,x,y stream and\n"
               "                        simplify every object concurrently "
               "(StreamEngine)\n"
               "  --threads N           engine worker threads (default 1)\n"
               "  --shards N            engine state-table shards (default "
               "4 * threads)\n"
               "  --objects K           with --generate: synthesize K "
               "objects, round-robin\n"
               "                        interleaved (default 8)\n"
               "\n"
               "Output:\n"
               "  --output PATH         write the piecewise representation as "
               "CSV (with\n"
               "                        --group-by-id: id-tagged segment "
               "rows)\n"
               "  --save-input PATH     write the (parsed or generated) input "
               "trajectory as CSV\n"
               "  --no-verify           skip the independent error-bound "
               "check\n"
               "  --help                this text\n");
}

std::optional<baselines::Algorithm> ParseAlgorithm(std::string_view name) {
  for (baselines::Algorithm algo : baselines::AllAlgorithms()) {
    if (name == baselines::AlgorithmName(algo)) return algo;
  }
  return std::nullopt;
}

std::optional<datagen::DatasetKind> ParseDatasetKind(std::string_view name) {
  for (datagen::DatasetKind kind : datagen::AllDatasetKinds()) {
    if (name == datagen::DatasetName(kind)) return kind;
  }
  return std::nullopt;
}

/// Strict decimal parse: digits only (no sign, no ERANGE saturation, no
/// trailing junk). strtoull alone would silently wrap "-5" to 2^64 - 5.
bool ParseU64(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  *out = std::strtoull(s.c_str(), &end, 10);
  return errno == 0 && end != nullptr && *end == '\0';
}

/// Parsed form of a --generate KIND[:POINTS[:SEED]] spec.
struct GenerateSpec {
  datagen::DatasetKind kind = datagen::DatasetKind::kSerCar;
  std::uint64_t points = 2000;
  std::uint64_t seed = 1;
};

/// Parses KIND[:POINTS[:SEED]]; prints to stderr and returns nullopt on
/// malformed specs.
std::optional<GenerateSpec> ParseGenerateSpec(const std::string& spec) {
  // Generous ceiling so a typo'd point count fails as a usage error
  // instead of a multi-gigabyte allocation.
  constexpr std::uint64_t kMaxGeneratedPoints = 100'000'000;

  GenerateSpec out;
  std::string kind_name = spec;

  const std::size_t colon1 = spec.find(':');
  if (colon1 != std::string::npos) {
    kind_name = spec.substr(0, colon1);
    const std::string rest = spec.substr(colon1 + 1);
    const std::size_t colon2 = rest.find(':');
    const std::string points_str =
        colon2 == std::string::npos ? rest : rest.substr(0, colon2);
    if (!ParseU64(points_str, &out.points) || out.points < 2 ||
        out.points > kMaxGeneratedPoints) {
      std::fprintf(stderr,
                   "operb_cli: bad point count in --generate '%s' (need "
                   "2..%llu)\n",
                   spec.c_str(),
                   static_cast<unsigned long long>(kMaxGeneratedPoints));
      return std::nullopt;
    }
    if (colon2 != std::string::npos) {
      if (!ParseU64(rest.substr(colon2 + 1), &out.seed)) {
        std::fprintf(stderr, "operb_cli: bad seed in --generate '%s'\n",
                     spec.c_str());
        return std::nullopt;
      }
    }
  }

  const auto kind = ParseDatasetKind(kind_name);
  if (!kind) {
    std::fprintf(stderr,
                 "operb_cli: unknown dataset kind '%s' (expected Taxi, "
                 "Truck, SerCar or GeoLife)\n",
                 kind_name.c_str());
    return std::nullopt;
  }
  out.kind = *kind;
  return out;
}

std::optional<traj::Trajectory> GenerateFromSpec(const std::string& spec) {
  const std::optional<GenerateSpec> parsed = ParseGenerateSpec(spec);
  if (!parsed) return std::nullopt;
  datagen::Rng rng(parsed->seed);
  return datagen::GenerateTrajectory(datagen::DatasetProfile::For(parsed->kind),
                                     parsed->points, &rng);
}

/// Parses argv into `options`; returns false (after printing a message) on
/// malformed input. `--help` sets `wants_help` instead.
bool ParseArgs(int argc, char** argv, CliOptions* options, bool* wants_help) {
  auto need_value = [&](int i, std::string_view flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "operb_cli: %.*s requires a value\n",
                   static_cast<int>(flag.size()), flag.data());
      return nullptr;
    }
    return argv[i + 1];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      *wants_help = true;
      return true;
    } else if (arg == "--input" || arg == "--plt" || arg == "--generate" ||
               arg == "--algorithm" || arg == "--zeta" ||
               arg == "--fidelity" || arg == "--output" ||
               arg == "--save-input" || arg == "--threads" ||
               arg == "--shards" || arg == "--objects") {
      const char* value = need_value(i, arg);
      if (value == nullptr) return false;
      ++i;
      if (arg == "--input") {
        options->csv_path = value;
      } else if (arg == "--plt") {
        options->plt_path = value;
      } else if (arg == "--generate") {
        options->generate_spec = value;
      } else if (arg == "--algorithm") {
        const auto algo = ParseAlgorithm(value);
        if (!algo) {
          std::fprintf(stderr, "operb_cli: unknown algorithm '%s'\n", value);
          return false;
        }
        options->algorithm = *algo;
      } else if (arg == "--zeta") {
        char* end = nullptr;
        options->zeta = std::strtod(value, &end);
        if (end == nullptr || *end != '\0' || !(options->zeta > 0.0) ||
            !std::isfinite(options->zeta)) {
          std::fprintf(stderr, "operb_cli: --zeta must be a positive number, "
                               "got '%s'\n",
                       value);
          return false;
        }
      } else if (arg == "--fidelity") {
        const std::string_view mode = value;
        if (mode == "guarded") {
          options->fidelity = baselines::OperbFidelity::kGuarded;
        } else if (mode == "paper") {
          options->fidelity = baselines::OperbFidelity::kPaperFaithful;
        } else {
          std::fprintf(stderr,
                       "operb_cli: --fidelity must be 'guarded' or 'paper', "
                       "got '%s'\n",
                       value);
          return false;
        }
      } else if (arg == "--output") {
        options->output_path = value;
      } else if (arg == "--save-input") {
        options->save_input_path = value;
      } else if (arg == "--threads" || arg == "--shards" ||
                 arg == "--objects") {
        // Tight per-flag ceilings so a typo fails as a usage error, not
        // as a massive allocation or thread spawn (every shard owns a
        // pre-sized ring; every thread is a real std::thread).
        const bool zero_ok = arg == "--shards";  // 0 = auto
        const std::uint64_t max = arg == "--threads"   ? 1024
                                  : arg == "--shards"  ? 65536
                                                       : 10'000'000;
        std::uint64_t n = 0;
        if (!ParseU64(value, &n) || (!zero_ok && n == 0) || n > max) {
          std::fprintf(stderr,
                       "operb_cli: %.*s must be an integer in %c..%llu, got "
                       "'%s'\n",
                       static_cast<int>(arg.size()), arg.data(),
                       zero_ok ? '0' : '1',
                       static_cast<unsigned long long>(max), value);
          return false;
        }
        if (arg == "--threads") {
          options->threads = n;
        } else if (arg == "--shards") {
          options->shards = n;
        } else {
          options->objects = n;
        }
      } else {
        // Unreachable while the membership list above and this chain
        // agree; catches a flag added to one but not the other.
        std::fprintf(stderr, "operb_cli: internal error: unhandled flag "
                             "'%s'\n",
                     std::string(arg).c_str());
        return false;
      }
    } else if (arg == "--no-verify") {
      options->verify = false;
    } else if (arg == "--group-by-id") {
      options->group_by_id = true;
    } else {
      std::fprintf(stderr, "operb_cli: unknown argument '%s'\n",
                   std::string(arg).c_str());
      return false;
    }
  }

  const int inputs = (options->csv_path.empty() ? 0 : 1) +
                     (options->plt_path.empty() ? 0 : 1) +
                     (options->generate_spec.empty() ? 0 : 1);
  if (inputs > 1) {
    std::fprintf(stderr,
                 "operb_cli: --input, --plt and --generate are mutually "
                 "exclusive\n");
    return false;
  }
  if (inputs == 0) options->generate_spec = "SerCar:2000:1";
  if (options->group_by_id && !options->plt_path.empty()) {
    std::fprintf(stderr,
                 "operb_cli: --plt is single-trajectory; --group-by-id "
                 "needs --input (id,t,x,y CSV) or --generate\n");
    return false;
  }
  return true;
}

/// Loads or synthesizes the interleaved multi-object update stream.
std::optional<std::vector<traj::ObjectUpdate>> LoadUpdates(
    const CliOptions& options, std::string* source_label, int* error_exit) {
  *error_exit = kExitUsage;
  if (!options.csv_path.empty()) {
    *source_label = "multi-object csv " + options.csv_path;
    Result<std::vector<traj::ObjectUpdate>> r =
        traj::ReadMultiObjectCsv(options.csv_path);
    if (!r.ok()) {
      std::fprintf(stderr, "operb_cli: %s\n", r.status().ToString().c_str());
      *error_exit = kExitIo;
      return std::nullopt;
    }
    return std::move(r).value();
  }
  const std::optional<GenerateSpec> spec =
      ParseGenerateSpec(options.generate_spec);
  if (!spec) return std::nullopt;
  // Same typo guard as the per-trajectory ceiling in ParseGenerateSpec,
  // applied to the objects x points total.
  constexpr std::uint64_t kMaxTotalPoints = 100'000'000;
  if (options.objects > kMaxTotalPoints / spec->points) {
    std::fprintf(stderr,
                 "operb_cli: --objects %llu x %llu points exceeds the "
                 "%llu-point generation ceiling\n",
                 static_cast<unsigned long long>(options.objects),
                 static_cast<unsigned long long>(spec->points),
                 static_cast<unsigned long long>(kMaxTotalPoints));
    return std::nullopt;
  }
  *source_label = "generated " + options.generate_spec + " x" +
                  std::to_string(options.objects) + " objects";
  std::vector<traj::ObjectTrajectory> objects;
  objects.reserve(options.objects);
  for (std::uint64_t k = 0; k < options.objects; ++k) {
    datagen::Rng rng(spec->seed + k);
    objects.push_back(
        {k, datagen::GenerateTrajectory(datagen::DatasetProfile::For(spec->kind),
                                        spec->points, &rng)});
  }
  return traj::InterleaveRoundRobin(objects);
}

/// The --group-by-id flow: interleaved updates -> StreamEngine ->
/// id-tagged segments, with per-object bound verification.
int RunGroupById(const CliOptions& options) {
  std::string source_label;
  int error_exit = kExitUsage;
  const std::optional<std::vector<traj::ObjectUpdate>> updates =
      LoadUpdates(options, &source_label, &error_exit);
  if (!updates) return error_exit;
  if (updates->empty()) {
    std::fprintf(stderr, "operb_cli: input stream has no updates\n");
    return kExitUsage;
  }

  // Group first: validates per-object monotone timestamps before the
  // engine trusts them, and provides the originals for verification.
  Result<std::vector<traj::ObjectTrajectory>> grouped =
      traj::GroupUpdatesByObject(*updates);
  if (!grouped.ok()) {
    std::fprintf(stderr, "operb_cli: %s\n",
                 grouped.status().ToString().c_str());
    return kExitUsage;
  }

  if (!options.save_input_path.empty()) {
    if (const Status s =
            traj::WriteMultiObjectCsv(*updates, options.save_input_path);
        !s.ok()) {
      std::fprintf(stderr, "operb_cli: %s\n", s.ToString().c_str());
      return kExitIo;
    }
  }

  engine::StreamEngineOptions eopts;
  eopts.algorithm = options.algorithm;
  eopts.zeta = options.zeta;
  eopts.fidelity = options.fidelity;
  eopts.num_threads = static_cast<std::size_t>(options.threads);
  eopts.num_shards = static_cast<std::size_t>(
      options.shards != 0 ? options.shards : 4 * options.threads);

  std::mutex mu;
  std::vector<traj::TaggedSegment> collected;
  Stopwatch watch;
  engine::StreamEngine eng(
      eopts, [&mu, &collected](traj::ObjectId id,
                               const traj::RepresentedSegment& seg) {
        const std::lock_guard<std::mutex> lock(mu);
        collected.push_back({id, seg});
      });
  eng.Push(std::span<const traj::ObjectUpdate>(*updates));
  eng.Close();
  const double elapsed_ms = watch.ElapsedMillis();
  const engine::StreamEngineStats& stats = eng.stats();

  // Per-object order is already emission order; a stable sort by id
  // groups objects into contiguous runs without disturbing it.
  std::stable_sort(collected.begin(), collected.end(),
                   [](const traj::TaggedSegment& a,
                      const traj::TaggedSegment& b) {
                     return a.object_id < b.object_id;
                   });

  const std::size_t total_points = updates->size();
  const double ns_per_point = elapsed_ms * 1e6 / total_points;
  std::printf("input:     %zu updates from %zu objects  (%s)\n", total_points,
              grouped.value().size(), source_label.c_str());
  std::printf("engine:    %s, zeta = %g m, %zu shards, %zu threads\n",
              std::string(baselines::AlgorithmName(options.algorithm)).c_str(),
              options.zeta, eopts.num_shards, eopts.num_threads);
  std::printf("output:    %llu segments, peak %llu live objects, "
              "%llu pooled states, %llu stalls\n",
              static_cast<unsigned long long>(stats.segments),
              static_cast<unsigned long long>(stats.peak_live_objects),
              static_cast<unsigned long long>(stats.states_allocated),
              static_cast<unsigned long long>(stats.ring_full_stalls));
  std::printf("time:      %.3f ms  (%.0f ns/point, %.2f M points/s)\n",
              elapsed_ms, ns_per_point,
              ns_per_point > 0.0 ? 1e3 / ns_per_point : 0.0);

  if (!options.output_path.empty()) {
    if (const Status s = traj::WriteTaggedSegmentsCsv(
            std::span<const traj::TaggedSegment>(collected),
            options.output_path);
        !s.ok()) {
      std::fprintf(stderr, "operb_cli: %s\n", s.ToString().c_str());
      return kExitIo;
    }
    std::printf("wrote:     %s\n", options.output_path.c_str());
  }

  if (options.verify) {
    // `collected` is sorted by id, so each object's segments are one
    // contiguous run; index the run boundaries once.
    std::unordered_map<traj::ObjectId, std::pair<std::size_t, std::size_t>>
        runs;
    for (std::size_t j = 0; j < collected.size();) {
      std::size_t k = j;
      while (k < collected.size() &&
             collected[k].object_id == collected[j].object_id) {
        ++k;
      }
      runs.emplace(collected[j].object_id, std::make_pair(j, k));
      j = k;
    }
    std::size_t verified = 0;
    for (const traj::ObjectTrajectory& obj : grouped.value()) {
      if (obj.trajectory.size() < 2) continue;  // empty output by contract
      traj::PiecewiseRepresentation rep;
      if (const auto it = runs.find(obj.object_id); it != runs.end()) {
        for (std::size_t j = it->second.first; j < it->second.second; ++j) {
          rep.Append(collected[j].segment);
        }
      }
      const eval::VerificationResult verdict =
          eval::VerifyErrorBound(obj.trajectory, rep, options.zeta,
                                 options.verify_slack);
      if (!verdict.bounded) {
        std::printf("bound:     VIOLATED on object %llu — %s\n",
                    static_cast<unsigned long long>(obj.object_id),
                    verdict.ToString().c_str());
        return kExitBoundViolation;
      }
      ++verified;
    }
    std::printf("bound:     verified per object (%zu objects <= zeta %g m)\n",
                verified, options.zeta);
  }
  return kExitOk;
}

/// Loads the input trajectory, or returns nullopt after printing the error.
std::optional<traj::Trajectory> LoadInput(const CliOptions& options,
                                          std::string* source_label) {
  if (!options.csv_path.empty()) {
    *source_label = "csv " + options.csv_path;
    Result<traj::Trajectory> r = traj::ReadCsv(options.csv_path);
    if (!r.ok()) {
      std::fprintf(stderr, "operb_cli: %s\n", r.status().ToString().c_str());
      return std::nullopt;
    }
    return std::move(r).value();
  }
  if (!options.plt_path.empty()) {
    *source_label = "plt " + options.plt_path;
    Result<traj::Trajectory> r = traj::ReadGeoLifePlt(options.plt_path);
    if (!r.ok()) {
      std::fprintf(stderr, "operb_cli: %s\n", r.status().ToString().c_str());
      return std::nullopt;
    }
    return std::move(r).value();
  }
  *source_label = "generated " + options.generate_spec;
  return GenerateFromSpec(options.generate_spec);
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  bool wants_help = false;
  if (!ParseArgs(argc, argv, &options, &wants_help)) {
    std::fprintf(stderr, "Run 'operb_cli --help' for usage.\n");
    return kExitUsage;
  }
  if (wants_help) {
    PrintUsage(stdout);
    return kExitOk;
  }
  if (options.group_by_id) return RunGroupById(options);

  std::string source_label;
  const std::optional<traj::Trajectory> input =
      LoadInput(options, &source_label);
  if (!input) {
    return options.generate_spec.empty() ? kExitIo : kExitUsage;
  }
  if (input->size() < 2) {
    std::fprintf(stderr,
                 "operb_cli: input has %zu point(s); need at least 2\n",
                 input->size());
    return kExitUsage;
  }
  if (const Status s = input->Validate(); !s.ok()) {
    std::fprintf(stderr,
                 "operb_cli: input is not a valid trajectory: %s\n"
                 "(timestamps must be strictly increasing; clean raw sensor "
                 "streams with traj::StreamCleaner first)\n",
                 s.ToString().c_str());
    return kExitUsage;
  }

  if (!options.save_input_path.empty()) {
    if (const Status s = traj::WriteCsv(*input, options.save_input_path);
        !s.ok()) {
      std::fprintf(stderr, "operb_cli: %s\n", s.ToString().c_str());
      return kExitIo;
    }
  }

  const std::unique_ptr<baselines::Simplifier> simplifier =
      baselines::MakeSimplifier(options.algorithm, options.zeta,
                                options.fidelity);

  // Sink path: for the one-pass algorithms segments land here the moment
  // they are determined (what a streaming receiver would pay); the batch
  // baselines fall back to Simplify() internally and forward, which adds
  // one segment copy — negligible next to their own runtime.
  traj::PiecewiseRepresentation representation;
  Stopwatch watch;
  simplifier->SimplifyToSink(
      *input,
      [&representation](const traj::RepresentedSegment& s) {
        representation.Append(s);
      });
  const double elapsed_ms = watch.ElapsedMillis();

  const double ratio = eval::CompressionRatio(*input, representation);
  const eval::ErrorStats error = eval::MeasureError(*input, representation);
  const double ns_per_point = elapsed_ms * 1e6 / input->size();

  std::printf("input:     %zu points, %.2f km, %.0f s  (%s)\n", input->size(),
              input->PathLength() / 1000.0, input->Duration(),
              source_label.c_str());
  std::printf("algorithm: %s, zeta = %g m%s\n",
              std::string(simplifier->name()).c_str(), options.zeta,
              options.fidelity == baselines::OperbFidelity::kPaperFaithful
                  ? " (paper-faithful heuristics, no strict guard)"
                  : "");
  std::printf("output:    %zu segments, %zu stored points\n",
              representation.size(), representation.StoredPointCount());
  std::printf("ratio:     %.2f%% of input kept (%.1fx compression)\n",
              100.0 * ratio, ratio > 0.0 ? 1.0 / ratio : 0.0);
  std::printf("time:      %.3f ms  (%.0f ns/point, %.2f M points/s)\n",
              elapsed_ms, ns_per_point,
              ns_per_point > 0.0 ? 1e3 / ns_per_point : 0.0);
  std::printf("error:     avg %.2f m, max %.2f m\n", error.average, error.max);

  if (!options.output_path.empty()) {
    if (const Status s =
            traj::WriteRepresentationCsv(representation, options.output_path);
        !s.ok()) {
      std::fprintf(stderr, "operb_cli: %s\n", s.ToString().c_str());
      return kExitIo;
    }
    std::printf("wrote:     %s\n", options.output_path.c_str());
  }

  if (options.verify) {
    const eval::VerificationResult verdict = eval::VerifyErrorBound(
        *input, representation, options.zeta, options.verify_slack);
    if (!verdict.bounded) {
      std::printf("bound:     VIOLATED — %s\n", verdict.ToString().c_str());
      return kExitBoundViolation;
    }
    std::printf("bound:     verified (worst %.2f m <= zeta %g m)\n",
                verdict.worst_distance, options.zeta);
  }
  return kExitOk;
}
