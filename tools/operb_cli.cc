// operb_cli: end-to-end command-line driver for the library, built on the
// public api:: facade (SimplifierSpec + AlgorithmRegistry + Pipeline).
//
// Reads a trajectory (plain x,y,t CSV, a GeoLife .plt file, or a synthetic
// dataset profile), simplifies it with any registered algorithm at a
// chosen error bound, independently verifies the bound, and prints
// compression-ratio / timing / error statistics. The simplified
// representation can be written back out as CSV for plotting.
//
// The simplifier is configured by a one-line spec string
// (ALGORITHM[:key=value,...], see README.md "Public API"); --algorithm,
// --zeta and --fidelity remain as sugar that edits the spec in place.
// All spec/flag validation surfaces as a one-line Status message and the
// usage exit code — bad input never aborts.
//
// With --group-by-id the input is a multi-object stream (`id,t,x,y` CSV
// rows, freely interleaved): every object is simplified independently by
// the sharded StreamEngine across --threads worker threads, output
// segments are tagged with their object id, and the bound is verified
// per object.
//
// With --store-out the simplified segments additionally stream into a
// sharded directory-based trajectory store (src/store: manifest +
// per-shard segment files, --store-shards N), which --query then serves
// without re-simplifying: per-object time-range reconstruction
// (--object [--from --to]), position-at-time (--object --at), and
// spatio-temporal window queries (--window) answered through a packed
// R-tree over per-block footer metadata (--flat-scan switches to the
// linear footer scan, the index's verification oracle). --compact PATH
// is the admin verb that merges each shard's segment files into dense
// id-ordered blocks (one manifest generation per shard).
//
// Examples:
//   operb_cli --input drive.csv --spec OPERB-A:zeta=30 --output out.csv
//   operb_cli --plt geolife/000/Trajectory/20081023025304.plt --zeta 10
//   operb_cli --generate SerCar:5000 --spec operb:zeta=40,fidelity=paper
//   operb_cli --group-by-id --input fleet.csv --threads 4 --output tagged.csv
//   operb_cli --group-by-id --generate Taxi:500 --objects 1000 --threads 8
//   operb_cli --group-by-id --generate Taxi:500 --store-out fleet.store
//             --store-shards 8   (one command line; wrapped here)
//   operb_cli --query fleet.store --object 3 --from 100 --to 900
//   operb_cli --query fleet.store --window 1000,2000,4000,5000
//   operb_cli --compact fleet.store
//
// Exit codes: 0 success (bound verified or --no-verify), 1 bound violation
// (or: --at time not covered by the store), 2 usage error, 3 I/O error.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "api/pipeline.h"
#include "api/registry.h"
#include "api/spec.h"
#include "api/store_query.h"
#include "datagen/profiles.h"
#include "datagen/rng.h"
#include "engine/stream_engine.h"
#include "eval/metrics.h"
#include "obs/snapshot.h"
#include "server/client.h"
#include "store/compactor.h"
#include "store/writer.h"
#include "traj/io.h"
#include "traj/multi_object.h"
#include "traj/trajectory.h"

namespace {

using namespace operb;  // NOLINT: single-file tool

constexpr int kExitOk = 0;
constexpr int kExitBoundViolation = 1;
constexpr int kExitUsage = 2;
constexpr int kExitIo = 3;

struct CliOptions {
  // Input: exactly one of csv_path / plt_path / generate.
  std::string csv_path;
  std::string plt_path;
  std::string generate_spec;  ///< KIND[:POINTS[:SEED]]

  api::SimplifierSpec spec;  ///< edited by --spec/--algorithm/--zeta/--fidelity

  // Multi-object engine mode (--group-by-id).
  bool group_by_id = false;
  std::uint64_t threads = 1;
  std::uint64_t shards = 0;   ///< 0 = auto (4 * threads)
  std::uint64_t objects = 8;  ///< synthetic object count for --generate

  std::string output_path;      ///< representation CSV (optional)
  std::string save_input_path;  ///< write the input trajectory as CSV
  std::string store_out_path;   ///< write a queryable segment store
  std::uint64_t store_shards = 1;  ///< shard count for --store-out

  // Engine checkpoint/restore (--group-by-id only).
  std::string checkpoint_out_path;   ///< snapshot engine state here
  std::uint64_t checkpoint_every = 0;  ///< 0 = once, after the last update
  std::string resume_path;           ///< restore engine state from here

  // Metrics export (--metrics-out; periodic cadence needs --group-by-id).
  std::string metrics_out_path;     ///< write a registry snapshot here
  std::uint64_t metrics_every = 0;  ///< 0 = once, after the run
  bool clean = false;           ///< repair raw streams before simplifying
  bool verify = true;
  double verify_slack = 1e-9;

  // Query mode (--query PATH): serves an existing store instead of
  // simplifying. Parsed into an api::StoreQuery, validated there.
  api::StoreQuery query;
  bool query_mode = false;

  // Admin mode (--compact PATH): compacts an existing store in place.
  bool compact_mode = false;
  std::string compact_path;

  // Server client mode (--connect HOST:PORT): speaks the daemon
  // protocol instead of touching local stores. Reuses the input flags
  // for ingest and the query flags (without --query) for queries.
  bool connect_mode = false;
  std::string connect_spec;  ///< HOST:PORT
  bool finish_objects = false;      ///< FINISH every ingested object
  bool server_stats = false;        ///< print the daemon's STATS reply
  bool server_shutdown = false;     ///< ask the daemon to stop
  bool server_seal = false;         ///< force a seal now
  std::string server_checkpoint_path;  ///< server-side engine checkpoint
  std::string server_metrics_path;     ///< server-side metrics snapshot
};

void PrintUsage(std::FILE* out) {
  std::string algorithms;
  for (const std::string& name : api::AlgorithmRegistry::Global().Names()) {
    if (!algorithms.empty()) algorithms += " | ";
    algorithms += name;
  }
  std::fprintf(out,
               "operb_cli — one-pass error-bounded trajectory simplification "
               "(OPERB, PVLDB 2017)\n"
               "\n"
               "Input (choose one; default --generate SerCar:2000:1):\n"
               "  --input PATH          plain CSV trajectory: x,y,t rows in "
               "projected meters\n"
               "  --plt PATH            GeoLife .plt trajectory "
               "(lat/lon, projected to local meters)\n"
               "  --generate SPEC       synthetic profile KIND[:POINTS[:SEED]]"
               ", KIND one of\n"
               "                        Taxi | Truck | SerCar | GeoLife\n"
               "\n"
               "Simplification (see README.md \"Public API\" for the spec "
               "grammar):\n"
               "  --spec SPEC           ALGORITHM[:key=value,...], e.g. "
               "'operb-a:zeta=30'\n"
               "                        or 'OPERB:zeta=5,fidelity=paper' "
               "(default OPERB:zeta=40)\n"
               "  --algorithm NAME      shorthand: sets the spec's algorithm."
               " Registered:\n"
               "                        %s\n"
               "  --zeta METERS         shorthand: sets the spec's error "
               "bound (> 0)\n"
               "  --fidelity MODE       shorthand: guarded | paper — how the "
               "OPERB family\n"
               "                        treats the heuristic optimizations' "
               "bound (see DESIGN.md)\n"
               "\n"
               "Multi-object engine mode:\n"
               "  --group-by-id         treat the input as an interleaved "
               "id,t,x,y stream and\n"
               "                        simplify every object concurrently "
               "(StreamEngine)\n"
               "  --threads N           engine worker threads (default 1)\n"
               "  --shards N            engine state-table shards (default "
               "4 * threads)\n"
               "  --objects K           with --generate: synthesize K "
               "objects, round-robin\n"
               "                        interleaved (default 8)\n"
               "\n"
               "Checkpoint/restore (engine mode, requires --group-by-id):\n"
               "  --checkpoint-out PATH snapshot the engine's complete "
               "streaming state to\n"
               "                        PATH (atomic temp-file + rename) "
               "after the last\n"
               "                        update — or repeatedly, with "
               "--checkpoint-every\n"
               "  --checkpoint-every N  rewrite the checkpoint after every N "
               "ingested\n"
               "                        updates (requires --checkpoint-out)\n"
               "  --resume PATH         restore the engine from a checkpoint "
               "and feed it the\n"
               "                        stream's *remainder*; the emitted "
               "segments are\n"
               "                        bit-identical to the uninterrupted "
               "run's tail. The\n"
               "                        spec and shard count must match the "
               "checkpoint.\n"
               "                        Implies --no-verify (verification "
               "needs the full\n"
               "                        stream); excludes --clean and "
               "--store-out\n"
               "\n"
               "Store (write side):\n"
               "  --store-out PATH      additionally persist the simplified "
               "segments into a\n"
               "                        sharded queryable store directory "
               "(both modes;\n"
               "                        single-trajectory input is stored as "
               "object 0)\n"
               "  --store-shards N      partition the store into N shards by "
               "object-id hash\n"
               "                        (1..65536, default 1; requires "
               "--store-out)\n"
               "\n"
               "Store (query mode; excludes every simplification flag):\n"
               "  --query PATH          serve an existing store instead of "
               "simplifying\n"
               "  --object ID           reconstruct one object's segments\n"
               "  --from T / --to T     restrict to a time range (seconds)\n"
               "  --at T                with --object: interpolated position "
               "at time T\n"
               "  --window X0,Y0,X1,Y1  spatio-temporal window query "
               "(meters; the window\n"
               "                        is inflated by the store's zeta so "
               "no original\n"
               "                        sample inside it can be missed)\n"
               "  --flat-scan           answer --window with the linear "
               "footer scan instead\n"
               "                        of the R-tree index (the verify "
               "oracle; results are\n"
               "                        identical, only pruning work "
               "differs)\n"
               "\n"
               "Store (admin mode; excludes every other flag):\n"
               "  --compact PATH        merge each shard's segment files "
               "into dense\n"
               "                        id-ordered blocks, one manifest "
               "generation per\n"
               "                        shard; queries return byte-identical "
               "results\n"
               "\n"
               "Output:\n"
               "  --output PATH         write the piecewise representation as "
               "CSV (with\n"
               "                        --group-by-id or --query: id-tagged "
               "segment rows)\n"
               "  --save-input PATH     write the (parsed or generated) input "
               "trajectory as CSV\n"
               "  --clean               repair raw streams before simplifying "
               "(drop duplicate and\n"
               "                        out-of-order samples; per object with "
               "--group-by-id)\n"
               "  --no-verify           skip the independent error-bound "
               "check\n"
               "\n"
               "Observability (see DESIGN.md \"Metrics and tracing\"):\n"
               "  --metrics-out PATH    export a metrics snapshot (every "
               "engine/store/pipeline\n"
               "                        registry instrument, versioned JSON, "
               "atomic temp-file +\n"
               "                        rename) to PATH after the run; also "
               "works with --query\n"
               "  --metrics-every N     additionally rewrite the snapshot "
               "after every N ingested\n"
               "                        updates (requires --metrics-out and "
               "--group-by-id; a\n"
               "                        failed periodic write is logged and "
               "counted, never fatal)\n"
               "\n"
               "Server client mode (speaks to a running operb_server):\n"
               "  --connect HOST:PORT   connect to a daemon instead of "
               "touching local stores.\n"
               "                        --input/--generate/--objects then "
               "ingest over the\n"
               "                        connection; --object/--from/--to/"
               "--at/--window/\n"
               "                        --flat-scan/--output query it (the "
               "answer merges the\n"
               "                        sealed store with in-flight "
               "trajectory tails)\n"
               "  --finish-objects      declare end-of-stream for every "
               "ingested object\n"
               "  --server-seal         force the daemon to seal the "
               "overlay to its store\n"
               "  --server-checkpoint PATH  daemon writes an engine "
               "checkpoint to PATH\n"
               "  --server-metrics PATH daemon writes a metrics snapshot "
               "to PATH\n"
               "  --stats               print the daemon's counters\n"
               "  --shutdown            ask the daemon to stop gracefully\n"
               "  --help                this text\n",
               algorithms.c_str());
}

std::optional<datagen::DatasetKind> ParseDatasetKind(std::string_view name) {
  for (datagen::DatasetKind kind : datagen::AllDatasetKinds()) {
    if (name == datagen::DatasetName(kind)) return kind;
  }
  return std::nullopt;
}

/// Strict decimal parse: digits only (no sign, no ERANGE saturation, no
/// trailing junk). strtoull alone would silently wrap "-5" to 2^64 - 5.
bool ParseU64(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  *out = std::strtoull(s.c_str(), &end, 10);
  return errno == 0 && end != nullptr && *end == '\0';
}

/// Parsed form of a --generate KIND[:POINTS[:SEED]] spec.
struct GenerateSpec {
  datagen::DatasetKind kind = datagen::DatasetKind::kSerCar;
  std::uint64_t points = 2000;
  std::uint64_t seed = 1;
};

/// Parses KIND[:POINTS[:SEED]]; prints to stderr and returns nullopt on
/// malformed specs.
std::optional<GenerateSpec> ParseGenerateSpec(const std::string& spec) {
  // Generous ceiling so a typo'd point count fails as a usage error
  // instead of a multi-gigabyte allocation.
  constexpr std::uint64_t kMaxGeneratedPoints = 100'000'000;

  GenerateSpec out;
  std::string kind_name = spec;

  const std::size_t colon1 = spec.find(':');
  if (colon1 != std::string::npos) {
    kind_name = spec.substr(0, colon1);
    const std::string rest = spec.substr(colon1 + 1);
    const std::size_t colon2 = rest.find(':');
    const std::string points_str =
        colon2 == std::string::npos ? rest : rest.substr(0, colon2);
    if (!ParseU64(points_str, &out.points) || out.points < 2 ||
        out.points > kMaxGeneratedPoints) {
      std::fprintf(stderr,
                   "operb_cli: bad point count in --generate '%s' (need "
                   "2..%llu)\n",
                   spec.c_str(),
                   static_cast<unsigned long long>(kMaxGeneratedPoints));
      return std::nullopt;
    }
    if (colon2 != std::string::npos) {
      if (!ParseU64(rest.substr(colon2 + 1), &out.seed)) {
        std::fprintf(stderr, "operb_cli: bad seed in --generate '%s'\n",
                     spec.c_str());
        return std::nullopt;
      }
    }
  }

  const auto kind = ParseDatasetKind(kind_name);
  if (!kind) {
    std::fprintf(stderr,
                 "operb_cli: unknown dataset kind '%s' (expected Taxi, "
                 "Truck, SerCar or GeoLife)\n",
                 kind_name.c_str());
    return std::nullopt;
  }
  out.kind = *kind;
  return out;
}

std::optional<traj::Trajectory> GenerateFromSpec(const std::string& spec) {
  const std::optional<GenerateSpec> parsed = ParseGenerateSpec(spec);
  if (!parsed) return std::nullopt;
  datagen::Rng rng(parsed->seed);
  return datagen::GenerateTrajectory(datagen::DatasetProfile::For(parsed->kind),
                                     parsed->points, &rng);
}

/// Strict finite-double parse (no trailing junk, no inf/nan).
bool ParseFiniteDouble(const char* value, double* out) {
  char* end = nullptr;
  *out = std::strtod(value, &end);
  return end != nullptr && end != value && *end == '\0' &&
         std::isfinite(*out);
}

/// Parses argv into `options`; returns false (after printing a message) on
/// malformed input. `--help` sets `wants_help` instead.
bool ParseArgs(int argc, char** argv, CliOptions* options, bool* wants_help) {
  auto need_value = [&](int i, std::string_view flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "operb_cli: %.*s requires a value\n",
                   static_cast<int>(flag.size()), flag.data());
      return nullptr;
    }
    return argv[i + 1];
  };

  bool spec_flag_seen = false;    // --spec/--algorithm/--zeta/--fidelity
  bool query_flag_seen = false;   // --object/--from/.../--window/--flat-scan
  bool engine_flag_seen = false;  // --threads/--shards/--objects
  bool no_verify_seen = false;
  bool store_shards_seen = false;
  bool checkpoint_flag_seen = false;  // --checkpoint-out/-every/--resume
  bool checkpoint_every_seen = false;
  bool metrics_every_seen = false;
  bool thread_flags_seen = false;  // --threads/--shards (not --objects)
  bool server_flag_seen = false;   // the --connect-only companions
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      *wants_help = true;
      return true;
    } else if (arg == "--input" || arg == "--plt" || arg == "--generate" ||
               arg == "--spec" || arg == "--algorithm" || arg == "--zeta" ||
               arg == "--fidelity" || arg == "--output" ||
               arg == "--save-input" || arg == "--threads" ||
               arg == "--shards" || arg == "--objects" ||
               arg == "--store-out" || arg == "--store-shards" ||
               arg == "--checkpoint-out" || arg == "--checkpoint-every" ||
               arg == "--resume" ||
               arg == "--metrics-out" || arg == "--metrics-every" ||
               arg == "--query" || arg == "--compact" ||
               arg == "--connect" || arg == "--server-checkpoint" ||
               arg == "--server-metrics" ||
               arg == "--object" || arg == "--from" || arg == "--to" ||
               arg == "--at" || arg == "--window") {
      const char* value = need_value(i, arg);
      if (value == nullptr) return false;
      ++i;
      if (arg == "--input") {
        options->csv_path = value;
      } else if (arg == "--plt") {
        options->plt_path = value;
      } else if (arg == "--generate") {
        options->generate_spec = value;
      } else if (arg == "--spec") {
        // Whole-spec replacement; later --algorithm/--zeta/--fidelity
        // flags still edit the result (flags apply in order).
        spec_flag_seen = true;
        Result<api::SimplifierSpec> parsed = api::SimplifierSpec::Parse(value);
        if (!parsed.ok()) {
          std::fprintf(stderr, "operb_cli: %s\n",
                       parsed.status().ToString().c_str());
          return false;
        }
        options->spec = std::move(parsed).value();
      } else if (arg == "--algorithm") {
        spec_flag_seen = true;
        options->spec.algorithm = value;
      } else if (arg == "--zeta") {
        spec_flag_seen = true;
        char* end = nullptr;
        options->spec.zeta = std::strtod(value, &end);
        if (end == nullptr || *end != '\0' ||
            !std::isfinite(options->spec.zeta)) {
          std::fprintf(stderr,
                       "operb_cli: --zeta must be a number, got '%s'\n",
                       value);
          return false;
        }
      } else if (arg == "--fidelity") {
        spec_flag_seen = true;
        const std::string_view mode = value;
        if (mode == "guarded") {
          options->spec.fidelity = baselines::OperbFidelity::kGuarded;
        } else if (mode == "paper") {
          options->spec.fidelity = baselines::OperbFidelity::kPaperFaithful;
        } else {
          std::fprintf(stderr,
                       "operb_cli: --fidelity must be 'guarded' or 'paper', "
                       "got '%s'\n",
                       value);
          return false;
        }
      } else if (arg == "--output") {
        options->output_path = value;
      } else if (arg == "--save-input") {
        options->save_input_path = value;
      } else if (arg == "--store-out") {
        options->store_out_path = value;
      } else if (arg == "--store-shards") {
        store_shards_seen = true;
        // Same ceiling as the writer's own StoreWriterOptions::Validate();
        // rejecting here keeps the error a one-line usage message.
        constexpr std::uint64_t kMaxStoreShards = 65536;
        if (!ParseU64(value, &options->store_shards) ||
            options->store_shards == 0 ||
            options->store_shards > kMaxStoreShards) {
          std::fprintf(stderr,
                       "operb_cli: --store-shards must be an integer in "
                       "1..%llu, got '%s'\n",
                       static_cast<unsigned long long>(kMaxStoreShards),
                       value);
          return false;
        }
      } else if (arg == "--checkpoint-out") {
        checkpoint_flag_seen = true;
        options->checkpoint_out_path = value;
      } else if (arg == "--checkpoint-every") {
        checkpoint_flag_seen = true;
        checkpoint_every_seen = true;
        // Same typo ceiling as the generation flags: a wrapped or absurd
        // cadence fails as a usage error.
        constexpr std::uint64_t kMaxCheckpointEvery = 1'000'000'000;
        if (!ParseU64(value, &options->checkpoint_every) ||
            options->checkpoint_every == 0 ||
            options->checkpoint_every > kMaxCheckpointEvery) {
          std::fprintf(stderr,
                       "operb_cli: --checkpoint-every must be an integer in "
                       "1..%llu, got '%s'\n",
                       static_cast<unsigned long long>(kMaxCheckpointEvery),
                       value);
          return false;
        }
      } else if (arg == "--resume") {
        checkpoint_flag_seen = true;
        options->resume_path = value;
      } else if (arg == "--metrics-out") {
        options->metrics_out_path = value;
      } else if (arg == "--metrics-every") {
        metrics_every_seen = true;
        // Same typo ceiling as --checkpoint-every.
        constexpr std::uint64_t kMaxMetricsEvery = 1'000'000'000;
        if (!ParseU64(value, &options->metrics_every) ||
            options->metrics_every == 0 ||
            options->metrics_every > kMaxMetricsEvery) {
          std::fprintf(stderr,
                       "operb_cli: --metrics-every must be an integer in "
                       "1..%llu, got '%s'\n",
                       static_cast<unsigned long long>(kMaxMetricsEvery),
                       value);
          return false;
        }
      } else if (arg == "--query") {
        options->query_mode = true;
        options->query.store_path = value;
      } else if (arg == "--compact") {
        options->compact_mode = true;
        options->compact_path = value;
      } else if (arg == "--connect") {
        options->connect_mode = true;
        options->connect_spec = value;
      } else if (arg == "--server-checkpoint") {
        server_flag_seen = true;
        options->server_checkpoint_path = value;
      } else if (arg == "--server-metrics") {
        server_flag_seen = true;
        options->server_metrics_path = value;
      } else if (arg == "--object") {
        query_flag_seen = true;
        std::uint64_t id = 0;
        if (!ParseU64(value, &id)) {
          std::fprintf(stderr,
                       "operb_cli: --object must be an unsigned id, got "
                       "'%s'\n",
                       value);
          return false;
        }
        options->query.has_object = true;
        options->query.object_id = id;
      } else if (arg == "--from" || arg == "--to" || arg == "--at") {
        query_flag_seen = true;
        double v = 0.0;
        if (!ParseFiniteDouble(value, &v)) {
          std::fprintf(stderr,
                       "operb_cli: %.*s must be a finite timestamp, got "
                       "'%s'\n",
                       static_cast<int>(arg.size()), arg.data(), value);
          return false;
        }
        if (arg == "--from") {
          options->query.t_min = v;
        } else if (arg == "--to") {
          options->query.t_max = v;
        } else {
          options->query.has_at = true;
          options->query.at_time = v;
        }
      } else if (arg == "--window") {
        query_flag_seen = true;
        double c[4];
        const char* p = value;
        bool ok = true;
        for (int k = 0; k < 4 && ok; ++k) {
          char* end = nullptr;
          c[k] = std::strtod(p, &end);
          ok = end != p && std::isfinite(c[k]) &&
               (k == 3 ? *end == '\0' : *end == ',');
          p = end + 1;
        }
        if (!ok) {
          std::fprintf(stderr,
                       "operb_cli: --window must be X0,Y0,X1,Y1 (four "
                       "comma-separated meters), got '%s'\n",
                       value);
          return false;
        }
        // Corner order is free; the box normalizes it.
        options->query.has_window = true;
        options->query.window = {};
        options->query.window.Extend(geo::Vec2{c[0], c[1]});
        options->query.window.Extend(geo::Vec2{c[2], c[3]});
      } else if (arg == "--threads" || arg == "--shards" ||
                 arg == "--objects") {
        engine_flag_seen = true;
        if (arg != "--objects") thread_flags_seen = true;
        // Tight per-flag ceilings so a typo fails as a usage error, not
        // as a massive allocation or thread spawn (every shard owns a
        // pre-sized ring; every thread is a real std::thread).
        const bool zero_ok = arg == "--shards";  // 0 = auto
        const std::uint64_t max = arg == "--threads"   ? 1024
                                  : arg == "--shards"  ? 65536
                                                       : 10'000'000;
        std::uint64_t n = 0;
        if (!ParseU64(value, &n) || (!zero_ok && n == 0) || n > max) {
          std::fprintf(stderr,
                       "operb_cli: %.*s must be an integer in %c..%llu, got "
                       "'%s'\n",
                       static_cast<int>(arg.size()), arg.data(),
                       zero_ok ? '0' : '1',
                       static_cast<unsigned long long>(max), value);
          return false;
        }
        if (arg == "--threads") {
          options->threads = n;
        } else if (arg == "--shards") {
          options->shards = n;
        } else {
          options->objects = n;
        }
      } else {
        // Unreachable while the membership list above and this chain
        // agree; catches a flag added to one but not the other.
        std::fprintf(stderr, "operb_cli: internal error: unhandled flag "
                             "'%s'\n",
                     std::string(arg).c_str());
        return false;
      }
    } else if (arg == "--flat-scan") {
      query_flag_seen = true;
      options->query.use_flat_scan = true;
    } else if (arg == "--finish-objects") {
      server_flag_seen = true;
      options->finish_objects = true;
    } else if (arg == "--stats") {
      server_flag_seen = true;
      options->server_stats = true;
    } else if (arg == "--shutdown") {
      server_flag_seen = true;
      options->server_shutdown = true;
    } else if (arg == "--server-seal") {
      server_flag_seen = true;
      options->server_seal = true;
    } else if (arg == "--clean") {
      options->clean = true;
    } else if (arg == "--no-verify") {
      options->verify = false;
      no_verify_seen = true;
    } else if (arg == "--group-by-id") {
      options->group_by_id = true;
    } else {
      std::fprintf(stderr, "operb_cli: unknown argument '%s'\n",
                   std::string(arg).c_str());
      return false;
    }
  }

  const int inputs = (options->csv_path.empty() ? 0 : 1) +
                     (options->plt_path.empty() ? 0 : 1) +
                     (options->generate_spec.empty() ? 0 : 1);
  if (options->connect_mode) {
    // Client mode talks to a daemon: every local-store, simplification
    // and engine flag is a contradiction (the server owns the spec, the
    // engine and the store). Ingest input and query flags pass through.
    if (options->compact_mode || options->query_mode ||
        !options->store_out_path.empty() || store_shards_seen ||
        options->group_by_id || options->clean || spec_flag_seen ||
        thread_flags_seen || no_verify_seen || checkpoint_flag_seen ||
        metrics_every_seen || !options->plt_path.empty() ||
        !options->save_input_path.empty()) {
      std::fprintf(stderr,
                   "operb_cli: --connect speaks to a running operb_server "
                   "and cannot be combined with local store, "
                   "simplification or engine flags\n");
      return false;
    }
    // Same shape rules api::StoreQuery::Validate enforces offline, so
    // the two paths share one usage contract (and exit code).
    if (options->query.has_at && !options->query.has_object) {
      std::fprintf(stderr,
                   "operb_cli: --at needs --object (position-at-time)\n");
      return false;
    }
    if (options->query.has_object && options->query.has_window) {
      std::fprintf(stderr,
                   "operb_cli: --object and --window are separate queries; "
                   "issue two\n");
      return false;
    }
    if (options->query.t_min > options->query.t_max) {
      std::fprintf(stderr, "operb_cli: --from is later than --to\n");
      return false;
    }
    if (options->finish_objects && inputs == 0) {
      std::fprintf(stderr,
                   "operb_cli: --finish-objects finishes the objects this "
                   "invocation ingests; give --input or --generate\n");
      return false;
    }
    return true;
  }
  if (server_flag_seen) {
    std::fprintf(stderr,
                 "operb_cli: --finish-objects/--stats/--shutdown/"
                 "--server-seal/--server-checkpoint/--server-metrics "
                 "require --connect HOST:PORT\n");
    return false;
  }
  if (options->compact_mode) {
    // Admin verb: it rewrites an existing store in place; combining it
    // with any other mode or flag is a contradiction.
    if (inputs > 0 || options->query_mode || query_flag_seen ||
        !options->store_out_path.empty() || store_shards_seen ||
        options->group_by_id || options->clean || spec_flag_seen ||
        engine_flag_seen || no_verify_seen || checkpoint_flag_seen ||
        !options->metrics_out_path.empty() || metrics_every_seen ||
        !options->output_path.empty() ||
        !options->save_input_path.empty()) {
      std::fprintf(stderr,
                   "operb_cli: --compact is an exclusive admin verb and "
                   "cannot be combined with any other flag\n");
      return false;
    }
    return true;
  }
  if (options->query_mode) {
    // Query mode serves an existing store: nothing is ingested,
    // simplified or verified, so every write-side flag — including the
    // engine knobs and --no-verify — is a contradiction, not a no-op.
    // (--metrics-out stays legal: the snapshot then carries the
    // store.query.* instruments this query just exercised.)
    if (inputs > 0 || !options->store_out_path.empty() ||
        store_shards_seen || options->group_by_id || options->clean ||
        spec_flag_seen || engine_flag_seen || no_verify_seen ||
        checkpoint_flag_seen || metrics_every_seen ||
        !options->save_input_path.empty()) {
      std::fprintf(stderr,
                   "operb_cli: --query serves an existing store and cannot "
                   "be combined with input, simplification, engine or "
                   "--store-out flags\n");
      return false;
    }
    return true;  // query shape itself is validated by api::StoreQuery
  }
  if (query_flag_seen) {
    std::fprintf(stderr,
                 "operb_cli: --object/--from/--to/--at/--window/--flat-scan "
                 "require --query PATH\n");
    return false;
  }
  if (store_shards_seen && options->store_out_path.empty()) {
    std::fprintf(stderr,
                 "operb_cli: --store-shards shards a store written by "
                 "--store-out PATH\n");
    return false;
  }
  if (checkpoint_flag_seen && !options->group_by_id) {
    // The checkpoint is of StreamEngine shard state; the single-
    // trajectory flow never constructs an engine.
    std::fprintf(stderr,
                 "operb_cli: --checkpoint-out/--checkpoint-every/--resume "
                 "snapshot the streaming engine and require --group-by-id\n");
    return false;
  }
  if (checkpoint_every_seen && options->checkpoint_out_path.empty()) {
    std::fprintf(stderr,
                 "operb_cli: --checkpoint-every sets the cadence of "
                 "--checkpoint-out PATH\n");
    return false;
  }
  if (metrics_every_seen && options->metrics_out_path.empty()) {
    std::fprintf(stderr,
                 "operb_cli: --metrics-every sets the cadence of "
                 "--metrics-out PATH\n");
    return false;
  }
  if (metrics_every_seen && !options->group_by_id) {
    // Periodic snapshots ride the engine path's chunked ingest loop;
    // the single-trajectory flow pushes everything at once.
    std::fprintf(stderr,
                 "operb_cli: --metrics-every requires --group-by-id (the "
                 "final --metrics-out snapshot works in every mode)\n");
    return false;
  }
  if (!options->resume_path.empty()) {
    if (options->clean || !options->store_out_path.empty()) {
      std::fprintf(stderr,
                   "operb_cli: --resume feeds the engine a stream tail and "
                   "cannot be combined with --clean or --store-out (both "
                   "need the full original stream)\n");
      return false;
    }
    // Verification needs the full original stream too; a resumed run
    // only has the tail, so the check is skipped rather than mis-run.
    options->verify = false;
  }
  if (inputs > 1) {
    std::fprintf(stderr,
                 "operb_cli: --input, --plt and --generate are mutually "
                 "exclusive\n");
    return false;
  }
  if (inputs == 0) options->generate_spec = "SerCar:2000:1";
  if (options->group_by_id && !options->plt_path.empty()) {
    std::fprintf(stderr,
                 "operb_cli: --plt is single-trajectory; --group-by-id "
                 "needs --input (id,t,x,y CSV) or --generate\n");
    return false;
  }
  // The boundary validation: unknown algorithms, non-positive zeta and
  // out-of-range algorithm options all surface here as one Status line.
  if (const Status s = options->spec.Validate(); !s.ok()) {
    std::fprintf(stderr, "operb_cli: %s\n", s.ToString().c_str());
    return false;
  }
  return true;
}

/// Loads or synthesizes the interleaved multi-object update stream.
std::optional<std::vector<traj::ObjectUpdate>> LoadUpdates(
    const CliOptions& options, std::string* source_label, int* error_exit) {
  *error_exit = kExitUsage;
  if (!options.csv_path.empty()) {
    *source_label = "multi-object csv " + options.csv_path;
    Result<std::vector<traj::ObjectUpdate>> r =
        traj::ReadMultiObjectCsv(options.csv_path);
    if (!r.ok()) {
      std::fprintf(stderr, "operb_cli: %s\n", r.status().ToString().c_str());
      *error_exit = kExitIo;
      return std::nullopt;
    }
    return std::move(r).value();
  }
  const std::optional<GenerateSpec> spec =
      ParseGenerateSpec(options.generate_spec);
  if (!spec) return std::nullopt;
  // Same typo guard as the per-trajectory ceiling in ParseGenerateSpec,
  // applied to the objects x points total.
  constexpr std::uint64_t kMaxTotalPoints = 100'000'000;
  if (options.objects > kMaxTotalPoints / spec->points) {
    std::fprintf(stderr,
                 "operb_cli: --objects %llu x %llu points exceeds the "
                 "%llu-point generation ceiling\n",
                 static_cast<unsigned long long>(options.objects),
                 static_cast<unsigned long long>(spec->points),
                 static_cast<unsigned long long>(kMaxTotalPoints));
    return std::nullopt;
  }
  *source_label = "generated " + options.generate_spec + " x" +
                  std::to_string(options.objects) + " objects";
  std::vector<traj::ObjectTrajectory> objects;
  objects.reserve(options.objects);
  for (std::uint64_t k = 0; k < options.objects; ++k) {
    datagen::Rng rng(spec->seed + k);
    objects.push_back(
        {k, datagen::GenerateTrajectory(datagen::DatasetProfile::For(spec->kind),
                                        spec->points, &rng)});
  }
  return traj::InterleaveRoundRobin(objects);
}

/// Prints the WriteStore-stage summary line of a pipeline report.
void PrintStoreLine(const api::PipelineReport& report,
                    std::uint64_t store_shards) {
  if (!report.store_ran) return;
  std::printf("store:     %s  (%llu blocks, %llu bytes, %llu shard(s), "
              "write amp %.3f)\n",
              report.store_path.c_str(),
              static_cast<unsigned long long>(report.store_stats.blocks),
              static_cast<unsigned long long>(report.store_stats.file_bytes),
              static_cast<unsigned long long>(store_shards),
              report.store_stats.write_amplification);
}

/// Prints the MetricsSnapshots-stage summary line of a pipeline report.
void PrintMetricsLine(const api::PipelineReport& report) {
  if (!report.metrics_ran) return;
  std::printf("metrics:   %s  (%zu snapshot(s) written, %zu failure(s))\n",
              report.metrics_path.c_str(), report.snapshots_written,
              report.snapshot_failures);
}

/// Writes the final --metrics-out snapshot for the modes that do not run
/// the Pipeline facade (query mode). Returns the exit code to use.
int WriteFinalMetricsSnapshot(const CliOptions& options, int exit_code) {
  if (options.metrics_out_path.empty() || exit_code == kExitUsage) {
    return exit_code;
  }
  if (const Status s = obs::WriteSnapshotJson(options.metrics_out_path);
      !s.ok()) {
    std::fprintf(stderr, "operb_cli: %s\n", s.ToString().c_str());
    return kExitIo;
  }
  std::printf("metrics:   %s  (1 snapshot(s) written, 0 failure(s))\n",
              options.metrics_out_path.c_str());
  return exit_code;
}

/// The --query flow: open the store, run one query, print the matched
/// segments and the skip-scan evidence.
int RunQuery(const CliOptions& options) {
  Result<api::StoreQueryReport> run = api::RunStoreQuery(options.query);
  if (!run.ok()) {
    std::fprintf(stderr, "operb_cli: %s\n",
                 run.status().ToString().c_str());
    switch (run.status().code()) {
      case StatusCode::kIOError:
      case StatusCode::kCorruption:
        return kExitIo;
      case StatusCode::kNotFound:
        // --at outside the object's stored time span: a data answer
        // ("not there"), not a usage mistake.
        return kExitBoundViolation;
      default:
        return kExitUsage;
    }
  }
  const api::StoreQueryReport& report = *run;
  std::printf("store:     %s  (%zu blocks, %llu segments, zeta %g m, "
              "%zu shard(s), %zu file(s), generation %llu%s%s)\n",
              options.query.store_path.c_str(), report.store_blocks,
              static_cast<unsigned long long>(report.store_segments),
              report.zeta, report.store_shards, report.store_files,
              static_cast<unsigned long long>(report.store_generation),
              report.legacy_single_file ? ", legacy single-file" : "",
              report.tail_dropped ? ", torn tail dropped" : "");
  const store::StoreQueryStats& stats = report.stats;
  std::printf("scan:      skipped %llu of %llu blocks on footer metadata, "
              "decoded %llu segments  (%.3f ms)\n",
              static_cast<unsigned long long>(stats.blocks_skipped),
              static_cast<unsigned long long>(stats.blocks_total),
              static_cast<unsigned long long>(stats.segments_scanned),
              report.seconds * 1e3);
  if (options.query.has_window) {
    if (options.query.use_flat_scan) {
      std::printf("index:     flat footer scan (oracle mode), %zu R-tree "
                  "nodes unused\n",
                  report.index_nodes);
    } else {
      std::printf("index:     R-tree visited %llu of %zu nodes\n",
                  static_cast<unsigned long long>(stats.index_nodes_visited),
                  report.index_nodes);
    }
  }
  if (report.has_position) {
    std::printf("position:  %.3f, %.3f at t=%g  (on the stored segment; "
                "covered samples stay within zeta %g m of its line)\n",
                report.position.x, report.position.y,
                options.query.at_time, report.zeta);
    return kExitOk;
  }
  std::printf("matched:   %llu segment(s)\n",
              static_cast<unsigned long long>(stats.segments_matched));
  if (!options.output_path.empty()) {
    std::vector<traj::TaggedSegment> tagged;
    tagged.reserve(report.segments.size());
    for (const traj::TimedSegment& s : report.segments) {
      tagged.push_back({s.object_id, s.segment});
    }
    if (const Status s = traj::WriteTaggedSegmentsCsv(
            std::span<const traj::TaggedSegment>(tagged),
            options.output_path);
        !s.ok()) {
      std::fprintf(stderr, "operb_cli: %s\n", s.ToString().c_str());
      return kExitIo;
    }
    std::printf("wrote:     %s\n", options.output_path.c_str());
  }
  return kExitOk;
}

/// Maps a Status from the server onto the CLI exit-code contract —
/// the same mapping RunQuery applies to offline query failures.
int ServerStatusExit(const Status& s) {
  switch (s.code()) {
    case StatusCode::kIOError:
    case StatusCode::kCorruption:
      return kExitIo;
    case StatusCode::kNotFound:
      return kExitBoundViolation;
    default:
      return kExitUsage;
  }
}

/// The --connect client flow: ingest, admin verbs, one query, stats,
/// shutdown — in that order, over one connection. Query answers are
/// written with the same CSV path as the offline --query flow, which is
/// what makes the two byte-comparable.
int RunConnect(const CliOptions& options) {
  const std::size_t colon = options.connect_spec.rfind(':');
  std::uint64_t port = 0;
  if (colon == std::string::npos || colon == 0 ||
      !ParseU64(options.connect_spec.substr(colon + 1), &port) || port == 0 ||
      port > 65535) {
    std::fprintf(stderr,
                 "operb_cli: --connect expects HOST:PORT, got '%s'\n",
                 options.connect_spec.c_str());
    return kExitUsage;
  }
  const std::string host = options.connect_spec.substr(0, colon);
  Result<server::Client> client =
      server::Client::Connect(host, static_cast<std::uint16_t>(port));
  if (!client.ok()) {
    std::fprintf(stderr, "operb_cli: %s\n",
                 client.status().ToString().c_str());
    return kExitIo;
  }
  std::printf("connected: %s\n", options.connect_spec.c_str());

  if (!options.csv_path.empty() || !options.generate_spec.empty()) {
    std::string source_label;
    int error_exit = kExitUsage;
    std::optional<std::vector<traj::ObjectUpdate>> updates =
        LoadUpdates(options, &source_label, &error_exit);
    if (!updates) return error_exit;
    // Batched so the daemon's per-request flow control (BUSY + retry,
    // handled inside Client::Ingest) sees bounded requests.
    constexpr std::size_t kIngestBatch = 512;
    const std::span<const traj::ObjectUpdate> all(*updates);
    for (std::size_t i = 0; i < all.size(); i += kIngestBatch) {
      const std::size_t n = std::min(kIngestBatch, all.size() - i);
      if (const Status s = client->Ingest(all.subspan(i, n)); !s.ok()) {
        std::fprintf(stderr, "operb_cli: %s\n", s.ToString().c_str());
        return kExitIo;
      }
    }
    std::printf("ingested:  %zu point(s) from %s\n", updates->size(),
                source_label.c_str());
    if (options.finish_objects) {
      std::vector<traj::ObjectId> ids;
      ids.reserve(options.objects);
      for (const traj::ObjectUpdate& u : *updates) ids.push_back(u.object_id);
      std::sort(ids.begin(), ids.end());
      ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
      for (const traj::ObjectId id : ids) {
        if (const Status s = client->FinishObject(id); !s.ok()) {
          std::fprintf(stderr, "operb_cli: %s\n", s.ToString().c_str());
          return kExitIo;
        }
      }
      std::printf("finished:  %zu object(s)\n", ids.size());
    }
  }

  if (options.server_seal) {
    Result<std::uint64_t> sealed = client->Seal();
    if (!sealed.ok()) {
      std::fprintf(stderr, "operb_cli: %s\n",
                   sealed.status().ToString().c_str());
      return ServerStatusExit(sealed.status());
    }
    std::printf("sealed:    %llu segment(s) now in the daemon's store\n",
                static_cast<unsigned long long>(*sealed));
  }
  if (!options.server_checkpoint_path.empty()) {
    if (const Status s = client->Checkpoint(options.server_checkpoint_path);
        !s.ok()) {
      std::fprintf(stderr, "operb_cli: %s\n", s.ToString().c_str());
      return ServerStatusExit(s);
    }
    std::printf("checkpoint: %s  (written server-side)\n",
                options.server_checkpoint_path.c_str());
  }
  if (!options.server_metrics_path.empty()) {
    if (const Status s =
            client->MetricsSnapshot(options.server_metrics_path);
        !s.ok()) {
      std::fprintf(stderr, "operb_cli: %s\n", s.ToString().c_str());
      return ServerStatusExit(s);
    }
    std::printf("metrics:   %s  (written server-side)\n",
                options.server_metrics_path.c_str());
  }

  if (options.query.has_at) {
    Result<geo::Point> p =
        client->PositionAt(options.query.object_id, options.query.at_time);
    if (!p.ok()) {
      std::fprintf(stderr, "operb_cli: %s\n", p.status().ToString().c_str());
      return ServerStatusExit(p.status());
    }
    std::printf("position:  %.3f, %.3f at t=%g  (server merge of the "
                "sealed store and the in-flight tail)\n",
                p->x, p->y, options.query.at_time);
  } else if (options.query.has_object || options.query.has_window) {
    Result<std::vector<traj::TimedSegment>> r =
        options.query.has_object
            ? client->QueryObject(options.query.object_id,
                                  options.query.t_min, options.query.t_max)
            : client->QueryWindow(options.query.window, options.query.t_min,
                                  options.query.t_max,
                                  options.query.use_flat_scan);
    if (!r.ok()) {
      std::fprintf(stderr, "operb_cli: %s\n", r.status().ToString().c_str());
      return ServerStatusExit(r.status());
    }
    std::printf("matched:   %zu segment(s)\n", r->size());
    if (!options.output_path.empty()) {
      // Byte-for-byte the offline RunQuery output path: id-tagged
      // segment rows through traj::WriteTaggedSegmentsCsv.
      std::vector<traj::TaggedSegment> tagged;
      tagged.reserve(r->size());
      for (const traj::TimedSegment& s : *r) {
        tagged.push_back({s.object_id, s.segment});
      }
      if (const Status s = traj::WriteTaggedSegmentsCsv(
              std::span<const traj::TaggedSegment>(tagged),
              options.output_path);
          !s.ok()) {
        std::fprintf(stderr, "operb_cli: %s\n", s.ToString().c_str());
        return kExitIo;
      }
      std::printf("wrote:     %s\n", options.output_path.c_str());
    }
  }

  if (options.server_stats) {
    Result<server::StatsBody> stats = client->Stats();
    if (!stats.ok()) {
      std::fprintf(stderr, "operb_cli: %s\n",
                   stats.status().ToString().c_str());
      return kExitIo;
    }
    std::printf("stats:     %llu live object(s), %llu point(s) ingested, "
                "%llu segment(s) emitted, %llu sealed, %llu busy "
                "reject(s), %llu seal(s), %llu connection(s)\n",
                static_cast<unsigned long long>(stats->live_objects),
                static_cast<unsigned long long>(stats->ingest_points),
                static_cast<unsigned long long>(stats->segments_emitted),
                static_cast<unsigned long long>(stats->sealed_segments),
                static_cast<unsigned long long>(stats->backpressure_rejects),
                static_cast<unsigned long long>(stats->seals),
                static_cast<unsigned long long>(stats->connections));
  }
  if (options.server_shutdown) {
    if (const Status s = client->Shutdown(); !s.ok()) {
      std::fprintf(stderr, "operb_cli: %s\n", s.ToString().c_str());
      return kExitIo;
    }
    std::printf("shutdown:  requested\n");
  }
  return kExitOk;
}

/// The --compact admin flow: one full compaction pass over an existing
/// store (GC orphans, merge every shard that needs it), printing what
/// changed.
int RunCompact(const CliOptions& options) {
  store::Compactor compactor(options.compact_path);
  Result<store::CompactionStats> run = compactor.Run();
  if (!run.ok()) {
    std::fprintf(stderr, "operb_cli: %s\n",
                 run.status().ToString().c_str());
    switch (run.status().code()) {
      case StatusCode::kIOError:
      case StatusCode::kCorruption:
        return kExitIo;
      default:
        return kExitUsage;
    }
  }
  const store::CompactionStats& stats = *run;
  std::printf("compacted: %s  (%llu of %llu shard(s), %llu generation(s) "
              "committed)\n",
              options.compact_path.c_str(),
              static_cast<unsigned long long>(stats.shards_compacted),
              static_cast<unsigned long long>(stats.shards_examined),
              static_cast<unsigned long long>(stats.generations_committed));
  std::printf("merged:    %llu -> %llu file(s), %llu -> %llu block(s), "
              "%llu segment(s) rewritten\n",
              static_cast<unsigned long long>(stats.files_before),
              static_cast<unsigned long long>(stats.files_after),
              static_cast<unsigned long long>(stats.blocks_before),
              static_cast<unsigned long long>(stats.blocks_after),
              static_cast<unsigned long long>(stats.segments_rewritten));
  std::printf("io:        read %llu bytes, wrote %llu bytes (write amp "
              "%.3f), %llu orphan(s) removed\n",
              static_cast<unsigned long long>(stats.bytes_read),
              static_cast<unsigned long long>(stats.bytes_written),
              stats.write_amplification,
              static_cast<unsigned long long>(stats.orphans_removed));
  return kExitOk;
}

/// The --group-by-id flow, composed on the Pipeline facade: interleaved
/// updates -> StreamEngine -> id-tagged segments, with per-object bound
/// verification.
int RunGroupById(const CliOptions& options) {
  std::string source_label;
  int error_exit = kExitUsage;
  std::optional<std::vector<traj::ObjectUpdate>> updates =
      LoadUpdates(options, &source_label, &error_exit);
  if (!updates) return error_exit;
  if (updates->empty()) {
    std::fprintf(stderr, "operb_cli: input stream has no updates\n");
    return kExitUsage;
  }
  const std::size_t total_points = updates->size();

  if (!options.save_input_path.empty()) {
    if (const Status s = traj::WriteMultiObjectCsv(
            std::span<const traj::ObjectUpdate>(*updates),
            options.save_input_path);
        !s.ok()) {
      std::fprintf(stderr, "operb_cli: %s\n", s.ToString().c_str());
      return kExitIo;
    }
  }

  engine::StreamEngineOptions eopts;
  eopts.num_threads = static_cast<std::size_t>(options.threads);
  eopts.num_shards = static_cast<std::size_t>(
      options.shards != 0 ? options.shards : 4 * options.threads);

  api::Pipeline::Builder builder;
  builder.FromUpdates(std::move(*updates))
      .Simplify(options.spec)
      .Engine(eopts);
  if (options.clean) builder.Clean();
  if (options.verify) builder.Verify(options.verify_slack);
  if (!options.store_out_path.empty()) {
    store::StoreWriterOptions store_options;
    store_options.num_shards = static_cast<std::size_t>(options.store_shards);
    builder.WriteStore(options.store_out_path, store_options);
  }
  if (!options.checkpoint_out_path.empty()) {
    builder.Checkpoint(options.checkpoint_out_path,
                       static_cast<std::size_t>(options.checkpoint_every));
  }
  if (!options.metrics_out_path.empty()) {
    builder.MetricsSnapshots(options.metrics_out_path,
                             static_cast<std::size_t>(options.metrics_every));
  }
  if (!options.resume_path.empty()) builder.ResumeFrom(options.resume_path);
  Result<api::Pipeline> pipeline = builder.Build();
  if (!pipeline.ok()) {
    std::fprintf(stderr, "operb_cli: %s\n",
                 pipeline.status().ToString().c_str());
    return kExitUsage;
  }
  Result<api::PipelineReport> run = pipeline->Run();
  if (!run.ok()) {
    // Data errors (non-monotone per-object timestamps, corrupt rows,
    // unwritable store, a damaged or mismatched checkpoint) surface
    // here; configuration was already validated.
    std::fprintf(stderr, "operb_cli: %s%s\n",
                 run.status().ToString().c_str(),
                 options.clean ? "" : " (try --clean)");
    return run.status().code() == StatusCode::kIOError ? kExitIo
                                                       : kExitUsage;
  }
  const api::PipelineReport& report = *run;
  const engine::StreamEngineStats& stats = report.engine_stats;

  const double elapsed_ms = report.simplify_seconds * 1e3;
  const double ns_per_point = elapsed_ms * 1e6 / total_points;
  std::printf("input:     %zu updates from %zu objects  (%s)\n", total_points,
              report.objects, source_label.c_str());
  if (options.clean) {
    std::printf("cleaned:   kept %zu of %zu (%zu duplicate, %zu "
                "out-of-order)\n",
                report.points_kept, report.points_in,
                report.cleaner.duplicates_dropped,
                report.cleaner.out_of_order_dropped);
  }
  std::printf("engine:    %s, %zu shards, %zu threads\n",
              report.spec.c_str(), eopts.num_shards, eopts.num_threads);
  std::printf("output:    %llu segments, peak %llu live objects, "
              "%llu pooled states, %llu stalls\n",
              static_cast<unsigned long long>(stats.segments),
              static_cast<unsigned long long>(stats.peak_live_objects),
              static_cast<unsigned long long>(stats.states_allocated),
              static_cast<unsigned long long>(stats.ring_full_stalls));
  std::printf("time:      %.3f ms  (%.0f ns/point, %.2f M points/s)\n",
              elapsed_ms, ns_per_point,
              ns_per_point > 0.0 ? 1e3 / ns_per_point : 0.0);
  PrintStoreLine(report, options.store_shards);
  if (report.resumed) {
    std::printf("resumed:   %s\n", options.resume_path.c_str());
  }
  if (report.checkpointed) {
    std::printf("checkpoint: %s  (%zu snapshot(s) written)\n",
                report.checkpoint_path.c_str(), report.checkpoints_written);
  }
  PrintMetricsLine(report);

  if (!options.output_path.empty()) {
    if (const Status s = traj::WriteTaggedSegmentsCsv(
            std::span<const traj::TaggedSegment>(report.segments_out),
            options.output_path);
        !s.ok()) {
      std::fprintf(stderr, "operb_cli: %s\n", s.ToString().c_str());
      return kExitIo;
    }
    std::printf("wrote:     %s\n", options.output_path.c_str());
  }

  if (options.verify) {
    if (!report.verified) {
      std::printf("bound:     VIOLATED on %zu object(s) — worst %.2f m > "
                  "zeta %g m\n",
                  report.bound_violations, report.worst_distance,
                  options.spec.zeta);
      return kExitBoundViolation;
    }
    std::printf("bound:     verified per object (%zu objects <= zeta %g m)\n",
                report.objects, options.spec.zeta);
  }
  return kExitOk;
}

/// Loads the input trajectory, or returns nullopt after printing the error.
std::optional<traj::Trajectory> LoadInput(const CliOptions& options,
                                          std::string* source_label) {
  if (!options.csv_path.empty()) {
    *source_label = "csv " + options.csv_path;
    if (options.clean) {
      // Raw parse: the validating reader would reject the duplicate /
      // out-of-order rows the --clean stage exists to repair.
      Result<std::vector<geo::Point>> r =
          traj::ReadCsvPoints(options.csv_path);
      if (!r.ok()) {
        std::fprintf(stderr, "operb_cli: %s\n",
                     r.status().ToString().c_str());
        return std::nullopt;
      }
      traj::Trajectory raw;
      raw.reserve(r.value().size());
      for (const geo::Point& p : r.value()) raw.AppendUnchecked(p);
      return raw;
    }
    Result<traj::Trajectory> r = traj::ReadCsv(options.csv_path);
    if (!r.ok()) {
      std::fprintf(stderr, "operb_cli: %s\n", r.status().ToString().c_str());
      return std::nullopt;
    }
    return std::move(r).value();
  }
  if (!options.plt_path.empty()) {
    *source_label = "plt " + options.plt_path;
    Result<traj::Trajectory> r = traj::ReadGeoLifePlt(options.plt_path);
    if (!r.ok()) {
      std::fprintf(stderr, "operb_cli: %s\n", r.status().ToString().c_str());
      return std::nullopt;
    }
    return std::move(r).value();
  }
  *source_label = "generated " + options.generate_spec;
  return GenerateFromSpec(options.generate_spec);
}

/// The single-trajectory flow on the Pipeline facade.
int RunSingle(const CliOptions& options) {
  std::string source_label;
  std::optional<traj::Trajectory> input = LoadInput(options, &source_label);
  if (!input) {
    return options.generate_spec.empty() ? kExitIo : kExitUsage;
  }
  if (input->size() < 2) {
    std::fprintf(stderr,
                 "operb_cli: input has %zu point(s); need at least 2\n",
                 input->size());
    return kExitUsage;
  }

  if (!options.save_input_path.empty()) {
    if (const Status s = traj::WriteCsv(*input, options.save_input_path);
        !s.ok()) {
      std::fprintf(stderr, "operb_cli: %s\n", s.ToString().c_str());
      return kExitIo;
    }
  }

  // Keep a copy for the metrics below; the pipeline consumes its input.
  const traj::Trajectory original = *input;
  api::Pipeline::Builder builder;
  builder.FromTrajectory(std::move(*input)).Simplify(options.spec);
  if (options.clean) builder.Clean();
  if (options.verify) builder.Verify(options.verify_slack);
  if (!options.store_out_path.empty()) {
    store::StoreWriterOptions store_options;
    store_options.num_shards = static_cast<std::size_t>(options.store_shards);
    builder.WriteStore(options.store_out_path, store_options);
  }
  if (!options.metrics_out_path.empty()) {
    builder.MetricsSnapshots(options.metrics_out_path);
  }
  Result<api::Pipeline> pipeline = builder.Build();
  if (!pipeline.ok()) {
    std::fprintf(stderr, "operb_cli: %s\n",
                 pipeline.status().ToString().c_str());
    return kExitUsage;
  }
  Result<api::PipelineReport> run = pipeline->Run();
  if (!run.ok()) {
    // Data errors (e.g. non-monotone timestamps, unwritable store) —
    // configuration was already validated.
    std::fprintf(stderr, "operb_cli: %s%s\n",
                 run.status().ToString().c_str(),
                 options.clean ? "" : " (try --clean)");
    return run.status().code() == StatusCode::kIOError ? kExitIo
                                                       : kExitUsage;
  }
  const api::PipelineReport& report = *run;

  traj::PiecewiseRepresentation representation;
  for (const traj::TaggedSegment& s : report.segments_out) {
    representation.Append(s.segment);
  }

  const double elapsed_ms = report.simplify_seconds * 1e3;
  const double ratio = eval::CompressionRatio(original, representation);
  const eval::ErrorStats error = eval::MeasureError(original, representation);
  const double ns_per_point = elapsed_ms * 1e6 / original.size();

  std::printf("input:     %zu points, %.2f km, %.0f s  (%s)\n",
              original.size(), original.PathLength() / 1000.0,
              original.Duration(), source_label.c_str());
  if (options.clean) {
    std::printf("cleaned:   kept %zu of %zu (%zu duplicate, %zu "
                "out-of-order)\n",
                report.points_kept, report.points_in,
                report.cleaner.duplicates_dropped,
                report.cleaner.out_of_order_dropped);
  }
  std::printf("algorithm: %s%s\n", report.spec.c_str(),
              options.spec.fidelity == baselines::OperbFidelity::kPaperFaithful
                  ? " (paper-faithful heuristics, no strict guard)"
                  : "");
  std::printf("output:    %zu segments, %zu stored points\n",
              representation.size(), representation.StoredPointCount());
  std::printf("ratio:     %.2f%% of input kept (%.1fx compression)\n",
              100.0 * ratio, ratio > 0.0 ? 1.0 / ratio : 0.0);
  std::printf("time:      %.3f ms  (%.0f ns/point, %.2f M points/s)\n",
              elapsed_ms, ns_per_point,
              ns_per_point > 0.0 ? 1e3 / ns_per_point : 0.0);
  std::printf("error:     avg %.2f m, max %.2f m\n", error.average, error.max);
  PrintStoreLine(report, options.store_shards);
  PrintMetricsLine(report);

  if (!options.output_path.empty()) {
    if (const Status s =
            traj::WriteRepresentationCsv(representation, options.output_path);
        !s.ok()) {
      std::fprintf(stderr, "operb_cli: %s\n", s.ToString().c_str());
      return kExitIo;
    }
    std::printf("wrote:     %s\n", options.output_path.c_str());
  }

  if (options.verify) {
    if (!report.verified) {
      std::printf("bound:     VIOLATED — worst %.2f m > zeta %g m\n",
                  report.worst_distance, options.spec.zeta);
      return kExitBoundViolation;
    }
    std::printf("bound:     verified (worst %.2f m <= zeta %g m)\n",
                report.worst_distance, options.spec.zeta);
  }
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  bool wants_help = false;
  if (!ParseArgs(argc, argv, &options, &wants_help)) {
    std::fprintf(stderr, "Run 'operb_cli --help' for usage.\n");
    return kExitUsage;
  }
  if (wants_help) {
    PrintUsage(stdout);
    return kExitOk;
  }
  if (!options.metrics_out_path.empty()) {
    // Pre-flight: snapshots are written late in the run (and periodic
    // failures are deliberately non-fatal), so an unusable path must
    // fail up front as a usage error, not as a silent no-op run.
    std::FILE* probe = std::fopen(options.metrics_out_path.c_str(), "ab");
    if (probe == nullptr) {
      std::fprintf(stderr,
                   "operb_cli: --metrics-out path '%s' is not writable\n",
                   options.metrics_out_path.c_str());
      return kExitUsage;
    }
    std::fclose(probe);
  }
  if (options.connect_mode) {
    return WriteFinalMetricsSnapshot(options, RunConnect(options));
  }
  if (options.compact_mode) return RunCompact(options);
  if (options.query_mode) {
    return WriteFinalMetricsSnapshot(options, RunQuery(options));
  }
  return options.group_by_id ? RunGroupById(options) : RunSingle(options);
}
