#include "api/spec.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <system_error>

#include "api/registry.h"

namespace operb::api {

namespace {

/// Shortest decimal that round-trips through from_chars (to_chars without
/// a precision argument is the shortest-round-trip form by definition).
std::string FormatDouble(double v) {
  char buf[64];
  const std::to_chars_result r = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, r.ptr);
}

bool ParseDouble(std::string_view text, double* out) {
  const std::from_chars_result r =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return r.ec == std::errc() && r.ptr == text.data() + text.size();
}

Status MalformedPair(std::string_view token) {
  std::string msg = "malformed spec option '" + std::string(token) +
                    "' (expected key=value)";
  // The classic locale trap: "zeta=2,5" splits into "zeta=2" and "5".
  // A bare number where a pair belongs almost always means a ','-decimal.
  if (!token.empty() &&
      token.find_first_not_of("0123456789.+-eE") == std::string_view::npos) {
    msg += "; use '.' as the decimal separator — ',' separates options";
  }
  return Status::InvalidArgument(std::move(msg));
}

}  // namespace

Result<SimplifierSpec> SimplifierSpec::Parse(std::string_view text) {
  if (text.find_first_not_of(" \t") == std::string_view::npos) {
    return Status::InvalidArgument("empty simplifier spec");
  }
  SimplifierSpec spec;
  const std::size_t colon = text.find(':');
  const std::string_view name = text.substr(0, colon);
  if (name.empty()) {
    return Status::InvalidArgument("spec is missing an algorithm name");
  }
  spec.algorithm = std::string(name);

  bool saw_zeta = false;
  bool saw_fidelity = false;
  if (colon != std::string_view::npos) {
    std::string_view rest = text.substr(colon + 1);
    if (rest.empty()) {
      return Status::InvalidArgument(
          "spec has ':' but no options (drop the ':' or add key=value)");
    }
    while (!rest.empty()) {
      const std::size_t comma = rest.find(',');
      const std::string_view token = rest.substr(0, comma);
      rest = comma == std::string_view::npos ? std::string_view()
                                             : rest.substr(comma + 1);
      const std::size_t eq = token.find('=');
      if (eq == std::string_view::npos) return MalformedPair(token);
      const std::string_view key = token.substr(0, eq);
      const std::string_view value = token.substr(eq + 1);
      if (key.empty() || value.empty()) return MalformedPair(token);

      if (key == "zeta") {
        if (saw_zeta) {
          return Status::InvalidArgument("duplicate spec option 'zeta'");
        }
        saw_zeta = true;
        if (!ParseDouble(value, &spec.zeta)) {
          return Status::InvalidArgument("zeta is not a number: '" +
                                         std::string(value) + "'");
        }
      } else if (key == "fidelity") {
        if (saw_fidelity) {
          return Status::InvalidArgument("duplicate spec option 'fidelity'");
        }
        saw_fidelity = true;
        if (value == "guarded") {
          spec.fidelity = baselines::OperbFidelity::kGuarded;
        } else if (value == "paper") {
          spec.fidelity = baselines::OperbFidelity::kPaperFaithful;
        } else {
          return Status::InvalidArgument(
              "fidelity must be 'guarded' or 'paper', got '" +
              std::string(value) + "'");
        }
      } else {
        if (spec.HasOption(key)) {
          return Status::InvalidArgument("duplicate spec option '" +
                                         std::string(key) + "'");
        }
        double v = 0.0;
        if (!ParseDouble(value, &v)) {
          return Status::InvalidArgument(
              "option '" + std::string(key) + "' is not a number: '" +
              std::string(value) + "'");
        }
        spec.options.emplace_back(std::string(key), v);
      }
    }
  }
  return spec;
}

Status SimplifierSpec::Validate() const {
  return AlgorithmRegistry::Global().Validate(*this);
}

std::string SimplifierSpec::ToString() const {
  const AlgorithmRegistry::Entry* entry =
      AlgorithmRegistry::Global().Find(algorithm);
  std::string out = entry != nullptr ? entry->name : algorithm;
  out += ":zeta=";
  out += FormatDouble(zeta);
  if (fidelity == baselines::OperbFidelity::kPaperFaithful) {
    out += ",fidelity=paper";
  }
  for (const auto& [key, value] : options) {
    out += ',';
    out += key;
    out += '=';
    out += FormatDouble(value);
  }
  return out;
}

double SimplifierSpec::Option(std::string_view key, double fallback) const {
  for (const auto& [k, v] : options) {
    if (k == key) return v;
  }
  return fallback;
}

bool SimplifierSpec::HasOption(std::string_view key) const {
  return std::any_of(options.begin(), options.end(),
                     [key](const auto& kv) { return kv.first == key; });
}

SimplifierSpec SpecFor(baselines::Algorithm algorithm, double zeta,
                       baselines::OperbFidelity fidelity) {
  SimplifierSpec spec;
  spec.algorithm = std::string(baselines::AlgorithmName(algorithm));
  spec.zeta = zeta;
  spec.fidelity = fidelity;
  return spec;
}

}  // namespace operb::api
