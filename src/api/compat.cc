// Legacy enum-keyed factories, preserved signature-for-signature but now
// thin wrappers over the AlgorithmRegistry (declared in
// baselines/simplifier.h and baselines/streaming.h; defined here because
// the registry layer sits above baselines in the module graph).
//
// These are programmer APIs with a documented precondition (zeta > 0, a
// valid enum value) and therefore keep their CHECK on violation.
// Untrusted input — CLI flags, config strings, engine options — must go
// through SimplifierSpec / AlgorithmRegistry, whose Status-returning
// surface never aborts.

#include <memory>

#include "api/registry.h"
#include "api/spec.h"
#include "baselines/simplifier.h"
#include "baselines/streaming.h"
#include "common/check.h"

namespace operb::baselines {

std::unique_ptr<Simplifier> MakeSimplifier(Algorithm algorithm, double zeta,
                                           OperbFidelity fidelity) {
  OPERB_CHECK_MSG(zeta > 0.0, "zeta must be positive");
  auto made = api::AlgorithmRegistry::Global().MakeBatch(
      api::SpecFor(algorithm, zeta, fidelity));
  // Every enum value names a built-in registration; a miss here is a
  // broken registry, not caller input.
  OPERB_CHECK_MSG(made.ok(), made.status().ToString().c_str());
  return std::move(made).value();
}

std::unique_ptr<StreamingSimplifier> MakeStreamingSimplifier(
    Algorithm algorithm, double zeta, OperbFidelity fidelity) {
  OPERB_CHECK_MSG(zeta > 0.0, "zeta must be positive");
  auto made = api::AlgorithmRegistry::Global().MakeStreaming(
      api::SpecFor(algorithm, zeta, fidelity));
  OPERB_CHECK_MSG(made.ok(), made.status().ToString().c_str());
  return std::move(made).value();
}

}  // namespace operb::baselines
