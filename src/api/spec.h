#ifndef OPERB_API_SPEC_H_
#define OPERB_API_SPEC_H_

/// \file
/// Declarative simplifier configuration: the SimplifierSpec value type
/// and its ALGORITHM[:key=value,...] string grammar.

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "baselines/simplifier.h"
#include "common/result.h"
#include "common/status.h"

namespace operb::api {

/// Declarative description of one configured simplifier — the value type
/// every construction path in this library accepts (the registry, the
/// Pipeline facade, engine::StreamEngineOptions, operb_cli --spec).
///
/// A spec is cheap to copy, comparable, and serializes to a one-line
/// string:
///
///   ALGORITHM[:key=value[,key=value...]]
///
/// where ALGORITHM is any registered algorithm name, matched
/// case-insensitively with '-' and '_' interchangeable ("operb-a",
/// "OPERB_A" and "OPERB-A" are the same algorithm). Two keys are
/// universal:
///
///   zeta=METERS        error bound, > 0 and finite   (default 40)
///   fidelity=MODE      guarded | paper               (default guarded;
///                      ignored by the non-OPERB algorithms)
///
/// every other key is algorithm-specific and validated against the
/// registry entry's published option list (see AlgorithmRegistry). The
/// values are plain decimal numbers with '.' as the separator — a ','
/// inside a number is a spec-list separator, so "zeta=2,5" is rejected
/// with a hint rather than silently truncated (the failure mode of
/// locale-dependent parsers this library's ingest already guards
/// against).
///
/// Error handling contract: Parse() and Validate() return Status — a
/// malformed or out-of-range spec from an untrusted caller (CLI flag,
/// config file, RPC) is an InvalidArgument, never a CHECK abort.
struct SimplifierSpec {
  /// Algorithm name as written (canonicalized by ToString()/the registry).
  std::string algorithm = "OPERB";

  /// Error bound zeta in meters; must be positive and finite.
  double zeta = 40.0;

  /// How the OPERB family treats the heuristic optimizations' bound (see
  /// baselines::OperbFidelity); ignored by the other algorithms.
  baselines::OperbFidelity fidelity = baselines::OperbFidelity::kGuarded;

  /// Algorithm-specific numeric options in parse order, e.g.
  /// {"step_length", 0.4}. Keys are validated by the registry.
  std::vector<std::pair<std::string, double>> options;

  /// Parses the grammar above. Purely syntactic: the algorithm name and
  /// option keys are checked by Validate() against the registry, so a
  /// spec for a not-yet-registered algorithm still parses.
  static Result<SimplifierSpec> Parse(std::string_view text);

  /// Full semantic validation: known algorithm, positive finite zeta,
  /// option keys accepted by that algorithm, option values in range.
  /// Delegates to AlgorithmRegistry::Global().
  Status Validate() const;

  /// Canonical one-line form, parseable by Parse(). Uses the registry's
  /// canonical capitalization when the algorithm is known; zeta is always
  /// spelled out, fidelity only when non-default, options in stored
  /// order. Numbers use shortest round-trip formatting.
  std::string ToString() const;

  /// Value of an algorithm-specific option, or `fallback` when unset.
  double Option(std::string_view key, double fallback) const;
  bool HasOption(std::string_view key) const;

  bool operator==(const SimplifierSpec&) const = default;
};

/// The spec equivalent of the legacy enum triple — what the compat
/// factories MakeSimplifier/MakeStreamingSimplifier build internally.
/// Guaranteed to Validate() for every baselines::Algorithm value and any
/// positive finite zeta.
SimplifierSpec SpecFor(
    baselines::Algorithm algorithm, double zeta,
    baselines::OperbFidelity fidelity = baselines::OperbFidelity::kGuarded);

}  // namespace operb::api

#endif  // OPERB_API_SPEC_H_
