#ifndef OPERB_API_STORE_QUERY_H_
#define OPERB_API_STORE_QUERY_H_

/// \file
/// One-call query surface over a written trajectory store: the
/// StoreQuery description and RunStoreQuery.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "geo/bbox.h"
#include "geo/point.h"
#include "store/reader.h"
#include "traj/multi_object.h"

namespace operb::api {

/// Declarative description of one query against a trajectory store —
/// the read-side counterpart of the pipeline's WriteStore stage, and
/// what `operb_cli --query` parses its flags into.
///
/// Exactly one query shape must be selected:
///  - object reconstruction: `has_object`, optional [t_min, t_max];
///  - position-at-time: `has_object` + `has_at` (at_time within range);
///  - window query: `has_window`, optional [t_min, t_max].
///
/// Validate() enforces the shape rules as Status (the library's boundary
/// contract): malformed queries from untrusted flags are
/// InvalidArgument, never an abort.
struct StoreQuery {
  std::string store_path;

  bool has_object = false;
  traj::ObjectId object_id = 0;

  /// Time range for reconstruction and window queries (inclusive
  /// overlap); defaults cover everything.
  double t_min = -std::numeric_limits<double>::infinity();
  double t_max = std::numeric_limits<double>::infinity();

  bool has_window = false;
  geo::BoundingBox window;

  bool has_at = false;
  double at_time = 0.0;

  /// Window queries only: select candidate blocks with the flat footer
  /// scan instead of the hierarchical R-tree index — the debug/verify
  /// oracle; results are identical, only the pruning work differs
  /// (store::ScanMode).
  bool use_flat_scan = false;

  /// Shape and range validation (path set, exactly one query form, sane
  /// time range / window).
  Status Validate() const;
};

/// Everything one RunStoreQuery() produced and measured.
struct StoreQueryReport {
  double zeta = 0.0;              ///< the store's recorded error bound
  std::size_t store_blocks = 0;   ///< blocks in the opened store
  std::uint64_t store_segments = 0;  ///< total stored segments
  bool tail_dropped = false;      ///< reader dropped a torn tail on open
  std::size_t store_shards = 1;   ///< shard partition of the store
  std::size_t store_files = 1;    ///< live segment files behind it
  std::uint64_t store_generation = 0;  ///< manifest generation (0 legacy)
  bool legacy_single_file = false;  ///< opened through the compat shim
  std::size_t index_nodes = 0;    ///< R-tree nodes built over the footers

  /// Matched segments (reconstruction / window queries; empty for a
  /// pure position-at-time query).
  std::vector<traj::TimedSegment> segments;

  bool has_position = false;  ///< true when the query was position-at-time
  geo::Point position;        ///< valid when has_position

  store::StoreQueryStats stats;  ///< the skip-scan counters
  double seconds = 0.0;          ///< wall time of the query itself
};

/// Opens the store, runs `query`, closes the store. Configuration errors
/// (bad query shape) and data errors (missing file, corrupt store,
/// position time not covered) all surface as Status — the one-call form
/// operb_cli builds its `--query` mode on. Callers issuing many queries
/// against one store should hold a store::StoreReader directly and skip
/// the reopen per call.
Result<StoreQueryReport> RunStoreQuery(const StoreQuery& query);

}  // namespace operb::api

#endif  // OPERB_API_STORE_QUERY_H_
