#ifndef OPERB_API_PIPELINE_H_
#define OPERB_API_PIPELINE_H_

/// \file
/// Composable Pipeline facade over the full dataflow: ingest, clean,
/// simplify, verify, delta-encode, write-store, sink.

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "api/spec.h"
#include "codec/delta.h"
#include "common/result.h"
#include "common/status.h"
#include "engine/stream_engine.h"
#include "eval/verifier.h"
#include "store/env.h"
#include "store/writer.h"
#include "traj/cleaner.h"
#include "traj/multi_object.h"
#include "traj/trajectory.h"

namespace operb::api {

/// Everything one Pipeline::Run() produced and measured.
///
/// The counters and stage timings here are the *per-run view* of the
/// `pipeline.*` instruments in obs::MetricsRegistry::Global()
/// (DESIGN.md §10): every run folds the same numbers into the registry,
/// so a metrics snapshot shows them accumulated across runs. The report
/// keeps working unchanged with OPERB_NO_METRICS (only the fold
/// compiles out).
struct PipelineReport {
  /// Resolved canonical spec string of the simplifier that ran.
  std::string spec;

  std::size_t points_in = 0;    ///< raw samples ingested
  std::size_t points_kept = 0;  ///< after the clean stage (== points_in
                                ///< when cleaning is off)
  std::size_t objects = 0;      ///< trajectories simplified
  std::size_t segments = 0;     ///< output segments across all objects

  /// Wall time of the simplification stage alone: single path — push +
  /// finish; engine path — push + Close() (which includes the drain
  /// barrier). Ingest, cleaning, verification and encoding are excluded.
  double simplify_seconds = 0.0;

  /// Clean-stage counters (zeros when the stage is off).
  traj::CleanerStats cleaner;

  /// Verify-stage outcome (meaningful only when the stage ran).
  bool verify_ran = false;
  bool verified = false;            ///< every object within zeta
  std::size_t bound_violations = 0; ///< objects exceeding the bound
  double worst_distance = 0.0;      ///< worst point-to-line distance seen

  /// Delta-encode stage: lossless codec over the *cleaned input* (the
  /// storage-cost contrast point to the lossy simplification).
  std::size_t delta_bytes = 0;
  double delta_ratio = 0.0;  ///< delta_bytes / (24 bytes * points_kept)

  /// WriteStore-stage outcome (meaningful only when the stage ran): the
  /// path written and the writer's lifetime counters, including
  /// write_amplification (see store::StoreWriterStats).
  bool store_ran = false;
  std::string store_path;
  store::StoreWriterStats store_stats;

  /// Output segments in emission order, grouped by object id (stable
  /// sort), when no sink was installed; empty otherwise.
  std::vector<traj::TaggedSegment> segments_out;

  /// Engine-path extras.
  bool used_engine = false;
  engine::StreamEngineStats engine_stats;

  /// Checkpoint-stage outcome (engine path only; see
  /// Builder::Checkpoint / Builder::ResumeFrom).
  bool checkpointed = false;          ///< a Checkpoint() stage ran
  std::string checkpoint_path;        ///< where the last snapshot went
  std::size_t checkpoints_written = 0;
  bool resumed = false;               ///< the engine was restored from a
                                      ///< checkpoint before ingesting

  /// MetricsSnapshots-stage outcome. A failed snapshot write is never
  /// fatal to the run: it is logged, counted here (and in the
  /// `pipeline.snapshot_failures` registry counter) and ingest
  /// continues.
  bool metrics_ran = false;
  std::string metrics_path;            ///< where the last snapshot went
  std::size_t snapshots_written = 0;   ///< successful snapshot writes
  std::size_t snapshot_failures = 0;   ///< failed writes (non-fatal)
};

/// Composable facade over the library's full dataflow:
///
///   ingest → clean → simplify(spec) → verify(zeta) → delta-encode
///          → write-store → sink
///
/// Exactly one ingest source and a simplifier spec are required; every
/// other stage is opt-in. Single-trajectory sources run the one-pass
/// streaming sink path in the calling thread; multi-object sources (and
/// any source combined with Engine()) run on the sharded
/// engine::StreamEngine with per-object cleaning and verification. Both
/// paths emit segments bit-identical to the equivalent hand-assembled
/// calls — the facade adds composition, not behavior.
///
/// Error handling follows the library's boundary contract (DESIGN.md §7):
/// configuration errors surface at Build(), data errors (unreadable file,
/// corrupt rows, non-monotone timestamps without a Clean stage) at
/// Run() — always as Status, never a CHECK abort.
///
///   auto built = api::Pipeline::Builder()
///                    .FromCsvFile("fleet.csv")
///                    .Clean()
///                    .Simplify("operb-a:zeta=30")
///                    .Verify()
///                    .Build();
///   if (!built.ok()) { ... }
///   auto report = built->Run();
class Pipeline {
 public:
  class Builder {
   public:
    /// --- Ingest (exactly one) ---
    /// Single trajectory, by value.
    Builder& FromTrajectory(traj::Trajectory trajectory);
    /// Plain x,y,t CSV file / in-memory content.
    Builder& FromCsvFile(std::string path);
    Builder& FromCsv(std::string content);
    /// GeoLife .plt file.
    Builder& FromPltFile(std::string path);
    /// Interleaved multi-object updates, by value / id,t,x,y CSV file.
    Builder& FromUpdates(std::vector<traj::ObjectUpdate> updates);
    Builder& FromMultiObjectCsvFile(std::string path);

    /// --- Stages ---
    /// One-pass stream cleaning (duplicates, out-of-order, speed gate),
    /// applied per object before simplification.
    Builder& Clean(traj::CleanerOptions options = {});
    /// The simplifier (required). The string overload is parsed and
    /// validated at Build().
    Builder& Simplify(SimplifierSpec spec);
    Builder& Simplify(std::string_view spec_string);
    /// Independent per-object error-bound verification against the
    /// spec's zeta.
    Builder& Verify(double slack = 1e-9);
    /// Lossless delta encoding of the cleaned input (storage contrast).
    Builder& DeltaEncode(codec::DeltaCodecOptions options = {});
    /// Persist the simplified output: every emitted segment, annotated
    /// with the time interval it covers, streams into a sharded
    /// directory-based trajectory store at `path` (src/store: manifest +
    /// per-shard segment files), which `operb_cli --query` /
    /// api::RunStoreQuery can then serve. The options carry the shard
    /// count (options.num_shards; objects partition by
    /// traj::ShardOfObject, the engine's own hash) and block budget; the
    /// zeta field is overwritten by the Simplify() spec's zeta (the
    /// bound the segments are actually simplified under — it is the
    /// store's error certificate). Composes with ToSink(): the sink
    /// still receives every segment.
    Builder& WriteStore(std::string path,
                        store::StoreWriterOptions options = {});
    /// Route through the sharded StreamEngine with these knobs
    /// (shards/threads/ring/...). The options' spec field is overwritten
    /// by the Simplify() spec. Multi-object sources use the engine even
    /// without this call (with default knobs).
    Builder& Engine(engine::StreamEngineOptions options);
    /// Deliver segments to `sink` instead of collecting them into the
    /// report. Engine path: called from worker threads (see
    /// TaggedSegmentSink's contract); single path: called inline, with
    /// object id 0.
    Builder& ToSink(engine::TaggedSegmentSink sink);
    /// Periodically snapshot the engine's complete streaming state to
    /// `path` (engine::StreamEngine::Checkpoint: drain barrier, temp
    /// file + rename, DESIGN.md §9). With every_n_points > 0 a
    /// checkpoint is written after each chunk of that many updates
    /// (each overwriting `path`); with 0, exactly one is written after
    /// the last update, before Close(). Implies the engine path. `env`
    /// is the write-side filesystem seam (nullptr: real filesystem; not
    /// owned, must outlive Run()).
    Builder& Checkpoint(std::string path, std::size_t every_n_points = 0,
                        store::Env* env = nullptr);
    /// Periodically export a metrics snapshot (obs::WriteSnapshotJson:
    /// every registry instrument plus trace totals, temp file + rename)
    /// to `path`. With every_n_points > 0 a snapshot is written after
    /// each chunk of that many updates (each overwriting `path`; implies
    /// the engine path, like Checkpoint); with 0, exactly one is written
    /// after the run completes, on either path. `env` is the write-side
    /// filesystem seam (nullptr: real filesystem; not owned, must
    /// outlive Run()) — under FaultInjectingEnv a failed write is
    /// logged and counted, never fatal (see PipelineReport).
    Builder& MetricsSnapshots(std::string path,
                              std::size_t every_n_points = 0,
                              store::Env* env = nullptr);
    /// Restore the engine from a checkpoint before ingesting: the
    /// source must then supply exactly the stream's *remainder* (the
    /// updates after the cut), and the run emits the segments the
    /// uninterrupted run would have emitted from that point on,
    /// bit-identically. Implies the engine path. Incompatible with
    /// Clean(), Verify() and WriteStore() — those stages need the full
    /// original stream, which a resumed run by definition does not have
    /// (Build() rejects the combination).
    Builder& ResumeFrom(std::string path);

    /// Validates the configuration (source present, spec parses and
    /// resolves, engine knobs in range).
    Result<Pipeline> Build();

   private:
    friend class Pipeline;
    enum class Source {
      kNone,
      kTrajectory,
      kCsvFile,
      kCsvContent,
      kPltFile,
      kUpdates,
      kMultiCsvFile,
    };

    Status SetSource(Source source);

    Source source_ = Source::kNone;
    Status source_error_;  ///< sticky: second source call reports here
    traj::Trajectory trajectory_;
    std::string path_or_content_;
    std::vector<traj::ObjectUpdate> updates_;

    bool clean_ = false;
    traj::CleanerOptions cleaner_options_;
    bool have_spec_ = false;
    SimplifierSpec spec_;
    bool have_spec_string_ = false;  ///< string overload pending Build()
    std::string spec_string_;
    bool verify_ = false;
    double verify_slack_ = 1e-9;
    bool delta_ = false;
    codec::DeltaCodecOptions delta_options_;
    bool write_store_ = false;
    std::string store_path_;
    store::StoreWriterOptions store_options_;
    bool use_engine_ = false;
    engine::StreamEngineOptions engine_options_;
    engine::TaggedSegmentSink sink_;
    std::string checkpoint_path_;
    std::size_t checkpoint_every_ = 0;
    store::Env* checkpoint_env_ = nullptr;
    bool metrics_ = false;
    std::string metrics_path_;
    std::size_t metrics_every_ = 0;
    store::Env* metrics_env_ = nullptr;
    std::string resume_path_;
  };

  /// Executes the pipeline. Single use: a second call returns
  /// InvalidArgument (the input was consumed).
  Result<PipelineReport> Run();

 private:
  explicit Pipeline(Builder config) : config_(std::move(config)) {}

  Result<PipelineReport> RunSingle();
  Result<PipelineReport> RunEngine();

  Builder config_;
  bool ran_ = false;
};

}  // namespace operb::api

#endif  // OPERB_API_PIPELINE_H_
