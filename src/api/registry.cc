#include "api/registry.h"

#include <cctype>
#include <cmath>
#include <utility>

#include "common/check.h"

namespace operb::api {

namespace {

/// Folding for name lookup: lowercase, '-' and '_' identified.
std::string FoldName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    out += c == '_' ? '-'
                    : static_cast<char>(
                          std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

AlgorithmRegistry& AlgorithmRegistry::Global() {
  static AlgorithmRegistry* const registry = [] {
    auto* r = new AlgorithmRegistry();
    RegisterBuiltinAlgorithms(*r);
    return r;
  }();
  return *registry;
}

Status AlgorithmRegistry::Register(Entry entry) {
  if (entry.name.empty()) {
    return Status::InvalidArgument("algorithm name must not be empty");
  }
  if (!entry.batch || !entry.streaming) {
    return Status::InvalidArgument(
        "algorithm '" + entry.name +
        "' must provide both a batch and a streaming factory");
  }
  const std::lock_guard<std::mutex> lock(mu_);
  const std::string folded = FoldName(entry.name);
  for (const auto& existing : entries_) {
    if (FoldName(existing->name) == folded) {
      return Status::InvalidArgument("algorithm '" + entry.name +
                                     "' is already registered (as '" +
                                     existing->name + "')");
    }
  }
  entries_.push_back(std::make_unique<Entry>(std::move(entry)));
  return Status::OK();
}

const AlgorithmRegistry::Entry* AlgorithmRegistry::Find(
    std::string_view name) const {
  const std::string folded = FoldName(name);
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& entry : entries_) {
    if (FoldName(entry->name) == folded) return entry.get();
  }
  return nullptr;
}

std::vector<std::string> AlgorithmRegistry::Names() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& entry : entries_) names.push_back(entry->name);
  return names;
}

Status AlgorithmRegistry::Validate(const SimplifierSpec& spec) const {
  const Entry* entry = Find(spec.algorithm);
  if (entry == nullptr) {
    std::string known;
    for (const std::string& name : Names()) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    return Status::NotFound("unknown algorithm '" + spec.algorithm +
                            "' (registered: " + known + ")");
  }
  if (!(spec.zeta > 0.0) || !std::isfinite(spec.zeta)) {
    return Status::InvalidArgument(
        "zeta must be positive and finite, got " + std::to_string(spec.zeta));
  }
  for (const auto& [key, value] : spec.options) {
    bool known_key = false;
    for (const std::string& accepted : entry->option_keys) {
      if (key == accepted) {
        known_key = true;
        break;
      }
    }
    if (!known_key) {
      std::string accepted_list;
      for (const std::string& accepted : entry->option_keys) {
        if (!accepted_list.empty()) accepted_list += ", ";
        accepted_list += accepted;
      }
      return Status::InvalidArgument(
          "algorithm '" + entry->name + "' does not accept option '" + key +
          "'" +
          (accepted_list.empty() ? " (it has no algorithm-specific options)"
                                 : " (accepted: " + accepted_list + ")"));
    }
    if (!std::isfinite(value)) {
      return Status::InvalidArgument("option '" + key + "' must be finite");
    }
  }
  if (entry->validate_options) {
    OPERB_RETURN_IF_ERROR(entry->validate_options(spec));
  }
  return Status::OK();
}

Result<std::unique_ptr<baselines::Simplifier>> AlgorithmRegistry::MakeBatch(
    const SimplifierSpec& spec) const {
  OPERB_RETURN_IF_ERROR(Validate(spec));
  const Entry* entry = Find(spec.algorithm);
  std::unique_ptr<baselines::Simplifier> made = entry->batch(spec);
  // A registered factory returning null on a validated spec is a broken
  // registration, not bad input.
  OPERB_CHECK_MSG(made != nullptr, "batch factory returned null");
  return made;
}

Result<std::unique_ptr<baselines::StreamingSimplifier>>
AlgorithmRegistry::MakeStreaming(const SimplifierSpec& spec) const {
  OPERB_RETURN_IF_ERROR(Validate(spec));
  const Entry* entry = Find(spec.algorithm);
  std::unique_ptr<baselines::StreamingSimplifier> made =
      entry->streaming(spec);
  OPERB_CHECK_MSG(made != nullptr, "streaming factory returned null");
  return made;
}

Result<std::unique_ptr<baselines::Simplifier>> AlgorithmRegistry::MakeBatch(
    std::string_view spec_string) const {
  OPERB_ASSIGN_OR_RETURN(const SimplifierSpec spec,
                         SimplifierSpec::Parse(spec_string));
  return MakeBatch(spec);
}

Result<std::unique_ptr<baselines::StreamingSimplifier>>
AlgorithmRegistry::MakeStreaming(std::string_view spec_string) const {
  OPERB_ASSIGN_OR_RETURN(const SimplifierSpec spec,
                         SimplifierSpec::Parse(spec_string));
  return MakeStreaming(spec);
}

}  // namespace operb::api
