#include "api/store_query.h"

#include <cmath>
#include <memory>
#include <utility>

#include "common/stopwatch.h"

namespace operb::api {

Status StoreQuery::Validate() const {
  if (store_path.empty()) {
    return Status::InvalidArgument("store query has no store path");
  }
  if (!has_object && !has_window) {
    return Status::InvalidArgument(
        "store query selects nothing: give an object id (reconstruction) "
        "or a window (spatio-temporal query)");
  }
  if (has_object && has_window) {
    return Status::InvalidArgument(
        "store query mixes object reconstruction and a window; issue two "
        "queries");
  }
  if (has_at && !has_object) {
    return Status::InvalidArgument(
        "position-at-time requires an object id");
  }
  if (std::isnan(t_min) || std::isnan(t_max) || t_min > t_max) {
    return Status::InvalidArgument("store query time range is empty");
  }
  if (has_at && !std::isfinite(at_time)) {
    return Status::InvalidArgument(
        "position-at-time needs a finite timestamp");
  }
  if (has_at && (at_time < t_min || at_time > t_max)) {
    return Status::InvalidArgument(
        "position-at-time timestamp lies outside the query's "
        "[t_min, t_max] range");
  }
  if (has_window && window.IsEmpty()) {
    return Status::InvalidArgument("store query window is empty");
  }
  return Status::OK();
}

Result<StoreQueryReport> RunStoreQuery(const StoreQuery& query) {
  OPERB_RETURN_IF_ERROR(query.Validate());
  OPERB_ASSIGN_OR_RETURN(const std::unique_ptr<store::StoreReader> reader,
                         store::StoreReader::Open(query.store_path));
  StoreQueryReport report;
  report.zeta = reader->zeta();
  report.store_blocks = reader->block_count();
  report.store_segments = reader->segment_count();
  report.tail_dropped = reader->open_info().tail_dropped;
  report.store_shards = reader->num_shards();
  report.store_files = reader->file_count();
  report.store_generation = reader->open_info().generation;
  report.legacy_single_file = reader->open_info().legacy_single_file;
  report.index_nodes = reader->index_node_count();

  Stopwatch watch;
  if (query.has_at) {
    OPERB_ASSIGN_OR_RETURN(
        report.position,
        reader->PositionAt(query.object_id, query.at_time, &report.stats));
    report.has_position = true;
  } else if (query.has_object) {
    OPERB_ASSIGN_OR_RETURN(
        report.segments,
        reader->ReconstructObject(query.object_id, query.t_min, query.t_max,
                                  &report.stats));
  } else {
    OPERB_ASSIGN_OR_RETURN(
        report.segments,
        reader->QueryWindow(query.window, query.t_min, query.t_max,
                            &report.stats,
                            query.use_flat_scan ? store::ScanMode::kFlatScan
                                                : store::ScanMode::kIndexed));
  }
  report.seconds = watch.ElapsedSeconds();
  return report;
}

}  // namespace operb::api
