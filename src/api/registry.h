#ifndef OPERB_API_REGISTRY_H_
#define OPERB_API_REGISTRY_H_

/// \file
/// String-keyed catalog of every simplification algorithm the library
/// can construct (batch + streaming factories per entry).

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "api/spec.h"
#include "baselines/simplifier.h"
#include "baselines/streaming.h"
#include "common/result.h"
#include "common/status.h"

namespace operb::api {

/// String-keyed catalog of every simplification algorithm the library can
/// construct — the single construction surface behind the Pipeline
/// facade, engine::StreamEngine, operb_cli and the legacy enum factories
/// (baselines::MakeSimplifier / MakeStreamingSimplifier are thin wrappers
/// over this registry; see src/api/compat.cc).
///
/// Each entry owns a *batch* factory (a baselines::Simplifier) and a
/// *streaming* factory (a resettable baselines::StreamingSimplifier) that
/// are configured from the same SimplifierSpec and produce bit-identical
/// segment sequences — the equivalence the golden suite pins down.
///
/// Lookup is case-insensitive and treats '-' and '_' as the same
/// character, so "operb-a", "OPERB_A" and the canonical "OPERB-A" all
/// resolve to one entry.
///
/// Error-handling contract (the library-wide boundary rule, DESIGN.md §7):
/// every method taking a spec returns Status/Result — unknown names,
/// out-of-range zeta and unknown option keys are InvalidArgument /
/// NotFound, never a CHECK abort. CHECKs remain for internal invariants
/// only (e.g. a factory invoked with a spec that was already validated).
///
/// The 10 built-in algorithms are registered on first use of Global()
/// (explicit registration, not static initializers: these modules are
/// static libraries, and a registration object in an otherwise
/// unreferenced translation unit is dropped by the linker — the classic
/// self-registration trap). Additional algorithms can be registered at
/// runtime via Register(); registration is append-only and thread-safe.
class AlgorithmRegistry {
 public:
  using BatchFactory = std::function<std::unique_ptr<baselines::Simplifier>(
      const SimplifierSpec&)>;
  using StreamingFactory =
      std::function<std::unique_ptr<baselines::StreamingSimplifier>(
          const SimplifierSpec&)>;
  /// Semantic check of the algorithm-specific options (ranges, cross-field
  /// rules). Runs after the generic checks (known keys, finite numbers).
  using OptionValidator = std::function<Status(const SimplifierSpec&)>;

  struct Entry {
    /// Canonical name, unique under the case/'-'/'_' folding ("OPERB-A").
    std::string name;
    /// One-line description for --help / docs.
    std::string summary;
    /// True for O(1)-state one-pass algorithms (OPERB family): the
    /// streaming factory's product neither buffers nor allocates per
    /// point. Capacity planning in the engine keys off this.
    bool one_pass = false;
    /// Algorithm-specific option keys accepted in a spec (beyond the
    /// universal zeta/fidelity). Anything else is InvalidArgument.
    std::vector<std::string> option_keys;
    BatchFactory batch;
    StreamingFactory streaming;
    /// Optional extra validation; may be empty.
    OptionValidator validate_options;
  };

  /// An empty registry. Most callers want Global(); a private instance is
  /// useful for tests and for embedding with a restricted algorithm set.
  AlgorithmRegistry() = default;
  AlgorithmRegistry(const AlgorithmRegistry&) = delete;
  AlgorithmRegistry& operator=(const AlgorithmRegistry&) = delete;

  /// The process-wide registry, with the built-in algorithms registered.
  static AlgorithmRegistry& Global();

  /// Adds an algorithm. InvalidArgument on an empty name or missing
  /// factory; AlreadyExists-like Corruption is not used — a duplicate
  /// (after folding) is InvalidArgument.
  Status Register(Entry entry);

  /// Folded lookup; nullptr when unknown. The pointer stays valid for the
  /// registry's lifetime (append-only storage).
  const Entry* Find(std::string_view name) const;

  /// Canonical names in registration order (the paper's figure order for
  /// the built-ins).
  std::vector<std::string> Names() const;

  /// Full semantic validation of `spec` against its entry: known
  /// algorithm, positive finite zeta, accepted option keys, option
  /// ranges.
  Status Validate(const SimplifierSpec& spec) const;

  /// Constructs the batch / streaming simplifier described by `spec`.
  /// Validates first; the two factories configured from the same spec
  /// emit bit-identical segments.
  Result<std::unique_ptr<baselines::Simplifier>> MakeBatch(
      const SimplifierSpec& spec) const;
  Result<std::unique_ptr<baselines::StreamingSimplifier>> MakeStreaming(
      const SimplifierSpec& spec) const;

  /// Convenience: Parse + MakeBatch/MakeStreaming in one step, for
  /// callers holding a spec string ("operb:zeta=5,fidelity=paper").
  Result<std::unique_ptr<baselines::Simplifier>> MakeBatch(
      std::string_view spec_string) const;
  Result<std::unique_ptr<baselines::StreamingSimplifier>> MakeStreaming(
      std::string_view spec_string) const;

 private:
  mutable std::mutex mu_;
  /// unique_ptr elements so Find()'s pointers survive vector growth.
  std::vector<std::unique_ptr<Entry>> entries_;
};

/// Registers the library's 10 built-in algorithms (implemented in
/// src/api/register_algorithms.cc, one registration block per algorithm
/// family, collapsing the pre-registry enum switches). Called by
/// Global(); exposed so tests can populate a private registry.
void RegisterBuiltinAlgorithms(AlgorithmRegistry& registry);

}  // namespace operb::api

#endif  // OPERB_API_REGISTRY_H_
