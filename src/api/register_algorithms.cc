// Registration of the library's 10 built-in algorithms, one block per
// algorithm family. This file is the single successor of the two enum
// switches that used to live in baselines/simplifier.cc and
// baselines/streaming.cc: each algorithm's batch and streaming factories
// are defined side by side and configured from one shared options
// builder, so the two paths cannot drift apart (the golden equivalence
// suite additionally pins them to bit-identical output).
//
// Registration is explicit — RegisterBuiltinAlgorithms() is called from
// AlgorithmRegistry::Global() on first use — rather than via static
// initializer objects: these modules build as static libraries, where the
// linker is free to drop a translation unit nothing references, which
// silently unregisters algorithms. See DESIGN.md §7.

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>

#include "api/registry.h"
#include "api/spec.h"
#include "baselines/bqs.h"
#include "baselines/dp.h"
#include "baselines/opw.h"
#include "baselines/simplifier.h"
#include "baselines/streaming.h"
#include "common/check.h"
#include "core/operb.h"
#include "core/operb_a.h"
#include "core/options.h"
#include "traj/trajectory.h"

namespace operb::api {

namespace {

using FreeFunction = traj::PiecewiseRepresentation (*)(const traj::Trajectory&,
                                                       double);

// ---------------------------------------------------------------------
// Batch adapters (uniform Simplifier over the concrete algorithms).
// ---------------------------------------------------------------------

/// Adapter for the plain function-style baselines.
class FunctionSimplifier final : public baselines::Simplifier {
 public:
  FunctionSimplifier(std::string_view name, FreeFunction fn, double zeta)
      : name_(name), fn_(fn), zeta_(zeta) {}

  std::string_view name() const override { return name_; }

  traj::PiecewiseRepresentation Simplify(
      const traj::Trajectory& trajectory) const override {
    return fn_(trajectory, zeta_);
  }

 private:
  std::string_view name_;
  FreeFunction fn_;
  double zeta_;
};

class OperbSimplifier final : public baselines::Simplifier {
 public:
  OperbSimplifier(std::string_view name, const core::OperbOptions& options)
      : name_(name), options_(options) {}

  std::string_view name() const override { return name_; }

  traj::PiecewiseRepresentation Simplify(
      const traj::Trajectory& trajectory) const override {
    return core::SimplifyOperb(trajectory, options_);
  }

  void SimplifyToSink(const traj::Trajectory& trajectory,
                      const traj::SegmentSink& sink) const override {
    if (trajectory.size() < 2) return;
    core::OperbStream stream(options_);
    stream.SetSink(sink);
    stream.Push(std::span<const geo::Point>(trajectory.points()));
    stream.Finish();
  }

 private:
  std::string_view name_;
  core::OperbOptions options_;
};

class OperbASimplifier final : public baselines::Simplifier {
 public:
  OperbASimplifier(std::string_view name, const core::OperbAOptions& options)
      : name_(name), options_(options) {}

  std::string_view name() const override { return name_; }

  traj::PiecewiseRepresentation Simplify(
      const traj::Trajectory& trajectory) const override {
    return core::SimplifyOperbA(trajectory, options_);
  }

  void SimplifyToSink(const traj::Trajectory& trajectory,
                      const traj::SegmentSink& sink) const override {
    if (trajectory.size() < 2) return;
    core::OperbAStream stream(options_);
    stream.SetSink(sink);
    stream.Push(std::span<const geo::Point>(trajectory.points()));
    stream.Finish();
  }

 private:
  std::string_view name_;
  core::OperbAOptions options_;
};

// ---------------------------------------------------------------------
// Streaming adapters (resettable per-object states for the engine).
// ---------------------------------------------------------------------

/// One-pass wrapper over core::OperbStream.
class OperbStreaming final : public baselines::StreamingSimplifier {
 public:
  OperbStreaming(std::string_view name, const core::OperbOptions& options)
      : name_(name), stream_(options) {}

  std::string_view name() const override { return name_; }
  bool one_pass() const override { return true; }
  void SetSink(traj::SegmentSink sink) override {
    stream_.SetSink(std::move(sink));
  }
  void Push(const geo::Point& p) override { stream_.Push(p); }
  void Push(std::span<const geo::Point> points) override {
    stream_.Push(points);
  }
  void Finish() override { stream_.Finish(); }
  void Reset() override { stream_.Reset(); }

 private:
  std::string_view name_;
  core::OperbStream stream_;
};

/// One-pass wrapper over core::OperbAStream.
class OperbAStreaming final : public baselines::StreamingSimplifier {
 public:
  OperbAStreaming(std::string_view name, const core::OperbAOptions& options)
      : name_(name), stream_(options) {}

  std::string_view name() const override { return name_; }
  bool one_pass() const override { return true; }
  void SetSink(traj::SegmentSink sink) override {
    stream_.SetSink(std::move(sink));
  }
  void Push(const geo::Point& p) override { stream_.Push(p); }
  void Push(std::span<const geo::Point> points) override {
    stream_.Push(points);
  }
  void Finish() override { stream_.Finish(); }
  void Reset() override { stream_.Reset(); }

 private:
  std::string_view name_;
  core::OperbAStream stream_;
};

/// Buffering adapter for the batch baselines: Push() accumulates the
/// trajectory (amortized; the buffer's capacity survives Reset, so a
/// pooled state stops allocating per point once warm), Finish() runs the
/// batch algorithm and forwards every segment to the sink in order.
class BufferedStreaming final : public baselines::StreamingSimplifier {
 public:
  BufferedStreaming(std::string_view name, FreeFunction fn, double zeta)
      : name_(name), fn_(fn), zeta_(zeta) {}

  std::string_view name() const override { return name_; }
  bool one_pass() const override { return false; }
  void SetSink(traj::SegmentSink sink) override { sink_ = std::move(sink); }
  void Push(const geo::Point& p) override {
    buffer_.AppendUnchecked(p);  // order is the caller's contract
  }
  void Push(std::span<const geo::Point> points) override {
    for (const geo::Point& p : points) buffer_.AppendUnchecked(p);
  }
  void Finish() override {
    if (buffer_.size() < 2) return;  // matches Simplifier::Simplify
    for (const traj::RepresentedSegment& s : fn_(buffer_, zeta_)) {
      if (sink_) sink_(s);
    }
  }
  void Reset() override { buffer_.clear(); }

 private:
  std::string_view name_;
  FreeFunction fn_;
  double zeta_;
  traj::SegmentSink sink_;
  traj::Trajectory buffer_;
};

// ---------------------------------------------------------------------
// Family registration blocks.
// ---------------------------------------------------------------------

traj::PiecewiseRepresentation SimplifyOpwEuclid(const traj::Trajectory& t,
                                                double zeta) {
  return baselines::SimplifyOpw(t, zeta, baselines::OpwDistance::kEuclidean);
}

traj::PiecewiseRepresentation SimplifyOpwSed(const traj::Trajectory& t,
                                             double zeta) {
  return baselines::SimplifyOpw(t, zeta, baselines::OpwDistance::kSynchronous);
}

/// Registers one function-style batch baseline: the batch side wraps the
/// free function directly, the streaming side buffers and runs it at
/// Finish() — exactly the pre-registry adapter pair.
void RegisterFunctionAlgorithm(AlgorithmRegistry& registry, const char* name,
                               const char* summary, FreeFunction fn) {
  AlgorithmRegistry::Entry entry;
  entry.name = name;
  entry.summary = summary;
  entry.one_pass = false;
  // The canonical name string in the Entry outlives every product (the
  // registry is append-only and process-lived), so adapters can hold a
  // view of it.
  entry.batch = [name, fn](const SimplifierSpec& spec) {
    return std::make_unique<FunctionSimplifier>(name, fn, spec.zeta);
  };
  entry.streaming = [name, fn](const SimplifierSpec& spec) {
    return std::make_unique<BufferedStreaming>(name, fn, spec.zeta);
  };
  OPERB_CHECK_MSG(registry.Register(std::move(entry)).ok(),
                  "builtin registration failed");
}

/// Spec -> core::OperbOptions, shared by the batch and streaming
/// factories of both OPERB variants (this is what keeps the two paths
/// configured identically). `optimized` selects Optimized()/Raw(); the
/// fidelity switch only applies to the optimized variant — Raw-OPERB has
/// no heuristics for the guard to guard (mirrors the legacy factories).
core::OperbOptions OperbOptionsFrom(const SimplifierSpec& spec,
                                    bool optimized) {
  core::OperbOptions o = optimized ? core::OperbOptions::Optimized(spec.zeta)
                                   : core::OperbOptions::Raw(spec.zeta);
  if (optimized) {
    o.strict_bound_guard =
        spec.fidelity == baselines::OperbFidelity::kGuarded;
  }
  o.step_length_factor = spec.Option("step_length", o.step_length_factor);
  o.activation_slack_factor =
      spec.Option("activation_slack", o.activation_slack_factor);
  return o;
}

core::OperbAOptions OperbAOptionsFrom(const SimplifierSpec& spec,
                                      bool optimized) {
  core::OperbAOptions o;
  o.base = OperbOptionsFrom(spec, optimized);
  o.gamma_m = spec.Option("gamma_m", o.gamma_m);
  o.max_patch_extension_zeta =
      spec.Option("max_patch_extension", o.max_patch_extension_zeta);
  return o;
}

void RegisterOperbVariant(AlgorithmRegistry& registry, const char* name,
                          const char* summary, bool optimized) {
  AlgorithmRegistry::Entry entry;
  entry.name = name;
  entry.summary = summary;
  entry.one_pass = true;
  entry.option_keys = {"step_length", "activation_slack"};
  entry.batch = [name, optimized](const SimplifierSpec& spec) {
    return std::make_unique<OperbSimplifier>(name,
                                             OperbOptionsFrom(spec, optimized));
  };
  entry.streaming = [name, optimized](const SimplifierSpec& spec) {
    return std::make_unique<OperbStreaming>(name,
                                            OperbOptionsFrom(spec, optimized));
  };
  entry.validate_options = [optimized](const SimplifierSpec& spec) {
    return OperbOptionsFrom(spec, optimized).Validate();
  };
  OPERB_CHECK_MSG(registry.Register(std::move(entry)).ok(),
                  "builtin registration failed");
}

void RegisterOperbAVariant(AlgorithmRegistry& registry, const char* name,
                           const char* summary, bool optimized) {
  AlgorithmRegistry::Entry entry;
  entry.name = name;
  entry.summary = summary;
  entry.one_pass = true;
  entry.option_keys = {"step_length", "activation_slack", "gamma_m",
                       "max_patch_extension"};
  entry.batch = [name, optimized](const SimplifierSpec& spec) {
    return std::make_unique<OperbASimplifier>(
        name, OperbAOptionsFrom(spec, optimized));
  };
  entry.streaming = [name, optimized](const SimplifierSpec& spec) {
    return std::make_unique<OperbAStreaming>(
        name, OperbAOptionsFrom(spec, optimized));
  };
  entry.validate_options = [optimized](const SimplifierSpec& spec) {
    return OperbAOptionsFrom(spec, optimized).Validate();
  };
  OPERB_CHECK_MSG(registry.Register(std::move(entry)).ok(),
                  "builtin registration failed");
}

}  // namespace

void RegisterBuiltinAlgorithms(AlgorithmRegistry& registry) {
  // Registration order == baselines::AllAlgorithms() == the order the
  // paper's figures list the algorithms.
  RegisterFunctionAlgorithm(registry, "DP",
                            "batch Douglas-Peucker, Euclidean distance",
                            &baselines::SimplifyDp);
  RegisterFunctionAlgorithm(registry, "DP-SED",
                            "top-down DP with synchronous Euclidean distance",
                            &baselines::SimplifyDpSed);
  RegisterFunctionAlgorithm(registry, "OPW",
                            "open-window online algorithm, Euclidean distance",
                            &SimplifyOpwEuclid);
  RegisterFunctionAlgorithm(registry, "OPW-SED",
                            "open window with synchronous Euclidean distance",
                            &SimplifyOpwSed);
  RegisterFunctionAlgorithm(registry, "BQS", "bounded quadrant system",
                            &baselines::SimplifyBqs);
  RegisterFunctionAlgorithm(registry, "FBQS", "fast (buffer-free) BQS",
                            &baselines::SimplifyFbqs);
  RegisterOperbVariant(registry, "Raw-OPERB",
                       "OPERB without the five optimizations (Figure 7)",
                       /*optimized=*/false);
  RegisterOperbVariant(registry, "OPERB",
                       "one-pass error-bounded simplification, optimized",
                       /*optimized=*/true);
  RegisterOperbAVariant(registry, "Raw-OPERB-A",
                        "Raw-OPERB plus patch-point interpolation",
                        /*optimized=*/false);
  RegisterOperbAVariant(registry, "OPERB-A",
                        "OPERB plus patch-point interpolation (aggressive)",
                        /*optimized=*/true);
}

}  // namespace operb::api
