// Registration of the library's 10 built-in algorithms, one block per
// algorithm family. This file is the single successor of the two enum
// switches that used to live in baselines/simplifier.cc and
// baselines/streaming.cc: each algorithm's batch and streaming factories
// are defined side by side and configured from one shared options
// builder, so the two paths cannot drift apart (the golden equivalence
// suite additionally pins them to bit-identical output).
//
// Registration is explicit — RegisterBuiltinAlgorithms() is called from
// AlgorithmRegistry::Global() on first use — rather than via static
// initializer objects: these modules build as static libraries, where the
// linker is free to drop a translation unit nothing references, which
// silently unregisters algorithms. See DESIGN.md §7.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "api/registry.h"
#include "api/spec.h"
#include "baselines/bqs.h"
#include "baselines/dp.h"
#include "baselines/opw.h"
#include "baselines/simplifier.h"
#include "baselines/streaming.h"
#include "common/check.h"
#include "common/serial.h"
#include "core/operb.h"
#include "core/operb_a.h"
#include "core/options.h"
#include "traj/trajectory.h"

namespace operb::api {

namespace {

using FreeFunction = traj::PiecewiseRepresentation (*)(const traj::Trajectory&,
                                                       double);

// ---------------------------------------------------------------------
// State-blob framing shared by the streaming adapters' Serialize /
// Deserialize: 4-byte family magic, version byte, payload, trailing
// FNV-1a64 over everything from the magic (see StreamingSimplifier).
// ---------------------------------------------------------------------

constexpr std::uint8_t kStateVersion = 1;
constexpr std::uint32_t kOperbStateMagic = 0x5342'504Fu;     // "OPBS"
constexpr std::uint32_t kOperbAStateMagic = 0x5341'504Fu;    // "OPAS"
constexpr std::uint32_t kBufferedStateMagic = 0x5346'5542u;  // "BUFS"

void AppendStateChecksum(std::size_t start, std::vector<std::uint8_t>* out) {
  const std::uint64_t sum = serial::Fnv1a64(std::span<const std::uint8_t>(
      out->data() + start, out->size() - start));
  serial::PutU64(sum, out);
}

Status CheckStateHeader(std::uint32_t magic, std::string_view name,
                        std::span<const std::uint8_t> in, std::size_t* pos) {
  std::uint32_t m = 0;
  std::uint8_t version = 0;
  if (!serial::GetU32(in, pos, &m) || !serial::GetU8(in, pos, &version)) {
    return Status::Corruption("truncated simplifier state header");
  }
  if (m != magic) {
    return Status::Corruption("simplifier state magic mismatch for " +
                              std::string(name));
  }
  if (version != kStateVersion) {
    return Status::InvalidArgument("unsupported simplifier state version " +
                                   std::to_string(version));
  }
  return Status::OK();
}

/// The serialized zeta is a configuration cross-check, not restored
/// state: a blob written under one error bound must never resume a state
/// constructed under another.
Status CheckStateZeta(double zeta, std::span<const std::uint8_t> in,
                      std::size_t* pos) {
  double stored = 0.0;
  if (!serial::GetF64(in, pos, &stored)) {
    return Status::Corruption("truncated simplifier state header");
  }
  if (std::bit_cast<std::uint64_t>(stored) !=
      std::bit_cast<std::uint64_t>(zeta)) {
    return Status::InvalidArgument(
        "simplifier state zeta " + std::to_string(stored) +
        " does not match the configured zeta " + std::to_string(zeta));
  }
  return Status::OK();
}

Status VerifyStateChecksum(std::span<const std::uint8_t> in,
                           std::size_t start, std::size_t* pos) {
  const std::size_t payload_end = *pos;
  std::uint64_t expect = 0;
  if (!serial::GetU64(in, pos, &expect)) {
    return Status::Corruption("truncated simplifier state checksum");
  }
  const std::uint64_t got =
      serial::Fnv1a64(in.subspan(start, payload_end - start));
  if (got != expect) {
    return Status::Corruption("simplifier state checksum mismatch");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------
// Batch adapters (uniform Simplifier over the concrete algorithms).
// ---------------------------------------------------------------------

/// Adapter for the plain function-style baselines.
class FunctionSimplifier final : public baselines::Simplifier {
 public:
  FunctionSimplifier(std::string_view name, FreeFunction fn, double zeta)
      : name_(name), fn_(fn), zeta_(zeta) {}

  std::string_view name() const override { return name_; }

  traj::PiecewiseRepresentation Simplify(
      const traj::Trajectory& trajectory) const override {
    return fn_(trajectory, zeta_);
  }

 private:
  std::string_view name_;
  FreeFunction fn_;
  double zeta_;
};

class OperbSimplifier final : public baselines::Simplifier {
 public:
  OperbSimplifier(std::string_view name, const core::OperbOptions& options)
      : name_(name), options_(options) {}

  std::string_view name() const override { return name_; }

  traj::PiecewiseRepresentation Simplify(
      const traj::Trajectory& trajectory) const override {
    return core::SimplifyOperb(trajectory, options_);
  }

  void SimplifyToSink(const traj::Trajectory& trajectory,
                      const traj::SegmentSink& sink) const override {
    if (trajectory.size() < 2) return;
    core::OperbStream stream(options_);
    stream.SetSink(sink);
    stream.Push(std::span<const geo::Point>(trajectory.points()));
    stream.Finish();
  }

 private:
  std::string_view name_;
  core::OperbOptions options_;
};

class OperbASimplifier final : public baselines::Simplifier {
 public:
  OperbASimplifier(std::string_view name, const core::OperbAOptions& options)
      : name_(name), options_(options) {}

  std::string_view name() const override { return name_; }

  traj::PiecewiseRepresentation Simplify(
      const traj::Trajectory& trajectory) const override {
    return core::SimplifyOperbA(trajectory, options_);
  }

  void SimplifyToSink(const traj::Trajectory& trajectory,
                      const traj::SegmentSink& sink) const override {
    if (trajectory.size() < 2) return;
    core::OperbAStream stream(options_);
    stream.SetSink(sink);
    stream.Push(std::span<const geo::Point>(trajectory.points()));
    stream.Finish();
  }

 private:
  std::string_view name_;
  core::OperbAOptions options_;
};

// ---------------------------------------------------------------------
// Streaming adapters (resettable per-object states for the engine).
// ---------------------------------------------------------------------

/// One-pass wrapper over core::OperbStream.
class OperbStreaming final : public baselines::StreamingSimplifier {
 public:
  OperbStreaming(std::string_view name, const core::OperbOptions& options)
      : name_(name), stream_(options) {}

  std::string_view name() const override { return name_; }
  bool one_pass() const override { return true; }
  void SetSink(traj::SegmentSink sink) override {
    stream_.SetSink(std::move(sink));
  }
  void Push(const geo::Point& p) override { stream_.Push(p); }
  void Push(std::span<const geo::Point> points) override {
    stream_.Push(points);
  }
  void Finish() override { stream_.Finish(); }
  void Reset() override { stream_.Reset(); }

  void Serialize(std::vector<std::uint8_t>* out) const override {
    const std::size_t start = out->size();
    serial::PutU32(kOperbStateMagic, out);
    serial::PutU8(kStateVersion, out);
    serial::PutF64(stream_.options().zeta, out);
    stream_.Serialize(out);
    AppendStateChecksum(start, out);
  }

  Status Deserialize(std::span<const std::uint8_t> in,
                     std::size_t* pos) override {
    const std::size_t start = *pos;
    OPERB_RETURN_IF_ERROR(CheckStateHeader(kOperbStateMagic, name_, in, pos));
    OPERB_RETURN_IF_ERROR(CheckStateZeta(stream_.options().zeta, in, pos));
    OPERB_RETURN_IF_ERROR(stream_.Deserialize(in, pos));
    return VerifyStateChecksum(in, start, pos);
  }

 private:
  std::string_view name_;
  core::OperbStream stream_;
};

/// One-pass wrapper over core::OperbAStream.
class OperbAStreaming final : public baselines::StreamingSimplifier {
 public:
  OperbAStreaming(std::string_view name, const core::OperbAOptions& options)
      : name_(name), stream_(options) {}

  std::string_view name() const override { return name_; }
  bool one_pass() const override { return true; }
  void SetSink(traj::SegmentSink sink) override {
    stream_.SetSink(std::move(sink));
  }
  void Push(const geo::Point& p) override { stream_.Push(p); }
  void Push(std::span<const geo::Point> points) override {
    stream_.Push(points);
  }
  void Finish() override { stream_.Finish(); }
  void Reset() override { stream_.Reset(); }

  void Serialize(std::vector<std::uint8_t>* out) const override {
    const std::size_t start = out->size();
    serial::PutU32(kOperbAStateMagic, out);
    serial::PutU8(kStateVersion, out);
    serial::PutF64(stream_.options().base.zeta, out);
    stream_.Serialize(out);
    AppendStateChecksum(start, out);
  }

  Status Deserialize(std::span<const std::uint8_t> in,
                     std::size_t* pos) override {
    const std::size_t start = *pos;
    OPERB_RETURN_IF_ERROR(CheckStateHeader(kOperbAStateMagic, name_, in, pos));
    OPERB_RETURN_IF_ERROR(
        CheckStateZeta(stream_.options().base.zeta, in, pos));
    OPERB_RETURN_IF_ERROR(stream_.Deserialize(in, pos));
    return VerifyStateChecksum(in, start, pos);
  }

 private:
  std::string_view name_;
  core::OperbAStream stream_;
};

/// Buffering adapter for the batch baselines: Push() accumulates the
/// trajectory (amortized; the buffer's capacity survives Reset, so a
/// pooled state stops allocating per point once warm), Finish() runs the
/// batch algorithm and forwards every segment to the sink in order.
class BufferedStreaming final : public baselines::StreamingSimplifier {
 public:
  BufferedStreaming(std::string_view name, FreeFunction fn, double zeta)
      : name_(name), fn_(fn), zeta_(zeta) {}

  std::string_view name() const override { return name_; }
  bool one_pass() const override { return false; }
  void SetSink(traj::SegmentSink sink) override { sink_ = std::move(sink); }
  void Push(const geo::Point& p) override {
    buffer_.AppendUnchecked(p);  // order is the caller's contract
  }
  void Push(std::span<const geo::Point> points) override {
    for (const geo::Point& p : points) buffer_.AppendUnchecked(p);
  }
  void Finish() override {
    if (buffer_.size() < 2) return;  // matches Simplifier::Simplify
    for (const traj::RepresentedSegment& s : fn_(buffer_, zeta_)) {
      if (sink_) sink_(s);
    }
  }
  void Reset() override { buffer_.clear(); }

  void Serialize(std::vector<std::uint8_t>* out) const override {
    const std::size_t start = out->size();
    serial::PutU32(kBufferedStateMagic, out);
    serial::PutU8(kStateVersion, out);
    serial::PutF64(zeta_, out);
    serial::PutU64(buffer_.size(), out);
    for (const geo::Point& p : buffer_.points()) {
      serial::PutF64(p.x, out);
      serial::PutF64(p.y, out);
      serial::PutF64(p.t, out);
    }
    AppendStateChecksum(start, out);
  }

  Status Deserialize(std::span<const std::uint8_t> in,
                     std::size_t* pos) override {
    const std::size_t start = *pos;
    OPERB_RETURN_IF_ERROR(
        CheckStateHeader(kBufferedStateMagic, name_, in, pos));
    OPERB_RETURN_IF_ERROR(CheckStateZeta(zeta_, in, pos));
    std::uint64_t count = 0;
    if (!serial::GetU64(in, pos, &count)) {
      return Status::Corruption("truncated buffered simplifier state");
    }
    buffer_.clear();
    for (std::uint64_t i = 0; i < count; ++i) {
      geo::Point p;
      if (!serial::GetF64(in, pos, &p.x) || !serial::GetF64(in, pos, &p.y) ||
          !serial::GetF64(in, pos, &p.t)) {
        return Status::Corruption("truncated buffered simplifier state");
      }
      buffer_.AppendUnchecked(p);
    }
    return VerifyStateChecksum(in, start, pos);
  }

 private:
  std::string_view name_;
  FreeFunction fn_;
  double zeta_;
  traj::SegmentSink sink_;
  traj::Trajectory buffer_;
};

// ---------------------------------------------------------------------
// Family registration blocks.
// ---------------------------------------------------------------------

traj::PiecewiseRepresentation SimplifyOpwEuclid(const traj::Trajectory& t,
                                                double zeta) {
  return baselines::SimplifyOpw(t, zeta, baselines::OpwDistance::kEuclidean);
}

traj::PiecewiseRepresentation SimplifyOpwSed(const traj::Trajectory& t,
                                             double zeta) {
  return baselines::SimplifyOpw(t, zeta, baselines::OpwDistance::kSynchronous);
}

/// Registers one function-style batch baseline: the batch side wraps the
/// free function directly, the streaming side buffers and runs it at
/// Finish() — exactly the pre-registry adapter pair.
void RegisterFunctionAlgorithm(AlgorithmRegistry& registry, const char* name,
                               const char* summary, FreeFunction fn) {
  AlgorithmRegistry::Entry entry;
  entry.name = name;
  entry.summary = summary;
  entry.one_pass = false;
  // The canonical name string in the Entry outlives every product (the
  // registry is append-only and process-lived), so adapters can hold a
  // view of it.
  entry.batch = [name, fn](const SimplifierSpec& spec) {
    return std::make_unique<FunctionSimplifier>(name, fn, spec.zeta);
  };
  entry.streaming = [name, fn](const SimplifierSpec& spec) {
    return std::make_unique<BufferedStreaming>(name, fn, spec.zeta);
  };
  OPERB_CHECK_MSG(registry.Register(std::move(entry)).ok(),
                  "builtin registration failed");
}

/// Spec -> core::OperbOptions, shared by the batch and streaming
/// factories of both OPERB variants (this is what keeps the two paths
/// configured identically). `optimized` selects Optimized()/Raw(); the
/// fidelity switch only applies to the optimized variant — Raw-OPERB has
/// no heuristics for the guard to guard (mirrors the legacy factories).
core::OperbOptions OperbOptionsFrom(const SimplifierSpec& spec,
                                    bool optimized) {
  core::OperbOptions o = optimized ? core::OperbOptions::Optimized(spec.zeta)
                                   : core::OperbOptions::Raw(spec.zeta);
  if (optimized) {
    o.strict_bound_guard =
        spec.fidelity == baselines::OperbFidelity::kGuarded;
  }
  o.step_length_factor = spec.Option("step_length", o.step_length_factor);
  o.activation_slack_factor =
      spec.Option("activation_slack", o.activation_slack_factor);
  return o;
}

core::OperbAOptions OperbAOptionsFrom(const SimplifierSpec& spec,
                                      bool optimized) {
  core::OperbAOptions o;
  o.base = OperbOptionsFrom(spec, optimized);
  o.gamma_m = spec.Option("gamma_m", o.gamma_m);
  o.max_patch_extension_zeta =
      spec.Option("max_patch_extension", o.max_patch_extension_zeta);
  return o;
}

void RegisterOperbVariant(AlgorithmRegistry& registry, const char* name,
                          const char* summary, bool optimized) {
  AlgorithmRegistry::Entry entry;
  entry.name = name;
  entry.summary = summary;
  entry.one_pass = true;
  entry.option_keys = {"step_length", "activation_slack"};
  entry.batch = [name, optimized](const SimplifierSpec& spec) {
    return std::make_unique<OperbSimplifier>(name,
                                             OperbOptionsFrom(spec, optimized));
  };
  entry.streaming = [name, optimized](const SimplifierSpec& spec) {
    return std::make_unique<OperbStreaming>(name,
                                            OperbOptionsFrom(spec, optimized));
  };
  entry.validate_options = [optimized](const SimplifierSpec& spec) {
    return OperbOptionsFrom(spec, optimized).Validate();
  };
  OPERB_CHECK_MSG(registry.Register(std::move(entry)).ok(),
                  "builtin registration failed");
}

void RegisterOperbAVariant(AlgorithmRegistry& registry, const char* name,
                           const char* summary, bool optimized) {
  AlgorithmRegistry::Entry entry;
  entry.name = name;
  entry.summary = summary;
  entry.one_pass = true;
  entry.option_keys = {"step_length", "activation_slack", "gamma_m",
                       "max_patch_extension"};
  entry.batch = [name, optimized](const SimplifierSpec& spec) {
    return std::make_unique<OperbASimplifier>(
        name, OperbAOptionsFrom(spec, optimized));
  };
  entry.streaming = [name, optimized](const SimplifierSpec& spec) {
    return std::make_unique<OperbAStreaming>(
        name, OperbAOptionsFrom(spec, optimized));
  };
  entry.validate_options = [optimized](const SimplifierSpec& spec) {
    return OperbAOptionsFrom(spec, optimized).Validate();
  };
  OPERB_CHECK_MSG(registry.Register(std::move(entry)).ok(),
                  "builtin registration failed");
}

}  // namespace

void RegisterBuiltinAlgorithms(AlgorithmRegistry& registry) {
  // Registration order == baselines::AllAlgorithms() == the order the
  // paper's figures list the algorithms.
  RegisterFunctionAlgorithm(registry, "DP",
                            "batch Douglas-Peucker, Euclidean distance",
                            &baselines::SimplifyDp);
  RegisterFunctionAlgorithm(registry, "DP-SED",
                            "top-down DP with synchronous Euclidean distance",
                            &baselines::SimplifyDpSed);
  RegisterFunctionAlgorithm(registry, "OPW",
                            "open-window online algorithm, Euclidean distance",
                            &SimplifyOpwEuclid);
  RegisterFunctionAlgorithm(registry, "OPW-SED",
                            "open window with synchronous Euclidean distance",
                            &SimplifyOpwSed);
  RegisterFunctionAlgorithm(registry, "BQS", "bounded quadrant system",
                            &baselines::SimplifyBqs);
  RegisterFunctionAlgorithm(registry, "FBQS", "fast (buffer-free) BQS",
                            &baselines::SimplifyFbqs);
  RegisterOperbVariant(registry, "Raw-OPERB",
                       "OPERB without the five optimizations (Figure 7)",
                       /*optimized=*/false);
  RegisterOperbVariant(registry, "OPERB",
                       "one-pass error-bounded simplification, optimized",
                       /*optimized=*/true);
  RegisterOperbAVariant(registry, "Raw-OPERB-A",
                        "Raw-OPERB plus patch-point interpolation",
                        /*optimized=*/false);
  RegisterOperbAVariant(registry, "OPERB-A",
                        "OPERB plus patch-point interpolation (aggressive)",
                        /*optimized=*/true);
}

}  // namespace operb::api
