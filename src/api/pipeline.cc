#include "api/pipeline.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "api/registry.h"
#include "baselines/streaming.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "traj/io.h"
#include "traj/piecewise.h"

namespace operb::api {

namespace {

/// Raw storage cost a trajectory point is charged against (three doubles),
/// the same constant codec::DeltaCompressionRatio uses.
constexpr double kRawBytesPerPoint = 24.0;

/// Pipeline-layer registry instruments — the cumulative counterpart of
/// PipelineReport (which stays the per-run API). Acquired once per
/// process, then lock-free.
struct PipelineMetrics {
  obs::Counter* runs;
  obs::Counter* points_in;
  obs::Counter* points_kept;
  obs::Counter* segments_out;
  obs::Counter* snapshots_written;
  obs::Counter* snapshot_failures;
  obs::LatencyHistogram* ingest_ns;
  obs::LatencyHistogram* clean_ns;
  obs::LatencyHistogram* simplify_ns;
  obs::LatencyHistogram* verify_ns;
  obs::LatencyHistogram* delta_ns;
  obs::LatencyHistogram* store_close_ns;
};

PipelineMetrics& GetPipelineMetrics() {
  static PipelineMetrics* const m = [] {
    auto& r = obs::MetricsRegistry::Global();
    return new PipelineMetrics{
        r.GetCounter("pipeline.runs"),
        r.GetCounter("pipeline.points_in"),
        r.GetCounter("pipeline.points_kept"),
        r.GetCounter("pipeline.segments_out"),
        r.GetCounter("pipeline.snapshots_written"),
        r.GetCounter("pipeline.snapshot_failures"),
        r.GetHistogram("pipeline.stage.ingest_ns"),
        r.GetHistogram("pipeline.stage.clean_ns"),
        r.GetHistogram("pipeline.stage.simplify_ns"),
        r.GetHistogram("pipeline.stage.verify_ns"),
        r.GetHistogram("pipeline.stage.delta_ns"),
        r.GetHistogram("pipeline.stage.store_close_ns"),
    };
  }();
  return *m;
}

/// Routes one snapshot write through the store's Env seam with the same
/// temp-file + rename discipline as a manifest commit or checkpoint, so
/// FaultInjectingEnv can fail it like any other durable write.
Status WriteSnapshotViaEnv(store::Env* env, const std::string& path,
                           std::string_view content) {
  const std::string tmp = path + ".tmp";
  OPERB_ASSIGN_OR_RETURN(std::unique_ptr<store::WritableFile> file,
                         env->NewWritableFile(tmp));
  const std::span<const std::uint8_t> bytes(
      reinterpret_cast<const std::uint8_t*>(content.data()), content.size());
  const Status written = [&] {
    OPERB_RETURN_IF_ERROR(file->Append(bytes));
    OPERB_RETURN_IF_ERROR(file->Flush());
    return file->Close();
  }();
  if (!written.ok()) {
    (void)env->Remove(tmp);
    return written;
  }
  const Status renamed = env->Rename(tmp, path);
  if (!renamed.ok()) {
    (void)env->Remove(tmp);
    return renamed;
  }
  return Status::OK();
}

/// MetricsSnapshots-stage write. Never fatal: a failure is logged to
/// stderr, counted (report + `pipeline.snapshot_failures`) and the run
/// continues — losing a telemetry file must not lose the ingest.
void WriteMetricsSnapshot(const std::string& path, store::Env* env,
                          PipelineReport* report) {
  obs::AtomicWriteFn write;  // default: obs::AtomicWriteFile
  if (env != nullptr) {
    write = [env](const std::string& p, std::string_view content) {
      return WriteSnapshotViaEnv(env, p, content);
    };
  }
  const Status s = obs::WriteSnapshotJson(path, {}, std::move(write));
  if (s.ok()) {
    ++report->snapshots_written;
    if constexpr (obs::kMetricsEnabled) {
      GetPipelineMetrics().snapshots_written->Increment();
    }
    return;
  }
  ++report->snapshot_failures;
  if constexpr (obs::kMetricsEnabled) {
    GetPipelineMetrics().snapshot_failures->Increment();
  }
  std::fprintf(stderr, "operb: metrics snapshot to %s failed: %s\n",
               path.c_str(), s.ToString().c_str());
}

/// Folds the run's headline counters into the registry once the report
/// is final.
void FoldRunCounters(const PipelineReport& report) {
  if constexpr (obs::kMetricsEnabled) {
    PipelineMetrics& m = GetPipelineMetrics();
    m.runs->Increment();
    m.points_in->Add(report.points_in);
    m.points_kept->Add(report.points_kept);
    m.segments_out->Add(report.segments);
  }
}

}  // namespace

// ---------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------

Status Pipeline::Builder::SetSource(Source source) {
  if (source_ != Source::kNone && source_error_.ok()) {
    source_error_ = Status::InvalidArgument(
        "pipeline has more than one ingest source; call exactly one "
        "From*() method");
  }
  source_ = source;
  return Status::OK();
}

Pipeline::Builder& Pipeline::Builder::FromTrajectory(
    traj::Trajectory trajectory) {
  SetSource(Source::kTrajectory);
  trajectory_ = std::move(trajectory);
  return *this;
}

Pipeline::Builder& Pipeline::Builder::FromCsvFile(std::string path) {
  SetSource(Source::kCsvFile);
  path_or_content_ = std::move(path);
  return *this;
}

Pipeline::Builder& Pipeline::Builder::FromCsv(std::string content) {
  SetSource(Source::kCsvContent);
  path_or_content_ = std::move(content);
  return *this;
}

Pipeline::Builder& Pipeline::Builder::FromPltFile(std::string path) {
  SetSource(Source::kPltFile);
  path_or_content_ = std::move(path);
  return *this;
}

Pipeline::Builder& Pipeline::Builder::FromUpdates(
    std::vector<traj::ObjectUpdate> updates) {
  SetSource(Source::kUpdates);
  updates_ = std::move(updates);
  return *this;
}

Pipeline::Builder& Pipeline::Builder::FromMultiObjectCsvFile(
    std::string path) {
  SetSource(Source::kMultiCsvFile);
  path_or_content_ = std::move(path);
  return *this;
}

Pipeline::Builder& Pipeline::Builder::Clean(traj::CleanerOptions options) {
  clean_ = true;
  cleaner_options_ = options;
  return *this;
}

Pipeline::Builder& Pipeline::Builder::Simplify(SimplifierSpec spec) {
  have_spec_ = true;
  have_spec_string_ = false;
  spec_ = std::move(spec);
  return *this;
}

Pipeline::Builder& Pipeline::Builder::Simplify(std::string_view spec_string) {
  have_spec_ = true;
  have_spec_string_ = true;  // parsed at Build(); "" must fail there, not
                             // silently fall back to an earlier spec
  spec_string_ = std::string(spec_string);
  return *this;
}

Pipeline::Builder& Pipeline::Builder::Verify(double slack) {
  verify_ = true;
  verify_slack_ = slack;
  return *this;
}

Pipeline::Builder& Pipeline::Builder::DeltaEncode(
    codec::DeltaCodecOptions options) {
  delta_ = true;
  delta_options_ = options;
  return *this;
}

Pipeline::Builder& Pipeline::Builder::WriteStore(
    std::string path, store::StoreWriterOptions options) {
  write_store_ = true;
  store_path_ = std::move(path);
  store_options_ = options;
  return *this;
}

Pipeline::Builder& Pipeline::Builder::Engine(
    engine::StreamEngineOptions options) {
  use_engine_ = true;
  engine_options_ = std::move(options);
  return *this;
}

Pipeline::Builder& Pipeline::Builder::ToSink(engine::TaggedSegmentSink sink) {
  sink_ = std::move(sink);
  return *this;
}

Pipeline::Builder& Pipeline::Builder::Checkpoint(std::string path,
                                                 std::size_t every_n_points,
                                                 store::Env* env) {
  checkpoint_path_ = std::move(path);
  checkpoint_every_ = every_n_points;
  checkpoint_env_ = env;
  return *this;
}

Pipeline::Builder& Pipeline::Builder::MetricsSnapshots(std::string path,
                                                       std::size_t every_n_points,
                                                       store::Env* env) {
  metrics_ = true;
  metrics_path_ = std::move(path);
  metrics_every_ = every_n_points;
  metrics_env_ = env;
  return *this;
}

Pipeline::Builder& Pipeline::Builder::ResumeFrom(std::string path) {
  resume_path_ = std::move(path);
  return *this;
}

Result<Pipeline> Pipeline::Builder::Build() {
  if (!source_error_.ok()) return source_error_;
  if (source_ == Source::kNone) {
    return Status::InvalidArgument(
        "pipeline has no ingest source; call one of the From*() methods");
  }
  if (!have_spec_) {
    return Status::InvalidArgument(
        "pipeline has no simplifier; call Simplify(spec)");
  }
  if (have_spec_string_) {
    OPERB_ASSIGN_OR_RETURN(spec_, SimplifierSpec::Parse(spec_string_));
    have_spec_string_ = false;
    spec_string_.clear();
  }
  OPERB_RETURN_IF_ERROR(AlgorithmRegistry::Global().Validate(spec_));
  if (metrics_ && metrics_path_.empty()) {
    return Status::InvalidArgument(
        "MetricsSnapshots needs a non-empty path");
  }
  const bool multi_source =
      source_ == Source::kUpdates || source_ == Source::kMultiCsvFile;
  // Checkpoint/resume are engine features: the snapshot is of engine
  // shard state, so either stage routes the run through the engine.
  // Periodic (every_n > 0) metrics snapshots need the chunked ingest
  // loop, which also lives on the engine path.
  if (use_engine_ || multi_source || !checkpoint_path_.empty() ||
      !resume_path_.empty() || (metrics_ && metrics_every_ > 0)) {
    use_engine_ = true;
    engine_options_.spec = spec_;
    OPERB_RETURN_IF_ERROR(engine_options_.Validate());
  }
  if (!resume_path_.empty()) {
    // A resumed run only sees the stream's remainder; stages that need
    // the full original stream would silently mis-report on the tail.
    if (clean_) {
      return Status::InvalidArgument(
          "ResumeFrom cannot be combined with Clean: cleaner state is not "
          "part of an engine checkpoint, so the tail would be cleaned "
          "against a fresh history");
    }
    if (verify_) {
      return Status::InvalidArgument(
          "ResumeFrom cannot be combined with Verify: verification needs "
          "the full original stream, a resumed run only has its tail");
    }
    if (write_store_) {
      return Status::InvalidArgument(
          "ResumeFrom cannot be combined with WriteStore: stored time "
          "annotations index into the full original stream, a resumed run "
          "only has its tail");
    }
  }
  if (verify_ && !(verify_slack_ >= 0.0)) {
    return Status::InvalidArgument("verify slack must be >= 0");
  }
  if (write_store_) {
    if (store_path_.empty()) {
      return Status::InvalidArgument("WriteStore needs a non-empty path");
    }
    // The stored zeta is the bound the segments are simplified under —
    // anything else would certify an error margin the data doesn't have.
    store_options_.zeta = spec_.zeta;
    OPERB_RETURN_IF_ERROR(store_options_.Validate());
  }
  return Pipeline(std::move(*this));
}

// ---------------------------------------------------------------------
// Run
// ---------------------------------------------------------------------

Result<PipelineReport> Pipeline::Run() {
  if (ran_) {
    return Status::InvalidArgument(
        "Pipeline::Run() may only be called once (the input was consumed)");
  }
  ran_ = true;
  return config_.use_engine_ ? RunEngine() : RunSingle();
}

Result<PipelineReport> Pipeline::RunSingle() {
  Builder& cfg = config_;
  // With a Clean() stage, CSV sources are parsed as *raw* points — the
  // validating parser would reject the very rows the cleaner exists to
  // repair. (PLT parsing derives timestamps while projecting and stays
  // validating; a corrupt .plt is a Corruption, not a cleanable stream.)
  std::vector<geo::Point> raw;
  traj::Trajectory input;
  {
    obs::ScopedTimer ingest_timer(
        obs::kMetricsEnabled ? GetPipelineMetrics().ingest_ns : nullptr);
    switch (cfg.source_) {
      case Builder::Source::kTrajectory:
        input = std::move(cfg.trajectory_);
        break;
      case Builder::Source::kCsvFile: {
        if (cfg.clean_) {
          OPERB_ASSIGN_OR_RETURN(raw,
                                 traj::ReadCsvPoints(cfg.path_or_content_));
        } else {
          OPERB_ASSIGN_OR_RETURN(input, traj::ReadCsv(cfg.path_or_content_));
        }
        break;
      }
      case Builder::Source::kCsvContent: {
        if (cfg.clean_) {
          OPERB_ASSIGN_OR_RETURN(raw,
                                 traj::ParseCsvPoints(cfg.path_or_content_));
        } else {
          OPERB_ASSIGN_OR_RETURN(input,
                                 traj::ParseCsv(cfg.path_or_content_));
        }
        break;
      }
      case Builder::Source::kPltFile: {
        OPERB_ASSIGN_OR_RETURN(input,
                               traj::ReadGeoLifePlt(cfg.path_or_content_));
        break;
      }
      default:
        return Status::Internal(
            "single-path Run with a multi-object source");
    }
  }

  PipelineReport report;
  report.spec = cfg.spec_.ToString();
  report.objects = 1;

  traj::Trajectory cleaned;
  if (cfg.clean_) {
    obs::ScopedTimer clean_timer(
        obs::kMetricsEnabled ? GetPipelineMetrics().clean_ns : nullptr);
    if (raw.empty()) raw = input.points();  // trajectory / PLT sources
    report.points_in = raw.size();
    traj::StreamCleaner cleaner(cfg.cleaner_options_);
    cleaned = cleaner.CleanAll(raw);
    report.cleaner = cleaner.stats();
  } else {
    report.points_in = input.size();
    if (const Status s = input.Validate(); !s.ok()) {
      return Status::InvalidArgument(
          s.message() +
          " (timestamps must be strictly increasing; add a Clean() stage "
          "to repair raw sensor streams)");
    }
    cleaned = std::move(input);
  }
  report.points_kept = cleaned.size();

  OPERB_ASSIGN_OR_RETURN(
      const std::unique_ptr<baselines::StreamingSimplifier> simplifier,
      AlgorithmRegistry::Global().MakeStreaming(cfg.spec_));

  // Store stage: segments stream into the writer the moment they are
  // determined, annotated with the timestamps of the covered points.
  std::unique_ptr<store::StoreWriter> store_writer;
  if (cfg.write_store_) {
    OPERB_ASSIGN_OR_RETURN(
        store_writer,
        store::StoreWriter::Create(cfg.store_path_, cfg.store_options_));
  }

  traj::PiecewiseRepresentation rep;  // kept only for the verify stage
  const bool keep_rep = cfg.verify_;
  simplifier->SetSink([&](const traj::RepresentedSegment& s) {
    ++report.segments;
    if (keep_rep) rep.Append(s);
    if (store_writer != nullptr) {
      store_writer->Append({traj::ObjectId{0}, s,
                            cleaned[s.first_index].t,
                            cleaned[s.last_index].t});
    }
    if (cfg.sink_) {
      cfg.sink_(traj::ObjectId{0}, s);
    } else {
      report.segments_out.push_back({traj::ObjectId{0}, s});
    }
  });

  // The one-pass algorithms emit with <2 points pushed nothing at all;
  // skipping the push entirely mirrors Simplifier::Simplify's contract
  // for the buffering baselines too.
  Stopwatch watch;
  {
    obs::TraceSpan span("pipeline.simplify");
    obs::ScopedTimer simplify_timer(
        obs::kMetricsEnabled ? GetPipelineMetrics().simplify_ns : nullptr);
    if (cleaned.size() >= 2) {
      simplifier->Push(std::span<const geo::Point>(cleaned.points()));
      simplifier->Finish();
    }
  }
  report.simplify_seconds = watch.ElapsedSeconds();

  if (store_writer != nullptr) {
    obs::ScopedTimer close_timer(
        obs::kMetricsEnabled ? GetPipelineMetrics().store_close_ns
                             : nullptr);
    OPERB_RETURN_IF_ERROR(store_writer->Close());
    report.store_ran = true;
    report.store_path = cfg.store_path_;
    report.store_stats = store_writer->stats();
  }

  if (cfg.verify_) {
    obs::ScopedTimer verify_timer(
        obs::kMetricsEnabled ? GetPipelineMetrics().verify_ns : nullptr);
    report.verify_ran = true;
    const eval::VerificationResult verdict = eval::VerifyErrorBound(
        cleaned, rep, cfg.spec_.zeta, cfg.verify_slack_);
    report.verified = verdict.bounded;
    report.bound_violations = verdict.bounded ? 0 : 1;
    report.worst_distance = verdict.worst_distance;
  }

  if (cfg.delta_) {
    obs::ScopedTimer delta_timer(
        obs::kMetricsEnabled ? GetPipelineMetrics().delta_ns : nullptr);
    report.delta_bytes =
        codec::DeltaEncode(cleaned, cfg.delta_options_).size();
    report.delta_ratio =
        cleaned.empty() ? 0.0
                        : static_cast<double>(report.delta_bytes) /
                              (kRawBytesPerPoint *
                               static_cast<double>(cleaned.size()));
  }

  FoldRunCounters(report);
  if (cfg.metrics_) {
    // Fold first so the final snapshot already carries this run.
    report.metrics_ran = true;
    report.metrics_path = cfg.metrics_path_;
    WriteMetricsSnapshot(cfg.metrics_path_, cfg.metrics_env_, &report);
  }
  return report;
}

Result<PipelineReport> Pipeline::RunEngine() {
  Builder& cfg = config_;
  std::vector<traj::ObjectUpdate> updates;
  {
    obs::ScopedTimer ingest_timer(
        obs::kMetricsEnabled ? GetPipelineMetrics().ingest_ns : nullptr);
    switch (cfg.source_) {
      case Builder::Source::kUpdates:
        updates = std::move(cfg.updates_);
        break;
      case Builder::Source::kMultiCsvFile: {
        OPERB_ASSIGN_OR_RETURN(
            updates, traj::ReadMultiObjectCsv(cfg.path_or_content_));
        break;
      }
      case Builder::Source::kTrajectory: {
        updates.reserve(cfg.trajectory_.size());
        for (const geo::Point& p : cfg.trajectory_) updates.push_back({0, p});
        break;
      }
      case Builder::Source::kCsvFile:
      case Builder::Source::kCsvContent:
      case Builder::Source::kPltFile: {
        traj::Trajectory t;
        if (cfg.source_ == Builder::Source::kCsvFile) {
          OPERB_ASSIGN_OR_RETURN(t, traj::ReadCsv(cfg.path_or_content_));
        } else if (cfg.source_ == Builder::Source::kCsvContent) {
          OPERB_ASSIGN_OR_RETURN(t, traj::ParseCsv(cfg.path_or_content_));
        } else {
          OPERB_ASSIGN_OR_RETURN(t,
                                 traj::ReadGeoLifePlt(cfg.path_or_content_));
        }
        updates.reserve(t.size());
        for (const geo::Point& p : t) updates.push_back({0, p});
        break;
      }
      case Builder::Source::kNone:
        return Status::Internal("engine-path Run without a source");
    }
  }

  PipelineReport report;
  report.spec = cfg.spec_.ToString();
  report.used_engine = true;
  report.points_in = updates.size();

  if (cfg.clean_) {
    obs::ScopedTimer clean_timer(
        obs::kMetricsEnabled ? GetPipelineMetrics().clean_ns : nullptr);
    // Cleaning is a per-stream repair: one cleaner per object id.
    std::unordered_map<traj::ObjectId, traj::StreamCleaner> cleaners;
    std::vector<traj::ObjectUpdate> kept;
    kept.reserve(updates.size());
    for (const traj::ObjectUpdate& u : updates) {
      auto it = cleaners.try_emplace(u.object_id, cfg.cleaner_options_).first;
      if (it->second.Push(u.point).has_value()) kept.push_back(u);
    }
    for (const auto& [id, cleaner] : cleaners) {
      const traj::CleanerStats& s = cleaner.stats();
      report.cleaner.accepted += s.accepted;
      report.cleaner.duplicates_dropped += s.duplicates_dropped;
      report.cleaner.out_of_order_dropped += s.out_of_order_dropped;
      report.cleaner.outliers_dropped += s.outliers_dropped;
    }
    updates = std::move(kept);
  }
  report.points_kept = updates.size();

  // Grouping validates per-object timestamp monotonicity *before* the
  // engine trusts it, and supplies the originals for verification and
  // delta encoding.
  OPERB_ASSIGN_OR_RETURN(
      const std::vector<traj::ObjectTrajectory> grouped,
      traj::GroupUpdatesByObject(
          std::span<const traj::ObjectUpdate>(updates)));
  report.objects = grouped.size();

  // Store stage: writer created up front so segments stream into it from
  // the worker threads (Append is thread-safe; per-object order is the
  // engine's determinism contract). Times come from the grouped
  // originals, which the sink reads concurrently but never mutates.
  std::unique_ptr<store::StoreWriter> store_writer;
  std::unordered_map<traj::ObjectId, const traj::Trajectory*> originals;
  if (cfg.write_store_) {
    OPERB_ASSIGN_OR_RETURN(
        store_writer,
        store::StoreWriter::Create(cfg.store_path_, cfg.store_options_));
    originals.reserve(grouped.size());
    for (const traj::ObjectTrajectory& obj : grouped) {
      originals.emplace(obj.object_id, &obj.trajectory);
    }
  }

  // Collect when the report keeps the segments or verification needs
  // them; forward to the user sink either way.
  const bool collect = !cfg.sink_ || cfg.verify_;
  std::mutex mu;
  std::vector<traj::TaggedSegment> collected;
  engine::TaggedSegmentSink engine_sink;
  if (collect && cfg.sink_) {
    engine_sink = [&](traj::ObjectId id, const traj::RepresentedSegment& s) {
      cfg.sink_(id, s);
      const std::lock_guard<std::mutex> lock(mu);
      collected.push_back({id, s});
    };
  } else if (collect) {
    engine_sink = [&](traj::ObjectId id, const traj::RepresentedSegment& s) {
      const std::lock_guard<std::mutex> lock(mu);
      collected.push_back({id, s});
    };
  } else {
    engine_sink = cfg.sink_;
  }
  if (store_writer != nullptr) {
    engine_sink = [&originals, &store_writer,
                   inner = std::move(engine_sink)](
                      traj::ObjectId id,
                      const traj::RepresentedSegment& s) {
      const traj::Trajectory& original = *originals.at(id);
      store_writer->Append(
          {id, s, original[s.first_index].t, original[s.last_index].t});
      if (inner) inner(id, s);
    };
  }

  std::unique_ptr<engine::StreamEngine> eng;
  if (!cfg.resume_path_.empty()) {
    OPERB_ASSIGN_OR_RETURN(
        eng, engine::StreamEngine::CreateFromCheckpoint(
                 cfg.resume_path_, cfg.engine_options_,
                 std::move(engine_sink)));
    report.resumed = true;
  } else {
    OPERB_ASSIGN_OR_RETURN(eng,
                           engine::StreamEngine::Create(
                               cfg.engine_options_, std::move(engine_sink)));
  }
  Stopwatch watch;
  {
    obs::TraceSpan span("pipeline.simplify");
    obs::ScopedTimer simplify_timer(
        obs::kMetricsEnabled ? GetPipelineMetrics().simplify_ns : nullptr);
    const bool do_checkpoint = !cfg.checkpoint_path_.empty();
    const std::size_t snap_every = cfg.metrics_ ? cfg.metrics_every_ : 0;
    if (do_checkpoint || snap_every > 0) {
      // Chunked ingest with a durable write at every cadence boundary.
      // Checkpoints keep their historical contract (every_n == 0: one
      // chunk covering everything, one snapshot after it; a trailing
      // partial chunk still checkpoints — each Checkpoint() is a drain
      // barrier, so the written state is exactly "after this prefix").
      // Metrics snapshots fire after each chunk of metrics_every_
      // updates. With both stages on, each Push covers the distance to
      // the nearer boundary, so neither cadence disturbs the other.
      const std::size_t cp_chunk = cfg.checkpoint_every_ == 0
                                       ? updates.size()
                                       : cfg.checkpoint_every_;
      std::span<const traj::ObjectUpdate> rest(updates);
      std::size_t cp_due = cp_chunk;
      std::size_t snap_due = snap_every;
      do {
        std::size_t take = rest.size();
        if (do_checkpoint) take = std::min(take, cp_due);
        if (snap_every > 0) take = std::min(take, snap_due);
        if (take > 0) eng->Push(rest.first(take));
        rest = rest.subspan(take);
        if (do_checkpoint) {
          cp_due -= take;
          if (cp_due == 0 || rest.empty()) {
            OPERB_RETURN_IF_ERROR(
                eng->Checkpoint(cfg.checkpoint_path_, cfg.checkpoint_env_));
            ++report.checkpoints_written;
            cp_due = cp_chunk;
          }
        }
        if (snap_every > 0) {
          snap_due -= take;
          if (snap_due == 0) {
            WriteMetricsSnapshot(cfg.metrics_path_, cfg.metrics_env_,
                                 &report);
            snap_due = snap_every;
          }
        }
      } while (!rest.empty());
      if (do_checkpoint) {
        report.checkpointed = true;
        report.checkpoint_path = cfg.checkpoint_path_;
      }
    } else {
      eng->Push(std::span<const traj::ObjectUpdate>(updates));
    }
    eng->Close();
  }
  report.simplify_seconds = watch.ElapsedSeconds();
  report.engine_stats = eng->stats();
  report.segments = static_cast<std::size_t>(report.engine_stats.segments);

  if (store_writer != nullptr) {
    obs::ScopedTimer close_timer(
        obs::kMetricsEnabled ? GetPipelineMetrics().store_close_ns
                             : nullptr);
    OPERB_RETURN_IF_ERROR(store_writer->Close());
    report.store_ran = true;
    report.store_path = cfg.store_path_;
    report.store_stats = store_writer->stats();
  }

  if (collect) {
    // Per-object order is emission order already; a stable sort by id
    // groups objects into contiguous runs without disturbing it.
    std::stable_sort(collected.begin(), collected.end(),
                     [](const traj::TaggedSegment& a,
                        const traj::TaggedSegment& b) {
                       return a.object_id < b.object_id;
                     });
  }

  if (cfg.verify_) {
    obs::ScopedTimer verify_timer(
        obs::kMetricsEnabled ? GetPipelineMetrics().verify_ns : nullptr);
    report.verify_ran = true;
    report.verified = true;
    // `collected` is sorted by id: walk each object's contiguous run.
    std::unordered_map<traj::ObjectId, std::pair<std::size_t, std::size_t>>
        runs;
    for (std::size_t j = 0; j < collected.size();) {
      std::size_t k = j;
      while (k < collected.size() &&
             collected[k].object_id == collected[j].object_id) {
        ++k;
      }
      runs.emplace(collected[j].object_id, std::make_pair(j, k));
      j = k;
    }
    for (const traj::ObjectTrajectory& obj : grouped) {
      if (obj.trajectory.size() < 2) continue;  // empty output by contract
      traj::PiecewiseRepresentation rep;
      if (const auto it = runs.find(obj.object_id); it != runs.end()) {
        for (std::size_t j = it->second.first; j < it->second.second; ++j) {
          rep.Append(collected[j].segment);
        }
      }
      const eval::VerificationResult verdict = eval::VerifyErrorBound(
          obj.trajectory, rep, cfg.spec_.zeta, cfg.verify_slack_);
      if (!verdict.bounded) {
        report.verified = false;
        ++report.bound_violations;
      }
      report.worst_distance =
          std::max(report.worst_distance, verdict.worst_distance);
    }
  }

  if (cfg.delta_) {
    obs::ScopedTimer delta_timer(
        obs::kMetricsEnabled ? GetPipelineMetrics().delta_ns : nullptr);
    for (const traj::ObjectTrajectory& obj : grouped) {
      report.delta_bytes +=
          codec::DeltaEncode(obj.trajectory, cfg.delta_options_).size();
    }
    report.delta_ratio =
        updates.empty() ? 0.0
                        : static_cast<double>(report.delta_bytes) /
                              (kRawBytesPerPoint *
                               static_cast<double>(updates.size()));
  }

  if (!cfg.sink_) report.segments_out = std::move(collected);

  FoldRunCounters(report);
  if (cfg.metrics_) {
    // Fold first so the final snapshot already carries this run; the
    // final snapshot is written on both cadences (with every_n > 0 it
    // supersedes the last periodic one at the same path).
    report.metrics_ran = true;
    report.metrics_path = cfg.metrics_path_;
    WriteMetricsSnapshot(cfg.metrics_path_, cfg.metrics_env_, &report);
  }
  return report;
}

}  // namespace operb::api
