#include "store/compactor.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "store/segment_file.h"
#include "store/store_metrics.h"

namespace operb::store {

namespace fs = std::filesystem;

namespace {

/// Staging name a shard merge writes to before the commit renames it to
/// its final SegmentFileName (the final name embeds the committing
/// generation, unknown until the commit lock is re-taken). Ends in
/// ".seg" so a crash's leftover is swept by orphan GC and a fresh
/// writer's start-over wipe; the "cmp-" prefix keeps it out of the
/// writer's "seg-" namespace.
std::string CompactionTempName(std::uint32_t shard,
                               std::uint64_t snapshot_generation) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "cmp-%05u-g%06llu.seg", shard,
                static_cast<unsigned long long>(snapshot_generation));
  return buf;
}

/// Folds a finished pass's stats into the registry — the cumulative
/// counterpart of the CompactionStats the caller gets back.
void FoldCompactionStats(const CompactionStats& s) {
  if constexpr (obs::kMetricsEnabled) {
    StoreWriteMetrics& m = GetStoreWriteMetrics();
    m.compaction_passes->Increment();
    m.compaction_bytes_read->Add(s.bytes_read);
    m.compaction_bytes_written->Add(s.bytes_written);
    m.compaction_segments_rewritten->Add(s.segments_rewritten);
    m.compaction_write_amp_milli->Observe(
        static_cast<std::int64_t>(s.write_amplification * 1000.0));
  }
}

}  // namespace

Compactor::Compactor(std::string dir, const CompactionOptions& options)
    : dir_(std::move(dir)), options_(options),
      env_(ResolveEnv(options.env)) {}

bool Compactor::NeedsCompaction(const Manifest& manifest,
                                std::uint32_t shard) {
  // Only sealed files are merge candidates — an active file may still be
  // growing under a live writer. A shard warrants a rewrite when its
  // sealed set is fragmented (more than one file) or still in the
  // streaming layout (level 0: frames sealed by the write-path budget,
  // not re-blocked densely).
  std::size_t sealed = 0;
  bool level0 = false;
  for (const SegmentFileInfo& f : manifest.files) {
    if (f.shard != shard || !f.sealed) continue;
    ++sealed;
    if (f.level == 0) level0 = true;
  }
  return sealed > 1 || (sealed == 1 && level0);
}

void Compactor::RemoveOrphans(const Manifest& manifest,
                              CompactionStats* stats) {
  std::unordered_set<std::string> live;
  for (const SegmentFileInfo& f : manifest.files) live.insert(f.name);
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name == kManifestFileName || name == kManifestTempFileName) continue;
    if (!IsStoreFileName(name) || live.count(name) != 0) continue;
    if (env_->Remove(entry.path().string()).ok()) ++stats->orphans_removed;
  }
}

Status Compactor::CompactShardPass(std::uint32_t shard, bool force,
                                   CompactionStats* stats) {
  // Phase 1 — snapshot, under the commit lock: the shard's sealed files
  // in manifest (= per-object emission) order. Sealed files are
  // immutable and only a compactor ever removes one — and at most one
  // compactor runs per store — so the snapshot stays valid while the
  // merge below runs unlocked.
  std::vector<SegmentFileInfo> inputs;
  std::uint32_t max_level = 0;
  std::uint64_t snapshot_generation = 0;
  double zeta = 0.0;
  std::size_t budget = options_.block_budget_bytes;
  {
    const std::lock_guard<std::mutex> lock(ManifestCommitMutex(dir_));
    OPERB_ASSIGN_OR_RETURN(const Manifest manifest, ReadManifest(dir_));
    if (shard >= manifest.num_shards ||
        (!force && !NeedsCompaction(manifest, shard))) {
      return Status::OK();
    }
    for (const SegmentFileInfo& f : manifest.files) {
      if (f.shard != shard || !f.sealed) continue;
      inputs.push_back(f);
      max_level = std::max(max_level, f.level);
    }
    snapshot_generation = manifest.generation;
    zeta = manifest.zeta;
    if (budget == 0) {
      budget = static_cast<std::size_t>(manifest.block_budget_bytes);
    }
  }
  if (inputs.empty()) return Status::OK();
  if (budget < 1024) budget = 64 * 1024;

  // Phase 2 — merge, outside the lock, so append sessions (the writer's
  // Create/Close commits) never stall behind a shard rewrite. Drain the
  // inputs in snapshot order — per object that is emission order — into
  // an id-keyed map and rewrite through one writer, objects ascending.
  // NOTE: this materializes the shard's full decoded segment set; see
  // the memory caveat on the class.
  std::map<traj::ObjectId, std::vector<traj::TimedSegment>> merged;
  std::uint64_t segments_in = 0;
  std::uint64_t blocks_in = 0;
  std::uint64_t bytes_read = 0;
  for (const SegmentFileInfo& input : inputs) {
    const std::string path = (fs::path(dir_) / input.name).string();
    OPERB_ASSIGN_OR_RETURN(const std::unique_ptr<SegmentFileReader> reader,
                           SegmentFileReader::Open(path));
    bytes_read += reader->file_bytes();
    blocks_in += reader->blocks().size();
    for (std::size_t b = 0; b < reader->blocks().size(); ++b) {
      OPERB_ASSIGN_OR_RETURN(const std::vector<traj::TimedSegment> segments,
                             reader->ReadBlock(b));
      for (const traj::TimedSegment& s : segments) {
        merged[s.object_id].push_back(s);
        ++segments_in;
      }
    }
  }

  // The output is staged under a temp name, fully written and flushed
  // before the commit below — a crash on either side of the commit
  // leaves a consistent store (old generation + orphan, or new
  // generation). An error path that abandons the temp file leaves an
  // orphan the next pass GC's.
  const fs::path tmp_path =
      fs::path(dir_) / CompactionTempName(shard, snapshot_generation);
  std::uint64_t bytes_written = 0;
  std::uint64_t blocks_out = 0;
  {
    OPERB_ASSIGN_OR_RETURN(
        const std::unique_ptr<SegmentFileWriter> writer,
        SegmentFileWriter::Create(tmp_path.string(), zeta, budget, env_));
    for (const auto& [id, segments] : merged) {
      for (const traj::TimedSegment& s : segments) {
        OPERB_RETURN_IF_ERROR(writer->Append(s));
      }
    }
    OPERB_RETURN_IF_ERROR(writer->Close());
    bytes_written = writer->stats().file_bytes;
    blocks_out = writer->stats().blocks;
  }

  // Phase 3 — commit, under the lock: validate the snapshot still
  // holds, give the output its final name, and swap it for the inputs
  // in one manifest generation.
  const std::lock_guard<std::mutex> lock(ManifestCommitMutex(dir_));
  const Result<Manifest> current = ReadManifest(dir_);
  if (!current.ok()) {
    (void)env_->Remove(tmp_path.string());
    return current.status();
  }

  std::unordered_set<std::string> input_names;
  for (const SegmentFileInfo& input : inputs) input_names.insert(input.name);
  std::size_t first_input_pos = current->files.size();
  std::size_t inputs_live = 0;
  for (std::size_t i = 0; i < current->files.size(); ++i) {
    const SegmentFileInfo& f = current->files[i];
    if (input_names.count(f.name) == 0) continue;
    if (f.shard == shard && f.sealed) ++inputs_live;
    first_input_pos = std::min(first_input_pos, i);
  }
  if (shard >= current->num_shards || inputs_live != inputs.size()) {
    // The store was re-created out from under the merge — the only way
    // a sealed file disappears besides this compactor. The inputs' data
    // is gone by that writer's decision, not ours to resurrect: abandon
    // the merge without committing.
    (void)env_->Remove(tmp_path.string());
    return Status::OK();
  }

  Manifest next = *current;
  next.generation = current->generation + 1;
  // Generations are unique across commits and segment files are only
  // ever created while this lock is held, so the final name cannot
  // collide with a live file (a same-named orphan from a pre-crash run
  // is dead and safe to replace).
  const std::string out_name = SegmentFileName(shard, next.generation);
  const Status renamed =
      env_->Rename(tmp_path.string(), (fs::path(dir_) / out_name).string());
  if (!renamed.ok()) {
    (void)env_->Remove(tmp_path.string());
    return Status::IOError("cannot rename " + tmp_path.string() + " to " +
                           out_name);
  }

  SegmentFileInfo out_info;
  out_info.shard = shard;
  out_info.level = max_level + 1;
  out_info.sealed = true;
  out_info.name = out_name;

  // The output replaces the inputs at the position of the *first*
  // input, not at the end: the manifest's per-shard oldest-first order
  // is what readers replay to keep each object's segments in emission
  // order, and the inputs — all sealed — predate every active file and
  // every file a session added after the snapshot. Appending instead
  // would replay an object's compacted (older) segments after segments
  // a session sealed mid-merge.
  std::vector<std::string> obsolete;
  std::vector<SegmentFileInfo> kept;
  kept.reserve(next.files.size() - inputs.size() + 1);
  for (std::size_t i = 0; i < next.files.size(); ++i) {
    if (i == first_input_pos) kept.push_back(out_info);
    if (input_names.count(next.files[i].name) != 0) {
      obsolete.push_back(next.files[i].name);
    } else {
      kept.push_back(next.files[i]);
    }
  }
  next.files = std::move(kept);
  OPERB_RETURN_IF_ERROR(WriteManifest(dir_, next, env_));

  // Old inputs are dead to every future open; unlink them. Readers that
  // already hold the files keep them alive via their descriptors.
  // Failures leave orphans the next pass GC's.
  for (const std::string& name : obsolete) {
    (void)env_->Remove((fs::path(dir_) / name).string());
  }

  ++stats->shards_compacted;
  ++stats->generations_committed;
  stats->files_before += inputs.size();
  stats->files_after += 1;
  stats->blocks_before += blocks_in;
  stats->blocks_after += blocks_out;
  stats->segments_rewritten += segments_in;
  stats->bytes_read += bytes_read;
  stats->bytes_written += bytes_written;
  return Status::OK();
}

Result<CompactionStats> Compactor::Run() {
  obs::ScopedTimer pass_timer(obs::kMetricsEnabled
                                  ? GetStoreWriteMetrics().compaction_pass_ns
                                  : nullptr);
  obs::TraceSpan span("store.compaction.run");
  CompactionStats stats;
  std::uint32_t num_shards = 0;
  {
    const std::lock_guard<std::mutex> lock(ManifestCommitMutex(dir_));
    OPERB_ASSIGN_OR_RETURN(const Manifest manifest, ReadManifest(dir_));
    RemoveOrphans(manifest, &stats);
    num_shards = manifest.num_shards;
  }
  for (std::uint32_t shard = 0; shard < num_shards; ++shard) {
    ++stats.shards_examined;
    OPERB_RETURN_IF_ERROR(CompactShardPass(shard, /*force=*/false, &stats));
  }
  if (stats.bytes_read > 0) {
    stats.write_amplification = static_cast<double>(stats.bytes_written) /
                                static_cast<double>(stats.bytes_read);
  }
  FoldCompactionStats(stats);
  return stats;
}

Result<CompactionStats> Compactor::CompactShard(std::uint32_t shard) {
  CompactionStats stats;
  {
    const std::lock_guard<std::mutex> lock(ManifestCommitMutex(dir_));
    OPERB_ASSIGN_OR_RETURN(const Manifest manifest, ReadManifest(dir_));
    if (shard >= manifest.num_shards) {
      return Status::InvalidArgument(
          "shard " + std::to_string(shard) + " out of range (store has " +
          std::to_string(manifest.num_shards) + " shards)");
    }
  }
  ++stats.shards_examined;
  OPERB_RETURN_IF_ERROR(CompactShardPass(shard, /*force=*/true, &stats));
  if (stats.bytes_read > 0) {
    stats.write_amplification = static_cast<double>(stats.bytes_written) /
                                static_cast<double>(stats.bytes_read);
  }
  FoldCompactionStats(stats);
  return stats;
}

BackgroundCompactor::BackgroundCompactor(std::string dir,
                                         const CompactionOptions& options,
                                         std::chrono::milliseconds interval)
    : compactor_(std::move(dir), options), interval_(interval) {}

BackgroundCompactor::~BackgroundCompactor() { Stop(); }

void BackgroundCompactor::Start() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  running_ = true;
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void BackgroundCompactor::Stop() {
  std::thread to_join;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    // Claim the join while holding the lock: a concurrent Stop() sees
    // running_ == false and returns instead of joining the thread a
    // second time (UB).
    running_ = false;
    stop_ = true;
    to_join = std::move(thread_);
  }
  cv_.notify_all();
  to_join.join();
}

void BackgroundCompactor::Pause() {
  std::unique_lock<std::mutex> lock(mu_);
  ++pause_depth_;
  // Wait out an in-flight pass; the loop won't start another while
  // pause_depth_ > 0. No stop_ escape needed: in_pass_ always returns to
  // false — either the pass completes or Loop() never entered one.
  cv_.wait(lock, [this] { return !in_pass_; });
}

void BackgroundCompactor::Resume() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    --pause_depth_;
  }
  cv_.notify_all();
}

CompactionStats BackgroundCompactor::total_stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

Status BackgroundCompactor::last_status() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return last_status_;
}

void BackgroundCompactor::Loop() {
  for (;;) {
    {
      // Honor a pause before touching the store; a Stop() during the
      // wait ends the loop without another pass.
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || pause_depth_ == 0; });
      if (stop_) return;
      in_pass_ = true;
    }
    const Result<CompactionStats> pass = compactor_.Run();
    {
      const std::lock_guard<std::mutex> lock(mu_);
      in_pass_ = false;
      if (pass.ok()) {
        total_.shards_examined += pass->shards_examined;
        total_.shards_compacted += pass->shards_compacted;
        total_.files_before += pass->files_before;
        total_.files_after += pass->files_after;
        total_.blocks_before += pass->blocks_before;
        total_.blocks_after += pass->blocks_after;
        total_.segments_rewritten += pass->segments_rewritten;
        total_.bytes_read += pass->bytes_read;
        total_.bytes_written += pass->bytes_written;
        total_.generations_committed += pass->generations_committed;
        total_.orphans_removed += pass->orphans_removed;
        if (total_.bytes_read > 0) {
          total_.write_amplification =
              static_cast<double>(total_.bytes_written) /
              static_cast<double>(total_.bytes_read);
        }
      } else {
        last_status_ = pass.status();
      }
    }
    // A Pause() may be blocked on in_pass_; wake it before sleeping.
    cv_.notify_all();
    std::unique_lock<std::mutex> lock(mu_);
    if (cv_.wait_for(lock, interval_, [this] { return stop_; })) return;
  }
}

}  // namespace operb::store
