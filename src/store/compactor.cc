#include "store/compactor.h"

#include <algorithm>
#include <filesystem>
#include <map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "store/segment_file.h"

namespace operb::store {

namespace fs = std::filesystem;

Compactor::Compactor(std::string dir, const CompactionOptions& options)
    : dir_(std::move(dir)), options_(options) {}

bool Compactor::NeedsCompaction(const Manifest& manifest,
                                std::uint32_t shard) {
  // Only sealed files are merge candidates — an active file may still be
  // growing under a live writer. A shard warrants a rewrite when its
  // sealed set is fragmented (more than one file) or still in the
  // streaming layout (level 0: frames sealed by the write-path budget,
  // not re-blocked densely).
  std::size_t sealed = 0;
  bool level0 = false;
  for (const SegmentFileInfo& f : manifest.files) {
    if (f.shard != shard || !f.sealed) continue;
    ++sealed;
    if (f.level == 0) level0 = true;
  }
  return sealed > 1 || (sealed == 1 && level0);
}

void Compactor::RemoveOrphans(const Manifest& manifest,
                              CompactionStats* stats) {
  std::unordered_set<std::string> live;
  for (const SegmentFileInfo& f : manifest.files) live.insert(f.name);
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name == kManifestFileName || name == kManifestTempFileName) continue;
    if (!IsStoreFileName(name) || live.count(name) != 0) continue;
    if (fs::remove(entry.path(), ec)) ++stats->orphans_removed;
  }
}

Status Compactor::CompactShardLocked(Manifest* manifest, std::uint32_t shard,
                                     CompactionStats* stats) {
  // Caller holds the store's manifest commit lock; `manifest` is the
  // freshly re-read current generation.
  std::vector<std::size_t> inputs;
  std::uint32_t max_level = 0;
  for (std::size_t i = 0; i < manifest->files.size(); ++i) {
    const SegmentFileInfo& f = manifest->files[i];
    if (f.shard != shard || !f.sealed) continue;
    inputs.push_back(i);
    max_level = std::max(max_level, f.level);
  }
  if (inputs.empty()) return Status::OK();

  // Drain the inputs in manifest order — per object that is emission
  // order — into an id-keyed map, so the rewrite emits every object's
  // segments contiguously, objects ascending.
  std::map<traj::ObjectId, std::vector<traj::TimedSegment>> merged;
  std::uint64_t segments_in = 0;
  std::uint64_t blocks_in = 0;
  for (const std::size_t i : inputs) {
    const std::string path =
        (fs::path(dir_) / manifest->files[i].name).string();
    OPERB_ASSIGN_OR_RETURN(const std::unique_ptr<SegmentFileReader> reader,
                           SegmentFileReader::Open(path));
    stats->bytes_read += reader->file_bytes();
    blocks_in += reader->blocks().size();
    for (std::size_t b = 0; b < reader->blocks().size(); ++b) {
      OPERB_ASSIGN_OR_RETURN(const std::vector<traj::TimedSegment> segments,
                             reader->ReadBlock(b));
      for (const traj::TimedSegment& s : segments) {
        merged[s.object_id].push_back(s);
        ++segments_in;
      }
    }
  }

  std::size_t budget = options_.block_budget_bytes != 0
                           ? options_.block_budget_bytes
                           : static_cast<std::size_t>(
                                 manifest->block_budget_bytes);
  if (budget < 1024) budget = 64 * 1024;

  const std::uint64_t new_generation = manifest->generation + 1;
  const std::string out_name = SegmentFileName(shard, new_generation);
  const std::string out_path = (fs::path(dir_) / out_name).string();
  {
    OPERB_ASSIGN_OR_RETURN(const std::unique_ptr<SegmentFileWriter> writer,
                           SegmentFileWriter::Create(out_path,
                                                     manifest->zeta, budget));
    for (const auto& [id, segments] : merged) {
      for (const traj::TimedSegment& s : segments) {
        OPERB_RETURN_IF_ERROR(writer->Append(s));
      }
    }
    OPERB_RETURN_IF_ERROR(writer->Close());
    stats->bytes_written += writer->stats().file_bytes;
    stats->blocks_after += writer->stats().blocks;
  }

  // Commit: replace the inputs with the compacted file in one manifest
  // generation. The output is fully on disk before the rename — a crash
  // on either side of it leaves a consistent store (old generation +
  // orphan, or new generation).
  std::vector<std::string> obsolete;
  Manifest next = *manifest;
  next.generation = new_generation;
  std::vector<SegmentFileInfo> kept;
  kept.reserve(next.files.size() - inputs.size() + 1);
  for (std::size_t i = 0; i < next.files.size(); ++i) {
    if (std::find(inputs.begin(), inputs.end(), i) == inputs.end()) {
      kept.push_back(next.files[i]);
    } else {
      obsolete.push_back(next.files[i].name);
    }
  }
  SegmentFileInfo out_info;
  out_info.shard = shard;
  out_info.level = max_level + 1;
  out_info.sealed = true;
  out_info.name = out_name;
  kept.push_back(out_info);
  next.files = std::move(kept);
  OPERB_RETURN_IF_ERROR(WriteManifest(dir_, next));
  *manifest = std::move(next);

  // Old inputs are dead to every future open; unlink them. Readers that
  // already hold the files keep them alive via their descriptors.
  for (const std::string& name : obsolete) {
    std::error_code ec;
    fs::remove(fs::path(dir_) / name, ec);
  }

  ++stats->shards_compacted;
  ++stats->generations_committed;
  stats->files_before += inputs.size();
  stats->files_after += 1;
  stats->blocks_before += blocks_in;
  stats->segments_rewritten += segments_in;
  return Status::OK();
}

Result<CompactionStats> Compactor::Run() {
  CompactionStats stats;
  std::uint32_t num_shards = 0;
  {
    const std::lock_guard<std::mutex> lock(ManifestCommitMutex(dir_));
    OPERB_ASSIGN_OR_RETURN(const Manifest manifest, ReadManifest(dir_));
    RemoveOrphans(manifest, &stats);
    num_shards = manifest.num_shards;
  }
  for (std::uint32_t shard = 0; shard < num_shards; ++shard) {
    ++stats.shards_examined;
    // Re-read under the lock per shard: each commit (ours or a writer's
    // Close) bumps the generation, and the merge must start from the
    // current file set.
    const std::lock_guard<std::mutex> lock(ManifestCommitMutex(dir_));
    OPERB_ASSIGN_OR_RETURN(Manifest manifest, ReadManifest(dir_));
    if (shard >= manifest.num_shards || !NeedsCompaction(manifest, shard)) {
      continue;
    }
    OPERB_RETURN_IF_ERROR(CompactShardLocked(&manifest, shard, &stats));
  }
  if (stats.bytes_read > 0) {
    stats.write_amplification = static_cast<double>(stats.bytes_written) /
                                static_cast<double>(stats.bytes_read);
  }
  return stats;
}

Result<CompactionStats> Compactor::CompactShard(std::uint32_t shard) {
  CompactionStats stats;
  const std::lock_guard<std::mutex> lock(ManifestCommitMutex(dir_));
  OPERB_ASSIGN_OR_RETURN(Manifest manifest, ReadManifest(dir_));
  if (shard >= manifest.num_shards) {
    return Status::InvalidArgument(
        "shard " + std::to_string(shard) + " out of range (store has " +
        std::to_string(manifest.num_shards) + " shards)");
  }
  ++stats.shards_examined;
  OPERB_RETURN_IF_ERROR(CompactShardLocked(&manifest, shard, &stats));
  if (stats.bytes_read > 0) {
    stats.write_amplification = static_cast<double>(stats.bytes_written) /
                                static_cast<double>(stats.bytes_read);
  }
  return stats;
}

BackgroundCompactor::BackgroundCompactor(std::string dir,
                                         const CompactionOptions& options,
                                         std::chrono::milliseconds interval)
    : compactor_(std::move(dir), options), interval_(interval) {}

BackgroundCompactor::~BackgroundCompactor() { Stop(); }

void BackgroundCompactor::Start() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  running_ = true;
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void BackgroundCompactor::Stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  const std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

CompactionStats BackgroundCompactor::total_stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

Status BackgroundCompactor::last_status() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return last_status_;
}

void BackgroundCompactor::Loop() {
  for (;;) {
    const Result<CompactionStats> pass = compactor_.Run();
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (pass.ok()) {
        total_.shards_examined += pass->shards_examined;
        total_.shards_compacted += pass->shards_compacted;
        total_.files_before += pass->files_before;
        total_.files_after += pass->files_after;
        total_.blocks_before += pass->blocks_before;
        total_.blocks_after += pass->blocks_after;
        total_.segments_rewritten += pass->segments_rewritten;
        total_.bytes_read += pass->bytes_read;
        total_.bytes_written += pass->bytes_written;
        total_.generations_committed += pass->generations_committed;
        total_.orphans_removed += pass->orphans_removed;
        if (total_.bytes_read > 0) {
          total_.write_amplification =
              static_cast<double>(total_.bytes_written) /
              static_cast<double>(total_.bytes_read);
        }
      } else {
        last_status_ = pass.status();
      }
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (cv_.wait_for(lock, interval_, [this] { return stop_; })) return;
  }
}

}  // namespace operb::store
