#ifndef OPERB_STORE_SEGMENT_FILE_H_
#define OPERB_STORE_SEGMENT_FILE_H_

/// \file
/// One segment file: the append-only block container that is the unit of
/// sharding and compaction. A directory store is a manifest naming many
/// of these; a legacy single-file store is exactly one of them.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "store/env.h"
#include "store/format.h"
#include "traj/multi_object.h"

namespace operb::store {

/// What SegmentFileReader::Open observed about the file's tail. An
/// append interrupted mid-block (crash, power cut) leaves a partial
/// final frame; the scan detects it structurally and drops it — the
/// per-segment half of the store's recovery contract is "a valid prefix
/// survives" (DESIGN.md §8).
struct SegmentFileOpenInfo {
  bool tail_dropped = false;        ///< a partial tail frame was ignored
  std::uint64_t dropped_bytes = 0;  ///< bytes ignored after the last
                                    ///< complete block
};

/// One indexed block: where its payload lives plus its footer.
struct BlockRef {
  std::uint64_t payload_offset = 0;
  BlockFooter footer;
};

/// Counters of one segment-file writer's lifetime (final after Close()).
struct SegmentFileStats {
  std::uint64_t segments = 0;       ///< segments appended
  std::uint64_t blocks = 0;         ///< blocks sealed
  std::uint64_t payload_bytes = 0;  ///< encoded payload across blocks
  std::uint64_t file_bytes = 0;     ///< total bytes written (incl. framing)
};

/// Append-only writer of one segment file.
///
/// Buffers id-tagged, time-annotated segments per object and seals
/// fixed-budget blocks: each object's buffered segments become one
/// contiguous run (objects ordered by id for determinism), delta-encoded
/// by codec::EncodeSegmentBlock, framed with a length prefix and a
/// metadata footer (store/format.h).
///
/// Thread safety: Append() may be called concurrently (it takes an
/// internal lock). Per object, callers must append in emission order.
/// Create/Close are not concurrent with Append.
///
/// Crash safety: the stream is flushed after every sealed block; a
/// crash mid-block loses at most the unflushed tail, which the reader's
/// open scan detects and drops.
class SegmentFileWriter {
 public:
  /// Opens `path` for writing (truncating any existing file) through
  /// `env` (nullptr: the real filesystem) and writes the v2 file header.
  /// IOError when the file cannot be created. `block_budget_bytes` must
  /// already be validated by the caller (StoreWriterOptions::Validate).
  static Result<std::unique_ptr<SegmentFileWriter>> Create(
      const std::string& path, double zeta, std::size_t block_budget_bytes,
      Env* env = nullptr);

  /// Seals any buffered segments into a final block and closes the file.
  ~SegmentFileWriter();

  SegmentFileWriter(const SegmentFileWriter&) = delete;
  SegmentFileWriter& operator=(const SegmentFileWriter&) = delete;

  /// Buffers one segment; seals a block when the budget fills.
  /// Thread-safe. Returns the first write error encountered (subsequent
  /// appends keep buffering but the writer is poisoned — Close() reports
  /// the error again).
  Status Append(const traj::TimedSegment& segment);

  /// Seals the remaining buffered segments (if any), flushes and closes
  /// the file. Idempotent: the first call's status is remembered and
  /// re-returned. stats() is final after Close().
  Status Close();

  /// Lifetime counters; final after Close().
  const SegmentFileStats& stats() const { return stats_; }

 private:
  SegmentFileWriter(std::unique_ptr<WritableFile> file,
                    std::size_t block_budget_bytes);

  /// Seals the pending buffer into one block. Caller holds mu_.
  Status SealLocked();

  std::size_t block_budget_bytes_ = 0;
  std::unique_ptr<WritableFile> file_;

  std::mutex mu_;
  /// Pending segments per object, in arrival order. std::map: blocks are
  /// sealed with objects in ascending id order, making the file contents
  /// a deterministic function of the per-object input sequences.
  std::map<traj::ObjectId, std::vector<traj::TimedSegment>> pending_;
  std::size_t pending_segments_ = 0;
  /// Bytes/segment estimate used against the block budget, updated from
  /// each sealed block's actual encoding.
  double estimated_segment_bytes_ = 48.0;
  bool closed_ = false;
  Status first_error_;
  SegmentFileStats stats_;
};

/// Footer-scan reader of one segment file (format v1 or v2).
///
/// Open() scans the block structure once — length prefixes and footers
/// only, payloads stay on disk — applying the valid-prefix rule: an
/// *incomplete* final frame is a torn tail and is dropped (reported via
/// open_info()), but a size-complete frame that fails validation (bad
/// footer magic, v2 footer-checksum mismatch, length-prefix/footer
/// disagreement, inverted ranges) is Corruption — dropping it would
/// silently lose committed data. Payload checksums are verified lazily
/// by ReadBlock().
///
/// ReadBlock() is thread-safe (file access is serialized internally).
class SegmentFileReader {
 public:
  /// Opens and footer-scans `path`. IOError when unreadable, Corruption
  /// when the header or any complete block frame is invalid.
  static Result<std::unique_ptr<SegmentFileReader>> Open(
      const std::string& path);

  ~SegmentFileReader();

  SegmentFileReader(const SegmentFileReader&) = delete;
  SegmentFileReader& operator=(const SegmentFileReader&) = delete;

  /// The error bound recorded in the file header.
  double zeta() const { return zeta_; }

  /// The file's format version (kFormatVersionLegacy or kFormatVersion).
  std::uint32_t format_version() const { return version_; }

  const std::vector<BlockRef>& blocks() const { return blocks_; }

  const SegmentFileOpenInfo& open_info() const { return open_info_; }

  /// Total file bytes the open scan saw.
  std::uint64_t file_bytes() const { return file_bytes_; }

  /// Reads, checksum-verifies and decodes block `i`'s payload.
  Result<std::vector<traj::TimedSegment>> ReadBlock(std::size_t i) const;

 private:
  SegmentFileReader() = default;

  std::string path_;
  double zeta_ = 0.0;
  std::uint32_t version_ = kFormatVersion;
  std::uint64_t file_bytes_ = 0;
  std::vector<BlockRef> blocks_;
  SegmentFileOpenInfo open_info_;

  mutable std::mutex file_mu_;  ///< serializes seek+read pairs
  std::FILE* file_ = nullptr;
};

}  // namespace operb::store

#endif  // OPERB_STORE_SEGMENT_FILE_H_
