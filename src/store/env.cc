#include "store/env.h"

#include <cstdio>
#include <filesystem>
#include <utility>

namespace operb::store {

namespace {

namespace fs = std::filesystem;

class StdioWritableFile final : public WritableFile {
 public:
  StdioWritableFile(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  ~StdioWritableFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Append(std::span<const std::uint8_t> data) override {
    if (file_ == nullptr) {
      return Status::InvalidArgument("append to a closed file " + path_);
    }
    if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
      return Status::IOError("write to " + path_ + " failed");
    }
    return Status::OK();
  }

  Status Flush() override {
    if (file_ == nullptr) {
      return Status::InvalidArgument("flush of a closed file " + path_);
    }
    if (std::fflush(file_) != 0) {
      return Status::IOError("flush of " + path_ + " failed");
    }
    return Status::OK();
  }

  Status Close() override {
    if (file_ == nullptr) return Status::OK();
    std::FILE* f = file_;
    file_ = nullptr;
    if (std::fclose(f) != 0) {
      return Status::IOError("close of " + path_ + " failed");
    }
    return Status::OK();
  }

 private:
  std::FILE* file_;
  std::string path_;
};

class DefaultEnv final : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    std::FILE* file = std::fopen(path.c_str(), "wb");
    if (file == nullptr) {
      return Status::IOError("cannot create " + path);
    }
    return std::unique_ptr<WritableFile>(
        std::make_unique<StdioWritableFile>(file, path));
  }

  Status Rename(const std::string& from, const std::string& to) override {
    std::error_code ec;
    fs::rename(from, to, ec);
    if (ec) {
      return Status::IOError("cannot rename " + from + " to " + to + ": " +
                             ec.message());
    }
    return Status::OK();
  }

  Status Remove(const std::string& path) override {
    std::error_code ec;
    if (!fs::remove(path, ec)) {
      if (ec) {
        return Status::IOError("cannot remove " + path + ": " + ec.message());
      }
      return Status::NotFound("no file to remove at " + path);
    }
    return Status::OK();
  }
};

}  // namespace

Env* Env::Default() {
  static DefaultEnv* env = new DefaultEnv();  // process-lived, never freed
  return env;
}

// ---------------------------------------------------------------------
// FaultInjectingEnv
// ---------------------------------------------------------------------

/// Wraps a base WritableFile so appends and flushes tick the shared
/// operation counter and honor the armed fault.
class FaultInjectingEnv::FaultingFile final : public WritableFile {
 public:
  FaultingFile(FaultInjectingEnv* env, std::unique_ptr<WritableFile> base)
      : env_(env), base_(std::move(base)) {}

  Status Append(std::span<const std::uint8_t> data) override {
    switch (env_->NextOp()) {
      case OpOutcome::kSucceed:
        return base_->Append(data);
      case OpOutcome::kFail:
        return Status::IOError("injected write fault");
      case OpOutcome::kTearThenFail: {
        // Persist a torn prefix — the crash left half the bytes on disk —
        // then report failure; flushing makes the torn state durable so
        // the reopen path, not the page cache, is what recovers it.
        const Status torn = base_->Append(data.first(data.size() / 2));
        if (torn.ok()) (void)base_->Flush();
        return Status::IOError("injected torn write");
      }
    }
    return Status::Internal("unreachable");
  }

  Status Flush() override {
    switch (env_->NextOp()) {
      case OpOutcome::kSucceed:
        return base_->Flush();
      case OpOutcome::kFail:
      case OpOutcome::kTearThenFail:
        return Status::IOError("injected flush fault");
    }
    return Status::Internal("unreachable");
  }

  Status Close() override { return base_->Close(); }

 private:
  FaultInjectingEnv* const env_;
  std::unique_ptr<WritableFile> base_;
};

FaultInjectingEnv::FaultInjectingEnv(Env* base) : base_(ResolveEnv(base)) {}

void FaultInjectingEnv::ArmFault(FaultKind kind, std::uint64_t fail_at_op) {
  const std::lock_guard<std::mutex> lock(mu_);
  kind_ = kind;
  fail_at_op_ = fail_at_op;
  op_count_ = 0;
  fired_ = false;
  crashed_ = false;
}

void FaultInjectingEnv::Disarm() { ArmFault(FaultKind::kNone, 0); }

std::uint64_t FaultInjectingEnv::op_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return op_count_;
}

bool FaultInjectingEnv::fault_fired() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

FaultInjectingEnv::OpOutcome FaultInjectingEnv::NextOp() {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t op = op_count_++;
  if (crashed_) return OpOutcome::kFail;  // "crashed": everything fails
  if (kind_ == FaultKind::kNone || op != fail_at_op_) {
    return OpOutcome::kSucceed;
  }
  fired_ = true;
  switch (kind_) {
    case FaultKind::kError:
      return OpOutcome::kFail;
    case FaultKind::kShortWrite:
      return OpOutcome::kTearThenFail;
    case FaultKind::kTornWriteCrash:
      crashed_ = true;
      return OpOutcome::kTearThenFail;
    case FaultKind::kNone:
      break;
  }
  return OpOutcome::kSucceed;
}

Result<std::unique_ptr<WritableFile>> FaultInjectingEnv::NewWritableFile(
    const std::string& path) {
  if (NextOp() != OpOutcome::kSucceed) {
    return Status::IOError("injected create fault for " + path);
  }
  OPERB_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                         base_->NewWritableFile(path));
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultingFile>(this, std::move(base)));
}

Status FaultInjectingEnv::Rename(const std::string& from,
                                 const std::string& to) {
  if (NextOp() != OpOutcome::kSucceed) {
    return Status::IOError("injected rename fault for " + to);
  }
  return base_->Rename(from, to);
}

Status FaultInjectingEnv::Remove(const std::string& path) {
  if (NextOp() != OpOutcome::kSucceed) {
    return Status::IOError("injected remove fault for " + path);
  }
  return base_->Remove(path);
}

}  // namespace operb::store
