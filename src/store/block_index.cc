#include "store/block_index.h"

#include <algorithm>
#include <cmath>

namespace operb::store {

namespace {

bool Overlaps(double a_min, double a_max, double b_min, double b_max) {
  return a_min <= b_max && b_min <= a_max;
}

}  // namespace

void BlockIndex::Build(std::vector<BlockIndexEntry> entries) {
  entries_ = std::move(entries);
  nodes_.clear();
  root_ = 0;
  height_ = 0;
  if (entries_.empty()) return;

  // STR tiling: slice by center x, order each slice by center y.
  const std::size_t n = entries_.size();
  const std::size_t leaf_count = (n + kFanout - 1) / kFanout;
  const std::size_t slices = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(leaf_count))));
  const std::size_t slice_entries =
      ((leaf_count + slices - 1) / slices) * kFanout;
  std::sort(entries_.begin(), entries_.end(),
            [](const BlockIndexEntry& a, const BlockIndexEntry& b) {
              return a.min_x + a.max_x < b.min_x + b.max_x;
            });
  for (std::size_t begin = 0; begin < n; begin += slice_entries) {
    const std::size_t end = std::min(n, begin + slice_entries);
    std::sort(entries_.begin() + static_cast<std::ptrdiff_t>(begin),
              entries_.begin() + static_cast<std::ptrdiff_t>(end),
              [](const BlockIndexEntry& a, const BlockIndexEntry& b) {
                return a.min_y + a.max_y < b.min_y + b.max_y;
              });
  }

  // Leaf level: runs of kFanout consecutive STR-ordered entries.
  std::vector<std::uint32_t> level;
  for (std::size_t begin = 0; begin < n; begin += kFanout) {
    const std::size_t end = std::min(n, begin + kFanout);
    Node leaf;
    leaf.leaf = true;
    leaf.first = static_cast<std::uint32_t>(begin);
    leaf.count = static_cast<std::uint32_t>(end - begin);
    const BlockIndexEntry& e0 = entries_[begin];
    leaf.min_x = e0.min_x;
    leaf.min_y = e0.min_y;
    leaf.max_x = e0.max_x;
    leaf.max_y = e0.max_y;
    leaf.t_min = e0.t_min;
    leaf.t_max = e0.t_max;
    for (std::size_t i = begin + 1; i < end; ++i) {
      const BlockIndexEntry& e = entries_[i];
      leaf.min_x = std::min(leaf.min_x, e.min_x);
      leaf.min_y = std::min(leaf.min_y, e.min_y);
      leaf.max_x = std::max(leaf.max_x, e.max_x);
      leaf.max_y = std::max(leaf.max_y, e.max_y);
      leaf.t_min = std::min(leaf.t_min, e.t_min);
      leaf.t_max = std::max(leaf.t_max, e.t_max);
    }
    level.push_back(static_cast<std::uint32_t>(nodes_.size()));
    nodes_.push_back(leaf);
  }
  height_ = 1;

  // Pack parent levels over kFanout consecutive children (the STR order
  // keeps consecutive nodes spatially coherent) until one root remains.
  while (level.size() > 1) {
    std::vector<std::uint32_t> parents;
    for (std::size_t begin = 0; begin < level.size(); begin += kFanout) {
      const std::size_t end = std::min(level.size(), begin + kFanout);
      Node parent;
      parent.leaf = false;
      parent.first = level[begin];
      parent.count = static_cast<std::uint32_t>(end - begin);
      const Node& c0 = nodes_[level[begin]];
      parent.min_x = c0.min_x;
      parent.min_y = c0.min_y;
      parent.max_x = c0.max_x;
      parent.max_y = c0.max_y;
      parent.t_min = c0.t_min;
      parent.t_max = c0.t_max;
      for (std::size_t i = begin + 1; i < end; ++i) {
        const Node& c = nodes_[level[i]];
        parent.min_x = std::min(parent.min_x, c.min_x);
        parent.min_y = std::min(parent.min_y, c.min_y);
        parent.max_x = std::max(parent.max_x, c.max_x);
        parent.max_y = std::max(parent.max_y, c.max_y);
        parent.t_min = std::min(parent.t_min, c.t_min);
        parent.t_max = std::max(parent.t_max, c.t_max);
      }
      parents.push_back(static_cast<std::uint32_t>(nodes_.size()));
      nodes_.push_back(parent);
    }
    level = std::move(parents);
    ++height_;
  }
  root_ = level.front();
}

void BlockIndex::Query(const geo::BoundingBox& window, double t_min,
                       double t_max, std::vector<std::uint32_t>* ordinals,
                       std::uint64_t* nodes_visited) const {
  if (nodes_.empty() || window.IsEmpty()) return;
  std::vector<std::uint32_t> stack;
  stack.push_back(root_);
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (nodes_visited != nullptr) ++*nodes_visited;
    if (!Overlaps(node.t_min, node.t_max, t_min, t_max) ||
        !Overlaps(node.min_x, node.max_x, window.min_x, window.max_x) ||
        !Overlaps(node.min_y, node.max_y, window.min_y, window.max_y)) {
      continue;
    }
    if (node.leaf) {
      for (std::uint32_t i = 0; i < node.count; ++i) {
        const BlockIndexEntry& e = entries_[node.first + i];
        // Exactly the flat footer scan's predicates, so both scan modes
        // select the same candidate blocks.
        if (Overlaps(e.t_min, e.t_max, t_min, t_max) &&
            Overlaps(e.min_x, e.max_x, window.min_x, window.max_x) &&
            Overlaps(e.min_y, e.max_y, window.min_y, window.max_y)) {
          ordinals->push_back(e.ordinal);
        }
      }
    } else {
      for (std::uint32_t i = 0; i < node.count; ++i) {
        stack.push_back(node.first + i);
      }
    }
  }
}

}  // namespace operb::store
