#ifndef OPERB_STORE_QUERY_FILTER_H_
#define OPERB_STORE_QUERY_FILTER_H_

/// \file
/// The store's query predicates, shared by every layer that answers
/// queries. StoreReader applies them to sealed blocks; the server's
/// read-your-writes merge applies the *same* predicates to in-memory
/// overlay segments and in-flight engine tails, which is what makes a
/// merged answer indistinguishable from querying a store that had
/// already sealed everything (DESIGN.md §11). Keeping them in one
/// header is the correctness seam: a predicate change cannot drift
/// between the sealed and live halves of an answer.

#include <cstddef>

#include "geo/bbox.h"
#include "geo/point.h"
#include "traj/multi_object.h"

namespace operb::store {

/// Closed-interval overlap test used for every [t_start, t_end] vs
/// [t_min, t_max] comparison (block footers, segments, overlay tails).
inline bool IntervalsOverlap(double a_min, double a_max, double b_min,
                             double b_max) {
  return a_min <= b_max && b_min <= a_max;
}

/// Grows `box` by `margin` on every side; an empty box stays empty.
/// Window queries inflate by the store's zeta so answers are sound for
/// original points (DESIGN.md §8).
inline geo::BoundingBox Inflate(const geo::BoundingBox& box, double margin) {
  geo::BoundingBox out;
  if (box.IsEmpty()) return out;
  out.min_x = box.min_x - margin;
  out.min_y = box.min_y - margin;
  out.max_x = box.max_x + margin;
  out.max_y = box.max_y + margin;
  return out;
}

inline bool BoxesOverlap(const geo::BoundingBox& a,
                         const geo::BoundingBox& b) {
  return !a.IsEmpty() && !b.IsEmpty() && a.min_x <= b.max_x &&
         b.min_x <= a.max_x && a.min_y <= b.max_y && b.min_y <= a.max_y;
}

/// Liang-Barsky segment/axis-aligned-box intersection test. Degenerate
/// segments degrade to a containment check.
inline bool SegmentIntersectsBox(geo::Vec2 a, geo::Vec2 b,
                                 const geo::BoundingBox& box) {
  if (box.IsEmpty()) return false;
  double t0 = 0.0, t1 = 1.0;
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  const double p[4] = {-dx, dx, -dy, dy};
  const double q[4] = {a.x - box.min_x, box.max_x - a.x, a.y - box.min_y,
                       box.max_y - a.y};
  for (int i = 0; i < 4; ++i) {
    if (p[i] == 0.0) {
      if (q[i] < 0.0) return false;  // parallel and outside this slab
      continue;
    }
    const double r = q[i] / p[i];
    if (p[i] < 0.0) {
      if (r > t1) return false;
      if (r > t0) t0 = r;
    } else {
      if (r < t0) return false;
      if (r < t1) t1 = r;
    }
  }
  return t0 <= t1;
}

/// The full per-segment window-query predicate: time interval overlap
/// plus geometric intersection with the (already inflated) window.
inline bool SegmentMatchesWindow(const traj::TimedSegment& s,
                                 const geo::BoundingBox& inflated,
                                 double t_min, double t_max) {
  return IntervalsOverlap(s.t_start, s.t_end, t_min, t_max) &&
         SegmentIntersectsBox(s.segment.start, s.segment.end, inflated);
}

/// Position on `s` at time `t` by time-proportional interpolation —
/// the one interpolation rule of PositionAt, wherever the covering
/// segment came from (sealed block, overlay or in-flight tail).
/// Precondition: s.t_start <= t <= s.t_end.
inline geo::Point InterpolateOnSegment(const traj::TimedSegment& s,
                                       double t) {
  const double span = s.t_end - s.t_start;
  const double u = span > 0.0 ? (t - s.t_start) / span : 0.0;
  const geo::Vec2 pos = s.segment.AsSegment().At(u);
  return geo::Point{pos.x, pos.y, t};
}

}  // namespace operb::store

#endif  // OPERB_STORE_QUERY_FILTER_H_
