#ifndef OPERB_STORE_COMPACTOR_H_
#define OPERB_STORE_COMPACTOR_H_

/// \file
/// Store compaction: merges a shard's segment files into one dense
/// id-ordered file one level up, committing each merge as a new
/// manifest generation.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/result.h"
#include "common/status.h"
#include "store/env.h"
#include "store/manifest.h"

namespace operb::store {

/// Knobs of one compaction pass.
struct CompactionOptions {
  /// Block budget for rewritten blocks; 0 keeps the budget recorded in
  /// the manifest. A larger budget is how many small sealed frames
  /// become few dense blocks.
  std::size_t block_budget_bytes = 0;

  /// Filesystem seam for the pass's durable mutations (temp-file write,
  /// rename-commit, manifest commit, obsolete/orphan unlinks). nullptr:
  /// the real filesystem. Not owned; must outlive the compactor.
  Env* env = nullptr;
};

/// What one compaction pass did.
struct CompactionStats {
  std::uint64_t shards_examined = 0;
  std::uint64_t shards_compacted = 0;   ///< shards rewritten (one
                                        ///< manifest generation each)
  std::uint64_t files_before = 0;       ///< live files in compacted shards
  std::uint64_t files_after = 0;
  std::uint64_t blocks_before = 0;
  std::uint64_t blocks_after = 0;
  std::uint64_t segments_rewritten = 0;
  std::uint64_t bytes_read = 0;         ///< source segment-file bytes
  std::uint64_t bytes_written = 0;      ///< output segment-file bytes
  /// bytes_written / bytes_read over the compacted shards: < 1 means the
  /// merge densified (fewer frames, better delta runs); this is the
  /// write-amplification cost of a compaction pass.
  double write_amplification = 0.0;
  std::uint64_t generations_committed = 0;
  std::uint64_t orphans_removed = 0;    ///< unreferenced .seg files GC'd
};

/// One-shot compactor over a directory store.
///
/// A shard needs compaction when it has more than one live file or any
/// level-0 file (a freshly written file whose frames were sealed by the
/// streaming budget, not re-blocked densely). Compacting a shard reads
/// every live segment of the shard's files in manifest order — which is
/// per-object emission order — and rewrites them through one
/// SegmentFileWriter in ascending object id order at level max+1, so
/// queries return byte-identical results before and after (the reader's
/// canonical result order is (object id, emission order), both
/// preserved).
///
/// Crash safety: the output file is fully written and flushed *before*
/// the manifest naming it is committed (temp+rename). A crash before
/// the commit leaves an orphan .seg the manifest never names — readers
/// ignore it, the next pass GC's it — and the old generation stays
/// live: manifest rollback. Obsolete inputs are unlinked only after the
/// commit; already-open readers keep their file handles (POSIX unlink
/// semantics).
///
/// Concurrency: readers may open and query the store at any time; the
/// reader retries its manifest/file dance when a commit races it. The
/// merge itself runs *outside* the manifest commit lock — the inputs
/// are sealed, hence immutable — so append sessions never stall behind
/// a shard rewrite; only the input snapshot and the final swap-and-
/// commit hold the lock, with the commit re-validating that every
/// input is still live (a store re-created mid-merge abandons the
/// output as an orphan). The merged file replaces the inputs at the
/// first input's manifest position, preserving the per-shard
/// oldest-first order readers rely on for per-object emission order.
/// At most one compactor (foreground or background) may run per store
/// directory at a time.
///
/// Memory: a shard merge materializes the shard's full decoded segment
/// set in memory before rewriting, so peak memory is proportional to
/// the decoded shard — not to a block. Size shards (num_shards at
/// store creation) with that in mind.
class Compactor {
 public:
  explicit Compactor(std::string dir, const CompactionOptions& options = {});

  /// One full pass: GC orphans, then compact every shard that needs it,
  /// committing one manifest generation per compacted shard.
  Result<CompactionStats> Run();

  /// Compacts exactly `shard` (committing one generation) regardless of
  /// whether it needs it — the hook tests use to build mid-compaction
  /// manifest generations. InvalidArgument when `shard` is out of range.
  Result<CompactionStats> CompactShard(std::uint32_t shard);

 private:
  /// True when the shard's live file set warrants a rewrite.
  static bool NeedsCompaction(const Manifest& manifest, std::uint32_t shard);

  /// One shard's snapshot → merge → commit sequence; `force` skips the
  /// NeedsCompaction gate. Takes the commit lock only around the
  /// snapshot and the commit, accumulates into `stats` on commit.
  Status CompactShardPass(std::uint32_t shard, bool force,
                          CompactionStats* stats);

  /// Removes .seg files in the directory the manifest does not name.
  void RemoveOrphans(const Manifest& manifest, CompactionStats* stats);

  std::string dir_;
  CompactionOptions options_;
  Env* env_;
};

/// Owns a thread running Compactor::Run() on a fixed cadence — the
/// background half of the LSM story, and the concurrent reader/writer
/// path the TSan job exercises. Errors do not stop the loop; the last
/// non-OK status is retained for inspection.
class BackgroundCompactor {
 public:
  BackgroundCompactor(std::string dir, const CompactionOptions& options,
                      std::chrono::milliseconds interval);

  /// Stops the loop (joins the thread).
  ~BackgroundCompactor();

  BackgroundCompactor(const BackgroundCompactor&) = delete;
  BackgroundCompactor& operator=(const BackgroundCompactor&) = delete;

  /// Starts the loop; the first pass runs immediately.
  void Start();

  /// Signals and joins the thread. Idempotent and safe against
  /// concurrent callers — exactly one of them performs the join.
  void Stop();

  /// Blocks new passes and waits for an in-flight pass to finish: after
  /// Pause() returns, no compaction touches the store until the matching
  /// Resume(). Re-entrant (pauses nest); safe against concurrent Stop()
  /// in either order. Prefer PauseGuard.
  void Pause();
  void Resume();

  /// RAII pause: quiesces the background loop for a critical section —
  /// an engine checkpoint or a foreground `--compact` pass — instead of
  /// racing it.
  class PauseGuard {
   public:
    explicit PauseGuard(BackgroundCompactor& compactor)
        : compactor_(&compactor) {
      compactor_->Pause();
    }
    ~PauseGuard() { compactor_->Resume(); }

    PauseGuard(const PauseGuard&) = delete;
    PauseGuard& operator=(const PauseGuard&) = delete;

   private:
    BackgroundCompactor* const compactor_;
  };

  /// Aggregated stats across all completed passes.
  CompactionStats total_stats() const;

  /// OK until a pass fails; then that pass's status.
  Status last_status() const;

 private:
  void Loop();

  Compactor compactor_;
  std::chrono::milliseconds interval_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;
  int pause_depth_ = 0;   ///< nested Pause() calls currently holding
  bool in_pass_ = false;  ///< a Run() is executing outside mu_
  CompactionStats total_;
  Status last_status_;
  std::thread thread_;
};

}  // namespace operb::store

#endif  // OPERB_STORE_COMPACTOR_H_
