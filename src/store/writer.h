#ifndef OPERB_STORE_WRITER_H_
#define OPERB_STORE_WRITER_H_

/// \file
/// Sharded writer of a directory-based trajectory store: one manifest,
/// one segment file per shard per write session.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "store/format.h"
#include "store/manifest.h"
#include "store/segment_file.h"
#include "traj/multi_object.h"

namespace operb::store {

/// Configuration of a StoreWriter.
struct StoreWriterOptions {
  /// The error bound the stored segments were simplified under, recorded
  /// in the manifest and every segment file header. Queries inflate
  /// windows by it and position-at-time answers inherit it as their
  /// error certificate (DESIGN.md §8). Must be positive and finite.
  double zeta = 40.0;

  /// Target encoded payload size per block. A block is sealed once the
  /// buffered segments' estimated encoding reaches this budget, so block
  /// count scales with data volume and every block's footer prunes a
  /// bounded byte range. Must be >= 1024.
  std::size_t block_budget_bytes = 64 * 1024;

  /// Shards the store's objects are partitioned into, by
  /// traj::ShardOfObject — the same hash the StreamEngine routes with,
  /// so engine output streams shard-locally when the counts match. One
  /// segment file per shard per write session. Must be in [1, 65536].
  std::size_t num_shards = 1;

  /// When true and `path` already holds a store, a new write session is
  /// appended: fresh level-0 segment files next to the existing ones
  /// (zeta and num_shards must match the manifest). When false the
  /// directory's store files are removed and the store starts over.
  bool append = false;

  /// Filesystem seam for every durable write (segment files, manifest
  /// commits). nullptr: the real filesystem. Tests inject a
  /// FaultInjectingEnv here to enumerate crash points (store/env.h).
  /// Not owned; must outlive the writer.
  Env* env = nullptr;

  /// Parameter-range check (the Status boundary for untrusted
  /// configuration, same contract as StreamEngineOptions::Validate).
  Status Validate() const;
};

/// Counters of one writer's lifetime (final after Close()).
struct StoreWriterStats {
  std::uint64_t segments = 0;       ///< segments appended
  std::uint64_t blocks = 0;         ///< blocks sealed
  std::uint64_t payload_bytes = 0;  ///< encoded payload across blocks
  std::uint64_t file_bytes = 0;     ///< total bytes written (incl. framing
                                    ///< and the manifest)
  /// file_bytes / (kRawSegmentBytes * segments): bytes the store writes
  /// per byte of the segments' natural in-memory representation. < 1
  /// means the delta codec more than pays for the block framing.
  double write_amplification = 0.0;
};

/// In-memory bytes a TimedSegment occupies in its natural struct form
/// (id + 2 indices + 2 flags + 4 coordinates + 2 timestamps), the
/// denominator of write_amplification.
inline constexpr double kRawSegmentBytes = 8 + 16 + 2 + 48;

/// Sharded writer of a directory-based trajectory store.
///
/// Create() prepares the directory, opens one SegmentFileWriter per
/// shard and commits a manifest generation naming the (active) files —
/// from that point a concurrent reader sees the store and serves every
/// flushed block. Append() routes each segment to its object's shard
/// (traj::ShardOfObject); the per-shard files buffer and seal blocks
/// independently (store/segment_file.h). Close() seals all tails and
/// commits a generation marking the session's files sealed, which makes
/// them compaction candidates (store/compactor.h).
///
/// Thread safety: Append() may be called concurrently — the
/// StreamEngine's sink contract delivers segments from worker threads,
/// and routing takes no global lock (each shard file serializes
/// internally). Per object, callers must append in emission order,
/// which the engine guarantees. Create/Close are not concurrent with
/// Append.
///
/// Crash safety: every sealed block is flushed; a crash loses at most
/// the unflushed tails, which readers detect and drop per segment file
/// (valid-prefix rule). A crash before Close() leaves the session's
/// files active (never compacted) but fully queryable.
class StoreWriter {
 public:
  /// Creates (or, with options.append, extends) the store directory at
  /// `path` and commits the opening manifest generation.
  /// InvalidArgument on bad options or an append mismatch, IOError when
  /// the directory or files cannot be created.
  static Result<std::unique_ptr<StoreWriter>> Create(
      const std::string& path, const StoreWriterOptions& options = {});

  /// Equivalent to Close().
  ~StoreWriter();

  StoreWriter(const StoreWriter&) = delete;
  StoreWriter& operator=(const StoreWriter&) = delete;

  /// Buffers one segment in its shard; seals a block when that shard's
  /// budget fills. Thread-safe. Returns the first write error
  /// encountered (the writer is poisoned — Close() reports it again).
  Status Append(const traj::TimedSegment& segment);

  /// Seals remaining buffered segments, closes every shard file and
  /// commits the manifest generation sealing them. Idempotent: the
  /// first call's status is remembered and re-returned. stats() is
  /// final after Close().
  Status Close();

  /// Lifetime counters; final after Close().
  const StoreWriterStats& stats() const { return stats_; }

  const StoreWriterOptions& options() const { return options_; }

  /// The store directory.
  const std::string& dir() const { return dir_; }

 private:
  StoreWriter(std::string dir, const StoreWriterOptions& options);

  StoreWriterOptions options_;
  std::string dir_;
  /// Names of this session's files (index = shard), recorded active in
  /// the opening manifest commit, flipped to sealed by Close().
  std::vector<std::string> session_files_;
  std::vector<std::unique_ptr<SegmentFileWriter>> shards_;
  std::uint64_t manifest_bytes_ = 0;
  /// True once the opening manifest commit succeeded. A writer whose
  /// opening commit failed must not run Close()'s sealing commit: there
  /// is no session to seal — and Create() still holds the store's
  /// commit mutex when such a writer is destroyed, so re-locking it
  /// there would self-deadlock.
  bool opened_ = false;
  bool closed_ = false;
  Status first_error_;
  StoreWriterStats stats_;
};

}  // namespace operb::store

#endif  // OPERB_STORE_WRITER_H_
