#ifndef OPERB_STORE_WRITER_H_
#define OPERB_STORE_WRITER_H_

/// \file
/// Append-only block-organized writer of the trajectory store.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "store/format.h"
#include "traj/multi_object.h"

namespace operb::store {

/// Configuration of a StoreWriter.
struct StoreWriterOptions {
  /// The error bound the stored segments were simplified under, recorded
  /// in the file header. Queries inflate windows by it and
  /// position-at-time answers inherit it as their error certificate
  /// (DESIGN.md §8). Must be positive and finite.
  double zeta = 40.0;

  /// Target encoded payload size per block. A block is sealed once the
  /// buffered segments' estimated encoding reaches this budget, so block
  /// count scales with data volume and every block's footer prunes a
  /// bounded byte range. Must be >= 1024.
  std::size_t block_budget_bytes = 64 * 1024;

  /// Parameter-range check (the Status boundary for untrusted
  /// configuration, same contract as StreamEngineOptions::Validate).
  Status Validate() const;
};

/// Counters of one writer's lifetime (final after Close()).
struct StoreWriterStats {
  std::uint64_t segments = 0;       ///< segments appended
  std::uint64_t blocks = 0;         ///< blocks sealed
  std::uint64_t payload_bytes = 0;  ///< encoded payload across blocks
  std::uint64_t file_bytes = 0;     ///< total bytes written (incl. framing)
  /// file_bytes / (kRawSegmentBytes * segments): bytes the store writes
  /// per byte of the segments' natural in-memory representation. < 1
  /// means the delta codec more than pays for the block framing.
  double write_amplification = 0.0;
};

/// In-memory bytes a TimedSegment occupies in its natural struct form
/// (id + 2 indices + 2 flags + 4 coordinates + 2 timestamps), the
/// denominator of write_amplification.
inline constexpr double kRawSegmentBytes = 8 + 16 + 2 + 48;

/// Append-only writer of the block-organized trajectory store.
///
/// Consumes id-tagged, time-annotated simplified segments — the shape an
/// engine::TaggedSegmentSink delivers once the pipeline annotates times —
/// buffers them per object, and seals fixed-budget blocks: each object's
/// buffered segments become one contiguous run (objects ordered by id
/// for determinism), delta-encoded by codec::EncodeSegmentBlock, framed
/// with a length prefix and a metadata footer (store/format.h).
///
/// Thread safety: Append() may be called concurrently (it takes an
/// internal lock) — the StreamEngine's sink contract delivers segments
/// from worker threads. Per object, callers must append in emission
/// order, which the engine guarantees. Create/Close are not concurrent
/// with Append.
///
/// Crash safety: the stream is flushed after every sealed block, and a
/// reader validates each block's length prefix, footer magic and
/// checksum — a crash mid-block loses at most the unflushed tail, which
/// StoreReader::Open detects and drops (DESIGN.md §8).
class StoreWriter {
 public:
  /// Opens `path` for writing (truncating any existing file) and writes
  /// the file header. InvalidArgument on bad options, IOError when the
  /// file cannot be created.
  static Result<std::unique_ptr<StoreWriter>> Create(
      const std::string& path, const StoreWriterOptions& options = {});

  /// Seals any buffered segments into a final block and closes the file.
  ~StoreWriter();

  StoreWriter(const StoreWriter&) = delete;
  StoreWriter& operator=(const StoreWriter&) = delete;

  /// Buffers one segment; seals a block when the budget fills.
  /// Thread-safe. Returns the first write error encountered (subsequent
  /// appends keep buffering but the writer is poisoned — Close() reports
  /// the error again).
  Status Append(const traj::TimedSegment& segment);

  /// Seals the remaining buffered segments (if any), flushes and closes
  /// the file. Idempotent: the first call's status is remembered and
  /// re-returned. stats() is final after Close().
  Status Close();

  /// Lifetime counters; final after Close().
  const StoreWriterStats& stats() const { return stats_; }

  const StoreWriterOptions& options() const { return options_; }

 private:
  StoreWriter(std::FILE* file, const StoreWriterOptions& options);

  /// Seals the pending buffer into one block. Caller holds mu_.
  Status SealLocked();

  StoreWriterOptions options_;
  std::FILE* file_ = nullptr;

  std::mutex mu_;
  /// Pending segments per object, in arrival order. std::map: blocks are
  /// sealed with objects in ascending id order, making the file contents
  /// a deterministic function of the per-object input sequences.
  std::map<traj::ObjectId, std::vector<traj::TimedSegment>> pending_;
  std::size_t pending_segments_ = 0;
  /// Bytes/segment estimate used against the block budget, updated from
  /// each sealed block's actual encoding.
  double estimated_segment_bytes_ = 48.0;
  bool closed_ = false;
  Status first_error_;
  StoreWriterStats stats_;
};

}  // namespace operb::store

#endif  // OPERB_STORE_WRITER_H_
