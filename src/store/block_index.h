#ifndef OPERB_STORE_BLOCK_INDEX_H_
#define OPERB_STORE_BLOCK_INDEX_H_

/// \file
/// Hierarchical block index: a packed R-tree over block footers
/// (bounding box x time interval), STR bulk-loaded at open.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geo/bbox.h"

namespace operb::store {

/// One indexable block: its footer's bounding box and time interval plus
/// the ordinal identifying the block to the reader.
struct BlockIndexEntry {
  double min_x = 0.0, min_y = 0.0, max_x = 0.0, max_y = 0.0;
  double t_min = 0.0, t_max = 0.0;
  std::uint32_t ordinal = 0;
};

/// Packed R-tree over block footers, bulk-loaded with the
/// Sort-Tile-Recursive (STR) algorithm: entries are sorted into vertical
/// slices by bbox center x, each slice sorted by center y, and chopped
/// into leaves of kFanout consecutive entries; parent levels group
/// kFanout consecutive children until one root remains. The packing
/// gives ~100% node occupancy and spatially coherent siblings without
/// any insert-time balancing — the right trade for an index rebuilt from
/// footers on every open.
///
/// Every node carries the union bounding box *and* union time interval
/// of its subtree, so a spatio-temporal window query descends only into
/// subtrees that overlap in both dimensions and visits O(log n) nodes on
/// selective windows instead of every footer. The entry-level test uses
/// exactly the same predicates as the flat footer scan, so the candidate
/// block set (and therefore the query result) is identical in both scan
/// modes — the flat scan stays available as the verification oracle.
///
/// Immutable after Build(); queries are const and thread-safe.
class BlockIndex {
 public:
  /// Node capacity (children per internal node, entries per leaf).
  static constexpr std::size_t kFanout = 8;

  /// (Re)builds the tree from `entries`. An empty vector clears it.
  void Build(std::vector<BlockIndexEntry> entries);

  /// Appends to `ordinals` every entry whose bbox overlaps `window` and
  /// whose time interval overlaps [t_min, t_max]. Ordinals come out in
  /// tree order — callers wanting the flat-scan order must sort.
  /// `nodes_visited` (if non-null) is incremented once per tree node
  /// whose box/interval was tested — the number the acceptance criterion
  /// compares against the flat scan's footer count. `window` must be
  /// non-empty and already inflated by the caller.
  void Query(const geo::BoundingBox& window, double t_min, double t_max,
             std::vector<std::uint32_t>* ordinals,
             std::uint64_t* nodes_visited) const;

  bool empty() const { return nodes_.empty(); }

  /// Total tree nodes (internal + leaf); 0 when empty.
  std::size_t node_count() const { return nodes_.size(); }

  /// Tree height in levels (1 = a lone leaf root); 0 when empty.
  std::size_t height() const { return height_; }

 private:
  struct Node {
    double min_x = 0.0, min_y = 0.0, max_x = 0.0, max_y = 0.0;
    double t_min = 0.0, t_max = 0.0;
    /// First child node index (internal) or first entry index (leaf).
    std::uint32_t first = 0;
    std::uint32_t count = 0;
    bool leaf = false;
  };

  /// STR-ordered copy of the entries; leaves reference runs of it.
  std::vector<BlockIndexEntry> entries_;
  std::vector<Node> nodes_;
  std::uint32_t root_ = 0;
  std::size_t height_ = 0;
};

}  // namespace operb::store

#endif  // OPERB_STORE_BLOCK_INDEX_H_
