#ifndef OPERB_STORE_READER_H_
#define OPERB_STORE_READER_H_

/// \file
/// Query reader over a trajectory store (sharded directory or legacy
/// single file): per-object reconstruction, window queries via the
/// hierarchical block index, position-at-time.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "geo/bbox.h"
#include "geo/point.h"
#include "store/block_index.h"
#include "store/format.h"
#include "store/segment_file.h"
#include "traj/multi_object.h"

namespace operb::store {

/// What StoreReader::Open observed about the store.
struct StoreOpenInfo {
  bool tail_dropped = false;        ///< some file's partial tail was ignored
  std::uint64_t dropped_bytes = 0;  ///< bytes ignored across files after
                                    ///< the last valid block
  /// True when the path was a legacy (PR 5) single-file store opened
  /// through the compat shim: one implicit shard, no manifest.
  bool legacy_single_file = false;
  std::uint64_t generation = 0;  ///< manifest generation (0 for legacy)
  /// Times Open() lost the manifest-swap race against a concurrent
  /// compaction commit and re-read the manifest (each retry backs off,
  /// see StoreReader::Open).
  std::uint32_t open_retries = 0;
};

/// How QueryWindow selects candidate blocks.
enum class ScanMode {
  /// Descend the packed R-tree (block_index.h): O(log n) index nodes on
  /// selective windows. The default.
  kIndexed,
  /// Test every block footer linearly — the debug/verify oracle the
  /// indexed path is checked against; both modes select identical
  /// candidates and return identical results.
  kFlatScan,
};

/// Per-query counters — the observable form of the block-skipping
/// claim. blocks_skipped counts blocks rejected on footer metadata
/// alone (no payload read, no decode); blocks_scanned counts blocks
/// whose payload was read and decoded.
///
/// This struct is the per-call view of the `store.query.*` registry
/// instruments (DESIGN.md §10): every query folds the same increments
/// into `obs::MetricsRegistry::Global()`, so a metrics snapshot shows
/// these numbers accumulated across all queries. Per-call values keep
/// working unchanged with OPERB_NO_METRICS (only the fold compiles
/// out).
struct StoreQueryStats {
  std::uint64_t blocks_total = 0;
  std::uint64_t blocks_skipped = 0;
  std::uint64_t blocks_scanned = 0;
  std::uint64_t segments_scanned = 0;  ///< decoded segments inspected
  std::uint64_t segments_matched = 0;
  /// R-tree nodes whose box/interval was tested (kIndexed window queries
  /// only; 0 otherwise). The flat scan's equivalent is blocks_total
  /// footer tests — the acceptance ratio compares the two.
  std::uint64_t index_nodes_visited = 0;
  /// Mirror of StoreOpenInfo::open_retries — how many manifest-swap
  /// races this reader's Open() survived — so per-query telemetry
  /// carries the contention signal without a second API call.
  std::uint32_t open_retries = 0;
};

/// Query reader over a trajectory store.
///
/// Open() accepts either a store directory (manifest + per-shard
/// segment files, the current format) or a legacy single-file store
/// (compat shim, read-only as ever). It reads the manifest, opens every
/// live segment file — footer scans only, payloads stay on disk — and
/// bulk-loads the hierarchical block index from the footers.
///
/// Queries prune blocks whose footer metadata cannot match and decode
/// only the survivors; payload checksums are verified lazily, the first
/// time a query reads a block. Per-object queries additionally prune
/// whole shards: only the object's own shard (traj::ShardOfObject) is
/// consulted. Window queries descend the R-tree by default; the flat
/// footer scan remains available as the verification oracle
/// (ScanMode::kFlatScan) and both modes return identical results in the
/// canonical order (ascending object id, each object's segments in
/// emission order) — which is also why results are byte-identical
/// across shard counts and before/after compaction.
///
/// Queries are thread-safe (file access is serialized internally).
class StoreReader {
 public:
  /// Opens and index-scans the store at `path`. IOError when
  /// unreadable, Corruption when the manifest, a header or any complete
  /// block frame is invalid. A torn tail in a segment file is *not* an
  /// error: it is dropped and reported via open_info().
  static Result<std::unique_ptr<StoreReader>> Open(const std::string& path);

  /// Replaces the sleep Open()'s retry backoff performs between
  /// attempts (tests observe the backoff schedule without real delays).
  /// nullptr restores the real sleep. Not thread-safe against
  /// concurrent Open() calls — a test-only seam.
  static void SetRetrySleepHookForTest(
      std::function<void(std::chrono::microseconds)> hook);

  StoreReader(const StoreReader&) = delete;
  StoreReader& operator=(const StoreReader&) = delete;

  /// The error bound recorded when the store was written.
  double zeta() const { return zeta_; }

  std::size_t block_count() const { return blocks_.size(); }

  /// Total stored segments (sum of footer counts).
  std::uint64_t segment_count() const { return segment_count_; }

  /// Shards the store was written with (1 for legacy files).
  std::size_t num_shards() const { return shard_blocks_.size(); }

  /// Live segment files backing this reader.
  std::size_t file_count() const { return files_.size(); }

  /// Nodes in the hierarchical block index.
  std::size_t index_node_count() const { return index_.node_count(); }

  /// Height of the hierarchical block index (0 when the store is empty).
  std::size_t index_height() const { return index_.height(); }

  const StoreOpenInfo& open_info() const { return open_info_; }

  /// Per-object time-range reconstruction: every stored segment of
  /// `object_id` whose [t_start, t_end] interval overlaps
  /// [t_min, t_max], in emission order — the contiguous piecewise
  /// representation of that object over the range. Only the object's
  /// shard is consulted; within it, blocks whose footer id range or
  /// time interval cannot match are skipped unread.
  Result<std::vector<traj::TimedSegment>> ReconstructObject(
      traj::ObjectId object_id,
      double t_min = -std::numeric_limits<double>::infinity(),
      double t_max = std::numeric_limits<double>::infinity(),
      StoreQueryStats* stats = nullptr) const;

  /// Spatio-temporal window query: every stored segment intersecting
  /// `window` *inflated by zeta* whose time interval overlaps
  /// [t_min, t_max]. The inflation makes the answer sound for original
  /// points: a sample inside `window` lies within zeta of its covering
  /// segment's line, so that segment intersects the inflated window and
  /// is returned — which is also why footer-bbox skipping loses nothing
  /// (DESIGN.md §8). Results come in the canonical order (ascending
  /// object id, emission order within an object) in both scan modes.
  Result<std::vector<traj::TimedSegment>> QueryWindow(
      const geo::BoundingBox& window,
      double t_min = -std::numeric_limits<double>::infinity(),
      double t_max = std::numeric_limits<double>::infinity(),
      StoreQueryStats* stats = nullptr,
      ScanMode mode = ScanMode::kIndexed) const;

  /// Interpolated position of `object_id` at time `t`: the point on the
  /// covering stored segment at the time-proportional parameter. The
  /// result carries the store's error certificate: the original sample
  /// nearest in time lies within zeta (perpendicular) of the covering
  /// segment's line (see DESIGN.md §8 for exactly what is and is not
  /// bounded). NotFound when no stored segment of the object covers `t`.
  Result<geo::Point> PositionAt(traj::ObjectId object_id, double t,
                                StoreQueryStats* stats = nullptr) const;

 private:
  /// One block's global position: which file, which block within it.
  struct GlobalBlock {
    std::uint32_t file = 0;
    std::uint32_t block = 0;
  };

  StoreReader() = default;

  /// Opens a directory store (manifest + segment files) into `reader`.
  static Status OpenDirectory(const std::string& path, StoreReader* reader);

  /// Indexes `file`'s blocks into the global tables under `shard`.
  void AdoptFile(std::unique_ptr<SegmentFileReader> file,
                 std::uint32_t shard);

  const BlockFooter& FooterOf(std::size_t ordinal) const {
    return files_[blocks_[ordinal].file]->blocks()[blocks_[ordinal].block]
        .footer;
  }

  /// Reads, checksum-verifies and decodes block `ordinal`'s payload.
  Result<std::vector<traj::TimedSegment>> ReadBlock(
      std::size_t ordinal) const;

  double zeta_ = 0.0;
  std::uint64_t segment_count_ = 0;
  std::vector<std::unique_ptr<SegmentFileReader>> files_;
  /// All blocks, file-major in manifest order — the emission order every
  /// query iterates candidates in.
  std::vector<GlobalBlock> blocks_;
  /// Block ordinals per shard, ascending.
  std::vector<std::vector<std::uint32_t>> shard_blocks_;
  BlockIndex index_;
  StoreOpenInfo open_info_;
};

}  // namespace operb::store

#endif  // OPERB_STORE_READER_H_
