#ifndef OPERB_STORE_READER_H_
#define OPERB_STORE_READER_H_

/// \file
/// Skip-scan query reader over a trajectory store file: per-object
/// reconstruction, window queries, position-at-time.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "geo/bbox.h"
#include "geo/point.h"
#include "store/format.h"
#include "traj/multi_object.h"

namespace operb::store {

/// What StoreReader::Open observed about the file's tail. An append
/// interrupted mid-block (crash, power cut) leaves a partial final frame;
/// the scan detects it structurally and drops it — the store's recovery
/// contract is "a valid prefix survives" (DESIGN.md §8).
struct StoreOpenInfo {
  bool tail_dropped = false;      ///< a partial/invalid tail was ignored
  std::uint64_t dropped_bytes = 0;  ///< bytes of file ignored after the
                                    ///< last valid block
};

/// Per-query counters — the observable form of the block-skipping
/// claim. blocks_skipped counts blocks rejected on footer metadata
/// alone (no payload read, no decode); blocks_scanned counts blocks
/// whose payload was read and decoded.
struct StoreQueryStats {
  std::uint64_t blocks_total = 0;
  std::uint64_t blocks_skipped = 0;
  std::uint64_t blocks_scanned = 0;
  std::uint64_t segments_scanned = 0;  ///< decoded segments inspected
  std::uint64_t segments_matched = 0;
};

/// Skip-scan query reader over a store file written by StoreWriter.
///
/// Open() scans the block structure once (length prefixes and footers
/// only — payloads stay on disk) and builds the in-memory block index;
/// every query walks that index, prunes blocks whose footer metadata
/// cannot match (id range, time interval, bounding box), and decodes
/// only the survivors. Payload checksums are verified lazily, the first
/// time a query reads a block — a corrupted block surfaces as a
/// Corruption status from the query that touched it.
///
/// Queries are thread-safe (file access is serialized internally).
class StoreReader {
 public:
  /// Opens and index-scans `path`. IOError when unreadable, Corruption
  /// when the header is invalid. A structurally invalid suffix is *not*
  /// an error: it is dropped and reported via open_info().
  static Result<std::unique_ptr<StoreReader>> Open(const std::string& path);

  ~StoreReader();

  StoreReader(const StoreReader&) = delete;
  StoreReader& operator=(const StoreReader&) = delete;

  /// The error bound recorded when the store was written.
  double zeta() const { return zeta_; }

  std::size_t block_count() const { return blocks_.size(); }

  /// Total stored segments (sum of footer counts).
  std::uint64_t segment_count() const { return segment_count_; }

  const StoreOpenInfo& open_info() const { return open_info_; }

  /// Per-object time-range reconstruction: every stored segment of
  /// `object_id` whose [t_start, t_end] interval overlaps
  /// [t_min, t_max], in emission order — the contiguous piecewise
  /// representation of that object over the range. Blocks whose footer
  /// id range or time interval cannot match are skipped unread.
  Result<std::vector<traj::TimedSegment>> ReconstructObject(
      traj::ObjectId object_id,
      double t_min = -std::numeric_limits<double>::infinity(),
      double t_max = std::numeric_limits<double>::infinity(),
      StoreQueryStats* stats = nullptr) const;

  /// Spatio-temporal window query: every stored segment intersecting
  /// `window` *inflated by zeta* whose time interval overlaps
  /// [t_min, t_max]. The inflation makes the answer sound for original
  /// points: a sample inside `window` lies within zeta of its covering
  /// segment's line, so that segment intersects the inflated window and
  /// is returned — which is also why footer-bbox skipping loses nothing
  /// (DESIGN.md §8). Blocks are pruned on footer bbox x time interval.
  Result<std::vector<traj::TimedSegment>> QueryWindow(
      const geo::BoundingBox& window,
      double t_min = -std::numeric_limits<double>::infinity(),
      double t_max = std::numeric_limits<double>::infinity(),
      StoreQueryStats* stats = nullptr) const;

  /// Interpolated position of `object_id` at time `t`: the point on the
  /// covering stored segment at the time-proportional parameter. The
  /// result carries the store's error certificate: the original sample
  /// nearest in time lies within zeta (perpendicular) of the covering
  /// segment's line (see DESIGN.md §8 for exactly what is and is not
  /// bounded). NotFound when no stored segment of the object covers `t`.
  Result<geo::Point> PositionAt(traj::ObjectId object_id, double t,
                                StoreQueryStats* stats = nullptr) const;

 private:
  /// One indexed block: where its payload lives plus its footer.
  struct BlockRef {
    std::uint64_t payload_offset = 0;
    BlockFooter footer;
  };

  StoreReader() = default;

  /// Reads, checksum-verifies and decodes block `i`'s payload.
  Result<std::vector<traj::TimedSegment>> ReadBlock(std::size_t i) const;

  std::string path_;
  double zeta_ = 0.0;
  std::uint64_t segment_count_ = 0;
  std::vector<BlockRef> blocks_;
  StoreOpenInfo open_info_;

  mutable std::mutex file_mu_;  ///< serializes seek+read pairs
  std::FILE* file_ = nullptr;
};

}  // namespace operb::store

#endif  // OPERB_STORE_READER_H_
