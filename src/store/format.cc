#include "store/format.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/serial.h"

namespace operb::store {

namespace {

void PutU32(std::uint32_t v, std::vector<std::uint8_t>* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::uint64_t v, std::vector<std::uint8_t>* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void PutF64(double v, std::vector<std::uint8_t>* out) {
  PutU64(std::bit_cast<std::uint64_t>(v), out);
}

std::uint32_t GetU32(std::span<const std::uint8_t> data, std::size_t pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data[pos + i]) << (8 * i);
  }
  return v;
}

std::uint64_t GetU64(std::span<const std::uint8_t> data, std::size_t pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data[pos + i]) << (8 * i);
  }
  return v;
}

double GetF64(std::span<const std::uint8_t> data, std::size_t pos) {
  return std::bit_cast<double>(GetU64(data, pos));
}

/// Serializes the footer body (everything before the checksum fields).
void EncodeFooterBody(const BlockFooter& footer,
                      std::vector<std::uint8_t>* out) {
  PutU32(kFooterMagic, out);
  PutU32(footer.segment_count, out);
  PutU64(footer.object_min, out);
  PutU64(footer.object_max, out);
  PutF64(footer.t_min, out);
  PutF64(footer.t_max, out);
  PutF64(footer.min_x, out);
  PutF64(footer.min_y, out);
  PutF64(footer.max_x, out);
  PutF64(footer.max_y, out);
  PutU32(footer.payload_bytes, out);
}

}  // namespace

std::uint64_t Fnv1a64(std::span<const std::uint8_t> data,
                      std::uint64_t seed) {
  return serial::Fnv1a64(data, seed);
}

void EncodeFileHeader(double zeta, std::vector<std::uint8_t>* out) {
  out->insert(out->end(), kFileMagicPrefix.begin(), kFileMagicPrefix.end());
  out->push_back(static_cast<std::uint8_t>('0' + kFormatVersion));
  PutU32(kFormatVersion, out);
  PutU32(0, out);  // reserved
  PutF64(zeta, out);
}

Result<FileHeaderInfo> DecodeFileHeader(std::span<const std::uint8_t> data) {
  if (data.size() < kFileHeaderBytes) {
    return Status::Corruption("store file shorter than its header");
  }
  if (!std::equal(kFileMagicPrefix.begin(), kFileMagicPrefix.end(),
                  data.begin())) {
    return Status::Corruption("not a trajectory store (bad magic)");
  }
  const std::uint32_t version = GetU32(data, 8);
  if (version != kFormatVersionLegacy && version != kFormatVersion) {
    return Status::Corruption("unsupported store format version " +
                              std::to_string(version));
  }
  if (data[7] != static_cast<std::uint8_t>('0' + version)) {
    return Status::Corruption(
        "store magic generation disagrees with header version");
  }
  FileHeaderInfo info;
  info.version = version;
  info.zeta = GetF64(data, 16);
  return info;
}

BlockFooter MakeFooter(std::span<const traj::TimedSegment> segments,
                       std::span<const std::uint8_t> payload) {
  BlockFooter f;
  f.payload_bytes = static_cast<std::uint32_t>(payload.size());
  f.segment_count = static_cast<std::uint32_t>(segments.size());
  geo::BoundingBox box;
  bool first = true;
  for (const traj::TimedSegment& s : segments) {
    if (first) {
      f.object_min = f.object_max = s.object_id;
      f.t_min = s.t_start;
      f.t_max = s.t_end;
      first = false;
    } else {
      f.object_min = std::min(f.object_min, s.object_id);
      f.object_max = std::max(f.object_max, s.object_id);
      f.t_min = std::min(f.t_min, s.t_start);
      f.t_max = std::max(f.t_max, s.t_end);
    }
    box.Extend(s.segment.start);
    box.Extend(s.segment.end);
  }
  if (!box.IsEmpty()) {
    f.min_x = box.min_x;
    f.min_y = box.min_y;
    f.max_x = box.max_x;
    f.max_y = box.max_y;
  }
  f.checksum = BlockChecksum(payload, f);
  f.footer_checksum = FooterChecksum(f);
  return f;
}

void EncodeFooter(const BlockFooter& footer,
                  std::vector<std::uint8_t>* out) {
  EncodeFooterBody(footer, out);
  PutU64(footer.checksum, out);
  PutU64(footer.footer_checksum, out);
}

Result<BlockFooter> DecodeFooter(std::span<const std::uint8_t> data,
                                 std::uint32_t version) {
  if (data.size() < FooterBytes(version)) {
    return Status::Corruption("truncated block footer");
  }
  if (GetU32(data, 0) != kFooterMagic) {
    return Status::Corruption("bad block footer magic");
  }
  BlockFooter f;
  f.segment_count = GetU32(data, 4);
  f.object_min = GetU64(data, 8);
  f.object_max = GetU64(data, 16);
  f.t_min = GetF64(data, 24);
  f.t_max = GetF64(data, 32);
  f.min_x = GetF64(data, 40);
  f.min_y = GetF64(data, 48);
  f.max_x = GetF64(data, 56);
  f.max_y = GetF64(data, 64);
  f.payload_bytes = GetU32(data, 72);
  f.checksum = GetU64(data, 76);
  if (version != kFormatVersionLegacy) {
    f.footer_checksum = GetU64(data, 84);
    if (f.footer_checksum != FooterChecksum(f)) {
      return Status::Corruption("block footer checksum mismatch");
    }
  }
  return f;
}

Status ValidateFooterRanges(const BlockFooter& footer) {
  if (footer.segment_count == 0) {
    return Status::Corruption("block footer declares zero segments");
  }
  if (footer.object_min > footer.object_max) {
    return Status::Corruption("block footer has an inverted object id range");
  }
  // Negated comparisons so NaN bounds are rejected too.
  if (!(footer.t_min <= footer.t_max)) {
    return Status::Corruption("block footer has an inverted time interval");
  }
  if (!(footer.min_x <= footer.max_x) || !(footer.min_y <= footer.max_y)) {
    return Status::Corruption("block footer has an inverted bounding box");
  }
  return Status::OK();
}

std::uint64_t BlockChecksum(std::span<const std::uint8_t> payload,
                            const BlockFooter& footer) {
  std::vector<std::uint8_t> body;
  body.reserve(kBlockFooterBytes - 16);
  EncodeFooterBody(footer, &body);
  return Fnv1a64(body, Fnv1a64(payload));
}

std::uint64_t FooterChecksum(const BlockFooter& footer) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(kBlockFooterBytes - 8);
  EncodeFooterBody(footer, &bytes);
  std::uint64_t checksum = footer.checksum;
  for (int i = 0; i < 8; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(checksum >> (8 * i)));
  }
  return Fnv1a64(bytes);
}

}  // namespace operb::store
