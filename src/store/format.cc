#include "store/format.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace operb::store {

namespace {

void PutU32(std::uint32_t v, std::vector<std::uint8_t>* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::uint64_t v, std::vector<std::uint8_t>* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void PutF64(double v, std::vector<std::uint8_t>* out) {
  PutU64(std::bit_cast<std::uint64_t>(v), out);
}

std::uint32_t GetU32(std::span<const std::uint8_t> data, std::size_t pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data[pos + i]) << (8 * i);
  }
  return v;
}

std::uint64_t GetU64(std::span<const std::uint8_t> data, std::size_t pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data[pos + i]) << (8 * i);
  }
  return v;
}

double GetF64(std::span<const std::uint8_t> data, std::size_t pos) {
  return std::bit_cast<double>(GetU64(data, pos));
}

/// Serializes the footer body (everything but the trailing checksum).
void EncodeFooterBody(const BlockFooter& footer,
                      std::vector<std::uint8_t>* out) {
  PutU32(kFooterMagic, out);
  PutU32(footer.segment_count, out);
  PutU64(footer.object_min, out);
  PutU64(footer.object_max, out);
  PutF64(footer.t_min, out);
  PutF64(footer.t_max, out);
  PutF64(footer.min_x, out);
  PutF64(footer.min_y, out);
  PutF64(footer.max_x, out);
  PutF64(footer.max_y, out);
  PutU32(footer.payload_bytes, out);
}

}  // namespace

std::uint64_t Fnv1a64(std::span<const std::uint8_t> data,
                      std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= 0x0000'0100'0000'01B3ULL;
  }
  return h;
}

void EncodeFileHeader(double zeta, std::vector<std::uint8_t>* out) {
  out->insert(out->end(), kFileMagic.begin(), kFileMagic.end());
  PutU32(kFormatVersion, out);
  PutU32(0, out);  // reserved
  PutF64(zeta, out);
}

Result<double> DecodeFileHeader(std::span<const std::uint8_t> data) {
  if (data.size() < kFileHeaderBytes) {
    return Status::Corruption("store file shorter than its header");
  }
  if (!std::equal(kFileMagic.begin(), kFileMagic.end(), data.begin())) {
    return Status::Corruption("not a trajectory store (bad magic)");
  }
  const std::uint32_t version = GetU32(data, 8);
  if (version != kFormatVersion) {
    return Status::Corruption("unsupported store format version " +
                              std::to_string(version));
  }
  return GetF64(data, 16);
}

BlockFooter MakeFooter(std::span<const traj::TimedSegment> segments,
                       std::span<const std::uint8_t> payload) {
  BlockFooter f;
  f.payload_bytes = static_cast<std::uint32_t>(payload.size());
  f.segment_count = static_cast<std::uint32_t>(segments.size());
  geo::BoundingBox box;
  bool first = true;
  for (const traj::TimedSegment& s : segments) {
    if (first) {
      f.object_min = f.object_max = s.object_id;
      f.t_min = s.t_start;
      f.t_max = s.t_end;
      first = false;
    } else {
      f.object_min = std::min(f.object_min, s.object_id);
      f.object_max = std::max(f.object_max, s.object_id);
      f.t_min = std::min(f.t_min, s.t_start);
      f.t_max = std::max(f.t_max, s.t_end);
    }
    box.Extend(s.segment.start);
    box.Extend(s.segment.end);
  }
  if (!box.IsEmpty()) {
    f.min_x = box.min_x;
    f.min_y = box.min_y;
    f.max_x = box.max_x;
    f.max_y = box.max_y;
  }
  f.checksum = BlockChecksum(payload, f);
  return f;
}

void EncodeFooter(const BlockFooter& footer,
                  std::vector<std::uint8_t>* out) {
  EncodeFooterBody(footer, out);
  PutU64(footer.checksum, out);
}

Result<BlockFooter> DecodeFooter(std::span<const std::uint8_t> data) {
  if (data.size() < kBlockFooterBytes) {
    return Status::Corruption("truncated block footer");
  }
  if (GetU32(data, 0) != kFooterMagic) {
    return Status::Corruption("bad block footer magic");
  }
  BlockFooter f;
  f.segment_count = GetU32(data, 4);
  f.object_min = GetU64(data, 8);
  f.object_max = GetU64(data, 16);
  f.t_min = GetF64(data, 24);
  f.t_max = GetF64(data, 32);
  f.min_x = GetF64(data, 40);
  f.min_y = GetF64(data, 48);
  f.max_x = GetF64(data, 56);
  f.max_y = GetF64(data, 64);
  f.payload_bytes = GetU32(data, 72);
  f.checksum = GetU64(data, 76);
  return f;
}

std::uint64_t BlockChecksum(std::span<const std::uint8_t> payload,
                            const BlockFooter& footer) {
  std::vector<std::uint8_t> body;
  body.reserve(kBlockFooterBytes - 8);
  EncodeFooterBody(footer, &body);
  return Fnv1a64(body, Fnv1a64(payload));
}

}  // namespace operb::store
