#include "store/reader.h"

#include <algorithm>
#include <filesystem>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "store/manifest.h"
#include "store/query_filter.h"

namespace operb::store {

namespace {

/// Registry instruments the reader folds its per-call stats into: each
/// Open/query computes a local StoreQueryStats (the per-call API value)
/// and the same increments accumulate here, so snapshots show the
/// cumulative view of the numbers the structs already report
/// (DESIGN.md §10). Acquired once, then lock-free.
struct ReaderMetrics {
  obs::Counter* opens;
  obs::Counter* open_retries;
  obs::Counter* blocks_scanned;
  obs::Counter* blocks_skipped;
  obs::Counter* segments_scanned;
  obs::Counter* segments_matched;
  obs::Counter* index_nodes_visited;
  obs::LatencyHistogram* open_ns;
  obs::LatencyHistogram* window_query_ns;
  obs::LatencyHistogram* reconstruct_ns;
  obs::LatencyHistogram* position_at_ns;
};

ReaderMetrics& GetReaderMetrics() {
  static ReaderMetrics* const m = [] {
    auto& r = obs::MetricsRegistry::Global();
    return new ReaderMetrics{
        r.GetCounter("store.opens"),
        r.GetCounter("store.open_retries"),
        r.GetCounter("store.query.blocks_scanned"),
        r.GetCounter("store.query.blocks_skipped"),
        r.GetCounter("store.query.segments_scanned"),
        r.GetCounter("store.query.segments_matched"),
        r.GetCounter("store.query.index_nodes_visited"),
        r.GetHistogram("store.open_ns"),
        r.GetHistogram("store.query.window_ns"),
        r.GetHistogram("store.query.reconstruct_ns"),
        r.GetHistogram("store.query.position_at_ns"),
    };
  }();
  return *m;
}

/// The per-query half of the fold (open_retries folds at Open time).
void FoldQueryStats(const StoreQueryStats& s) {
  if constexpr (obs::kMetricsEnabled) {
    ReaderMetrics& m = GetReaderMetrics();
    m.blocks_scanned->Add(s.blocks_scanned);
    m.blocks_skipped->Add(s.blocks_skipped);
    m.segments_scanned->Add(s.segments_scanned);
    m.segments_matched->Add(s.segments_matched);
    m.index_nodes_visited->Add(s.index_nodes_visited);
  }
}

/// Backoff schedule of Open()'s manifest-swap retry: first wait, the
/// cap each doubling saturates at, and the attempt budget. Six attempts
/// at these spacings ride out several back-to-back compaction commits
/// without turning a persistently broken store into a long hang.
constexpr std::chrono::microseconds kOpenRetryInitialBackoff{100};
constexpr std::chrono::microseconds kOpenRetryMaxBackoff{5000};
constexpr int kOpenMaxAttempts = 6;

std::function<void(std::chrono::microseconds)>& OpenRetrySleepHook() {
  static auto* hook = new std::function<void(std::chrono::microseconds)>();
  return *hook;
}

void OpenRetrySleep(std::chrono::microseconds d) {
  const auto& hook = OpenRetrySleepHook();
  if (hook) {
    hook(d);
  } else {
    std::this_thread::sleep_for(d);
  }
}

// The query predicates themselves (IntervalsOverlap, Inflate,
// BoxesOverlap, SegmentIntersectsBox, InterpolateOnSegment) live in
// store/query_filter.h — shared with the server's read-your-writes
// merge so both halves of a merged answer filter identically.

}  // namespace

void StoreReader::SetRetrySleepHookForTest(
    std::function<void(std::chrono::microseconds)> hook) {
  OpenRetrySleepHook() = std::move(hook);
}

Result<std::unique_ptr<StoreReader>> StoreReader::Open(
    const std::string& path) {
  namespace fs = std::filesystem;
  obs::ScopedTimer open_timer(
      obs::kMetricsEnabled ? GetReaderMetrics().open_ns : nullptr);
  std::unique_ptr<StoreReader> reader(new StoreReader());

  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    // A compaction can commit between our manifest read and the file
    // opens, unlinking a file we were about to open; re-reading the
    // manifest and retrying converges because every retry starts from a
    // newer generation. Losing twice in a row means commits are coming
    // fast, so the retries back off (doubling, capped) instead of
    // hammering the manifest in a tight loop.
    Status open = Status::OK();
    std::uint32_t retries = 0;
    std::chrono::microseconds backoff = kOpenRetryInitialBackoff;
    for (int attempt = 0; attempt < kOpenMaxAttempts; ++attempt) {
      reader.reset(new StoreReader());
      open = OpenDirectory(path, reader.get());
      if (open.ok() || open.code() != StatusCode::kIOError) break;
      if (attempt + 1 == kOpenMaxAttempts) break;
      ++retries;
      OpenRetrySleep(backoff);
      backoff = std::min(backoff * 2, kOpenRetryMaxBackoff);
    }
    OPERB_RETURN_IF_ERROR(open);
    reader->open_info_.open_retries = retries;
    if constexpr (obs::kMetricsEnabled) {
      GetReaderMetrics().open_retries->Add(retries);
    }
  } else {
    // Compat shim: a regular file is a legacy (PR 5) single-file store —
    // one implicit shard, no manifest.
    OPERB_ASSIGN_OR_RETURN(std::unique_ptr<SegmentFileReader> file,
                           SegmentFileReader::Open(path));
    reader->zeta_ = file->zeta();
    reader->open_info_.legacy_single_file = true;
    reader->shard_blocks_.resize(1);
    reader->AdoptFile(std::move(file), 0);
  }

  // Bulk-load the hierarchical index from the footers just scanned.
  std::vector<BlockIndexEntry> entries;
  entries.reserve(reader->blocks_.size());
  for (std::size_t i = 0; i < reader->blocks_.size(); ++i) {
    const BlockFooter& f = reader->FooterOf(i);
    BlockIndexEntry e;
    e.min_x = f.min_x;
    e.min_y = f.min_y;
    e.max_x = f.max_x;
    e.max_y = f.max_y;
    e.t_min = f.t_min;
    e.t_max = f.t_max;
    e.ordinal = static_cast<std::uint32_t>(i);
    entries.push_back(e);
  }
  reader->index_.Build(std::move(entries));
  if constexpr (obs::kMetricsEnabled) GetReaderMetrics().opens->Increment();
  return reader;
}

Status StoreReader::OpenDirectory(const std::string& path,
                                  StoreReader* reader) {
  namespace fs = std::filesystem;
  OPERB_ASSIGN_OR_RETURN(const Manifest manifest, ReadManifest(path));
  reader->zeta_ = manifest.zeta;
  reader->open_info_.generation = manifest.generation;
  reader->shard_blocks_.resize(manifest.num_shards);
  for (const SegmentFileInfo& info : manifest.files) {
    const std::string file_path = (fs::path(path) / info.name).string();
    OPERB_ASSIGN_OR_RETURN(std::unique_ptr<SegmentFileReader> file,
                           SegmentFileReader::Open(file_path));
    if (file->zeta() != manifest.zeta) {
      return Status::Corruption("segment file " + info.name +
                                " zeta disagrees with the manifest");
    }
    reader->AdoptFile(std::move(file), info.shard);
  }
  return Status::OK();
}

void StoreReader::AdoptFile(std::unique_ptr<SegmentFileReader> file,
                            std::uint32_t shard) {
  const std::uint32_t file_index = static_cast<std::uint32_t>(files_.size());
  if (file->open_info().tail_dropped) {
    open_info_.tail_dropped = true;
    open_info_.dropped_bytes += file->open_info().dropped_bytes;
  }
  for (std::size_t b = 0; b < file->blocks().size(); ++b) {
    const std::uint32_t ordinal = static_cast<std::uint32_t>(blocks_.size());
    blocks_.push_back(GlobalBlock{file_index, static_cast<std::uint32_t>(b)});
    shard_blocks_[shard].push_back(ordinal);
    segment_count_ += file->blocks()[b].footer.segment_count;
  }
  files_.push_back(std::move(file));
}

Result<std::vector<traj::TimedSegment>> StoreReader::ReadBlock(
    std::size_t ordinal) const {
  const GlobalBlock& b = blocks_[ordinal];
  return files_[b.file]->ReadBlock(b.block);
}

Result<std::vector<traj::TimedSegment>> StoreReader::ReconstructObject(
    traj::ObjectId object_id, double t_min, double t_max,
    StoreQueryStats* stats) const {
  obs::ScopedTimer timer(
      obs::kMetricsEnabled ? GetReaderMetrics().reconstruct_ns : nullptr);
  StoreQueryStats local;
  local.blocks_total = blocks_.size();
  local.open_retries = open_info_.open_retries;
  std::vector<traj::TimedSegment> out;
  // The shard partition prunes every other shard's blocks without a
  // footer test — they count as skipped, keeping the invariant
  // skipped + scanned == total.
  const std::vector<std::uint32_t>& candidates =
      shard_blocks_[traj::ShardOfObject(object_id, shard_blocks_.size())];
  for (const std::uint32_t ordinal : candidates) {
    const BlockFooter& f = FooterOf(ordinal);
    if (object_id < f.object_min || object_id > f.object_max ||
        !IntervalsOverlap(f.t_min, f.t_max, t_min, t_max)) {
      continue;
    }
    ++local.blocks_scanned;
    OPERB_ASSIGN_OR_RETURN(const std::vector<traj::TimedSegment> segments,
                           ReadBlock(ordinal));
    local.segments_scanned += segments.size();
    for (const traj::TimedSegment& s : segments) {
      if (s.object_id == object_id &&
          IntervalsOverlap(s.t_start, s.t_end, t_min, t_max)) {
        out.push_back(s);
        ++local.segments_matched;
      }
    }
  }
  local.blocks_skipped = local.blocks_total - local.blocks_scanned;
  FoldQueryStats(local);
  if (stats != nullptr) *stats = local;
  return out;
}

Result<std::vector<traj::TimedSegment>> StoreReader::QueryWindow(
    const geo::BoundingBox& window, double t_min, double t_max,
    StoreQueryStats* stats, ScanMode mode) const {
  obs::ScopedTimer timer(
      obs::kMetricsEnabled ? GetReaderMetrics().window_query_ns : nullptr);
  StoreQueryStats local;
  local.blocks_total = blocks_.size();
  local.open_retries = open_info_.open_retries;
  std::vector<traj::TimedSegment> out;
  if (window.IsEmpty() || blocks_.empty()) {
    local.blocks_skipped = blocks_.size();
    FoldQueryStats(local);
    if (stats != nullptr) *stats = local;
    return out;
  }
  // One inflation, shared by the block test and the per-segment test:
  // original samples stray up to zeta (perpendicular) from their
  // covering segment, so serving "everything that might have been in
  // `window`" means matching segment geometry against window + zeta.
  const geo::BoundingBox inflated = Inflate(window, zeta_);

  // Candidate selection: the R-tree and the flat footer scan apply the
  // same block-level predicates, so they select the same candidates —
  // the flat mode is the oracle the indexed mode is verified against.
  std::vector<std::uint32_t> candidates;
  if (mode == ScanMode::kIndexed && !index_.empty()) {
    index_.Query(inflated, t_min, t_max, &candidates,
                 &local.index_nodes_visited);
    // Tree order -> emission order.
    std::sort(candidates.begin(), candidates.end());
  } else {
    for (std::uint32_t i = 0; i < blocks_.size(); ++i) {
      const BlockFooter& f = FooterOf(i);
      if (IntervalsOverlap(f.t_min, f.t_max, t_min, t_max) &&
          BoxesOverlap(f.BBox(), inflated)) {
        candidates.push_back(i);
      }
    }
  }

  for (const std::uint32_t ordinal : candidates) {
    ++local.blocks_scanned;
    OPERB_ASSIGN_OR_RETURN(const std::vector<traj::TimedSegment> segments,
                           ReadBlock(ordinal));
    local.segments_scanned += segments.size();
    for (const traj::TimedSegment& s : segments) {
      if (SegmentMatchesWindow(s, inflated, t_min, t_max)) {
        out.push_back(s);
        ++local.segments_matched;
      }
    }
  }
  local.blocks_skipped = local.blocks_total - local.blocks_scanned;

  // Canonical result order: ascending object id, each object's segments
  // in emission order (candidates were visited in emission order and
  // the sort is stable). This is what makes results byte-identical
  // across scan modes, shard counts and compaction states.
  std::stable_sort(out.begin(), out.end(),
                   [](const traj::TimedSegment& a,
                      const traj::TimedSegment& b) {
                     return a.object_id < b.object_id;
                   });
  FoldQueryStats(local);
  if (stats != nullptr) *stats = local;
  return out;
}

Result<geo::Point> StoreReader::PositionAt(traj::ObjectId object_id,
                                           double t,
                                           StoreQueryStats* stats) const {
  obs::ScopedTimer timer(
      obs::kMetricsEnabled ? GetReaderMetrics().position_at_ns : nullptr);
  OPERB_ASSIGN_OR_RETURN(const std::vector<traj::TimedSegment> covering,
                         ReconstructObject(object_id, t, t, stats));
  for (const traj::TimedSegment& s : covering) {
    if (s.t_start <= t && t <= s.t_end) {
      return InterpolateOnSegment(s, t);
    }
  }
  return Status::NotFound("object " + std::to_string(object_id) +
                          " has no stored segment covering t=" +
                          std::to_string(t));
}

}  // namespace operb::store
