#include "store/reader.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "codec/segment_codec.h"

namespace operb::store {

namespace {

/// std::fseek takes a long, which is 32 bits on LLP64 platforms; a
/// position beyond its range must fail cleanly instead of wrapping into
/// a misread. (On LP64 this is a no-op guard.)
bool SeekTo(std::FILE* file, std::uint64_t pos) {
  if (pos > static_cast<std::uint64_t>(
                std::numeric_limits<long>::max())) {
    return false;
  }
  return std::fseek(file, static_cast<long>(pos), SEEK_SET) == 0;
}

bool IntervalsOverlap(double a_min, double a_max, double b_min,
                      double b_max) {
  return a_min <= b_max && b_min <= a_max;
}

geo::BoundingBox Inflate(const geo::BoundingBox& box, double margin) {
  geo::BoundingBox out;
  if (box.IsEmpty()) return out;
  out.min_x = box.min_x - margin;
  out.min_y = box.min_y - margin;
  out.max_x = box.max_x + margin;
  out.max_y = box.max_y + margin;
  return out;
}

bool BoxesOverlap(const geo::BoundingBox& a, const geo::BoundingBox& b) {
  return !a.IsEmpty() && !b.IsEmpty() && a.min_x <= b.max_x &&
         b.min_x <= a.max_x && a.min_y <= b.max_y && b.min_y <= a.max_y;
}

/// Liang-Barsky segment/axis-aligned-box intersection test. Degenerate
/// segments degrade to a containment check.
bool SegmentIntersectsBox(geo::Vec2 a, geo::Vec2 b,
                          const geo::BoundingBox& box) {
  if (box.IsEmpty()) return false;
  double t0 = 0.0, t1 = 1.0;
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  const double p[4] = {-dx, dx, -dy, dy};
  const double q[4] = {a.x - box.min_x, box.max_x - a.x, a.y - box.min_y,
                       box.max_y - a.y};
  for (int i = 0; i < 4; ++i) {
    if (p[i] == 0.0) {
      if (q[i] < 0.0) return false;  // parallel and outside this slab
      continue;
    }
    const double r = q[i] / p[i];
    if (p[i] < 0.0) {
      if (r > t1) return false;
      if (r > t0) t0 = r;
    } else {
      if (r < t0) return false;
      if (r < t1) t1 = r;
    }
  }
  return t0 <= t1;
}

}  // namespace

Result<std::unique_ptr<StoreReader>> StoreReader::Open(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IOError("cannot open store file " + path);
  }
  std::unique_ptr<StoreReader> reader(new StoreReader());
  reader->path_ = path;
  reader->file_ = file;

  if (std::fseek(file, 0, SEEK_END) != 0) {
    return Status::IOError("cannot seek in store file " + path);
  }
  const long file_size_l = std::ftell(file);
  if (file_size_l < 0) {
    return Status::IOError("cannot size store file " + path);
  }
  const std::uint64_t file_size = static_cast<std::uint64_t>(file_size_l);

  std::vector<std::uint8_t> header(kFileHeaderBytes);
  if (file_size < kFileHeaderBytes) {
    return Status::Corruption("store file shorter than its header: " + path);
  }
  if (!SeekTo(file, 0) ||
      std::fread(header.data(), 1, header.size(), file) != header.size()) {
    return Status::IOError("cannot read store header from " + path);
  }
  OPERB_ASSIGN_OR_RETURN(reader->zeta_, DecodeFileHeader(header));

  // Structural scan: length prefix -> footer, payloads skipped. The
  // first structurally invalid frame ends the scan; everything from
  // there on is the dropped tail (the crash-recovery "valid prefix"
  // rule — a reader never trusts bytes beyond the first violation).
  std::uint64_t pos = kFileHeaderBytes;
  while (pos < file_size) {
    const std::uint64_t remaining = file_size - pos;
    if (remaining < 4) break;
    std::uint8_t len_bytes[4];
    if (!SeekTo(file, pos) || std::fread(len_bytes, 1, 4, file) != 4) {
      return Status::IOError("cannot read block length in " + path);
    }
    const std::uint32_t payload_bytes =
        static_cast<std::uint32_t>(len_bytes[0]) |
        (static_cast<std::uint32_t>(len_bytes[1]) << 8) |
        (static_cast<std::uint32_t>(len_bytes[2]) << 16) |
        (static_cast<std::uint32_t>(len_bytes[3]) << 24);
    if (remaining < 4 + static_cast<std::uint64_t>(payload_bytes) +
                        kBlockFooterBytes) {
      break;  // partial tail frame
    }
    std::vector<std::uint8_t> footer_bytes(kBlockFooterBytes);
    if (!SeekTo(file, pos + 4 + payload_bytes) ||
        std::fread(footer_bytes.data(), 1, footer_bytes.size(), file) !=
            footer_bytes.size()) {
      return Status::IOError("cannot read block footer in " + path);
    }
    const Result<BlockFooter> footer = DecodeFooter(footer_bytes);
    if (!footer.ok() || footer->payload_bytes != payload_bytes) {
      break;  // torn or foreign bytes: drop from here
    }
    BlockRef ref;
    ref.payload_offset = pos + 4;
    ref.footer = *footer;
    reader->segment_count_ += footer->segment_count;
    reader->blocks_.push_back(ref);
    pos += 4 + payload_bytes + kBlockFooterBytes;
  }
  if (pos < file_size) {
    reader->open_info_.tail_dropped = true;
    reader->open_info_.dropped_bytes = file_size - pos;
  }
  return reader;
}

StoreReader::~StoreReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::vector<traj::TimedSegment>> StoreReader::ReadBlock(
    std::size_t i) const {
  const BlockRef& ref = blocks_[i];
  std::vector<std::uint8_t> payload(ref.footer.payload_bytes);
  {
    const std::lock_guard<std::mutex> lock(file_mu_);
    if (!SeekTo(file_, ref.payload_offset) ||
        std::fread(payload.data(), 1, payload.size(), file_) !=
            payload.size()) {
      return Status::IOError("cannot read store block from " + path_);
    }
  }
  if (BlockChecksum(payload, ref.footer) != ref.footer.checksum) {
    return Status::Corruption("store block " + std::to_string(i) +
                              " checksum mismatch in " + path_);
  }
  OPERB_ASSIGN_OR_RETURN(std::vector<traj::TimedSegment> segments,
                         codec::DecodeSegmentBlock(payload));
  if (segments.size() != ref.footer.segment_count) {
    return Status::Corruption("store block " + std::to_string(i) +
                              " segment count mismatch in " + path_);
  }
  return segments;
}

Result<std::vector<traj::TimedSegment>> StoreReader::ReconstructObject(
    traj::ObjectId object_id, double t_min, double t_max,
    StoreQueryStats* stats) const {
  StoreQueryStats local;
  local.blocks_total = blocks_.size();
  std::vector<traj::TimedSegment> out;
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    const BlockFooter& f = blocks_[i].footer;
    if (object_id < f.object_min || object_id > f.object_max ||
        !IntervalsOverlap(f.t_min, f.t_max, t_min, t_max)) {
      ++local.blocks_skipped;
      continue;
    }
    ++local.blocks_scanned;
    OPERB_ASSIGN_OR_RETURN(const std::vector<traj::TimedSegment> segments,
                           ReadBlock(i));
    local.segments_scanned += segments.size();
    for (const traj::TimedSegment& s : segments) {
      if (s.object_id == object_id &&
          IntervalsOverlap(s.t_start, s.t_end, t_min, t_max)) {
        out.push_back(s);
        ++local.segments_matched;
      }
    }
  }
  if (stats != nullptr) *stats = local;
  return out;
}

Result<std::vector<traj::TimedSegment>> StoreReader::QueryWindow(
    const geo::BoundingBox& window, double t_min, double t_max,
    StoreQueryStats* stats) const {
  StoreQueryStats local;
  local.blocks_total = blocks_.size();
  std::vector<traj::TimedSegment> out;
  if (window.IsEmpty()) {
    local.blocks_skipped = blocks_.size();
    if (stats != nullptr) *stats = local;
    return out;
  }
  // One inflation, shared by the block test and the per-segment test:
  // original samples stray up to zeta (perpendicular) from their
  // covering segment, so serving "everything that might have been in
  // `window`" means matching segment geometry against window + zeta.
  const geo::BoundingBox inflated = Inflate(window, zeta_);
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    const BlockFooter& f = blocks_[i].footer;
    if (!IntervalsOverlap(f.t_min, f.t_max, t_min, t_max) ||
        !BoxesOverlap(f.BBox(), inflated)) {
      ++local.blocks_skipped;
      continue;
    }
    ++local.blocks_scanned;
    OPERB_ASSIGN_OR_RETURN(const std::vector<traj::TimedSegment> segments,
                           ReadBlock(i));
    local.segments_scanned += segments.size();
    for (const traj::TimedSegment& s : segments) {
      if (IntervalsOverlap(s.t_start, s.t_end, t_min, t_max) &&
          SegmentIntersectsBox(s.segment.start, s.segment.end, inflated)) {
        out.push_back(s);
        ++local.segments_matched;
      }
    }
  }
  if (stats != nullptr) *stats = local;
  return out;
}

Result<geo::Point> StoreReader::PositionAt(traj::ObjectId object_id,
                                           double t,
                                           StoreQueryStats* stats) const {
  OPERB_ASSIGN_OR_RETURN(const std::vector<traj::TimedSegment> covering,
                         ReconstructObject(object_id, t, t, stats));
  for (const traj::TimedSegment& s : covering) {
    if (s.t_start <= t && t <= s.t_end) {
      const double span = s.t_end - s.t_start;
      const double u = span > 0.0 ? (t - s.t_start) / span : 0.0;
      const geo::Vec2 pos = s.segment.AsSegment().At(u);
      return geo::Point{pos.x, pos.y, t};
    }
  }
  return Status::NotFound("object " + std::to_string(object_id) +
                          " has no stored segment covering t=" +
                          std::to_string(t));
}

}  // namespace operb::store
