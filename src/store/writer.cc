#include "store/writer.h"

#include <cmath>
#include <filesystem>
#include <utility>

#include "store/store_metrics.h"

namespace operb::store {

namespace fs = std::filesystem;

Status StoreWriterOptions::Validate() const {
  if (!(zeta > 0.0) || !std::isfinite(zeta)) {
    return Status::InvalidArgument(
        "store zeta must be positive and finite");
  }
  if (block_budget_bytes < 1024) {
    return Status::InvalidArgument(
        "store block budget must be at least 1024 bytes");
  }
  // The frame's length prefix and footer echo are u32; cap the budget
  // far below that so an encoding overshooting the estimate can never
  // wrap the prefix (which would corrupt every later block).
  if (block_budget_bytes > (std::size_t{1} << 30)) {
    return Status::InvalidArgument(
        "store block budget must be at most 1 GiB");
  }
  if (num_shards < 1 || num_shards > 65536) {
    return Status::InvalidArgument(
        "store shard count must be in [1, 65536]");
  }
  return Status::OK();
}

Result<std::unique_ptr<StoreWriter>> StoreWriter::Create(
    const std::string& path, const StoreWriterOptions& options) {
  OPERB_RETURN_IF_ERROR(options.Validate());

  std::error_code ec;
  const fs::file_status st = fs::status(path, ec);
  // A leftover single-file store (or any regular file) at the path gives
  // way, matching the old writer's truncate-on-create semantics.
  if (!ec && fs::is_regular_file(st)) {
    fs::remove(path, ec);
    if (ec) {
      return Status::IOError("cannot replace file " + path +
                             " with a store directory");
    }
  }
  // Throw-free status queries: `st` was taken with an error_code, and
  // fs::exists(p, ec) reports a failed stat as "absent" instead of
  // throwing out of this function's Status contract.
  const bool existed = fs::is_directory(st);
  if (options.append &&
      (!existed || !fs::exists(fs::path(path) / kManifestFileName, ec))) {
    // Appending promises the store already exists; silently creating a
    // fresh one would hide a typo'd path.
    return Status::IOError("cannot append: no store manifest at " + path);
  }
  if (!existed) {
    // Single-level create: a missing parent is the caller's error, not
    // something to silently mkdir -p over.
    if (!fs::create_directory(path, ec) || ec) {
      return Status::IOError("cannot create store directory " + path);
    }
  }

  const std::lock_guard<std::mutex> lock(ManifestCommitMutex(path));

  Manifest manifest;
  if (options.append) {
    OPERB_ASSIGN_OR_RETURN(manifest, ReadManifest(path));
    if (manifest.zeta != options.zeta) {
      return Status::InvalidArgument(
          "append zeta " + std::to_string(options.zeta) +
          " does not match the store's zeta " +
          std::to_string(manifest.zeta));
    }
    if (manifest.num_shards != options.num_shards) {
      return Status::InvalidArgument(
          "append shard count " + std::to_string(options.num_shards) +
          " does not match the store's " +
          std::to_string(manifest.num_shards) + " shards");
    }
    ++manifest.generation;
  } else {
    if (existed) {
      // Start over: remove the previous store's files (and only those —
      // foreign files in the directory are left alone).
      for (const fs::directory_entry& entry :
           fs::directory_iterator(path, ec)) {
        if (!entry.is_regular_file(ec)) continue;
        if (IsStoreFileName(entry.path().filename().string())) {
          fs::remove(entry.path(), ec);
        }
      }
    }
    manifest.generation = 1;
    manifest.zeta = options.zeta;
    manifest.num_shards = static_cast<std::uint32_t>(options.num_shards);
  }
  manifest.block_budget_bytes = options.block_budget_bytes;

  std::unique_ptr<StoreWriter> writer(new StoreWriter(path, options));
  for (std::size_t s = 0; s < options.num_shards; ++s) {
    const std::string name = SegmentFileName(static_cast<std::uint32_t>(s),
                                             manifest.generation);
    const std::string file_path = (fs::path(path) / name).string();
    OPERB_ASSIGN_OR_RETURN(std::unique_ptr<SegmentFileWriter> shard,
                           SegmentFileWriter::Create(
                               file_path, options.zeta,
                               options.block_budget_bytes, options.env));
    writer->shards_.push_back(std::move(shard));
    writer->session_files_.push_back(name);
    SegmentFileInfo info;
    info.shard = static_cast<std::uint32_t>(s);
    info.level = 0;
    info.sealed = false;  // active until Close() commits the seal
    info.name = name;
    manifest.files.push_back(info);
  }

  // The opening commit: from here a concurrent reader sees this
  // generation and serves every flushed block of the session's files.
  OPERB_RETURN_IF_ERROR(WriteManifest(path, manifest, options.env));
  writer->opened_ = true;
  std::vector<std::uint8_t> encoded;
  EncodeManifest(manifest, &encoded);
  writer->manifest_bytes_ = encoded.size();
  return writer;
}

StoreWriter::StoreWriter(std::string dir, const StoreWriterOptions& options)
    : options_(options), dir_(std::move(dir)) {}

StoreWriter::~StoreWriter() { Close(); }

Status StoreWriter::Append(const traj::TimedSegment& segment) {
  if (closed_) {
    return Status::InvalidArgument("append to a closed store writer");
  }
  const std::size_t shard =
      traj::ShardOfObject(segment.object_id, shards_.size());
  if constexpr (obs::kMetricsEnabled) {
    GetStoreWriteMetrics().segments_appended->Increment();
  }
  return shards_[shard]->Append(segment);
}

Status StoreWriter::Close() {
  if (closed_) return first_error_;
  closed_ = true;
  for (const std::unique_ptr<SegmentFileWriter>& shard : shards_) {
    const Status s = shard->Close();
    if (!s.ok() && first_error_.ok()) first_error_ = s;
    stats_.segments += shard->stats().segments;
    stats_.blocks += shard->stats().blocks;
    stats_.payload_bytes += shard->stats().payload_bytes;
    stats_.file_bytes += shard->stats().file_bytes;
  }

  // Seal the session: re-read the manifest under the commit lock (a
  // background compaction may have advanced it) and flip this session's
  // files to sealed in a new generation. Skipped when the opening
  // commit never happened — there is no session in the manifest to
  // seal, and the half-built writer Create() destroys on its error
  // paths dies while Create() still holds the commit mutex.
  if (opened_) {
    const std::lock_guard<std::mutex> lock(ManifestCommitMutex(dir_));
    Result<Manifest> current = ReadManifest(dir_);
    if (!current.ok()) {
      if (first_error_.ok()) first_error_ = current.status();
    } else {
      Manifest manifest = std::move(current).value();
      ++manifest.generation;
      for (SegmentFileInfo& f : manifest.files) {
        for (const std::string& name : session_files_) {
          if (f.name == name) f.sealed = true;
        }
      }
      const Status commit = WriteManifest(dir_, manifest, options_.env);
      if (!commit.ok() && first_error_.ok()) first_error_ = commit;
      std::vector<std::uint8_t> encoded;
      EncodeManifest(manifest, &encoded);
      manifest_bytes_ = encoded.size();
    }
  }

  stats_.file_bytes += manifest_bytes_;
  if (stats_.segments > 0) {
    stats_.write_amplification =
        static_cast<double>(stats_.file_bytes) /
        (kRawSegmentBytes * static_cast<double>(stats_.segments));
  }
  return first_error_;
}

}  // namespace operb::store
