#include "store/writer.h"

#include <cmath>
#include <limits>
#include <utility>

#include "codec/segment_codec.h"

namespace operb::store {

Status StoreWriterOptions::Validate() const {
  if (!(zeta > 0.0) || !std::isfinite(zeta)) {
    return Status::InvalidArgument(
        "store zeta must be positive and finite");
  }
  if (block_budget_bytes < 1024) {
    return Status::InvalidArgument(
        "store block budget must be at least 1024 bytes");
  }
  // The frame's length prefix and footer echo are u32; cap the budget
  // far below that so an encoding overshooting the estimate can never
  // wrap the prefix (which would corrupt every later block).
  if (block_budget_bytes > (std::size_t{1} << 30)) {
    return Status::InvalidArgument(
        "store block budget must be at most 1 GiB");
  }
  return Status::OK();
}

Result<std::unique_ptr<StoreWriter>> StoreWriter::Create(
    const std::string& path, const StoreWriterOptions& options) {
  OPERB_RETURN_IF_ERROR(options.Validate());
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IOError("cannot create store file " + path);
  }
  std::vector<std::uint8_t> header;
  EncodeFileHeader(options.zeta, &header);
  if (std::fwrite(header.data(), 1, header.size(), file) != header.size()) {
    std::fclose(file);
    return Status::IOError("cannot write store header to " + path);
  }
  std::unique_ptr<StoreWriter> writer(new StoreWriter(file, options));
  writer->stats_.file_bytes = header.size();
  return writer;
}

StoreWriter::StoreWriter(std::FILE* file, const StoreWriterOptions& options)
    : options_(options), file_(file) {}

StoreWriter::~StoreWriter() { Close(); }

Status StoreWriter::Append(const traj::TimedSegment& segment) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (closed_) {
    return Status::InvalidArgument("append to a closed store writer");
  }
  pending_[segment.object_id].push_back(segment);
  ++pending_segments_;
  ++stats_.segments;
  if (static_cast<double>(pending_segments_) * estimated_segment_bytes_ >=
      static_cast<double>(options_.block_budget_bytes)) {
    const Status s = SealLocked();
    if (!s.ok() && first_error_.ok()) first_error_ = s;
  }
  return first_error_;
}

Status StoreWriter::SealLocked() {
  if (pending_segments_ == 0) return Status::OK();
  std::vector<traj::TimedSegment> block;
  block.reserve(pending_segments_);
  for (const auto& [id, segments] : pending_) {
    block.insert(block.end(), segments.begin(), segments.end());
  }
  pending_.clear();
  pending_segments_ = 0;

  std::vector<std::uint8_t> payload;
  codec::EncodeSegmentBlock(block, &payload);
  if (payload.size() > std::numeric_limits<std::uint32_t>::max()) {
    // Unreachable while Validate() caps the budget at 1 GiB; refuse to
    // write a wrapped length prefix if it ever regresses.
    return Status::Internal("store block payload exceeds the u32 frame");
  }
  const BlockFooter footer = MakeFooter(block, payload);

  std::vector<std::uint8_t> frame;
  frame.reserve(4 + payload.size() + kBlockFooterBytes);
  const std::uint32_t len = footer.payload_bytes;
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  }
  frame.insert(frame.end(), payload.begin(), payload.end());
  EncodeFooter(footer, &frame);

  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size() ||
      std::fflush(file_) != 0) {
    return Status::IOError("store block write failed");
  }
  ++stats_.blocks;
  stats_.payload_bytes += payload.size();
  stats_.file_bytes += frame.size();
  estimated_segment_bytes_ =
      static_cast<double>(payload.size()) / static_cast<double>(block.size());
  return Status::OK();
}

Status StoreWriter::Close() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return first_error_;
  closed_ = true;
  const Status seal = SealLocked();
  if (!seal.ok() && first_error_.ok()) first_error_ = seal;
  if (std::fclose(file_) != 0 && first_error_.ok()) {
    first_error_ = Status::IOError("store close failed");
  }
  file_ = nullptr;
  if (stats_.segments > 0) {
    stats_.write_amplification =
        static_cast<double>(stats_.file_bytes) /
        (kRawSegmentBytes * static_cast<double>(stats_.segments));
  }
  return first_error_;
}

}  // namespace operb::store
