#ifndef OPERB_STORE_STORE_METRICS_H_
#define OPERB_STORE_STORE_METRICS_H_

#include "obs/metrics.h"

/// Write-path registry instruments shared by the writer, segment-file,
/// manifest and compactor translation units (the read path's live in
/// reader.cc). Like StoreQueryStats, the per-call stats structs
/// (StoreWriterStats, CompactionStats) stay the per-call API — their
/// increments also fold in here so snapshots carry the cumulative view
/// (DESIGN.md §10). Acquired once per process, then lock-free.

namespace operb::store {

struct StoreWriteMetrics {
  obs::Counter* segments_appended;
  obs::Counter* blocks_sealed;
  obs::Counter* file_flushes;
  obs::Counter* bytes_written;
  obs::Counter* manifest_commits;
  obs::Counter* compaction_passes;
  obs::Counter* compaction_bytes_read;
  obs::Counter* compaction_bytes_written;
  obs::Counter* compaction_segments_rewritten;
  /// Last-pass write amplification in thousandths, as a high-water mark
  /// (the exact per-pass ratio stays in CompactionStats).
  obs::MaxGauge* compaction_write_amp_milli;
  obs::LatencyHistogram* compaction_pass_ns;
};

inline StoreWriteMetrics& GetStoreWriteMetrics() {
  static StoreWriteMetrics* const m = [] {
    auto& r = obs::MetricsRegistry::Global();
    return new StoreWriteMetrics{
        r.GetCounter("store.segments_appended"),
        r.GetCounter("store.blocks_sealed"),
        r.GetCounter("store.file_flushes"),
        r.GetCounter("store.bytes_written"),
        r.GetCounter("store.manifest_commits"),
        r.GetCounter("store.compaction.passes"),
        r.GetCounter("store.compaction.bytes_read"),
        r.GetCounter("store.compaction.bytes_written"),
        r.GetCounter("store.compaction.segments_rewritten"),
        r.GetMaxGauge("store.compaction.write_amp_milli"),
        r.GetHistogram("store.compaction.pass_ns"),
    };
  }();
  return *m;
}

}  // namespace operb::store

#endif  // OPERB_STORE_STORE_METRICS_H_
