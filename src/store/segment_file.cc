#include "store/segment_file.h"

#include <limits>
#include <utility>

#include "codec/segment_codec.h"
#include "store/store_metrics.h"

namespace operb::store {

namespace {

/// std::fseek takes a long, which is 32 bits on LLP64 platforms; a
/// position beyond its range must fail cleanly instead of wrapping into
/// a misread. (On LP64 this is a no-op guard.)
bool SeekTo(std::FILE* file, std::uint64_t pos) {
  if (pos > static_cast<std::uint64_t>(std::numeric_limits<long>::max())) {
    return false;
  }
  return std::fseek(file, static_cast<long>(pos), SEEK_SET) == 0;
}

}  // namespace

Result<std::unique_ptr<SegmentFileWriter>> SegmentFileWriter::Create(
    const std::string& path, double zeta, std::size_t block_budget_bytes,
    Env* env) {
  OPERB_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                         ResolveEnv(env)->NewWritableFile(path));
  std::vector<std::uint8_t> header;
  EncodeFileHeader(zeta, &header);
  const Status written = [&] {
    OPERB_RETURN_IF_ERROR(file->Append(header));
    return file->Flush();
  }();
  if (!written.ok()) {
    return Status::IOError("cannot write segment file header to " + path);
  }
  std::unique_ptr<SegmentFileWriter> writer(
      new SegmentFileWriter(std::move(file), block_budget_bytes));
  writer->stats_.file_bytes = header.size();
  return writer;
}

SegmentFileWriter::SegmentFileWriter(std::unique_ptr<WritableFile> file,
                                     std::size_t block_budget_bytes)
    : block_budget_bytes_(block_budget_bytes), file_(std::move(file)) {}

SegmentFileWriter::~SegmentFileWriter() { Close(); }

Status SegmentFileWriter::Append(const traj::TimedSegment& segment) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (closed_) {
    return Status::InvalidArgument("append to a closed segment file writer");
  }
  pending_[segment.object_id].push_back(segment);
  ++pending_segments_;
  ++stats_.segments;
  if (static_cast<double>(pending_segments_) * estimated_segment_bytes_ >=
      static_cast<double>(block_budget_bytes_)) {
    const Status s = SealLocked();
    if (!s.ok() && first_error_.ok()) first_error_ = s;
  }
  return first_error_;
}

Status SegmentFileWriter::SealLocked() {
  if (pending_segments_ == 0) return Status::OK();
  std::vector<traj::TimedSegment> block;
  block.reserve(pending_segments_);
  for (const auto& [id, segments] : pending_) {
    block.insert(block.end(), segments.begin(), segments.end());
  }
  pending_.clear();
  pending_segments_ = 0;

  std::vector<std::uint8_t> payload;
  codec::EncodeSegmentBlock(block, &payload);
  if (payload.size() > std::numeric_limits<std::uint32_t>::max()) {
    // Unreachable while StoreWriterOptions::Validate caps the budget at
    // 1 GiB; refuse to write a wrapped length prefix if it regresses.
    return Status::Internal("store block payload exceeds the u32 frame");
  }
  const BlockFooter footer = MakeFooter(block, payload);

  std::vector<std::uint8_t> frame;
  frame.reserve(4 + payload.size() + kBlockFooterBytes);
  const std::uint32_t len = footer.payload_bytes;
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  }
  frame.insert(frame.end(), payload.begin(), payload.end());
  EncodeFooter(footer, &frame);

  const Status written = [&] {
    OPERB_RETURN_IF_ERROR(file_->Append(frame));
    return file_->Flush();
  }();
  if (!written.ok()) {
    return Status::IOError("segment file block write failed: " +
                           written.message());
  }
  ++stats_.blocks;
  stats_.payload_bytes += payload.size();
  stats_.file_bytes += frame.size();
  if constexpr (obs::kMetricsEnabled) {
    StoreWriteMetrics& m = GetStoreWriteMetrics();
    m.blocks_sealed->Increment();
    m.file_flushes->Increment();
    m.bytes_written->Add(frame.size());
  }
  estimated_segment_bytes_ =
      static_cast<double>(payload.size()) / static_cast<double>(block.size());
  return Status::OK();
}

Status SegmentFileWriter::Close() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return first_error_;
  closed_ = true;
  const Status seal = SealLocked();
  if (!seal.ok() && first_error_.ok()) first_error_ = seal;
  const Status closed = file_->Close();
  if (!closed.ok() && first_error_.ok()) first_error_ = closed;
  file_.reset();
  return first_error_;
}

Result<std::unique_ptr<SegmentFileReader>> SegmentFileReader::Open(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IOError("cannot open segment file " + path);
  }
  std::unique_ptr<SegmentFileReader> reader(new SegmentFileReader());
  reader->path_ = path;
  reader->file_ = file;

  if (std::fseek(file, 0, SEEK_END) != 0) {
    return Status::IOError("cannot seek in segment file " + path);
  }
  const long file_size_l = std::ftell(file);
  if (file_size_l < 0) {
    return Status::IOError("cannot size segment file " + path);
  }
  const std::uint64_t file_size = static_cast<std::uint64_t>(file_size_l);
  reader->file_bytes_ = file_size;

  std::vector<std::uint8_t> header(kFileHeaderBytes);
  if (file_size < kFileHeaderBytes) {
    return Status::Corruption("store file shorter than its header: " + path);
  }
  if (!SeekTo(file, 0) ||
      std::fread(header.data(), 1, header.size(), file) != header.size()) {
    return Status::IOError("cannot read segment file header from " + path);
  }
  OPERB_ASSIGN_OR_RETURN(const FileHeaderInfo info, DecodeFileHeader(header));
  reader->zeta_ = info.zeta;
  reader->version_ = info.version;
  const std::size_t footer_bytes = FooterBytes(info.version);

  // Structural scan: length prefix -> footer, payloads skipped. An
  // *incomplete* final frame is the torn tail a crashed append leaves
  // and is dropped (valid-prefix rule); a size-complete frame that
  // fails validation is Corruption — the writer flushed it as
  // committed, so dropping it would silently lose data.
  std::uint64_t pos = kFileHeaderBytes;
  while (pos < file_size) {
    const std::uint64_t remaining = file_size - pos;
    if (remaining < 4) break;  // partial length prefix
    std::uint8_t len_bytes[4];
    if (!SeekTo(file, pos) || std::fread(len_bytes, 1, 4, file) != 4) {
      return Status::IOError("cannot read block length in " + path);
    }
    const std::uint32_t payload_bytes =
        static_cast<std::uint32_t>(len_bytes[0]) |
        (static_cast<std::uint32_t>(len_bytes[1]) << 8) |
        (static_cast<std::uint32_t>(len_bytes[2]) << 16) |
        (static_cast<std::uint32_t>(len_bytes[3]) << 24);
    if (remaining <
        4 + static_cast<std::uint64_t>(payload_bytes) + footer_bytes) {
      break;  // partial tail frame
    }
    std::vector<std::uint8_t> footer_data(footer_bytes);
    if (!SeekTo(file, pos + 4 + payload_bytes) ||
        std::fread(footer_data.data(), 1, footer_data.size(), file) !=
            footer_data.size()) {
      return Status::IOError("cannot read block footer in " + path);
    }
    OPERB_ASSIGN_OR_RETURN(const BlockFooter footer,
                           DecodeFooter(footer_data, info.version));
    if (footer.payload_bytes != payload_bytes) {
      return Status::Corruption(
          "block length prefix disagrees with its footer in " + path);
    }
    OPERB_RETURN_IF_ERROR(ValidateFooterRanges(footer));
    BlockRef ref;
    ref.payload_offset = pos + 4;
    ref.footer = footer;
    reader->blocks_.push_back(ref);
    pos += 4 + payload_bytes + footer_bytes;
  }
  if (pos < file_size) {
    reader->open_info_.tail_dropped = true;
    reader->open_info_.dropped_bytes = file_size - pos;
  }
  return reader;
}

SegmentFileReader::~SegmentFileReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::vector<traj::TimedSegment>> SegmentFileReader::ReadBlock(
    std::size_t i) const {
  const BlockRef& ref = blocks_[i];
  std::vector<std::uint8_t> payload(ref.footer.payload_bytes);
  {
    const std::lock_guard<std::mutex> lock(file_mu_);
    if (!SeekTo(file_, ref.payload_offset) ||
        std::fread(payload.data(), 1, payload.size(), file_) !=
            payload.size()) {
      return Status::IOError("cannot read store block from " + path_);
    }
  }
  if (BlockChecksum(payload, ref.footer) != ref.footer.checksum) {
    return Status::Corruption("store block " + std::to_string(i) +
                              " checksum mismatch in " + path_);
  }
  OPERB_ASSIGN_OR_RETURN(std::vector<traj::TimedSegment> segments,
                         codec::DecodeSegmentBlock(payload));
  if (segments.size() != ref.footer.segment_count) {
    return Status::Corruption("store block " + std::to_string(i) +
                              " segment count mismatch in " + path_);
  }
  return segments;
}

}  // namespace operb::store
