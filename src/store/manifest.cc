#include "store/manifest.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string_view>
#include <unordered_set>

#include "store/format.h"
#include "store/store_metrics.h"

namespace operb::store {

namespace {

void PutU32(std::uint32_t v, std::vector<std::uint8_t>* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::uint64_t v, std::vector<std::uint8_t>* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

bool GetU32(std::span<const std::uint8_t> data, std::size_t* pos,
            std::uint32_t* out) {
  if (*pos + 4 > data.size()) return false;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data[*pos + i]) << (8 * i);
  }
  *pos += 4;
  *out = v;
  return true;
}

bool GetU64(std::span<const std::uint8_t> data, std::size_t* pos,
            std::uint64_t* out) {
  if (*pos + 8 > data.size()) return false;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data[*pos + i]) << (8 * i);
  }
  *pos += 8;
  *out = v;
  return true;
}

}  // namespace

Status Manifest::Validate() const {
  if (num_shards < 1) {
    return Status::Corruption("manifest num_shards must be at least 1");
  }
  std::unordered_set<std::string> names;
  for (const SegmentFileInfo& f : files) {
    if (f.shard >= num_shards) {
      return Status::Corruption("manifest names segment file " + f.name +
                                " in out-of-range shard " +
                                std::to_string(f.shard));
    }
    if (f.name.empty() ||
        f.name.find('/') != std::string::npos ||
        f.name.find('\\') != std::string::npos) {
      return Status::Corruption(
          "manifest segment file names must be plain file names");
    }
    if (!names.insert(f.name).second) {
      return Status::Corruption("manifest names segment file " + f.name +
                                " twice");
    }
  }
  return Status::OK();
}

std::string SegmentFileName(std::uint32_t shard, std::uint64_t generation) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%05u-g%06llu.seg", shard,
                static_cast<unsigned long long>(generation));
  return buf;
}

bool IsStoreFileName(const std::string& name) {
  if (name == kManifestFileName || name == kManifestTempFileName) return true;
  constexpr std::string_view kExt = ".seg";
  return name.size() > kExt.size() &&
         name.compare(name.size() - kExt.size(), kExt.size(), kExt) == 0;
}

void EncodeManifest(const Manifest& manifest,
                    std::vector<std::uint8_t>* out) {
  out->insert(out->end(), kManifestMagic.begin(), kManifestMagic.end());
  PutU32(kManifestVersion, out);
  PutU64(manifest.generation, out);
  PutU64(std::bit_cast<std::uint64_t>(manifest.zeta), out);
  PutU32(manifest.num_shards, out);
  PutU64(manifest.block_budget_bytes, out);
  PutU32(static_cast<std::uint32_t>(manifest.files.size()), out);
  for (const SegmentFileInfo& f : manifest.files) {
    PutU32(f.shard, out);
    PutU32(f.level, out);
    PutU32(f.sealed ? 1u : 0u, out);  // flags word, bit 0 = sealed
    PutU32(static_cast<std::uint32_t>(f.name.size()), out);
    out->insert(out->end(), f.name.begin(), f.name.end());
  }
  PutU64(Fnv1a64(*out), out);
}

Result<Manifest> DecodeManifest(std::span<const std::uint8_t> data) {
  if (data.size() < kManifestMagic.size() + 4 + 8) {
    return Status::Corruption("truncated store manifest");
  }
  if (!std::equal(kManifestMagic.begin(), kManifestMagic.end(),
                  data.begin())) {
    return Status::Corruption("not a store manifest (bad magic)");
  }
  // Verify the trailing checksum before trusting any field.
  std::size_t tail = data.size() - 8;
  std::uint64_t stored = 0;
  {
    std::size_t pos = tail;
    GetU64(data, &pos, &stored);
  }
  if (Fnv1a64(data.first(tail)) != stored) {
    return Status::Corruption("store manifest checksum mismatch");
  }

  std::size_t pos = kManifestMagic.size();
  Manifest m;
  std::uint32_t version = 0;
  std::uint64_t zeta_bits = 0;
  std::uint32_t file_count = 0;
  if (!GetU32(data, &pos, &version) || !GetU64(data, &pos, &m.generation) ||
      !GetU64(data, &pos, &zeta_bits) || !GetU32(data, &pos, &m.num_shards) ||
      !GetU64(data, &pos, &m.block_budget_bytes) ||
      !GetU32(data, &pos, &file_count)) {
    return Status::Corruption("truncated store manifest");
  }
  if (version != kManifestVersion) {
    return Status::Corruption("unsupported store manifest version " +
                              std::to_string(version));
  }
  m.zeta = std::bit_cast<double>(zeta_bits);
  m.files.reserve(file_count);
  for (std::uint32_t i = 0; i < file_count; ++i) {
    SegmentFileInfo f;
    std::uint32_t flags = 0;
    std::uint32_t name_len = 0;
    if (!GetU32(data, &pos, &f.shard) || !GetU32(data, &pos, &f.level) ||
        !GetU32(data, &pos, &flags) || !GetU32(data, &pos, &name_len) ||
        pos + name_len > tail) {
      return Status::Corruption("truncated store manifest file table");
    }
    f.sealed = (flags & 1u) != 0;
    f.name.assign(reinterpret_cast<const char*>(data.data()) + pos, name_len);
    pos += name_len;
    m.files.push_back(std::move(f));
  }
  if (pos != tail) {
    return Status::Corruption("store manifest has trailing bytes");
  }
  OPERB_RETURN_IF_ERROR(m.Validate());
  return m;
}

Status WriteManifest(const std::string& dir, const Manifest& manifest,
                     Env* env) {
  OPERB_RETURN_IF_ERROR(manifest.Validate());
  env = ResolveEnv(env);
  std::vector<std::uint8_t> bytes;
  EncodeManifest(manifest, &bytes);

  namespace fs = std::filesystem;
  const std::string tmp = (fs::path(dir) / kManifestTempFileName).string();
  const std::string final_path = (fs::path(dir) / kManifestFileName).string();
  OPERB_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                         env->NewWritableFile(tmp));
  const Status written = [&] {
    OPERB_RETURN_IF_ERROR(file->Append(bytes));
    OPERB_RETURN_IF_ERROR(file->Flush());
    return file->Close();
  }();
  if (!written.ok()) {
    (void)env->Remove(tmp);
    return written;
  }
  // The atomic commit point: readers see the old manifest or this one.
  const Status renamed = env->Rename(tmp, final_path);
  if (!renamed.ok()) {
    (void)env->Remove(tmp);
    return renamed;
  }
  if constexpr (obs::kMetricsEnabled) {
    StoreWriteMetrics& m = GetStoreWriteMetrics();
    m.manifest_commits->Increment();
    m.file_flushes->Increment();
    m.bytes_written->Add(bytes.size());
  }
  return Status::OK();
}

std::mutex& ManifestCommitMutex(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::path canonical = fs::weakly_canonical(fs::path(dir), ec);
  const std::string key = ec ? dir : canonical.string();
  static std::mutex registry_mu;
  // Keyed by canonical path; node-based map so returned references stay
  // stable. Entries are never erased — the set of distinct store
  // directories a process touches is tiny.
  static std::map<std::string, std::mutex>* registry =
      new std::map<std::string, std::mutex>();
  const std::lock_guard<std::mutex> lock(registry_mu);
  return (*registry)[key];
}

Result<Manifest> ReadManifest(const std::string& dir) {
  namespace fs = std::filesystem;
  const std::string path = (fs::path(dir) / kManifestFileName).string();
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IOError("cannot open store manifest " + path);
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return Status::IOError("cannot read store manifest " + path);
  }
  return DecodeManifest(bytes);
}

}  // namespace operb::store
