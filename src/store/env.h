#ifndef OPERB_STORE_ENV_H_
#define OPERB_STORE_ENV_H_

/// \file
/// The write-side filesystem seam of the store and the engine
/// checkpointer. Every durable mutation — segment-file creation and
/// sealing, MANIFEST commits, compaction's rename/unlink dance,
/// checkpoint temp+rename — goes through an Env, so tests can substitute
/// FaultInjectingEnv and deterministically fail the Nth operation to
/// enumerate every crash point (DESIGN.md §9). Read paths stay on plain
/// stdio: a reader never mutates the store, so injected read faults buy
/// no extra crash coverage.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace operb::store {

/// A sequentially written file. Append/Flush/Close mirror
/// fwrite/fflush/fclose; destruction closes the underlying handle if
/// Close() was never called (without reporting its status — callers that
/// care about durability must Close() explicitly).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(std::span<const std::uint8_t> data) = 0;
  virtual Status Flush() = 0;
  virtual Status Close() = 0;
};

/// The file operations the store's write paths perform. The default
/// implementation is the real filesystem; FaultInjectingEnv wraps any Env
/// and injects deterministic failures.
class Env {
 public:
  virtual ~Env() = default;

  /// Creates (truncating) `path` for sequential writing.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;

  /// Atomically replaces `to` with `from` (POSIX rename semantics — the
  /// commit primitive of every durable multi-step update here).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  /// Unlinks `path`. NotFound when it does not exist.
  virtual Status Remove(const std::string& path) = 0;

  /// The process-lived real-filesystem Env. Callers taking an `Env*`
  /// parameter treat nullptr as this.
  static Env* Default();
};

/// Resolves the ubiquitous "nullptr means the real filesystem" default.
inline Env* ResolveEnv(Env* env) { return env != nullptr ? env : Env::Default(); }

/// Deterministic fault injection: fails the Nth counted operation
/// (create, append, flush, rename, remove — close is not counted) in a
/// chosen way, so a test can enumerate k = 0..N-1 and assert recovery
/// after every possible crash point.
///
/// Thread-safe: the operation counter is shared across threads, so a
/// background compactor racing a writer still sees one deterministic
/// global operation sequence per single-threaded test scenario (the
/// crash-matrix tests run the pipeline single-threaded for exactly this
/// reproducibility).
class FaultInjectingEnv final : public Env {
 public:
  enum class FaultKind {
    kNone,            ///< count operations only
    kError,           ///< the Nth operation fails; later ones succeed
    kShortWrite,      ///< the Nth operation, if an append, persists only
                      ///< half its bytes before failing (torn write)
    kTornWriteCrash,  ///< like kShortWrite, but every later operation
                      ///< fails too — a crash at the Nth operation
  };

  /// Wraps `base` (nullptr: Env::Default()).
  explicit FaultInjectingEnv(Env* base = nullptr);

  /// Arms the injector: operation number `fail_at_op` (0-based, in
  /// counted-operation order) fails per `kind`. Resets the counter.
  void ArmFault(FaultKind kind, std::uint64_t fail_at_op);

  /// Disarms and resets the counter (counting continues).
  void Disarm();

  /// Operations counted since the last ArmFault/Disarm.
  std::uint64_t op_count() const;

  /// True once the armed fault has fired.
  bool fault_fired() const;

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;

 private:
  class FaultingFile;

  /// Ticks the counter; returns what the current operation must do.
  enum class OpOutcome { kSucceed, kFail, kTearThenFail };
  OpOutcome NextOp();

  Env* const base_;
  mutable std::mutex mu_;
  FaultKind kind_ = FaultKind::kNone;
  std::uint64_t fail_at_op_ = 0;
  std::uint64_t op_count_ = 0;
  bool fired_ = false;
  bool crashed_ = false;
};

}  // namespace operb::store

#endif  // OPERB_STORE_ENV_H_
