#ifndef OPERB_STORE_FORMAT_H_
#define OPERB_STORE_FORMAT_H_

/// \file
/// On-disk format of the trajectory store: segment-file header, block
/// frame, footer metadata, checksums.

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "geo/bbox.h"
#include "traj/multi_object.h"

namespace operb::store {

/// On-disk format of the block-organized trajectory store. The byte-level
/// specification lives in docs/ARCHITECTURE.md ("On-disk store format");
/// this header is its executable form. Everything is little-endian and
/// explicitly serialized field by field — no struct memcpy, so the format
/// is independent of padding and host endianness.
///
/// Segment-file layout (one file per shard x generation):
///
///   FileHeader | Block*          (append-only; blocks are immutable)
///   Block = payload_bytes:u32 | payload | BlockFooter
///
/// The payload is a codec::EncodeSegmentBlock stream; the footer carries
/// the metadata a reader needs to decide — without touching the payload —
/// whether the block can contain anything a query wants (id range, time
/// interval, bounding box), plus two checksums: one over payload+footer
/// (verified lazily when the payload is read) and, since format version
/// 2, one over the footer bytes alone so any flipped footer byte is
/// caught by the footer-only open scan.

/// First 7 bytes of every store file; the 8th byte is '0' + version.
inline constexpr std::array<std::uint8_t, 7> kFileMagicPrefix = {
    'O', 'P', 'R', 'B', 'S', 'T', 'R'};

/// Format version of legacy single-file stores (PR 5). Readable via the
/// compat shim, never written anymore.
inline constexpr std::uint32_t kFormatVersionLegacy = 1;

/// Format version written into segment files by the current writer.
/// Versioning rules (when to bump, what may change without a bump) are
/// specified in docs/ARCHITECTURE.md.
inline constexpr std::uint32_t kFormatVersion = 2;

/// Marker leading every block footer, used to cross-check the payload
/// length prefix before trusting the rest of the footer.
inline constexpr std::uint32_t kFooterMagic = 0x4F50'4246;  // "OPBF"

/// Serialized sizes (fixed; the writer and the reader's scan both depend
/// on them).
inline constexpr std::size_t kFileHeaderBytes = 8 + 4 + 4 + 8;  // magic,
                                                                // version,
                                                                // reserved,
                                                                // zeta

/// v1 footer: magic, segment count, id range, t interval + bbox, payload
/// length, payload checksum.
inline constexpr std::size_t kBlockFooterBytesLegacy =
    4 + 4 + 8 + 8 + 6 * 8 + 4 + 8;

/// v2 footer: the v1 fields plus a trailing checksum over the footer
/// bytes themselves.
inline constexpr std::size_t kBlockFooterBytes = kBlockFooterBytesLegacy + 8;

/// Footer size for a given header version.
constexpr std::size_t FooterBytes(std::uint32_t version) {
  return version == kFormatVersionLegacy ? kBlockFooterBytesLegacy
                                         : kBlockFooterBytes;
}

/// Fixed-size per-block metadata, appended after the payload. All ranges
/// are inclusive and describe the *stored segment geometry* (a window
/// query over original points must inflate by zeta; see DESIGN.md §8).
struct BlockFooter {
  std::uint32_t payload_bytes = 0;  ///< must equal the block's length prefix
  std::uint32_t segment_count = 0;
  std::uint64_t object_min = 0;  ///< smallest object id in the block
  std::uint64_t object_max = 0;  ///< largest object id in the block
  double t_min = 0.0;            ///< earliest t_start in the block
  double t_max = 0.0;            ///< latest t_end in the block
  double min_x = 0.0, min_y = 0.0, max_x = 0.0, max_y = 0.0;  ///< geometry
  std::uint64_t checksum = 0;  ///< FNV-1a over payload || footer body
  /// FNV-1a over the serialized footer up to (and including) `checksum`.
  /// v2 only; stays 0 when a v1 footer is decoded. This is what lets the
  /// open scan detect a flipped bit in any footer field without reading
  /// the payload.
  std::uint64_t footer_checksum = 0;

  /// The footer's bounding box as the geo type queries intersect against.
  geo::BoundingBox BBox() const {
    geo::BoundingBox b;
    b.min_x = min_x;
    b.min_y = min_y;
    b.max_x = max_x;
    b.max_y = max_y;
    return b;
  }
};

/// 64-bit FNV-1a — the store's checksum. Not cryptographic; it exists to
/// detect torn writes and bit rot, and its incremental form lets the
/// writer fold the footer body into the payload hash.
std::uint64_t Fnv1a64(std::span<const std::uint8_t> data,
                      std::uint64_t seed = 0xCBF2'9CE4'8422'2325ULL);

/// Serializes a current-version file header (magic, version, reserved,
/// zeta).
void EncodeFileHeader(double zeta, std::vector<std::uint8_t>* out);

/// What DecodeFileHeader learned about a file.
struct FileHeaderInfo {
  std::uint32_t version = 0;
  double zeta = 0.0;
};

/// Parses and validates a file header; accepts versions 1 (legacy
/// single-file) and 2 (segment files). Corruption on bad magic, an
/// unsupported version or a truncated header.
Result<FileHeaderInfo> DecodeFileHeader(std::span<const std::uint8_t> data);

/// Computes footer metadata over `segments` (which must be the block's
/// exact payload input) plus both checksums. `payload` is the encoded
/// block the ranges describe.
BlockFooter MakeFooter(std::span<const traj::TimedSegment> segments,
                       std::span<const std::uint8_t> payload);

/// Serializes `footer` in the current (v2) layout, checksums included.
void EncodeFooter(const BlockFooter& footer, std::vector<std::uint8_t>* out);

/// Parses a footer from exactly FooterBytes(version) bytes. Corruption on
/// a bad footer magic or (v2) a footer-checksum mismatch. The payload
/// checksum is *not* verified here (the caller decides whether it holds
/// the payload bytes to verify against).
Result<BlockFooter> DecodeFooter(std::span<const std::uint8_t> data,
                                 std::uint32_t version);

/// Structural sanity of decoded footer metadata: a block must be
/// non-empty and every range non-inverted (id range, time interval,
/// bounding box). Corruption with a field-naming message otherwise.
/// DecodeFooter's checksum catches flipped bits; this catches writer bugs
/// and hand-crafted files whose checksums are internally consistent.
Status ValidateFooterRanges(const BlockFooter& footer);

/// The payload checksum a block with this payload and footer body must
/// carry: FNV-1a over the payload, continued over the serialized footer
/// body (everything before the two checksum fields).
std::uint64_t BlockChecksum(std::span<const std::uint8_t> payload,
                            const BlockFooter& footer);

/// The v2 footer self-checksum: FNV-1a over the serialized footer up to
/// and including the payload checksum field.
std::uint64_t FooterChecksum(const BlockFooter& footer);

}  // namespace operb::store

#endif  // OPERB_STORE_FORMAT_H_
