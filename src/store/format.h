#ifndef OPERB_STORE_FORMAT_H_
#define OPERB_STORE_FORMAT_H_

/// \file
/// On-disk format of the trajectory store: file header, block frame,
/// footer metadata, checksums.

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "geo/bbox.h"
#include "traj/multi_object.h"

namespace operb::store {

/// On-disk format of the block-organized trajectory store. The byte-level
/// specification lives in docs/ARCHITECTURE.md ("On-disk block format");
/// this header is its executable form. Everything is little-endian and
/// explicitly serialized field by field — no struct memcpy, so the format
/// is independent of padding and host endianness.
///
/// File layout:
///
///   FileHeader | Block*          (append-only; blocks are immutable)
///   Block = payload_bytes:u32 | payload | BlockFooter
///
/// The payload is a codec::EncodeSegmentBlock stream; the footer carries
/// the metadata a reader needs to decide — without touching the payload —
/// whether the block can contain anything a query wants (id range, time
/// interval, bounding box), plus a checksum over the payload and the
/// footer body that makes torn or corrupted tail blocks detectable.

/// First 8 bytes of every store file ("OPRBSTR" + format generation).
inline constexpr std::array<std::uint8_t, 8> kFileMagic = {
    'O', 'P', 'R', 'B', 'S', 'T', 'R', '1'};

/// Format version written into the header. Readers accept exactly this
/// version; the versioning rules (when to bump, what may change without a
/// bump) are specified in docs/ARCHITECTURE.md.
inline constexpr std::uint32_t kFormatVersion = 1;

/// Marker leading every block footer, used to cross-check the payload
/// length prefix before trusting the rest of the footer.
inline constexpr std::uint32_t kFooterMagic = 0x4F50'4246;  // "OPBF"

/// Serialized sizes (fixed; the writer and the reader's scan both depend
/// on them).
inline constexpr std::size_t kFileHeaderBytes = 8 + 4 + 4 + 8;  // magic,
                                                                // version,
                                                                // reserved,
                                                                // zeta
inline constexpr std::size_t kBlockFooterBytes =
    4 + 4 + 8 + 8 + 6 * 8 + 4 + 8;  // magic, segment count, id range,
                                    // t interval + bbox, payload length,
                                    // checksum

/// Fixed-size per-block metadata, appended after the payload. All ranges
/// are inclusive and describe the *stored segment geometry* (a window
/// query over original points must inflate by zeta; see DESIGN.md §8).
struct BlockFooter {
  std::uint32_t payload_bytes = 0;  ///< must equal the block's length prefix
  std::uint32_t segment_count = 0;
  std::uint64_t object_min = 0;  ///< smallest object id in the block
  std::uint64_t object_max = 0;  ///< largest object id in the block
  double t_min = 0.0;            ///< earliest t_start in the block
  double t_max = 0.0;            ///< latest t_end in the block
  double min_x = 0.0, min_y = 0.0, max_x = 0.0, max_y = 0.0;  ///< geometry
  std::uint64_t checksum = 0;  ///< FNV-1a over payload || footer body

  /// The footer's bounding box as the geo type queries intersect against.
  geo::BoundingBox BBox() const {
    geo::BoundingBox b;
    b.min_x = min_x;
    b.min_y = min_y;
    b.max_x = max_x;
    b.max_y = max_y;
    return b;
  }
};

/// 64-bit FNV-1a — the store's checksum. Not cryptographic; it exists to
/// detect torn writes and bit rot, and its incremental form lets the
/// writer fold the footer body into the payload hash.
std::uint64_t Fnv1a64(std::span<const std::uint8_t> data,
                      std::uint64_t seed = 0xCBF2'9CE4'8422'2325ULL);

/// Serializes the file header (magic, version, reserved, zeta).
void EncodeFileHeader(double zeta, std::vector<std::uint8_t>* out);

/// Parses and validates a file header; returns the store's zeta bound.
/// Corruption on bad magic, unsupported version or a truncated header.
Result<double> DecodeFileHeader(std::span<const std::uint8_t> data);

/// Computes footer metadata over `segments` (which must be the block's
/// exact payload input) and the payload checksum. `payload` is the
/// encoded block the ranges describe.
BlockFooter MakeFooter(std::span<const traj::TimedSegment> segments,
                       std::span<const std::uint8_t> payload);

/// Serializes `footer` (with `footer.checksum` already final).
void EncodeFooter(const BlockFooter& footer, std::vector<std::uint8_t>* out);

/// Parses a footer from exactly kBlockFooterBytes bytes. Corruption on a
/// bad footer magic; the checksum is *not* verified here (the caller
/// decides whether it holds the payload bytes to verify against).
Result<BlockFooter> DecodeFooter(std::span<const std::uint8_t> data);

/// The checksum a block with this payload and footer body must carry:
/// FNV-1a over the payload, continued over the serialized footer with the
/// checksum field zeroed.
std::uint64_t BlockChecksum(std::span<const std::uint8_t> payload,
                            const BlockFooter& footer);

}  // namespace operb::store

#endif  // OPERB_STORE_FORMAT_H_
