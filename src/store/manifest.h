#ifndef OPERB_STORE_MANIFEST_H_
#define OPERB_STORE_MANIFEST_H_

/// \file
/// The store manifest: the single source of truth for which segment
/// files make up a directory store, committed atomically via
/// temp-file + rename.

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "store/env.h"

namespace operb::store {

/// A directory store is MANIFEST + segment files. The manifest names
/// every live segment file; a file on disk that the manifest does not
/// name is an orphan (a crashed compaction's half-written output) and is
/// ignored by readers — that is the "manifest rollback" half of crash
/// recovery, the per-segment valid-prefix scan being the other half.
///
/// Commits are atomic: the new manifest is fully written and flushed to
/// `MANIFEST.tmp`, then renamed over `MANIFEST`. POSIX rename is atomic,
/// so a reader opening the store concurrently sees either the old or the
/// new generation, never a torn one. The trailing checksum rejects a
/// manifest whose rename landed but whose bytes rotted.

/// File name of the manifest inside a store directory.
inline constexpr char kManifestFileName[] = "MANIFEST";
/// Staging name the manifest is written to before the atomic rename.
inline constexpr char kManifestTempFileName[] = "MANIFEST.tmp";

/// First 8 bytes of a serialized manifest.
inline constexpr std::array<std::uint8_t, 8> kManifestMagic = {
    'O', 'P', 'R', 'B', 'M', 'A', 'N', '1'};

/// Manifest serialization version.
inline constexpr std::uint32_t kManifestVersion = 1;

/// One live segment file. `name` is relative to the store directory.
struct SegmentFileInfo {
  std::uint32_t shard = 0;
  /// LSM-style level: 0 for freshly written files, +1 per compaction.
  std::uint32_t level = 0;
  /// A sealed file is immutable and a compaction candidate. An active
  /// (unsealed) file may still be growing under a live writer: readers
  /// serve its flushed prefix, the compactor must not touch it. The
  /// writer's Close() commits a generation flipping its files to sealed.
  bool sealed = true;
  std::string name;
};

/// In-memory form of the manifest.
struct Manifest {
  /// Monotonically increasing commit counter; every manifest write
  /// (store creation, each per-shard compaction) bumps it.
  std::uint64_t generation = 0;
  /// The error bound the stored segments were simplified under.
  double zeta = 0.0;
  /// Shard count the writer partitioned objects with (ShardOfObject).
  std::uint32_t num_shards = 1;
  /// Block budget the writer sealed blocks at (informational; compaction
  /// may rewrite blocks under a different budget).
  std::uint64_t block_budget_bytes = 0;
  /// Live segment files. Per shard the order is oldest-first; readers
  /// must iterate a shard's files in this order to preserve each
  /// object's segment emission order.
  std::vector<SegmentFileInfo> files;

  /// Structural sanity: num_shards >= 1, every file's shard in range,
  /// no duplicate file names.
  Status Validate() const;
};

/// Canonical segment file name for a shard written at a generation:
/// "seg-<shard:05>-g<generation:06>.seg".
std::string SegmentFileName(std::uint32_t shard, std::uint64_t generation);

/// True when `name` looks like a file this store owns (the manifest, its
/// temp file, or a "*.seg" segment) — the set a fresh writer may delete
/// when re-creating a store in a non-empty directory.
bool IsStoreFileName(const std::string& name);

/// Serializes `manifest` (magic, version, fields, file table, trailing
/// FNV-1a checksum).
void EncodeManifest(const Manifest& manifest, std::vector<std::uint8_t>* out);

/// Parses and fully validates a serialized manifest. Corruption on bad
/// magic/version/checksum or structural violations.
Result<Manifest> DecodeManifest(std::span<const std::uint8_t> data);

/// Atomically commits `manifest` into `dir`: write + flush MANIFEST.tmp,
/// rename over MANIFEST, through `env` (nullptr: the real filesystem).
/// IOError on filesystem failures.
Status WriteManifest(const std::string& dir, const Manifest& manifest,
                     Env* env = nullptr);

/// Reads and decodes `dir`/MANIFEST. IOError when the file cannot be
/// read, Corruption when it decodes badly.
Result<Manifest> ReadManifest(const std::string& dir);

/// The per-directory mutex every manifest read-modify-commit sequence
/// (writer Create/Close, each compaction) must hold, so concurrent
/// commits within this process never lose each other's updates.
/// Cross-process writers/compactors are out of scope — the store's
/// concurrency contract is single-process multi-thread (the daemon
/// shape the ROADMAP aims at).
std::mutex& ManifestCommitMutex(const std::string& dir);

}  // namespace operb::store

#endif  // OPERB_STORE_MANIFEST_H_
