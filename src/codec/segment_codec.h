#ifndef OPERB_CODEC_SEGMENT_CODEC_H_
#define OPERB_CODEC_SEGMENT_CODEC_H_

/// \file
/// Exact (bit-preserving) block codec for id-tagged, time-annotated
/// simplified segments — the trajectory store payload format.

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "traj/multi_object.h"

namespace operb::codec {

/// Lossless block codec for id-tagged, time-annotated simplified segments
/// — the payload format of the trajectory store's blocks (src/store).
///
/// Segments are grouped into *runs* of consecutive equal object ids (the
/// encoder forms the runs itself; a block the store seals holds each
/// object's segments contiguously, so one object is one run). Within a
/// run everything is delta-encoded against the previous segment:
///
///  - `first_index` as a zigzag varint delta against the previous
///    segment's `last_index` (adjacent segments chain, so this is
///    usually 0);
///  - `last_index` as a plain varint delta against `first_index`;
///  - patch flags as one byte (bit 0 start, bit 1 end);
///  - the four endpoint coordinates and the two timestamps as varints of
///    the IEEE-754 bit pattern XORed with the corresponding field of the
///    predecessor (`start` against the previous `end`, `t_start` against
///    the previous `t_end`), so the continuity of a piecewise
///    representation — each segment starts where the last one ended —
///    encodes as a single zero byte per shared field.
///
/// XOR of raw bit patterns makes the codec exact: DecodeSegmentBlock
/// reproduces every double bit-for-bit, which is what lets the store's
/// round-trip tests compare against the golden fixtures with `==` and
/// what keeps the stored zeta bound a theorem rather than a tolerance
/// (contrast DeltaEncode, which quantizes).
void EncodeSegmentBlock(std::span<const traj::TimedSegment> segments,
                        std::vector<std::uint8_t>* out);

/// Inverse of EncodeSegmentBlock. Returns Corruption on truncated or
/// malformed input; on success the returned segments reproduce the
/// encoder's input exactly (ids, indices, flags, coordinates, times).
Result<std::vector<traj::TimedSegment>> DecodeSegmentBlock(
    std::span<const std::uint8_t> data);

}  // namespace operb::codec

#endif  // OPERB_CODEC_SEGMENT_CODEC_H_
