#include "codec/delta.h"

#include <cmath>
#include <cstddef>
#include <span>

#include "codec/varint.h"

namespace operb::codec {

namespace {

std::int64_t Quantize(double v, double resolution) {
  return static_cast<std::int64_t>(std::llround(v / resolution));
}

}  // namespace

std::vector<std::uint8_t> DeltaEncode(const traj::Trajectory& trajectory,
                                      const DeltaCodecOptions& options) {
  std::vector<std::uint8_t> out;
  out.reserve(trajectory.size() * 6 + 16);
  PutVarint(trajectory.size(), &out);
  std::int64_t px = 0, py = 0, pt = 0;
  for (const geo::Point& p : trajectory) {
    const std::int64_t qx = Quantize(p.x, options.position_resolution_m);
    const std::int64_t qy = Quantize(p.y, options.position_resolution_m);
    const std::int64_t qt = Quantize(p.t, options.time_resolution_s);
    PutVarint(ZigZag(qx - px), &out);
    PutVarint(ZigZag(qy - py), &out);
    PutVarint(ZigZag(qt - pt), &out);
    px = qx;
    py = qy;
    pt = qt;
  }
  return out;
}

Result<traj::Trajectory> DeltaDecode(const std::vector<std::uint8_t>& data,
                                     const DeltaCodecOptions& options) {
  std::size_t pos = 0;
  std::uint64_t count = 0;
  if (!GetVarint(data, &pos, &count)) {
    return Status::Corruption("truncated point count");
  }
  // Sanity bound: each point needs at least 3 bytes.
  if (count > data.size()) {
    return Status::Corruption("implausible point count");
  }
  traj::Trajectory out;
  out.reserve(count);
  std::int64_t px = 0, py = 0, pt = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t dx = 0, dy = 0, dt = 0;
    if (!GetVarint(data, &pos, &dx) || !GetVarint(data, &pos, &dy) ||
        !GetVarint(data, &pos, &dt)) {
      return Status::Corruption("truncated delta stream at point " +
                                std::to_string(i));
    }
    px += UnZigZag(dx);
    py += UnZigZag(dy);
    pt += UnZigZag(dt);
    out.AppendUnchecked(
        {static_cast<double>(px) * options.position_resolution_m,
         static_cast<double>(py) * options.position_resolution_m,
         static_cast<double>(pt) * options.time_resolution_s});
  }
  if (pos != data.size()) {
    return Status::Corruption("trailing bytes after delta stream");
  }
  return out;
}

double DeltaCompressionRatio(const traj::Trajectory& trajectory,
                             const DeltaCodecOptions& options) {
  if (trajectory.empty()) return 0.0;
  const double raw_bytes = static_cast<double>(trajectory.size()) * 24.0;
  const double enc_bytes =
      static_cast<double>(DeltaEncode(trajectory, options).size());
  return enc_bytes / raw_bytes;
}

}  // namespace operb::codec
