#ifndef OPERB_CODEC_DELTA_H_
#define OPERB_CODEC_DELTA_H_

/// \file
/// Quantized lossless delta codec for trajectories (the storage
/// contrast point to lossy simplification).

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "traj/trajectory.h"

namespace operb::codec {

/// Quantization parameters for the lossless delta codec.
///
/// "Lossless" here is relative to the quantized grid: positions are
/// rounded to `position_resolution_m` (1 cm default, far below GPS noise)
/// and timestamps to `time_resolution_s` (1 ms default), then encoded
/// exactly. Decode reproduces the quantized values bit-for-bit.
struct DeltaCodecOptions {
  double position_resolution_m = 0.01;
  double time_resolution_s = 0.001;
};

/// Delta compression of trajectories (the lossless baseline the paper's
/// related work cites [19]): consecutive differences of the quantized
/// coordinates, zigzag-mapped and varint-encoded. Provides the "zero
/// error, O(n), modest ratio" contrast point for the compression-ratio
/// discussion.
std::vector<std::uint8_t> DeltaEncode(const traj::Trajectory& trajectory,
                                      const DeltaCodecOptions& options = {});

/// Inverse of DeltaEncode. Returns Corruption on malformed input.
Result<traj::Trajectory> DeltaDecode(const std::vector<std::uint8_t>& data,
                                     const DeltaCodecOptions& options = {});

/// Compression ratio of the encoding against raw storage (24 bytes per
/// point: three doubles); in [0, ~1] for sane inputs, lower is better.
double DeltaCompressionRatio(const traj::Trajectory& trajectory,
                             const DeltaCodecOptions& options = {});

}  // namespace operb::codec

#endif  // OPERB_CODEC_DELTA_H_
