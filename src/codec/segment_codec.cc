#include "codec/segment_codec.h"

#include <bit>
#include <cstddef>
#include <string>

#include "codec/varint.h"

namespace operb::codec {

namespace {

/// Predecessor state threaded through a block: the previous segment's
/// trailing fields, shared by encoder and decoder so the XOR/delta chains
/// agree. Runs do not reset it — a cross-run XOR is just a longer varint.
struct Chain {
  std::uint64_t last_index = 0;
  std::uint64_t end_x = 0, end_y = 0;  // bit patterns
  std::uint64_t t_end = 0;
};

std::uint64_t Bits(double v) { return std::bit_cast<std::uint64_t>(v); }
double FromBits(std::uint64_t v) { return std::bit_cast<double>(v); }

}  // namespace

void EncodeSegmentBlock(std::span<const traj::TimedSegment> segments,
                        std::vector<std::uint8_t>* out) {
  // Count runs of consecutive equal object ids.
  std::uint64_t runs = 0;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    if (i == 0 || segments[i].object_id != segments[i - 1].object_id) ++runs;
  }
  out->reserve(out->size() + 16 + segments.size() * 12);
  PutVarint(runs, out);

  Chain prev;
  std::uint64_t prev_run_id = 0;
  std::size_t i = 0;
  while (i < segments.size()) {
    const traj::ObjectId id = segments[i].object_id;
    std::size_t run_end = i;
    while (run_end < segments.size() && segments[run_end].object_id == id) {
      ++run_end;
    }
    PutVarint(ZigZag(static_cast<std::int64_t>(id - prev_run_id)), out);
    PutVarint(run_end - i, out);
    prev_run_id = id;
    for (; i < run_end; ++i) {
      const traj::RepresentedSegment& s = segments[i].segment;
      PutVarint(ZigZag(static_cast<std::int64_t>(
                    static_cast<std::uint64_t>(s.first_index) -
                    prev.last_index)),
                out);
      PutVarint(static_cast<std::uint64_t>(s.last_index) -
                    static_cast<std::uint64_t>(s.first_index),
                out);
      out->push_back(static_cast<std::uint8_t>((s.start_is_patch ? 1 : 0) |
                                               (s.end_is_patch ? 2 : 0)));
      PutVarint(Bits(s.start.x) ^ prev.end_x, out);
      PutVarint(Bits(s.start.y) ^ prev.end_y, out);
      PutVarint(Bits(s.end.x) ^ Bits(s.start.x), out);
      PutVarint(Bits(s.end.y) ^ Bits(s.start.y), out);
      PutVarint(Bits(segments[i].t_start) ^ prev.t_end, out);
      PutVarint(Bits(segments[i].t_end) ^ Bits(segments[i].t_start), out);
      prev.last_index = static_cast<std::uint64_t>(s.last_index);
      prev.end_x = Bits(s.end.x);
      prev.end_y = Bits(s.end.y);
      prev.t_end = Bits(segments[i].t_end);
    }
  }
}

Result<std::vector<traj::TimedSegment>> DecodeSegmentBlock(
    std::span<const std::uint8_t> data) {
  std::size_t pos = 0;
  std::uint64_t runs = 0;
  if (!GetVarint(data, &pos, &runs)) {
    return Status::Corruption("segment block: truncated run count");
  }
  // Each run needs at least 2 bytes of header; each segment at least 9
  // bytes of payload. A cheap plausibility gate before reserving.
  if (runs > data.size()) {
    return Status::Corruption("segment block: implausible run count");
  }
  std::vector<traj::TimedSegment> out;
  Chain prev;
  std::uint64_t prev_run_id = 0;
  for (std::uint64_t r = 0; r < runs; ++r) {
    std::uint64_t id_delta = 0, count = 0;
    if (!GetVarint(data, &pos, &id_delta) ||
        !GetVarint(data, &pos, &count)) {
      return Status::Corruption("segment block: truncated run header " +
                                std::to_string(r));
    }
    if (count > data.size()) {
      return Status::Corruption("segment block: implausible run length");
    }
    const traj::ObjectId id =
        prev_run_id + static_cast<std::uint64_t>(UnZigZag(id_delta));
    prev_run_id = id;
    for (std::uint64_t k = 0; k < count; ++k) {
      std::uint64_t dfirst = 0, dlast = 0;
      std::uint64_t sx = 0, sy = 0, ex = 0, ey = 0, t0 = 0, t1 = 0;
      if (!GetVarint(data, &pos, &dfirst) || pos >= data.size()) {
        return Status::Corruption("segment block: truncated segment");
      }
      if (!GetVarint(data, &pos, &dlast) || pos >= data.size()) {
        return Status::Corruption("segment block: truncated segment");
      }
      const std::uint8_t flags = data[pos++];
      if (flags > 3) {
        return Status::Corruption("segment block: bad patch flags");
      }
      if (!GetVarint(data, &pos, &sx) || !GetVarint(data, &pos, &sy) ||
          !GetVarint(data, &pos, &ex) || !GetVarint(data, &pos, &ey) ||
          !GetVarint(data, &pos, &t0) || !GetVarint(data, &pos, &t1)) {
        return Status::Corruption("segment block: truncated segment fields");
      }
      traj::TimedSegment ts;
      ts.object_id = id;
      const std::uint64_t first =
          prev.last_index + static_cast<std::uint64_t>(UnZigZag(dfirst));
      ts.segment.first_index = static_cast<std::size_t>(first);
      ts.segment.last_index = static_cast<std::size_t>(first + dlast);
      ts.segment.start_is_patch = (flags & 1) != 0;
      ts.segment.end_is_patch = (flags & 2) != 0;
      const std::uint64_t bsx = sx ^ prev.end_x;
      const std::uint64_t bsy = sy ^ prev.end_y;
      const std::uint64_t bex = ex ^ bsx;
      const std::uint64_t bey = ey ^ bsy;
      const std::uint64_t bt0 = t0 ^ prev.t_end;
      const std::uint64_t bt1 = t1 ^ bt0;
      ts.segment.start = {FromBits(bsx), FromBits(bsy)};
      ts.segment.end = {FromBits(bex), FromBits(bey)};
      ts.t_start = FromBits(bt0);
      ts.t_end = FromBits(bt1);
      prev.last_index = first + dlast;
      prev.end_x = bex;
      prev.end_y = bey;
      prev.t_end = bt1;
      out.push_back(ts);
    }
  }
  if (pos != data.size()) {
    return Status::Corruption("segment block: trailing bytes");
  }
  return out;
}

}  // namespace operb::codec
