#ifndef OPERB_CODEC_VARINT_H_
#define OPERB_CODEC_VARINT_H_

/// \file
/// Shared varint/zigzag integer wire primitives used by every codec
/// in this module.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace operb::codec {

/// LEB128-style unsigned varint plus the zigzag signed mapping — the
/// shared integer wire primitives of every codec in this module (the
/// trajectory delta codec and the segment-block codec of the store).
/// Values are encoded little-endian, 7 bits per byte, high bit set on
/// every byte but the last; a 64-bit value therefore takes 1..10 bytes.

/// Maps a signed value onto the unsigned varint domain so that small
/// magnitudes of either sign encode short: 0,-1,1,-2,... -> 0,1,2,3,...
inline std::uint64_t ZigZag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

/// Inverse of ZigZag().
inline std::int64_t UnZigZag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

/// Appends the varint encoding of `v` to `out`.
inline void PutVarint(std::uint64_t v, std::vector<std::uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<std::uint8_t>(v));
}

/// Decodes one varint from `data` starting at `*pos`, advancing `*pos`
/// past it. Returns false on truncation or on an encoding longer than 64
/// bits (corruption) — `*pos` is then unspecified and the stream must be
/// abandoned.
inline bool GetVarint(std::span<const std::uint8_t> data, std::size_t* pos,
                      std::uint64_t* v) {
  std::uint64_t result = 0;
  int shift = 0;
  while (*pos < data.size() && shift <= 63) {
    const std::uint8_t byte = data[(*pos)++];
    // The 10th byte may only carry bit 64's low bit; anything above it
    // would shift out silently — reject the overlong encoding instead.
    if (shift == 63 && (byte & 0x7E) != 0) return false;
    result |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

}  // namespace operb::codec

#endif  // OPERB_CODEC_VARINT_H_
