#ifndef OPERB_SERVER_SOCKET_H_
#define OPERB_SERVER_SOCKET_H_

/// \file
/// Minimal RAII TCP wrappers (POSIX) and the length-prefixed frame
/// transport of the daemon protocol (server/protocol.h). This is the
/// only file in the library that touches the socket API; everything
/// above it speaks Status and byte vectors.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace operb::server {

/// A connected TCP stream socket. Movable, not copyable; the
/// destructor closes. ShutdownBoth() may be called from another thread
/// to wake a blocked RecvAll (the graceful-drain path).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  void Close();

  /// shutdown(2) both directions without closing the descriptor — a
  /// blocked reader on any thread returns immediately with EOF. Safe
  /// to call concurrently with RecvAll/SendAll on another thread (the
  /// descriptor itself stays valid until Close()).
  void ShutdownBoth();

  /// Writes all `n` bytes (retrying short writes/EINTR). IOError on
  /// failure or a closed socket.
  Status SendAll(const void* data, std::size_t n);

  /// Reads exactly `n` bytes. NotFound on a clean EOF before the first
  /// byte (the peer closed between frames — the normal end of a
  /// connection); IOError on mid-read EOF or any other failure.
  Status RecvAll(void* data, std::size_t n);

  /// Connects to `host:port` (numeric or resolvable host). IOError on
  /// failure.
  static Result<Socket> Connect(const std::string& host,
                                std::uint16_t port);

 private:
  int fd_ = -1;
};

/// A listening TCP socket bound to 127.0.0.1 (the daemon is
/// loopback-only; fronting it with real network exposure is a
/// deployment concern, not this library's). Movable, not copyable.
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }
  Listener(Listener&& other) noexcept : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
  }
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens on 127.0.0.1:`port`; 0 picks an ephemeral port
  /// (read it back via port()).
  static Result<Listener> Bind(std::uint16_t port);

  bool valid() const { return fd_ >= 0; }
  std::uint16_t port() const { return port_; }

  void Close();

  /// Waits up to `timeout_ms` for a connection. Returns an invalid
  /// Socket on timeout (poll again), IOError when the listener broke.
  Result<Socket> AcceptWithTimeout(int timeout_ms);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Sends one protocol frame: u32 LE length (1 + body size), tag, body.
Status SendFrame(Socket& sock, std::uint8_t tag,
                 std::span<const std::uint8_t> body);

/// Receives one frame into `*tag` and `*body`. NotFound on a clean
/// close between frames; IOError on transport failure or a frame
/// exceeding kMaxFrameBytes.
Status RecvFrame(Socket& sock, std::uint8_t* tag,
                 std::vector<std::uint8_t>* body);

}  // namespace operb::server

#endif  // OPERB_SERVER_SOCKET_H_
