#include "server/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <utility>

#include "common/serial.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "store/query_filter.h"
#include "store/writer.h"

namespace operb::server {

namespace {

/// Cached instrument pointers (DESIGN.md §10 idiom: resolve the names
/// once, hit the lock-free instruments afterwards).
struct ServerMetrics {
  obs::Gauge* connections;
  obs::Counter* requests;
  obs::Counter* ingest_points;
  obs::Counter* backpressure_rejects;
  obs::LatencyHistogram* query_ns;
};

ServerMetrics& GetServerMetrics() {
  static ServerMetrics* const m = [] {
    auto& r = obs::MetricsRegistry::Global();
    return new ServerMetrics{
        r.GetGauge("server.connections"),
        r.GetCounter("server.requests"),
        r.GetCounter("server.ingest_points"),
        r.GetCounter("server.backpressure_rejects"),
        r.GetHistogram("server.query_ns"),
    };
  }();
  return *m;
}

Status SendReply(Socket& sock, WireStatus ws,
                 std::span<const std::uint8_t> body) {
  return SendFrame(sock, static_cast<std::uint8_t>(ws), body);
}

Status SendOk(Socket& sock, const std::vector<std::uint8_t>& body) {
  if (body.size() > kMaxFrameBytes) {
    const std::string msg = "result exceeds the protocol frame cap";
    return SendReply(
        sock, WireStatus::kInvalidArgument,
        std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  }
  return SendReply(sock, WireStatus::kOk, body);
}

Status SendError(Socket& sock, const Status& s) {
  const std::string& msg = s.message();
  return SendReply(
      sock, WireStatusOf(s),
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
}

Status SendBusy(Socket& sock, std::uint32_t retry_after_ms) {
  std::vector<std::uint8_t> body;
  serial::PutU32(retry_after_ms, &body);
  return SendReply(sock, WireStatus::kBusy, body);
}

bool GetPath(std::span<const std::uint8_t> body, std::string* path) {
  path->assign(reinterpret_cast<const char*>(body.data()), body.size());
  return !path->empty();
}

std::vector<std::uint8_t> SegmentsBody(
    const std::vector<traj::TimedSegment>& segments) {
  std::vector<std::uint8_t> body;
  serial::PutU32(static_cast<std::uint32_t>(segments.size()), &body);
  for (const traj::TimedSegment& s : segments) PutTimedSegment(s, &body);
  return body;
}

}  // namespace

Status ServerOptions::Validate() const {
  OPERB_RETURN_IF_ERROR(engine.Validate());
  if (store_path.empty()) {
    return Status::InvalidArgument("server store_path must be set");
  }
  if (store_shards < 1 || store_shards > 65536) {
    return Status::InvalidArgument("server store_shards out of [1, 65536]");
  }
  if (!(busy_fraction > 0.0) || busy_fraction > 1.0 ||
      !std::isfinite(busy_fraction)) {
    return Status::InvalidArgument("server busy_fraction out of (0, 1]");
  }
  if (!std::isfinite(seal_interval_seconds)) {
    return Status::InvalidArgument("server seal_interval_seconds not finite");
  }
  return Status::OK();
}

TrajectoryServer::TrajectoryServer(const ServerOptions& options)
    : options_(options) {
  // The merge cannot exist without timed segments and the snapshot seam.
  options_.engine.track_segment_times = true;
}

Result<std::unique_ptr<TrajectoryServer>> TrajectoryServer::Start(
    const ServerOptions& options, std::uint16_t port) {
  std::unique_ptr<TrajectoryServer> server(new TrajectoryServer(options));
  OPERB_RETURN_IF_ERROR(server->StartImpl(port));
  return server;
}

Status TrajectoryServer::StartImpl(std::uint16_t port) {
  OPERB_RETURN_IF_ERROR(options_.Validate());

  // An empty opening write session gives the reader a manifest to open
  // before the first seal; every later seal is an append session.
  store::StoreWriterOptions wo;
  wo.zeta = options_.engine.spec.zeta;
  wo.num_shards = options_.store_shards;
  wo.env = options_.env;
  {
    OPERB_ASSIGN_OR_RETURN(std::unique_ptr<store::StoreWriter> writer,
                           store::StoreWriter::Create(options_.store_path, wo));
    OPERB_RETURN_IF_ERROR(writer->Close());
  }
  OPERB_ASSIGN_OR_RETURN(reader_, store::StoreReader::Open(options_.store_path));

  overlay_.reserve(options_.engine.num_shards);
  for (std::size_t s = 0; s < options_.engine.num_shards; ++s) {
    overlay_.push_back(std::make_unique<OverlayShard>());
  }

  OPERB_ASSIGN_OR_RETURN(
      engine_, engine::StreamEngine::Create(options_.engine, nullptr));
  engine_->SetTimedSink(
      [this](const traj::TimedSegment& s) { OnSegment(s); });

  {
    Result<Listener> listener = Listener::Bind(port);
    if (!listener.ok()) return listener.status();
    listener_ = std::move(listener).value();
  }

  accept_thread_ = std::thread(&TrajectoryServer::AcceptLoop, this);
  if (options_.seal_interval_seconds > 0.0) {
    sealer_thread_ = std::thread(&TrajectoryServer::SealerLoop, this);
  }
  return Status::OK();
}

TrajectoryServer::~TrajectoryServer() { (void)Stop(); }

Status TrajectoryServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (stopped_) return stop_status_;
    stopped_ = true;
  }
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (sealer_thread_.joinable()) sealer_thread_.join();
  ReapConnections(/*all=*/true);
  listener_.Close();

  Status result;
  const auto note = [&result](const Status& s) {
    if (result.ok() && !s.ok()) result = s;
  };
  if (engine_ != nullptr) {
    if (!options_.final_checkpoint_path.empty()) {
      std::lock_guard<std::mutex> lock(engine_mu_);
      note(engine_->Checkpoint(options_.final_checkpoint_path, options_.env));
    }
    // Closing finishes every live object — their tails land in the
    // overlay through the timed sink — so the final seal below persists
    // the complete stream.
    std::lock_guard<std::mutex> lock(engine_mu_);
    engine_->Close();
  }
  {
    std::unique_lock<std::shared_mutex> lock(seal_mu_);
    note(SealLocked());
  }
  if (!options_.final_metrics_path.empty()) {
    note(obs::WriteSnapshotJson(options_.final_metrics_path));
  }
  std::lock_guard<std::mutex> lock(stop_mu_);
  stop_status_ = result;
  return result;
}

void TrajectoryServer::WaitForShutdownRequest() {
  while (!ShutdownRequested() && !stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

void TrajectoryServer::OnSegment(const traj::TimedSegment& s) {
  if (options_.sink_hook_for_test) options_.sink_hook_for_test(s);
  OverlayShard& shard = OverlayOf(s.object_id);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.segments[s.object_id].push_back(s);
  }
  segments_emitted_.fetch_add(1, std::memory_order_relaxed);
}

Result<bool> TrajectoryServer::Ingest(
    std::span<const traj::ObjectUpdate> updates) {
  if (updates.empty()) return true;
  const std::size_t num_shards = options_.engine.num_shards;
  const double busy_at =
      options_.busy_fraction * static_cast<double>(engine_->RingCapacity());
  std::vector<bool> touched(num_shards, false);
  for (const traj::ObjectUpdate& u : updates) {
    touched[traj::ShardOfObject(u.object_id, num_shards)] = true;
  }
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (touched[s] &&
        static_cast<double>(engine_->RingOccupancy(s)) > busy_at) {
      backpressure_rejects_.fetch_add(1, std::memory_order_relaxed);
      if constexpr (obs::kMetricsEnabled) {
        GetServerMetrics().backpressure_rejects->Increment();
      }
      return false;
    }
  }
  {
    std::lock_guard<std::mutex> lock(engine_mu_);
    engine_->Push(updates);
    // Hand everything to the rings now: the client's next query must
    // see these points (read-your-writes), and the snapshot barrier
    // only covers what left staging.
    engine_->Flush();
  }
  ingest_points_.fetch_add(updates.size(), std::memory_order_relaxed);
  if constexpr (obs::kMetricsEnabled) {
    GetServerMetrics().ingest_points->Add(updates.size());
  }
  return true;
}

Status TrajectoryServer::FinishObject(traj::ObjectId id) {
  std::lock_guard<std::mutex> lock(engine_mu_);
  engine_->FinishObject(id);
  engine_->Flush();
  return Status::OK();
}

void TrajectoryServer::AppendOverlay(traj::ObjectId id, std::size_t prefix,
                                     double t_min, double t_max,
                                     std::vector<traj::TimedSegment>* out) {
  OverlayShard& shard = OverlayOf(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.segments.find(id);
  if (it == shard.segments.end()) return;
  const std::vector<traj::TimedSegment>& v = it->second;
  const std::size_t n = std::min(prefix, v.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (store::IntervalsOverlap(v[i].t_start, v[i].t_end, t_min, t_max)) {
      out->push_back(v[i]);
    }
  }
}

Result<std::vector<traj::TimedSegment>> TrajectoryServer::QueryObject(
    traj::ObjectId id, double t_min, double t_max) {
  std::shared_lock<std::shared_mutex> seal_lock(seal_mu_);

  // Capture tail + overlay boundary on the worker thread: both describe
  // the same processed prefix of the object's updates (no torn tails).
  TailCapture cap;
  bool captured = false;
  {
    std::lock_guard<std::mutex> lock(engine_mu_);
    OPERB_RETURN_IF_ERROR(engine_->SnapshotObjectTail(
        id, [this, &cap, &captured](
                traj::ObjectId oid,
                std::span<const traj::TimedSegment> tail) {
          OverlayShard& shard = OverlayOf(oid);
          {
            std::lock_guard<std::mutex> overlay_lock(shard.mu);
            const auto it = shard.segments.find(oid);
            cap.overlay_prefix =
                it == shard.segments.end() ? 0 : it->second.size();
          }
          cap.tail.assign(tail.begin(), tail.end());
          captured = true;
        }));
  }

  OPERB_ASSIGN_OR_RETURN(std::vector<traj::TimedSegment> out,
                         reader_->ReconstructObject(id, t_min, t_max));
  // Not live (not captured): the object is finished or unknown, so its
  // overlay entry is stable and complete — take all of it.
  AppendOverlay(id,
                captured ? cap.overlay_prefix
                         : std::numeric_limits<std::size_t>::max(),
                t_min, t_max, &out);
  for (const traj::TimedSegment& s : cap.tail) {
    if (store::IntervalsOverlap(s.t_start, s.t_end, t_min, t_max)) {
      out.push_back(s);
    }
  }
  return out;
}

Result<std::vector<traj::TimedSegment>> TrajectoryServer::QueryWindow(
    const geo::BoundingBox& window, double t_min, double t_max,
    bool flat_scan) {
  std::shared_lock<std::shared_mutex> seal_lock(seal_mu_);

  std::unordered_map<traj::ObjectId, TailCapture> caps;
  {
    std::lock_guard<std::mutex> lock(engine_mu_);
    for (std::size_t s = 0; s < options_.engine.num_shards; ++s) {
      OPERB_RETURN_IF_ERROR(engine_->SnapshotShardTails(
          s, [this, &caps](traj::ObjectId oid,
                           std::span<const traj::TimedSegment> tail) {
            TailCapture& cap = caps[oid];
            OverlayShard& shard = OverlayOf(oid);
            {
              std::lock_guard<std::mutex> overlay_lock(shard.mu);
              const auto it = shard.segments.find(oid);
              cap.overlay_prefix =
                  it == shard.segments.end() ? 0 : it->second.size();
            }
            cap.tail.assign(tail.begin(), tail.end());
          }));
    }
  }

  OPERB_ASSIGN_OR_RETURN(
      std::vector<traj::TimedSegment> out,
      reader_->QueryWindow(window, t_min, t_max, nullptr,
                           flat_scan ? store::ScanMode::kFlatScan
                                     : store::ScanMode::kIndexed));
  // Same predicate the reader applied to sealed segments.
  const geo::BoundingBox inflated = store::Inflate(window, reader_->zeta());
  const auto matches = [&](const traj::TimedSegment& s) {
    return store::SegmentMatchesWindow(s, inflated, t_min, t_max);
  };

  // Unsealed layers: overlay first (captured prefix for live objects,
  // everything for finished ones), then the captured tails — per
  // object that is emission order, and stable_sort below keeps it
  // while restoring the canonical ascending-id order across objects
  // (sealed segments of an id were appended first, so they stay first).
  for (const auto& shard : overlay_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [oid, v] : shard->segments) {
      const auto cap = caps.find(oid);
      const std::size_t n =
          cap == caps.end() ? v.size()
                            : std::min(cap->second.overlay_prefix, v.size());
      for (std::size_t i = 0; i < n; ++i) {
        if (matches(v[i])) out.push_back(v[i]);
      }
    }
  }
  for (const auto& [oid, cap] : caps) {
    for (const traj::TimedSegment& s : cap.tail) {
      if (matches(s)) out.push_back(s);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const traj::TimedSegment& a,
                      const traj::TimedSegment& b) {
                     return a.object_id < b.object_id;
                   });
  return out;
}

Result<geo::Point> TrajectoryServer::PositionAt(traj::ObjectId id, double t) {
  OPERB_ASSIGN_OR_RETURN(const std::vector<traj::TimedSegment> covering,
                         QueryObject(id, t, t));
  // Mirrors StoreReader::PositionAt exactly (first covering segment,
  // same interpolation, same NotFound message) so the server's answer
  // is byte-identical to the offline path once everything is sealed.
  for (const traj::TimedSegment& s : covering) {
    if (s.t_start <= t && t <= s.t_end) {
      return store::InterpolateOnSegment(s, t);
    }
  }
  return Status::NotFound("object " + std::to_string(id) +
                          " has no stored segment covering t=" +
                          std::to_string(t));
}

StatsBody TrajectoryServer::Stats() {
  StatsBody b;
  b.live_objects = engine_->LiveObjectCount();
  b.ingest_points = ingest_points_.load(std::memory_order_relaxed);
  b.segments_emitted = segments_emitted_.load(std::memory_order_relaxed);
  {
    std::shared_lock<std::shared_mutex> lock(seal_mu_);
    b.sealed_segments = reader_->segment_count();
  }
  b.backpressure_rejects =
      backpressure_rejects_.load(std::memory_order_relaxed);
  b.seals = seals_.load(std::memory_order_relaxed);
  b.connections = connections_open_.load(std::memory_order_relaxed);
  return b;
}

Result<std::uint64_t> TrajectoryServer::Seal() {
  std::unique_lock<std::shared_mutex> lock(seal_mu_);
  OPERB_RETURN_IF_ERROR(SealLocked());
  return reader_->segment_count();
}

Status TrajectoryServer::SealLocked() {
  if (reader_ == nullptr) return Status::OK();  // Start() never finished
  if (seal_poisoned_) return seal_error_;

  // Snapshot the overlay. Copy, don't move: the segments only leave the
  // overlay after the session committed and the reader serves them —
  // a failure in between must not lose (or later duplicate) them.
  struct Pending {
    traj::ObjectId id;
    std::vector<traj::TimedSegment> segments;
  };
  std::vector<Pending> pending;
  for (const auto& shard : overlay_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [oid, v] : shard->segments) {
      if (!v.empty()) pending.push_back(Pending{oid, v});
    }
  }
  if (pending.empty()) return Status::OK();

  store::StoreWriterOptions wo;
  wo.zeta = options_.engine.spec.zeta;
  wo.num_shards = options_.store_shards;
  wo.append = true;
  wo.env = options_.env;
  Status failed;
  {
    Result<std::unique_ptr<store::StoreWriter>> writer =
        store::StoreWriter::Create(options_.store_path, wo);
    if (!writer.ok()) {
      failed = writer.status();
    } else {
      for (const Pending& p : pending) {
        for (const traj::TimedSegment& s : p.segments) {
          failed = (*writer)->Append(s);
          if (!failed.ok()) break;
        }
        if (!failed.ok()) break;
      }
      const Status closed = (*writer)->Close();
      if (failed.ok()) failed = closed;
    }
  }
  if (failed.ok()) {
    Result<std::unique_ptr<store::StoreReader>> reader =
        store::StoreReader::Open(options_.store_path);
    if (!reader.ok()) {
      failed = reader.status();
    } else {
      reader_ = std::move(reader).value();
    }
  }
  if (!failed.ok()) {
    // A torn session may have committed part of these segments; sealing
    // again would duplicate them. Keep serving the old reader plus the
    // intact overlay — that view is still correct — and report at Stop.
    seal_poisoned_ = true;
    seal_error_ = failed;
    return failed;
  }

  // The new reader serves the copied segments; drop them from the
  // overlay (anything appended since the copy stays).
  for (const Pending& p : pending) {
    OverlayShard& shard = OverlayOf(p.id);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.segments.find(p.id);
    if (it == shard.segments.end()) continue;
    std::vector<traj::TimedSegment>& v = it->second;
    v.erase(v.begin(),
            v.begin() + static_cast<std::ptrdiff_t>(
                            std::min(p.segments.size(), v.size())));
    if (v.empty()) shard.segments.erase(it);
  }
  seals_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status TrajectoryServer::WriteCheckpoint(const std::string& path) {
  std::lock_guard<std::mutex> lock(engine_mu_);
  return engine_->Checkpoint(path, options_.env);
}

Status TrajectoryServer::WriteMetricsSnapshot(const std::string& path) {
  return obs::WriteSnapshotJson(path);
}

void TrajectoryServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    Result<Socket> accepted = listener_.AcceptWithTimeout(100);
    ReapConnections(/*all=*/false);
    if (!accepted.ok()) {
      // The listener broke (not a timeout); don't spin on the error.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    if (!accepted->valid()) continue;  // timeout: poll stop_ again
    auto conn = std::make_unique<Connection>();
    conn->sock = std::move(accepted).value();
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    raw->thread = std::thread(&TrajectoryServer::ServeConnection, this, raw);
  }
}

void TrajectoryServer::SealerLoop() {
  const auto interval = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::duration<double>(options_.seal_interval_seconds));
  while (!stop_.load(std::memory_order_acquire)) {
    // Sleep in slices so Stop() is never held up by a long interval.
    auto remaining = interval;
    while (remaining.count() > 0 &&
           !stop_.load(std::memory_order_acquire)) {
      const auto slice = std::min(remaining, std::chrono::milliseconds(20));
      std::this_thread::sleep_for(slice);
      remaining -= slice;
    }
    if (stop_.load(std::memory_order_acquire)) break;
    std::unique_lock<std::shared_mutex> lock(seal_mu_);
    // Errors poison the seal path and resurface at Stop(); the serving
    // view stays correct either way.
    (void)SealLocked();
  }
}

void TrajectoryServer::ServeConnection(Connection* conn) {
  connections_open_.fetch_add(1, std::memory_order_relaxed);
  if constexpr (obs::kMetricsEnabled) GetServerMetrics().connections->Add(1);
  for (;;) {
    std::uint8_t tag = 0;
    std::vector<std::uint8_t> body;
    if (!RecvFrame(conn->sock, &tag, &body).ok()) break;
    if (!Dispatch(conn, static_cast<Verb>(tag), body)) break;
  }
  connections_open_.fetch_sub(1, std::memory_order_relaxed);
  if constexpr (obs::kMetricsEnabled) GetServerMetrics().connections->Sub(1);
  // The socket stays open (not Close()d) until ReapConnections joins
  // and destroys us: Stop()'s ShutdownBoth may race this exit, and
  // shutdown(2) on a still-open descriptor is safe where close is not.
  conn->done.store(true, std::memory_order_release);
}

bool TrajectoryServer::Dispatch(Connection* conn, Verb verb,
                                std::span<const std::uint8_t> body) {
  if constexpr (obs::kMetricsEnabled) GetServerMetrics().requests->Increment();
  std::size_t pos = 0;
  const auto malformed = [&]() {
    return SendError(conn->sock,
                     Status::InvalidArgument("malformed request body"))
        .ok();
  };
  switch (verb) {
    case Verb::kIngest: {
      std::uint32_t n = 0;
      if (!serial::GetU32(body, &pos, &n)) return malformed();
      std::vector<traj::ObjectUpdate> updates(n);
      for (traj::ObjectUpdate& u : updates) {
        double t = 0.0;
        if (!serial::GetU64(body, &pos, &u.object_id) ||
            !serial::GetF64(body, &pos, &t) ||
            !serial::GetF64(body, &pos, &u.point.x) ||
            !serial::GetF64(body, &pos, &u.point.y)) {
          return malformed();
        }
        u.point.t = t;
      }
      Result<bool> accepted = Ingest(updates);
      if (!accepted.ok()) return SendError(conn->sock, accepted.status()).ok();
      if (!*accepted) {
        return SendBusy(conn->sock, options_.busy_retry_ms).ok();
      }
      std::vector<std::uint8_t> reply;
      serial::PutU64(n, &reply);
      return SendOk(conn->sock, reply).ok();
    }
    case Verb::kFinishObject: {
      traj::ObjectId id = 0;
      if (!serial::GetU64(body, &pos, &id)) return malformed();
      const Status s = FinishObject(id);
      if (!s.ok()) return SendError(conn->sock, s).ok();
      return SendOk(conn->sock, {}).ok();
    }
    case Verb::kQueryObject: {
      traj::ObjectId id = 0;
      double t_min = 0.0;
      double t_max = 0.0;
      if (!serial::GetU64(body, &pos, &id) ||
          !serial::GetF64(body, &pos, &t_min) ||
          !serial::GetF64(body, &pos, &t_max)) {
        return malformed();
      }
      Result<std::vector<traj::TimedSegment>> r = [&] {
        obs::ScopedTimer timer(obs::kMetricsEnabled
                                   ? GetServerMetrics().query_ns
                                   : nullptr);
        return QueryObject(id, t_min, t_max);
      }();
      if (!r.ok()) return SendError(conn->sock, r.status()).ok();
      return SendOk(conn->sock, SegmentsBody(*r)).ok();
    }
    case Verb::kQueryWindow: {
      geo::BoundingBox window;
      double t_min = 0.0;
      double t_max = 0.0;
      std::uint8_t flat = 0;
      if (!serial::GetF64(body, &pos, &window.min_x) ||
          !serial::GetF64(body, &pos, &window.min_y) ||
          !serial::GetF64(body, &pos, &window.max_x) ||
          !serial::GetF64(body, &pos, &window.max_y) ||
          !serial::GetF64(body, &pos, &t_min) ||
          !serial::GetF64(body, &pos, &t_max) ||
          !serial::GetU8(body, &pos, &flat)) {
        return malformed();
      }
      Result<std::vector<traj::TimedSegment>> r = [&] {
        obs::ScopedTimer timer(obs::kMetricsEnabled
                                   ? GetServerMetrics().query_ns
                                   : nullptr);
        return QueryWindow(window, t_min, t_max, flat != 0);
      }();
      if (!r.ok()) return SendError(conn->sock, r.status()).ok();
      return SendOk(conn->sock, SegmentsBody(*r)).ok();
    }
    case Verb::kPositionAt: {
      traj::ObjectId id = 0;
      double t = 0.0;
      if (!serial::GetU64(body, &pos, &id) ||
          !serial::GetF64(body, &pos, &t)) {
        return malformed();
      }
      Result<geo::Point> r = [&] {
        obs::ScopedTimer timer(obs::kMetricsEnabled
                                   ? GetServerMetrics().query_ns
                                   : nullptr);
        return PositionAt(id, t);
      }();
      if (!r.ok()) return SendError(conn->sock, r.status()).ok();
      std::vector<std::uint8_t> reply;
      serial::PutF64(r->x, &reply);
      serial::PutF64(r->y, &reply);
      serial::PutF64(r->t, &reply);
      return SendOk(conn->sock, reply).ok();
    }
    case Verb::kStats: {
      std::vector<std::uint8_t> reply;
      PutStatsBody(Stats(), &reply);
      return SendOk(conn->sock, reply).ok();
    }
    case Verb::kCheckpoint: {
      std::string path;
      if (!GetPath(body, &path)) return malformed();
      const Status s = WriteCheckpoint(path);
      if (!s.ok()) return SendError(conn->sock, s).ok();
      return SendOk(conn->sock, {}).ok();
    }
    case Verb::kMetricsSnapshot: {
      std::string path;
      if (!GetPath(body, &path)) return malformed();
      const Status s = WriteMetricsSnapshot(path);
      if (!s.ok()) return SendError(conn->sock, s).ok();
      return SendOk(conn->sock, {}).ok();
    }
    case Verb::kSeal: {
      Result<std::uint64_t> sealed = Seal();
      if (!sealed.ok()) return SendError(conn->sock, sealed.status()).ok();
      std::vector<std::uint8_t> reply;
      serial::PutU64(*sealed, &reply);
      return SendOk(conn->sock, reply).ok();
    }
    case Verb::kShutdown: {
      // Order matters: the flag is visible before the client's ok reply
      // lands, so "Shutdown() returned" implies ShutdownRequested().
      shutdown_requested_.store(true, std::memory_order_release);
      (void)SendOk(conn->sock, {});
      return false;
    }
  }
  return SendError(conn->sock,
                   Status::InvalidArgument(
                       "unknown verb " +
                       std::to_string(static_cast<unsigned>(verb))))
      .ok();
}

void TrajectoryServer::ReapConnections(bool all) {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    Connection* c = it->get();
    if (all) c->sock.ShutdownBoth();  // wakes a blocked RecvFrame
    if (all || c->done.load(std::memory_order_acquire)) {
      if (c->thread.joinable()) c->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace operb::server
