#ifndef OPERB_SERVER_PROTOCOL_H_
#define OPERB_SERVER_PROTOCOL_H_

/// \file
/// Wire protocol of the operb trajectory daemon (DESIGN.md §11).
///
/// Every message is one frame: a u32 little-endian length (covering
/// everything after itself), a one-byte tag, then the body. Requests
/// are tagged with a Verb, responses with a WireStatus. Bodies reuse
/// the library's serialization vocabulary (common/serial.h primitives,
/// traj::SerializeSegment for segments), so a timed segment travels in
/// exactly the bytes the engine checkpoints it with — which is how the
/// client can reproduce the offline query output byte-identically.
///
/// Response bodies by status:
///  - kOk:    verb-specific payload (below);
///  - kBusy:  u32 retry-after milliseconds (flow control, never an
///            error: the rings are momentarily full and nothing was
///            ingested);
///  - errors: the Status message as plain bytes.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "traj/multi_object.h"

namespace operb::server {

/// Hard cap on a frame body; a peer announcing more is a protocol
/// error, not an allocation request.
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

/// Request tags. Bodies (all integers/doubles via common/serial.h):
///  - kIngest:       u32 n, then n x (u64 id, f64 t, f64 x, f64 y);
///                   ok-reply: u64 accepted (= n).
///  - kFinishObject: u64 id; ok-reply: empty.
///  - kQueryObject:  u64 id, f64 t_min, f64 t_max;
///                   ok-reply: u32 count, count x timed segment.
///  - kQueryWindow:  f64 min_x, min_y, max_x, max_y, t_min, t_max,
///                   u8 flat_scan; ok-reply: as kQueryObject.
///  - kPositionAt:   u64 id, f64 t; ok-reply: f64 x, y, t.
///  - kStats:        empty; ok-reply: StatsBody.
///  - kCheckpoint:   path bytes (engine checkpoint written server-side);
///                   ok-reply: empty.
///  - kMetricsSnapshot: path bytes (obs snapshot written server-side);
///                   ok-reply: empty.
///  - kSeal:         empty (force a seal now); ok-reply: u64 sealed
///                   segment total.
///  - kShutdown:     empty; ok-reply: empty, then the daemon stops.
enum class Verb : std::uint8_t {
  kIngest = 1,
  kFinishObject = 2,
  kQueryWindow = 3,
  kQueryObject = 4,
  kPositionAt = 5,
  kStats = 6,
  kCheckpoint = 7,
  kMetricsSnapshot = 8,
  kSeal = 9,
  kShutdown = 10,
};

/// Response tags, mirroring the library's Status classes the CLI exit
/// codes are built on (plus kBusy, which is flow control, not failure).
enum class WireStatus : std::uint8_t {
  kOk = 0,
  kBusy = 1,
  kInvalidArgument = 2,
  kNotFound = 3,
  kIOError = 4,
  kInternal = 5,
};

/// One kStats ok-reply (all u64, in this order on the wire).
struct StatsBody {
  std::uint64_t live_objects = 0;
  std::uint64_t ingest_points = 0;
  std::uint64_t segments_emitted = 0;  ///< into the overlay, since start
  std::uint64_t sealed_segments = 0;   ///< visible in the sealed store
  std::uint64_t backpressure_rejects = 0;
  std::uint64_t seals = 0;
  std::uint64_t connections = 0;  ///< currently open
};

/// Appends `s` (u64 id, 50-byte segment encoding, f64 t_start/t_end).
void PutTimedSegment(const traj::TimedSegment& s,
                     std::vector<std::uint8_t>* out);

/// Inverse of PutTimedSegment, advancing `*pos`; false on truncation
/// or a malformed segment encoding.
bool GetTimedSegment(std::span<const std::uint8_t> in, std::size_t* pos,
                     traj::TimedSegment* s);

void PutStatsBody(const StatsBody& s, std::vector<std::uint8_t>* out);
bool GetStatsBody(std::span<const std::uint8_t> in, std::size_t* pos,
                  StatsBody* s);

/// Maps a library Status onto the wire (Corruption travels as kIOError:
/// both are exit-code-3 I/O classes to the CLI contract).
WireStatus WireStatusOf(const Status& s);

/// Reconstructs a Status from a non-ok, non-busy wire tag + message.
Status StatusFromWire(WireStatus ws, const std::string& message);

}  // namespace operb::server

#endif  // OPERB_SERVER_PROTOCOL_H_
